(* Benchmark harness.

   Two layers, both in this executable:

   1. The paper-shaped experiment tables (one section per table/figure/
      claim of the paper, via the Experiments library, quick mode):
      regenerates the rows of Table 1, the H-tradeoff (Table 1 row 4 /
      Section 5.2), Figures 1-2, Observation 2.2, the Ω(n²) worst case,
      Theorem 2.1's nonuniformity, Propagate-Reset and the probabilistic
      toolbox. `main.exe <name>` runs a single section; `main.exe --full`
      uses the full-size sweeps.

   2. Bechamel micro-benchmarks of the simulator and protocol hot paths
      (one Test.make per table/figure artifact), reporting wall-clock per
      run. *)

open Bechamel
open Toolkit

let n_bench = 64

let make_sim ~protocol ~init ~seed =
  Engine.Sim.make ~protocol ~init ~rng:(Prng.create ~seed)

(* Table 1 row 1: interaction throughput of Silent-n-state-SSR. *)
let bench_silent_n_state () =
  let n = n_bench in
  let protocol = Core.Silent_n_state.protocol ~n in
  let rng = Prng.create ~seed:1 in
  let sim = make_sim ~protocol ~init:(Core.Scenarios.silent_uniform rng ~n) ~seed:2 in
  Test.make ~name:"table1/silent-n-state/1k-interactions"
    (Staged.stage (fun () -> Engine.Sim.run sim 1000))

(* Table 1 row 2: Optimal-Silent-SSR. *)
let bench_optimal_silent () =
  let n = n_bench in
  let params = Core.Params.optimal_silent n in
  let protocol = Core.Optimal_silent.protocol ~params ~n () in
  let rng = Prng.create ~seed:3 in
  let sim = make_sim ~protocol ~init:(Core.Scenarios.optimal_uniform rng ~params ~n) ~seed:4 in
  Test.make ~name:"table1/optimal-silent/1k-interactions"
    (Staged.stage (fun () -> Engine.Sim.run sim 1000))

(* Table 1 rows 3-4: Sublinear-Time-SSR at H=1 and H=⌈log₂ n⌉. *)
let bench_sublinear ~n ~h ~steps ~label =
  let params = Core.Params.sublinear ~h n in
  let protocol = Core.Sublinear.protocol ~params ~n ~h () in
  let rng = Prng.create ~seed:5 in
  let sim = make_sim ~protocol ~init:(Core.Scenarios.sublinear_fresh rng ~params ~n) ~seed:6 in
  Test.make ~name:label (Staged.stage (fun () -> Engine.Sim.run sim steps))

(* Figure 1: a complete leader-driven ranking phase. *)
let bench_ranking_phase () =
  let n = 32 in
  let params = Core.Params.optimal_silent n in
  let protocol = Core.Optimal_silent.protocol ~params ~n () in
  let init =
    Array.init n (fun i ->
        if i = 0 then Core.Optimal_silent.settled ~rank:1 ~children:0
        else Core.Optimal_silent.unsettled ~errorcount:params.Core.Params.e_max)
  in
  let seed = ref 0 in
  Test.make ~name:"figure1/ranking-phase-n32"
    (Staged.stage (fun () ->
         incr seed;
         let sim = make_sim ~protocol ~init ~seed:!seed in
         let confirm = Engine.Runner.default_confirm ~n in
         ignore
           (Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
              ~max_interactions:(1000 * n) ~confirm_interactions:confirm
              (Engine.Exec.of_sim sim))))

(* Executor-interface overhead: the same per-interaction loop as
   figure1's runner path, but driven bare vs through Exec.advance, so a
   regression in the first-class-module indirection is visible on its
   own. *)
let bench_exec_overhead () =
  let n = n_bench in
  let protocol = Core.Silent_n_state.protocol ~n in
  let rng = Prng.create ~seed:11 in
  let sim = make_sim ~protocol ~init:(Core.Scenarios.silent_uniform rng ~n) ~seed:12 in
  let exec = Engine.Exec.of_sim sim in
  Test.make ~name:"exec/agent-advance/1k-interactions"
    (Staged.stage (fun () ->
         for _ = 1 to 1000 do
           ignore (Engine.Exec.advance exec ~until:max_int)
         done))

(* Figure 2: history-tree merge and path enumeration. *)
let bench_history_tree () =
  let h = 3 in
  let params = Core.Params.sublinear ~h 16 in
  let rng = Prng.create ~seed:7 in
  let names = Array.init 8 (fun i -> Core.Name.of_int ~bits:i ~len:params.Core.Params.name_bits) in
  (* build moderately bushy trees by simulating a few meetings *)
  let trees = Array.make 8 Core.History_tree.empty in
  for round = 0 to 40 do
    let i = round mod 8 and j = (round + 1 + (round mod 5)) mod 8 in
    if i <> j then begin
      let sync = 1 + Prng.int rng params.Core.Params.s_max in
      let ti = trees.(i) and tj = trees.(j) in
      trees.(i) <-
        Core.History_tree.merge ~h ~own:names.(i) ~partner:names.(j) ~partner_tree:tj ~sync
          ~timer:params.Core.Params.t_h ti;
      trees.(j) <-
        Core.History_tree.merge ~h ~own:names.(j) ~partner:names.(i) ~partner_tree:ti ~sync
          ~timer:params.Core.Params.t_h tj
    end
  done;
  Test.make ~name:"figure2/tree-merge-and-paths"
    (Staged.stage (fun () ->
         let t =
           Core.History_tree.merge ~h ~own:names.(0) ~partner:names.(1) ~partner_tree:trees.(1)
             ~sync:42 ~timer:params.Core.Params.t_h trees.(0)
         in
         ignore (Core.History_tree.fresh_paths_to ~name:names.(2) t)))

(* Observation 2.2: the generic silence check used on every converged run. *)
let bench_silence_check () =
  let n = n_bench in
  let protocol = Core.Silent_n_state.protocol ~n in
  let config = Core.Scenarios.silent_correct ~n in
  Test.make ~name:"obs2.2/silence-check-n64"
    (Staged.stage (fun () -> ignore (Engine.Silence.configuration_is_silent protocol config)))

(* Probabilistic toolbox (Sections 1.1 & 2). *)
let bench_epidemic () =
  let rng = Prng.create ~seed:8 in
  Test.make ~name:"toolbox/epidemic-n1024"
    (Staged.stage (fun () -> ignore (Processes.Epidemic.run rng ~n:1024)))

let bench_roll_call () =
  let rng = Prng.create ~seed:9 in
  Test.make ~name:"toolbox/roll-call-n256"
    (Staged.stage (fun () -> ignore (Processes.Roll_call.run rng ~n:256)))

(* Section 3: one Propagate-Reset step on a resetting pair. *)
let bench_reset_step () =
  let params = Core.Params.sublinear ~h:1 n_bench in
  let n = n_bench and h = 1 in
  let protocol = Core.Sublinear.protocol ~params ~n ~h () in
  let rng = Prng.create ~seed:10 in
  let a =
    Core.Sublinear.resetting ~name:Core.Name.empty ~resetcount:params.Core.Params.r_max
      ~delaytimer:params.Core.Params.d_max
  in
  let b = Core.Sublinear.fresh rng ~params in
  Test.make ~name:"reset/propagate-step"
    (Staged.stage (fun () -> ignore (protocol.Engine.Protocol.transition rng a b)))

let micro_tests () =
  Test.make_grouped ~name:"repro" ~fmt:"%s %s"
    [
      bench_silent_n_state ();
      bench_optimal_silent ();
      bench_sublinear ~n:32 ~h:1 ~steps:200 ~label:"table1/sublinear-h1/200-interactions";
      bench_sublinear ~n:8 ~h:3 ~steps:200 ~label:"table1/sublinear-hlog/200-interactions";
      bench_ranking_phase ();
      bench_exec_overhead ();
      bench_history_tree ();
      bench_silence_check ();
      bench_epidemic ();
      bench_roll_call ();
      bench_reset_step ();
    ]

let run_micro_benchmarks () =
  print_endline "== Bechamel micro-benchmarks (wall clock per run) ==\n";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let table = Stats.Table.create ~header:[ "benchmark"; "time per run" ] in
  List.iter
    (fun (name, est) ->
      let cell =
        match Analyze.OLS.estimates est with
        | Some [ ns ] ->
            if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
        | Some _ | None -> "n/a"
      in
      Stats.Table.add_row table [ name; cell ])
    (List.sort compare rows);
  Stats.Table.print table;
  print_newline ()

(* Engine-counter deltas printed next to the timings: one seeded
   worst-case run of Silent-n-state-SSR on each engine, with the counters
   both engines keep anyway (Engine.Exec.stats). Makes a throughput
   regression attributable — e.g. null-skipping getting less effective
   shows up here before it shows up in the micro-benchmark table. *)
let run_metrics_section () =
  print_endline "== Engine metrics (silent protocol, n=256, worst-case, seed 2024) ==\n";
  let n = 256 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let run kind =
    let rng = Prng.create ~seed:2024 in
    let init = Core.Scenarios.silent_worst_case ~n in
    let exec = Engine.Exec.make ~kind ~protocol ~init ~rng () in
    let t0 = Unix.gettimeofday () in
    ignore
      (Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
         ~max_interactions:(Engine.Runner.default_horizon ~n ~expected_time:(float_of_int n))
         ~confirm_interactions:(Engine.Runner.default_confirm ~n)
         exec);
    (Engine.Exec.stats exec, Unix.gettimeofday () -. t0)
  in
  let agent, agent_s = run Engine.Exec.Agent in
  let count, count_s = run Engine.Exec.Count in
  let names =
    List.sort_uniq compare (List.map fst agent @ List.map fst count)
  in
  let cell stats name =
    match List.assoc_opt name stats with Some v -> Printf.sprintf "%.0f" v | None -> "-"
  in
  let table = Stats.Table.create ~header:[ "metric"; "agent"; "count" ] in
  List.iter (fun name -> Stats.Table.add_row table [ name; cell agent name; cell count name ]) names;
  Stats.Table.add_row table
    [ "wall clock (s)"; Printf.sprintf "%.3f" agent_s; Printf.sprintf "%.3f" count_s ];
  Stats.Table.print table;
  print_newline ()

(* Kernel-compiler delta table: the same agent-engine interaction loop
   driven by the interpreted transition vs the compiled kernel (memoized
   int-code table). The speedup column is the CI artifact that guards
   the compiler's reason to exist; the kernel columns make a slow compile
   or a skipped memoization visible next to it. *)
let run_kernel_section () =
  print_endline "== Kernel compiler: compiled vs interpreted step throughput ==\n";
  let steps = 4_000_000 in
  let mask = 0xFFFF in
  (* 65536 precomputed pairs, cycled *)
  let table =
    Stats.Table.create
      ~header:
        [
          "protocol"; "interp Msteps/s"; "compiled Msteps/s"; "step speedup"; "sim speedup";
          "states"; "table cells"; "compile ms";
        ]
  in
  let time run =
    ignore (run ());
    (* warmup *)
    let t0 = Unix.gettimeofday () in
    run ();
    Unix.gettimeofday () -. t0
  in
  let bench : 'a. label:string -> 'a Engine.Enumerable.t -> init:'a array -> unit =
   fun ~label e ~init ->
    let p = e.Engine.Enumerable.protocol in
    let kernel = Ir.Kernel.compile e in
    let m = Ir.Kernel.states kernel in
    (* Step throughput: the same uniformly random ordered pair schedule
       applied through the interpreted transition and the compiled one.
       This is the quantity the memo table optimizes; both loops pay the
       same schedule-indexing and call overhead. *)
    let sched = Prng.create ~seed:43 in
    let ka = Array.init (mask + 1) (fun _ -> Prng.int sched m) in
    let kb = Array.init (mask + 1) (fun _ -> Prng.int sched m) in
    let da = Array.map (Ir.Kernel.decode kernel) ka in
    let db = Array.map (Ir.Kernel.decode kernel) kb in
    let interp_tr = p.Engine.Protocol.transition in
    let compiled_tr = kernel.Ir.Kernel.compiled.Engine.Protocol.transition in
    let step_interp_s =
      time (fun () ->
          let rng = Prng.create ~seed:44 in
          for i = 0 to steps - 1 do
            let k = i land mask in
            ignore (interp_tr rng da.(k) db.(k))
          done)
    in
    let step_compiled_s =
      time (fun () ->
          let rng = Prng.create ~seed:44 in
          for i = 0 to steps - 1 do
            let k = i land mask in
            ignore (compiled_tr rng ka.(k) kb.(k))
          done)
    in
    (* End-to-end: a full agent-engine run (pair sampling, monitor and
       event bookkeeping included), interpreted vs compiled codes. *)
    let sim_steps = steps / 4 in
    let sim_interp_s =
      time (fun () ->
          let sim = Engine.Sim.make ~protocol:p ~init ~rng:(Prng.create ~seed:42) in
          Engine.Sim.run sim sim_steps)
    in
    let code_init = Array.map (Ir.Kernel.encode kernel) init in
    let sim_compiled_s =
      time (fun () ->
          let sim =
            Engine.Sim.make ~protocol:kernel.Ir.Kernel.compiled ~init:code_init
              ~rng:(Prng.create ~seed:42)
          in
          Engine.Sim.run sim sim_steps)
    in
    let mps s = float_of_int steps /. s /. 1e6 in
    Stats.Table.add_row table
      [
        label;
        Printf.sprintf "%.2f" (mps step_interp_s);
        Printf.sprintf "%.2f" (mps step_compiled_s);
        Printf.sprintf "%.2fx" (step_interp_s /. step_compiled_s);
        Printf.sprintf "%.2fx" (sim_interp_s /. sim_compiled_s);
        string_of_int m;
        (if kernel.Ir.Kernel.ir.Ir.table = None then "0" else string_of_int (m * m));
        Printf.sprintf "%.1f" (1000.0 *. kernel.Ir.Kernel.compile_s);
      ]
  in
  let n = 256 in
  bench ~label:(Printf.sprintf "silent-n-state n=%d" n)
    (Core.Silent_n_state.enumerable ~n)
    ~init:(Core.Scenarios.silent_worst_case ~n);
  let n = 64 in
  let params = Core.Params.optimal_silent n in
  bench
    ~label:(Printf.sprintf "optimal-silent n=%d" n)
    (Core.Optimal_silent.enumerable ~params ~n ())
    ~init:(Core.Scenarios.optimal_uniform (Prng.create ~seed:41) ~params ~n);
  Stats.Table.print table;
  print_newline ()

(* Eager vs lazy closure delta table: the same run_to_silence workload
   through the two probing modes of the count engine ([init_probe]
   forced on / off). The dense-transition rows are the lazy kernel's
   reason to exist — the eager fold probes (and then walks) a quadratic
   productive adjacency the run never uses, until the density cap
   demotes it. The sparse small-n row is the honest negative control:
   there the eager drain is strictly better (silence is provable the
   moment W hits 0, while the lazy engine must tick through unknown
   pairs until every null is cached), so eager remains the default for
   small initial supports. *)
let run_closure_section () =
  print_endline "== Count engine: eager vs lazy closure (run_to_silence) ==\n";
  let table =
    Stats.Table.create
      ~header:
        [
          "scenario"; "mode"; "silent"; "events"; "interactions"; "pairs probed";
          "cache cells"; "closure"; "wall s"; "events/s";
        ]
  in
  let bench : 'a. label:string -> protocol:'a Engine.Protocol.t -> init:'a array -> float array =
   fun ~label ~protocol ~init ->
    Array.map
      (fun eager ->
        let rng = Prng.create ~seed:2024 in
        let cs =
          Engine.Count_sim.make ~init_probe:eager ~protocol ~init:(Array.copy init) ~rng ()
        in
        let t0 = Unix.gettimeofday () in
        let o = Engine.Count_sim.run_to_silence cs in
        let wall = Unix.gettimeofday () -. t0 in
        Stats.Table.add_row table
          [
            label;
            (if eager then "eager" else "lazy");
            string_of_bool o.Engine.Count_sim.silent;
            string_of_int o.Engine.Count_sim.events;
            string_of_int o.Engine.Count_sim.interactions;
            string_of_int (Engine.Count_sim.pairs_probed cs);
            string_of_int (Engine.Count_sim.pairs_cached cs);
            string_of_int (Engine.Count_sim.closure_size cs);
            Printf.sprintf "%.3f" wall;
            Printf.sprintf "%.0f" (float_of_int o.Engine.Count_sim.events /. wall);
          ];
        wall)
      [| true; false |]
  in
  let deltas = ref [] in
  let record label walls = deltas := (label, walls.(0) /. walls.(1)) :: !deltas in
  (* dense: Optimal-Silent's counter states almost all interact *)
  List.iter
    (fun n ->
      let params = Core.Params.optimal_silent n in
      let protocol = Core.Optimal_silent.protocol ~params ~n () in
      let init = Core.Scenarios.optimal_uniform (Prng.create ~seed:7) ~params ~n in
      record
        (Printf.sprintf "optimal-silent n=%d (dense)" n)
        (bench ~label:(Printf.sprintf "optimal-silent n=%d (dense)" n) ~protocol ~init))
    [ 64; 128 ];
  (* sparse negative control: only the rank diagonal is productive *)
  let n = 64 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let init = Core.Scenarios.silent_uniform (Prng.create ~seed:7) ~n in
  record
    (Printf.sprintf "silent-n-state n=%d (sparse)" n)
    (bench ~label:(Printf.sprintf "silent-n-state n=%d (sparse)" n) ~protocol ~init);
  Stats.Table.print table;
  print_newline ();
  List.iter
    (fun (label, ratio) ->
      Printf.printf "%s: eager/lazy wall-clock ratio %.2fx (%s)\n" label ratio
        (if ratio >= 1.0 then "lazy wins" else "eager wins"))
    (List.rev !deltas);
  print_newline ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --jobs N: domain-pool width for the experiment sections (identical
     output for any value; micro-benchmarks are single-domain by nature). *)
  let rec extract_jobs acc = function
    | [] -> (None, List.rev acc)
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | Some _ | None ->
            Printf.eprintf "--jobs expects a positive integer (got %s)\n" v;
            exit 2)
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs expects a value\n";
        exit 2
    | a :: rest -> extract_jobs (a :: acc) rest
  in
  let jobs_opt, args = extract_jobs [] args in
  let jobs = match jobs_opt with Some j -> j | None -> Engine.Pool.default_jobs () in
  let full = List.mem "--full" args in
  let micro_only = List.mem "--micro-only" args in
  let kernel_only = List.mem "--kernel-only" args in
  let closure_only = List.mem "--closure-only" args in
  let names =
    List.filter
      (fun a ->
        a <> "--full" && a <> "--micro-only" && a <> "--kernel-only" && a <> "--closure-only")
      args
  in
  let mode = if full then Experiments.Exp_common.Full else Experiments.Exp_common.Quick in
  let seed = 2024 in
  if kernel_only then begin
    run_kernel_section ();
    exit 0
  end;
  if closure_only then begin
    run_closure_section ();
    exit 0
  end;
  if not micro_only then begin
    let selected =
      match names with
      | [] -> Experiments.Report.all
      | names ->
          List.map
            (fun n ->
              match Experiments.Report.find n with
              | Some e -> e
              | None ->
                  Printf.eprintf "unknown experiment '%s' (available: %s)\n" n
                    (String.concat ", "
                       (List.map (fun e -> e.Experiments.Report.name) Experiments.Report.all));
                  exit 2)
            names
    in
    List.iter
      (fun e ->
        print_string (e.Experiments.Report.run ~mode ~seed ~jobs);
        print_newline ())
      selected
  end;
  if names = [] then begin
    run_micro_benchmarks ();
    run_metrics_section ();
    run_kernel_section ();
    run_closure_section ()
  end
