(* Self-stabilization under repeated transient faults: the defining
   property, exercised end-to-end with randomized corruption. *)

let check_bool = Alcotest.(check bool)

let stabilize ~task ~expected_time sim =
  let n = Engine.Sim.n sim in
  let o =
    Engine.Runner.run_to_stability ~task
      ~max_interactions:
        (Engine.Sim.interactions sim + Engine.Runner.default_horizon ~n ~expected_time)
      ~confirm_interactions:(Engine.Runner.default_confirm ~n)
      (Engine.Exec.of_sim sim)
  in
  o.Engine.Runner.converged

let test_optimal_survives_repeated_bursts () =
  let n = 16 in
  let params = Core.Params.optimal_silent n in
  let protocol = Core.Optimal_silent.protocol ~params ~n () in
  let rng = Prng.create ~seed:101 in
  let fault_rng = Prng.create ~seed:102 in
  let init = Core.Scenarios.optimal_uniform rng ~params ~n in
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  for burst = 0 to 4 do
    check_bool
      (Printf.sprintf "recovered after burst %d" burst)
      true
      (stabilize ~task:Engine.Runner.Ranking ~expected_time:(float_of_int (30 * n)) sim);
    ignore
      (Engine.Sim.corrupt sim ~rng:fault_rng ~fraction:0.4 (fun rng ->
           (Core.Scenarios.optimal_uniform rng ~params ~n).(0)))
  done

let test_sublinear_survives_repeated_bursts () =
  let n = 8 and h = 1 in
  let params = Core.Params.sublinear ~h n in
  let protocol = Core.Sublinear.protocol ~params ~n ~h () in
  let rng = Prng.create ~seed:103 in
  let fault_rng = Prng.create ~seed:104 in
  let init = Core.Scenarios.sublinear_uniform rng ~params ~n in
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  let expected_time = float_of_int (params.Core.Params.d_max + (8 * params.Core.Params.t_h) + (8 * n)) in
  for burst = 0 to 3 do
    check_bool
      (Printf.sprintf "recovered after burst %d" burst)
      true
      (stabilize ~task:Engine.Runner.Ranking ~expected_time sim);
    ignore
      (Engine.Sim.corrupt sim ~rng:fault_rng ~fraction:0.4 (fun rng ->
           (Core.Scenarios.sublinear_uniform rng ~params ~n).(0)))
  done

let test_silent_survives_single_agent_faults () =
  (* Even a single corrupted agent after silence must be repaired. *)
  let n = 10 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let rng = Prng.create ~seed:105 in
  let fault_rng = Prng.create ~seed:106 in
  let sim = Engine.Sim.make ~protocol ~init:(Core.Scenarios.silent_correct ~n) ~rng in
  for k = 0 to 5 do
    Engine.Sim.inject sim (Prng.int fault_rng n)
      (Core.Silent_n_state.state_of_rank0 ~n (Prng.int fault_rng n));
    check_bool
      (Printf.sprintf "repaired fault %d" k)
      true
      (stabilize ~task:Engine.Runner.Ranking ~expected_time:(float_of_int (n * n)) sim)
  done

let qcheck_optimal_recovers_from_any_corruption =
  QCheck.Test.make ~name:"Optimal-Silent-SSR recovers from arbitrary corruption (randomized)"
    ~count:15
    QCheck.(pair small_int (float_range 0.1 1.0))
    (fun (seed, fraction) ->
      let n = 12 in
      let params = Core.Params.optimal_silent n in
      let protocol = Core.Optimal_silent.protocol ~params ~n () in
      let rng = Prng.create ~seed:(seed + 1) in
      let sim = Engine.Sim.make ~protocol ~init:(Core.Scenarios.optimal_correct ~n) ~rng in
      ignore
        (Engine.Sim.corrupt sim ~rng:(Prng.create ~seed:(seed + 2)) ~fraction (fun rng ->
             (Core.Scenarios.optimal_uniform rng ~params ~n).(0)));
      stabilize ~task:Engine.Runner.Ranking ~expected_time:(float_of_int (40 * n)) sim)

let qcheck_ranks_match_name_order =
  (* After Sublinear-Time-SSR stabilizes, ranks are exactly the
     lexicographic positions of the names. *)
  QCheck.Test.make ~name:"sublinear ranks = lexicographic name order" ~count:10 QCheck.small_int
    (fun seed ->
      let n = 8 and h = 1 in
      let params = Core.Params.sublinear ~h n in
      let protocol = Core.Sublinear.protocol ~params ~n ~h () in
      let rng = Prng.create ~seed:(seed + 10) in
      let init = Core.Scenarios.sublinear_fresh rng ~params ~n in
      let sim = Engine.Sim.make ~protocol ~init ~rng in
      let expected_time = float_of_int (params.Core.Params.d_max + (8 * params.Core.Params.t_h) + (8 * n)) in
      stabilize ~task:Engine.Runner.Ranking ~expected_time sim
      &&
      let snapshot = Engine.Sim.snapshot sim in
      let agents =
        Array.to_list snapshot
        |> List.filter_map (function
             | Core.Reset.Computing c -> Some (c.Core.Sublinear.name, c.Core.Sublinear.rank)
             | Core.Reset.Resetting _ -> None)
      in
      List.length agents = n
      &&
      let sorted = List.sort (fun (a, _) (b, _) -> Core.Name.compare a b) agents in
      List.for_all2 (fun (_, rank) expected -> rank = expected) sorted
        (List.init n (fun i -> i + 1)))

let qcheck_reset_wave_always_completes =
  QCheck.Test.make ~name:"Propagate-Reset completes from arbitrary Resetting soup" ~count:20
    QCheck.small_int (fun seed ->
      let n = 24 in
      let r_max = 10 and d_max = 20 in
      let spec =
        {
          Core.Reset.r_max;
          d_max;
          recruit_payload = (fun _ -> ());
          propagating_tick = (fun _ () -> ());
          dormant_tick = (fun _ () -> ());
          resetting_pair = (fun _ () () -> ((), ()));
          awaken = (fun _ () -> ());
        }
      in
      let protocol : (unit, unit) Core.Reset.role Engine.Protocol.t =
        {
          Engine.Protocol.name = "wave";
          n;
          transition =
            (fun rng a b ->
              match (a, b) with
              | Core.Reset.Computing (), Core.Reset.Computing () -> (a, b)
              | _ -> Core.Reset.step ~spec rng a b);
          deterministic = true;
          equal = ( = );
          pp = (fun fmt _ -> Format.pp_print_string fmt "_");
          rank = (fun _ -> None);
          is_leader = (fun _ -> false);
        }
      in
      let rng = Prng.create ~seed:(seed + 20) in
      let init =
        Array.init n (fun _ ->
            match Prng.int rng 3 with
            | 0 -> Core.Reset.Computing ()
            | 1 ->
                Core.Reset.Resetting
                  { Core.Reset.resetcount = 1 + Prng.int rng r_max; delaytimer = Prng.int rng (d_max + 1); payload = () }
            | _ ->
                Core.Reset.Resetting
                  { Core.Reset.resetcount = 0; delaytimer = Prng.int rng (d_max + 1); payload = () })
      in
      let sim = Engine.Sim.make ~protocol ~init ~rng in
      let all_computing () =
        Engine.Sim.fold_states sim ~init:true ~f:(fun acc s ->
            acc && match s with Core.Reset.Computing () -> true | Core.Reset.Resetting _ -> false)
      in
      let budget = 2000 * n in
      while (not (all_computing ())) && Engine.Sim.interactions sim < budget do
        Engine.Sim.step sim
      done;
      all_computing ())

let test_history_timers_expire_paths () =
  (* After T ticks, a path stops being usable for detection. *)
  let name_a = Core.Name.of_int ~bits:1 ~len:3 in
  let name_b = Core.Name.of_int ~bits:2 ~len:3 in
  let tree =
    Core.History_tree.merge ~h:2 ~own:(Core.Name.of_int ~bits:0 ~len:3) ~partner:name_a
      ~partner_tree:[ { Core.History_tree.name = name_b; sync = 9; timer = 3; children = [] } ]
      ~sync:5 ~timer:2 Core.History_tree.empty
  in
  Alcotest.(check int) "fresh path exists" 1
    (List.length (Core.History_tree.fresh_paths_to ~name:name_b tree));
  let aged = Core.History_tree.decrement_timers (Core.History_tree.decrement_timers tree) in
  Alcotest.(check int) "expired path ignored" 0
    (List.length (Core.History_tree.fresh_paths_to ~name:name_b aged))

let suite =
  [
    Alcotest.test_case "optimal survives repeated bursts" `Slow test_optimal_survives_repeated_bursts;
    Alcotest.test_case "sublinear survives repeated bursts" `Slow test_sublinear_survives_repeated_bursts;
    Alcotest.test_case "silent survives single faults" `Slow test_silent_survives_single_agent_faults;
    QCheck_alcotest.to_alcotest qcheck_optimal_recovers_from_any_corruption;
    QCheck_alcotest.to_alcotest qcheck_ranks_match_name_order;
    QCheck_alcotest.to_alcotest qcheck_reset_wave_always_completes;
    Alcotest.test_case "history timers expire paths" `Quick test_history_timers_expire_paths;
  ]
