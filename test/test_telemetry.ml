(* Tests for the telemetry subsystem: the hand-rolled JSON layer, the
   JSONL event schema (encode/decode round trips, including through the
   printed text), sinks, the metrics registry, manifests, and the
   timeline fold behind bin/timeline. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* JSON encode/parse round trip *)

let test_json_atoms () =
  let roundtrip j = Telemetry.Json.parse (Telemetry.Json.to_string j) in
  List.iter
    (fun j ->
      match roundtrip j with
      | Ok j' -> check_bool (Telemetry.Json.to_string j) true (Telemetry.Json.equal j j')
      | Error msg -> Alcotest.failf "parse failed on %s: %s" (Telemetry.Json.to_string j) msg)
    Telemetry.Json.
      [
        Null;
        Bool true;
        Bool false;
        Int 0;
        Int (-42);
        Int max_int;
        Float 0.5;
        Float (-1.25e30);
        String "";
        String "plain";
        String "esc \" \\ \n \t \x01 \xe2\x82\xac";
        List [];
        List [ Int 1; String "two"; Null ];
        Obj [];
        Obj [ ("a", Int 1); ("b", Obj [ ("nested", List [ Bool false ]) ]) ];
      ]

let test_json_nonfinite_floats () =
  (* JSON has no NaN/inf literals; the encoder degrades them to null
     rather than emitting unparseable text. *)
  check_string "nan" "null" (Telemetry.Json.to_string (Telemetry.Json.Float Float.nan));
  check_string "inf" "null" (Telemetry.Json.to_string (Telemetry.Json.Float Float.infinity))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Telemetry.Json.parse s with
      | Ok _ -> Alcotest.failf "expected a parse error on %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\":}"; "1 2"; "{'a':1}" ]

let test_json_unicode_escape () =
  match Telemetry.Json.parse {|"é😀"|} with
  | Ok (Telemetry.Json.String s) -> check_string "decoded UTF-8" "\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* Random JSON values: depth-bounded, with printable-ASCII and
   multi-byte strings. *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Telemetry.Json.Null;
        map (fun b -> Telemetry.Json.Bool b) bool;
        map (fun i -> Telemetry.Json.Int i) int;
        map (fun f -> Telemetry.Json.Float f) (float_bound_inclusive 1e9);
        map (fun s -> Telemetry.Json.String s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> Telemetry.Json.List l) (list_size (int_bound 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs ->
                  (* object keys must be distinct for equality to be
                     well-defined *)
                  let seen = Hashtbl.create 8 in
                  Telemetry.Json.Obj
                    (List.filter
                       (fun (k, _) ->
                         if Hashtbl.mem seen k then false
                         else begin
                           Hashtbl.add seen k ();
                           true
                         end)
                       kvs))
                (list_size (int_bound 4) (pair key (self (depth - 1)))) );
          ])
    2

let qcheck_json_roundtrip =
  QCheck.Test.make ~name:"JSON print/parse round trip" ~count:500
    (QCheck.make ~print:Telemetry.Json.to_string json_gen) (fun j ->
      match Telemetry.Json.parse (Telemetry.Json.to_string j) with
      | Ok j' -> Telemetry.Json.equal j j'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Event schema round trips *)

let run_gen =
  let open QCheck.Gen in
  let* engine = oneofl [ Engine.Exec.Agent; Engine.Exec.Count ] in
  let* protocol = oneofl [ "Silent-n-state-SSR"; "Optimal-Silent-SSR"; "X" ] in
  let* n = int_range 2 4096 in
  let* seed = int_range 0 1_000_000 in
  let* trial = opt (int_bound 64) in
  return (Telemetry.Events.make_run ~engine ~protocol ~n ~seed ?trial ())

let event_gen =
  let open QCheck.Gen in
  let* interactions = int_bound 1_000_000_000 in
  let* time = float_bound_inclusive 1e6 in
  oneof
    [
      return (Engine.Instrument.Step { interactions; time });
      return (Engine.Instrument.Correct_entered { interactions; time });
      return (Engine.Instrument.Correct_lost { interactions; time });
      return (Engine.Instrument.Silence { interactions; time });
      map
        (fun agents -> Engine.Instrument.Fault { agents; interactions; time })
        (int_range 1 4096);
    ]

let qcheck_event_roundtrip =
  QCheck.Test.make ~name:"event JSONL encode/decode round trip" ~count:500
    (QCheck.make
       ~print:(fun (run, event) ->
         Telemetry.Json.to_string (Telemetry.Events.to_json ~run event))
       QCheck.Gen.(pair run_gen event_gen))
    (fun (run, event) ->
      let line = Telemetry.Json.to_string (Telemetry.Events.to_json ~run event) in
      match Telemetry.Events.of_line line with
      | Ok (run', event') -> run' = run && event' = event
      | Error _ -> false)

let test_event_decode_rejects () =
  let run =
    Telemetry.Events.make_run ~engine:Engine.Exec.Agent ~protocol:"P" ~n:4 ~seed:1 ()
  in
  let base = Telemetry.Events.to_json ~run (Engine.Instrument.Step { interactions = 3; time = 0.75 }) in
  let tamper f =
    match base with
    | Telemetry.Json.Obj kvs -> Telemetry.Json.Obj (f kvs)
    | _ -> Alcotest.fail "event did not encode as an object"
  in
  let expect_error name json =
    match Telemetry.Events.of_json json with
    | Ok _ -> Alcotest.failf "%s: decode should have failed" name
    | Error _ -> ()
  in
  expect_error "future version"
    (tamper (List.map (fun (k, v) -> if k = "v" then (k, Telemetry.Json.Int 99) else (k, v))));
  expect_error "unknown type"
    (tamper
       (List.map (fun (k, v) -> if k = "type" then (k, Telemetry.Json.String "warp") else (k, v))));
  expect_error "missing field" (tamper (List.filter (fun (k, _) -> k <> "interactions")));
  expect_error "fault without agents"
    (tamper
       (List.map (fun (k, v) -> if k = "type" then (k, Telemetry.Json.String "fault") else (k, v))))

(* ------------------------------------------------------------------ *)
(* Sinks *)

let test_sink_buffer () =
  let sink = Telemetry.Sink.buffer () in
  check_int "fresh sink is empty" 0 (Telemetry.Sink.lines sink);
  Telemetry.Sink.write sink (Telemetry.Json.Int 1);
  Telemetry.Sink.write_line sink "{\"raw\":true}";
  check_int "two lines" 2 (Telemetry.Sink.lines sink);
  check_string "contents" "1\n{\"raw\":true}\n" (Telemetry.Sink.contents sink);
  Telemetry.Sink.close sink;
  Telemetry.Sink.close sink;
  (* contents survive close; writes after close are dropped *)
  Telemetry.Sink.write sink (Telemetry.Json.Int 2);
  check_int "closed sink drops writes" 2 (Telemetry.Sink.lines sink)

let test_sink_file () =
  let path = Filename.temp_file "telemetry_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Telemetry.Sink.file path in
      Telemetry.Sink.write sink (Telemetry.Json.Obj [ ("a", Telemetry.Json.Int 1) ]);
      Telemetry.Sink.write sink (Telemetry.Json.Obj [ ("a", Telemetry.Json.Int 2) ]);
      Alcotest.check_raises "no contents on a file sink"
        (Invalid_argument "Telemetry.Sink.contents: file sink") (fun () ->
          ignore (Telemetry.Sink.contents sink));
      Telemetry.Sink.close sink;
      let ic = open_in path in
      let l1 = input_line ic in
      let l2 = input_line ic in
      let eof = try ignore (input_line ic); false with End_of_file -> true in
      close_in ic;
      check_string "line 1" "{\"a\":1}" l1;
      check_string "line 2" "{\"a\":2}" l2;
      check_bool "exactly two lines" true eof)

let test_sink_flush_visibility () =
  let path = Filename.temp_file "telemetry_flush" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let read () =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let sink = Telemetry.Sink.file path in
      Telemetry.Sink.write_line sink "{\"a\":1}";
      Telemetry.Sink.flush sink;
      check_string "flush makes the line durable before close" "{\"a\":1}\n" (read ());
      Telemetry.Sink.write_line sink "{\"a\":2}";
      Telemetry.Sink.flush_all ();
      check_string "flush_all reaches open sinks" "{\"a\":1}\n{\"a\":2}\n" (read ());
      Telemetry.Sink.close sink;
      (* append mode continues an existing file instead of truncating *)
      let sink = Telemetry.Sink.file ~append:true ~autoflush:true path in
      Telemetry.Sink.write_line sink "{\"a\":3}";
      check_string "autoflush append" "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n" (read ());
      Telemetry.Sink.close sink)

(* The mid-write kill scenarios run in a helper process
   (sink_crash_child.ml) spawned with create_process: Unix.fork is
   unavailable once the pool suites have created domains. *)
let crash_child_exe () =
  let candidates = [ "sink_crash_child.exe"; Filename.concat "test" "sink_crash_child.exe" ] in
  match List.find_opt Sys.file_exists candidates with
  (* absolute: create_process does a PATH search on bare names *)
  | Some exe -> Filename.concat (Sys.getcwd ()) exe
  | None -> Alcotest.fail "sink_crash_child.exe not found (dune deps)"

(* A child writes journal-style through an autoflush sink, then SIGKILLs
   itself mid-record. Every complete line must be durable; the torn tail
   must be undecodable-but-tolerable (the shape Tail/Timeline/
   Journal.replay all drop). *)
let test_sink_midwrite_kill () =
  let path = Filename.temp_file "telemetry_kill" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let exe = crash_child_exe () in
      let pid =
        Unix.create_process exe [| exe; "kill"; path |] Unix.stdin Unix.stdout Unix.stderr
      in
      let _, status = Unix.waitpid [] pid in
      check_bool "child died by SIGKILL" true (status = Unix.WSIGNALED Sys.sigkill);
      let ic = open_in_bin path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match String.split_on_char '\n' contents with
      | lines when List.length lines = 51 ->
          (* 50 complete lines + the torn unterminated tail *)
          List.iteri
            (fun i line ->
              if i < 50 then
                match Telemetry.Json.parse line with
                | Ok j ->
                    check_bool
                      (Printf.sprintf "line %d durable and ordered" (i + 1))
                      true
                      (Telemetry.Json.member "i" j = Some (Telemetry.Json.Int (i + 1)))
                | Error msg -> Alcotest.failf "complete line %d lost/corrupt: %s" (i + 1) msg
              else
                check_bool "torn tail undecodable" true
                  (Result.is_error (Telemetry.Json.parse line)))
            lines
      | lines ->
          Alcotest.failf "expected 50 durable lines + torn tail, got %d segments"
            (List.length lines))

(* SIGTERM with only the crash-flush hardening installed: buffered
   (non-autoflush) lines must still reach disk before the process dies
   with the signal's default disposition. *)
let test_sink_crash_flush_on_sigterm () =
  let path = Filename.temp_file "telemetry_crash" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let exe = crash_child_exe () in
      let r, w = Unix.pipe () in
      let pid = Unix.create_process exe [| exe; "term"; path |] Unix.stdin w Unix.stderr in
      Unix.close w;
      (* the child prints "ready" once its lines sit in the channel
         buffer and it is waiting to be shot *)
      ignore (Unix.read r (Bytes.create 5) 0 5);
      Unix.close r;
      Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      check_bool "child died by SIGTERM (default disposition re-delivered)" true
        (status = Unix.WSIGNALED Sys.sigterm);
      let ic = open_in path in
      let count = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr count
         done
       with End_of_file -> close_in ic);
      check_int "buffered lines flushed by the signal handler" 50 !count)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_registry () =
  let reg = Telemetry.Metrics.create () in
  check_bool "unknown counter" true (Telemetry.Metrics.counter_value reg "c" = None);
  Telemetry.Metrics.incr reg "c";
  Telemetry.Metrics.incr reg "c";
  Telemetry.Metrics.add reg "c" 3.0;
  check_bool "counter accumulates" true (Telemetry.Metrics.counter_value reg "c" = Some 5.0);
  Telemetry.Metrics.set reg "g" 1.5;
  Telemetry.Metrics.set reg "g" 2.5;
  check_bool "gauge keeps last" true (Telemetry.Metrics.gauge_value reg "g" = Some 2.5);
  Telemetry.Metrics.observe reg "h" 1.0;
  Telemetry.Metrics.observe reg "h" 3.0;
  Alcotest.(check (array (float 1e-9)))
    "observations in order" [| 1.0; 3.0 |]
    (Telemetry.Metrics.observations reg "h")

let test_metrics_json_parses_back () =
  let reg = Telemetry.Metrics.create () in
  Telemetry.Metrics.add reg "zeta" 2.0;
  Telemetry.Metrics.add reg "alpha" 7.0;
  Telemetry.Metrics.set reg "util" 0.75;
  for i = 1 to 10 do
    Telemetry.Metrics.observe reg "wall" (float_of_int i)
  done;
  let text = Telemetry.Json.to_string (Telemetry.Metrics.to_json reg) in
  match Telemetry.Json.parse text with
  | Error msg -> Alcotest.failf "metrics dump does not parse: %s" msg
  | Ok json ->
      let member name = Option.get (Telemetry.Json.member name json) in
      check_bool "versioned" true
        (Telemetry.Json.to_int (Telemetry.Json.member "v" json |> Option.get) = Some 1);
      (match member "counters" with
      | Telemetry.Json.Obj kvs ->
          Alcotest.(check (list string))
            "counter names sorted" [ "alpha"; "zeta" ] (List.map fst kvs)
      | _ -> Alcotest.fail "counters is not an object");
      let hist = Option.get (Telemetry.Json.member "histograms" json) in
      let wall = Option.get (Telemetry.Json.member "wall" hist) in
      let value name = Option.get (Telemetry.Json.to_float (Option.get (Telemetry.Json.member name wall))) in
      check_int "count" 10 (int_of_float (value "count"));
      Alcotest.(check (float 1e-9)) "mean" 5.5 (value "mean");
      Alcotest.(check (float 1e-9)) "total" 55.0 (value "total")

let test_metrics_ambient () =
  check_bool "no ambient registry by default" true (Telemetry.Metrics.ambient () = None);
  let reg = Telemetry.Metrics.create () in
  Telemetry.Metrics.install reg;
  Fun.protect
    ~finally:(fun () -> Telemetry.Metrics.uninstall ())
    (fun () ->
      (match Telemetry.Metrics.ambient () with
      | Some r -> Telemetry.Metrics.incr r "seen"
      | None -> Alcotest.fail "ambient registry not visible");
      check_bool "same registry" true (Telemetry.Metrics.counter_value reg "seen" = Some 1.0));
  check_bool "uninstalled" true (Telemetry.Metrics.ambient () = None)

(* ------------------------------------------------------------------ *)
(* Manifests *)

let test_manifest_json () =
  let m =
    Telemetry.Manifest.make ~run:"ssr_sim" ~protocol:"Silent-n-state-SSR" ~engine:"count" ~n:256
      ~seed:7 ~trials:10 ~jobs:4
      ~params:[ ("scenario", Telemetry.Json.String "worst-case") ]
      ~wall_clock_s:1.25 ()
  in
  let text = Telemetry.Json.to_string (Telemetry.Manifest.to_json m) in
  match Telemetry.Json.parse text with
  | Error msg -> Alcotest.failf "manifest does not parse: %s" msg
  | Ok json ->
      let str name =
        Option.get (Telemetry.Json.to_string_opt (Option.get (Telemetry.Json.member name json)))
      in
      let int name =
        Option.get (Telemetry.Json.to_int (Option.get (Telemetry.Json.member name json)))
      in
      check_string "kind" "manifest" (str "kind");
      check_string "run" "ssr_sim" (str "run");
      check_int "v" 1 (int "v");
      check_int "events_schema" Telemetry.Events.version (int "events_schema");
      check_int "trials" 10 (int "trials");
      check_int "jobs" 4 (int "jobs");
      check_bool "argv recorded" true (Telemetry.Json.member "argv" json <> None);
      let params = Option.get (Telemetry.Json.member "params" json) in
      check_string "params.scenario" "worst-case"
        (Option.get
           (Telemetry.Json.to_string_opt (Option.get (Telemetry.Json.member "scenario" params))))

(* ------------------------------------------------------------------ *)
(* Timeline fold *)

let mk_run ?trial () =
  Telemetry.Events.make_run ~engine:Engine.Exec.Agent ~protocol:"P" ~n:8 ~seed:1 ?trial ()

let step ~at i = Engine.Instrument.Step { interactions = i; time = at }
let entered ~at i = Engine.Instrument.Correct_entered { interactions = i; time = at }
let lost ~at i = Engine.Instrument.Correct_lost { interactions = i; time = at }
let fault ~at ?(agents = 1) i = Engine.Instrument.Fault { agents; interactions = i; time = at }
let silence ~at i = Engine.Instrument.Silence { interactions = i; time = at }

let test_timeline_recovery () =
  let run = mk_run () in
  let events =
    List.map
      (fun e -> (run, e))
      [
        step ~at:0.5 4;
        entered ~at:1.0 8;
        (* burst 1: two faults back to back, breaks correctness,
           recovers at t=5.0 *)
        fault ~at:2.0 16;
        fault ~at:2.5 ~agents:3 20;
        lost ~at:2.6 21;
        entered ~at:5.0 40;
        (* burst 2: absorbed without a correctness loss *)
        fault ~at:6.0 48;
        entered ~at:6.25 50;
        silence ~at:7.0 56;
      ]
  in
  match Telemetry.Timeline.fold events with
  | [ s ] ->
      check_int "events" 9 s.Telemetry.Timeline.events;
      check_int "steps" 1 s.Telemetry.Timeline.steps;
      check_bool "first correct" true (s.Telemetry.Timeline.first_correct_at = Some 1.0);
      check_bool "last correct" true (s.Telemetry.Timeline.last_correct_at = Some 6.25);
      check_int "violations" 1 s.Telemetry.Timeline.violations;
      check_bool "silent" true (s.Telemetry.Timeline.silent_at = Some 7.0);
      (match s.Telemetry.Timeline.bursts with
      | [ b1; b2 ] ->
          check_int "burst1 faults" 2 b1.Telemetry.Timeline.faults;
          check_int "burst1 agents" 4 b1.Telemetry.Timeline.agents;
          check_bool "burst1 broke" true b1.Telemetry.Timeline.broke;
          Alcotest.(check (option (float 1e-9)))
            "burst1 recovery = recovered - last fault" (Some 2.5)
            (Telemetry.Timeline.recovery_time b1);
          check_bool "burst2 absorbed" false b2.Telemetry.Timeline.broke;
          Alcotest.(check (option (float 1e-9)))
            "burst2 recovery" (Some 0.25)
            (Telemetry.Timeline.recovery_time b2)
      | bursts -> Alcotest.failf "expected 2 bursts, got %d" (List.length bursts))
  | summaries -> Alcotest.failf "expected 1 summary, got %d" (List.length summaries)

let test_timeline_open_burst_and_interleaving () =
  let r0 = mk_run ~trial:0 () and r1 = mk_run ~trial:1 () in
  let events =
    [
      (r0, entered ~at:1.0 8);
      (r1, entered ~at:1.5 12);
      (* r0's fault burst never recovers before the stream ends *)
      (r0, fault ~at:2.0 16);
      (r1, step ~at:2.0 16);
      (r0, lost ~at:2.1 17);
    ]
  in
  match Telemetry.Timeline.fold events with
  | [ s0; s1 ] ->
      check_string "first-appearance order" r0.Telemetry.Events.id
        s0.Telemetry.Timeline.run.Telemetry.Events.id;
      (match s0.Telemetry.Timeline.bursts with
      | [ b ] ->
          check_bool "broke" true b.Telemetry.Timeline.broke;
          check_bool "unrecovered" true (b.Telemetry.Timeline.recovered_at = None);
          check_bool "no recovery time" true (Telemetry.Timeline.recovery_time b = None)
      | bursts -> Alcotest.failf "expected 1 burst, got %d" (List.length bursts));
      check_int "r1 saw no burst" 0 (List.length s1.Telemetry.Timeline.bursts);
      check_int "r1 steps" 1 s1.Telemetry.Timeline.steps
  | summaries -> Alcotest.failf "expected 2 summaries, got %d" (List.length summaries)

let test_timeline_load_rejects_garbage () =
  let text = "{\"v\":1}\n" in
  let path = Filename.temp_file "telemetry_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      let ic = open_in path in
      let result = Telemetry.Timeline.load ic in
      close_in ic;
      match result with
      | Ok _ -> Alcotest.fail "expected load to fail"
      | Error msg -> check_bool "names the line" true (String.length msg > 0))

(* ------------------------------------------------------------------ *)
(* End to end: both engines stream decodable events with the same
   landmark semantics through an attached sink *)

let landmark_stream ~kind =
  let n = 16 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let rng = Prng.create ~seed:5 in
  let init = Core.Scenarios.silent_uniform (Prng.create ~seed:6) ~n in
  let exec = Engine.Exec.make ~kind ~protocol ~init ~rng () in
  let run = Telemetry.Events.make_run ~engine:kind ~protocol:"Silent-n-state-SSR" ~n ~seed:5 () in
  let sink = Telemetry.Sink.buffer () in
  Telemetry.Events.attach ~step_interval:8 exec ~run sink;
  ignore
    (Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
       ~max_interactions:(100 * n * n * n)
       ~confirm_interactions:(Engine.Runner.default_confirm ~n)
       exec);
  let lines =
    String.split_on_char '\n' (Telemetry.Sink.contents sink)
    |> List.filter (fun l -> l <> "")
  in
  List.map
    (fun line ->
      match Telemetry.Events.of_line line with
      | Ok decoded -> decoded
      | Error msg -> Alcotest.failf "undecodable line %S: %s" line msg)
    lines

let test_attach_both_engines () =
  List.iter
    (fun kind ->
      let name = Engine.Exec.kind_to_string kind in
      let events = landmark_stream ~kind in
      check_bool (name ^ " produced events") true (events <> []);
      let count p = List.length (List.filter (fun (_, e) -> p e) events) in
      check_int
        (name ^ " enters correctness exactly once")
        1
        (count (function Engine.Instrument.Correct_entered _ -> true | _ -> false));
      check_int (name ^ " no losses") 0
        (count (function Engine.Instrument.Correct_lost _ -> true | _ -> false));
      check_int (name ^ " no faults") 0
        (count (function Engine.Instrument.Fault _ -> true | _ -> false)))
    [ Engine.Exec.Agent; Engine.Exec.Count ]

let test_attach_rejects_bad_interval () =
  let n = 4 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let rng = Prng.create ~seed:1 in
  let exec =
    Engine.Exec.make ~kind:Engine.Exec.Agent ~protocol
      ~init:(Core.Scenarios.silent_correct ~n) ~rng ()
  in
  let run = Telemetry.Events.make_run ~engine:Engine.Exec.Agent ~protocol:"P" ~n ~seed:1 () in
  Alcotest.check_raises "step_interval must be positive"
    (Invalid_argument "Telemetry.Events.attach: step_interval must be positive") (fun () ->
      Telemetry.Events.attach ~step_interval:0 exec ~run (Telemetry.Sink.buffer ()))

let suite =
  [
    Alcotest.test_case "json: atom round trips" `Quick test_json_atoms;
    Alcotest.test_case "json: non-finite floats encode as null" `Quick
      test_json_nonfinite_floats;
    Alcotest.test_case "json: malformed inputs rejected" `Quick test_json_parse_errors;
    Alcotest.test_case "json: unicode escapes decode to UTF-8" `Quick test_json_unicode_escape;
    QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_event_roundtrip;
    Alcotest.test_case "events: decoder rejects tampered records" `Quick
      test_event_decode_rejects;
    Alcotest.test_case "sink: buffer semantics" `Quick test_sink_buffer;
    Alcotest.test_case "sink: file writes JSONL" `Quick test_sink_file;
    Alcotest.test_case "sink: flush and flush_all make lines durable" `Quick
      test_sink_flush_visibility;
    Alcotest.test_case "sink: mid-write SIGKILL loses at most the torn tail" `Quick
      test_sink_midwrite_kill;
    Alcotest.test_case "sink: crash flush drains buffers on SIGTERM" `Quick
      test_sink_crash_flush_on_sigterm;
    Alcotest.test_case "metrics: counters, gauges, histograms" `Quick test_metrics_registry;
    Alcotest.test_case "metrics: dump parses back, sorted" `Quick test_metrics_json_parses_back;
    Alcotest.test_case "metrics: ambient install/uninstall" `Quick test_metrics_ambient;
    Alcotest.test_case "manifest: versioned and complete" `Quick test_manifest_json;
    Alcotest.test_case "timeline: fault bursts and recovery times" `Quick
      test_timeline_recovery;
    Alcotest.test_case "timeline: interleaved runs, unrecovered burst" `Quick
      test_timeline_open_burst_and_interleaving;
    Alcotest.test_case "timeline: load rejects undecodable lines" `Quick
      test_timeline_load_rejects_garbage;
    Alcotest.test_case "attach: both engines stream decodable landmarks" `Quick
      test_attach_both_engines;
    Alcotest.test_case "attach: rejects non-positive step interval" `Quick
      test_attach_rejects_bad_interval;
  ]
