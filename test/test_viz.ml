(* The visualization pipeline: scales, chart builders, golden SVG
   byte-identity over the checked-in fixtures, the tailer's
   truncated-line tolerance, spans, and an HTTP/SSE smoke test that
   interleaves client and server in one process via Serve.poll. *)

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let read_file path =
  let path = if Sys.file_exists path then path else Filename.concat "test" path in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_events path =
  let path = if Sys.file_exists path then path else Filename.concat "test" path in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match Telemetry.Timeline.load ic with
      | Ok events -> events
      | Error msg -> Alcotest.failf "%s: %s" path msg)

let load_json path =
  match Telemetry.Json.parse (read_file path) with
  | Ok json -> json
  | Error msg -> Alcotest.failf "%s: %s" path msg

(* {2 Scales} *)

let test_scale_linear () =
  let s = Viz.Scale.make Viz.Scale.Linear ~domain:(0.0, 10.0) ~range:(0.0, 100.0) in
  Alcotest.(check (float 1e-9)) "midpoint" 50.0 (Viz.Scale.apply s 5.0);
  let ticks = Viz.Scale.ticks s in
  check_bool "several ticks" true (List.length ticks >= 3);
  List.iter (fun v -> check_bool "tick inside domain" true (v >= 0.0 && v <= 10.0)) ticks

let test_scale_degenerate () =
  (* equal endpoints repair rather than divide by zero *)
  let s = Viz.Scale.make Viz.Scale.Linear ~domain:(3.0, 3.0) ~range:(0.0, 100.0) in
  let lo, hi = Viz.Scale.domain s in
  check_bool "repaired to a real interval" true (lo < hi);
  check_bool "apply finite" true (Float.is_finite (Viz.Scale.apply s 3.0));
  (* non-finite domain repairs too *)
  let s = Viz.Scale.make Viz.Scale.Linear ~domain:(Float.nan, infinity) ~range:(0.0, 1.0) in
  let lo, hi = Viz.Scale.domain s in
  check_bool "nan domain repaired" true (Float.is_finite lo && Float.is_finite hi && lo < hi)

let test_scale_log () =
  let s = Viz.Scale.make Viz.Scale.Log ~domain:(1.0, 1000.0) ~range:(0.0, 300.0) in
  Alcotest.(check (float 1e-9)) "decade spacing" 100.0 (Viz.Scale.apply s 10.0);
  check_int "decade ticks" 4 (List.length (Viz.Scale.ticks s));
  (* zero/negative data clamps to the low edge instead of NaN *)
  Alcotest.(check (float 1e-9)) "clamped" 0.0 (Viz.Scale.apply s 0.0);
  Alcotest.(check (float 1e-9)) "clamped negative" 0.0 (Viz.Scale.apply s (-5.0));
  (* a domain touching zero is repaired to something positive *)
  let s = Viz.Scale.make Viz.Scale.Log ~domain:(0.0, 100.0) ~range:(0.0, 1.0) in
  let lo, _ = Viz.Scale.domain s in
  check_bool "positive lo" true (lo > 0.0);
  (* sub-decade domains fall back to linear-style ticks *)
  let s = Viz.Scale.make Viz.Scale.Log ~domain:(8.0, 16.0) ~range:(0.0, 1.0) in
  check_bool "sub-decade ticks" true (List.length (Viz.Scale.ticks s) >= 3)

let test_tick_labels () =
  check_string "integer" "50" (Viz.Scale.tick_label 50.0);
  check_string "zero" "0" (Viz.Scale.tick_label 0.0);
  check_string "negative" "-2.5" (Viz.Scale.tick_label (-2.5));
  check_string "scientific large" "1e6" (Viz.Scale.tick_label 1e6);
  check_string "scientific small" "2.5e-5" (Viz.Scale.tick_label 2.5e-5)

(* {2 Chart builders: total on degenerate input} *)

let test_empty_charts () =
  (* no series / empty series / single points must render, not raise *)
  let renders chart =
    let svg = Viz.Plot.render chart in
    check_bool "renders svg" true
      (String.length svg > 0 && String.sub svg 0 5 = "<?xml")
  in
  renders (Viz.Plot.chart ~title:"empty" []);
  renders (Viz.Plot.chart ~title:"empty series" [ Viz.Plot.series (Viz.Plot.Line [||]) ]);
  renders
    (Viz.Plot.chart ~title:"single point"
       [ Viz.Plot.series ~label:"s" (Viz.Plot.Line_points [| (1.0, 1.0) |]) ]);
  renders
    (Viz.Plot.chart ~title:"log with zero" ~x_kind:Viz.Scale.Log
       [ Viz.Plot.series (Viz.Plot.Points [| (0.0, 1.0); (10.0, 2.0) |]) ]);
  renders (Viz.Charts.slope_fit []);
  renders (Viz.Charts.recovery_cdf []);
  renders (Viz.Charts.availability []);
  renders (Viz.Charts.phase_profile (Telemetry.Json.Obj []))

let test_render_deterministic () =
  let chart =
    Viz.Charts.slope_points
      [ ("a", [ (8.0, 30.0, 2.0); (16.0, 120.0, 8.0) ]); ("b", [ (8.0, 10.0, 1.0) ]) ]
  in
  check_string "same chart, same bytes" (Viz.Plot.render chart) (Viz.Plot.render chart)

let test_svg_escaping () =
  let svg =
    Viz.Plot.render
      (Viz.Plot.chart ~title:{|<&"> to escape|}
         [ Viz.Plot.series ~label:"a<b" (Viz.Plot.Line [| (0.0, 0.0); (1.0, 1.0) |]) ])
  in
  let contains sub =
    let n = String.length svg and m = String.length sub in
    let rec at i = i + m <= n && (String.sub svg i m = sub || at (i + 1)) in
    at 0
  in
  check_bool "escaped title" true (contains "&lt;&amp;&quot;&gt; to escape");
  check_bool "no raw <& in text" false (contains {|<&">|})

(* {2 Golden SVGs over the checked-in fixtures}

   These hold the whole pipeline — event decoding, timeline folding,
   aggregation, scales, layout, serialization — byte for byte. The same
   fixtures drive [plot --embed], so figures/*.svg stay regenerable.
   Regenerate after an intentional rendering change:
     dune exec bin/plot.exe -- --embed && cp figures/<new>.svg test/golden/... *)

let availability_series () =
  List.map
    (fun (load, file) ->
      let summaries = Telemetry.Timeline.fold (load_events ("golden/" ^ file)) in
      let label =
        match summaries with
        | s :: _ ->
            Printf.sprintf "%s / %s" s.Telemetry.Timeline.run.Telemetry.Events.protocol
              s.Telemetry.Timeline.run.Telemetry.Events.engine
        | [] -> Alcotest.fail "empty availability fixture"
      in
      (label, load, Viz.Charts.mean_availability summaries))
    [ (0.25, "viz_avail_025.jsonl"); (1.0, "viz_avail_1.jsonl"); (4.0, "viz_avail_4.jsonl") ]

let check_golden_svg ~golden chart =
  let want = read_file ("golden/" ^ golden) in
  check_string
    (Printf.sprintf "matches %s (regenerate: plot --embed, then copy from figures/)" golden)
    want (Viz.Plot.render chart)

let test_golden_slope () =
  check_golden_svg ~golden:"svg_slope.svg"
    (Viz.Charts.slope_fit ~title:"Convergence time vs population size (fixture sweep)"
       (load_events "golden/viz_slope.jsonl"))

let test_golden_availability () =
  let samples = availability_series () in
  let labels = List.sort_uniq compare (List.map (fun (l, _, _) -> l) samples) in
  let series =
    List.map
      (fun label ->
        (label, List.filter_map (fun (l, x, y) -> if l = label then Some (x, y) else None) samples))
      labels
  in
  check_golden_svg ~golden:"svg_availability.svg" (Viz.Charts.availability series)

let test_golden_recovery_cdf () =
  check_golden_svg ~golden:"svg_recovery_cdf.svg"
    (Viz.Charts.recovery_cdf (load_events "golden/viz_soak.jsonl"))

let test_golden_phase_profile () =
  let json = load_json "golden/viz_phases.metrics.json" in
  check_bool "fixture has spans" true (Viz.Charts.has_spans json);
  check_golden_svg ~golden:"svg_phase_profile.svg" (Viz.Charts.phase_profile json)

(* {2 Timeline: truncated final line} *)

let run_a = Telemetry.Events.make_run ~engine:Engine.Exec.Agent ~protocol:"P" ~n:8 ~seed:1 ()

let line event = Telemetry.Json.to_string (Telemetry.Events.to_json ~run:run_a event)

let load_string s =
  let path = Filename.temp_file "viz_load" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Telemetry.Timeline.load ic))

let test_load_truncated_tail () =
  let l1 = line (Engine.Instrument.Step { interactions = 8; time = 1.0 }) in
  let l2 = line (Engine.Instrument.Correct_entered { interactions = 16; time = 2.0 }) in
  (* a writer mid-line: the complete prefix decodes, the torn tail is
     dropped silently *)
  let torn = l1 ^ "\n" ^ String.sub l2 0 (String.length l2 / 2) in
  (match load_string torn with
  | Ok events -> check_int "only the complete line" 1 (List.length events)
  | Error msg -> Alcotest.failf "torn tail rejected: %s" msg);
  (* an unterminated but complete final line still decodes *)
  (match load_string (l1 ^ "\n" ^ l2) with
  | Ok events -> check_int "unterminated final line decodes" 2 (List.length events)
  | Error msg -> Alcotest.failf "unterminated final line rejected: %s" msg);
  (* garbage in the middle is still a hard error with a line number *)
  match load_string (l1 ^ "\nnot json\n" ^ l2 ^ "\n") with
  | Ok _ -> Alcotest.fail "mid-file garbage accepted"
  | Error msg ->
      check_bool "names the line" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")

(* {2 Tail: incremental reads across appends} *)

let test_tail () =
  let path = Filename.temp_file "viz_tail" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sys.remove path;
      let tail = Telemetry.Tail.create ~path in
      check_int "missing file: no events" 0 (List.length (Telemetry.Tail.poll tail));
      let oc = open_out_bin path in
      let l1 = line (Engine.Instrument.Step { interactions = 8; time = 1.0 }) in
      let l2 = line (Engine.Instrument.Correct_entered { interactions = 16; time = 2.0 }) in
      output_string oc (l1 ^ "\n");
      (* torn write: half of l2, no newline *)
      output_string oc (String.sub l2 0 10);
      flush oc;
      check_int "complete line only" 1 (List.length (Telemetry.Tail.poll tail));
      output_string oc (String.sub l2 10 (String.length l2 - 10));
      output_string oc "\n";
      flush oc;
      check_int "torn line completed" 1 (List.length (Telemetry.Tail.poll tail));
      output_string oc "garbage line\n";
      output_string oc (l1 ^ "\n");
      flush oc;
      check_int "garbage skipped, good line kept" 1 (List.length (Telemetry.Tail.poll tail));
      check_int "dropped counted" 1 (Telemetry.Tail.dropped tail);
      close_out oc;
      Telemetry.Tail.close tail)

(* {2 Span} *)

let test_span () =
  (* no ambient registry: wrap is transparent *)
  Telemetry.Metrics.uninstall ();
  check_int "no registry" 41 (Telemetry.Span.wrap "x" (fun () -> 41));
  let reg = Telemetry.Metrics.create () in
  Telemetry.Metrics.install reg;
  Fun.protect
    ~finally:(fun () -> Telemetry.Metrics.uninstall ())
    (fun () ->
      check_int "wrapped result" 42 (Telemetry.Span.wrap "probe" (fun () -> 42));
      check_int "one observation" 1
        (Array.length (Telemetry.Metrics.observations reg "span.probe"));
      (* records even when the body raises *)
      (try ignore (Telemetry.Span.wrap "probe" (fun () -> failwith "boom") : int)
       with Failure _ -> ());
      check_int "raised body still recorded" 2
        (Array.length (Telemetry.Metrics.observations reg "span.probe"));
      Telemetry.Span.record "manual" 0.25;
      let dump = Telemetry.Metrics.to_json reg in
      check_bool "span histograms in dump" true (Viz.Charts.has_spans dump))

(* {2 record_exec} *)

let test_record_exec () =
  Telemetry.Metrics.uninstall ();
  let protocol = Core.Silent_n_state.protocol ~n:8 in
  let rng = Prng.create ~seed:3 in
  let exec =
    Engine.Exec.make ~kind:Engine.Exec.Count ~protocol
      ~init:(Core.Scenarios.silent_uniform rng ~n:8) ~rng ()
  in
  let (_ : bool) = Engine.Exec.advance exec ~until:200 in
  (* without a registry: a no-op *)
  Telemetry.Metrics.record_exec exec;
  let reg = Telemetry.Metrics.create () in
  Telemetry.Metrics.install reg;
  Fun.protect
    ~finally:(fun () -> Telemetry.Metrics.uninstall ())
    (fun () ->
      Telemetry.Metrics.record_exec exec;
      let stats = Engine.Exec.stats exec in
      check_bool "engine exposes stats" true (stats <> []);
      List.iter
        (fun (name, v) ->
          match Telemetry.Metrics.counter_value reg ("engine." ^ name) with
          | Some got -> Alcotest.(check (float 1e-9)) ("engine." ^ name) v got
          | None -> Alcotest.failf "engine.%s missing from registry" name)
        stats)

(* {2 Dashboard snapshot} *)

let test_snapshot_json () =
  let events =
    [
      line (Engine.Instrument.Correct_entered { interactions = 8; time = 1.0 });
      line (Engine.Instrument.Fault { agents = 2; interactions = 16; time = 2.0 });
      line (Engine.Instrument.Correct_lost { interactions = 16; time = 2.0 });
      line (Engine.Instrument.Correct_entered { interactions = 40; time = 5.0 });
      line (Engine.Instrument.Step { interactions = 80; time = 10.0 });
    ]
  in
  let decoded =
    List.map
      (fun l ->
        match Telemetry.Events.of_line l with
        | Ok e -> e
        | Error msg -> Alcotest.fail msg)
      events
  in
  let summaries = Telemetry.Timeline.fold decoded in
  let json = Viz.Dashboard.snapshot_json ~dropped:3 ~path:"soak.jsonl" summaries in
  (* the wire format must round-trip through the encoder *)
  let s = Telemetry.Json.to_string json in
  (match Telemetry.Json.parse s with
  | Ok back -> check_bool "round-trips" true (Telemetry.Json.equal json back)
  | Error msg -> Alcotest.failf "snapshot does not parse back: %s" msg);
  let get k = Option.get (Telemetry.Json.member k json) in
  check_int "version" 1 (Option.get (Telemetry.Json.to_int (get "v")));
  check_int "dropped" 3 (Option.get (Telemetry.Json.to_int (get "dropped")));
  let agg = get "aggregate" in
  let agg_int k = Option.get (Option.bind (Telemetry.Json.member k agg) Telemetry.Json.to_int) in
  check_int "runs" 1 (agg_int "runs");
  check_int "bursts" 1 (agg_int "bursts");
  check_int "recovered" 1 (agg_int "recovered");
  let times = Option.get (Telemetry.Json.to_list (get "recovery_times")) in
  check_int "one recovery time" 1 (List.length times)

(* {2 HTTP + SSE smoke: client and server interleaved via poll} *)

let http_get ~port ~target =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\n\r\n" target in
  let (_ : int) = Unix.write_substring fd req 0 (String.length req) in
  fd

let read_available fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.select [ fd ] [] [] 0.0 with
    | [], _, _ -> Buffer.contents buf
    | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Buffer.contents buf
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            go ())
  in
  go ()

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let test_serve_smoke () =
  let path = Filename.temp_file "viz_serve" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc (line (Engine.Instrument.Correct_entered { interactions = 8; time = 1.0 }));
      output_string oc "\n";
      flush oc;
      let server = Viz.Serve.create ~port:0 ~path () in
      Fun.protect
        ~finally:(fun () -> Viz.Serve.close server)
        (fun () ->
          let port = Viz.Serve.port server in
          let poll () = Viz.Serve.poll ~timeout:0.05 server in
          (* the page *)
          let fd = http_get ~port ~target:"/" in
          poll ();
          poll ();
          let page = read_available fd in
          Unix.close fd;
          check_bool "200 page" true (contains ~sub:"200 OK" page);
          check_bool "self-contained dashboard" true (contains ~sub:"EventSource" page);
          (* a snapshot *)
          let fd = http_get ~port ~target:"/data.json" in
          poll ();
          poll ();
          let body = read_available fd in
          Unix.close fd;
          check_bool "snapshot has runs" true (contains ~sub:"\"runs\"" body);
          (* 404 *)
          let fd = http_get ~port ~target:"/nope" in
          poll ();
          poll ();
          let resp = read_available fd in
          Unix.close fd;
          check_bool "404" true (contains ~sub:"404" resp);
          (* SSE: initial frame immediately, another when the file grows *)
          let fd = http_get ~port ~target:"/events" in
          poll ();
          poll ();
          let first = read_available fd in
          check_bool "sse content type" true (contains ~sub:"text/event-stream" first);
          check_bool "initial frame" true (contains ~sub:"data: {" first);
          output_string oc
            (line (Engine.Instrument.Correct_lost { interactions = 24; time = 3.0 }));
          output_string oc "\n";
          flush oc;
          poll ();
          poll ();
          let update = read_available fd in
          check_bool "update frame on append" true (contains ~sub:"data: {" update);
          check_bool "update carries the loss" true (contains ~sub:"\"violations\":1" update);
          Unix.close fd;
          close_out oc))

(* A subscriber hanging up mid-stream surfaces as EPIPE on the server's
   next frame; that must drop only the dead client — the loop and the
   other subscribers keep going (the fleet board depends on this). *)
let test_sse_client_disconnect () =
  let frames = ref 0 in
  let source =
    {
      Viz.Serve.page = "<html>stub</html>";
      snapshot =
        (fun () ->
          incr frames;
          Printf.sprintf "{\"frame\":%d}" !frames);
      refresh = (fun () -> false);
      submit = None;
      shutdown = (fun () -> ());
    }
  in
  let server = Viz.Serve.of_source ~port:0 source in
  Fun.protect
    ~finally:(fun () -> Viz.Serve.close server)
    (fun () ->
      let port = Viz.Serve.port server in
      let poll () = Viz.Serve.poll ~timeout:0.05 server in
      let subscribe () =
        let fd = http_get ~port ~target:"/events" in
        poll ();
        poll ();
        let first = read_available fd in
        check_bool "subscribed" true (contains ~sub:"data: {" first);
        fd
      in
      let doomed = subscribe () in
      let survivor = subscribe () in
      (* the doomed client hangs up without a word *)
      Unix.close doomed;
      (* two frames: the first write into the dead socket may land in
         the kernel buffer; the second gets EPIPE/ECONNRESET, which must
         drop only that client *)
      Viz.Serve.notify server;
      poll ();
      Viz.Serve.notify server;
      poll ();
      let got = read_available survivor in
      check_bool "survivor keeps receiving after peer EPIPE" true (contains ~sub:"data: {" got);
      (* and the server still serves new requests *)
      let fd = http_get ~port ~target:"/data.json" in
      poll ();
      poll ();
      let body = read_available fd in
      Unix.close fd;
      Unix.close survivor;
      check_bool "server alive after disconnect" true (contains ~sub:"frame" body))

let suite =
  [
    Alcotest.test_case "scale: linear apply and ticks" `Quick test_scale_linear;
    Alcotest.test_case "scale: degenerate domains repair" `Quick test_scale_degenerate;
    Alcotest.test_case "scale: log apply, ticks, clamping" `Quick test_scale_log;
    Alcotest.test_case "scale: tick labels" `Quick test_tick_labels;
    Alcotest.test_case "plot: total on empty and degenerate input" `Quick test_empty_charts;
    Alcotest.test_case "plot: render is deterministic" `Quick test_render_deterministic;
    Alcotest.test_case "svg: text escaping" `Quick test_svg_escaping;
    Alcotest.test_case "golden: slope fit svg" `Quick test_golden_slope;
    Alcotest.test_case "golden: availability svg" `Quick test_golden_availability;
    Alcotest.test_case "golden: recovery cdf svg" `Quick test_golden_recovery_cdf;
    Alcotest.test_case "golden: phase profile svg" `Quick test_golden_phase_profile;
    Alcotest.test_case "timeline: truncated final line tolerated" `Quick
      test_load_truncated_tail;
    Alcotest.test_case "tail: incremental reads, torn writes, bad lines" `Quick test_tail;
    Alcotest.test_case "span: ambient timing histograms" `Quick test_span;
    Alcotest.test_case "metrics: record_exec publishes engine counters" `Quick
      test_record_exec;
    Alcotest.test_case "dashboard: snapshot json shape" `Quick test_snapshot_json;
    Alcotest.test_case "serve: http routes and live sse updates" `Quick test_serve_smoke;
    Alcotest.test_case "serve: sse client disconnect drops only that client" `Quick
      test_sse_client_disconnect;
  ]
