(* Tests for the executor abstraction (Engine.Exec), the Instrument
   event layer, and the executor-polymorphic Runner. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let silent_exec ~kind ~n ~seed ~init =
  let protocol = Core.Silent_n_state.protocol ~n in
  let rng = Prng.create ~seed in
  Engine.Exec.make ~kind ~protocol ~init:(init rng) ~rng ()

(* ------------------------------------------------------------------ *)
(* Runner outcome construction (regression tests for the unconverged
   arms: convergence_interactions must never be a fabricated zero).   *)

let test_unconverged_reports_horizon () =
  (* A worst-case barrier configuration cannot settle within a tiny
     horizon; the outcome must report the full interaction budget as
     the (censored) convergence point, not 0. *)
  let n = 64 in
  let horizon = 5 in
  let exec =
    silent_exec ~kind:Engine.Exec.Agent ~n ~seed:71 ~init:(fun _ ->
        Core.Scenarios.silent_worst_case ~n)
  in
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking ~max_interactions:horizon
      ~confirm_interactions:(Engine.Runner.default_confirm ~n) exec
  in
  check_bool "not converged" false o.Engine.Runner.converged;
  check_int "censored at the horizon" horizon o.Engine.Runner.convergence_interactions;
  check_int "total = horizon" horizon o.Engine.Runner.total_interactions

let test_unconverged_mid_window_reports_entry () =
  (* If the run becomes correct but the horizon cuts the confirmation
     window short, the outcome is unconverged yet reports the pending
     entry point (the best available estimate), not the horizon. *)
  let n = 8 in
  let exec =
    silent_exec ~kind:Engine.Exec.Agent ~n ~seed:72 ~init:(fun _ ->
        Core.Scenarios.silent_correct ~n)
  in
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking ~max_interactions:3
      ~confirm_interactions:1_000_000 exec
  in
  check_bool "window cut short" false o.Engine.Runner.converged;
  check_int "reports the entry point" 0 o.Engine.Runner.convergence_interactions

let test_converged_reports_entry () =
  let n = 16 in
  let exec =
    silent_exec ~kind:Engine.Exec.Agent ~n ~seed:73 ~init:(fun rng ->
        Core.Scenarios.silent_uniform rng ~n)
  in
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
      ~max_interactions:(100 * n * n * n)
      ~confirm_interactions:(Engine.Runner.default_confirm ~n) exec
  in
  check_bool "converged" true o.Engine.Runner.converged;
  check_bool "entry before end" true
    (o.Engine.Runner.convergence_interactions <= o.Engine.Runner.total_interactions)

(* ------------------------------------------------------------------ *)
(* Count executor through the Runner: full outcome records, and the
   exact-silence oracle agreeing with confirmation-window semantics.  *)

let test_count_executor_full_outcome () =
  let n = 32 in
  let exec =
    silent_exec ~kind:Engine.Exec.Count ~n ~seed:74 ~init:(fun rng ->
        Core.Scenarios.silent_uniform rng ~n)
  in
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
      ~max_interactions:(100 * n * n * n)
      ~confirm_interactions:(Engine.Runner.default_confirm ~n) exec
  in
  check_bool "converged" true o.Engine.Runner.converged;
  check_bool "positive time" true (o.Engine.Runner.convergence_time > 0.0);
  check_int "no violations from a clean run" 0 o.Engine.Runner.violations;
  check_bool "oracle stopped before the horizon" true
    (o.Engine.Runner.total_interactions < 100 * n * n * n)

let test_oracle_matches_confirmation_window () =
  (* With the exact oracle disabled, the Runner falls back to the
     confirmation-window rule; for a silent protocol both must find
     the same convergence point on the same seed. *)
  let n = 16 in
  for seed = 80 to 89 do
    let run ~silence_oracle =
      let exec =
        silent_exec ~kind:Engine.Exec.Count ~n ~seed ~init:(fun rng ->
            Core.Scenarios.silent_uniform rng ~n)
      in
      Engine.Runner.run_to_stability ~silence_oracle ~task:Engine.Runner.Ranking
        ~max_interactions:(100 * n * n * n)
        ~confirm_interactions:(Engine.Runner.default_confirm ~n) exec
    in
    let fast = run ~silence_oracle:true in
    let slow = run ~silence_oracle:false in
    check_bool "oracle run converged" true fast.Engine.Runner.converged;
    check_bool "window run converged" true slow.Engine.Runner.converged;
    check_int
      (Printf.sprintf "same convergence point (seed %d)" seed)
      fast.Engine.Runner.convergence_interactions slow.Engine.Runner.convergence_interactions
  done

let test_runner_distribution_agrees_across_engines () =
  (* The tentpole differential test: Runner-measured convergence times
     on Silent-n-state-SSR must agree in distribution between the two
     executors (two-sample Kolmogorov-Smirnov at alpha = 0.01). *)
  let n = 10 in
  let trials = 250 in
  let times ~kind ~seed0 =
    Array.init trials (fun k ->
        let exec =
          silent_exec ~kind ~n ~seed:(seed0 + k) ~init:(fun rng ->
              Core.Scenarios.silent_uniform rng ~n)
        in
        let o =
          Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
            ~max_interactions:(100 * n * n * n)
            ~confirm_interactions:(Engine.Runner.default_confirm ~n) exec
        in
        o.Engine.Runner.convergence_time)
  in
  let agent = times ~kind:Engine.Exec.Agent ~seed0:60_000 in
  let count = times ~kind:Engine.Exec.Count ~seed0:70_000 in
  check_bool "same law across executors (KS, alpha=0.01)" true
    (Stats.Ks.same_distribution agent count)

(* ------------------------------------------------------------------ *)
(* Fault injection through the executor interface.                    *)

let test_count_inject_and_recover () =
  let n = 24 in
  let exec =
    silent_exec ~kind:Engine.Exec.Count ~n ~seed:75 ~init:(fun _ ->
        Core.Scenarios.silent_correct ~n)
  in
  check_bool "starts silent" true (Engine.Exec.silent exec = Some true);
  Engine.Exec.inject exec 0 (Core.Silent_n_state.state_of_rank0 ~n (n - 1));
  check_bool "fault breaks silence" true (Engine.Exec.silent exec = Some false);
  check_bool "fault breaks correctness" false (Engine.Exec.ranking_correct exec);
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
      ~max_interactions:(100 * n * n * n)
      ~confirm_interactions:(Engine.Runner.default_confirm ~n) exec
  in
  check_bool "recovers" true o.Engine.Runner.converged;
  check_bool "silent again" true (Engine.Exec.silent exec = Some true)

let test_count_corrupt_matches_agent_semantics () =
  (* corrupt must hit round(fraction * n) agents (at least one for any
     positive fraction), mirroring Sim.corrupt. *)
  let n = 40 in
  let exec =
    silent_exec ~kind:Engine.Exec.Count ~n ~seed:76 ~init:(fun _ ->
        Core.Scenarios.silent_correct ~n)
  in
  let hit =
    Engine.Exec.corrupt exec ~rng:(Prng.create ~seed:77) ~fraction:0.25 (fun rng ->
        Core.Silent_n_state.state_of_rank0 ~n (Prng.int rng n))
  in
  check_int "a quarter of the population" (n / 4) hit;
  let tiny =
    Engine.Exec.corrupt exec ~rng:(Prng.create ~seed:78) ~fraction:0.001 (fun rng ->
        Core.Silent_n_state.state_of_rank0 ~n (Prng.int rng n))
  in
  check_int "positive fraction hits at least one agent" 1 tiny

let test_fault_injection_validates_arguments () =
  (* Both engines must reject malformed fault-injection arguments with
     Invalid_argument instead of corrupting internal state: an index
     outside [0, n) for inject, a fraction outside [0,1] (or NaN) for
     corrupt. *)
  List.iter
    (fun kind ->
      let label what = Printf.sprintf "%s (%s engine)" what (Engine.Exec.kind_to_string kind) in
      let n = 8 in
      let exec =
        silent_exec ~kind ~n ~seed:90 ~init:(fun _ -> Core.Scenarios.silent_correct ~n)
      in
      let state = Core.Silent_n_state.state_of_rank0 ~n 0 in
      let gen rng = Core.Silent_n_state.state_of_rank0 ~n (Prng.int rng n) in
      let raises what f =
        match f () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail (label what ^ ": expected Invalid_argument")
      in
      raises "inject negative index" (fun () -> Engine.Exec.inject exec (-1) state);
      raises "inject index at n" (fun () -> Engine.Exec.inject exec n state);
      raises "corrupt fraction < 0" (fun () ->
          ignore (Engine.Exec.corrupt exec ~rng:(Prng.create ~seed:91) ~fraction:(-0.1) gen));
      raises "corrupt fraction > 1" (fun () ->
          ignore (Engine.Exec.corrupt exec ~rng:(Prng.create ~seed:92) ~fraction:1.5 gen));
      raises "corrupt fraction NaN" (fun () ->
          ignore (Engine.Exec.corrupt exec ~rng:(Prng.create ~seed:93) ~fraction:Float.nan gen));
      (* The exec is untouched by the rejected calls: still correct and,
         where the oracle exists, still silent. *)
      check_bool (label "still correct after rejections") true
        (Engine.Exec.ranking_correct exec))
    [ Engine.Exec.Agent; Engine.Exec.Count ]

let test_count_snapshot_multiset_preserved () =
  (* snapshot/state expose an agent view of the multiset: ranks are a
     permutation-invariant of the configuration. *)
  let n = 12 in
  let exec =
    silent_exec ~kind:Engine.Exec.Count ~n ~seed:79 ~init:(fun _ ->
        Core.Scenarios.silent_correct ~n)
  in
  let snapshot = Engine.Exec.snapshot exec in
  check_int "snapshot covers the population" n (Array.length snapshot);
  let ranks =
    Array.to_list snapshot
    |> List.map (fun s -> (s : Core.Silent_n_state.state :> int))
    |> List.sort compare
  in
  Alcotest.(check (list int)) "all ranks present" (List.init n (fun i -> i)) ranks;
  check_bool "state agrees with snapshot" true
    (Engine.Exec.state exec 0 = snapshot.(0))

(* ------------------------------------------------------------------ *)
(* The Instrument event layer.                                        *)

let test_events_fire_on_count_engine () =
  let n = 16 in
  let exec =
    silent_exec ~kind:Engine.Exec.Count ~n ~seed:81 ~init:(fun _ ->
        Core.Scenarios.silent_worst_case ~n)
  in
  let steps = ref 0 and silences = ref 0 and faults = ref 0 in
  Engine.Exec.on exec (fun event ->
      match event with
      | Engine.Instrument.Step _ -> incr steps
      | Engine.Instrument.Silence _ -> incr silences
      | Engine.Instrument.Fault _ -> incr faults
      | Engine.Instrument.Correct_entered _ | Engine.Instrument.Correct_lost _ -> ());
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
      ~max_interactions:(100 * n * n * n)
      ~confirm_interactions:(Engine.Runner.default_confirm ~n) exec
  in
  check_bool "converged" true o.Engine.Runner.converged;
  check_int "worst case: one step per productive event" (n - 1) !steps;
  check_int "silence announced once" 1 !silences;
  check_int "no faults injected" 0 !faults;
  Engine.Exec.inject exec 0 (Core.Silent_n_state.state_of_rank0 ~n (n - 1));
  check_int "injection emits a fault event" 1 !faults

let test_policy_events_from_runner () =
  (* The Runner publishes correctness transitions as events. Starting
     from a correct configuration, entry is observed immediately. *)
  let n = 8 in
  let exec =
    silent_exec ~kind:Engine.Exec.Agent ~n ~seed:82 ~init:(fun _ ->
        Core.Scenarios.silent_correct ~n)
  in
  let entered = ref [] and lost = ref 0 in
  Engine.Exec.on exec (fun event ->
      match event with
      | Engine.Instrument.Correct_entered { interactions; _ } ->
          entered := interactions :: !entered
      | Engine.Instrument.Correct_lost _ -> incr lost
      | _ -> ());
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
      ~max_interactions:(100 * n * n * n)
      ~confirm_interactions:(Engine.Runner.default_confirm ~n) exec
  in
  check_bool "converged" true o.Engine.Runner.converged;
  Alcotest.(check (list int)) "entered once, at time zero" [ 0 ] !entered;
  check_int "never lost" 0 !lost

let test_collector_sampling () =
  let c = Engine.Instrument.collector ~interval:10 () in
  let handler = Engine.Instrument.sampled c (fun () -> !(ref 42)) in
  for i = 0 to 24 do
    handler (Engine.Instrument.Step { interactions = i; time = float_of_int i })
  done;
  (* samples at interactions 0, 10, 20 — every [interval] interactions *)
  check_int "interval sampling" 3 (List.length (Engine.Instrument.series c));
  handler (Engine.Instrument.Fault { interactions = 25; time = 25.0; agents = 1 });
  check_int "faults always sampled" 4 (List.length (Engine.Instrument.series c));
  List.iter
    (fun (_, v) -> check_int "metric evaluated" 42 v)
    (Engine.Instrument.series c);
  Alcotest.check_raises "interval must be positive"
    (Invalid_argument "Instrument.collector: interval must be positive") (fun () ->
      ignore (Engine.Instrument.collector ~interval:0 ()))

let test_event_accessors () =
  let step = Engine.Instrument.Step { interactions = 7; time = 3.5 } in
  let fault = Engine.Instrument.Fault { interactions = 9; time = 4.5; agents = 2 } in
  check_int "step interactions" 7 (Engine.Instrument.interactions step);
  check_int "fault interactions" 9 (Engine.Instrument.interactions fault);
  Alcotest.(check (float 1e-12)) "step time" 3.5 (Engine.Instrument.time step);
  check_bool "pp mentions the kind" true
    (let s = Format.asprintf "%a" Engine.Instrument.pp fault in
     String.length s > 0)

let test_kind_to_string () =
  Alcotest.(check string) "agent" "agent" (Engine.Exec.kind_to_string Engine.Exec.Agent);
  Alcotest.(check string) "count" "count" (Engine.Exec.kind_to_string Engine.Exec.Count)

let suite =
  [
    Alcotest.test_case "unconverged reports horizon" `Quick test_unconverged_reports_horizon;
    Alcotest.test_case "unconverged mid-window reports entry" `Quick
      test_unconverged_mid_window_reports_entry;
    Alcotest.test_case "converged reports entry" `Quick test_converged_reports_entry;
    Alcotest.test_case "count executor full outcome" `Quick test_count_executor_full_outcome;
    Alcotest.test_case "oracle matches confirmation window" `Slow
      test_oracle_matches_confirmation_window;
    Alcotest.test_case "runner distribution agrees across engines" `Slow
      test_runner_distribution_agrees_across_engines;
    Alcotest.test_case "count inject and recover" `Quick test_count_inject_and_recover;
    Alcotest.test_case "count corrupt semantics" `Quick test_count_corrupt_matches_agent_semantics;
    Alcotest.test_case "fault injection validates arguments" `Quick
      test_fault_injection_validates_arguments;
    Alcotest.test_case "count snapshot multiset" `Quick test_count_snapshot_multiset_preserved;
    Alcotest.test_case "events fire on count engine" `Quick test_events_fire_on_count_engine;
    Alcotest.test_case "policy events from runner" `Quick test_policy_events_from_runner;
    Alcotest.test_case "collector sampling" `Quick test_collector_sampling;
    Alcotest.test_case "event accessors" `Quick test_event_accessors;
    Alcotest.test_case "kind to string" `Quick test_kind_to_string;
  ]
