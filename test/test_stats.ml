(* Tests for the statistics library. *)

let feq = Alcotest.(check (float 1e-9))
let feq_loose = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)

(* Summary *)

let test_summary_known () =
  let s = Stats.Summary.of_array [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check int) "count" 5 s.Stats.Summary.count;
  feq "mean" 3.0 s.Stats.Summary.mean;
  feq "median" 3.0 s.Stats.Summary.median;
  feq "min" 1.0 s.Stats.Summary.min;
  feq "max" 5.0 s.Stats.Summary.max;
  feq_loose "stddev" (sqrt 2.5) s.Stats.Summary.stddev

let test_summary_unsorted_input () =
  let s = Stats.Summary.of_array [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  feq "median of unsorted" 3.0 s.Stats.Summary.median;
  feq "min" 1.0 s.Stats.Summary.min

let test_summary_singleton () =
  let s = Stats.Summary.of_array [| 7.5 |] in
  feq "mean" 7.5 s.Stats.Summary.mean;
  feq "stddev 0" 0.0 s.Stats.Summary.stddev;
  feq "p95" 7.5 s.Stats.Summary.p95

let test_summary_empty () =
  Alcotest.check_raises "empty raises" (Invalid_argument "Summary.of_array: empty sample")
    (fun () -> ignore (Stats.Summary.of_array [||]))

let test_variance_constant () =
  feq "constant sample" 0.0 (Stats.Summary.variance [| 2.0; 2.0; 2.0 |])

let test_quantile_interpolation () =
  let xs = [| 0.0; 10.0 |] in
  feq "q0" 0.0 (Stats.Summary.quantile xs 0.0);
  feq "q1" 10.0 (Stats.Summary.quantile xs 1.0);
  feq "q0.5 interpolates" 5.0 (Stats.Summary.quantile xs 0.5);
  feq "q0.25" 2.5 (Stats.Summary.quantile xs 0.25)

let test_quantile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.Summary.quantile xs 0.5);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] xs

let test_quantile_bad_q () =
  Alcotest.check_raises "q out of range" (Invalid_argument "Summary.quantile: q outside [0,1]")
    (fun () -> ignore (Stats.Summary.quantile [| 1.0 |] 1.5))

let test_sem_and_ci () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let sem = Stats.Summary.sem xs in
  feq_loose "sem" (Stats.Summary.stddev xs /. 2.0) sem;
  feq_loose "ci95" (1.96 *. sem) (Stats.Summary.ci95_halfwidth xs)

(* Regression *)

let test_linear_exact () =
  let pts = [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) ] in
  let f = Stats.Regression.linear pts in
  feq_loose "slope" 2.0 f.Stats.Regression.slope;
  feq_loose "intercept" 1.0 f.Stats.Regression.intercept;
  feq_loose "r2" 1.0 f.Stats.Regression.r2

let test_log_log_power_law () =
  let pts = List.map (fun x -> (x, 3.0 *. (x ** 2.0))) [ 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let f = Stats.Regression.log_log pts in
  feq_loose "exponent" 2.0 f.Stats.Regression.slope;
  feq_loose "ln coefficient" (log 3.0) f.Stats.Regression.intercept

let test_semilog () =
  let pts = List.map (fun x -> (x, (2.0 *. log x) +. 1.0)) [ 1.0; 2.0; 4.0; 10.0; 100.0 ] in
  let f = Stats.Regression.semilog_x pts in
  feq_loose "slope" 2.0 f.Stats.Regression.slope;
  feq_loose "intercept" 1.0 f.Stats.Regression.intercept

let test_regression_noisy_r2 () =
  let pts = [ (0.0, 0.0); (1.0, 1.2); (2.0, 1.8); (3.0, 3.1); (4.0, 3.9) ] in
  let f = Stats.Regression.linear pts in
  check_bool "r2 high but below 1" true (f.Stats.Regression.r2 > 0.97 && f.Stats.Regression.r2 < 1.0)

let test_regression_errors () =
  Alcotest.check_raises "one point" (Invalid_argument "Regression.linear: need at least two points")
    (fun () -> ignore (Stats.Regression.linear [ (1.0, 1.0) ]));
  Alcotest.check_raises "vertical" (Invalid_argument "Regression.linear: x values are all equal")
    (fun () -> ignore (Stats.Regression.linear [ (1.0, 1.0); (1.0, 2.0) ]));
  Alcotest.check_raises "nonpositive log" (Invalid_argument "Regression.log_log: non-positive point")
    (fun () -> ignore (Stats.Regression.log_log [ (0.0, 1.0); (1.0, 1.0) ]))

(* Table *)

let test_table_render () =
  let t = Stats.Table.create ~header:[ "n"; "time" ] in
  Stats.Table.add_row t [ "8"; "1.25" ];
  Stats.Table.add_row t [ "128"; "3.5" ];
  let s = Stats.Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 4 (List.length lines);
  Alcotest.(check string) "header padded to column widths" "n    time" (List.nth lines 0);
  check_bool "rule second" true (String.for_all (Char.equal '-') (List.nth lines 1));
  Alcotest.(check string) "first row aligned" "8    1.25" (List.nth lines 2);
  Alcotest.(check string) "second row aligned" "128  3.5" (List.nth lines 3)

let test_table_short_rows () =
  let t = Stats.Table.create ~header:[ "a"; "b"; "c" ] in
  Stats.Table.add_row t [ "only" ];
  let s = Stats.Table.render t in
  check_bool "renders without exception" true (String.length s > 0)

let test_table_separator () =
  let t = Stats.Table.create ~header:[ "a" ] in
  Stats.Table.add_row t [ "1" ];
  Stats.Table.add_separator t;
  Stats.Table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Stats.Table.render t) in
  Alcotest.(check int) "5 lines" 5 (List.length lines);
  check_bool "separator rendered" true (String.for_all (Char.equal '-') (List.nth lines 3))

let test_table_cells () =
  Alcotest.(check string) "float cell" "3.14" (Stats.Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "int cell" "42" (Stats.Table.cell_int 42)

(* Histogram *)

let test_histogram_binning () =
  let h = Stats.Histogram.of_samples ~lo:0.0 ~hi:10.0 ~bins:5 [| 0.5; 1.5; 2.5; 9.9; -1.0; 10.0 |] in
  Alcotest.(check int) "total" 6 (Stats.Histogram.count h);
  Alcotest.(check int) "bin 0" 2 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 1 (Stats.Histogram.bin_count h 1);
  Alcotest.(check int) "bin 4" 1 (Stats.Histogram.bin_count h 4);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Stats.Histogram.overflow h)

let test_histogram_bounds () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:4.0 ~bins:4 in
  let lo, hi = Stats.Histogram.bin_bounds h 2 in
  feq "bin lo" 2.0 lo;
  feq "bin hi" 3.0 hi;
  Alcotest.check_raises "bad bin" (Invalid_argument "Histogram.bin_bounds: bin index out of range")
    (fun () -> ignore (Stats.Histogram.bin_bounds h 4))

let test_histogram_fraction () =
  let h = Stats.Histogram.of_samples ~lo:0.0 ~hi:10.0 ~bins:2 [| 1.0; 2.0; 3.0; 8.0 |] in
  feq "fraction >= 3" 0.5 (Stats.Histogram.fraction_at_least h 3.0);
  feq "fraction >= 100" 0.0 (Stats.Histogram.fraction_at_least h 100.0);
  feq "fraction >= 0" 1.0 (Stats.Histogram.fraction_at_least h 0.0)

let test_histogram_render () =
  let h = Stats.Histogram.of_samples ~lo:0.0 ~hi:2.0 ~bins:2 [| 0.5; 1.5; 1.6 |] in
  let s = Stats.Histogram.render h in
  check_bool "bars present" true (String.contains s '#')

let test_histogram_errors () =
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Histogram.create: lo must be < hi") (fun () ->
      ignore (Stats.Histogram.create ~lo:1.0 ~hi:1.0 ~bins:2))

(* Kolmogorov-Smirnov *)

let test_ks_identical () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  feq "identical samples" 0.0 (Stats.Ks.statistic xs xs)

let test_ks_disjoint () =
  feq "disjoint supports" 1.0 (Stats.Ks.statistic [| 1.0; 2.0 |] [| 3.0; 4.0 |])

let test_ks_known_value () =
  (* F1 jumps at 1,3; F2 jumps at 2,4: max gap 1/2 at t in [1,2). *)
  feq "hand-computed D" 0.5 (Stats.Ks.statistic [| 1.0; 3.0 |] [| 2.0; 4.0 |])

let test_ks_symmetric () =
  let xs = [| 1.0; 5.0; 2.5 |] and ys = [| 0.5; 2.0; 6.0; 3.0 |] in
  feq "symmetric" (Stats.Ks.statistic xs ys) (Stats.Ks.statistic ys xs)

let test_ks_critical_value () =
  check_bool "stricter alpha, larger threshold" true
    (Stats.Ks.critical_value ~alpha:Stats.Ks.P01 ~n1:100 ~n2:100
    > Stats.Ks.critical_value ~alpha:Stats.Ks.P05 ~n1:100 ~n2:100);
  check_bool "more samples, smaller threshold" true
    (Stats.Ks.critical_value ~alpha:Stats.Ks.P05 ~n1:1000 ~n2:1000
    < Stats.Ks.critical_value ~alpha:Stats.Ks.P05 ~n1:10 ~n2:10)

let test_ks_accepts_same_law () =
  let rng = Prng.create ~seed:40 in
  let sample () = Array.init 800 (fun _ -> Prng.float rng) in
  check_bool "uniform vs uniform accepted" true (Stats.Ks.same_distribution (sample ()) (sample ()))

let test_ks_rejects_shift () =
  let rng = Prng.create ~seed:41 in
  let xs = Array.init 800 (fun _ -> Prng.float rng) in
  let ys = Array.init 800 (fun _ -> Prng.float rng +. 0.3) in
  check_bool "shifted uniform rejected" false (Stats.Ks.same_distribution xs ys)

let test_ks_empty () =
  Alcotest.check_raises "empty sample" (Invalid_argument "Ks.statistic: empty sample") (fun () ->
      ignore (Stats.Ks.statistic [||] [| 1.0 |]))

(* Theory *)

let test_harmonic () =
  feq "H_0" 0.0 (Stats.Theory.harmonic 0);
  feq "H_1" 1.0 (Stats.Theory.harmonic 1);
  feq "H_2" 1.5 (Stats.Theory.harmonic 2);
  feq_loose "H_4" (25.0 /. 12.0) (Stats.Theory.harmonic 4)

let test_name_bits () =
  Alcotest.(check int) "n=8" 9 (Stats.Theory.name_bits 8);
  Alcotest.(check int) "n=9" 12 (Stats.Theory.name_bits 9);
  Alcotest.(check int) "n=1024" 30 (Stats.Theory.name_bits 1024)

let test_epidemic_time () =
  feq_loose "n=2" 2.0 (Stats.Theory.epidemic_time 2);
  check_bool "grows like ln" true
    (Stats.Theory.epidemic_time 1000 > log 1000.0
    && Stats.Theory.epidemic_time 1000 < 3.0 *. log 1000.0)

let test_slow_leader_election () =
  (* n=2: one pair must meet once: 1 interaction = 0.5 parallel time. *)
  feq_loose "n=2" 0.5 (Stats.Theory.slow_leader_election_time 2);
  let t = Stats.Theory.slow_leader_election_time 100 in
  check_bool "Θ(n) shape" true (t > 40.0 && t < 100.0)

let test_silent_lb_tail () =
  feq_loose "alpha=1/3, n=n" (0.5 /. 8.0) (Stats.Theory.silent_lb_tail ~n:8 ~alpha:(1.0 /. 3.0))

let test_quadratic_barrier () =
  feq "n=3" 2.0 (Stats.Theory.quadratic_barrier_time 3);
  feq "n=11" 50.0 (Stats.Theory.quadratic_barrier_time 11)

let test_coupon_time () = feq_loose "n=2" 0.75 (Stats.Theory.coupon_collector_time 2)

let suite =
  [
    Alcotest.test_case "summary known values" `Quick test_summary_known;
    Alcotest.test_case "summary unsorted" `Quick test_summary_unsorted_input;
    Alcotest.test_case "summary singleton" `Quick test_summary_singleton;
    Alcotest.test_case "summary empty raises" `Quick test_summary_empty;
    Alcotest.test_case "variance constant" `Quick test_variance_constant;
    Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
    Alcotest.test_case "quantile pure" `Quick test_quantile_does_not_mutate;
    Alcotest.test_case "quantile bad q" `Quick test_quantile_bad_q;
    Alcotest.test_case "sem and ci" `Quick test_sem_and_ci;
    Alcotest.test_case "linear exact" `Quick test_linear_exact;
    Alcotest.test_case "log-log power law" `Quick test_log_log_power_law;
    Alcotest.test_case "semilog" `Quick test_semilog;
    Alcotest.test_case "noisy r2" `Quick test_regression_noisy_r2;
    Alcotest.test_case "regression errors" `Quick test_regression_errors;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table short rows" `Quick test_table_short_rows;
    Alcotest.test_case "table separator" `Quick test_table_separator;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
    Alcotest.test_case "histogram bounds" `Quick test_histogram_bounds;
    Alcotest.test_case "histogram fraction" `Quick test_histogram_fraction;
    Alcotest.test_case "histogram render" `Quick test_histogram_render;
    Alcotest.test_case "histogram errors" `Quick test_histogram_errors;
    Alcotest.test_case "ks identical" `Quick test_ks_identical;
    Alcotest.test_case "ks disjoint" `Quick test_ks_disjoint;
    Alcotest.test_case "ks known value" `Quick test_ks_known_value;
    Alcotest.test_case "ks symmetric" `Quick test_ks_symmetric;
    Alcotest.test_case "ks critical value" `Quick test_ks_critical_value;
    Alcotest.test_case "ks accepts same law" `Quick test_ks_accepts_same_law;
    Alcotest.test_case "ks rejects shift" `Quick test_ks_rejects_shift;
    Alcotest.test_case "ks empty" `Quick test_ks_empty;
    Alcotest.test_case "harmonic" `Quick test_harmonic;
    Alcotest.test_case "name bits" `Quick test_name_bits;
    Alcotest.test_case "epidemic time" `Quick test_epidemic_time;
    Alcotest.test_case "slow leader election" `Quick test_slow_leader_election;
    Alcotest.test_case "silent lb tail" `Quick test_silent_lb_tail;
    Alcotest.test_case "quadratic barrier" `Quick test_quadratic_barrier;
    Alcotest.test_case "coupon time" `Quick test_coupon_time;
  ]
