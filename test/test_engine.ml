(* Tests for the simulation engine: protocol records, monitors, the
   stepping simulator, convergence policies, silence checking, and the
   Instrument event collectors. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A toy deterministic protocol over int states for engine testing: agents
   hold ranks directly; no transition logic unless stated. *)
let toy_protocol ?(transition = fun _rng a b -> (a, b)) ?(deterministic = true) n :
    int Engine.Protocol.t =
  let rank s = if s >= 1 && s <= n then Some s else None in
  {
    Engine.Protocol.name = "toy";
    n;
    transition;
    deterministic;
    equal = Int.equal;
    pp = Format.pp_print_int;
    rank;
    is_leader = Engine.Protocol.leader_from_rank rank;
  }

(* Protocol tests *)

let test_validate () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Protocol.validate: population size must be >= 2") (fun () ->
      Engine.Protocol.validate (toy_protocol 1))

let test_leader_from_rank () =
  let rank = function 1 -> Some 1 | _ -> None in
  check_bool "rank 1 leads" true (Engine.Protocol.leader_from_rank rank 1);
  check_bool "others do not" false (Engine.Protocol.leader_from_rank rank 2)

(* Monitor tests *)

let test_monitor_initial_correct () =
  let p = toy_protocol 4 in
  let m = Engine.Monitor.create p [| 1; 2; 3; 4 |] in
  check_bool "permutation correct" true (Engine.Monitor.ranking_correct m);
  check_bool "one leader" true (Engine.Monitor.leader_correct m);
  check_int "ranked" 4 (Engine.Monitor.ranked_agents m)

let test_monitor_initial_incorrect () =
  let p = toy_protocol 4 in
  let m = Engine.Monitor.create p [| 1; 2; 2; 4 |] in
  check_bool "duplicate not correct" false (Engine.Monitor.ranking_correct m);
  (* ranks 1 and 4 are singletons; rank 2 is duplicated *)
  check_int "singletons" 2 (Engine.Monitor.distinct_singleton_ranks m)

let test_monitor_update_to_correct () =
  let p = toy_protocol 3 in
  let m = Engine.Monitor.create p [| 1; 1; 3 |] in
  check_bool "incorrect" false (Engine.Monitor.ranking_correct m);
  Engine.Monitor.update m ~old_state:1 ~new_state:2;
  check_bool "correct after fix" true (Engine.Monitor.ranking_correct m)

let test_monitor_leader_count () =
  let p = toy_protocol 3 in
  let m = Engine.Monitor.create p [| 1; 1; 2 |] in
  check_int "two leaders" 2 (Engine.Monitor.leader_count m);
  Engine.Monitor.update m ~old_state:1 ~new_state:3;
  check_int "one leader" 1 (Engine.Monitor.leader_count m);
  check_bool "leader correct" true (Engine.Monitor.leader_correct m)

let test_monitor_out_of_range () =
  let p = toy_protocol 3 in
  let m = Engine.Monitor.create p [| 99; 2; 3 |] in
  check_bool "not correct with stray rank" false (Engine.Monitor.ranking_correct m);
  check_int "ranked ignores out of range" 2 (Engine.Monitor.ranked_agents m);
  (* removing the stray state must not underflow *)
  Engine.Monitor.update m ~old_state:99 ~new_state:1;
  check_bool "now correct" true (Engine.Monitor.ranking_correct m)

let qcheck_monitor_matches_recompute =
  QCheck.Test.make ~name:"monitor matches full recompute under random injections" ~count:100
    QCheck.(pair small_int (list (pair (int_bound 7) (int_bound 9))))
    (fun (seed, updates) ->
      let n = 8 in
      let p = toy_protocol n in
      let rng = Prng.create ~seed in
      let config = Array.init n (fun _ -> 1 + Prng.int rng (n + 2)) in
      let m = Engine.Monitor.create p config in
      List.iter
        (fun (agent, value) ->
          let agent = agent mod n in
          let value = value + 1 in
          Engine.Monitor.update m ~old_state:config.(agent) ~new_state:value;
          config.(agent) <- value)
        updates;
      let recompute = Engine.Monitor.create p config in
      Engine.Monitor.ranking_correct m = Engine.Monitor.ranking_correct recompute
      && Engine.Monitor.leader_count m = Engine.Monitor.leader_count recompute
      && Engine.Monitor.ranked_agents m = Engine.Monitor.ranked_agents recompute)

(* Sim tests *)

let test_sim_counts () =
  let p = toy_protocol 4 in
  let sim = Engine.Sim.make ~protocol:p ~init:[| 1; 2; 3; 4 |] ~rng:(Prng.create ~seed:1) in
  check_int "no interactions yet" 0 (Engine.Sim.interactions sim);
  Engine.Sim.run sim 10;
  check_int "ten interactions" 10 (Engine.Sim.interactions sim);
  Alcotest.(check (float 1e-9)) "parallel time" 2.5 (Engine.Sim.parallel_time sim)

let test_sim_init_copied () =
  let p = toy_protocol 2 in
  let init = [| 1; 2 |] in
  let sim = Engine.Sim.make ~protocol:p ~init ~rng:(Prng.create ~seed:1) in
  init.(0) <- 99;
  check_int "sim kept its own copy" 1 (Engine.Sim.state sim 0)

let test_sim_snapshot_isolated () =
  let p = toy_protocol 2 in
  let sim = Engine.Sim.make ~protocol:p ~init:[| 1; 2 |] ~rng:(Prng.create ~seed:1) in
  let snap = Engine.Sim.snapshot sim in
  snap.(0) <- 42;
  check_int "snapshot does not alias" 1 (Engine.Sim.state sim 0)

let test_sim_step_applies_transition () =
  (* Transition that always sets both agents to 7. *)
  let p = toy_protocol ~transition:(fun _ _ _ -> (7, 7)) 3 in
  let sim = Engine.Sim.make ~protocol:p ~init:[| 1; 2; 3 |] ~rng:(Prng.create ~seed:2) in
  Engine.Sim.step sim;
  let sevens = Engine.Sim.fold_states sim ~init:0 ~f:(fun acc s -> if s = 7 then acc + 1 else acc) in
  check_int "exactly two agents changed" 2 sevens;
  match Engine.Sim.last_pair sim with
  | Some (i, j) ->
      check_bool "pair distinct" true (i <> j);
      check_int "initiator updated" 7 (Engine.Sim.state sim i);
      check_int "responder updated" 7 (Engine.Sim.state sim j)
  | None -> Alcotest.fail "last_pair missing"

let test_sim_determinism () =
  let p = toy_protocol ~transition:(fun rng a b -> if Prng.bool rng then (a + 1, b) else (a, b + 1))
      ~deterministic:false 5
  in
  let run seed =
    let sim = Engine.Sim.make ~protocol:p ~init:[| 1; 2; 3; 4; 5 |] ~rng:(Prng.create ~seed) in
    Engine.Sim.run sim 200;
    Engine.Sim.snapshot sim
  in
  Alcotest.(check (array int)) "same seed same trajectory" (run 11) (run 11);
  check_bool "different seed diverges" true (run 11 <> run 12)

let test_sim_inject () =
  let p = toy_protocol 3 in
  let sim = Engine.Sim.make ~protocol:p ~init:[| 1; 2; 3 |] ~rng:(Prng.create ~seed:3) in
  check_bool "starts correct" true (Engine.Sim.ranking_correct sim);
  Engine.Sim.inject sim 0 2;
  check_bool "fault breaks ranking" false (Engine.Sim.ranking_correct sim);
  Engine.Sim.inject sim 0 1;
  check_bool "repair restores" true (Engine.Sim.ranking_correct sim)

let test_sim_corrupt () =
  let p = toy_protocol 10 in
  let sim =
    Engine.Sim.make ~protocol:p ~init:(Array.init 10 (fun i -> i + 1)) ~rng:(Prng.create ~seed:4)
  in
  let rng = Prng.create ~seed:5 in
  check_int "zero fraction" 0 (Engine.Sim.corrupt sim ~rng ~fraction:0.0 (fun _ -> 1));
  check_int "half rounds to 5" 5 (Engine.Sim.corrupt sim ~rng ~fraction:0.5 (fun _ -> 1));
  check_bool "corruption broke ranking" false (Engine.Sim.ranking_correct sim);
  Alcotest.check_raises "bad fraction" (Invalid_argument "Sim.corrupt: fraction outside [0,1]")
    (fun () -> ignore (Engine.Sim.corrupt sim ~rng ~fraction:1.5 (fun _ -> 1)))

let test_sim_size_mismatch () =
  let p = toy_protocol 3 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Sim.make: initial configuration size differs from protocol.n") (fun () ->
      ignore (Engine.Sim.make ~protocol:p ~init:[| 1 |] ~rng:(Prng.create ~seed:1)))

(* Runner tests *)

let test_runner_already_correct () =
  let p = toy_protocol 4 in
  let sim = Engine.Sim.make ~protocol:p ~init:[| 1; 2; 3; 4 |] ~rng:(Prng.create ~seed:1) in
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking ~max_interactions:10_000
      ~confirm_interactions:100 (Engine.Exec.of_sim sim)
  in
  check_bool "converged" true o.Engine.Runner.converged;
  check_int "time zero" 0 o.Engine.Runner.convergence_interactions;
  check_int "confirm window simulated" 100 o.Engine.Runner.total_interactions

let test_runner_baseline_leader () =
  let n = 32 in
  let p = Core.Baseline.protocol ~n in
  let sim =
    Engine.Sim.make ~protocol:p ~init:(Core.Baseline.all_leaders ~n) ~rng:(Prng.create ~seed:2)
  in
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Leader ~max_interactions:1_000_000
      ~confirm_interactions:(Engine.Runner.default_confirm ~n)
      (Engine.Exec.of_sim sim)
  in
  check_bool "elects a leader" true o.Engine.Runner.converged;
  check_bool "positive time" true (o.Engine.Runner.convergence_time > 0.0);
  check_int "no violations" 0 o.Engine.Runner.violations

let test_runner_never_correct () =
  let n = 8 in
  let p = Core.Baseline.protocol ~n in
  let sim =
    Engine.Sim.make ~protocol:p ~init:(Core.Baseline.all_followers ~n) ~rng:(Prng.create ~seed:3)
  in
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Leader ~max_interactions:5_000
      ~confirm_interactions:100 (Engine.Exec.of_sim sim)
  in
  check_bool "cannot converge from all followers" false o.Engine.Runner.converged;
  check_int "horizon exhausted" 5_000 o.Engine.Runner.total_interactions

let test_runner_violation_counting () =
  (* Subscribe a Step handler that injects a fault right after the run
     first becomes correct, and verify the violation is counted and
     recovery re-times. *)
  let n = 4 in
  let p = Core.Silent_n_state.protocol ~n in
  let init = Array.map (Core.Silent_n_state.state_of_rank0 ~n) [| 0; 0; 2; 3 |] in
  let exec =
    Engine.Exec.of_sim (Engine.Sim.make ~protocol:p ~init ~rng:(Prng.create ~seed:9))
  in
  let injected = ref false in
  let seen_correct = ref false in
  (* Step handlers run inside advance, before the runner's correctness
     check, so inject one step after correctness was first observed: the
     runner has then already entered the correct phase and must count the
     loss. *)
  Engine.Exec.on exec (fun event ->
      match event with
      | Engine.Instrument.Step _ ->
          if (not !injected) && Engine.Exec.ranking_correct exec then begin
            if !seen_correct then begin
              injected := true;
              (* duplicate agent 1's state onto agent 0: guaranteed violation *)
              Engine.Exec.inject exec 0 (Engine.Exec.state exec 1)
            end
            else seen_correct := true
          end
      | _ -> ());
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking ~max_interactions:200_000
      ~confirm_interactions:500 exec
  in
  check_bool "eventually stable" true o.Engine.Runner.converged;
  check_bool "violation recorded" true (o.Engine.Runner.violations >= 1)

let test_default_confirm_monotone () =
  check_bool "confirm grows with n" true
    (Engine.Runner.default_confirm ~n:64 > Engine.Runner.default_confirm ~n:8);
  check_bool "horizon covers expectation" true
    (Engine.Runner.default_horizon ~n:16 ~expected_time:100.0 >= 16 * 100 * 20)

(* Silence tests *)

let test_silence_detects () =
  let n = 4 in
  let p = Core.Baseline.protocol ~n in
  let l = Core.Baseline.Leader and f = Core.Baseline.Follower in
  check_bool "all followers silent" true
    (Engine.Silence.configuration_is_silent p (Core.Baseline.all_followers ~n));
  check_bool "two leaders not silent" false
    (Engine.Silence.configuration_is_silent p [| l; l; f; f |]);
  check_bool "single leader silent" true
    (Engine.Silence.configuration_is_silent p [| l; f; f; f |])

let test_silence_randomized_rejected () =
  let p = toy_protocol ~deterministic:false 2 in
  Alcotest.check_raises "randomized rejected"
    (Invalid_argument "Silence.configuration_is_silent: protocol is randomized") (fun () ->
      ignore (Engine.Silence.configuration_is_silent p [| 1; 2 |]))

let test_distinct_states () =
  let d = Engine.Silence.distinct_states Int.equal [| 1; 2; 1; 3; 2; 1 |] in
  Alcotest.(check (list (pair int int))) "counts" [ (1, 3); (2, 2); (3, 1) ] d

(* Instrument collector tests (Trace's successor; the collector subscribes
   to the executor event stream instead of hooking Sim manually) *)

let test_collector_sampling () =
  let p = toy_protocol 4 in
  let sim = Engine.Sim.make ~protocol:p ~init:[| 1; 2; 3; 4 |] ~rng:(Prng.create ~seed:1) in
  let exec = Engine.Exec.of_sim sim in
  let c = Engine.Instrument.collector ~interval:5 () in
  Engine.Exec.on exec (Engine.Instrument.sampled c (fun () -> Engine.Exec.interactions exec));
  for _ = 1 to 20 do
    ignore (Engine.Exec.advance exec ~until:max_int)
  done;
  let series = Engine.Instrument.series c in
  check_int "sampled every 5 interactions" 4 (List.length series);
  let times = List.map fst series in
  check_bool "times increasing" true (List.sort compare times = times)

let test_collector_interval_one () =
  (* interval = 1 degenerates to sampling every single step *)
  let p = toy_protocol 4 in
  let sim = Engine.Sim.make ~protocol:p ~init:[| 1; 2; 3; 4 |] ~rng:(Prng.create ~seed:1) in
  let exec = Engine.Exec.of_sim sim in
  let c = Engine.Instrument.collector ~interval:1 () in
  Engine.Exec.on exec (Engine.Instrument.sampled c (fun () -> Engine.Exec.interactions exec));
  for _ = 1 to 7 do
    ignore (Engine.Exec.advance exec ~until:max_int)
  done;
  check_int "one sample per step" 7 (List.length (Engine.Instrument.series c));
  check_bool "values are 1..7" true
    (List.map snd (Engine.Instrument.series c) = [ 1; 2; 3; 4; 5; 6; 7 ])

let test_collector_fault_force_record () =
  (* A fault forces a sample even mid-interval, and the forced sample lands
     in series order relative to the interval samples around it. *)
  let p = toy_protocol 4 in
  let sim = Engine.Sim.make ~protocol:p ~init:[| 1; 2; 3; 4 |] ~rng:(Prng.create ~seed:1) in
  let exec = Engine.Exec.of_sim sim in
  let c = Engine.Instrument.collector ~interval:1000 () in
  Engine.Exec.on exec (Engine.Instrument.sampled c (fun () -> Engine.Exec.interactions exec));
  ignore (Engine.Exec.advance exec ~until:max_int);
  (* interaction 1: first Step samples (next_at starts at 0) *)
  ignore (Engine.Exec.advance exec ~until:max_int);
  (* interaction 2: inside the interval, no sample *)
  Engine.Exec.inject exec 0 9;
  (* Fault: forced sample at interaction 2 *)
  ignore (Engine.Exec.advance exec ~until:max_int);
  let series = Engine.Instrument.series c in
  check_int "interval sample + forced fault sample" 2 (List.length series);
  check_bool "forced sample recorded after the interval sample" true
    (List.map snd series = [ 1; 2 ]);
  let times = List.map fst series in
  check_bool "series stays chronological" true (List.sort compare times = times)

let test_collector_empty_series () =
  (* No events at all: the series is empty, not a phantom initial sample. *)
  let c : int Engine.Instrument.collector = Engine.Instrument.collector ~interval:10 () in
  check_int "empty series" 0 (List.length (Engine.Instrument.series c));
  (* Non-Step, non-Fault events never sample either. *)
  Engine.Instrument.sampled c
    (fun () -> Alcotest.fail "metric must not be called")
    (Engine.Instrument.Silence { interactions = 5; time = 1.0 });
  Engine.Instrument.sampled c
    (fun () -> Alcotest.fail "metric must not be called")
    (Engine.Instrument.Correct_entered { interactions = 5; time = 1.0 });
  check_int "still empty" 0 (List.length (Engine.Instrument.series c))

let test_collector_bad_interval () =
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Instrument.collector: interval must be positive") (fun () ->
      ignore (Engine.Instrument.collector ~interval:0 ()))

let suite =
  [
    Alcotest.test_case "protocol validate" `Quick test_validate;
    Alcotest.test_case "leader from rank" `Quick test_leader_from_rank;
    Alcotest.test_case "monitor initial correct" `Quick test_monitor_initial_correct;
    Alcotest.test_case "monitor initial incorrect" `Quick test_monitor_initial_incorrect;
    Alcotest.test_case "monitor update" `Quick test_monitor_update_to_correct;
    Alcotest.test_case "monitor leader count" `Quick test_monitor_leader_count;
    Alcotest.test_case "monitor out-of-range ranks" `Quick test_monitor_out_of_range;
    QCheck_alcotest.to_alcotest qcheck_monitor_matches_recompute;
    Alcotest.test_case "sim counts" `Quick test_sim_counts;
    Alcotest.test_case "sim copies init" `Quick test_sim_init_copied;
    Alcotest.test_case "sim snapshot isolated" `Quick test_sim_snapshot_isolated;
    Alcotest.test_case "sim applies transition" `Quick test_sim_step_applies_transition;
    Alcotest.test_case "sim determinism" `Quick test_sim_determinism;
    Alcotest.test_case "sim inject" `Quick test_sim_inject;
    Alcotest.test_case "sim corrupt" `Quick test_sim_corrupt;
    Alcotest.test_case "sim size mismatch" `Quick test_sim_size_mismatch;
    Alcotest.test_case "runner already correct" `Quick test_runner_already_correct;
    Alcotest.test_case "runner baseline leader election" `Quick test_runner_baseline_leader;
    Alcotest.test_case "runner never correct" `Quick test_runner_never_correct;
    Alcotest.test_case "runner violation counting" `Quick test_runner_violation_counting;
    Alcotest.test_case "runner defaults" `Quick test_default_confirm_monotone;
    Alcotest.test_case "silence detection" `Quick test_silence_detects;
    Alcotest.test_case "silence rejects randomized" `Quick test_silence_randomized_rejected;
    Alcotest.test_case "distinct states" `Quick test_distinct_states;
    Alcotest.test_case "collector sampling" `Quick test_collector_sampling;
    Alcotest.test_case "collector interval one" `Quick test_collector_interval_one;
    Alcotest.test_case "collector fault force-record" `Quick test_collector_fault_force_record;
    Alcotest.test_case "collector empty series" `Quick test_collector_empty_series;
    Alcotest.test_case "collector bad interval" `Quick test_collector_bad_interval;
  ]
