(* The supervised soak-fleet orchestrator: supervision capture, job-spec
   validation, the bounded fair admission queue, crash-safe journal
   replay, and the end-to-end robustness contract — every job terminal
   with exactly-once outputs, and per-job events files bit-identical
   across worker counts, injected kills, and drain/resume cycles. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A fresh directory per fleet run; Orchestrator.create makes it. *)
let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let marker = Filename.temp_file "fleet_test" (Printf.sprintf "_%d" !counter) in
    Sys.remove marker;
    marker

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* {2 Supervise} *)

let test_supervise () =
  (match Fleet.Supervise.run (fun () -> 41 + 1) with
  | Ok v -> check_int "value through" 42 v
  | Error f -> Alcotest.failf "ok thunk failed: %s" f.Fleet.Supervise.error);
  (match Fleet.Supervise.run (fun () -> failwith "boom") with
  | Ok _ -> Alcotest.fail "raise not captured"
  | Error f -> check_bool "error text" true (contains ~sub:"boom" f.Fleet.Supervise.error));
  check_string "clean summary" "3 of 3 succeeded" (Fleet.Supervise.summary ~total:3 []);
  let s =
    Fleet.Supervise.summary ~total:3
      [ ("trial 1", { Fleet.Supervise.error = "Failure(\"x\")"; backtrace = "" }) ]
  in
  check_bool "failure summary counts" true (contains ~sub:"2 of 3 succeeded, 1 failed" s);
  check_bool "failure summary names" true (contains ~sub:"trial 1" s)

(* {2 Job specs} *)

let job ?(protocol = "silent") ?(trials = 1) ?(retries = 2) ?chaos ?horizon ?sla ?deadline
    ?group ~n ~seed id =
  match
    Fleet.Job.make ~id ~protocol ~n ~seed ~trials ?chaos ?horizon ?sla ?deadline ~retries
      ?group ()
  with
  | Ok j -> j
  | Error msg -> Alcotest.failf "job %s invalid: %s" id msg

let test_job_defaults_and_roundtrip () =
  (match Fleet.Job.of_line {|{"id":"a","n":8}|} with
  | Error msg -> Alcotest.failf "minimal spec rejected: %s" msg
  | Ok j ->
      check_string "default protocol" "optimal" j.Fleet.Job.protocol;
      check_int "default trials" 1 j.Fleet.Job.trials;
      check_int "default retries" 2 j.Fleet.Job.retries;
      check_string "group defaults to protocol" "optimal" j.Fleet.Job.group;
      check_bool "no chaos" true (j.Fleet.Job.chaos = None));
  let j =
    job "rt" ~protocol:"sublinear" ~n:64 ~seed:9 ~trials:3
      ~chaos:"periodic:2000,corrupt:0.1" ~horizon:50.0 ~sla:25.0 ~group:"g1"
  in
  match Fleet.Job.of_json (Fleet.Job.to_json j) with
  | Ok j' -> check_bool "canonical encoding round-trips" true (j = j')
  | Error msg -> Alcotest.failf "round trip failed: %s" msg

let test_job_validation () =
  let rejects label line =
    match Fleet.Job.of_line line with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error _ -> ()
  in
  rejects "missing id" {|{"n":8}|};
  rejects "bad id chars" {|{"id":"a b","n":8}|};
  rejects "unknown protocol" {|{"id":"a","protocol":"warp","n":8}|};
  rejects "n too small" {|{"id":"a","n":1}|};
  rejects "count engine on randomized protocol"
    {|{"id":"a","protocol":"sublinear","n":8,"engine":"count"}|};
  rejects "bad chaos spec" {|{"id":"a","n":8,"chaos":"nope"}|};
  rejects "horizon without chaos" {|{"id":"a","n":8,"horizon":10.0}|};
  rejects "not json" {|{"id":|}

(* {2 Admission: bounded, fair} *)

let test_admission_backpressure () =
  let q = Fleet.Admission.create ~cap:2 in
  check_bool "fresh queue empty" true (Fleet.Admission.is_empty q);
  let a = job "a" ~n:8 ~seed:1 and b = job "b" ~n:8 ~seed:2 and c = job "c" ~n:8 ~seed:3 in
  check_bool "push a" true (Fleet.Admission.push q a = Ok ());
  check_bool "push b" true (Fleet.Admission.push q b = Ok ());
  (match Fleet.Admission.push q c with
  | Ok () -> Alcotest.fail "over-cap push accepted"
  | Error msg -> check_bool "shed verdict names the cap" true (contains ~sub:"cap 2" msg));
  check_bool "no capacity at cap" false (Fleet.Admission.has_capacity q);
  (* retries/resume bypass the cap: accepted work is never shed *)
  Fleet.Admission.push_force q c;
  check_int "forced depth" 3 (Fleet.Admission.depth q)

let test_admission_fairness () =
  let q = Fleet.Admission.create ~cap:16 in
  let push id group seed = Fleet.Admission.push_force q (job id ~group ~n:8 ~seed) in
  (* one noisy group, one quiet one *)
  push "n1" "noisy" 1;
  push "n2" "noisy" 2;
  push "n3" "noisy" 3;
  push "q1" "quiet" 4;
  push "q2" "quiet" 5;
  check_bool "groups in service order" true
    (Fleet.Admission.groups q = [ ("noisy", 3); ("quiet", 2) ]);
  let order = List.init 5 (fun _ -> (Option.get (Fleet.Admission.pop q)).Fleet.Job.id) in
  Alcotest.(check (list string))
    "round-robin across groups, FIFO within" [ "n1"; "q1"; "n2"; "q2"; "n3" ] order;
  check_bool "drained" true (Fleet.Admission.pop q = None)

(* {2 Journal: round trip and torn-tail replay} *)

let test_journal_entry_roundtrip () =
  let spec = job "j1" ~n:8 ~seed:1 in
  List.iter
    (fun entry ->
      match Fleet.Journal.entry_of_json (Fleet.Journal.entry_to_json entry) with
      | Some entry' -> check_bool "entry round-trips" true (entry = entry')
      | None -> Alcotest.fail "entry failed to decode")
    [
      Fleet.Journal.Spec spec;
      Fleet.Journal.Start { id = "j1"; attempt = 1 };
      Fleet.Journal.Retry { id = "j1"; attempt = 1; error = "boom"; delay_ticks = 8 };
      Fleet.Journal.Done { id = "j1"; attempt = 2; converged = 3; trials = 3 };
      Fleet.Journal.Fail { id = "j1"; attempts = 3; error = "boom" };
      Fleet.Journal.Shed { id = "j2"; reason = "queue full (cap 2)" };
      Fleet.Journal.Drain { reason = "sigterm" };
    ]

let test_journal_replay_torn_tail () =
  let path = Filename.temp_file "fleet_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let spec_a = job "a" ~n:8 ~seed:1 and spec_b = job "b" ~n:8 ~seed:2 in
      let j = Fleet.Journal.open_ path in
      List.iter
        (Fleet.Journal.append j)
        [
          Fleet.Journal.Spec spec_a;
          Fleet.Journal.Spec spec_b;
          Fleet.Journal.Start { id = "a"; attempt = 1 };
          Fleet.Journal.Done { id = "a"; attempt = 1; converged = 1; trials = 1 };
          Fleet.Journal.Start { id = "b"; attempt = 1 };
          Fleet.Journal.Retry { id = "b"; attempt = 1; error = "boom"; delay_ticks = 4 };
          Fleet.Journal.Start { id = "b"; attempt = 2 };
        ];
      Fleet.Journal.close j;
      (* a crash mid-append: torn partial record, no newline *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc {|{"v":1,"kind":"fleet","type":"done","id":"b",|};
      close_out oc;
      match Fleet.Journal.replay ~path with
      | Error msg -> Alcotest.failf "replay failed: %s" msg
      | Ok r ->
          check_bool "torn tail noticed" true r.Fleet.Journal.torn;
          check_bool "not cleanly drained" false r.Fleet.Journal.drained;
          check_int "both specs" 2 (List.length r.Fleet.Journal.specs);
          (match r.Fleet.Journal.completed with
          | [ d ] -> check_string "a completed" "a" d.Fleet.Journal.id
          | l -> Alcotest.failf "expected 1 completion, got %d" (List.length l));
          check_bool "no failures" true (r.Fleet.Journal.failed = []);
          (* b's last started attempt survives for resume accounting *)
          check_bool "attempt counts" true
            (List.assoc "b" r.Fleet.Journal.attempts = 2))

(* {2 Orchestrator end to end} *)

let fleet_config ?(workers = 2) ?(queue_cap = 64) ?(chaos = Chaos.Fleet_faults.none)
    ?(chaos_seed = 0) ~out_dir () =
  {
    (Fleet.Orchestrator.default_config ~out_dir) with
    Fleet.Orchestrator.workers;
    queue_cap;
    chaos;
    chaos_seed;
    backoff_base = 1;
  }

let submit_all orch jobs =
  List.iter
    (fun j ->
      match Fleet.Orchestrator.submit orch j with
      | `Accepted -> ()
      | `Shed reason -> Alcotest.failf "job %s shed: %s" j.Fleet.Job.id reason)
    jobs

(* Four small jobs across two scheduling groups. *)
let standard_jobs () =
  [
    job "sil-a" ~protocol:"silent" ~n:10 ~seed:3 ~trials:2;
    job "sil-b" ~protocol:"silent" ~n:8 ~seed:4;
    job "opt-a" ~protocol:"optimal" ~n:10 ~seed:5 ~trials:2;
    job "opt-b" ~protocol:"optimal" ~n:12 ~seed:6;
  ]

let run_fleet ?workers ?chaos ?chaos_seed ?should_drain ~out_dir jobs =
  let orch = Fleet.Orchestrator.create (fleet_config ?workers ?chaos ?chaos_seed ~out_dir ()) in
  submit_all orch jobs;
  let reason = Fleet.Orchestrator.run ~tick_s:0.0 ?should_drain orch in
  (orch, reason)

let events_of ~out_dir j = read_file (Fleet.Worker.events_path ~out_dir j)

let check_outputs_match ~base_dir ~out_dir jobs =
  List.iter
    (fun j ->
      check_string
        (Printf.sprintf "%s events bit-identical" j.Fleet.Job.id)
        (events_of ~out_dir:base_dir j) (events_of ~out_dir j);
      check_bool
        (Printf.sprintf "%s manifest present" j.Fleet.Job.id)
        true
        (Sys.file_exists (Fleet.Worker.manifest_path ~out_dir j)))
    jobs

let test_fleet_deterministic_across_workers () =
  let jobs = standard_jobs () in
  let base_dir = tmp_dir () and wide_dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () ->
      rm_rf base_dir;
      rm_rf wide_dir)
    (fun () ->
      let orch1, reason1 = run_fleet ~workers:1 ~out_dir:base_dir jobs in
      check_string "clean drain" "complete" reason1;
      check_bool "all terminal" true (Fleet.Orchestrator.all_done orch1);
      check_int "all completed" 4 (Fleet.Orchestrator.completed_count orch1);
      let orch3, _ = run_fleet ~workers:3 ~out_dir:wide_dir jobs in
      check_int "all completed at 3 workers" 4 (Fleet.Orchestrator.completed_count orch3);
      let s = Fleet.Orchestrator.stats orch3 in
      check_int "no failures" 0 s.Fleet.Orchestrator.failed;
      check_outputs_match ~base_dir ~out_dir:wide_dir jobs;
      (* the journal replays to the same picture *)
      match Fleet.Journal.replay ~path:(Filename.concat wide_dir "fleet.journal.jsonl") with
      | Error msg -> Alcotest.failf "journal replay: %s" msg
      | Ok r ->
          check_bool "clean drain journaled" true r.Fleet.Journal.drained;
          check_int "four dones" 4 (List.length r.Fleet.Journal.completed))

let test_fleet_shed_and_duplicates () =
  let out_dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf out_dir)
    (fun () ->
      let orch = Fleet.Orchestrator.create (fleet_config ~workers:1 ~queue_cap:1 ~out_dir ()) in
      let a = job "a" ~n:8 ~seed:1 and b = job "b" ~n:8 ~seed:2 in
      check_bool "a accepted" true (Fleet.Orchestrator.submit orch a = `Accepted);
      (match Fleet.Orchestrator.submit orch b with
      | `Accepted -> Alcotest.fail "over-cap submission accepted"
      | `Shed reason -> check_bool "explicit queue-full verdict" true (contains ~sub:"full" reason));
      (match Fleet.Orchestrator.submit orch a with
      | `Accepted -> Alcotest.fail "duplicate id accepted"
      | `Shed reason -> check_bool "duplicate verdict" true (contains ~sub:"duplicate" reason));
      Fleet.Orchestrator.reject orch ~id:"line-3" ~reason:"not json";
      let reason = Fleet.Orchestrator.run ~tick_s:0.0 orch in
      check_string "completes" "complete" reason;
      let s = Fleet.Orchestrator.stats orch in
      check_int "one job ran" 1 s.Fleet.Orchestrator.completed;
      check_int "three sheds journaled" 3 s.Fleet.Orchestrator.shed;
      match Fleet.Journal.replay ~path:(Filename.concat out_dir "fleet.journal.jsonl") with
      | Error msg -> Alcotest.failf "journal replay: %s" msg
      | Ok r -> check_int "one spec accepted" 1 (List.length r.Fleet.Journal.specs))

let test_fleet_deadline_exhausts_retries () =
  let out_dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf out_dir)
    (fun () ->
      (* 5 interactions cannot stabilize n=10; every attempt blows the
         deadline deterministically, so the job fails with its retries
         accounted and leaves no partial outputs. *)
      let doomed = job "doomed" ~n:10 ~seed:7 ~deadline:5 ~retries:2 in
      let sound = job "sound" ~n:8 ~seed:8 in
      let orch, _ = run_fleet ~workers:1 ~out_dir [ doomed; sound ] in
      check_bool "all terminal" true (Fleet.Orchestrator.all_done orch);
      let s = Fleet.Orchestrator.stats orch in
      check_int "one failure" 1 s.Fleet.Orchestrator.failed;
      check_int "retries accounted" 2 s.Fleet.Orchestrator.retries;
      check_int "the sound job completed" 1 (Fleet.Orchestrator.completed_count orch);
      check_bool "no partial events" false
        (Sys.file_exists (Fleet.Worker.events_path ~out_dir doomed));
      check_bool "no partial manifest" false
        (Sys.file_exists (Fleet.Worker.manifest_path ~out_dir doomed));
      match Fleet.Journal.replay ~path:(Filename.concat out_dir "fleet.journal.jsonl") with
      | Error msg -> Alcotest.failf "journal replay: %s" msg
      | Ok r -> (
          match r.Fleet.Journal.failed with
          | [ (id, error) ] ->
              check_string "failed id" "doomed" id;
              check_bool "deadline named" true (contains ~sub:"deadline" error)
          | l -> Alcotest.failf "expected 1 failure, got %d" (List.length l)))

(* The acceptance test: kill-worker chaos plus a mid-run drain (the
   in-process stand-in for SIGKILL; CI's fleet-smoke job does the real
   kill) followed by --resume. Every job must end terminal with
   exactly-once outputs, and completed jobs' events files must be
   bit-identical to an undisturbed chaos-free run. *)
let test_fleet_chaos_kill_and_resume () =
  let jobs = standard_jobs () in
  let base_dir = tmp_dir () and out_dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () ->
      rm_rf base_dir;
      rm_rf out_dir)
    (fun () ->
      let _, _ = run_fleet ~workers:1 ~out_dir:base_dir jobs in
      (* chaos-seed 3 draws at least one kill over these four jobs at
         p=0.5 (deterministic: mix over (seed, id, attempt)) *)
      let chaos = { Chaos.Fleet_faults.none with Chaos.Fleet_faults.kill_worker = 0.5 } in
      (* workers:1 so at most the in-flight job can complete between the
         first completion and the drain taking hold — something is
         always stranded for resume to pick up *)
      let cfg = fleet_config ~workers:1 ~chaos ~chaos_seed:3 ~out_dir () in
      let orch = Fleet.Orchestrator.create cfg in
      submit_all orch jobs;
      (* injected crash: drain as soon as anything completed, stranding
         the rest of the queue in the journal *)
      let should_drain () =
        if Fleet.Orchestrator.completed_count orch >= 1 then Some "injected-crash" else None
      in
      let reason = Fleet.Orchestrator.run ~tick_s:0.0 ~should_drain orch in
      check_string "drained on the injected crash" "injected-crash" reason;
      let before = Fleet.Orchestrator.completed_count orch in
      check_bool "something stranded" true (before < 4);
      (* resume: terminal jobs stay terminal, stranded jobs re-queue *)
      let orch2 = Fleet.Orchestrator.create ~resume:true cfg in
      (* re-feeding the same specs after resume must shed as duplicates,
         never re-run a completed job *)
      List.iter
        (fun j ->
          match Fleet.Orchestrator.submit orch2 j with
          | `Accepted -> Alcotest.failf "%s re-accepted after resume" j.Fleet.Job.id
          | `Shed _ -> ())
        jobs;
      let (_ : string) = Fleet.Orchestrator.run ~tick_s:0.0 orch2 in
      check_bool "all terminal after resume" true (Fleet.Orchestrator.all_done orch2);
      let replay =
        match Fleet.Journal.replay ~path:cfg.Fleet.Orchestrator.journal_path with
        | Ok r -> r
        | Error msg -> Alcotest.failf "journal replay: %s" msg
      in
      (* exactly-once: one done entry per completed id across both lives *)
      let done_ids = List.map (fun d -> d.Fleet.Journal.id) replay.Fleet.Journal.completed in
      check_bool "no duplicated completions" true
        (List.sort_uniq compare done_ids = List.sort compare done_ids);
      let failed_ids = List.map fst replay.Fleet.Journal.failed in
      List.iter
        (fun j ->
          let id = j.Fleet.Job.id in
          let completed = List.mem id done_ids and failed = List.mem id failed_ids in
          check_bool (id ^ " terminal exactly one way") true (completed <> failed);
          if completed then begin
            check_string (id ^ " events bit-identical to undisturbed run")
              (events_of ~out_dir:base_dir j) (events_of ~out_dir j);
            check_bool (id ^ " manifest present") true
              (Sys.file_exists (Fleet.Worker.manifest_path ~out_dir j))
          end
          else begin
            check_bool (id ^ " no partial events") false
              (Sys.file_exists (Fleet.Worker.events_path ~out_dir j));
            check_bool (id ^ " no partial manifest") false
              (Sys.file_exists (Fleet.Worker.manifest_path ~out_dir j))
          end)
        jobs;
      (* the kills actually fired: retry entries in the journal *)
      let s = Fleet.Orchestrator.stats orch2 in
      let retries_total =
        s.Fleet.Orchestrator.retries + (Fleet.Orchestrator.stats orch).Fleet.Orchestrator.retries
      in
      check_bool "chaos drew at least one kill" true (retries_total > 0))

let test_fleet_torn_journal_resume () =
  let out_dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf out_dir)
    (fun () ->
      let jobs = [ job "a" ~n:8 ~seed:1; job "b" ~n:8 ~seed:2 ] in
      let chaos = { Chaos.Fleet_faults.none with Chaos.Fleet_faults.torn_journal = true } in
      let cfg = fleet_config ~workers:1 ~chaos ~out_dir () in
      let orch = Fleet.Orchestrator.create cfg in
      submit_all orch jobs;
      let (_ : string) = Fleet.Orchestrator.run ~tick_s:0.0 orch in
      check_int "completed before tear" 2 (Fleet.Orchestrator.completed_count orch);
      (* the shutdown tore the journal's final record; replay tolerates
         it and resume keeps completed jobs terminal *)
      let replay =
        match Fleet.Journal.replay ~path:cfg.Fleet.Orchestrator.journal_path with
        | Ok r -> r
        | Error msg -> Alcotest.failf "torn journal unreadable: %s" msg
      in
      check_bool "tear detected" true replay.Fleet.Journal.torn;
      let orch2 = Fleet.Orchestrator.create ~resume:true cfg in
      let manifest_before = read_file (Fleet.Worker.manifest_path ~out_dir (List.hd jobs)) in
      let (_ : string) = Fleet.Orchestrator.run ~tick_s:0.0 orch2 in
      check_bool "all still terminal" true (Fleet.Orchestrator.all_done orch2);
      check_string "completed manifest untouched by resume" manifest_before
        (read_file (Fleet.Worker.manifest_path ~out_dir (List.hd jobs))))

let test_fleet_snapshot_json () =
  let out_dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf out_dir)
    (fun () ->
      let orch, _ = run_fleet ~workers:1 ~out_dir [ job "a" ~n:8 ~seed:1 ] in
      let json = Fleet.Orchestrator.snapshot_json orch in
      let s = Telemetry.Json.to_string json in
      (match Telemetry.Json.parse s with
      | Ok back -> check_bool "snapshot round-trips" true (Telemetry.Json.equal json back)
      | Error msg -> Alcotest.failf "snapshot does not parse: %s" msg);
      check_bool "kind" true (contains ~sub:{|"kind":"fleet_status"|} s);
      check_bool "job row" true (contains ~sub:{|"state":"completed"|} s))

let suite =
  [
    Alcotest.test_case "supervise: captures raises, accounts failures" `Quick test_supervise;
    Alcotest.test_case "job: defaults and canonical round trip" `Quick
      test_job_defaults_and_roundtrip;
    Alcotest.test_case "job: malformed specs shed at admission" `Quick test_job_validation;
    Alcotest.test_case "admission: bounded with explicit shed verdicts" `Quick
      test_admission_backpressure;
    Alcotest.test_case "admission: round-robin fairness across groups" `Quick
      test_admission_fairness;
    Alcotest.test_case "journal: entry encode/decode round trip" `Quick
      test_journal_entry_roundtrip;
    Alcotest.test_case "journal: replay tolerates a torn tail" `Quick
      test_journal_replay_torn_tail;
    Alcotest.test_case "fleet: events bit-identical across worker counts" `Slow
      test_fleet_deterministic_across_workers;
    Alcotest.test_case "fleet: backpressure, duplicates and rejects journaled" `Quick
      test_fleet_shed_and_duplicates;
    Alcotest.test_case "fleet: deadline failures retry then fail accounted" `Slow
      test_fleet_deadline_exhausts_retries;
    Alcotest.test_case "fleet: chaos kills + crash/resume keep exactly-once outputs" `Slow
      test_fleet_chaos_kill_and_resume;
    Alcotest.test_case "fleet: torn-journal shutdown still resumes" `Slow
      test_fleet_torn_journal_resume;
    Alcotest.test_case "fleet: status snapshot json shape" `Quick test_fleet_snapshot_json;
  ]
