(* Child process for the sink durability tests (test_telemetry.ml).
   Forking the test binary is off the table once domains exist (the pool
   suites run first), so the mid-write-kill scenarios run here in a
   fresh process spawned with create_process.

   Modes:
     kill PATH — journal-style autoflush writes, then a raw partial
                 record and SIGKILL to self: every complete line must
                 already be durable, the tail torn mid-bytes.
     term PATH — buffered (non-autoflush) writes with only
                 install_crash_flush armed; prints "ready" then sleeps
                 until the parent's SIGTERM, whose handler must flush
                 before re-delivering the default disposition. *)

let write_records sink =
  for i = 1 to 50 do
    Telemetry.Sink.write sink (Telemetry.Json.Obj [ ("i", Telemetry.Json.Int i) ])
  done

let () =
  match Sys.argv with
  | [| _; "kill"; path |] ->
      let sink = Telemetry.Sink.file ~autoflush:true path in
      write_records sink;
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      let torn = "{\"i\":51,\"to" in
      ignore (Unix.write_substring fd torn 0 (String.length torn));
      Unix.close fd;
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      assert false
  | [| _; "term"; path |] ->
      Telemetry.Sink.install_crash_flush ();
      let sink = Telemetry.Sink.file path in
      write_records sink;
      print_string "ready";
      flush stdout;
      while true do
        Unix.sleepf 3600.0
      done
  | _ ->
      prerr_endline "usage: sink_crash_child (kill|term) PATH";
      exit 2
