(* Tests for the paper's protocols and their building blocks. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Params                                                              *)

let test_params_optimal () =
  let p = Core.Params.optimal_silent 64 in
  check_bool "r_max positive" true (p.Core.Params.r_max > 0);
  check_bool "d_max linear" true (p.Core.Params.d_max >= 64);
  check_bool "e_max linear" true (p.Core.Params.e_max >= 64);
  let paper = Core.Params.optimal_silent ~preset:Core.Params.Paper 64 in
  check_bool "paper r_max larger" true (paper.Core.Params.r_max > p.Core.Params.r_max)

let test_params_sublinear () =
  let p = Core.Params.sublinear ~h:2 64 in
  check_int "name bits 3·log2" 18 p.Core.Params.name_bits;
  check_int "s_max n^2" 4096 p.Core.Params.s_max;
  check_int "h recorded" 2 p.Core.Params.h;
  check_bool "d_max covers name" true (p.Core.Params.d_max >= p.Core.Params.name_bits);
  check_int "h=0 has no timer" 0 (Core.Params.sublinear ~h:0 64).Core.Params.t_h

let test_params_t_h_decreasing () =
  (* Larger H detects collisions through shorter epidemic legs: T_H falls
     (until the log regime floor). *)
  let t h = (Core.Params.sublinear ~h 256).Core.Params.t_h in
  check_bool "t_1 > t_3" true (t 1 > t 3)

let test_params_helpers () =
  check_int "ceil_log2 1" 0 (Core.Params.ceil_log2 1);
  check_int "ceil_log2 8" 3 (Core.Params.ceil_log2 8);
  check_int "ceil_log2 9" 4 (Core.Params.ceil_log2 9);
  check_int "h_log 64" 6 (Core.Params.h_log 64);
  check_int "ceil_ln 8" 3 (Core.Params.ceil_ln 8)

let test_params_errors () =
  Alcotest.check_raises "n too small" (Invalid_argument "Params: population size must be >= 2")
    (fun () -> ignore (Core.Params.optimal_silent 1));
  Alcotest.check_raises "negative H" (Invalid_argument "Params.sublinear: H must be >= 0")
    (fun () -> ignore (Core.Params.sublinear ~h:(-1) 8))

(* ------------------------------------------------------------------ *)
(* Name                                                                *)

let nm bits len = Core.Name.of_int ~bits ~len

let test_name_build () =
  let n = Core.Name.empty in
  check_int "empty length" 0 (Core.Name.length n);
  check_bool "is empty" true (Core.Name.is_empty n);
  let n = Core.Name.append_bit n true in
  let n = Core.Name.append_bit n false in
  let n = Core.Name.append_bit n true in
  check_int "length 3" 3 (Core.Name.length n);
  Alcotest.(check string) "bits" "101" (Core.Name.to_string n);
  check_int "as int" 0b101 (Core.Name.to_int n)

let test_name_roundtrip () =
  let n = nm 0b0110 4 in
  check_int "to_int" 6 (Core.Name.to_int n);
  Alcotest.(check string) "string" "0110" (Core.Name.to_string n);
  check_bool "bit 0" false (Core.Name.bit n 0);
  check_bool "bit 1" true (Core.Name.bit n 1);
  check_bool "bit 3" false (Core.Name.bit n 3)

let test_name_compare_lexicographic () =
  let lt a b = Core.Name.compare a b < 0 in
  check_bool "0 < 1" true (lt (nm 0 1) (nm 1 1));
  check_bool "prefix first: 0 < 00" true (lt (nm 0 1) (nm 0 2));
  check_bool "prefix first: 0 < 01" true (lt (nm 0 1) (nm 1 2));
  check_bool "01 < 1" true (lt (nm 0b01 2) (nm 1 1));
  check_bool "equal" true (Core.Name.compare (nm 5 3) (nm 5 3) = 0);
  check_bool "011 < 0110 (prefix)" true (lt (nm 0b011 3) (nm 0b0110 4));
  check_bool "leading zeros matter: 001 < 01" true (lt (nm 0b001 3) (nm 0b01 2))

let test_name_equal () =
  check_bool "same" true (Core.Name.equal (nm 3 2) (nm 3 2));
  check_bool "same bits different length" false (Core.Name.equal (nm 1 1) (nm 1 2));
  check_bool "empty equals empty" true (Core.Name.equal Core.Name.empty Core.Name.empty)

let test_name_random () =
  let rng = Prng.create ~seed:77 in
  let n = Core.Name.random rng ~width:12 in
  check_int "width" 12 (Core.Name.length n);
  check_bool "complete" true (Core.Name.is_complete ~width:12 n);
  check_bool "incomplete at 13" false (Core.Name.is_complete ~width:13 n)

let test_name_errors () =
  Alcotest.check_raises "bit range" (Invalid_argument "Name.bit: index out of range") (fun () ->
      ignore (Core.Name.bit (nm 1 1) 1));
  Alcotest.check_raises "of_int range" (Invalid_argument "Name.of_int: bits out of range")
    (fun () -> ignore (nm 4 2))

let qcheck_name_order_total =
  QCheck.Test.make ~name:"name order is antisymmetric and transitive on samples" ~count:500
    QCheck.(triple (pair (int_bound 255) (int_range 1 8)) (pair (int_bound 255) (int_range 1 8))
              (pair (int_bound 255) (int_range 1 8)))
    (fun ((b1, l1), (b2, l2), (b3, l3)) ->
      let mk b l = Core.Name.of_int ~bits:(b land ((1 lsl l) - 1)) ~len:l in
      let x = mk b1 l1 and y = mk b2 l2 and z = mk b3 l3 in
      let c = Core.Name.compare in
      let antisym = not (c x y < 0 && c y x < 0) in
      let trans = not (c x y <= 0 && c y z <= 0) || c x z <= 0 in
      let refl = c x x = 0 in
      antisym && trans && refl)

(* ------------------------------------------------------------------ *)
(* Roster                                                              *)

let test_roster_basics () =
  let a = nm 0 2 and b = nm 1 2 and c = nm 2 2 in
  let r = Core.Roster.of_list [ b; a ] in
  check_int "cardinal" 2 (Core.Roster.cardinal r);
  check_bool "mem a" true (Core.Roster.mem a r);
  check_bool "not mem c" false (Core.Roster.mem c r);
  let r2 = Core.Roster.add c r in
  check_int "added" 3 (Core.Roster.cardinal r2);
  check_int "add idempotent" 3 (Core.Roster.cardinal (Core.Roster.add c r2))

let test_roster_union () =
  let r1 = Core.Roster.of_list [ nm 0 2; nm 1 2 ] in
  let r2 = Core.Roster.of_list [ nm 1 2; nm 2 2 ] in
  check_int "union dedups" 3 (Core.Roster.cardinal (Core.Roster.union r1 r2))

let test_roster_rank_of () =
  let names = [ nm 0b10 2; nm 0b00 2; nm 0b11 2; nm 0b01 2 ] in
  let r = Core.Roster.of_list names in
  check_int "00 is rank 1" 1 (Option.get (Core.Roster.rank_of (nm 0b00 2) r));
  check_int "01 is rank 2" 2 (Option.get (Core.Roster.rank_of (nm 0b01 2) r));
  check_int "11 is rank 4" 4 (Option.get (Core.Roster.rank_of (nm 0b11 2) r));
  check_bool "absent" true (Core.Roster.rank_of (nm 0b111 3) r = None)

let test_roster_elements_sorted () =
  let r = Core.Roster.of_list [ nm 3 2; nm 0 2; nm 2 2 ] in
  let sorted = Core.Roster.elements r in
  check_bool "ascending" true
    (List.sort Core.Name.compare sorted = sorted)

let qcheck_roster_rank_is_sorted_position =
  QCheck.Test.make ~name:"rank_of equals position in sorted elements" ~count:300
    QCheck.(list_of_size Gen.(1 -- 20) (int_bound 63))
    (fun bits ->
      let names = List.map (fun b -> Core.Name.of_int ~bits:b ~len:6) bits in
      let r = Core.Roster.of_list names in
      let elements = Core.Roster.elements r in
      List.for_all
        (fun name ->
          match Core.Roster.rank_of name r with
          | None -> false
          | Some rank ->
              Core.Name.equal (List.nth elements (rank - 1)) name)
        names)

(* ------------------------------------------------------------------ *)
(* History trees                                                       *)

let t_node name sync timer children = { Core.History_tree.name; sync; timer; children }

let test_tree_merge_basic () =
  let own = nm 0 3 and partner = nm 1 3 in
  let t =
    Core.History_tree.merge ~h:2 ~own ~partner ~partner_tree:Core.History_tree.empty ~sync:5
      ~timer:10 Core.History_tree.empty
  in
  check_int "one child" 1 (Core.History_tree.node_count t);
  match Core.History_tree.find_child ~name:partner t with
  | Some nd ->
      check_int "sync" 5 nd.Core.History_tree.sync;
      check_int "timer" 10 nd.Core.History_tree.timer;
      check_int "no grandchildren" 0 (List.length nd.Core.History_tree.children)
  | None -> Alcotest.fail "partner child missing"

let test_tree_merge_replaces_existing () =
  let own = nm 0 3 and partner = nm 1 3 in
  let t1 =
    Core.History_tree.merge ~h:2 ~own ~partner ~partner_tree:Core.History_tree.empty ~sync:5
      ~timer:10 Core.History_tree.empty
  in
  let t2 =
    Core.History_tree.merge ~h:2 ~own ~partner ~partner_tree:Core.History_tree.empty ~sync:9
      ~timer:10 t1
  in
  check_int "still one child" 1 (Core.History_tree.node_count t2);
  check_int "sync refreshed" 9
    (Option.get (Core.History_tree.find_child ~name:partner t2)).Core.History_tree.sync

let test_tree_merge_truncates () =
  let own = nm 0 3 and partner = nm 1 3 in
  let deep = [ t_node (nm 2 3) 1 9 [ t_node (nm 3 3) 2 9 [ t_node (nm 4 3) 3 9 [] ] ] ] in
  let t =
    Core.History_tree.merge ~h:2 ~own ~partner ~partner_tree:deep ~sync:5 ~timer:10
      Core.History_tree.empty
  in
  check_int "depth capped at h" 2 (Core.History_tree.depth t);
  (* partner at depth 1, its depth-1 children kept (now depth 2), deeper cut *)
  check_int "nodes" 2 (Core.History_tree.node_count t)

let test_tree_merge_removes_own () =
  let own = nm 0 3 and partner = nm 1 3 in
  let partner_tree = [ t_node own 7 9 [ t_node (nm 2 3) 1 9 [] ] ] in
  let t =
    Core.History_tree.merge ~h:3 ~own ~partner ~partner_tree ~sync:5 ~timer:10
      Core.History_tree.empty
  in
  check_bool "own name gone" true (Core.History_tree.simply_labelled ~own t);
  check_int "only partner survives" 1 (Core.History_tree.node_count t)

let test_tree_merge_h0 () =
  let t =
    Core.History_tree.merge ~h:0 ~own:(nm 0 3) ~partner:(nm 1 3)
      ~partner_tree:[ t_node (nm 2 3) 1 9 [] ] ~sync:5 ~timer:10 Core.History_tree.empty
  in
  check_int "h=0 keeps no history" 0 (Core.History_tree.node_count t)

let test_tree_decrement () =
  let t = [ t_node (nm 1 3) 1 2 [ t_node (nm 2 3) 2 0 [] ] ] in
  let t = Core.History_tree.decrement_timers t in
  (match t with
  | [ nd ] ->
      check_int "decremented" 1 nd.Core.History_tree.timer;
      check_int "floored at 0" 0 (List.hd nd.Core.History_tree.children).Core.History_tree.timer
  | _ -> Alcotest.fail "shape");
  ()

let test_tree_remove_named_deep () =
  let target = nm 5 3 in
  let t =
    [
      t_node (nm 1 3) 1 9 [ t_node target 2 9 [ t_node (nm 2 3) 3 9 [] ] ];
      t_node target 4 9 [];
    ]
  in
  let t = Core.History_tree.remove_named ~name:target t in
  check_int "both removed with subtrees" 1 (Core.History_tree.node_count t)

let test_tree_paths_filter_stale () =
  let target = nm 7 3 in
  let fresh_path = t_node (nm 1 3) 1 5 [ t_node target 2 5 [] ] in
  let stale_path = t_node (nm 2 3) 3 0 [ t_node target 4 5 [] ] in
  let t = [ fresh_path; stale_path ] in
  let paths = Core.History_tree.fresh_paths_to ~name:target t in
  check_int "only fresh path" 1 (List.length paths);
  match paths with
  | [ [ (n1, s1); (n2, s2) ] ] ->
      check_bool "first node" true (Core.Name.equal n1 (nm 1 3));
      check_int "first sync" 1 s1;
      check_bool "end node" true (Core.Name.equal n2 target);
      check_int "end sync" 2 s2
  | _ -> Alcotest.fail "unexpected path shape"

let test_tree_paths_multiple () =
  let target = nm 7 3 in
  let t =
    [
      t_node target 1 5 [];
      t_node (nm 1 3) 2 5 [ t_node target 3 5 [] ];
    ]
  in
  check_int "two ways to reach target" 2
    (List.length (Core.History_tree.fresh_paths_to ~name:target t))

(* Figure 2 as unit tests of consistency checking. *)
let figure2_setup variant =
  let a = nm 0 3 and b = nm 1 3 and c = nm 2 3 and d = nm 3 3 in
  let trees = Hashtbl.create 4 in
  List.iter (fun n -> Hashtbl.replace trees n Core.History_tree.empty) [ a; b; c; d ];
  let interact x y sync =
    let tx = Hashtbl.find trees x and ty = Hashtbl.find trees y in
    Hashtbl.replace trees x
      (Core.History_tree.merge ~h:3 ~own:x ~partner:y ~partner_tree:ty ~sync ~timer:50 tx);
    Hashtbl.replace trees y
      (Core.History_tree.merge ~h:3 ~own:y ~partner:x ~partner_tree:tx ~sync ~timer:50 ty)
  in
  interact a b 1;
  interact b c 2;
  if variant = `Right then interact a b 7;
  interact c d 3;
  (trees, a, d)

let test_figure2_left () =
  let trees, a, d = figure2_setup `Left in
  let d_tree = Hashtbl.find trees d and a_tree = Hashtbl.find trees a in
  match Core.History_tree.fresh_paths_to ~name:a d_tree with
  | [ path ] ->
      check_int "path length 3" 3 (List.length path);
      Alcotest.(check (option int)) "True after first edge" (Some 1)
        (Core.History_tree.consistent_at ~tree:a_tree ~origin:d ~path)
  | _ -> Alcotest.fail "expected exactly one path d->...->a"

let test_figure2_right () =
  let trees, a, d = figure2_setup `Right in
  let d_tree = Hashtbl.find trees d and a_tree = Hashtbl.find trees a in
  match Core.History_tree.fresh_paths_to ~name:a d_tree with
  | [ path ] ->
      Alcotest.(check (option int)) "True after second edge" (Some 2)
        (Core.History_tree.consistent_at ~tree:a_tree ~origin:d ~path)
  | _ -> Alcotest.fail "expected exactly one path d->...->a"

let test_figure2_impostor () =
  (* An impostor with a's name but no matching history fails the check. *)
  let trees, a, d = figure2_setup `Left in
  let d_tree = Hashtbl.find trees d in
  ignore a;
  match Core.History_tree.fresh_paths_to ~name:a d_tree with
  | [ path ] ->
      check_bool "empty-tree impostor is inconsistent" false
        (Core.History_tree.consistent ~tree:Core.History_tree.empty ~origin:d ~path);
      (* ...and an impostor with a wrong sync also fails *)
      let wrong = [ t_node (nm 1 3) 99 50 [] ] in
      check_bool "wrong-sync impostor is inconsistent" false
        (Core.History_tree.consistent ~tree:wrong ~origin:d ~path)
  | _ -> Alcotest.fail "expected exactly one path"

let test_consistent_empty_path () =
  check_bool "empty path is not consistent" false
    (Core.History_tree.consistent ~tree:Core.History_tree.empty ~origin:(nm 0 3) ~path:[])

let test_tree_invariant_checkers () =
  let own = nm 0 3 in
  let good = [ t_node (nm 1 3) 1 1 [ t_node (nm 2 3) 2 1 [] ] ] in
  check_bool "good simply labelled" true (Core.History_tree.simply_labelled ~own good);
  let dup_on_path = [ t_node (nm 1 3) 1 1 [ t_node (nm 1 3) 2 1 [] ] ] in
  check_bool "ancestor duplicate rejected" false
    (Core.History_tree.simply_labelled ~own dup_on_path);
  let has_own = [ t_node own 1 1 [] ] in
  check_bool "own name rejected" false (Core.History_tree.simply_labelled ~own has_own);
  let dup_siblings = [ t_node (nm 1 3) 1 1 []; t_node (nm 1 3) 2 1 [] ] in
  check_bool "sibling duplicate detected" false
    (Core.History_tree.sibling_names_distinct dup_siblings);
  (* duplicates on different branches are fine *)
  let cousins =
    [ t_node (nm 1 3) 1 1 [ t_node (nm 3 3) 2 1 [] ]; t_node (nm 2 3) 3 1 [ t_node (nm 3 3) 4 1 [] ] ]
  in
  check_bool "cousins may share names" true (Core.History_tree.simply_labelled ~own cousins)

let qcheck_tree_invariants_under_merges =
  QCheck.Test.make ~name:"merge maintains simple labelling, sibling uniqueness, depth <= h"
    ~count:100
    QCheck.(pair small_int (list (pair (int_bound 5) (int_bound 5))))
    (fun (seed, meetings) ->
      let agents = 6 and h = 3 in
      let rng = Prng.create ~seed in
      let names = Array.init agents (fun i -> Core.Name.of_int ~bits:i ~len:3) in
      let trees = Array.make agents Core.History_tree.empty in
      List.iter
        (fun (i, j) ->
          let i = i mod agents and j = j mod agents in
          if i <> j then begin
            let sync = 1 + Prng.int rng 100 in
            let ti = trees.(i) and tj = trees.(j) in
            trees.(i) <-
              Core.History_tree.decrement_timers
                (Core.History_tree.merge ~h ~own:names.(i) ~partner:names.(j) ~partner_tree:tj
                   ~sync ~timer:20 ti);
            trees.(j) <-
              Core.History_tree.decrement_timers
                (Core.History_tree.merge ~h ~own:names.(j) ~partner:names.(i) ~partner_tree:ti
                   ~sync ~timer:20 tj)
          end)
        meetings;
      Array.for_all2
        (fun own tree ->
          Core.History_tree.simply_labelled ~own tree
          && Core.History_tree.sibling_names_distinct tree
          && Core.History_tree.depth tree <= h)
        names trees)

(* ------------------------------------------------------------------ *)
(* Silent-n-state-SSR                                                  *)

let test_silent_transition_rule () =
  let n = 5 in
  let p = Core.Silent_n_state.protocol ~n in
  let rng = Prng.create ~seed:1 in
  let s r = Core.Silent_n_state.state_of_rank0 ~n r in
  let a, b = p.Engine.Protocol.transition rng (s 2) (s 2) in
  check_bool "initiator unchanged" true (p.Engine.Protocol.equal a (s 2));
  check_bool "responder bumped" true (p.Engine.Protocol.equal b (s 3));
  let a, b = p.Engine.Protocol.transition rng (s 4) (s 4) in
  check_bool "wraps mod n" true (p.Engine.Protocol.equal b (s 0));
  ignore a;
  let a, b = p.Engine.Protocol.transition rng (s 1) (s 2) in
  check_bool "distinct ranks null" true
    (p.Engine.Protocol.equal a (s 1) && p.Engine.Protocol.equal b (s 2))

let test_silent_observation () =
  let n = 4 in
  let p = Core.Silent_n_state.protocol ~n in
  Alcotest.(check (option int)) "rank is 1-based" (Some 1)
    (p.Engine.Protocol.rank (Core.Silent_n_state.state_of_rank0 ~n 0));
  check_bool "rank0 is leader" true
    (p.Engine.Protocol.is_leader (Core.Silent_n_state.state_of_rank0 ~n 0));
  check_bool "rank1 is not" false
    (p.Engine.Protocol.is_leader (Core.Silent_n_state.state_of_rank0 ~n 1))

let test_silent_metadata () =
  let p = Core.Silent_n_state.protocol ~n:7 in
  check_bool "deterministic" true p.Engine.Protocol.deterministic;
  check_int "n" 7 p.Engine.Protocol.n;
  check_int "states" 7 (Core.Silent_n_state.states ~n:7)

let converge ?(task = Engine.Runner.Ranking) ~protocol ~init ~seed ~expected_time () =
  let n = protocol.Engine.Protocol.n in
  let rng = Prng.create ~seed in
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  let o =
    Engine.Runner.run_to_stability ~task
      ~max_interactions:(Engine.Runner.default_horizon ~n ~expected_time)
      ~confirm_interactions:(Engine.Runner.default_confirm ~n)
      (Engine.Exec.of_sim sim)
  in
  (o, sim)

let test_silent_converges_all_scenarios () =
  let n = 12 in
  let protocol = Core.Silent_n_state.protocol ~n in
  List.iter
    (fun (scenario, gen) ->
      let rng = Prng.create ~seed:55 in
      let o, sim =
        converge ~protocol ~init:(gen rng) ~seed:56 ~expected_time:(float_of_int (n * n)) ()
      in
      check_bool (scenario ^ " converges") true o.Engine.Runner.converged;
      check_bool (scenario ^ " silent at end") true
        (Engine.Silence.configuration_is_silent protocol (Engine.Sim.snapshot sim)))
    (Core.Scenarios.silent_catalogue ~n)

let test_silent_state_of_rank0_bounds () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Silent_n_state.state_of_rank0: rank out of range") (fun () ->
      ignore (Core.Silent_n_state.state_of_rank0 ~n:4 4))

(* ------------------------------------------------------------------ *)
(* Reset (Propagate-Reset)                                             *)

(* Payload counts the ticks it received, so each hook is observable. *)
type probe = { propagating_ticks : int; dormant_ticks : int }

let probe_spec ~r_max ~d_max : (string, probe) Core.Reset.spec =
  {
    Core.Reset.r_max;
    d_max;
    recruit_payload = (fun _ -> { propagating_ticks = 0; dormant_ticks = 0 });
    propagating_tick = (fun _ p -> { p with propagating_ticks = p.propagating_ticks + 1 });
    dormant_tick = (fun _ p -> { p with dormant_ticks = p.dormant_ticks + 1 });
    resetting_pair = (fun _ x y -> (x, y));
    awaken = (fun _ p -> Printf.sprintf "awake(%d,%d)" p.propagating_ticks p.dormant_ticks);
  }

let fresh_probe = { propagating_ticks = 0; dormant_ticks = 0 }

let test_reset_trigger () =
  let spec = probe_spec ~r_max:5 ~d_max:7 in
  match Core.Reset.trigger ~spec fresh_probe with
  | Core.Reset.Resetting r ->
      check_int "resetcount R_max" 5 r.Core.Reset.resetcount;
      check_int "delaytimer D_max" 7 r.Core.Reset.delaytimer
  | Core.Reset.Computing _ -> Alcotest.fail "trigger must reset"

let test_reset_recruits_computing () =
  let spec = probe_spec ~r_max:5 ~d_max:7 in
  let rng = Prng.create ~seed:1 in
  let propagating =
    Core.Reset.Resetting { Core.Reset.resetcount = 3; delaytimer = 7; payload = fresh_probe }
  in
  let a, b = Core.Reset.step ~spec rng propagating (Core.Reset.Computing "busy") in
  (match b with
  | Core.Reset.Resetting r -> check_int "recruit takes count-1" 2 r.Core.Reset.resetcount
  | Core.Reset.Computing _ -> Alcotest.fail "computing agent must be recruited");
  match a with
  | Core.Reset.Resetting r -> check_int "recruiter decrements" 2 r.Core.Reset.resetcount
  | Core.Reset.Computing _ -> Alcotest.fail "recruiter must stay resetting"

let test_reset_joint_max_rule () =
  let spec = probe_spec ~r_max:9 ~d_max:7 in
  let rng = Prng.create ~seed:1 in
  let mk c = Core.Reset.Resetting { Core.Reset.resetcount = c; delaytimer = 7; payload = fresh_probe } in
  match Core.Reset.step ~spec rng (mk 9) (mk 4) with
  | Core.Reset.Resetting x, Core.Reset.Resetting y ->
      check_int "both take max-1" 8 x.Core.Reset.resetcount;
      check_int "both take max-1 (responder)" 8 y.Core.Reset.resetcount
  | _ -> Alcotest.fail "both must remain resetting"

let test_reset_dormant_wakes_on_computing () =
  let spec = probe_spec ~r_max:5 ~d_max:7 in
  let rng = Prng.create ~seed:1 in
  let dormant =
    Core.Reset.Resetting { Core.Reset.resetcount = 0; delaytimer = 5; payload = fresh_probe }
  in
  match Core.Reset.step ~spec rng dormant (Core.Reset.Computing "alive") with
  | Core.Reset.Computing s, Core.Reset.Computing s' ->
      check_bool "woke via epidemic" true (String.length s > 0);
      Alcotest.(check string) "partner untouched" "alive" s'
  | _ -> Alcotest.fail "dormant agent must awaken next to a computing one"

let test_reset_dormant_timer_countdown () =
  let spec = probe_spec ~r_max:5 ~d_max:7 in
  let rng = Prng.create ~seed:1 in
  let mk d = Core.Reset.Resetting { Core.Reset.resetcount = 0; delaytimer = d; payload = fresh_probe } in
  (match Core.Reset.step ~spec rng (mk 5) (mk 5) with
  | Core.Reset.Resetting x, Core.Reset.Resetting y ->
      check_int "timer decrements" 4 x.Core.Reset.delaytimer;
      check_int "timer decrements (responder)" 4 y.Core.Reset.delaytimer;
      check_int "dormant tick ran" 1 x.Core.Reset.payload.dormant_ticks
  | _ -> Alcotest.fail "both should stay dormant");
  (* timer hitting zero awakens *)
  match Core.Reset.step ~spec rng (mk 1) (mk 5) with
  | Core.Reset.Computing _, Core.Reset.Resetting _ -> ()
  | _ -> Alcotest.fail "expired timer must awaken"

let test_reset_just_became_dormant_gets_full_delay () =
  let spec = probe_spec ~r_max:5 ~d_max:7 in
  let rng = Prng.create ~seed:1 in
  let about_to_sleep =
    Core.Reset.Resetting { Core.Reset.resetcount = 1; delaytimer = 2; payload = fresh_probe }
  in
  let dormant =
    Core.Reset.Resetting { Core.Reset.resetcount = 0; delaytimer = 6; payload = fresh_probe }
  in
  match Core.Reset.step ~spec rng about_to_sleep dormant with
  | Core.Reset.Resetting x, Core.Reset.Resetting y ->
      check_int "count fell to 0" 0 x.Core.Reset.resetcount;
      check_int "fresh delaytimer" 7 x.Core.Reset.delaytimer;
      check_int "already-dormant partner keeps counting" 5 y.Core.Reset.delaytimer
  | _ -> Alcotest.fail "both should be resetting"

let test_reset_dormant_pulled_back_by_propagating () =
  let spec = probe_spec ~r_max:9 ~d_max:7 in
  let rng = Prng.create ~seed:1 in
  let dormant =
    Core.Reset.Resetting { Core.Reset.resetcount = 0; delaytimer = 3; payload = fresh_probe }
  in
  let propagating =
    Core.Reset.Resetting { Core.Reset.resetcount = 5; delaytimer = 7; payload = fresh_probe }
  in
  match Core.Reset.step ~spec rng dormant propagating with
  | Core.Reset.Resetting x, Core.Reset.Resetting y ->
      check_int "dormant pulled back to propagating" 4 x.Core.Reset.resetcount;
      check_int "propagating tick ran" 1 x.Core.Reset.payload.propagating_ticks;
      check_int "partner too" 4 y.Core.Reset.resetcount
  | _ -> Alcotest.fail "both should be resetting"

let test_reset_computing_pair_unchanged () =
  let spec = probe_spec ~r_max:5 ~d_max:7 in
  let rng = Prng.create ~seed:1 in
  match Core.Reset.step ~spec rng (Core.Reset.Computing "x") (Core.Reset.Computing "y") with
  | Core.Reset.Computing x, Core.Reset.Computing y ->
      Alcotest.(check string) "x" "x" x;
      Alcotest.(check string) "y" "y" y
  | _ -> Alcotest.fail "computing pair must be untouched"

let test_reset_full_wave () =
  (* One triggered agent among computing ones: everyone must reset exactly
     once, and the population must return to computing. *)
  let n = 64 in
  let r_max = 16 and d_max = 24 in
  let awakenings = ref 0 in
  let spec =
    {
      Core.Reset.r_max;
      d_max;
      recruit_payload = (fun _ -> fresh_probe);
      propagating_tick = (fun _ p -> p);
      dormant_tick = (fun _ p -> p);
      resetting_pair = (fun _ x y -> (x, y));
      awaken =
        (fun _ _ ->
          incr awakenings;
          "done");
    }
  in
  let protocol : (string, probe) Core.Reset.role Engine.Protocol.t =
    {
      Engine.Protocol.name = "reset-wave";
      n;
      transition =
        (fun rng a b ->
          match (a, b) with
          | Core.Reset.Computing _, Core.Reset.Computing _ -> (a, b)
          | _ -> Core.Reset.step ~spec rng a b);
      deterministic = true;
      equal = ( = );
      pp = (fun fmt _ -> Format.pp_print_string fmt "_");
      rank = (fun _ -> None);
      is_leader = (fun _ -> false);
    }
  in
  let init =
    Array.init n (fun i ->
        if i = 0 then Core.Reset.trigger ~spec fresh_probe else Core.Reset.Computing "old")
  in
  let sim = Engine.Sim.make ~protocol ~init ~rng:(Prng.create ~seed:21) in
  let all_computing () =
    Engine.Sim.fold_states sim ~init:true ~f:(fun acc s ->
        acc && match s with Core.Reset.Computing _ -> true | Core.Reset.Resetting _ -> false)
  in
  let budget = 500 * n in
  while (not (all_computing ())) && Engine.Sim.interactions sim < budget do
    Engine.Sim.step sim
  done;
  check_bool "wave completes" true (all_computing ());
  check_int "everyone reset exactly once" n !awakenings

(* ------------------------------------------------------------------ *)
(* Optimal-Silent-SSR                                                  *)

let optimal_ctx n =
  let params = Core.Params.optimal_silent n in
  (params, Core.Optimal_silent.protocol ~params ~n ())

let test_optimal_recruitment () =
  let n = 12 in
  let _, p = optimal_ctx n in
  let rng = Prng.create ~seed:1 in
  let settled = Core.Optimal_silent.settled ~rank:3 ~children:0 in
  let unsettled = Core.Optimal_silent.unsettled ~errorcount:100 in
  match p.Engine.Protocol.transition rng settled unsettled with
  | a, b ->
      Alcotest.(check (option int)) "recruiter keeps rank" (Some 3) (p.Engine.Protocol.rank a);
      Alcotest.(check (option int)) "child gets 2r" (Some 6) (p.Engine.Protocol.rank b);
      (* second child gets 2r+1 *)
      let unsettled2 = Core.Optimal_silent.unsettled ~errorcount:100 in
      let _, c = p.Engine.Protocol.transition rng a unsettled2 in
      Alcotest.(check (option int)) "second child gets 2r+1" (Some 7) (p.Engine.Protocol.rank c)

let test_optimal_recruitment_boundary () =
  let n = 12 in
  let _, p = optimal_ctx n in
  let rng = Prng.create ~seed:1 in
  (* rank 6: child 12 <= 12 allowed, child 13 > 12 forbidden *)
  let s6 = Core.Optimal_silent.settled ~rank:6 ~children:0 in
  let u () = Core.Optimal_silent.unsettled ~errorcount:100 in
  let s6', first = p.Engine.Protocol.transition rng s6 (u ()) in
  Alcotest.(check (option int)) "child 12 assigned" (Some 12) (p.Engine.Protocol.rank first);
  let _, second = p.Engine.Protocol.transition rng s6' (u ()) in
  Alcotest.(check (option int)) "child 13 never assigned" None (p.Engine.Protocol.rank second);
  (* leaf rank 7: 14 > 12, recruits nothing *)
  let s7 = Core.Optimal_silent.settled ~rank:7 ~children:0 in
  let _, still_unsettled = p.Engine.Protocol.transition rng s7 (u ()) in
  Alcotest.(check (option int)) "leaf recruits nothing" None
    (p.Engine.Protocol.rank still_unsettled)

let test_optimal_collision_triggers_reset () =
  let n = 8 in
  let _, p = optimal_ctx n in
  let rng = Prng.create ~seed:1 in
  let s = Core.Optimal_silent.settled ~rank:5 ~children:1 in
  match p.Engine.Protocol.transition rng s s with
  | Core.Reset.Resetting a, Core.Reset.Resetting b ->
      check_bool "both leaders" true (a.Core.Reset.payload && b.Core.Reset.payload);
      check_bool "full resetcount" true (a.Core.Reset.resetcount > 0)
  | _ -> Alcotest.fail "rank collision must trigger a reset"

let test_optimal_starvation_triggers_reset () =
  let n = 8 in
  let _, p = optimal_ctx n in
  let rng = Prng.create ~seed:1 in
  let hungry = Core.Optimal_silent.unsettled ~errorcount:1 in
  let bystander = Core.Optimal_silent.settled ~rank:7 ~children:2 in
  match p.Engine.Protocol.transition rng bystander hungry with
  | Core.Reset.Resetting _, Core.Reset.Resetting _ -> ()
  | _ -> Alcotest.fail "starved unsettled agent must trigger a reset"

let test_optimal_countdown_decrements () =
  let n = 8 in
  let _, p = optimal_ctx n in
  let rng = Prng.create ~seed:1 in
  (* two unsettled agents with big errorcounts: both decrement, no trigger
     (recruitment impossible between two unsettled) *)
  let u = Core.Optimal_silent.unsettled ~errorcount:50 in
  match p.Engine.Protocol.transition rng u u with
  | Core.Reset.Computing (Core.Optimal_silent.Unsettled a), Core.Reset.Computing (Core.Optimal_silent.Unsettled b) ->
      check_int "a decremented" 49 a.errorcount;
      check_int "b decremented" 49 b.errorcount
  | _ -> Alcotest.fail "both should stay unsettled"

let test_optimal_slow_le_in_reset () =
  let n = 8 in
  let params, p = optimal_ctx n in
  let rng = Prng.create ~seed:1 in
  let dormant leader =
    Core.Optimal_silent.resetting ~leader ~resetcount:0 ~delaytimer:params.Core.Params.d_max
  in
  match p.Engine.Protocol.transition rng (dormant true) (dormant true) with
  | Core.Reset.Resetting a, Core.Reset.Resetting b ->
      check_bool "L,L -> L,F" true (a.Core.Reset.payload && not b.Core.Reset.payload)
  | _ -> Alcotest.fail "dormant pair should stay resetting"

let test_optimal_stable_config_silent () =
  let n = 16 in
  let _, p = optimal_ctx n in
  check_bool "correct config is silent" true
    (Engine.Silence.configuration_is_silent p (Core.Scenarios.optimal_correct ~n))

let test_optimal_converges_all_scenarios () =
  let n = 16 in
  let params, protocol = optimal_ctx n in
  List.iter
    (fun (scenario, gen) ->
      let rng = Prng.create ~seed:91 in
      let o, sim =
        converge ~protocol ~init:(gen rng) ~seed:92 ~expected_time:(float_of_int (30 * n)) ()
      in
      check_bool (scenario ^ " converges") true o.Engine.Runner.converged;
      check_bool (scenario ^ " ranking correct") true (Engine.Sim.ranking_correct sim);
      check_bool (scenario ^ " unique leader") true (Engine.Sim.leader_correct sim);
      check_bool (scenario ^ " silent") true
        (Engine.Silence.configuration_is_silent protocol (Engine.Sim.snapshot sim)))
    (Core.Scenarios.optimal_catalogue ~params ~n)

let test_optimal_states_linear () =
  let states n = Core.Optimal_silent.states ~params:(Core.Params.optimal_silent n) ~n in
  check_bool "positive" true (states 16 > 0);
  check_bool "O(n): doubling n at most ~doubles states" true
    (states 256 < 3 * states 128)

(* ------------------------------------------------------------------ *)
(* Sublinear-Time-SSR                                                  *)

let sublinear_ctx ~h n =
  let params = Core.Params.sublinear ~h n in
  (params, Core.Sublinear.protocol ~params ~n ~h ())

let test_sublinear_fresh_shape () =
  let params, _ = sublinear_ctx ~h:2 8 in
  let rng = Prng.create ~seed:5 in
  match Core.Sublinear.fresh rng ~params with
  | Core.Reset.Computing c ->
      check_bool "complete name" true
        (Core.Name.is_complete ~width:params.Core.Params.name_bits c.Core.Sublinear.name);
      check_int "singleton roster" 1 (Core.Roster.cardinal c.Core.Sublinear.roster);
      check_bool "own name in roster" true
        (Core.Roster.mem c.Core.Sublinear.name c.Core.Sublinear.roster);
      check_int "empty tree" 0 (Core.History_tree.node_count c.Core.Sublinear.tree)
  | Core.Reset.Resetting _ -> Alcotest.fail "fresh agents compute"

let test_sublinear_direct_collision () =
  let params, _ = sublinear_ctx ~h:2 8 in
  let name = Core.Name.of_int ~bits:5 ~len:params.Core.Params.name_bits in
  let mk name =
    {
      Core.Sublinear.name;
      rank = 1;
      roster = Core.Roster.singleton name;
      tree = Core.History_tree.empty;
    }
  in
  check_bool "equal names collide" true (Core.Sublinear.detect_name_collision ~params (mk name) (mk name));
  let other = Core.Name.of_int ~bits:6 ~len:params.Core.Params.name_bits in
  check_bool "distinct names with empty trees do not" false
    (Core.Sublinear.detect_name_collision ~params (mk name) (mk other))

let test_sublinear_ghost_triggers_reset () =
  let n = 4 in
  let params, p = sublinear_ctx ~h:1 n in
  let rng = Prng.create ~seed:6 in
  let width = params.Core.Params.name_bits in
  let name i = Core.Name.of_int ~bits:i ~len:width in
  (* two agents whose rosters together hold n+1 names: ghost must fire *)
  let mk own roster = Core.Sublinear.collecting
      { Core.Sublinear.name = own; rank = 1; roster = Core.Roster.of_list roster;
        tree = Core.History_tree.empty }
  in
  let a = mk (name 0) [ name 0; name 1; name 2 ] in
  let b = mk (name 3) [ name 3; name 4 ] in
  match p.Engine.Protocol.transition rng a b with
  | Core.Reset.Resetting _, Core.Reset.Resetting _ -> ()
  | _ -> Alcotest.fail "ghost overflow must trigger a reset"

let test_sublinear_rank_assignment () =
  let n = 3 in
  let params, p = sublinear_ctx ~h:1 n in
  let rng = Prng.create ~seed:7 in
  let width = params.Core.Params.name_bits in
  let name i = Core.Name.of_int ~bits:i ~len:width in
  let mk own roster = Core.Sublinear.collecting
      { Core.Sublinear.name = own; rank = 1; roster = Core.Roster.of_list roster;
        tree = Core.History_tree.empty }
  in
  (* union of rosters = {0,1,2} = all three names: ranks assigned by order *)
  let a = mk (name 2) [ name 2; name 0 ] in
  let b = mk (name 1) [ name 1 ] in
  match p.Engine.Protocol.transition rng a b with
  | sa, sb ->
      Alcotest.(check (option int)) "name 2 gets rank 3" (Some 3) (p.Engine.Protocol.rank sa);
      Alcotest.(check (option int)) "name 1 gets rank 2" (Some 2) (p.Engine.Protocol.rank sb)

let test_sublinear_converges_all_scenarios () =
  List.iter
    (fun h ->
      let n = 8 in
      let params, protocol = sublinear_ctx ~h n in
      List.iter
        (fun (scenario, gen) ->
          let rng = Prng.create ~seed:(100 + h) in
          let o, sim =
            converge ~protocol ~init:(gen rng) ~seed:(200 + h)
              ~expected_time:(float_of_int (params.Core.Params.d_max + (8 * params.Core.Params.t_h) + (4 * n)))
              ()
          in
          let label = Printf.sprintf "h=%d %s" h scenario in
          check_bool (label ^ " converges") true o.Engine.Runner.converged;
          check_bool (label ^ " unique leader") true (Engine.Sim.leader_correct sim))
        (Core.Scenarios.sublinear_catalogue ~params ~n))
    [ 0; 1; 2 ]

let test_sublinear_steady_state_safety () =
  (* The paper's safety condition: from a unique-name configuration the
     protocol must never believe there is a collision. 20k interactions
     with the ranking held correct throughout. *)
  List.iter
    (fun (n, h) ->
      let params, protocol = sublinear_ctx ~h n in
      let rng = Prng.create ~seed:321 in
      let init = Core.Scenarios.sublinear_correct rng ~params ~n in
      let sim = Engine.Sim.make ~protocol ~init ~rng in
      let broken = ref 0 in
      for _ = 1 to 20_000 do
        Engine.Sim.step sim;
        if not (Engine.Sim.ranking_correct sim) then incr broken
      done;
      check_int (Printf.sprintf "n=%d h=%d no false alarms" n h) 0 !broken)
    [ (8, 1); (8, 2); (6, 3) ]

let test_sublinear_tree_invariants_during_run () =
  let n = 8 and h = 2 in
  let params, protocol = sublinear_ctx ~h n in
  let rng = Prng.create ~seed:77 in
  let init = Core.Scenarios.sublinear_fresh rng ~params ~n in
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  for _ = 1 to 50 do
    Engine.Sim.run sim 100;
    for i = 0 to n - 1 do
      match Engine.Sim.state sim i with
      | Core.Reset.Computing c ->
          check_bool "simply labelled" true
            (Core.History_tree.simply_labelled ~own:c.Core.Sublinear.name c.Core.Sublinear.tree);
          check_bool "depth bound" true (Core.History_tree.depth c.Core.Sublinear.tree <= h);
          check_bool "roster bound" true (Core.Roster.cardinal c.Core.Sublinear.roster <= n)
      | Core.Reset.Resetting r ->
          check_bool "partial name bounded" true
            (Core.Name.length r.Core.Reset.payload <= params.Core.Params.name_bits)
    done
  done

let test_sublinear_log2_states_monotone () =
  let v ~h n = Core.Sublinear.log2_states ~params:(Core.Params.sublinear ~h n) ~n in
  check_bool "grows with h" true (v ~h:2 16 > v ~h:1 16);
  check_bool "grows with n" true (v ~h:1 32 > v ~h:1 16);
  check_bool "huge for log regime" true (v ~h:4 16 > 1000.0)

let test_sublinear_h_mismatch () =
  let params = Core.Params.sublinear ~h:2 8 in
  Alcotest.check_raises "h mismatch" (Invalid_argument "Sublinear.protocol: params.h differs from h")
    (fun () -> ignore (Core.Sublinear.protocol ~params ~n:8 ~h:3 ()))

(* ------------------------------------------------------------------ *)
(* Leader election wrapper                                             *)

let test_immobilize () =
  (* A protocol whose transition hands the leader bit to the partner:
     state true = leader. Immobilized, the bit must stay put. *)
  let swapping : bool Engine.Protocol.t =
    {
      Engine.Protocol.name = "swap";
      n = 2;
      transition = (fun _ a b -> (b, a));
      deterministic = true;
      equal = Bool.equal;
      pp = Format.pp_print_bool;
      rank = (fun s -> if s then Some 1 else None);
      is_leader = Fun.id;
    }
  in
  let fixed = Core.Leader_election.immobilize swapping in
  let rng = Prng.create ~seed:1 in
  let a, b = fixed.Engine.Protocol.transition rng true false in
  check_bool "leader stays with initiator" true a;
  check_bool "follower stays follower" false b;
  let a, b = fixed.Engine.Protocol.transition rng false true in
  check_bool "follower stays follower (responder leader)" false a;
  check_bool "leader stays with responder" true b

let test_leader_indices () =
  let n = 4 in
  let p = Core.Baseline.protocol ~n in
  let config = [| Core.Baseline.Follower; Core.Baseline.Leader; Core.Baseline.Follower; Core.Baseline.Leader |] in
  Alcotest.(check (list int)) "indices" [ 1; 3 ] (Core.Leader_election.leader_indices p config)

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)

let test_baseline_transition () =
  let p = Core.Baseline.protocol ~n:4 in
  let rng = Prng.create ~seed:1 in
  let l = Core.Baseline.Leader and f = Core.Baseline.Follower in
  Alcotest.(check bool) "LL kills one" true (p.Engine.Protocol.transition rng l l = (l, f));
  Alcotest.(check bool) "LF null" true (p.Engine.Protocol.transition rng l f = (l, f));
  Alcotest.(check bool) "FF null" true (p.Engine.Protocol.transition rng f f = (f, f))

let test_baseline_converges_from_all_leaders () =
  let n = 32 in
  let protocol = Core.Baseline.protocol ~n in
  let o, sim =
    converge ~task:Engine.Runner.Leader ~protocol ~init:(Core.Baseline.all_leaders ~n) ~seed:31
      ~expected_time:(float_of_int n) ()
  in
  check_bool "converges" true o.Engine.Runner.converged;
  check_int "one leader" 1 (Engine.Sim.leader_count sim)

let test_baseline_stuck_from_all_followers () =
  let n = 8 in
  let protocol = Core.Baseline.protocol ~n in
  let sim =
    Engine.Sim.make ~protocol ~init:(Core.Baseline.all_followers ~n) ~rng:(Prng.create ~seed:3)
  in
  Engine.Sim.run sim 10_000;
  check_int "never creates a leader" 0 (Engine.Sim.leader_count sim)

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)

let test_scenarios_sizes () =
  let n = 10 in
  let rng = Prng.create ~seed:41 in
  List.iter
    (fun (name, gen) -> check_int (name ^ " size") n (Array.length (gen rng)))
    (Core.Scenarios.silent_catalogue ~n);
  let params = Core.Params.optimal_silent n in
  List.iter
    (fun (name, gen) -> check_int (name ^ " size") n (Array.length (gen rng)))
    (Core.Scenarios.optimal_catalogue ~params ~n);
  let params = Core.Params.sublinear ~h:1 n in
  List.iter
    (fun (name, gen) -> check_int (name ^ " size") n (Array.length (gen rng)))
    (Core.Scenarios.sublinear_catalogue ~params ~n)

let test_scenario_worst_case_shape () =
  let n = 8 in
  let config = Core.Scenarios.silent_worst_case ~n in
  let counts = Array.make n 0 in
  Array.iter (fun s -> counts.((s : Core.Silent_n_state.state :> int)) <- counts.((s :> int)) + 1) config;
  check_int "two at rank 0" 2 counts.(0);
  check_int "none at top rank" 0 counts.(n - 1);
  for r = 1 to n - 2 do
    check_int (Printf.sprintf "one at rank %d" r) 1 counts.(r)
  done

let test_scenario_optimal_correct_is_correct () =
  let n = 12 in
  let p = Core.Optimal_silent.protocol ~n () in
  let m = Engine.Monitor.create p (Core.Scenarios.optimal_correct ~n) in
  check_bool "monitor approves" true (Engine.Monitor.ranking_correct m)

let test_scenario_name_collision_shape () =
  let n = 8 in
  let params = Core.Params.sublinear ~h:1 n in
  let rng = Prng.create ~seed:17 in
  let config = Core.Scenarios.sublinear_name_collision rng ~params ~n in
  let names =
    Array.to_list config
    |> List.filter_map (function
         | Core.Reset.Computing c -> Some c.Core.Sublinear.name
         | Core.Reset.Resetting _ -> None)
  in
  check_int "all collecting" n (List.length names);
  let distinct = List.sort_uniq Core.Name.compare names in
  check_int "exactly one duplicate" (n - 1) (List.length distinct)

let test_scenario_ghost_shape () =
  let n = 6 in
  let params = Core.Params.sublinear ~h:1 n in
  let rng = Prng.create ~seed:18 in
  let config = Core.Scenarios.sublinear_ghost rng ~params ~n in
  (* every roster holds the same ghost that is nobody's name *)
  let names =
    Array.to_list config
    |> List.filter_map (function
         | Core.Reset.Computing c -> Some c.Core.Sublinear.name
         | Core.Reset.Resetting _ -> None)
  in
  let rosters =
    Array.to_list config
    |> List.filter_map (function
         | Core.Reset.Computing c -> Some c.Core.Sublinear.roster
         | Core.Reset.Resetting _ -> None)
  in
  let ghost_candidates =
    List.filter
      (fun g -> not (List.exists (Core.Name.equal g) names))
      (Core.Roster.elements (List.fold_left Core.Roster.union Core.Roster.empty rosters))
  in
  check_int "one ghost" 1 (List.length ghost_candidates)

(* ------------------------------------------------------------------ *)
(* Printers and equality helpers                                       *)

let to_string pp v = Format.asprintf "%a" pp v

let test_printers () =
  check_bool "name eps" true (String.length (Core.Name.to_string Core.Name.empty) > 0);
  let n = 8 in
  let settled = Core.Optimal_silent.settled ~rank:3 ~children:1 in
  check_bool "optimal pp mentions rank" true
    (String.length (to_string Core.Optimal_silent.pp settled) > 0);
  let resetting = Core.Optimal_silent.resetting ~leader:true ~resetcount:2 ~delaytimer:5 in
  let s = to_string Core.Optimal_silent.pp resetting in
  check_bool "resetting pp mentions count" true (String.length s > 0);
  let params = Core.Params.sublinear ~h:1 n in
  let rng = Prng.create ~seed:3 in
  let fresh = Core.Sublinear.fresh rng ~params in
  check_bool "sublinear pp" true (String.length (to_string Core.Sublinear.pp fresh) > 0);
  let roster = Core.Roster.of_list [ nm 1 3; nm 2 3 ] in
  check_bool "roster pp" true (String.length (to_string Core.Roster.pp roster) > 0);
  let tree = [ t_node (nm 1 3) 4 2 [] ] in
  check_bool "tree pp" true (String.length (to_string Core.History_tree.pp tree) > 0);
  check_bool "empty tree pp" true (String.length (to_string Core.History_tree.pp []) > 0)

let test_equalities () =
  let s1 = Core.Optimal_silent.settled ~rank:1 ~children:0 in
  let s2 = Core.Optimal_silent.settled ~rank:1 ~children:1 in
  check_bool "children distinguish" false (Core.Optimal_silent.equal s1 s2);
  let u = Core.Optimal_silent.unsettled ~errorcount:5 in
  check_bool "roles distinguish" false (Core.Optimal_silent.equal s1 u);
  let r1 = Core.Optimal_silent.resetting ~leader:true ~resetcount:2 ~delaytimer:5 in
  let r2 = Core.Optimal_silent.resetting ~leader:false ~resetcount:2 ~delaytimer:5 in
  check_bool "payload distinguishes" false (Core.Optimal_silent.equal r1 r2);
  check_bool "reflexive" true (Core.Optimal_silent.equal r1 r1);
  let params = Core.Params.sublinear ~h:1 8 in
  let rng = Prng.create ~seed:4 in
  let a = Core.Sublinear.fresh rng ~params in
  let b = Core.Sublinear.fresh rng ~params in
  check_bool "sublinear reflexive" true (Core.Sublinear.equal a a);
  check_bool "different names differ" false (Core.Sublinear.equal a b)

(* ------------------------------------------------------------------ *)
(* State space                                                         *)

let test_state_space_rows () =
  let rows = Core.State_space.table1_rows ~n:64 in
  check_int "four rows" 4 (List.length rows);
  List.iter
    (fun r -> check_bool (r.Core.State_space.protocol ^ " log2 positive") true (r.Core.State_space.log2 > 0.0))
    rows

let test_state_space_silent_exact () =
  let r = Core.State_space.silent_n_state ~n:128 in
  Alcotest.(check (option int)) "exact count" (Some 128) r.Core.State_space.exact

let test_count_distinct_visited () =
  let snapshots = [ [| 1; 2; 2 |]; [| 2; 3; 1 |] ] in
  check_int "distinct" 3 (Core.State_space.count_distinct_visited ~equal:Int.equal ~snapshots)

let suite =
  [
    Alcotest.test_case "params optimal" `Quick test_params_optimal;
    Alcotest.test_case "params sublinear" `Quick test_params_sublinear;
    Alcotest.test_case "params t_h decreasing" `Quick test_params_t_h_decreasing;
    Alcotest.test_case "params helpers" `Quick test_params_helpers;
    Alcotest.test_case "params errors" `Quick test_params_errors;
    Alcotest.test_case "name build" `Quick test_name_build;
    Alcotest.test_case "name roundtrip" `Quick test_name_roundtrip;
    Alcotest.test_case "name lexicographic" `Quick test_name_compare_lexicographic;
    Alcotest.test_case "name equal" `Quick test_name_equal;
    Alcotest.test_case "name random" `Quick test_name_random;
    Alcotest.test_case "name errors" `Quick test_name_errors;
    QCheck_alcotest.to_alcotest qcheck_name_order_total;
    Alcotest.test_case "roster basics" `Quick test_roster_basics;
    Alcotest.test_case "roster union" `Quick test_roster_union;
    Alcotest.test_case "roster rank_of" `Quick test_roster_rank_of;
    Alcotest.test_case "roster sorted" `Quick test_roster_elements_sorted;
    QCheck_alcotest.to_alcotest qcheck_roster_rank_is_sorted_position;
    Alcotest.test_case "tree merge basic" `Quick test_tree_merge_basic;
    Alcotest.test_case "tree merge replaces" `Quick test_tree_merge_replaces_existing;
    Alcotest.test_case "tree merge truncates" `Quick test_tree_merge_truncates;
    Alcotest.test_case "tree merge removes own" `Quick test_tree_merge_removes_own;
    Alcotest.test_case "tree merge h0" `Quick test_tree_merge_h0;
    Alcotest.test_case "tree decrement" `Quick test_tree_decrement;
    Alcotest.test_case "tree remove named deep" `Quick test_tree_remove_named_deep;
    Alcotest.test_case "tree paths filter stale" `Quick test_tree_paths_filter_stale;
    Alcotest.test_case "tree paths multiple" `Quick test_tree_paths_multiple;
    Alcotest.test_case "figure 2 left" `Quick test_figure2_left;
    Alcotest.test_case "figure 2 right" `Quick test_figure2_right;
    Alcotest.test_case "figure 2 impostor" `Quick test_figure2_impostor;
    Alcotest.test_case "consistent empty path" `Quick test_consistent_empty_path;
    Alcotest.test_case "tree invariant checkers" `Quick test_tree_invariant_checkers;
    QCheck_alcotest.to_alcotest qcheck_tree_invariants_under_merges;
    Alcotest.test_case "silent transition rule" `Quick test_silent_transition_rule;
    Alcotest.test_case "silent observation" `Quick test_silent_observation;
    Alcotest.test_case "silent metadata" `Quick test_silent_metadata;
    Alcotest.test_case "silent converges (all scenarios)" `Slow test_silent_converges_all_scenarios;
    Alcotest.test_case "silent state bounds" `Quick test_silent_state_of_rank0_bounds;
    Alcotest.test_case "reset trigger" `Quick test_reset_trigger;
    Alcotest.test_case "reset recruits" `Quick test_reset_recruits_computing;
    Alcotest.test_case "reset joint max rule" `Quick test_reset_joint_max_rule;
    Alcotest.test_case "reset dormant wakes on computing" `Quick test_reset_dormant_wakes_on_computing;
    Alcotest.test_case "reset dormant countdown" `Quick test_reset_dormant_timer_countdown;
    Alcotest.test_case "reset fresh delay on dormancy" `Quick test_reset_just_became_dormant_gets_full_delay;
    Alcotest.test_case "reset dormant pulled back" `Quick test_reset_dormant_pulled_back_by_propagating;
    Alcotest.test_case "reset computing pair" `Quick test_reset_computing_pair_unchanged;
    Alcotest.test_case "reset full wave" `Slow test_reset_full_wave;
    Alcotest.test_case "optimal recruitment" `Quick test_optimal_recruitment;
    Alcotest.test_case "optimal recruitment boundary" `Quick test_optimal_recruitment_boundary;
    Alcotest.test_case "optimal collision reset" `Quick test_optimal_collision_triggers_reset;
    Alcotest.test_case "optimal starvation reset" `Quick test_optimal_starvation_triggers_reset;
    Alcotest.test_case "optimal countdown" `Quick test_optimal_countdown_decrements;
    Alcotest.test_case "optimal slow LE in reset" `Quick test_optimal_slow_le_in_reset;
    Alcotest.test_case "optimal stable config silent" `Quick test_optimal_stable_config_silent;
    Alcotest.test_case "optimal converges (all scenarios)" `Slow test_optimal_converges_all_scenarios;
    Alcotest.test_case "optimal states linear" `Quick test_optimal_states_linear;
    Alcotest.test_case "sublinear fresh shape" `Quick test_sublinear_fresh_shape;
    Alcotest.test_case "sublinear direct collision" `Quick test_sublinear_direct_collision;
    Alcotest.test_case "sublinear ghost reset" `Quick test_sublinear_ghost_triggers_reset;
    Alcotest.test_case "sublinear rank assignment" `Quick test_sublinear_rank_assignment;
    Alcotest.test_case "sublinear converges (all scenarios)" `Slow test_sublinear_converges_all_scenarios;
    Alcotest.test_case "sublinear steady-state safety" `Slow test_sublinear_steady_state_safety;
    Alcotest.test_case "sublinear tree invariants in run" `Slow test_sublinear_tree_invariants_during_run;
    Alcotest.test_case "sublinear log2 states monotone" `Quick test_sublinear_log2_states_monotone;
    Alcotest.test_case "sublinear h mismatch" `Quick test_sublinear_h_mismatch;
    Alcotest.test_case "immobilize" `Quick test_immobilize;
    Alcotest.test_case "leader indices" `Quick test_leader_indices;
    Alcotest.test_case "baseline transition" `Quick test_baseline_transition;
    Alcotest.test_case "baseline all leaders" `Quick test_baseline_converges_from_all_leaders;
    Alcotest.test_case "baseline all followers stuck" `Quick test_baseline_stuck_from_all_followers;
    Alcotest.test_case "scenario sizes" `Quick test_scenarios_sizes;
    Alcotest.test_case "scenario worst case shape" `Quick test_scenario_worst_case_shape;
    Alcotest.test_case "scenario optimal correct" `Quick test_scenario_optimal_correct_is_correct;
    Alcotest.test_case "scenario name collision shape" `Quick test_scenario_name_collision_shape;
    Alcotest.test_case "scenario ghost shape" `Quick test_scenario_ghost_shape;
    Alcotest.test_case "printers" `Quick test_printers;
    Alcotest.test_case "equalities" `Quick test_equalities;
    Alcotest.test_case "state space rows" `Quick test_state_space_rows;
    Alcotest.test_case "state space silent exact" `Quick test_state_space_silent_exact;
    Alcotest.test_case "count distinct visited" `Quick test_count_distinct_visited;
  ]
