(* Tests for the experiment harness. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_registry_names_unique () =
  let names = List.map (fun e -> e.Experiments.Report.name) Experiments.Report.all in
  check_int "no duplicates" (List.length names) (List.length (List.sort_uniq compare names))

let test_registry_find () =
  check_bool "table1 present" true (Experiments.Report.find "table1" <> None);
  check_bool "unknown absent" true (Experiments.Report.find "nope" = None)

let test_registry_covers_design () =
  (* every experiment id of DESIGN.md's index has a module *)
  List.iter
    (fun required ->
      check_bool (required ^ " registered") true (Experiments.Report.find required <> None))
    [
      "table1"; "tradeoff"; "figures"; "silent_lb"; "quadratic_lb"; "nonuniform"; "reset";
      "scale"; "exact"; "ablation"; "loose"; "topology"; "scenarios"; "epidemic";
    ]

let test_trials_of_mode () =
  check_int "full keeps base" 30 (Experiments.Exp_common.trials_of_mode Experiments.Exp_common.Full ~base:30);
  check_int "quick divides" 10 (Experiments.Exp_common.trials_of_mode Experiments.Exp_common.Quick ~base:30);
  check_int "quick floor" 5 (Experiments.Exp_common.trials_of_mode Experiments.Exp_common.Quick ~base:6)

let test_measure_accounting () =
  let n = 8 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let m =
    Experiments.Exp_common.measure ~label:"t" ~protocol
      ~init:(fun rng -> Core.Scenarios.silent_uniform rng ~n)
      ~task:Engine.Runner.Ranking ~expected_time:(float_of_int (n * n)) ~trials:6 ~seed:7 ()
  in
  check_int "converged + failed = trials" 6 (Array.length m.Experiments.Exp_common.times + m.Experiments.Exp_common.failures);
  check_int "silence checked on converged runs" (Array.length m.Experiments.Exp_common.times)
    m.Experiments.Exp_common.silent_checked;
  check_int "all final configs silent" m.Experiments.Exp_common.silent_checked
    m.Experiments.Exp_common.silent_ok

let test_measure_deterministic_in_seed () =
  let n = 8 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let run () =
    Experiments.Exp_common.measure ~label:"t" ~protocol
      ~init:(fun rng -> Core.Scenarios.silent_uniform rng ~n)
      ~task:Engine.Runner.Ranking ~expected_time:(float_of_int (n * n)) ~trials:4 ~seed:19 ()
  in
  Alcotest.(check (array (float 1e-12))) "same seed, same times"
    (run ()).Experiments.Exp_common.times (run ()).Experiments.Exp_common.times

let test_time_row_shape () =
  let n = 8 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let m =
    Experiments.Exp_common.measure ~label:"t" ~protocol
      ~init:(fun _ -> Core.Scenarios.silent_correct ~n)
      ~task:Engine.Runner.Ranking ~expected_time:1.0 ~trials:3 ~seed:3 ()
  in
  check_int "row matches header" (List.length Experiments.Exp_common.time_header)
    (List.length (Experiments.Exp_common.time_row m))

let test_scaling_fit () =
  let fake n mean =
    ( n,
      {
        Experiments.Exp_common.label = "x";
        n;
        times = [| mean; mean |];
        events = [| 0; 0 |];
        failures = 0;
        violations = 0;
        silent_checked = 0;
        silent_ok = 0;
      } )
  in
  let points = [ fake 8 64.0; fake 16 256.0; fake 32 1024.0 ] in
  let fit = Experiments.Exp_common.scaling_fit points in
  Alcotest.(check (float 1e-6)) "recovers quadratic exponent" 2.0 fit.Stats.Regression.slope

let test_figure1_tree_shape () =
  let s = Experiments.Exp_figures.figure1_tree ~n:12 ~settled:8 in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  check_int "12 rank lines" 12 (List.length lines);
  check_int "8 settled" 8
    (List.length (List.filter (fun l -> String.length l > 0 &&
       String.ends_with ~suffix:"[settled]" l) lines))

let test_figure2_script_matches_paper () =
  let s = Experiments.Exp_figures.figure2_script () in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
    scan 0
  in
  check_bool "left execution matches first edge" true (contains "True after checking edge 1");
  check_bool "right execution matches second edge" true (contains "True after checking edge 2");
  check_bool "no false collision in the figure" true (not (contains "collision!"))

let suite =
  [
    Alcotest.test_case "registry unique" `Quick test_registry_names_unique;
    Alcotest.test_case "registry find" `Quick test_registry_find;
    Alcotest.test_case "registry covers design" `Quick test_registry_covers_design;
    Alcotest.test_case "trials of mode" `Quick test_trials_of_mode;
    Alcotest.test_case "measure accounting" `Slow test_measure_accounting;
    Alcotest.test_case "measure deterministic" `Slow test_measure_deterministic_in_seed;
    Alcotest.test_case "time row shape" `Quick test_time_row_shape;
    Alcotest.test_case "scaling fit" `Quick test_scaling_fit;
    Alcotest.test_case "figure1 tree shape" `Quick test_figure1_tree_shape;
    Alcotest.test_case "figure2 script" `Quick test_figure2_script_matches_paper;
  ]
