(* Protocol IR + kernel compiler validation.

   The compiled kernel must be observationally indistinguishable from the
   interpreter. The contract has two strengths, decided per protocol by
   the memoize pass:

   - exact kernels (every static output is its own declared
     representative): trajectories are bit-identical under the same seed
     on both engines;
   - quotient kernels (outputs are normalized on encode): per-step
     observables (interactions, events, correctness monitors) are still
     identical on the agent engine — normalize is a bisimulation quotient
     — and snapshots agree modulo normalize; the count engine interns
     different representatives, so only exact kernels are compared there.

   Per-pass properties: pack/unpack round-trips over the whole declared
   space, dead-code elimination never removes a code any one-step
   reachable state needs, the memo table agrees pointwise with direct
   interpretation, and Ir.pp dumps match the golden files. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_entries () =
  List.map
    (fun (e : Analysis.Registry.entry) -> (e.Analysis.Registry.key, e.Analysis.Registry.build ~n:4))
    Analysis.Registry.entries

(* --- pack / unpack round-trips ------------------------------------- *)

let test_roundtrip_all_entries () =
  List.iter
    (fun (key, Analysis.Registry.Any e) ->
      let ir = Ir.Passes.pipeline e in
      let p = e.Engine.Enumerable.protocol in
      let m = Ir.size ir in
      check_int (key ^ ": live codes = declared states")
        (Analysis.Statespace.size ir.Ir.space) m;
      for c = 0 to m - 1 do
        let st = Ir.decode ir c in
        (match Ir.encode_opt ir st with
        | Some c' -> check_int (Printf.sprintf "%s: encode(decode %d)" key c) c c'
        | None -> Alcotest.failf "%s: decode %d escapes on re-encode" key c);
        check_bool
          (Printf.sprintf "%s: decode %d is a declared representative" key c)
          true
          (p.Engine.Protocol.equal st (e.Engine.Enumerable.normalize st))
      done;
      (* every declared state encodes, and encoding is injective *)
      let seen = Hashtbl.create (2 * m) in
      List.iter
        (fun st ->
          let c = Ir.encode ir st in
          check_bool (key ^ ": codes are unique per state") false (Hashtbl.mem seen c);
          Hashtbl.add seen c ())
        e.Engine.Enumerable.states)
    (all_entries ())

(* --- DSE never removes a reachable code ---------------------------- *)

(* One-step closure: every synthetic-coin outcome of every declared
   ordered pair must still have a live code after dead-code elimination.
   (Deeper reachability follows by induction; the closure analysis has
   already proven the declared space transition-closed.) *)
let test_dse_keeps_reachable () =
  List.iter
    (fun (key, Analysis.Registry.Any e) ->
      let ir = Ir.of_enumerable e |> Ir.Passes.pack |> Ir.Passes.eliminate_dead in
      let p = e.Engine.Enumerable.protocol in
      let states = Array.of_list e.Engine.Enumerable.states in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              List.iter
                (fun { Analysis.Coins.value = a', b'; _ } ->
                  List.iter
                    (fun out ->
                      match Ir.encode_opt ir (e.Engine.Enumerable.normalize out) with
                      | Some _ -> ()
                      | None ->
                          Alcotest.failf "%s: reachable state %s lost its code" key
                            (Format.asprintf "%a" p.Engine.Protocol.pp out))
                    [ a'; b' ])
                (Analysis.Coins.enumerate ~max_draws:e.Engine.Enumerable.max_draws (fun rng ->
                     p.Engine.Protocol.transition rng a b)))
            states)
        states)
    (all_entries ())

(* --- memo table agrees with direct interpretation ------------------ *)

let test_memo_matches_direct () =
  List.iter
    (fun (key, Analysis.Registry.Any e) ->
      let ir = Ir.Passes.pipeline e in
      match ir.Ir.table with
      | None -> () (* memoization skipped: nothing to compare *)
      | Some { Ir.out_i; out_j = _ } ->
          let plain =
            Ir.Kernel.of_ir (Ir.of_enumerable e |> Ir.Passes.pack |> Ir.Passes.eliminate_dead)
          in
          let memo = Ir.Kernel.of_ir ir in
          let m = Ir.size ir in
          for ci = 0 to m - 1 do
            for cj = 0 to m - 1 do
              if out_i.((ci * m) + cj) >= 0 then begin
                (* static pair: both kernels must agree, and neither may
                   consult the generator (scripted [] would record it) *)
                let rng = Prng.scripted [] in
                let di, dj = Ir.Kernel.step plain rng ci cj in
                let mi, mj = Ir.Kernel.step memo rng ci cj in
                check_int (Printf.sprintf "%s: table (%d,%d) initiator" key ci cj) di mi;
                check_int (Printf.sprintf "%s: table (%d,%d) responder" key ci cj) dj mj;
                check_int (key ^ ": static pair drew no randomness") 0
                  (List.length (Prng.script_trace rng))
              end
            done
          done;
          check_bool (key ^ ": plain kernel counted dynamic steps") true
            (!(plain.Ir.Kernel.dynamic_steps) > 0);
          check_bool (key ^ ": memo kernel counted hits") true
            (!(memo.Ir.Kernel.memo_hits) > 0 || ir.Ir.static_pairs = 0))
    (all_entries ())

(* --- differential: per-step observables on the agent engine -------- *)

let random_init ~rng (e : _ Engine.Enumerable.t) =
  let states = Array.of_list e.Engine.Enumerable.states in
  Array.init e.Engine.Enumerable.protocol.Engine.Protocol.n (fun _ ->
      states.(Prng.int rng (Array.length states)))

let observables exec =
  ( Engine.Exec.interactions exec,
    Engine.Exec.events exec,
    Engine.Exec.leader_count exec,
    Engine.Exec.ranked_agents exec,
    Engine.Exec.ranking_correct exec,
    Engine.Exec.leader_correct exec,
    Engine.Exec.silent exec )

let obs_t =
  Alcotest.(pair (pair (pair int int) (pair int int)) (pair (pair bool bool) (option bool)))

let flat (a, b, c, d, e, f, g) = (((a, b), (c, d)), ((e, f), g))

let compare_trajectories ~key ~kind ~seed ~steps (Analysis.Registry.Any e) =
  let p = e.Engine.Enumerable.protocol in
  let kernel = Ir.Kernel.compile e in
  let init = random_init ~rng:(Prng.create ~seed:(seed + 7)) e in
  let interp = Engine.Exec.make ~kind ~protocol:p ~init ~rng:(Prng.create ~seed) () in
  let compiled = Ir.Kernel.exec ~kind kernel ~init ~rng:(Prng.create ~seed) in
  let exact = Ir.Kernel.exact kernel in
  for i = 1 to steps do
    let ia = Engine.Exec.advance interp ~until:i in
    let ca = Engine.Exec.advance compiled ~until:i in
    check_bool (Printf.sprintf "%s@%d: advance agrees" key i) ia ca;
    Alcotest.check obs_t
      (Printf.sprintf "%s@%d: observables agree" key i)
      (flat (observables interp))
      (flat (observables compiled));
    let si = Engine.Exec.snapshot interp and sc = Engine.Exec.snapshot compiled in
    Array.iteri
      (fun a st ->
        check_bool
          (Printf.sprintf "%s@%d: agent %d state agrees (mod normalize)" key i a)
          true
          (p.Engine.Protocol.equal (e.Engine.Enumerable.normalize st) sc.(a));
        if exact then
          check_bool
            (Printf.sprintf "%s@%d: agent %d state bit-identical" key i a)
            true
            (p.Engine.Protocol.equal st sc.(a)))
      si
  done

let test_agent_trajectories () =
  List.iter
    (fun (key, any) -> compare_trajectories ~key ~kind:Engine.Exec.Agent ~seed:9100 ~steps:400 any)
    (all_entries ())

let test_count_trajectories () =
  List.iter
    (fun (key, (Analysis.Registry.Any e as any)) ->
      if e.Engine.Enumerable.protocol.Engine.Protocol.deterministic then begin
        let kernel = Ir.Kernel.compile e in
        (* quotient kernels intern different representatives than the raw
           interpreter, so the count engine's rng mapping diverges: the
           bitwise comparison is only sound for exact kernels *)
        if Ir.Kernel.exact kernel then
          compare_trajectories ~key ~kind:Engine.Exec.Count ~seed:9200 ~steps:400 any
      end)
    (all_entries ())

(* --- differential: whole Runner outcomes under QCheck seeds -------- *)

let runner_outcome ~exec ~n =
  let o =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
      ~max_interactions:(200 * n * n)
      ~confirm_interactions:(Engine.Runner.default_confirm ~n)
      exec
  in
  ( o.Engine.Runner.converged,
    o.Engine.Runner.convergence_interactions,
    o.Engine.Runner.total_interactions,
    o.Engine.Runner.violations )

let qcheck_runner_differential =
  QCheck.Test.make ~name:"Runner outcomes agree compiled-vs-interp (agent engine)" ~count:25
    QCheck.(pair small_nat (int_bound 2))
    (fun (seed_off, pick) ->
      let key, (Analysis.Registry.Any e) =
        List.nth (all_entries ()) (pick * 2)
        (* silent_n_state, optimal_silent, sublinear: a silent determinist,
           a quotient determinist and a randomized protocol *)
      in
      let p = e.Engine.Enumerable.protocol in
      let n = p.Engine.Protocol.n in
      let seed = 9300 + seed_off in
      let kernel = Ir.Kernel.compile e in
      let init = random_init ~rng:(Prng.create ~seed:(seed + 13)) e in
      let interp =
        Engine.Exec.make ~kind:Engine.Exec.Agent ~protocol:p ~init ~rng:(Prng.create ~seed) ()
      in
      let compiled = Ir.Kernel.exec ~kind:Engine.Exec.Agent kernel ~init ~rng:(Prng.create ~seed) in
      let oi = runner_outcome ~exec:interp ~n and oc = runner_outcome ~exec:compiled ~n in
      if oi <> oc then
        QCheck.Test.fail_reportf "%s: interp %s <> compiled %s" key
          (let a, b, c, d = oi in Printf.sprintf "(%b,%d,%d,%d)" a b c d)
          (let a, b, c, d = oc in Printf.sprintf "(%b,%d,%d,%d)" a b c d)
      else true)

(* --- kernel stats through Exec.stats ------------------------------- *)

let assoc name stats =
  match List.assoc_opt name stats with
  | Some v -> v
  | None -> Alcotest.failf "stat %s missing from %s" name (String.concat "," (List.map fst stats))

let test_kernel_stats () =
  let n = 6 in
  let e = Core.Silent_n_state.enumerable ~n in
  let kernel = Ir.Kernel.compile e in
  let init = Core.Scenarios.silent_worst_case ~n in
  let exec = Ir.Kernel.exec ~kind:Engine.Exec.Agent kernel ~init ~rng:(Prng.create ~seed:11) in
  let before = Engine.Exec.stats exec in
  check_int "kernel.states" n (int_of_float (assoc "kernel.states" before));
  check_int "kernel.table_cells" (n * n) (int_of_float (assoc "kernel.table_cells" before));
  check_int "kernel.dead_codes" 0 (int_of_float (assoc "kernel.dead_codes" before));
  check_int "kernel.exact" 1 (int_of_float (assoc "kernel.exact" before));
  check_bool "kernel.compile_s is sane" true
    (assoc "kernel.compile_s" before >= 0.0 && assoc "kernel.compile_s" before < 60.0);
  check_int "no steps yet" 0 (int_of_float (assoc "kernel.memo_hits" before));
  for i = 1 to 100 do
    ignore (Engine.Exec.advance exec ~until:i)
  done;
  let after = Engine.Exec.stats exec in
  check_bool "memo hits counted" true (assoc "kernel.memo_hits" after > 0.0);
  check_int "fully static protocol: no dynamic steps" 0
    (int_of_float (assoc "kernel.dynamic_steps" after));
  (* engine counters still come through the same list *)
  check_bool "engine interactions present" true (List.mem_assoc "interactions" after)

let test_kernel_stats_memo_skipped () =
  let n = 6 in
  let e = Core.Silent_n_state.enumerable ~n in
  let kernel = Ir.Kernel.compile ~max_cells:1 e in
  check_bool "memoization skipped under tiny budget" true (kernel.Ir.Kernel.ir.Ir.table = None);
  check_bool "skip is logged" true
    (List.exists
       (fun l -> String.length l >= 8 && String.sub l 0 8 = "memoize:")
       kernel.Ir.Kernel.ir.Ir.log);
  let exec =
    Ir.Kernel.exec ~kind:Engine.Exec.Agent kernel ~init:(Core.Scenarios.silent_worst_case ~n)
      ~rng:(Prng.create ~seed:12)
  in
  for i = 1 to 50 do
    ignore (Engine.Exec.advance exec ~until:i)
  done;
  let stats = Engine.Exec.stats exec in
  check_int "kernel.table_cells" 0 (int_of_float (assoc "kernel.table_cells" stats));
  check_int "no memo hits possible" 0 (int_of_float (assoc "kernel.memo_hits" stats));
  check_bool "all steps interpreted" true (assoc "kernel.dynamic_steps" stats > 0.0)

(* --- jobs invariance: one shared kernel across a domain pool ------- *)

let test_jobs_invariant () =
  let n = 8 in
  let e = Core.Silent_n_state.enumerable ~n in
  let kernel = Ir.Kernel.compile e in
  let batch ~jobs =
    let children = Prng.split_many (Prng.create ~seed:77) 12 in
    Engine.Pool.with_pool ~jobs (fun pool ->
        Engine.Pool.init pool 12 (fun i ->
            let rng = children.(i) in
            let init = random_init ~rng e in
            let exec = Ir.Kernel.exec ~kind:Engine.Exec.Agent kernel ~init ~rng in
            runner_outcome ~exec ~n))
  in
  let one = batch ~jobs:1 and three = batch ~jobs:3 in
  Array.iteri
    (fun i o -> check_bool (Printf.sprintf "trial %d identical across --jobs" i) true (o = three.(i)))
    one

(* --- golden Ir.pp dumps -------------------------------------------- *)

let read_file path =
  (* dune runtest runs in _build/default/test (where the golden deps are
     staged); dune exec from the repo root does not chdir *)
  let path = if Sys.file_exists path then path else Filename.concat "test" path in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden ~key ~path =
  match Analysis.Registry.find key with
  | None -> Alcotest.failf "registry entry %s vanished" key
  | Some entry -> (
      match entry.Analysis.Registry.build ~n:4 with
      | Analysis.Registry.Any e ->
          let got = Format.asprintf "%a@." Ir.pp (Ir.Passes.pipeline e) in
          let want = read_file path in
          Alcotest.(check string)
            (Printf.sprintf "%s IR dump matches %s (regenerate: analyze --dump-ir %s --n 4)" key
               path key)
            want got)

let test_golden_baseline () = check_golden ~key:"baseline" ~path:"golden/ir_baseline.txt"

let test_golden_optimal_silent () =
  check_golden ~key:"optimal_silent_small" ~path:"golden/ir_optimal_silent.txt"

(* --- field fallback ------------------------------------------------ *)

let test_synthetic_fallback () =
  (* a descriptor with a broken (non-injective) field declaration still
     compiles, via the synthetic index field *)
  let n = 4 in
  let base = Core.Silent_n_state.enumerable ~n in
  let broken =
    {
      base with
      Engine.Enumerable.fields =
        [ { Engine.Enumerable.fname = "const"; frange = 2; fget = (fun _ -> 0) } ];
    }
  in
  let ir = Ir.Passes.pipeline broken in
  check_bool "fallback recorded" true (ir.Ir.synthesized <> None);
  check_int "all states live" n (Ir.size ir);
  let kernel = Ir.Kernel.of_ir ir in
  let init = Core.Scenarios.silent_worst_case ~n in
  let interp =
    Engine.Exec.make ~kind:Engine.Exec.Agent ~protocol:base.Engine.Enumerable.protocol ~init
      ~rng:(Prng.create ~seed:5) ()
  in
  let compiled = Ir.Kernel.exec ~kind:Engine.Exec.Agent kernel ~init ~rng:(Prng.create ~seed:5) in
  check_bool "fallback kernel matches interpreter" true
    (runner_outcome ~exec:interp ~n = runner_outcome ~exec:compiled ~n)

(* the synthetic index composes with the rest of the pipeline: DSE still
   runs (dense codes, no dead states) and memoization still builds the
   full table over synthesized codes *)
let test_synthetic_fallback_composes () =
  let n = 4 in
  let base = Core.Silent_n_state.enumerable ~n in
  let broken =
    {
      base with
      Engine.Enumerable.fields =
        [ { Engine.Enumerable.fname = "const"; frange = 2; fget = (fun _ -> 0) } ];
    }
  in
  let ir = Ir.Passes.pipeline broken in
  check_int "synthetic packed space is dense" n ir.Ir.packed_codes;
  check_bool "DSE ran on the synthesized IR" true (ir.Ir.index_of_code <> None);
  check_bool "memo table built over synthesized codes" true (ir.Ir.table <> None);
  check_int "every ordered pair memoized static" (n * n) ir.Ir.static_pairs;
  (* memoized outputs stay inside the synthesized code space *)
  Ir.iter_static ir (fun ci cj oi oj ->
      if oi < 0 || oi >= n || oj < 0 || oj >= n then
        Alcotest.failf "pair (%d,%d) memoized out of range: (%d,%d)" ci cj oi oj)

(* --- memoization budget boundary ----------------------------------- *)

let test_max_cells_boundary () =
  (* the budget is exact: s*s cells memoize, s*s - 1 does not *)
  let e = Core.Reset_probe.enumerable ~n:4 () in
  let s = List.length e.Engine.Enumerable.states in
  let at_budget = Ir.Passes.pipeline ~max_cells:(s * s) e in
  check_bool "exactly s*s cells memoizes" true (at_budget.Ir.table <> None);
  check_int "all pairs classified" (s * s)
    (at_budget.Ir.static_pairs + at_budget.Ir.dynamic_pairs);
  let over_budget = Ir.Passes.pipeline ~max_cells:((s * s) - 1) e in
  check_bool "one cell short skips memoization" true (over_budget.Ir.table = None);
  check_bool "skip is logged with the budget" true
    (List.exists
       (fun l -> String.length l >= 16 && String.sub l 0 16 = "memoize: skipped")
       over_budget.Ir.log);
  (* the unmemoized IR still drives a correct kernel *)
  let init = Array.make 4 Core.Reset_probe.computing in
  init.(0) <- Core.Reset_probe.resetting ~resetcount:2 ~delaytimer:0;
  let a =
    Ir.Kernel.exec ~kind:Engine.Exec.Agent (Ir.Kernel.of_ir at_budget) ~init
      ~rng:(Prng.create ~seed:9)
  in
  let b =
    Ir.Kernel.exec ~kind:Engine.Exec.Agent (Ir.Kernel.of_ir over_budget) ~init
      ~rng:(Prng.create ~seed:9)
  in
  for i = 1 to 200 do
    ignore (Engine.Exec.advance a ~until:i);
    ignore (Engine.Exec.advance b ~until:i)
  done;
  check_bool "memoized and interpreted kernels agree" true
    (Engine.Exec.snapshot a = Engine.Exec.snapshot b)

let suite =
  [
    Alcotest.test_case "pack/unpack round-trips (all entries)" `Quick test_roundtrip_all_entries;
    Alcotest.test_case "DSE keeps every reachable code" `Quick test_dse_keeps_reachable;
    Alcotest.test_case "memo table matches direct interpretation" `Quick test_memo_matches_direct;
    Alcotest.test_case "agent-engine trajectories agree (all entries)" `Slow
      test_agent_trajectories;
    Alcotest.test_case "count-engine trajectories bit-identical (exact kernels)" `Slow
      test_count_trajectories;
    QCheck_alcotest.to_alcotest qcheck_runner_differential;
    Alcotest.test_case "kernel stats via Exec.stats" `Quick test_kernel_stats;
    Alcotest.test_case "kernel stats when memoization skipped" `Quick
      test_kernel_stats_memo_skipped;
    Alcotest.test_case "batch results invariant under --jobs" `Slow test_jobs_invariant;
    Alcotest.test_case "golden IR dump: baseline" `Quick test_golden_baseline;
    Alcotest.test_case "golden IR dump: optimal_silent_small" `Quick test_golden_optimal_silent;
    Alcotest.test_case "broken fields fall back to synthetic index" `Quick
      test_synthetic_fallback;
    Alcotest.test_case "synthetic fallback composes with DSE and memoize" `Quick
      test_synthetic_fallback_composes;
    Alcotest.test_case "memoization budget boundary is exact" `Quick test_max_cells_boundary;
  ]
