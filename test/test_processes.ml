(* Tests for the stochastic-process simulators. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Epidemic *)

let test_epidemic_positive () =
  let rng = Prng.create ~seed:1 in
  let r = Processes.Epidemic.run rng ~n:64 in
  check_bool "time positive" true (r.Processes.Epidemic.completion_time > 0.0);
  check_bool "half before full" true
    (r.Processes.Epidemic.half_time <= r.Processes.Epidemic.completion_time);
  check_bool "interactions at least n-1" true (r.Processes.Epidemic.interactions >= 63)

let test_epidemic_log_scaling () =
  let rng = Prng.create ~seed:2 in
  let mean n =
    Stats.Summary.mean (Processes.Epidemic.completion_times rng ~n ~trials:40)
  in
  let m256 = mean 256 and m4096 = mean 4096 in
  (* ln 4096 / ln 256 = 1.5: far from the ratio 16 a linear process gives *)
  check_bool "sub-linear growth" true (m4096 /. m256 < 2.5);
  check_bool "still growing" true (m4096 > m256);
  check_bool "within constant of ln n" true
    (m256 > log 256.0 /. 2.0 && m256 < 4.0 *. log 256.0)

let test_epidemic_one_way_slower () =
  let rng = Prng.create ~seed:3 in
  let two = Stats.Summary.mean (Processes.Epidemic.completion_times rng ~n:256 ~trials:40) in
  let one =
    Stats.Summary.mean (Processes.Epidemic.completion_times ~one_way:true rng ~n:256 ~trials:40)
  in
  check_bool "one-way slower" true (one > two)

let test_infection_curve () =
  let rng = Prng.create ~seed:4 in
  let curve = Processes.Epidemic.infection_curve rng ~n:32 in
  check_int "n points" 32 (List.length curve);
  let counts = List.map snd curve in
  check_bool "counts 1..n" true (counts = List.init 32 (fun i -> i + 1));
  let times = List.map fst curve in
  check_bool "times nondecreasing" true (List.sort compare times = times)

let test_epidemic_errors () =
  let rng = Prng.create ~seed:5 in
  Alcotest.check_raises "n too small" (Invalid_argument "Epidemic.run: n must be >= 2") (fun () ->
      ignore (Processes.Epidemic.run rng ~n:1))

(* Bounded epidemic *)

let test_bounded_tau_monotone () =
  let rng = Prng.create ~seed:6 in
  let r = Processes.Bounded_epidemic.run rng ~n:64 ~levels:6 in
  let tau = r.Processes.Bounded_epidemic.tau in
  check_int "levels returned" 6 (Array.length tau);
  for k = 0 to 4 do
    check_bool
      (Printf.sprintf "tau_%d >= tau_%d" (k + 1) (k + 2))
      true
      (tau.(k) >= tau.(k + 1))
  done;
  check_bool "all finite" true (Array.for_all (fun t -> not (Float.is_nan t)) tau)

let test_bounded_tau1_linear () =
  (* τ₁ requires a direct meeting with the source: expectation (n-1)/2. *)
  let rng = Prng.create ~seed:7 in
  let n = 64 in
  let samples = Processes.Bounded_epidemic.tau_samples rng ~n ~k:1 ~trials:60 in
  let mean = Stats.Summary.mean samples in
  let expected = float_of_int (n - 1) /. 2.0 in
  check_bool "mean within 2x of (n-1)/2" true (mean > expected /. 2.0 && mean < expected *. 2.0)

let test_bounded_tau2_sublinear () =
  let rng = Prng.create ~seed:8 in
  let n = 1024 in
  let t2 = Stats.Summary.mean (Processes.Bounded_epidemic.tau_samples rng ~n ~k:2 ~trials:20) in
  (* τ₂ = O(√n): for n=1024 the bound curve is 2·32 = 64; linear would be ~512 *)
  check_bool "far below linear" true (t2 < 150.0);
  check_bool "positive" true (t2 > 0.0)

let test_bounded_completion_recorded () =
  let rng = Prng.create ~seed:9 in
  let r = Processes.Bounded_epidemic.run rng ~n:32 ~levels:1 in
  check_bool "completion recorded" true
    (not (Float.is_nan r.Processes.Bounded_epidemic.completion));
  check_bool "tau_1 recorded" true (not (Float.is_nan r.Processes.Bounded_epidemic.tau.(0)));
  check_bool "completion positive" true (r.Processes.Bounded_epidemic.completion > 0.0)

let test_bounded_errors () =
  let rng = Prng.create ~seed:10 in
  Alcotest.check_raises "levels" (Invalid_argument "Bounded_epidemic: levels must be >= 1")
    (fun () -> ignore (Processes.Bounded_epidemic.run rng ~n:4 ~levels:0))

(* Roll call *)

let test_roll_call_basic () =
  let rng = Prng.create ~seed:11 in
  let r = Processes.Roll_call.run rng ~n:32 in
  check_bool "first full before completion" true
    (r.Processes.Roll_call.first_full_time <= r.Processes.Roll_call.completion_time);
  check_bool "positive" true (r.Processes.Roll_call.completion_time > 0.0)

let test_roll_call_ratio () =
  let rng = Prng.create ~seed:12 in
  let ratio = Processes.Roll_call.ratio_to_epidemic rng ~n:128 ~trials:40 in
  (* paper: ≈ 1.5 *)
  check_bool "ratio near 1.5" true (ratio > 1.1 && ratio < 2.0)

let test_roll_call_slower_than_epidemic () =
  let rng = Prng.create ~seed:13 in
  let roll = Stats.Summary.mean (Processes.Roll_call.completion_times rng ~n:64 ~trials:30) in
  let epi = Stats.Summary.mean (Processes.Epidemic.completion_times rng ~n:64 ~trials:30) in
  check_bool "roll call slower" true (roll > epi)

(* Synthetic coin *)

let test_coin_first_bit_biased () =
  (* From the all-zero start, the very first observed coin is always 0. *)
  let rng = Prng.create ~seed:20 in
  let ones = ref 0 in
  for _ = 1 to 200 do
    if (Processes.Synthetic_coin.harvest rng ~n:32 ~warmup:0 ~count:1).(0) then incr ones
  done;
  check_int "first bit deterministic" 0 !ones

let test_coin_fair_after_warmup () =
  let rng = Prng.create ~seed:21 in
  let r = Processes.Synthetic_coin.measure rng ~n:64 ~warmup:(8 * 64) ~samples:40_000 in
  check_bool "bias small" true (r.Processes.Synthetic_coin.bias < 0.02);
  check_bool "serial correlation small" true
    (Float.abs r.Processes.Synthetic_coin.serial_correlation < 0.05)

let test_coin_harvest_length () =
  let rng = Prng.create ~seed:22 in
  check_int "count respected" 17 (Array.length (Processes.Synthetic_coin.harvest rng ~n:8 ~warmup:3 ~count:17))

let test_coin_errors () =
  let rng = Prng.create ~seed:23 in
  Alcotest.check_raises "n too small" (Invalid_argument "Synthetic_coin.harvest: n must be >= 2")
    (fun () -> ignore (Processes.Synthetic_coin.harvest rng ~n:1 ~warmup:0 ~count:1))

(* Coupon *)

let test_participation () =
  let rng = Prng.create ~seed:14 in
  let t = Processes.Coupon.participation_time rng ~n:64 in
  check_bool "positive" true (t > 0.0);
  (* coupon collector needs at least ~n/2 interactions = 0.5 time *)
  check_bool "at least half a unit" true (t >= 0.5)

let test_participation_log_scaling () =
  let rng = Prng.create ~seed:15 in
  let mean n = Stats.Summary.mean (Processes.Coupon.participation_times rng ~n ~trials:40) in
  check_bool "grows slowly" true (mean 4096 /. mean 256 < 3.0)

let test_meeting_time_mean () =
  let rng = Prng.create ~seed:16 in
  let n = 100 in
  let samples = Processes.Coupon.meeting_times rng ~n ~trials:3000 in
  let mean = Stats.Summary.mean samples in
  let expected = Processes.Coupon.expected_meeting_time n in
  check_bool "matches (n-1)/2 within 10%" true
    (Float.abs (mean -. expected) /. expected < 0.1)

let test_expected_meeting_time () =
  Alcotest.(check (float 1e-9)) "n=5" 2.0 (Processes.Coupon.expected_meeting_time 5)

let suite =
  [
    Alcotest.test_case "epidemic positive" `Quick test_epidemic_positive;
    Alcotest.test_case "epidemic log scaling" `Quick test_epidemic_log_scaling;
    Alcotest.test_case "epidemic one-way slower" `Quick test_epidemic_one_way_slower;
    Alcotest.test_case "infection curve" `Quick test_infection_curve;
    Alcotest.test_case "epidemic errors" `Quick test_epidemic_errors;
    Alcotest.test_case "bounded tau monotone" `Quick test_bounded_tau_monotone;
    Alcotest.test_case "bounded tau1 linear" `Quick test_bounded_tau1_linear;
    Alcotest.test_case "bounded tau2 sublinear" `Quick test_bounded_tau2_sublinear;
    Alcotest.test_case "bounded completion recorded" `Quick test_bounded_completion_recorded;
    Alcotest.test_case "bounded errors" `Quick test_bounded_errors;
    Alcotest.test_case "roll call basic" `Quick test_roll_call_basic;
    Alcotest.test_case "roll call ratio" `Quick test_roll_call_ratio;
    Alcotest.test_case "roll call slower" `Quick test_roll_call_slower_than_epidemic;
    Alcotest.test_case "coin first bit" `Quick test_coin_first_bit_biased;
    Alcotest.test_case "coin fair after warmup" `Quick test_coin_fair_after_warmup;
    Alcotest.test_case "coin harvest length" `Quick test_coin_harvest_length;
    Alcotest.test_case "coin errors" `Quick test_coin_errors;
    Alcotest.test_case "participation" `Quick test_participation;
    Alcotest.test_case "participation scaling" `Quick test_participation_log_scaling;
    Alcotest.test_case "meeting time mean" `Quick test_meeting_time_mean;
    Alcotest.test_case "expected meeting time" `Quick test_expected_meeting_time;
  ]
