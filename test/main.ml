let () =
  Alcotest.run "repro"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("engine", Test_engine.suite);
      ("exec", Test_exec.suite);
      ("pool", Test_pool.suite);
      ("cross_engine", Test_cross_engine.suite);
      ("chaos", Test_chaos.suite);
      ("count_sim", Test_count_sim.suite);
      ("exact", Test_exact.suite);
      ("topology", Test_topology.suite);
      ("loose", Test_loose.suite);
      ("processes", Test_processes.suite);
      ("core", Test_core.suite);
      ("recovery", Test_recovery.suite);
      ("telemetry", Test_telemetry.suite);
      ("experiments", Test_experiments.suite);
      ("analysis", Test_analysis.suite);
      ("ir", Test_ir.suite);
      ("certify", Test_certify.suite);
      ("viz", Test_viz.suite);
      ("fleet", Test_fleet.suite);
    ]
