(* Tests for interaction-graph topologies and the custom-scheduler engine. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_complete () =
  let t = Engine.Topology.complete ~n:6 in
  check_int "edges" 15 (Engine.Topology.edge_count t);
  check_int "degree" 5 (Engine.Topology.degree t 3);
  check_bool "connected" true (Engine.Topology.is_connected t)

let test_ring () =
  let t = Engine.Topology.ring ~n:7 in
  check_int "edges" 7 (Engine.Topology.edge_count t);
  for i = 0 to 6 do
    check_int "degree 2" 2 (Engine.Topology.degree t i)
  done;
  check_bool "connected" true (Engine.Topology.is_connected t)

let test_star () =
  let t = Engine.Topology.star ~n:9 in
  check_int "edges" 8 (Engine.Topology.edge_count t);
  check_int "hub degree" 8 (Engine.Topology.degree t 0);
  check_int "leaf degree" 1 (Engine.Topology.degree t 5);
  check_bool "connected" true (Engine.Topology.is_connected t)

let test_random_regular () =
  let rng = Prng.create ~seed:11 in
  let t = Engine.Topology.random_regular rng ~n:20 ~degree:4 in
  check_int "edges = n·d/2" 40 (Engine.Topology.edge_count t);
  for i = 0 to 19 do
    check_int "regular" 4 (Engine.Topology.degree t i)
  done;
  check_bool "connected" true (Engine.Topology.is_connected t)

let test_random_regular_rejects_odd () =
  let rng = Prng.create ~seed:12 in
  Alcotest.check_raises "odd degree"
    (Invalid_argument "Topology.random_regular: degree must be even and >= 2") (fun () ->
      ignore (Engine.Topology.random_regular rng ~n:10 ~degree:3))

let test_sampler_valid () =
  let rng = Prng.create ~seed:13 in
  let t = Engine.Topology.ring ~n:8 in
  for _ = 1 to 2000 do
    let i, j = Engine.Topology.sampler t rng in
    check_bool "edge of the ring" true
      (i <> j && (abs (i - j) = 1 || abs (i - j) = 7))
  done

let test_sampler_orientation_fair () =
  let rng = Prng.create ~seed:14 in
  let t = Engine.Topology.star ~n:4 in
  let hub_first = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let i, _ = Engine.Topology.sampler t rng in
    if i = 0 then incr hub_first
  done;
  check_bool "orientation roughly fair" true (abs (!hub_first - (trials / 2)) < trials / 10)

let test_complete_sampler_matches_uniform () =
  (* On the complete topology the edge sampler is the paper's scheduler:
     all ordered pairs roughly equally likely. *)
  let rng = Prng.create ~seed:15 in
  let n = 4 in
  let t = Engine.Topology.complete ~n in
  let counts = Hashtbl.create 16 in
  let trials = 60_000 in
  for _ = 1 to trials do
    let p = Engine.Topology.sampler t rng in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  check_int "all ordered pairs occur" (n * (n - 1)) (Hashtbl.length counts);
  let expected = trials / (n * (n - 1)) in
  Hashtbl.iter
    (fun _ c -> check_bool "balanced" true (abs (c - expected) < expected / 4))
    counts

let test_sim_with_topology () =
  (* Baseline leader election on a ring still converges: annihilation only
     needs adjacent leaders to meet eventually... which on a connected
     graph they do via the chain of meetings? No: L,L -> L,F needs the two
     leaders THEMSELVES to interact; non-adjacent leaders on a ring never
     do. Verify exactly that. *)
  let n = 8 in
  let protocol = Core.Baseline.protocol ~n in
  let ring = Engine.Topology.ring ~n in
  (* leaders at opposite positions 0 and 4: stuck at two leaders forever *)
  let init = Array.init n (fun i -> if i = 0 || i = 4 then Core.Baseline.Leader else Core.Baseline.Follower) in
  let sim =
    Engine.Sim.make_with ~sampler:(Engine.Topology.sampler ring) ~protocol ~init
      ~rng:(Prng.create ~seed:16)
  in
  Engine.Sim.run sim 50_000;
  check_int "non-adjacent leaders never annihilate" 2 (Engine.Sim.leader_count sim);
  (* adjacent leaders do *)
  let init = Array.init n (fun i -> if i <= 1 then Core.Baseline.Leader else Core.Baseline.Follower) in
  let sim =
    Engine.Sim.make_with ~sampler:(Engine.Topology.sampler ring) ~protocol ~init
      ~rng:(Prng.create ~seed:17)
  in
  Engine.Sim.run sim 50_000;
  check_int "adjacent leaders annihilate" 1 (Engine.Sim.leader_count sim)

let test_errors () =
  Alcotest.check_raises "tiny ring" (Invalid_argument "Topology.ring: n must be >= 3") (fun () ->
      ignore (Engine.Topology.ring ~n:2));
  Alcotest.check_raises "degree too large"
    (Invalid_argument "Topology.random_regular: n must exceed the degree") (fun () ->
      ignore (Engine.Topology.random_regular (Prng.create ~seed:1) ~n:4 ~degree:4))

(* ---------- degree-class lumping ---------- *)

let test_degree_classes_star () =
  let n = 9 in
  let c = Engine.Topology.degree_classes (Engine.Topology.star ~n) in
  check_int "two classes" 2 c.Engine.Topology.nc;
  (* class ids ascend by degree: class 0 = leaves, class 1 = hub *)
  check_int "leaves" (n - 1) c.Engine.Topology.sizes.(0);
  check_int "hub" 1 c.Engine.Topology.sizes.(1);
  check_int "hub is agent 0" 1 c.Engine.Topology.class_of.(0);
  check_bool "star lumps exactly" true c.Engine.Topology.exact;
  check_int "leaf-leaf pairs never scheduled" 0 c.Engine.Topology.mix.(0).(0);
  check_int "hub-hub pairs never scheduled" 0 c.Engine.Topology.mix.(1).(1);
  check_int "leaf->hub" (n - 1) c.Engine.Topology.mix.(0).(1);
  check_int "hub->leaf" (n - 1) c.Engine.Topology.mix.(1).(0)

let test_degree_classes_invariants () =
  let rng = Prng.create ~seed:21 in
  List.iter
    (fun t ->
      let c = Engine.Topology.degree_classes t in
      let label suffix = Engine.Topology.name t ^ " " ^ suffix in
      let mix_total =
        Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 c.Engine.Topology.mix
      in
      check_int (label "mix sums to 2E") (2 * Engine.Topology.edge_count t) mix_total;
      check_int (label "sizes sum to n") (Engine.Topology.size t)
        (Array.fold_left ( + ) 0 c.Engine.Topology.sizes);
      Array.iteri
        (fun i cl ->
          check_bool (label "members ascending per class") true
            (Array.exists (fun m -> m = i) c.Engine.Topology.members.(cl)))
        c.Engine.Topology.class_of)
    [
      Engine.Topology.complete ~n:8;
      Engine.Topology.ring ~n:9;
      Engine.Topology.star ~n:7;
      Engine.Topology.random_regular rng ~n:16 ~degree:4;
    ]

let test_degree_classes_exactness () =
  let exact t = (Engine.Topology.degree_classes t).Engine.Topology.exact in
  check_bool "complete exact" true (exact (Engine.Topology.complete ~n:8));
  check_bool "ring not exact (annealed)" false (exact (Engine.Topology.ring ~n:9));
  check_bool "random regular not exact (annealed)" false
    (exact (Engine.Topology.random_regular (Prng.create ~seed:22) ~n:16 ~degree:4));
  let cc = Engine.Topology.complete_classes ~n:8 in
  check_bool "complete_classes exact" true cc.Engine.Topology.exact;
  check_int "complete_classes single class" 1 cc.Engine.Topology.nc;
  check_int "complete_classes mix = n(n-1)" (8 * 7) cc.Engine.Topology.mix.(0).(0)

let suite =
  [
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "random regular" `Quick test_random_regular;
    Alcotest.test_case "random regular odd degree" `Quick test_random_regular_rejects_odd;
    Alcotest.test_case "sampler valid" `Quick test_sampler_valid;
    Alcotest.test_case "sampler orientation" `Quick test_sampler_orientation_fair;
    Alcotest.test_case "complete sampler uniform" `Quick test_complete_sampler_matches_uniform;
    Alcotest.test_case "sim on ring topology" `Quick test_sim_with_topology;
    Alcotest.test_case "topology errors" `Quick test_errors;
    Alcotest.test_case "degree classes: star" `Quick test_degree_classes_star;
    Alcotest.test_case "degree classes: invariants" `Quick test_degree_classes_invariants;
    Alcotest.test_case "degree classes: exactness" `Quick test_degree_classes_exactness;
  ]
