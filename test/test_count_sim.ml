(* Tests for the count-based (null-skipping) engine. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rejects_randomized () =
  let p = Core.Sublinear.protocol ~n:4 ~h:0 () in
  let rng = Prng.create ~seed:1 in
  let init = Core.Scenarios.sublinear_fresh rng ~params:(Core.Params.sublinear ~h:0 4) ~n:4 in
  Alcotest.check_raises "randomized rejected"
    (Invalid_argument "Count_sim.make: protocol is randomized") (fun () ->
      ignore (Engine.Count_sim.make ~protocol:p ~init ~rng))

let test_rejects_size_mismatch () =
  let p = Core.Silent_n_state.protocol ~n:4 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Count_sim.make: initial configuration size differs from protocol.n")
    (fun () ->
      ignore
        (Engine.Count_sim.make ~protocol:p
           ~init:[| Core.Silent_n_state.state_of_rank0 ~n:4 0 |]
           ~rng:(Prng.create ~seed:1)))

let test_correct_config_is_silent () =
  let n = 8 in
  let p = Core.Silent_n_state.protocol ~n in
  let cs =
    Engine.Count_sim.make ~protocol:p ~init:(Core.Scenarios.silent_correct ~n)
      ~rng:(Prng.create ~seed:2)
  in
  check_bool "silent" true (Engine.Count_sim.is_silent cs);
  check_bool "correct" true (Engine.Count_sim.ranking_correct cs);
  check_int "no interactions consumed" 0 (Engine.Count_sim.interactions cs);
  (* stepping a silent configuration is a no-op *)
  Engine.Count_sim.step_event cs;
  check_int "still no events" 0 (Engine.Count_sim.events cs)

let test_worst_case_event_count () =
  (* The barrier configuration resolves in exactly n-1 productive events:
     the duplicate climbs one rank per bottleneck meeting. *)
  let n = 32 in
  let p = Core.Silent_n_state.protocol ~n in
  let cs =
    Engine.Count_sim.make ~protocol:p ~init:(Core.Scenarios.silent_worst_case ~n)
      ~rng:(Prng.create ~seed:3)
  in
  let o = Engine.Count_sim.run_to_silence cs in
  check_bool "silent" true o.Engine.Count_sim.silent;
  check_bool "correct" true o.Engine.Count_sim.correct;
  check_int "exactly n-1 events" (n - 1) o.Engine.Count_sim.events;
  check_bool "time is Θ(n²)-scale" true
    (o.Engine.Count_sim.stabilization_time > float_of_int (n * n) /. 8.0)

let test_agrees_with_array_engine () =
  (* Same process, different engines: means over many trials must agree. *)
  let n = 12 in
  let p = Core.Silent_n_state.protocol ~n in
  let trials = 120 in
  let array_mean =
    let acc = ref 0.0 in
    for k = 1 to trials do
      let rng = Prng.create ~seed:(9000 + k) in
      let init = Core.Scenarios.silent_uniform rng ~n in
      let sim = Engine.Sim.make ~protocol:p ~init ~rng in
      let o =
        Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
          ~max_interactions:(100 * n * n * n)
          ~confirm_interactions:(Engine.Runner.default_confirm ~n)
          (Engine.Exec.of_sim sim)
      in
      acc := !acc +. o.Engine.Runner.convergence_time
    done;
    !acc /. float_of_int trials
  in
  let count_mean =
    let acc = ref 0.0 in
    for k = 1 to trials do
      let rng = Prng.create ~seed:(9000 + k) in
      let init = Core.Scenarios.silent_uniform rng ~n in
      let cs = Engine.Count_sim.make ~protocol:p ~init ~rng in
      let o = Engine.Count_sim.run_to_silence cs in
      acc := !acc +. o.Engine.Count_sim.stabilization_time
    done;
    !acc /. float_of_int trials
  in
  check_bool
    (Printf.sprintf "means agree within 15%% (array %.1f vs count %.1f)" array_mean count_mean)
    true
    (Float.abs (array_mean -. count_mean) /. array_mean < 0.15)

let test_distribution_matches_array_engine () =
  (* Beyond means: the two engines sample the same law, checked by a
     two-sample Kolmogorov-Smirnov test at alpha = 0.01. *)
  let n = 10 in
  let p = Core.Silent_n_state.protocol ~n in
  let trials = 300 in
  let array_times =
    Array.init trials (fun k ->
        let rng = Prng.create ~seed:(40_000 + k) in
        let init = Core.Scenarios.silent_uniform rng ~n in
        let sim = Engine.Sim.make ~protocol:p ~init ~rng in
        let o =
          Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
            ~max_interactions:(100 * n * n * n)
            ~confirm_interactions:(Engine.Runner.default_confirm ~n)
            (Engine.Exec.of_sim sim)
        in
        o.Engine.Runner.convergence_time)
  in
  let count_times =
    Array.init trials (fun k ->
        let rng = Prng.create ~seed:(50_000 + k) in
        let init = Core.Scenarios.silent_uniform rng ~n in
        let cs = Engine.Count_sim.make ~protocol:p ~init ~rng in
        (Engine.Count_sim.run_to_silence cs).Engine.Count_sim.stabilization_time)
  in
  check_bool "same distribution (KS, alpha=0.01)" true
    (Stats.Ks.same_distribution array_times count_times)

let test_distinct_states_counts () =
  let n = 6 in
  let p = Core.Silent_n_state.protocol ~n in
  let init = Array.map (Core.Silent_n_state.state_of_rank0 ~n) [| 0; 0; 0; 2; 2; 5 |] in
  let cs = Engine.Count_sim.make ~protocol:p ~init ~rng:(Prng.create ~seed:4) in
  let counts =
    Engine.Count_sim.distinct_states cs
    |> List.map (fun (s, c) -> ((s : Core.Silent_n_state.state :> int), c))
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "counts" [ (0, 3); (2, 2); (5, 1) ] counts

let test_monitor_over_counts () =
  let n = 4 in
  let p = Core.Silent_n_state.protocol ~n in
  let init = Array.map (Core.Silent_n_state.state_of_rank0 ~n) [| 0; 1; 2; 2 |] in
  let cs = Engine.Count_sim.make ~protocol:p ~init ~rng:(Prng.create ~seed:5) in
  check_bool "initially incorrect" false (Engine.Count_sim.ranking_correct cs);
  check_int "one leader (rank 1 = internal 0)" 1 (Engine.Count_sim.leader_count cs);
  let o = Engine.Count_sim.run_to_silence cs in
  check_bool "stabilizes" true (o.Engine.Count_sim.silent && o.Engine.Count_sim.correct);
  check_bool "leader correct at end" true (Engine.Count_sim.leader_correct cs)

let test_optimal_silent_through_count_engine () =
  (* The generic engine also drives the richer deterministic protocol
     (resets and all) to its silent correct configuration. *)
  let n = 12 in
  let params = Core.Params.optimal_silent n in
  let p = Core.Optimal_silent.protocol ~params ~n () in
  let rng = Prng.create ~seed:6 in
  let init = Core.Scenarios.optimal_uniform rng ~params ~n in
  let cs = Engine.Count_sim.make ~protocol:p ~init ~rng in
  let o = Engine.Count_sim.run_to_silence cs in
  check_bool "silent" true o.Engine.Count_sim.silent;
  check_bool "ranked" true o.Engine.Count_sim.correct

let test_interactions_dominate_events () =
  let n = 16 in
  let p = Core.Silent_n_state.protocol ~n in
  let cs =
    Engine.Count_sim.make ~protocol:p ~init:(Core.Scenarios.silent_worst_case ~n)
      ~rng:(Prng.create ~seed:7)
  in
  let o = Engine.Count_sim.run_to_silence cs in
  check_bool "events <= interactions" true (o.Engine.Count_sim.events <= o.Engine.Count_sim.interactions);
  check_bool "null interactions were skipped" true
    (o.Engine.Count_sim.interactions > 10 * o.Engine.Count_sim.events)

let suite =
  [
    Alcotest.test_case "rejects randomized" `Quick test_rejects_randomized;
    Alcotest.test_case "rejects size mismatch" `Quick test_rejects_size_mismatch;
    Alcotest.test_case "correct config silent" `Quick test_correct_config_is_silent;
    Alcotest.test_case "worst case event count" `Quick test_worst_case_event_count;
    Alcotest.test_case "agrees with array engine" `Slow test_agrees_with_array_engine;
    Alcotest.test_case "distribution matches array engine" `Slow test_distribution_matches_array_engine;
    Alcotest.test_case "distinct state counts" `Quick test_distinct_states_counts;
    Alcotest.test_case "monitor over counts" `Quick test_monitor_over_counts;
    Alcotest.test_case "optimal-silent through count engine" `Slow test_optimal_silent_through_count_engine;
    Alcotest.test_case "null skipping" `Quick test_interactions_dominate_events;
  ]
