(* Tests for the count-based (null-skipping) engine. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rejects_randomized () =
  let p = Core.Sublinear.protocol ~n:4 ~h:0 () in
  let rng = Prng.create ~seed:1 in
  let init = Core.Scenarios.sublinear_fresh rng ~params:(Core.Params.sublinear ~h:0 4) ~n:4 in
  Alcotest.check_raises "randomized rejected"
    (Invalid_argument "Count_sim.make: protocol is randomized") (fun () ->
      ignore (Engine.Count_sim.make ~protocol:p ~init ~rng ()))

let test_rejects_size_mismatch () =
  let p = Core.Silent_n_state.protocol ~n:4 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Count_sim.make: initial configuration size differs from protocol.n")
    (fun () ->
      ignore
        (Engine.Count_sim.make ~protocol:p
           ~init:[| Core.Silent_n_state.state_of_rank0 ~n:4 0 |]
           ~rng:(Prng.create ~seed:1) ()))

let test_correct_config_is_silent () =
  let n = 8 in
  let p = Core.Silent_n_state.protocol ~n in
  let cs =
    Engine.Count_sim.make ~protocol:p ~init:(Core.Scenarios.silent_correct ~n)
      ~rng:(Prng.create ~seed:2) ()
  in
  check_bool "silent" true (Engine.Count_sim.is_silent cs);
  check_bool "correct" true (Engine.Count_sim.ranking_correct cs);
  check_int "no interactions consumed" 0 (Engine.Count_sim.interactions cs);
  (* stepping a silent configuration is a no-op *)
  Engine.Count_sim.step_event cs;
  check_int "still no events" 0 (Engine.Count_sim.events cs)

let test_worst_case_event_count () =
  (* The barrier configuration resolves in exactly n-1 productive events:
     the duplicate climbs one rank per bottleneck meeting. *)
  let n = 32 in
  let p = Core.Silent_n_state.protocol ~n in
  let cs =
    Engine.Count_sim.make ~protocol:p ~init:(Core.Scenarios.silent_worst_case ~n)
      ~rng:(Prng.create ~seed:3) ()
  in
  let o = Engine.Count_sim.run_to_silence cs in
  check_bool "silent" true o.Engine.Count_sim.silent;
  check_bool "correct" true o.Engine.Count_sim.correct;
  check_int "exactly n-1 events" (n - 1) o.Engine.Count_sim.events;
  check_bool "time is Θ(n²)-scale" true
    (o.Engine.Count_sim.stabilization_time > float_of_int (n * n) /. 8.0)

let test_agrees_with_array_engine () =
  (* Same process, different engines: means over many trials must agree. *)
  let n = 12 in
  let p = Core.Silent_n_state.protocol ~n in
  let trials = 120 in
  let array_mean =
    let acc = ref 0.0 in
    for k = 1 to trials do
      let rng = Prng.create ~seed:(9000 + k) in
      let init = Core.Scenarios.silent_uniform rng ~n in
      let sim = Engine.Sim.make ~protocol:p ~init ~rng in
      let o =
        Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
          ~max_interactions:(100 * n * n * n)
          ~confirm_interactions:(Engine.Runner.default_confirm ~n)
          (Engine.Exec.of_sim sim)
      in
      acc := !acc +. o.Engine.Runner.convergence_time
    done;
    !acc /. float_of_int trials
  in
  let count_mean =
    let acc = ref 0.0 in
    for k = 1 to trials do
      let rng = Prng.create ~seed:(9000 + k) in
      let init = Core.Scenarios.silent_uniform rng ~n in
      let cs = Engine.Count_sim.make ~protocol:p ~init ~rng () in
      let o = Engine.Count_sim.run_to_silence cs in
      acc := !acc +. o.Engine.Count_sim.stabilization_time
    done;
    !acc /. float_of_int trials
  in
  check_bool
    (Printf.sprintf "means agree within 15%% (array %.1f vs count %.1f)" array_mean count_mean)
    true
    (Float.abs (array_mean -. count_mean) /. array_mean < 0.15)

let test_distribution_matches_array_engine () =
  (* Beyond means: the two engines sample the same law, checked by a
     two-sample Kolmogorov-Smirnov test at alpha = 0.01. *)
  let n = 10 in
  let p = Core.Silent_n_state.protocol ~n in
  let trials = 300 in
  let array_times =
    Array.init trials (fun k ->
        let rng = Prng.create ~seed:(40_000 + k) in
        let init = Core.Scenarios.silent_uniform rng ~n in
        let sim = Engine.Sim.make ~protocol:p ~init ~rng in
        let o =
          Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
            ~max_interactions:(100 * n * n * n)
            ~confirm_interactions:(Engine.Runner.default_confirm ~n)
            (Engine.Exec.of_sim sim)
        in
        o.Engine.Runner.convergence_time)
  in
  let count_times =
    Array.init trials (fun k ->
        let rng = Prng.create ~seed:(50_000 + k) in
        let init = Core.Scenarios.silent_uniform rng ~n in
        let cs = Engine.Count_sim.make ~protocol:p ~init ~rng () in
        (Engine.Count_sim.run_to_silence cs).Engine.Count_sim.stabilization_time)
  in
  check_bool "same distribution (KS, alpha=0.01)" true
    (Stats.Ks.same_distribution array_times count_times)

let test_distinct_states_counts () =
  let n = 6 in
  let p = Core.Silent_n_state.protocol ~n in
  let init = Array.map (Core.Silent_n_state.state_of_rank0 ~n) [| 0; 0; 0; 2; 2; 5 |] in
  let cs = Engine.Count_sim.make ~protocol:p ~init ~rng:(Prng.create ~seed:4) () in
  let counts =
    Engine.Count_sim.distinct_states cs
    |> List.map (fun (s, c) -> ((s : Core.Silent_n_state.state :> int), c))
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "counts" [ (0, 3); (2, 2); (5, 1) ] counts

let test_monitor_over_counts () =
  let n = 4 in
  let p = Core.Silent_n_state.protocol ~n in
  let init = Array.map (Core.Silent_n_state.state_of_rank0 ~n) [| 0; 1; 2; 2 |] in
  let cs = Engine.Count_sim.make ~protocol:p ~init ~rng:(Prng.create ~seed:5) () in
  check_bool "initially incorrect" false (Engine.Count_sim.ranking_correct cs);
  check_int "one leader (rank 1 = internal 0)" 1 (Engine.Count_sim.leader_count cs);
  let o = Engine.Count_sim.run_to_silence cs in
  check_bool "stabilizes" true (o.Engine.Count_sim.silent && o.Engine.Count_sim.correct);
  check_bool "leader correct at end" true (Engine.Count_sim.leader_correct cs)

let test_optimal_silent_through_count_engine () =
  (* The generic engine also drives the richer deterministic protocol
     (resets and all) to its silent correct configuration. *)
  let n = 12 in
  let params = Core.Params.optimal_silent n in
  let p = Core.Optimal_silent.protocol ~params ~n () in
  let rng = Prng.create ~seed:6 in
  let init = Core.Scenarios.optimal_uniform rng ~params ~n in
  let cs = Engine.Count_sim.make ~protocol:p ~init ~rng () in
  let o = Engine.Count_sim.run_to_silence cs in
  check_bool "silent" true o.Engine.Count_sim.silent;
  check_bool "ranked" true o.Engine.Count_sim.correct

let test_interactions_dominate_events () =
  let n = 16 in
  let p = Core.Silent_n_state.protocol ~n in
  let cs =
    Engine.Count_sim.make ~protocol:p ~init:(Core.Scenarios.silent_worst_case ~n)
      ~rng:(Prng.create ~seed:7) ()
  in
  let o = Engine.Count_sim.run_to_silence cs in
  check_bool "events <= interactions" true (o.Engine.Count_sim.events <= o.Engine.Count_sim.interactions);
  check_bool "null interactions were skipped" true
    (o.Engine.Count_sim.interactions > 10 * o.Engine.Count_sim.events)

(* ---------- lazy probing and the tri-state oracle ---------- *)

let test_tri_state_silence_oracle () =
  let n = 8 in
  let p = Core.Silent_n_state.protocol ~n in
  (* drained: silence decided exactly, both ways *)
  let cs =
    Engine.Count_sim.make ~protocol:p ~init:(Core.Scenarios.silent_correct ~n)
      ~rng:(Prng.create ~seed:31) ()
  in
  check_bool "auto-drained" true (Engine.Count_sim.drained cs);
  Alcotest.(check (option bool)) "provably silent" (Some true) (Engine.Count_sim.silent cs);
  let cs =
    Engine.Count_sim.make ~protocol:p ~init:(Core.Scenarios.silent_worst_case ~n)
      ~rng:(Prng.create ~seed:32) ()
  in
  Alcotest.(check (option bool)) "provably live" (Some false) (Engine.Count_sim.silent cs);
  (* lazy: the same silent configuration is not (yet) provable *)
  let cs =
    Engine.Count_sim.make ~init_probe:false ~protocol:p ~init:(Core.Scenarios.silent_correct ~n)
      ~rng:(Prng.create ~seed:33) ()
  in
  check_bool "init_probe:false suppresses the drain" false (Engine.Count_sim.drained cs);
  Alcotest.(check (option bool)) "lazy cannot decide" None (Engine.Count_sim.silent cs);
  check_bool "no probes yet" true (Engine.Count_sim.pairs_probed cs = 0)

let test_lazy_matches_drained_law () =
  (* Forced-lazy probing and the eager drain sample the same chain: the
     Runner-level convergence times (same observable in both modes) must
     agree in law. *)
  let n = 10 in
  let p = Core.Silent_n_state.protocol ~n in
  let times init_probe seed0 =
    Array.init 250 (fun k ->
        let rng = Prng.create ~seed:(seed0 + k) in
        let init = Core.Scenarios.silent_uniform rng ~n in
        let cs = Engine.Count_sim.make ~init_probe ~protocol:p ~init ~rng () in
        let o =
          Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
            ~max_interactions:(200 * n * n * n)
            ~confirm_interactions:(Engine.Runner.default_confirm ~n)
            (Engine.Exec.of_count_sim cs)
        in
        if not o.Engine.Runner.converged then failwith "did not converge";
        o.Engine.Runner.convergence_time)
  in
  let eager = times true 61_000 and lazy_times = times false 62_000 in
  let d = Stats.Ks.statistic eager lazy_times in
  check_bool
    (Printf.sprintf "lazy and drained agree in law (KS D=%.3f)" d)
    true
    (Stats.Ks.same_distribution ~alpha:Stats.Ks.P01 eager lazy_times)

(* ---------- degree-class lumping ---------- *)

let test_classes_snapshot_and_faults () =
  let n = 9 in
  let p = Core.Silent_n_state.protocol ~n in
  let classes = Engine.Topology.degree_classes (Engine.Topology.star ~n) in
  let init = Array.init n (fun i -> Core.Silent_n_state.state_of_rank0 ~n (i mod 4)) in
  let cs = Engine.Count_sim.make ~classes ~protocol:p ~init ~rng:(Prng.create ~seed:41) () in
  check_bool "star lumping exact" true (Engine.Count_sim.lumping_exact cs);
  let ranks_of agents config =
    List.map (fun i -> (config.(i) : Core.Silent_n_state.state :> int)) agents
    |> List.sort compare
  in
  let leaves = List.init (n - 1) (fun i -> i + 1) in
  let snap = Engine.Count_sim.snapshot cs in
  (* the per-agent view preserves each class's multiset (agents within a
     class are exchangeable, so only the multiset is meaningful) *)
  Alcotest.(check (list int)) "hub multiset" (ranks_of [ 0 ] init) (ranks_of [ 0 ] snap);
  Alcotest.(check (list int)) "leaf multiset" (ranks_of leaves init) (ranks_of leaves snap);
  (* injecting at a leaf changes exactly the leaf class's multiset *)
  let planted = Core.Silent_n_state.state_of_rank0 ~n 7 in
  Engine.Count_sim.inject cs 5 planted;
  let snap' = Engine.Count_sim.snapshot cs in
  Alcotest.(check (list int)) "hub untouched" (ranks_of [ 0 ] init) (ranks_of [ 0 ] snap');
  (* exactly one leaf entry was replaced by the planted rank: the new
     multiset minus one 7 is a sub-multiset of the old one, same size *)
  let old_leaves = ranks_of leaves snap in
  let new_leaves = ranks_of leaves snap' in
  check_bool "planted rank appears among leaves" true (List.mem 7 new_leaves);
  check_int "population preserved" (List.length old_leaves) (List.length new_leaves);
  let remove_one x l =
    let rec go acc = function
      | [] -> List.rev acc
      | y :: rest when y = x -> List.rev_append acc rest
      | y :: rest -> go (y :: acc) rest
    in
    go [] l
  in
  let is_submultiset a b = List.fold_left (fun b x -> remove_one x b) b a |> List.length
                           = List.length b - List.length a in
  check_bool "one swap only" true (is_submultiset (remove_one 7 new_leaves) old_leaves);
  (* corrupt stays in bounds and reports its count *)
  let hit =
    Engine.Count_sim.corrupt cs ~rng:(Prng.create ~seed:43) ~fraction:0.5 (fun rng ->
        Core.Silent_n_state.state_of_rank0 ~n (Prng.int rng n))
  in
  check_int "corrupt count" (int_of_float (Float.round (0.5 *. float_of_int n))) hit;
  check_int "n preserved" n (Array.length (Engine.Count_sim.snapshot cs))

let test_star_lumping_silent_but_incorrect () =
  (* A duplicate rank planted on two leaves: the star schedules only
     hub-leaf pairs, so the duplicates can never meet — the lumped run is
     provably silent yet incorrect. This is the fixed graph's honest
     physics (the paper's protocols assume the complete graph), and the
     exact lumping reproduces it. *)
  let n = 8 in
  let p = Core.Silent_n_state.protocol ~n in
  let classes = Engine.Topology.degree_classes (Engine.Topology.star ~n) in
  let init = Array.init n (Core.Silent_n_state.state_of_rank0 ~n) in
  init.(1) <- init.(2);
  let cs = Engine.Count_sim.make ~classes ~protocol:p ~init ~rng:(Prng.create ~seed:44) () in
  check_bool "provably silent" true (Engine.Count_sim.is_silent cs);
  check_bool "yet incorrect" false (Engine.Count_sim.ranking_correct cs);
  (* the same configuration on the complete graph is live *)
  let cs =
    Engine.Count_sim.make ~protocol:p ~init:(Array.copy init) ~rng:(Prng.create ~seed:45) ()
  in
  Alcotest.(check (option bool)) "complete graph: live" (Some false) (Engine.Count_sim.silent cs)

let suite =
  [
    Alcotest.test_case "rejects randomized" `Quick test_rejects_randomized;
    Alcotest.test_case "rejects size mismatch" `Quick test_rejects_size_mismatch;
    Alcotest.test_case "correct config silent" `Quick test_correct_config_is_silent;
    Alcotest.test_case "worst case event count" `Quick test_worst_case_event_count;
    Alcotest.test_case "agrees with array engine" `Slow test_agrees_with_array_engine;
    Alcotest.test_case "distribution matches array engine" `Slow test_distribution_matches_array_engine;
    Alcotest.test_case "distinct state counts" `Quick test_distinct_states_counts;
    Alcotest.test_case "monitor over counts" `Quick test_monitor_over_counts;
    Alcotest.test_case "optimal-silent through count engine" `Slow test_optimal_silent_through_count_engine;
    Alcotest.test_case "null skipping" `Quick test_interactions_dominate_events;
    Alcotest.test_case "tri-state silence oracle" `Quick test_tri_state_silence_oracle;
    Alcotest.test_case "lazy matches drained law (KS)" `Slow test_lazy_matches_drained_law;
    Alcotest.test_case "classes snapshot and faults" `Quick test_classes_snapshot_and_faults;
    Alcotest.test_case "star lumping silent but incorrect" `Quick
      test_star_lumping_silent_but_incorrect;
  ]
