(* Tests for the Engine.Pool domain pool: ordered results, exception
   propagation, reuse after failure, and the jobs-invariance guarantee of
   Exp_common.run_trials built on top of it. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom of int

let test_empty_task_list () =
  Engine.Pool.with_pool ~jobs:2 (fun pool ->
      check_int "empty run" 0 (Array.length (Engine.Pool.run pool [||]));
      check_int "init 0" 0 (Array.length (Engine.Pool.init pool 0 (fun i -> i))))

let test_sequential_jobs1 () =
  Engine.Pool.with_pool ~jobs:1 (fun pool ->
      check_int "jobs" 1 (Engine.Pool.jobs pool);
      let r = Engine.Pool.init pool 10 (fun i -> i * i) in
      Alcotest.(check (array int)) "squares" (Array.init 10 (fun i -> i * i)) r)

let test_more_tasks_than_domains () =
  (* 3 domains, 57 tasks: results must come back in submission order. *)
  Engine.Pool.with_pool ~jobs:3 (fun pool ->
      let r = Engine.Pool.init pool 57 (fun i -> 2 * i) in
      Alcotest.(check (array int)) "ordered" (Array.init 57 (fun i -> 2 * i)) r;
      let m = Engine.Pool.map pool String.length [| "a"; "bb"; "ccc" |] in
      Alcotest.(check (array int)) "map" [| 1; 2; 3 |] m)

let test_exception_propagates () =
  Engine.Pool.with_pool ~jobs:2 (fun pool ->
      (* The first failing index is re-raised; the pool must not deadlock
         and must stay usable for the next batch. *)
      Alcotest.check_raises "first failure re-raised" (Boom 3) (fun () ->
          ignore
            (Engine.Pool.init pool 20 (fun i ->
                 if i >= 3 && i mod 5 = 3 then raise (Boom i) else i)));
      let r = Engine.Pool.init pool 8 (fun i -> i + 1) in
      check_int "pool survives a failed batch" 8 (Array.length r))

let test_shutdown_semantics () =
  let pool = Engine.Pool.create ~jobs:2 in
  check_int "one batch" 5 (Array.length (Engine.Pool.run pool (Array.make 5 (fun () -> 0))));
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool;
  (* idempotent *)
  check_bool "run after shutdown rejected" true
    (try
       ignore (Engine.Pool.run pool [| (fun () -> 0) |]);
       false
     with Invalid_argument _ -> true)

let test_default_jobs_env () =
  check_bool "default jobs positive" true (Engine.Pool.default_jobs () >= 1)

(* run_trials must give bit-identical results for every jobs value: the
   per-trial PRNG children are split before dispatch. *)
let qcheck_run_trials_jobs_invariant =
  QCheck.Test.make ~name:"run_trials identical under jobs=1 and jobs=3" ~count:30
    QCheck.(pair small_int (int_range 0 12))
    (fun (seed, trials) ->
      let body rng = Prng.float rng +. float_of_int (Prng.int rng 1000) in
      let a = Experiments.Exp_common.run_trials ~jobs:1 ~trials ~seed body in
      let b = Experiments.Exp_common.run_trials ~jobs:3 ~trials ~seed body in
      a = b)

(* Full-path determinism: measure (simulation trials, convergence times,
   failure/violation accounting) is invariant in the number of domains. *)
let qcheck_measure_jobs_invariant =
  QCheck.Test.make ~name:"measure identical under jobs=1 and jobs=4" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      let n = 6 in
      let protocol = Core.Silent_n_state.protocol ~n in
      let run ~jobs =
        Experiments.Exp_common.measure ~jobs ~label:"t" ~protocol
          ~init:(fun rng -> Core.Scenarios.silent_uniform rng ~n)
          ~task:Engine.Runner.Ranking
          ~expected_time:(float_of_int (n * n))
          ~trials:6 ~seed ()
      in
      let a = run ~jobs:1 and b = run ~jobs:4 in
      a.Experiments.Exp_common.times = b.Experiments.Exp_common.times
      && a.Experiments.Exp_common.failures = b.Experiments.Exp_common.failures
      && a.Experiments.Exp_common.violations = b.Experiments.Exp_common.violations
      && a.Experiments.Exp_common.silent_checked = b.Experiments.Exp_common.silent_checked
      && a.Experiments.Exp_common.silent_ok = b.Experiments.Exp_common.silent_ok)

let suite =
  [
    Alcotest.test_case "empty task list" `Quick test_empty_task_list;
    Alcotest.test_case "jobs=1 sequential" `Quick test_sequential_jobs1;
    Alcotest.test_case "more tasks than domains" `Quick test_more_tasks_than_domains;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "shutdown semantics" `Quick test_shutdown_semantics;
    Alcotest.test_case "default jobs" `Quick test_default_jobs_env;
    QCheck_alcotest.to_alcotest qcheck_run_trials_jobs_invariant;
    QCheck_alcotest.to_alcotest qcheck_measure_jobs_invariant;
  ]
