(* Symbolic certifier validation.

   The certifier's claims are checked three ways: unit tests on the
   abstract domain and the condition DSL, end-to-end certification of
   catalogue instances whose verdicts were hand-derived (the reset
   overlay's eventual core is the all-Computing singleton, its ranking
   is the declared field order all-ascending, baseline needs the
   descending-role polarity, silent_n_state admits no lexicographic
   ranking at all), and golden certificates pinned byte-for-byte against
   bin/analyze --certify output. The no-fail-fast regressions drive one
   broken instance next to a healthy one through both drivers and
   assert the healthy verdicts survive. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- abstract domain ----------------------------------------------- *)

let test_domain () =
  let open Certify.Domain in
  check_bool "bot is bot" true (is_bot bot);
  check_bool "3 in [1..5]" true (mem 3 (interval ~lo:1 ~hi:5));
  check_bool "0 not in [1..5]" false (mem 0 (interval ~lo:1 ~hi:5));
  check_bool "join of 2 and 4 keeps even parity" true
    (equal (join (of_int 2) (of_int 4)) (Range { lo = 2; hi = 4; parity = Even }));
  check_bool "3 not in even [2..4]" false (mem 3 (join (of_int 2) (of_int 4)));
  check_bool "join of 2 and 3 loses parity" true
    (equal (join (of_int 2) (of_int 3)) (interval ~lo:2 ~hi:3));
  check_bool "bot <= everything" true (leq bot (of_int 7));
  check_bool "[2..4] even <= [0..5]" true (leq (join (of_int 2) (of_int 4)) (interval ~lo:0 ~hi:5));
  check_bool "[0..5] not <= [2..4] even" false
    (leq (interval ~lo:0 ~hi:5) (join (of_int 2) (of_int 4)));
  check_bool "empty interval is bot" true (is_bot (interval ~lo:3 ~hi:2));
  List.iter
    (fun d ->
      match of_json (to_json d) with
      | Ok d' -> check_bool "domain json round-trip" true (equal d d')
      | Error e -> Alcotest.failf "domain json round-trip: %s" e)
    [ bot; of_int 0; of_int 7; interval ~lo:0 ~hi:9; join (of_int 1) (of_int 5) ]

(* --- condition DSL -------------------------------------------------- *)

let test_expr () =
  let open Certify.Expr in
  let fields = [ "kind"; "count" ] in
  let sat c v = compile ~fields c v in
  check_bool "field = const" true (sat (Eq (Field "kind", Const 1)) [| 1; 9 |]);
  check_bool "field = field" false (sat (Eq (Field "kind", Field "count")) [| 1; 9 |]);
  check_bool "le" true (sat (Le (Field "count", Const 9)) [| 0; 9 |]);
  check_bool "not/and/or" true
    (sat (And (Not (Eq (Field "kind", Const 0)), Or (True, Eq (Const 1, Const 2)))) [| 1; 0 |]);
  (match compile ~fields (Eq (Field "nosuch", Const 0)) with
  | exception Unknown_field name -> check_string "unknown field name" "nosuch" name
  | (_ : int array -> bool) -> Alcotest.fail "unknown field accepted");
  let cond = And (Eq (Field "kind", Const 1), Not (Le (Field "count", Const 3))) in
  match cond_of_json (cond_to_json cond) with
  | Ok c' -> check_bool "cond json round-trip" true (equal_cond cond c')
  | Error e -> Alcotest.failf "cond json round-trip: %s" e

(* --- helpers -------------------------------------------------------- *)

let lower (e : _ Engine.Enumerable.t) =
  let ir = Ir.Passes.pipeline e in
  (ir, Certify.Trans.of_ir ir)

let registry_entry key =
  match Analysis.Registry.find key with
  | Some entry -> entry
  | None -> Alcotest.failf "registry entry %s vanished" key

let analyze_and_certify ?(jobs = 2) ~key ~n () =
  let entry = registry_entry key in
  let report =
    Engine.Pool.with_pool ~jobs (fun pool ->
        Analysis.Driver.analyze_entry ~pool ~max_configs:Analysis.Driver.default_max_configs ~n
          entry)
  in
  (report, Certify.Driver.certify_entry ~n ~report entry)

let certificate_exn outcome =
  match outcome.Certify.Driver.certificate with
  | Some c -> c
  | None -> Alcotest.fail "expected a certificate"

(* --- abstract interpretation on the reset overlay ------------------ *)

let test_absint_reset () =
  let ir, trans = lower (Core.Reset_probe.enumerable ~n:4 ()) in
  let abs = Certify.Absint.run ir trans in
  check_bool "range sound" true abs.Certify.Absint.range_sound;
  (* Prop(R_max) and Dorm(D_max) are never produced: counts only shrink
     and fresh dormancy starts the timer after one tick. *)
  check_int "transient states" 2 abs.Certify.Absint.transient_states;
  (* the wave dies: the eventual core is the all-Computing singleton *)
  check_int "eventual core" 1 abs.Certify.Absint.core_states;
  check_bool "eventually silent" true abs.Certify.Absint.eventually_silent;
  check_int "narrowing rounds (one layer per counter value)" 8 abs.Certify.Absint.rounds;
  let kind = List.find (fun f -> f.Certify.Absint.fname = "kind") abs.Certify.Absint.fields in
  check_bool "eventual kind hull is {Computing}" true
    (Certify.Domain.equal kind.Certify.Absint.eventual (Certify.Domain.of_int 0));
  let rc =
    List.find (fun f -> f.Certify.Absint.fname = "resetcount") abs.Certify.Absint.fields
  in
  (* interval slack: R_max itself is declared but never produced *)
  check_bool "output resetcount hull excludes R_max" true
    (Certify.Domain.leq rc.Certify.Absint.outputs (Certify.Domain.interval ~lo:0 ~hi:2))

(* --- inductive props: positives ------------------------------------ *)

let test_props_hold () =
  List.iter
    (fun (key, any) ->
      match any with
      | Analysis.Registry.Any e ->
          let ir, trans = lower e in
          let decls = Certify.Props.catalogue ~key in
          check_bool (key ^ " has declared props") true (decls <> []);
          List.iter
            (fun decl ->
              let r = Certify.Props.check ir trans decl in
              match r.Certify.Props.verdict with
              | Certify.Props.Holds -> ()
              | Certify.Props.Refuted msg ->
                  Alcotest.failf "%s: %s refuted: %s" key decl.Certify.Props.pname msg
              | Certify.Props.Inapplicable msg ->
                  Alcotest.failf "%s: %s inapplicable: %s" key decl.Certify.Props.pname msg)
            decls)
    [
      ("silent_n_state", Analysis.Registry.Any (Core.Silent_n_state.enumerable ~n:5));
      ("baseline", Analysis.Registry.Any (Core.Baseline.enumerable ~n:4));
      ("reset", Analysis.Registry.Any (Core.Reset_probe.enumerable ~n:4 ()));
    ]

(* --- inductive props: negatives ------------------------------------ *)

let test_props_refuted () =
  (* leader-count on silent_n_state is NOT pairwise-inductive: two
     rank-(n-1) agents collide and the responder wraps to rank 0,
     manufacturing a leader *)
  let ir, trans = lower (Core.Silent_n_state.enumerable ~n:4) in
  let decl =
    {
      Certify.Props.pname = "bogus-leader-count";
      form = Certify.Props.Noninc_count (Certify.Expr.Eq (Certify.Expr.Field "rank0", Certify.Expr.Const 0));
    }
  in
  (match (Certify.Props.check ir trans decl).Certify.Props.verdict with
  | Certify.Props.Refuted _ -> ()
  | _ -> Alcotest.fail "wrap-around leader count accepted as inductive");
  (* settled-rank uniqueness on Optimal-Silent relies on the global tree
     structure; pairwise it is refutable *)
  let ir, trans =
    lower
      (Core.Optimal_silent.enumerable
         ~params:{ Core.Params.r_max = 2; d_max = 3; e_max = 3 }
         ~n:3 ())
  in
  let unique =
    {
      Certify.Props.pname = "settled-rank-unique";
      form =
        Certify.Props.Unique
          { key = "rank"; guard = Certify.Expr.Eq (Certify.Expr.Field "kind", Certify.Expr.Const 0) };
    }
  in
  (match (Certify.Props.check ir trans unique).Certify.Props.verdict with
  | Certify.Props.Refuted _ -> ()
  | Certify.Props.Holds -> Alcotest.fail "optimal-silent rank uniqueness is not pairwise-inductive"
  | Certify.Props.Inapplicable msg -> Alcotest.failf "unexpectedly inapplicable: %s" msg);
  (* unknown fields are inapplicable, not a crash *)
  let ir, trans = lower (Core.Baseline.enumerable ~n:4) in
  let ghost =
    {
      Certify.Props.pname = "ghost";
      form = Certify.Props.Noninc_count (Certify.Expr.Eq (Certify.Expr.Field "nosuch", Certify.Expr.Const 0));
    }
  in
  match (Certify.Props.check ir trans ghost).Certify.Props.verdict with
  | Certify.Props.Inapplicable _ -> ()
  | _ -> Alcotest.fail "unknown field should be inapplicable"

(* --- ranking synthesis --------------------------------------------- *)

let test_ranking () =
  let open Certify.Ranking in
  (* baseline needs the descending polarity: Leader = 0 < Follower = 1,
     and L,L -> L,F replaces a leader by a follower *)
  let ir, trans = lower (Core.Baseline.enumerable ~n:4) in
  (match (synthesize ir trans).status with
  | Found [ { field = "role"; descending = true } ] -> ()
  | Found atoms ->
      Alcotest.failf "baseline: unexpected ranking %s"
        (String.concat "," (List.map (fun a -> a.field) atoms))
  | Not_found r | Skipped r -> Alcotest.failf "baseline: no ranking: %s" r);
  check_bool "baseline: ascending role is rejected" true
    (validate ir trans [ { field = "role"; descending = false } ] |> Result.is_error);
  (* the reset overlay: declared field order, all ascending (the
     recruit's tuple is covered by the recruiter's under kind-major
     lexicographic order, Dershowitz-Manna style) *)
  let ir, trans = lower (Core.Reset_probe.enumerable ~n:4 ()) in
  (match (synthesize ir trans).status with
  | Found
      [
        { field = "kind"; descending = false };
        { field = "resetcount"; descending = false };
        { field = "delaytimer"; descending = false };
      ] ->
      ()
  | Found atoms ->
      Alcotest.failf "reset: unexpected ranking %s"
        (String.concat ","
           (List.map (fun a -> a.field ^ if a.descending then "-" else "+") atoms))
  | Not_found r | Skipped r -> Alcotest.failf "reset: no ranking: %s" r);
  check_bool "reset: found ranking re-validates" true
    (validate ir trans
       [
         { field = "kind"; descending = false };
         { field = "resetcount"; descending = false };
         { field = "delaytimer"; descending = false };
       ]
    |> Result.is_ok);
  (* silent_n_state's mod-n wrap defeats every field order and polarity *)
  let ir, trans = lower (Core.Silent_n_state.enumerable ~n:4) in
  (match (synthesize ir trans).status with
  | Not_found _ -> ()
  | Found _ -> Alcotest.fail "silent_n_state: ranking found despite mod-n wrap"
  | Skipped r -> Alcotest.failf "silent_n_state: skipped: %s" r);
  (* loosely-stabilizing protocols never get a silence certificate *)
  let ir, trans = lower (Core.Loose.enumerable ~n:3 ~t_max:4) in
  match (synthesize ir trans).status with
  | Skipped _ -> ()
  | Found _ | Not_found _ -> Alcotest.fail "loose: ranking should be skipped"

(* --- end-to-end verdicts ------------------------------------------- *)

let test_verdicts () =
  List.iter
    (fun (key, n, expected) ->
      let _report, outcome = analyze_and_certify ~key ~n () in
      let cert = certificate_exn outcome in
      check_string (Printf.sprintf "%s n=%d verdict" key n) expected
        (Certify.Certificate.string_of_verdict cert.Certify.Certificate.verdict);
      check_bool
        (Printf.sprintf "%s n=%d: no cross-check conflicts" key n)
        false
        (List.exists
           (fun (c : Certify.Certificate.cross) ->
             c.Certify.Certificate.cverdict = Certify.Certificate.Conflict)
           cert.Certify.Certificate.cross_checks))
    [
      ("baseline", 4, "certified");
      ("reset", 4, "certified");
      ("silent_n_state", 4, "partial");
      ("loose_small", 3, "partial");
    ]

(* the convergence certificate the concrete checker cannot reach: the
   production-scale reset overlay's configuration space dwarfs the
   model-check budget at every n, yet the ranking certifies it *)
let test_reset_production_certified () =
  let report, outcome = analyze_and_certify ~key:"reset_production" ~n:3 () in
  let mc =
    List.find (fun s -> s.Analysis.Report.stage = "model-check") report.Analysis.Report.stages
  in
  check_bool "concrete model check skipped over budget" true
    (mc.Analysis.Report.status = Analysis.Report.Skip);
  let cert = certificate_exn outcome in
  check_string "verdict" "certified"
    (Certify.Certificate.string_of_verdict cert.Certify.Certificate.verdict);
  check_bool "ranking found" true
    (match cert.Certify.Certificate.ranking with
    | Certify.Certificate.Found _ -> true
    | _ -> false);
  check_bool "eventually silent" true cert.Certify.Certificate.eventually_silent;
  check_int "eventual core is the silent singleton" 1 cert.Certify.Certificate.core_states

(* --- escapes fail the certificate without crashing the run --------- *)

let escape_probe () =
  (* a randomized transition that occasionally leaves the declared space:
     memoization marks the pair dynamic, so the escape must be caught by
     the certifier's own coin enumeration, not the memoize pass *)
  let n = 3 in
  let protocol =
    {
      Engine.Protocol.name = "Escape-Probe";
      n;
      transition =
        (fun rng a b -> if Prng.bool rng then (a, b) else (max a b, 2));
      deterministic = false;
      equal = Int.equal;
      pp = Format.pp_print_int;
      rank = (fun _ -> None);
      is_leader = (fun _ -> false);
    }
  in
  Engine.Enumerable.make ~protocol ~states:[ 0; 1 ] ~max_draws:1
    ~expectation:Engine.Enumerable.Stabilizing
    ~correct:(fun _ -> true)
    ~fields:[ { Engine.Enumerable.fname = "v"; frange = 2; fget = Fun.id } ]
    ()

let empty_report ~key =
  {
    Analysis.Report.key;
    protocol = "Escape-Probe";
    n = 3;
    expectation = "stabilizing";
    note = None;
    stages = [];
  }

let test_escape_fails_certificate () =
  let outcome =
    Certify.Driver.certify_enumerable ~key:"escape-probe"
      ~report:(empty_report ~key:"escape-probe") (escape_probe ())
  in
  let cert = certificate_exn outcome in
  check_bool "escapes recorded" true (cert.Certify.Certificate.escape_count > 0);
  check_bool "range unsound" false cert.Certify.Certificate.range_sound;
  check_string "verdict" "failed"
    (Certify.Certificate.string_of_verdict cert.Certify.Certificate.verdict);
  check_bool "stage failed" true
    (outcome.Certify.Driver.stage.Analysis.Report.status = Analysis.Report.Fail)

(* --- no fail-fast masking ------------------------------------------ *)

let test_no_fail_fast () =
  let broken =
    {
      Analysis.Registry.key = "boom";
      summary = "always fails to build";
      table1 = false;
      build = (fun ~n:_ -> failwith "boom");
    }
  in
  let good = registry_entry "silent_n_state" in
  let reports =
    Engine.Pool.with_pool ~jobs:2 (fun pool ->
        Analysis.Driver.analyze_all ~pool ~max_configs:Analysis.Driver.default_max_configs
          ~ns:[ 3 ] [ broken; good ])
  in
  check_int "both instances reported" 2 (List.length reports);
  let broken_report = List.nth reports 0 and good_report = List.nth reports 1 in
  check_bool "broken instance failed" false (Analysis.Report.ok broken_report);
  check_bool "healthy instance still analyzed and passing" true (Analysis.Report.ok good_report);
  check_bool "aggregate verdict fails" false (Analysis.Report.all_ok reports);
  (* same contract for certification *)
  let b = Certify.Driver.certify_entry ~n:3 ~report:broken_report broken in
  check_bool "broken certify stage fails, run survives" true
    (b.Certify.Driver.stage.Analysis.Report.status = Analysis.Report.Fail
    && b.Certify.Driver.certificate = None);
  let g = Certify.Driver.certify_entry ~n:3 ~report:good_report good in
  check_bool "healthy certify stage passes" true
    (g.Certify.Driver.stage.Analysis.Report.status = Analysis.Report.Pass)

(* --- certificate round-trip under QCheck --------------------------- *)

let roundtrip_keys = [| "silent_n_state"; "baseline"; "optimal_silent_small"; "loose_small"; "reset" |]

let qcheck_cert_roundtrip =
  QCheck.Test.make ~name:"certificate round-trip: emit -> strict parse -> re-validate" ~count:10
    QCheck.(pair (int_bound (Array.length roundtrip_keys - 1)) (int_bound 2))
    (fun (pick, n_off) ->
      let key = roundtrip_keys.(pick) in
      let n = 3 + n_off in
      let _report, outcome = analyze_and_certify ~jobs:1 ~key ~n () in
      match outcome.Certify.Driver.certificate with
      | None -> QCheck.Test.fail_reportf "%s n=%d: no certificate" key n
      | Some cert -> (
          (* emit -> strict parse -> structural equality *)
          (match Certify.Certificate.of_string (Certify.Certificate.to_string cert) with
          | Error e -> QCheck.Test.fail_reportf "%s n=%d: parse back failed: %s" key n e
          | Ok cert' ->
              if not (Certify.Certificate.equal cert cert') then
                QCheck.Test.fail_reportf "%s n=%d: round-trip changed the certificate" key n);
          (* a Found ranking must re-validate against a fresh lowering *)
          match cert.Certify.Certificate.ranking with
          | Certify.Certificate.Found atoms -> (
              let entry = registry_entry key in
              match entry.Analysis.Registry.build ~n with
              | Analysis.Registry.Any e -> (
                  let ir, trans = lower e in
                  match Certify.Ranking.validate ir trans atoms with
                  | Ok () -> true
                  | Error e ->
                      QCheck.Test.fail_reportf "%s n=%d: ranking re-validation failed: %s" key n e))
          | Certify.Certificate.Not_found _ | Certify.Certificate.Skipped _ -> true))

(* --- golden certificates ------------------------------------------- *)

let read_file path =
  (* dune runtest runs in _build/default/test; dune exec does not chdir *)
  let path = if Sys.file_exists path then path else Filename.concat "test" path in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden ~key ~n =
  let _report, outcome = analyze_and_certify ~key ~n () in
  let cert = certificate_exn outcome in
  let got = Certify.Certificate.to_string cert ^ "\n" in
  let path = Printf.sprintf "golden/cert_%s_n%d.json" key n in
  let want = read_file path in
  check_string
    (Printf.sprintf "%s certificate matches %s (regenerate: analyze --certify)" key path)
    want got

let test_golden_baseline () = check_golden ~key:"baseline" ~n:4
let test_golden_silent_n_state () = check_golden ~key:"silent_n_state" ~n:4
let test_golden_reset () = check_golden ~key:"reset" ~n:4
let test_golden_reset_production () = check_golden ~key:"reset_production" ~n:4

let suite =
  [
    Alcotest.test_case "interval + parity domain" `Quick test_domain;
    Alcotest.test_case "condition DSL compile/eval/json" `Quick test_expr;
    Alcotest.test_case "absint: reset wave dies into the silent core" `Quick test_absint_reset;
    Alcotest.test_case "declared props are inductive" `Quick test_props_hold;
    Alcotest.test_case "non-inductive props are refuted, unknown fields inapplicable" `Quick
      test_props_refuted;
    Alcotest.test_case "ranking synthesis: polarities, orders, impossibility" `Quick test_ranking;
    Alcotest.test_case "end-to-end verdicts with cross-checks" `Slow test_verdicts;
    Alcotest.test_case "reset_production: certified beyond the model-check budget" `Slow
      test_reset_production_certified;
    Alcotest.test_case "escapes fail the certificate without crashing" `Quick
      test_escape_fails_certificate;
    Alcotest.test_case "one broken instance cannot mask the rest" `Quick test_no_fail_fast;
    QCheck_alcotest.to_alcotest qcheck_cert_roundtrip;
    Alcotest.test_case "golden certificate: baseline" `Quick test_golden_baseline;
    Alcotest.test_case "golden certificate: silent_n_state" `Quick test_golden_silent_n_state;
    Alcotest.test_case "golden certificate: reset" `Quick test_golden_reset;
    Alcotest.test_case "golden certificate: reset_production" `Slow test_golden_reset_production;
  ]
