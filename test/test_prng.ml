(* Tests for the xoshiro256** generator wrapper. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b);
  (* advancing a does not advance b *)
  let _ = Prng.bits64 a in
  let a2 = Prng.bits64 a and b2 = Prng.bits64 b in
  check_bool "copy diverges after extra draw" true (not (Int64.equal a2 b2))

let test_split_differs () =
  let a = Prng.create ~seed:7 in
  let child = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 child) then incr same
  done;
  check_bool "child stream uncorrelated" true (!same < 4)

let test_split_many () =
  let a = Prng.create ~seed:9 in
  let children = Prng.split_many a 5 in
  check_int "count" 5 (Array.length children);
  let firsts = Array.map Prng.bits64 children in
  let distinct = Array.to_list firsts |> List.sort_uniq compare |> List.length in
  check_int "children distinct" 5 distinct

let test_int_bounds () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Prng.int g 7 in
    check_bool "in range" true (x >= 0 && x < 7)
  done

let test_int_uniform () =
  let g = Prng.create ~seed:4 in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let x = Prng.int g 8 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 8 in
      check_bool (Printf.sprintf "bucket %d balanced" i) true (abs (c - expected) < expected / 5))
    counts

let test_int_one () =
  let g = Prng.create ~seed:5 in
  for _ = 1 to 100 do
    check_int "bound 1 gives 0" 0 (Prng.int g 1)
  done

let test_int_in () =
  let g = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Prng.int_in g (-3) 3 in
    check_bool "in closed range" true (x >= -3 && x <= 3)
  done;
  check_int "degenerate range" 9 (Prng.int_in g 9 9)

let test_float_range () =
  let g = Prng.create ~seed:6 in
  for _ = 1 to 10_000 do
    let x = Prng.float g in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_bool_fair () =
  let g = Prng.create ~seed:8 in
  let heads = ref 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    if Prng.bool g then incr heads
  done;
  check_bool "roughly fair" true (abs (!heads - (trials / 2)) < trials / 20)

let test_bernoulli_extremes () =
  let g = Prng.create ~seed:9 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Prng.bernoulli g ~p:0.0);
    check_bool "p=1 always" true (Prng.bernoulli g ~p:1.0)
  done

let test_distinct_pair () =
  let g = Prng.create ~seed:10 in
  for _ = 1 to 10_000 do
    let i, j = Prng.distinct_pair g 5 in
    check_bool "distinct" true (i <> j);
    check_bool "range" true (i >= 0 && i < 5 && j >= 0 && j < 5)
  done

let test_distinct_pair_ordered_uniform () =
  let g = Prng.create ~seed:11 in
  let n = 4 in
  let counts = Hashtbl.create 16 in
  let trials = 120_000 in
  for _ = 1 to trials do
    let p = Prng.distinct_pair g n in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  check_int "all ordered pairs hit" (n * (n - 1)) (Hashtbl.length counts);
  let expected = trials / (n * (n - 1)) in
  Hashtbl.iter
    (fun _ c -> check_bool "pair frequency balanced" true (abs (c - expected) < expected / 5))
    counts

let test_permutation () =
  let g = Prng.create ~seed:12 in
  let p = Prng.permutation g 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_shuffle_multiset () =
  let g = Prng.create ~seed:13 in
  let a = [| 1; 1; 2; 3; 5; 8; 13 |] in
  let b = Array.copy a in
  Prng.shuffle g b;
  Array.sort compare b;
  let a' = Array.copy a in
  Array.sort compare a';
  Alcotest.(check (array int)) "multiset preserved" a' b

let test_bits () =
  let g = Prng.create ~seed:14 in
  check_int "width 0" 0 (Prng.bits g ~width:0);
  for _ = 1 to 1000 do
    let x = Prng.bits g ~width:10 in
    check_bool "10-bit range" true (x >= 0 && x < 1024)
  done;
  (* high bits must actually vary *)
  let top_set = ref false in
  for _ = 1 to 200 do
    if Prng.bits g ~width:10 >= 512 then top_set := true
  done;
  check_bool "top bit occurs" true !top_set

let test_pick () =
  let g = Prng.create ~seed:15 in
  let arr = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    let v = Prng.pick g arr in
    check_bool "member" true (Array.exists (String.equal v) arr)
  done

(* Stream independence of split children. The parallel trial runner
   pre-splits one child per trial, so the children must behave like
   independent uniform streams: their pooled draws must be uniform, the
   first draw must be uniform *across* children (a weak mixing function
   would correlate child i's first output with i), and adjacent children
   must be uncorrelated. Thresholds are generous — these guard against
   gross splitmix/seeding mistakes, not statistical perfection. *)

let chi_square ~buckets counts total =
  let expected = float_of_int total /. float_of_int buckets in
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expected in
      acc +. (d *. d /. expected))
    0.0 counts

let test_split_many_uniform_pooled () =
  let children = Prng.split_many (Prng.create ~seed:2718) 256 in
  let buckets = 16 in
  let per_child = 64 in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun child ->
      for _ = 1 to per_child do
        let b = Prng.int child buckets in
        counts.(b) <- counts.(b) + 1
      done)
    children;
  let chi2 = chi_square ~buckets counts (256 * per_child) in
  (* df = 15; 60 is far beyond the 1e-6 quantile (~44). *)
  check_bool (Printf.sprintf "pooled chi2 %.1f < 60" chi2) true (chi2 < 60.0)

let test_split_many_uniform_across_children () =
  (* One draw per child: uniformity across the child index. *)
  let children = Prng.split_many (Prng.create ~seed:3141) 256 in
  let buckets = 16 in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun child ->
      let b = Prng.int child buckets in
      counts.(b) <- counts.(b) + 1)
    children;
  let chi2 = chi_square ~buckets counts 256 in
  check_bool (Printf.sprintf "first-draw chi2 %.1f < 60" chi2) true (chi2 < 60.0)

let test_split_children_uncorrelated () =
  let children = Prng.split_many (Prng.create ~seed:1618) 11 in
  let samples = 512 in
  let stream child = Array.init samples (fun _ -> Prng.float child) in
  let streams = Array.map stream children in
  let pearson xs ys =
    let mx = Stats.Summary.mean xs and my = Stats.Summary.mean ys in
    let num = ref 0.0 and sx = ref 0.0 and sy = ref 0.0 in
    Array.iteri
      (fun i x ->
        let dx = x -. mx and dy = ys.(i) -. my in
        num := !num +. (dx *. dy);
        sx := !sx +. (dx *. dx);
        sy := !sy +. (dy *. dy))
      xs;
    !num /. sqrt (!sx *. !sy)
  in
  for i = 0 to Array.length streams - 2 do
    let r = pearson streams.(i) streams.(i + 1) in
    check_bool
      (Printf.sprintf "children %d,%d correlation %.3f small" i (i + 1) r)
      true
      (Float.abs r < 0.2)
  done

let qcheck_permutation =
  QCheck.Test.make ~name:"permutation is bijective" ~count:200
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = max 1 n in
      let g = Prng.create ~seed in
      let p = Prng.permutation g n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.for_all Fun.id seen)

let qcheck_int_bound =
  QCheck.Test.make ~name:"int stays within bound" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "split differs" `Quick test_split_differs;
    Alcotest.test_case "split_many distinct" `Quick test_split_many;
    Alcotest.test_case "split_many pooled uniform" `Quick test_split_many_uniform_pooled;
    Alcotest.test_case "split_many uniform across children" `Quick
      test_split_many_uniform_across_children;
    Alcotest.test_case "split children uncorrelated" `Quick test_split_children_uncorrelated;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniform" `Quick test_int_uniform;
    Alcotest.test_case "int bound 1" `Quick test_int_one;
    Alcotest.test_case "int_in" `Quick test_int_in;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bool fair" `Quick test_bool_fair;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "distinct_pair valid" `Quick test_distinct_pair;
    Alcotest.test_case "distinct_pair uniform" `Quick test_distinct_pair_ordered_uniform;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "shuffle multiset" `Quick test_shuffle_multiset;
    Alcotest.test_case "bits" `Quick test_bits;
    Alcotest.test_case "pick" `Quick test_pick;
    QCheck_alcotest.to_alcotest qcheck_permutation;
    QCheck_alcotest.to_alcotest qcheck_int_bound;
  ]
