(* Tests for the exact Markov-chain analysis. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let feq tol = Alcotest.(check (float tol))

(* Linear solver *)

let test_solve_identity () =
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let x = Exact.Linear.solve a [| 3.0; -2.0 |] in
  feq 1e-12 "x0" 3.0 x.(0);
  feq 1e-12 "x1" (-2.0) x.(1)

let test_solve_known_system () =
  (* 2x + y = 5; x - y = 1  =>  x = 2, y = 1 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let x = Exact.Linear.solve a [| 5.0; 1.0 |] in
  feq 1e-12 "x" 2.0 x.(0);
  feq 1e-12 "y" 1.0 x.(1)

let test_solve_needs_pivoting () =
  (* zero pivot in the natural order *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Exact.Linear.solve a [| 7.0; 9.0 |] in
  feq 1e-12 "x" 9.0 x.(0);
  feq 1e-12 "y" 7.0 x.(1)

let test_solve_singular () =
  let a = [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Linear.solve: singular matrix") (fun () ->
      ignore (Exact.Linear.solve a [| 1.0; 2.0 |]))

let test_solve_random_residual () =
  let rng = Prng.create ~seed:5 in
  let n = 20 in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> Prng.float rng -. 0.5)) in
  (* diagonal dominance keeps it well-conditioned *)
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) +. 10.0
  done;
  let b = Array.init n (fun _ -> Prng.float rng) in
  let a_copy = Array.map Array.copy a in
  let x = Exact.Linear.solve a_copy b in
  check_bool "residual tiny" true (Exact.Linear.max_abs_residual a x b < 1e-9)

let test_mat_vec () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Exact.Linear.mat_vec a [| 1.0; 1.0 |] in
  feq 1e-12 "row0" 3.0 y.(0);
  feq 1e-12 "row1" 7.0 y.(1)

(* Chain analysis of Silent-n-state-SSR *)

let binomial n k =
  let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
  go 1 1

let analysis n =
  Exact.Chain.analyze
    ~protocol:(Core.Silent_n_state.protocol ~n)
    ~codec:(Exact.Chain.silent_n_state_codec ~n)

let test_chain_config_counts () =
  List.iter
    (fun n ->
      let a = analysis n in
      check_int
        (Printf.sprintf "C(2n-1, n-1) configurations at n=%d" n)
        (binomial ((2 * n) - 1) (n - 1))
        (Exact.Chain.configurations a))
    [ 3; 4; 5 ]

let test_chain_model_checks_self_stabilization () =
  List.iter
    (fun n ->
      let a = analysis n in
      check_int "unique absorbing configuration" 1 (Exact.Chain.absorbing a);
      check_bool "the silent configuration is correct" true (Exact.Chain.all_absorbing_correct a))
    [ 3; 4; 5; 6 ]

let test_chain_correct_config_time_zero () =
  let n = 4 in
  let a = analysis n in
  feq 1e-12 "already stable" 0.0 (Exact.Chain.expected_time a (Core.Scenarios.silent_correct ~n))

let test_chain_worst_witness () =
  let n = 5 in
  let a = analysis n in
  let worst, witness = Exact.Chain.worst_expected_time a in
  check_int "witness is a configuration" n (Array.length witness);
  check_bool "worst positive" true (worst > 0.0);
  feq 1e-9 "witness attains the worst value" worst (Exact.Chain.expected_time a witness);
  check_bool "mean below worst" true (Exact.Chain.mean_expected_time a < worst)

let test_chain_matches_simulation () =
  let n = 4 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let a = analysis n in
  let init = Core.Scenarios.silent_worst_case ~n in
  let exact = Exact.Chain.expected_time a init in
  let trials = 4000 in
  let root = Prng.create ~seed:31 in
  let acc = ref 0.0 in
  for _ = 1 to trials do
    let rng = Prng.split root in
    let cs = Engine.Count_sim.make ~protocol ~init ~rng () in
    acc := !acc +. (Engine.Count_sim.run_to_silence cs).Engine.Count_sim.stabilization_time
  done;
  let simulated = !acc /. float_of_int trials in
  check_bool
    (Printf.sprintf "simulated %.3f within 10%% of exact %.3f" simulated exact)
    true
    (Float.abs (simulated -. exact) /. exact < 0.1)

let test_chain_matches_engine_across_configurations () =
  (* Not just the worst configuration: sample several distinct starting
     configurations and compare the solved expectation against the count
     engine's mean on each. *)
  let n = 5 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let a = analysis n in
  let configs =
    [
      [| 0; 0; 0; 0; 0 |]; (* all colliding *)
      [| 0; 0; 1; 2; 3 |]; (* one duplicate *)
      [| 0; 0; 2; 2; 4 |]; (* two duplicate pairs *)
      [| 4; 4; 4; 4; 4 |]; (* all at the top: wrap-around heavy *)
      [| 0; 1; 2; 3; 4 |]; (* already correct: exact 0 *)
    ]
  in
  List.iter
    (fun ranks ->
      let init = Array.map (Core.Silent_n_state.state_of_rank0 ~n) ranks in
      let exact = Exact.Chain.expected_time a init in
      if exact = 0.0 then
        check_bool "correct configuration has zero time" true true
      else begin
        let trials = 3000 in
        let root = Prng.create ~seed:77 in
        let acc = ref 0.0 in
        for _ = 1 to trials do
          let rng = Prng.split root in
          let cs = Engine.Count_sim.make ~protocol ~init ~rng () in
          acc := !acc +. (Engine.Count_sim.run_to_silence cs).Engine.Count_sim.stabilization_time
        done;
        let simulated = !acc /. float_of_int trials in
        check_bool
          (Printf.sprintf "config matches within 12%% (exact %.3f vs %.3f)" exact simulated)
          true
          (Float.abs (simulated -. exact) /. exact < 0.12)
      end)
    configs

let test_chain_rejects_randomized () =
  let n = 3 in
  let p = { (Core.Silent_n_state.protocol ~n) with Engine.Protocol.deterministic = false } in
  Alcotest.check_raises "randomized rejected"
    (Invalid_argument "Chain.analyze: protocol is randomized") (fun () ->
      ignore (Exact.Chain.analyze ~protocol:p ~codec:(Exact.Chain.silent_n_state_codec ~n)))

(* A two-state protocol that swaps A and B forever has a recurrent
   non-absorbing configuration {A, B}: analyze must refuse. *)
let swapping_protocol ~n : int Engine.Protocol.t =
  {
    Engine.Protocol.name = "swap-forever";
    n;
    transition = (fun _ a b -> if a <> b then (b, a) else (a, b));
    deterministic = true;
    equal = Int.equal;
    pp = Format.pp_print_int;
    rank = (fun s -> Some (s + 1));
    is_leader = (fun s -> s = 0);
  }

let test_chain_detects_livelock () =
  let codec = { Exact.Chain.size = 2; index = Fun.id; state = Fun.id } in
  Alcotest.check_raises "livelock detected"
    (Failure "Chain.analyze: non-absorbing recurrent class") (fun () ->
      ignore (Exact.Chain.analyze ~protocol:(swapping_protocol ~n:2) ~codec))

(* A protocol with only null transitions is silent everywhere, and most of
   its configurations are incorrect: the safety model-check must say no. *)
let test_chain_flags_incorrect_absorbing () =
  let inert : int Engine.Protocol.t =
    {
      Engine.Protocol.name = "inert";
      n = 3;
      transition = (fun _ a b -> (a, b));
      deterministic = true;
      equal = Int.equal;
      pp = Format.pp_print_int;
      rank = (fun s -> Some (s + 1));
      is_leader = (fun s -> s = 0);
    }
  in
  let codec = { Exact.Chain.size = 3; index = Fun.id; state = Fun.id } in
  let a = Exact.Chain.analyze ~protocol:inert ~codec in
  check_int "everything absorbing" (Exact.Chain.configurations a) (Exact.Chain.absorbing a);
  check_bool "incorrect silent configurations flagged" false (Exact.Chain.all_absorbing_correct a)

let suite =
  [
    Alcotest.test_case "solve identity" `Quick test_solve_identity;
    Alcotest.test_case "solve known system" `Quick test_solve_known_system;
    Alcotest.test_case "solve with pivoting" `Quick test_solve_needs_pivoting;
    Alcotest.test_case "solve singular" `Quick test_solve_singular;
    Alcotest.test_case "solve residual" `Quick test_solve_random_residual;
    Alcotest.test_case "mat_vec" `Quick test_mat_vec;
    Alcotest.test_case "chain config counts" `Quick test_chain_config_counts;
    Alcotest.test_case "chain model-checks stabilization" `Quick test_chain_model_checks_self_stabilization;
    Alcotest.test_case "chain correct config zero" `Quick test_chain_correct_config_time_zero;
    Alcotest.test_case "chain worst witness" `Quick test_chain_worst_witness;
    Alcotest.test_case "chain matches simulation" `Slow test_chain_matches_simulation;
    Alcotest.test_case "chain matches engine across configs" `Slow
      test_chain_matches_engine_across_configurations;
    Alcotest.test_case "chain rejects randomized" `Quick test_chain_rejects_randomized;
    Alcotest.test_case "chain detects livelock" `Quick test_chain_detects_livelock;
    Alcotest.test_case "chain flags incorrect absorbing" `Quick test_chain_flags_incorrect_absorbing;
  ]
