(* Tests for the chaos subsystem: Schedule arrival processes, the spec
   mini-parser, Adversary actions, and the Soak runner. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let n = 16
let horizon = 50_000

let arrivals schedule ~seed =
  Chaos.Schedule.arrivals_until schedule ~rng:(Prng.create ~seed) ~n ~horizon

(* ------------------------------------------------------------------ *)
(* Schedule: QCheck properties.                                       *)

(* Size-capped: a compose tree has at most 8 primitives, so the arrival
   streams stay small enough for the property to run in milliseconds. *)
let schedule_gen =
  QCheck.Gen.(
    sized_size (int_range 1 8) @@ fix (fun self size ->
        if size <= 1 then
          oneof
            [
              map (fun at -> Chaos.Schedule.burst ~at) (int_bound 10_000);
              map (fun every -> Chaos.Schedule.periodic ~every:(1 + every)) (int_bound 5_000);
              map
                (fun r -> Chaos.Schedule.poisson ~rate:(0.001 +. (float_of_int r /. 100.0)))
                (int_bound 200);
            ]
        else map2 Chaos.Schedule.compose (self (size / 2)) (self (size / 2))))

let schedule_arb = QCheck.make ~print:Chaos.Schedule.to_string schedule_gen

let qcheck_schedule_deterministic =
  QCheck.Test.make ~name:"schedule arrivals deterministic given seed" ~count:100
    QCheck.(pair schedule_arb small_int)
    (fun (schedule, seed) ->
      let a = arrivals schedule ~seed in
      let b = arrivals schedule ~seed in
      a = b && List.sort compare a = a)

let qcheck_poisson_monotone_in_rate =
  (* Same seed, higher rate: inter-arrival exponentials scale by 1/rate,
     so every arrival lands pointwise no later and at least as many fit
     under the horizon. *)
  QCheck.Test.make ~name:"poisson arrivals monotone in rate" ~count:100
    QCheck.(triple small_int (int_range 1 200) (int_range 2 8))
    (fun (seed, r, factor) ->
      let rate = float_of_int r /. 1000.0 in
      let lo = arrivals (Chaos.Schedule.poisson ~rate) ~seed in
      let hi = arrivals (Chaos.Schedule.poisson ~rate:(rate *. float_of_int factor)) ~seed in
      List.length hi >= List.length lo
      && List.for_all2 (fun h l -> h <= l) (List.filteri (fun i _ -> i < List.length lo) hi) lo)

let qcheck_compose_conserves_bursts =
  (* Composition is superposition: a compose tree of one-shot bursts
     fires exactly once per burst, at exactly the scheduled interactions
     (multiset equality, duplicates included). *)
  QCheck.Test.make ~name:"compose conserves burst arrivals" ~count:200
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 20) (int_bound horizon)))
    (fun (seed, ats) ->
      let schedule =
        List.fold_left
          (fun acc at -> Chaos.Schedule.compose acc (Chaos.Schedule.burst ~at))
          (Chaos.Schedule.burst ~at:(List.hd ats))
          (List.tl ats)
      in
      arrivals schedule ~seed = List.sort compare ats)

let test_periodic_arrivals () =
  Alcotest.(check (list int))
    "metronome at multiples of every" [ 1000; 2000; 3000 ]
    (Chaos.Schedule.arrivals_until
       (Chaos.Schedule.periodic ~every:1000)
       ~rng:(Prng.create ~seed:5) ~n ~horizon:3999)

let test_schedule_constructors_validate () =
  let raises what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
  in
  raises "burst at negative" (fun () -> Chaos.Schedule.burst ~at:(-1));
  raises "periodic every zero" (fun () -> Chaos.Schedule.periodic ~every:0);
  raises "poisson rate zero" (fun () -> Chaos.Schedule.poisson ~rate:0.0);
  raises "poisson rate nan" (fun () -> Chaos.Schedule.poisson ~rate:Float.nan)

(* ------------------------------------------------------------------ *)
(* Spec mini-parser.                                                  *)

let test_spec_round_trips () =
  List.iter
    (fun spec ->
      match Chaos.Spec.parse spec with
      | Error msg -> Alcotest.fail (Printf.sprintf "parse %S failed: %s" spec msg)
      | Ok parsed -> (
          let rendered = Chaos.Spec.to_string parsed in
          match Chaos.Spec.parse rendered with
          | Error msg ->
              Alcotest.fail (Printf.sprintf "re-parse of %S (from %S) failed: %s" rendered spec msg)
          | Ok reparsed ->
              Alcotest.(check string)
                (Printf.sprintf "round trip of %S" spec)
                rendered (Chaos.Spec.to_string reparsed)))
    [
      "poisson:0.1,corrupt:0.05";
      "periodic:4096,kill-leader";
      "burst:0,duplicate-rank";
      "burst:100+poisson:0.01,stuck:4:2048";
      "corrupt:0.5,periodic:100+burst:7+poisson:2.5";
    ]

let test_spec_rejects_malformed () =
  List.iter
    (fun spec ->
      match Chaos.Spec.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "parse %S should have failed" spec))
    [
      "";
      "poisson:0.1" (* no adversary *);
      "corrupt:0.05" (* no schedule *);
      "poisson:0.1,corrupt:0.05,kill-leader" (* two adversaries *);
      "poisson:0.1,corrupt:1.5" (* fraction out of range *);
      "poisson:-2,corrupt:0.05" (* bad rate *);
      "burst:-1,corrupt:0.05";
      "periodic:0,corrupt:0.05";
      "poisson:0.1,stuck:0:100" (* no agents *);
      "poisson:0.1,stuck:4" (* missing duration *);
      "gamma:3,corrupt:0.05" (* unknown clause *);
      "poisson:abc,corrupt:0.05";
    ]

(* ------------------------------------------------------------------ *)
(* Adversary constructors.                                            *)

let test_adversary_constructors_validate () =
  let raises what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
  in
  raises "corrupt fraction > 1" (fun () -> Chaos.Adversary.corrupt ~fraction:1.5);
  raises "corrupt fraction < 0" (fun () -> Chaos.Adversary.corrupt ~fraction:(-0.1));
  raises "stuck zero agents" (fun () -> Chaos.Adversary.stuck ~agents:0 ~duration:10);
  raises "stuck zero duration" (fun () -> Chaos.Adversary.stuck ~agents:1 ~duration:0);
  Alcotest.(check string)
    "corrupt renders" "corrupt:0.05"
    (Chaos.Adversary.to_string (Chaos.Adversary.corrupt ~fraction:0.05));
  Alcotest.(check string)
    "stuck renders" "stuck:4:2048"
    (Chaos.Adversary.to_string (Chaos.Adversary.stuck ~agents:4 ~duration:2048))

(* ------------------------------------------------------------------ *)
(* Soak runner.                                                       *)

let soak ~kind ~seed ~schedule ~adversary =
  let protocol = Core.Silent_n_state.protocol ~n in
  let rng = Prng.create ~seed in
  let exec =
    Engine.Exec.make ~kind ~protocol ~init:(Core.Scenarios.silent_correct ~n) ~rng ()
  in
  Chaos.Soak.run ~schedule ~adversary
    ~random_state:(fun rng -> Core.Scenarios.silent_random_state rng ~n)
    ~rng ~horizon exec

let test_soak_deterministic () =
  List.iter
    (fun kind ->
      let run () =
        soak ~kind ~seed:31
          ~schedule:
            (Chaos.Schedule.compose
               (Chaos.Schedule.periodic ~every:4000)
               (Chaos.Schedule.poisson ~rate:0.01))
          ~adversary:(Chaos.Adversary.corrupt ~fraction:0.2)
      in
      check_bool
        (Printf.sprintf "identical reports on same seed (%s engine)"
           (Engine.Exec.kind_to_string kind))
        true
        (run () = run ()))
    [ Engine.Exec.Agent; Engine.Exec.Count ]

let test_soak_report_sane () =
  let r =
    soak ~kind:Engine.Exec.Agent ~seed:33
      ~schedule:(Chaos.Schedule.periodic ~every:4000)
      ~adversary:(Chaos.Adversary.corrupt ~fraction:0.25)
  in
  check_int "clock ran to the horizon" horizon r.Chaos.Soak.total_interactions;
  check_bool "availability in [0,1]" true
    (r.Chaos.Soak.availability >= 0.0 && r.Chaos.Soak.availability <= 1.0);
  check_bool "correct share below total" true
    (r.Chaos.Soak.correct_interactions <= r.Chaos.Soak.total_interactions);
  check_int "metronome fired horizon/every times" (horizon / 4000) r.Chaos.Soak.firings;
  check_bool "every firing overwrote agents" true
    (r.Chaos.Soak.faults_applied >= r.Chaos.Soak.firings);
  check_int "bursts split into the three outcomes"
    r.Chaos.Soak.bursts
    (r.Chaos.Soak.absorbed + r.Chaos.Soak.recoveries + r.Chaos.Soak.sla.Chaos.Soak.censored);
  check_int "one recovery time per recovery" r.Chaos.Soak.recoveries
    (Array.length r.Chaos.Soak.recovery_times);
  check_bool "recoveries happened under a gentle metronome" true (r.Chaos.Soak.recoveries >= 1)

let test_soak_stuck_repins () =
  (* A pinned agent must be re-injected whenever it drifts: under a
     one-shot burst with a long pin, repins only ever add faults, and
     every fault after the first firing is a repin. *)
  let r =
    soak ~kind:Engine.Exec.Agent ~seed:35
      ~schedule:(Chaos.Schedule.burst ~at:100)
      ~adversary:(Chaos.Adversary.stuck ~agents:2 ~duration:20_000)
  in
  check_int "single firing" 1 r.Chaos.Soak.firings;
  check_int "repins account for all faults beyond the strike"
    (r.Chaos.Soak.faults_applied - 2)
    r.Chaos.Soak.repins

let test_soak_validates_arguments () =
  let raises what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
  in
  let protocol = Core.Silent_n_state.protocol ~n in
  let make () =
    Engine.Exec.make ~kind:Engine.Exec.Agent ~protocol
      ~init:(Core.Scenarios.silent_correct ~n)
      ~rng:(Prng.create ~seed:36) ()
  in
  let random_state rng = Core.Scenarios.silent_random_state rng ~n in
  raises "horizon zero" (fun () ->
      Chaos.Soak.run
        ~schedule:(Chaos.Schedule.burst ~at:0)
        ~adversary:Chaos.Adversary.kill_leader ~random_state ~rng:(Prng.create ~seed:37)
        ~horizon:0 (make ()));
  raises "sla budget zero" (fun () ->
      Chaos.Soak.run ~sla_budget:0
        ~schedule:(Chaos.Schedule.burst ~at:0)
        ~adversary:Chaos.Adversary.kill_leader ~random_state ~rng:(Prng.create ~seed:38)
        ~horizon:100 (make ()))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_schedule_deterministic;
    QCheck_alcotest.to_alcotest qcheck_poisson_monotone_in_rate;
    QCheck_alcotest.to_alcotest qcheck_compose_conserves_bursts;
    Alcotest.test_case "periodic arrivals" `Quick test_periodic_arrivals;
    Alcotest.test_case "schedule constructors validate" `Quick
      test_schedule_constructors_validate;
    Alcotest.test_case "spec round trips" `Quick test_spec_round_trips;
    Alcotest.test_case "spec rejects malformed" `Quick test_spec_rejects_malformed;
    Alcotest.test_case "adversary constructors validate" `Quick
      test_adversary_constructors_validate;
    Alcotest.test_case "soak deterministic" `Quick test_soak_deterministic;
    Alcotest.test_case "soak report sane" `Quick test_soak_report_sane;
    Alcotest.test_case "soak stuck repins" `Quick test_soak_stuck_repins;
    Alcotest.test_case "soak validates arguments" `Quick test_soak_validates_arguments;
  ]
