(* Tests for the static-analysis subsystem: scripted PRNG replay, exact
   coin-tree enumeration, configuration combinatorics, the four analyzer
   stages (positive and negative), and trace-level invariant preservation
   on the scenario catalogues. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let stage_of (r : Analysis.Report.t) name =
  match List.find_opt (fun (s : Analysis.Report.stage) -> s.Analysis.Report.stage = name) r.Analysis.Report.stages with
  | Some s -> s
  | None -> Alcotest.failf "report for %s has no stage %s" r.Analysis.Report.key name

let metric_of (s : Analysis.Report.stage) key =
  match List.assoc_opt key s.Analysis.Report.metrics with
  | Some v -> v
  | None -> Alcotest.failf "stage %s has no metric %s" s.Analysis.Report.stage key

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec at i = i + lsub <= ls && (String.sub s i lsub = sub || at (i + 1)) in
  at 0

let rank0 ~n r = Core.Silent_n_state.state_of_rank0 ~n r

(* --- scripted Prng ---------------------------------------------------- *)

let test_scripted_replay () =
  let g = Prng.scripted [ 2; 1 ] in
  check_int "first draw follows the script" 2 (Prng.int g 5);
  check_bool "second draw follows the script" true (Prng.bool g);
  check_int "exhausted script answers 0" 0 (Prng.int g 7);
  Alcotest.(check (list (pair int int)))
    "trace records (choice, bound) in draw order"
    [ (2, 5); (1, 2); (0, 7) ]
    (Prng.script_trace g)

let test_scripted_rejects () =
  let g = Prng.scripted [ 9 ] in
  Alcotest.check_raises "out-of-range choice"
    (Invalid_argument "Prng: scripted choice 9 outside [0, 3)") (fun () -> ignore (Prng.int g 3));
  let g = Prng.scripted [] in
  check_bool "unbounded draws raise" true
    (try
       ignore (Prng.bits64 g);
       false
     with Invalid_argument _ -> true);
  check_bool "float raises" true
    (try
       ignore (Prng.float g);
       false
     with Invalid_argument _ -> true);
  check_bool "split raises" true
    (try
       ignore (Prng.split g);
       false
     with Invalid_argument _ -> true)

(* --- coin-tree enumeration ------------------------------------------- *)

let test_coins_deterministic () =
  match Analysis.Coins.enumerate ~max_draws:0 (fun _rng -> 42) with
  | [ { Analysis.Coins.value = 42; trace = [] } ] -> ()
  | _ -> Alcotest.fail "deterministic function must have exactly one traceless outcome"

let test_coins_full_tree () =
  (* bool, then int 3 only on the true branch: 1 + 3 leaves *)
  let outcomes =
    Analysis.Coins.enumerate ~max_draws:2 (fun rng ->
        if Prng.bool rng then (1, Prng.int rng 3) else (0, 99))
  in
  let values = List.map (fun o -> o.Analysis.Coins.value) outcomes in
  Alcotest.(check (list (pair int int)))
    "all leaves visited exactly once"
    [ (0, 99); (1, 0); (1, 1); (1, 2) ]
    (List.sort compare values);
  check_int "leaf count" 4 (List.length values)

let test_coins_draw_guard () =
  check_bool "overdrawing raises" true
    (try
       ignore (Analysis.Coins.enumerate ~max_draws:1 (fun rng ->
                   ignore (Prng.bool rng);
                   Prng.bool rng));
       false
     with Analysis.Coins.Too_many_draws _ -> true)

(* --- configuration combinatorics ------------------------------------- *)

let test_configs_count_matches_iter () =
  List.iter
    (fun (s, n) ->
      let count = ref 0 in
      Analysis.Configs.iter ~states:s ~n (fun _ -> incr count);
      match Analysis.Configs.count ~states:s ~n with
      | Some c -> check_int (Printf.sprintf "C(%d+%d-1,%d)" s n n) c !count
      | None -> Alcotest.fail "small count must not overflow")
    [ (1, 3); (3, 3); (5, 4); (10, 2) ]

let test_configs_keys_injective () =
  let s = 5 and n = 3 in
  let seen = Hashtbl.create 64 in
  Analysis.Configs.iter ~states:s ~n (fun cfg ->
      let k = Analysis.Configs.key ~states:s cfg in
      check_bool "key unseen" false (Hashtbl.mem seen k);
      Hashtbl.replace seen k ());
  check_int "all keys distinct" 35 (Hashtbl.length seen)

let test_configs_replace_pair () =
  let cfg = [| 0; 1; 1; 4 |] in
  Alcotest.(check (array int))
    "replaces one occurrence of each and re-sorts"
    [| 0; 1; 2; 3 |]
    (Analysis.Configs.replace_pair cfg ~a:1 ~b:4 ~a':3 ~b':2);
  Alcotest.(check (array int)) "input untouched" [| 0; 1; 1; 4 |] cfg

(* --- the analyzer on the catalogue ----------------------------------- *)

let with_pool f = Engine.Pool.with_pool ~jobs:2 f

let test_catalogue_passes () =
  (* budget high enough for every *_small instance at n = 3, low enough to
     keep the test fast (production-parameter instances skip model check) *)
  with_pool (fun pool ->
      let reports =
        Analysis.Driver.analyze_all ~pool ~max_configs:5_000 ~ns:[ 3 ] Analysis.Registry.entries
      in
      check_int "one report per entry" (List.length Analysis.Registry.entries)
        (List.length reports);
      List.iter
        (fun r ->
          check_bool
            (Printf.sprintf "%s(n=%d) passes: %s" r.Analysis.Report.key r.Analysis.Report.n
               (Analysis.Report.to_json r))
            true (Analysis.Report.ok r))
        reports)

let test_table1_cross_check () =
  with_pool (fun pool ->
      List.iter
        (fun key ->
          let entry = Option.get (Analysis.Registry.find key) in
          let r = Analysis.Driver.analyze_entry ~pool ~max_configs:1 ~n:4 entry in
          let counts = stage_of r "state-count" in
          check_bool (key ^ " state-count passes") true
            (counts.Analysis.Report.status = Analysis.Report.Pass);
          check_int
            (key ^ " Table 1 count equals enumeration")
            (int_of_string (metric_of counts "table1"))
            (int_of_string (metric_of counts "states")))
        [ "silent_n_state"; "optimal_silent" ])

let test_model_check_silent_n_state () =
  (* n-state SSR at n = 3: the unique bottom SCC is the single silent
     correct ranked configuration *)
  with_pool (fun pool ->
      let entry = Option.get (Analysis.Registry.find "silent_n_state") in
      let r = Analysis.Driver.analyze_entry ~pool ~max_configs:100 ~n:3 entry in
      let mc = stage_of r "model-check" in
      check_bool "model check passes" true (mc.Analysis.Report.status = Analysis.Report.Pass);
      check_int "exactly one bottom SCC" 1 (int_of_string (metric_of mc "bottom"));
      check_int "exactly one correct configuration" 1 (int_of_string (metric_of mc "correct")))

let test_model_check_catches_unrestricted_baseline () =
  (* without the >= 1 leader admissibility restriction the all-followers
     configuration is a silent incorrect bottom SCC: the model checker must
     refuse to certify it *)
  let n = 3 in
  let protocol = Core.Baseline.protocol ~n in
  let unrestricted =
    Engine.Enumerable.make ~protocol
      ~states:[ Core.Baseline.Leader; Core.Baseline.Follower ]
      ~correct:(Engine.Enumerable.unique_leader protocol)
      ~expectation:Engine.Enumerable.Silent_stabilizing ()
  in
  with_pool (fun pool ->
      let r =
        Analysis.Driver.analyze_enumerable ~pool ~max_configs:100 ~key:"baseline-unrestricted"
          ~table1:false unrestricted
      in
      let mc = stage_of r "model-check" in
      check_bool "model check fails" true (mc.Analysis.Report.status = Analysis.Report.Fail);
      check_bool "silence certification fails too" true
        ((stage_of r "silence").Analysis.Report.status = Analysis.Report.Fail))

let test_closure_catches_missing_state () =
  (* declaring only states 0..n-2 of the n-state protocol: the transition
     escapes to n-1 and closure must say so *)
  let n = 3 in
  let truncated =
    Engine.Enumerable.make ~protocol:(Core.Silent_n_state.protocol ~n)
      ~states:[ rank0 ~n 0; rank0 ~n 1 ]
      ()
  in
  with_pool (fun pool ->
      let r =
        Analysis.Driver.analyze_enumerable ~pool ~max_configs:100 ~key:"silent-truncated"
          ~table1:false truncated
      in
      check_bool "closure fails" true
        ((stage_of r "closure").Analysis.Report.status = Analysis.Report.Fail);
      check_bool "model check reports the escape" true
        ((stage_of r "model-check").Analysis.Report.status = Analysis.Report.Fail))

let test_lint_catches_false_invariant () =
  let n = 3 in
  let wrong =
    Engine.Enumerable.make ~protocol:(Core.Silent_n_state.protocol ~n)
      ~states:(List.init n (rank0 ~n))
      ~invariants:
        [ { Engine.Enumerable.iname = "bogus"; holds = (fun s -> (s :> int) < n - 1) } ]
      ()
  in
  with_pool (fun pool ->
      let r =
        Analysis.Driver.analyze_enumerable ~pool ~max_configs:100 ~key:"silent-bogus-invariant"
          ~table1:false wrong
      in
      let lint = stage_of r "invariant-lint" in
      check_bool "lint fails" true (lint.Analysis.Report.status = Analysis.Report.Fail);
      check_bool "counterexample names the invariant" true
        (List.exists (fun f -> contains ~sub:{|invariant "bogus"|} f) lint.Analysis.Report.findings))

let test_json_renders () =
  with_pool (fun pool ->
      let entry = Option.get (Analysis.Registry.find "reset") in
      let r = Analysis.Driver.analyze_entry ~pool ~max_configs:1_000 ~n:3 entry in
      let json = Analysis.Report.list_to_json [ r ] in
      check_bool "mentions the key" true (contains ~sub:{|"key":"reset"|} json);
      check_bool "reports overall verdict" true (contains ~sub:{|"ok":true|} json))

(* --- silence classification edge cases -------------------------------- *)

let test_silence_single_agent_vacuous () =
  let p = Core.Silent_n_state.protocol ~n:2 in
  check_bool "one agent has no ordered pair: silent" true
    (Engine.Silence.configuration_is_silent p [| rank0 ~n:2 0 |])

let test_silence_single_state_multiplicity () =
  let n = 3 in
  let p = Core.Silent_n_state.protocol ~n in
  check_bool "same-state pair is applicable at multiplicity 2" false
    (Engine.Silence.configuration_is_silent p (Array.make n (rank0 ~n 1)));
  check_bool "ranked configuration is silent" true
    (Engine.Silence.configuration_is_silent p (Array.init n (rank0 ~n)))

let test_silence_asymmetric_pair () =
  (* (s1, s0) is productive but (s0, s1) is not: the responder role must be
     tried even when each state has multiplicity 1 *)
  let n = 2 in
  let s0 = rank0 ~n 0 and s1 = rank0 ~n 1 in
  let p =
    {
      (Core.Silent_n_state.protocol ~n) with
      Engine.Protocol.name = "asymmetric-probe";
      transition = (fun _rng a b -> if a = s1 && b = s0 then (s1, s1) else (a, b));
    }
  in
  check_bool "asymmetric productive pair detected" false
    (Engine.Silence.configuration_is_silent p [| s0; s1 |]);
  check_bool "productive order only" false
    (Engine.Silence.configuration_is_silent p [| s1; s0 |])

let test_silence_rejects_randomized () =
  let params = Core.Sublinear.analysis_params ~n:3 in
  let p = Core.Sublinear.protocol ~params ~n:3 ~h:0 () in
  let init = Core.Scenarios.sublinear_fresh (Prng.create ~seed:5) ~params ~n:3 in
  Alcotest.check_raises "randomized protocol rejected"
    (Invalid_argument "Silence.configuration_is_silent: protocol is randomized") (fun () ->
      ignore (Engine.Silence.configuration_is_silent p init))

(* --- Protocol.validate ------------------------------------------------ *)

let test_validate_rank_range () =
  let n = 3 in
  let p = Core.Silent_n_state.protocol ~n in
  check_bool "in-range config accepted" true
    (try
       Engine.Protocol.validate ~config:(Array.init n (rank0 ~n)) p;
       true
     with Invalid_argument _ -> false);
  let shifted =
    {
      p with
      Engine.Protocol.rank = (fun (s : Core.Silent_n_state.state) -> Some ((s :> int) + 10));
    }
  in
  check_bool "out-of-range rank rejected" true
    (try
       Engine.Protocol.validate ~config:[| rank0 ~n 0 |] shifted;
       false
     with Invalid_argument _ -> true)

let test_validate_leader_consistency () =
  let base = Core.Baseline.protocol ~n:3 in
  let broken = { base with Engine.Protocol.is_leader = (fun _ -> true) } in
  check_bool "leader bit must match rank-1 convention" true
    (try
       Engine.Protocol.validate ~config:[| Core.Baseline.Follower |] broken;
       false
     with Invalid_argument _ -> true)

(* --- trace-level invariant preservation (QCheck) ---------------------- *)

(* One simulation property for all protocols: whenever both agents of an
   interaction satisfied the declared invariants beforehand, they still do
   afterwards. Adversarial scenarios may seed invariant-violating states
   (e.g. oversized rosters); those agents are exempt until repaired. *)
let preserves_invariants (type s) ~(protocol : s Engine.Protocol.t)
    ~(invariants : s Engine.Enumerable.invariant list) ~init ~seed ~steps =
  let rng = Prng.create ~seed in
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  let n = protocol.Engine.Protocol.n in
  let holds s = List.for_all (fun inv -> inv.Engine.Enumerable.holds s) invariants in
  let ok = ref true in
  for _ = 1 to steps do
    let before = Array.init n (Engine.Sim.state sim) in
    Engine.Sim.step sim;
    match Engine.Sim.last_pair sim with
    | None -> ()
    | Some (i, j) ->
        if holds before.(i) && holds before.(j) then
          if not (holds (Engine.Sim.state sim i) && holds (Engine.Sim.state sim j)) then
            ok := false
  done;
  !ok

let qcheck_silent_trace_invariants =
  QCheck.Test.make ~name:"silent_n_state scenarios never break declared invariants" ~count:20
    QCheck.(pair (int_range 3 16) small_int)
    (fun (n, seed) ->
      let e = Core.Silent_n_state.enumerable ~n in
      let catalogue = Core.Scenarios.silent_catalogue ~n in
      List.for_all
        (fun (_, gen) ->
          preserves_invariants ~protocol:e.Engine.Enumerable.protocol
            ~invariants:e.Engine.Enumerable.invariants
            ~init:(gen (Prng.create ~seed:(seed + 1)))
            ~seed ~steps:(50 * n))
        catalogue)

let qcheck_optimal_trace_invariants =
  QCheck.Test.make ~name:"optimal_silent scenarios never break declared invariants" ~count:10
    QCheck.(pair (int_range 3 12) small_int)
    (fun (n, seed) ->
      let params = Core.Params.optimal_silent n in
      let e = Core.Optimal_silent.enumerable ~params ~n () in
      let catalogue = Core.Scenarios.optimal_catalogue ~params ~n in
      List.for_all
        (fun (_, gen) ->
          preserves_invariants ~protocol:e.Engine.Enumerable.protocol
            ~invariants:e.Engine.Enumerable.invariants
            ~init:(gen (Prng.create ~seed:(seed + 1)))
            ~seed ~steps:(60 * n))
        catalogue)

let qcheck_sublinear_trace_invariants =
  (* production parameters with history trees (H = 1): the enumerable
     descriptor only covers H = 0, but the invariant list is parameter-
     generic and must hold along any trace *)
  QCheck.Test.make ~name:"sublinear scenarios never break declared invariants" ~count:6
    QCheck.(pair (int_range 4 8) small_int)
    (fun (n, seed) ->
      let params = Core.Params.sublinear ~h:1 n in
      let protocol = Core.Sublinear.protocol ~params ~n ~h:1 () in
      let invariants = Core.Sublinear.invariants ~params ~n in
      let catalogue = Core.Scenarios.sublinear_catalogue ~params ~n in
      List.for_all
        (fun (_, gen) ->
          preserves_invariants ~protocol ~invariants
            ~init:(gen (Prng.create ~seed:(seed + 1)))
            ~seed ~steps:(60 * n))
        catalogue)

let qcheck_loose_trace_invariants =
  QCheck.Test.make ~name:"loose timers stay in range from uniform starts" ~count:20
    QCheck.(pair (int_range 3 16) small_int)
    (fun (n, seed) ->
      let t_max = Core.Loose.default_t_max ~upper_bound:n in
      let e = Core.Loose.enumerable ~n ~t_max in
      preserves_invariants ~protocol:e.Engine.Enumerable.protocol
        ~invariants:e.Engine.Enumerable.invariants
        ~init:(Core.Loose.uniform (Prng.create ~seed:(seed + 1)) ~n ~t_max)
        ~seed ~steps:(50 * n))

let suite =
  [
    Alcotest.test_case "scripted prng replays and records" `Quick test_scripted_replay;
    Alcotest.test_case "scripted prng rejects misuse" `Quick test_scripted_rejects;
    Alcotest.test_case "coins: deterministic" `Quick test_coins_deterministic;
    Alcotest.test_case "coins: full tree" `Quick test_coins_full_tree;
    Alcotest.test_case "coins: draw guard" `Quick test_coins_draw_guard;
    Alcotest.test_case "configs: count matches enumeration" `Quick test_configs_count_matches_iter;
    Alcotest.test_case "configs: keys injective" `Quick test_configs_keys_injective;
    Alcotest.test_case "configs: replace_pair" `Quick test_configs_replace_pair;
    Alcotest.test_case "catalogue passes at n=3" `Slow test_catalogue_passes;
    Alcotest.test_case "Table 1 counts cross-check" `Quick test_table1_cross_check;
    Alcotest.test_case "model check: silent_n_state" `Quick test_model_check_silent_n_state;
    Alcotest.test_case "model check: unrestricted baseline fails" `Quick
      test_model_check_catches_unrestricted_baseline;
    Alcotest.test_case "closure: missing state detected" `Quick test_closure_catches_missing_state;
    Alcotest.test_case "lint: false invariant detected" `Quick test_lint_catches_false_invariant;
    Alcotest.test_case "json report renders" `Quick test_json_renders;
    Alcotest.test_case "silence: single agent" `Quick test_silence_single_agent_vacuous;
    Alcotest.test_case "silence: single state multiplicity" `Quick
      test_silence_single_state_multiplicity;
    Alcotest.test_case "silence: asymmetric ordered pair" `Quick test_silence_asymmetric_pair;
    Alcotest.test_case "silence: randomized rejected" `Quick test_silence_rejects_randomized;
    Alcotest.test_case "validate: rank range" `Quick test_validate_rank_range;
    Alcotest.test_case "validate: leader consistency" `Quick test_validate_leader_consistency;
    QCheck_alcotest.to_alcotest qcheck_silent_trace_invariants;
    QCheck_alcotest.to_alcotest qcheck_optimal_trace_invariants;
    QCheck_alcotest.to_alcotest qcheck_sublinear_trace_invariants;
    QCheck_alcotest.to_alcotest qcheck_loose_trace_invariants;
  ]
