(* Differential cross-engine validation (test hardening pass).

   The per-interaction engine (Engine.Sim) and the count-based engine
   (Engine.Count_sim) sample the same Markov chain, so for a silent
   deterministic protocol the time-to-silence from a fixed initial
   configuration must agree between them *in law*, not just in mean. We
   check Silent-n-state-SSR from the worst-case configuration:

   - a two-sample KS test between the engines' time samples (α = 0.01,
     the most generous level, on fixed seeds);
   - both engines' sample means against the exact Markov-chain expected
     absorption time from Exact.Chain, within normal CI bounds (n ≤ 5,
     where exhaustive enumeration is cheap). *)

let trials = 200

(* Sim engine: step until the configuration is silent; parallel time. *)
let sim_time_to_silence ~n rng =
  let protocol = Core.Silent_n_state.protocol ~n in
  let sim = Engine.Sim.make ~protocol ~init:(Core.Scenarios.silent_worst_case ~n) ~rng in
  let cap = 100_000 * n in
  while
    (not (Engine.Silence.configuration_is_silent protocol (Engine.Sim.snapshot sim)))
    && Engine.Sim.interactions sim < cap
  do
    Engine.Sim.step sim
  done;
  if Engine.Sim.interactions sim >= cap then failwith "sim did not reach silence";
  Engine.Sim.parallel_time sim

(* Count engine: exact event-driven run to silence. *)
let count_time_to_silence ~n rng =
  let protocol = Core.Silent_n_state.protocol ~n in
  let cs = Engine.Count_sim.make ~protocol ~init:(Core.Scenarios.silent_worst_case ~n) ~rng in
  let o = Engine.Count_sim.run_to_silence cs in
  if not o.Engine.Count_sim.silent then failwith "count_sim did not reach silence";
  o.Engine.Count_sim.stabilization_time

let samples ~n ~seed body =
  Experiments.Exp_common.run_trials ~jobs:2 ~trials ~seed (fun rng -> body ~n rng)

let test_engines_agree_in_law () =
  List.iter
    (fun n ->
      let sim = samples ~n ~seed:(4100 + n) sim_time_to_silence in
      let count = samples ~n ~seed:(4200 + n) count_time_to_silence in
      let d = Stats.Ks.statistic sim count in
      Alcotest.(check bool)
        (Printf.sprintf "KS accepts Sim vs Count_sim at n=%d (D=%.3f)" n d)
        true
        (Stats.Ks.same_distribution ~alpha:Stats.Ks.P01 sim count))
    [ 4; 5; 6 ]

let exact_expected_time ~n =
  let protocol = Core.Silent_n_state.protocol ~n in
  let codec = Exact.Chain.silent_n_state_codec ~n in
  let analysis = Exact.Chain.analyze ~protocol ~codec in
  Exact.Chain.expected_time analysis (Core.Scenarios.silent_worst_case ~n)

let check_mean_matches_exact ~label ~exact xs =
  let mean = Stats.Summary.mean xs in
  let slack = (4.0 *. Stats.Summary.sem xs) +. 1e-9 in
  Alcotest.(check bool)
    (Printf.sprintf "%s mean %.3f within %.3f of exact %.3f" label mean slack exact)
    true
    (Float.abs (mean -. exact) <= slack)

let test_means_match_exact_chain () =
  List.iter
    (fun n ->
      let exact = exact_expected_time ~n in
      check_mean_matches_exact ~label:(Printf.sprintf "Sim n=%d" n) ~exact
        (samples ~n ~seed:(4300 + n) sim_time_to_silence);
      check_mean_matches_exact
        ~label:(Printf.sprintf "Count_sim n=%d" n)
        ~exact
        (samples ~n ~seed:(4400 + n) count_time_to_silence))
    [ 4; 5 ]

let suite =
  [
    Alcotest.test_case "engines agree in law (KS)" `Slow test_engines_agree_in_law;
    Alcotest.test_case "engine means match exact chain" `Slow test_means_match_exact_chain;
  ]
