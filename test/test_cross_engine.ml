(* Differential cross-engine validation (test hardening pass).

   The per-interaction engine (Engine.Sim) and the count-based engine
   (Engine.Count_sim) sample the same Markov chain, so for a silent
   deterministic protocol the time-to-silence from a fixed initial
   configuration must agree between them *in law*, not just in mean. We
   check Silent-n-state-SSR from the worst-case configuration:

   - a two-sample KS test between the engines' time samples (α = 0.01,
     the most generous level, on fixed seeds);
   - both engines' sample means against the exact Markov-chain expected
     absorption time from Exact.Chain, within normal CI bounds (n ≤ 5,
     where exhaustive enumeration is cheap). *)

let trials = 200

(* Sim engine: step until the configuration is silent; parallel time. *)
let sim_time_to_silence ~n rng =
  let protocol = Core.Silent_n_state.protocol ~n in
  let sim = Engine.Sim.make ~protocol ~init:(Core.Scenarios.silent_worst_case ~n) ~rng in
  let cap = 100_000 * n in
  while
    (not (Engine.Silence.configuration_is_silent protocol (Engine.Sim.snapshot sim)))
    && Engine.Sim.interactions sim < cap
  do
    Engine.Sim.step sim
  done;
  if Engine.Sim.interactions sim >= cap then failwith "sim did not reach silence";
  Engine.Sim.parallel_time sim

(* Count engine: exact event-driven run to silence. *)
let count_time_to_silence ~n rng =
  let protocol = Core.Silent_n_state.protocol ~n in
  let cs = Engine.Count_sim.make ~protocol ~init:(Core.Scenarios.silent_worst_case ~n) ~rng () in
  let o = Engine.Count_sim.run_to_silence cs in
  if not o.Engine.Count_sim.silent then failwith "count_sim did not reach silence";
  o.Engine.Count_sim.stabilization_time

let samples ~n ~seed body =
  Experiments.Exp_common.run_trials ~jobs:2 ~trials ~seed (fun rng -> body ~n rng)

let test_engines_agree_in_law () =
  List.iter
    (fun n ->
      let sim = samples ~n ~seed:(4100 + n) sim_time_to_silence in
      let count = samples ~n ~seed:(4200 + n) count_time_to_silence in
      let d = Stats.Ks.statistic sim count in
      Alcotest.(check bool)
        (Printf.sprintf "KS accepts Sim vs Count_sim at n=%d (D=%.3f)" n d)
        true
        (Stats.Ks.same_distribution ~alpha:Stats.Ks.P01 sim count))
    [ 4; 5; 6 ]

let exact_expected_time ~n =
  let protocol = Core.Silent_n_state.protocol ~n in
  let codec = Exact.Chain.silent_n_state_codec ~n in
  let analysis = Exact.Chain.analyze ~protocol ~codec in
  Exact.Chain.expected_time analysis (Core.Scenarios.silent_worst_case ~n)

let check_mean_matches_exact ~label ~exact xs =
  let mean = Stats.Summary.mean xs in
  let slack = (4.0 *. Stats.Summary.sem xs) +. 1e-9 in
  Alcotest.(check bool)
    (Printf.sprintf "%s mean %.3f within %.3f of exact %.3f" label mean slack exact)
    true
    (Float.abs (mean -. exact) <= slack)

let test_means_match_exact_chain () =
  List.iter
    (fun n ->
      let exact = exact_expected_time ~n in
      check_mean_matches_exact ~label:(Printf.sprintf "Sim n=%d" n) ~exact
        (samples ~n ~seed:(4300 + n) sim_time_to_silence);
      check_mean_matches_exact
        ~label:(Printf.sprintf "Count_sim n=%d" n)
        ~exact
        (samples ~n ~seed:(4400 + n) count_time_to_silence))
    [ 4; 5 ]

(* Chaos differential: the same seeded fault schedule driven through
   Chaos.Soak on both engines must yield the same *distribution* of
   recovery times. The schedule is periodic (consumes no randomness, so
   strikes land on identical interaction indices on both engines) and the
   adversary corrupts a fraction with random ranks; only the trajectories
   differ between engines, so the pooled per-burst recovery times are two
   samples from one law. *)
let chaos_recovery_times ~kind ~n ~seed =
  let schedule = Chaos.Schedule.periodic ~every:2000 in
  let adversary = Chaos.Adversary.corrupt ~fraction:0.25 in
  Experiments.Exp_common.run_trials ~jobs:2 ~trials:120 ~seed (fun rng ->
      let protocol = Core.Silent_n_state.protocol ~n in
      let exec =
        Engine.Exec.make ~kind ~protocol ~init:(Core.Scenarios.silent_correct ~n) ~rng ()
      in
      let report =
        Chaos.Soak.run ~schedule ~adversary
          ~random_state:(fun rng -> Core.Scenarios.silent_random_state rng ~n)
          ~rng ~horizon:80_000 exec
      in
      report.Chaos.Soak.recovery_times)
  |> Array.to_list |> List.concat_map Array.to_list |> Array.of_list

let test_chaos_recovery_agrees_in_law () =
  let n = 8 in
  let agent = chaos_recovery_times ~kind:Engine.Exec.Agent ~n ~seed:4500 in
  let count = chaos_recovery_times ~kind:Engine.Exec.Count ~n ~seed:4600 in
  Alcotest.(check bool)
    (Printf.sprintf "enough recoveries pooled (agent %d, count %d)" (Array.length agent)
       (Array.length count))
    true
    (Array.length agent >= 50 && Array.length count >= 50);
  let d = Stats.Ks.statistic agent count in
  Alcotest.(check bool)
    (Printf.sprintf "KS accepts chaos recovery times across engines (D=%.3f)" d)
    true
    (Stats.Ks.same_distribution ~alpha:Stats.Ks.P01 agent count)

(* Faults that plant never-seen counter states: Optimal-Silent's correct
   configuration has a small live support, and a random corruption
   injects resetcount/delaytimer states no probe has ever evaluated. The
   count engine discovers those cells only at injection time (the
   stale-closure regression this guards against), and the recovery law
   must still match the agent engine's. *)
let optimal_fault_recovery_times ~make_exec ~n ~seed =
  Experiments.Exp_common.run_trials ~jobs:2 ~trials:150 ~seed (fun rng ->
      let params = Core.Params.optimal_silent n in
      let protocol = Core.Optimal_silent.protocol ~params ~n () in
      let exec = make_exec ~protocol ~init:(Core.Scenarios.optimal_correct ~n) ~rng in
      ignore
        (Engine.Exec.corrupt exec ~rng ~fraction:0.25 (fun rng ->
             Core.Scenarios.optimal_random_state rng ~params ~n));
      let o =
        Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
          ~max_interactions:(10_000 * n)
          ~confirm_interactions:(Engine.Runner.default_confirm ~n)
          exec
      in
      if not o.Engine.Runner.converged then failwith "recovery did not converge";
      o.Engine.Runner.convergence_time)

let check_ks ~label a b =
  let d = Stats.Ks.statistic a b in
  Alcotest.(check bool)
    (Printf.sprintf "%s (KS D=%.3f)" label d)
    true
    (Stats.Ks.same_distribution ~alpha:Stats.Ks.P01 a b)

let test_fault_novel_states_agree_in_law () =
  let n = 12 in
  let agent =
    optimal_fault_recovery_times ~n ~seed:4700 ~make_exec:(fun ~protocol ~init ~rng ->
        Engine.Exec.make ~kind:Engine.Exec.Agent ~protocol ~init ~rng ())
  in
  let count =
    optimal_fault_recovery_times ~n ~seed:4800 ~make_exec:(fun ~protocol ~init ~rng ->
        Engine.Exec.make ~kind:Engine.Exec.Count ~protocol ~init ~rng ())
  in
  check_ks ~label:"recovery from never-seen states agrees across engines" agent count

let test_lazy_count_recovery_agrees_in_law () =
  (* Same differential, but the count engine is forced fully lazy
     (init_probe:false): no drain, every pair probed on demand, silence
     oracle three-valued — the Runner falls back to its confirmation
     window, and the law must still match the agent engine's. *)
  let n = 12 in
  let agent =
    optimal_fault_recovery_times ~n ~seed:4900 ~make_exec:(fun ~protocol ~init ~rng ->
        Engine.Exec.make ~kind:Engine.Exec.Agent ~protocol ~init ~rng ())
  in
  let lazy_count =
    optimal_fault_recovery_times ~n ~seed:5000 ~make_exec:(fun ~protocol ~init ~rng ->
        Engine.Exec.of_count_sim
          (Engine.Count_sim.make ~init_probe:false ~protocol ~init ~rng ()))
  in
  check_ks ~label:"lazy count engine recovery agrees with agent engine" agent lazy_count

let suite =
  [
    Alcotest.test_case "engines agree in law (KS)" `Slow test_engines_agree_in_law;
    Alcotest.test_case "engine means match exact chain" `Slow test_means_match_exact_chain;
    Alcotest.test_case "chaos recovery agrees in law (KS)" `Slow
      test_chaos_recovery_agrees_in_law;
    Alcotest.test_case "faults with never-seen states agree in law (KS)" `Slow
      test_fault_novel_states_agree_in_law;
    Alcotest.test_case "lazy count recovery agrees in law (KS)" `Slow
      test_lazy_count_recovery_agrees_in_law;
  ]
