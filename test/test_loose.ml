(* Tests for the loosely-stabilizing leader election protocol. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_transition_rules () =
  let t_max = 10 in
  let p = Core.Loose.protocol ~n:4 ~t_max in
  let rng = Prng.create ~seed:1 in
  let l timer = { Core.Loose.leader = true; timer } in
  let f timer = { Core.Loose.leader = false; timer } in
  (* leader refreshes itself, follower takes the shared (decayed) timer *)
  (match p.Engine.Protocol.transition rng (l 3) (f 7) with
  | a, b ->
      check_bool "leader keeps leading" true a.Core.Loose.leader;
      check_int "leader timer refreshed" t_max a.Core.Loose.timer;
      check_bool "follower stays" false b.Core.Loose.leader;
      check_int "follower takes max-1" 6 b.Core.Loose.timer);
  (* two leaders annihilate to one *)
  (match p.Engine.Protocol.transition rng (l 5) (l 9) with
  | a, b ->
      check_bool "initiator survives" true a.Core.Loose.leader;
      check_bool "responder demoted" false b.Core.Loose.leader);
  (* timeout: two followers at rock bottom mint a leader *)
  match p.Engine.Protocol.transition rng (f 1) (f 1) with
  | a, b ->
      check_bool "exactly one leader minted" true (a.Core.Loose.leader <> b.Core.Loose.leader)

let test_timer_floor () =
  let p = Core.Loose.protocol ~n:4 ~t_max:5 in
  let rng = Prng.create ~seed:2 in
  let f timer = { Core.Loose.leader = false; timer } in
  match p.Engine.Protocol.transition rng (f 0) (f 0) with
  | a, b ->
      check_bool "no negative timers" true (a.Core.Loose.timer >= 0 && b.Core.Loose.timer >= 0)

let converge_leader ~protocol ~init ~seed ~horizon =
  let rng = Prng.create ~seed in
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  while (not (Engine.Sim.leader_correct sim)) && Engine.Sim.interactions sim < horizon do
    Engine.Sim.step sim
  done;
  (sim, Engine.Sim.leader_correct sim)

let test_recovers_from_all_followers () =
  (* The configuration that kills initialized leader election. *)
  let n = 24 in
  let t_max = 4 * n in
  let protocol = Core.Loose.protocol ~n ~t_max in
  let _, ok =
    converge_leader ~protocol ~init:(Core.Loose.all_followers ~n ~t_max) ~seed:3
      ~horizon:(100 * t_max * n)
  in
  check_bool "leader created from zero leaders" true ok

let test_recovers_from_uniform () =
  let n = 24 in
  let t_max = 4 * n in
  let protocol = Core.Loose.protocol ~n ~t_max in
  let rng = Prng.create ~seed:4 in
  let _, ok =
    converge_leader ~protocol ~init:(Core.Loose.uniform rng ~n ~t_max) ~seed:5
      ~horizon:(100 * t_max * n)
  in
  check_bool "unique leader from random configuration" true ok

let test_same_rules_work_below_the_bound () =
  (* One transition table (one t_max) across different population sizes:
     the uniformity SSLE provably cannot have (Theorem 2.1). *)
  let t_max = 128 in
  List.iter
    (fun n ->
      let protocol = Core.Loose.protocol ~n ~t_max in
      let _, ok =
        converge_leader ~protocol ~init:(Core.Loose.all_followers ~n ~t_max) ~seed:(6 + n)
          ~horizon:(200 * t_max * n)
      in
      check_bool (Printf.sprintf "converges at n=%d with shared rules" n) true ok)
    [ 8; 16; 32 ]

let test_holding_is_finite_for_small_t_max () =
  (* With a tiny timer budget, false timeouts come fast: the leader is not
     held forever (loose, not self-, stabilization). *)
  let n = 16 in
  let t_max = 6 in
  let protocol = Core.Loose.protocol ~n ~t_max in
  let sim, ok =
    converge_leader ~protocol ~init:(Core.Loose.all_followers ~n ~t_max) ~seed:9
      ~horizon:(1000 * t_max * n)
  in
  check_bool "converged first" true ok;
  let start = Engine.Sim.interactions sim in
  let budget = 2_000_000 in
  while Engine.Sim.leader_correct sim && Engine.Sim.interactions sim - start < budget do
    Engine.Sim.step sim
  done;
  check_bool "leadership eventually lost with tiny T_max" true
    (not (Engine.Sim.leader_correct sim))

let test_default_t_max () =
  check_bool "grows with N" true
    (Core.Loose.default_t_max ~upper_bound:128 > Core.Loose.default_t_max ~upper_bound:16);
  Alcotest.check_raises "bad bound" (Invalid_argument "Loose.default_t_max: upper bound must be >= 2")
    (fun () -> ignore (Core.Loose.default_t_max ~upper_bound:1))

let test_observations () =
  let p = Core.Loose.protocol ~n:4 ~t_max:5 in
  check_bool "leader observed" true (p.Engine.Protocol.is_leader { Core.Loose.leader = true; timer = 3 });
  Alcotest.(check (option int)) "leader rank 1" (Some 1)
    (p.Engine.Protocol.rank { Core.Loose.leader = true; timer = 3 });
  Alcotest.(check (option int)) "follower unranked" None
    (p.Engine.Protocol.rank { Core.Loose.leader = false; timer = 3 })

let suite =
  [
    Alcotest.test_case "transition rules" `Quick test_transition_rules;
    Alcotest.test_case "timer floor" `Quick test_timer_floor;
    Alcotest.test_case "recovers from all followers" `Quick test_recovers_from_all_followers;
    Alcotest.test_case "recovers from uniform" `Quick test_recovers_from_uniform;
    Alcotest.test_case "one table, many sizes" `Slow test_same_rules_work_below_the_bound;
    Alcotest.test_case "finite holding for small T_max" `Slow test_holding_is_finite_for_small_t_max;
    Alcotest.test_case "default t_max" `Quick test_default_t_max;
    Alcotest.test_case "observations" `Quick test_observations;
  ]
