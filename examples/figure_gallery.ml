(* Figure gallery: print the reproductions of the paper's two figures.

   - Figure 1: the binary-tree rank assignment of Optimal-Silent-SSR at
     n = 12 with 8 settled agents;
   - Figure 2: the two example executions of Detect-Name-Collision's
     history trees, with the caption's consistency checks.

     dune exec examples/figure_gallery.exe *)

let () =
  print_endline "===== Figure 1: rank assignment in Optimal-Silent-SSR (n = 12) =====\n";
  print_string (Experiments.Exp_figures.figure1_tree ~n:12 ~settled:8);
  print_endline "";
  print_endline "===== Figure 2: history trees in Detect-Name-Collision =====\n";
  print_string (Experiments.Exp_figures.figure2_script ())
