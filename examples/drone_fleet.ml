(* Drone fleet coordination: composing computation on top of ranking.

   Self-stabilizing protocols compose with later computation (paper,
   Section 1: "a self-stabilizing protocol S can be composed with a prior
   computation P"). Here the composition runs the other way round, the way
   the paper motivates ranking: once Optimal-Silent-SSR has ranked the
   fleet, the ranks form a full binary tree (rank r's parent is r/2), and
   that tree is a ready-made aggregation overlay. Each drone reports its
   battery level; minima flow up the tree to the leader (rank 1) whenever
   tree-adjacent drones happen to interact — still with no scheduler
   control whatsoever.

   The example also crashes the leader mid-flight (a transient fault that
   hands it an arbitrary corrupted state) and shows the fleet re-ranks and
   the aggregation heals.

     dune exec examples/drone_fleet.exe *)

(* Composed state: the ranking protocol's state plus the aggregation
   overlay (own battery, best-known minimum of the subtree). *)
type drone = {
  ranking : Core.Optimal_silent.state;
  battery : int;  (** percent, static for the demo *)
  subtree_min : int;  (** min battery seen in this drone's rank-subtree *)
}

let composed_protocol ~params ~n : drone Engine.Protocol.t =
  let inner = Core.Optimal_silent.protocol ~params ~n () in
  let transition rng a b =
    let ra, rb = inner.Engine.Protocol.transition rng a.ranking b.ranking in
    let a = { a with ranking = ra } and b = { b with ranking = rb } in
    (* Aggregation overlay: when child meets parent (by current ranks),
       the parent absorbs the child's subtree minimum. A reset clears the
       overlay implicitly because ranks disappear while Resetting. *)
    let aggregate x y =
      match (inner.Engine.Protocol.rank x.ranking, inner.Engine.Protocol.rank y.ranking) with
      | Some rx, Some ry when ry >= 2 && ry / 2 = rx ->
          ({ x with subtree_min = min x.subtree_min y.subtree_min }, y)
      | _ -> (x, y)
    in
    let a, b = aggregate a b in
    let b, a = aggregate b a in
    (* own battery is always part of one's subtree *)
    let refresh d = { d with subtree_min = min d.battery d.subtree_min } in
    (refresh a, refresh b)
  in
  {
    Engine.Protocol.name = "drone-fleet (ranking + battery aggregation)";
    n;
    transition;
    deterministic = inner.Engine.Protocol.deterministic;
    equal = (fun x y -> inner.Engine.Protocol.equal x.ranking y.ranking
                        && x.battery = y.battery && x.subtree_min = y.subtree_min);
    pp = (fun fmt d -> Format.fprintf fmt "%a bat=%d min=%d" inner.Engine.Protocol.pp d.ranking d.battery d.subtree_min);
    rank = (fun d -> inner.Engine.Protocol.rank d.ranking);
    is_leader = (fun d -> inner.Engine.Protocol.is_leader d.ranking);
  }

let () =
  let n = 31 in
  (* a full binary tree: 31 = 2^5 - 1 *)
  let params = Core.Params.optimal_silent n in
  let protocol = composed_protocol ~params ~n in
  let rng = Prng.create ~seed:2024 in
  let batteries = Array.init n (fun _ -> 20 + Prng.int rng 80) in
  let init =
    let ranking = Core.Scenarios.optimal_uniform rng ~params ~n in
    Array.init n (fun i -> { ranking = ranking.(i); battery = batteries.(i); subtree_min = batteries.(i) })
  in
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  let exec = Engine.Exec.of_sim sim in
  let stabilize label =
    let start = Engine.Sim.parallel_time sim in
    let o =
      Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
        ~max_interactions:
          (Engine.Sim.interactions sim
          + Engine.Runner.default_horizon ~n ~expected_time:(float_of_int (20 * n)))
        ~confirm_interactions:(Engine.Runner.default_confirm ~n)
        exec
    in
    Printf.printf "%s: ranked fleet after %.1f time units\n" label
      (o.Engine.Runner.convergence_time -. start)
  in
  stabilize "deployment";
  (* Let the aggregation overlay flow for a while (tree depth ~5 hops). *)
  Engine.Sim.run sim (40 * n * 5);
  let leader_view () =
    let snapshot = Engine.Sim.snapshot sim in
    let leader = List.hd (Core.Leader_election.leader_indices protocol snapshot) in
    (leader, snapshot.(leader).subtree_min)
  in
  let fleet_min = Array.fold_left min max_int batteries in
  let leader, seen = leader_view () in
  Printf.printf "leader (drone %d) reports fleet minimum battery %d%% (ground truth %d%%)\n"
    leader seen fleet_min;
  (* Crash the leader: it reboots with blank, starving memory, which the
     fleet can only discover through the protocol itself. *)
  Engine.Sim.inject sim leader
    { (Engine.Sim.state sim leader) with
      ranking = Core.Optimal_silent.unsettled ~errorcount:0 };
  Printf.printf "\n!! leader drone %d suffered a memory fault\n" leader;
  stabilize "recovery";
  Engine.Sim.run sim (40 * n * 5);
  let leader', seen' = leader_view () in
  Printf.printf "new leader (drone %d) reports fleet minimum battery %d%% (ground truth %d%%)\n"
    leader' seen' fleet_min
