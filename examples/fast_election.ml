(* Fast election: Sublinear-Time-SSR with H = ⌈log₂ n⌉ — the paper's
   time-optimal Θ(log n) protocol — recovering from a hidden name
   collision, with a live timeline of what the population is doing.

   The scenario is the hardest one: two agents carry the same name and
   every roster already holds the n−1 distinct names, so the fault is
   invisible to the roster-size check and must be caught by the
   history-tree collision detection (Protocols 7–8), which then drives a
   global reset (Protocol 2) and a fresh ranking.

     dune exec examples/fast_election.exe *)

let () =
  let n = 16 in
  let h = Core.Params.h_log n in
  let params = Core.Params.sublinear ~h n in
  let protocol = Core.Sublinear.protocol ~params ~n ~h () in
  let rng = Prng.create ~seed:11 in
  let init = Core.Scenarios.sublinear_name_collision rng ~params ~n in
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  Printf.printf "n=%d agents, H=%d, T_H=%d, D_max=%d — hidden name collision planted\n\n" n h
    params.Core.Params.t_h params.Core.Params.d_max;
  let phase () =
    let resetting = ref 0 and collecting = ref 0 in
    Engine.Sim.fold_states sim ~init:() ~f:(fun () s ->
        match s with
        | Core.Reset.Resetting _ -> incr resetting
        | Core.Reset.Computing _ -> incr collecting);
    if !resetting = 0 then
      if Engine.Sim.ranking_correct sim then "RANKED" else "collecting"
    else Printf.sprintf "resetting (%d/%d agents)" !resetting n
  in
  (* Timeline via the Instrument event layer: a collector subscribed to
     the executor samples the phase description every n/2 interactions. *)
  let exec = Engine.Exec.of_sim sim in
  let collector = Engine.Instrument.collector ~interval:(n / 2) () in
  Engine.Exec.on exec (Engine.Instrument.sampled collector phase);
  let outcome =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
      ~max_interactions:
        (Engine.Runner.default_horizon ~n
           ~expected_time:(float_of_int (params.Core.Params.d_max + (8 * params.Core.Params.t_h))))
      ~confirm_interactions:(Engine.Runner.default_confirm ~n)
      exec
  in
  (* Print the timeline, collapsing runs of identical phases. *)
  let previous = ref "" in
  List.iter
    (fun (t, p) ->
      if p <> !previous then begin
        Printf.printf "t=%6.1f  %s\n" t p;
        previous := p
      end)
    (Engine.Instrument.series collector);
  Printf.printf "\nstabilized in %.1f parallel time units (%d interactions, %d re-checks failed)\n"
    outcome.Engine.Runner.convergence_time outcome.Engine.Runner.total_interactions
    outcome.Engine.Runner.violations;
  let leader = Core.Leader_election.leader_indices protocol (Engine.Sim.snapshot sim) in
  Printf.printf "leader: agent %s (the lexicographically smallest fresh name)\n"
    (String.concat "," (List.map string_of_int leader))
