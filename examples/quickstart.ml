(* Quickstart: elect a leader (and rank every agent) starting from a fully
   adversarial configuration, using Optimal-Silent-SSR.

     dune exec examples/quickstart.exe *)

let () =
  let n = 32 in
  let seed = 42 in
  (* 1. Build the protocol. Protocols are strongly nonuniform (Theorem 2.1
     of the paper): they are compiled for one exact population size. *)
  let params = Core.Params.optimal_silent n in
  let protocol = Core.Optimal_silent.protocol ~params ~n () in
  (* 2. Pick an initial configuration. Self-stabilization means ANY
     configuration works; take independently uniform adversarial states. *)
  let rng = Prng.create ~seed in
  let init = Core.Scenarios.optimal_uniform rng ~params ~n in
  (* 3. Simulate until the ranking stabilizes. The agent engine handles any
     protocol; for deterministic protocols with compact state spaces the
     count engine (~kind:Engine.Exec.Count) scales to thousands of agents. *)
  let exec = Engine.Exec.make ~kind:Engine.Exec.Agent ~protocol ~init ~rng () in
  let outcome =
    Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
      ~max_interactions:(Engine.Runner.default_horizon ~n ~expected_time:(float_of_int (20 * n)))
      ~confirm_interactions:(Engine.Runner.default_confirm ~n) exec
  in
  Printf.printf "stabilized: %b after %.1f parallel time (%d interactions)\n"
    outcome.Engine.Runner.converged outcome.Engine.Runner.convergence_time
    outcome.Engine.Runner.total_interactions;
  (* 4. Inspect the result: a unique leader and ranks 1..n. *)
  let leaders = Core.Leader_election.leader_indices protocol (Engine.Exec.snapshot exec) in
  Printf.printf "leader agent: %s\n"
    (String.concat ", " (List.map string_of_int leaders));
  Printf.printf "agent ranks : ";
  for i = 0 to n - 1 do
    match protocol.Engine.Protocol.rank (Engine.Exec.state exec i) with
    | Some r -> Printf.printf "%d " r
    | None -> Printf.printf "? "
  done;
  print_newline ();
  (* 5. The final configuration is silent: no interaction changes it. *)
  Printf.printf "final configuration silent: %b\n"
    (Engine.Silence.configuration_is_silent protocol (Engine.Exec.snapshot exec))
