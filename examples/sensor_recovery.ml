(* Sensor-network recovery: the paper's motivating scenario, at scale.

   A mobile sensor network keeps a unique coordinator through repeated
   bursts of transient memory faults that cannot be detected or signalled
   to the agents. Self-stabilization is exactly the guarantee that makes
   this work: whatever the corruption did, the protocol converges back to
   one coordinator (rank 1) with ranks 1..n.

   The fleet here is 4096 sensors running Silent-n-state-SSR on the
   count-based executor: the exact-silence oracle replaces the
   confirmation window, so each recovery is measured exactly and the
   whole multi-burst run costs only the productive interactions. The
   burst/recovery timeline arrives through the Instrument event stream
   (Fault and Silence events) rather than by polling the simulation.

     dune exec examples/sensor_recovery.exe *)

let () =
  let n = 4096 in
  let bursts = 5 in
  let protocol = Core.Silent_n_state.protocol ~n in
  let rng = Prng.create ~seed:7 in
  let fault_rng = Prng.create ~seed:8 in
  let init = Core.Scenarios.silent_uniform rng ~n in
  let exec = Engine.Exec.make ~kind:Engine.Exec.Count ~protocol ~init ~rng () in
  (* Event subscribers see every fault and every return to silence. *)
  let timeline = ref [] in
  Engine.Exec.on exec (fun event ->
      match event with
      | Engine.Instrument.Fault _ | Engine.Instrument.Silence _ ->
          timeline := event :: !timeline
      | Engine.Instrument.Step _ | Engine.Instrument.Correct_entered _
      | Engine.Instrument.Correct_lost _ ->
          ());
  let stabilize () =
    let start = Engine.Exec.parallel_time exec in
    let o =
      Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
        ~max_interactions:
          (Engine.Exec.interactions exec
          + Engine.Runner.default_horizon ~n ~expected_time:(float_of_int (n * n)))
        ~confirm_interactions:(Engine.Runner.default_confirm ~n)
        exec
    in
    if not o.Engine.Runner.converged then failwith "did not recover within the horizon";
    o.Engine.Runner.convergence_time -. start
  in
  let recovery = stabilize () in
  Printf.printf "fleet of %d sensors (count engine, exact stabilization)\n" n;
  Printf.printf "initial stabilization from adversarial deployment: %.0f time units\n" recovery;
  let recoveries = ref [] in
  for burst = 1 to bursts do
    (* A burst of transient faults: 10% of the sensors get arbitrary
       memory contents. The sensors are NOT told anything happened. *)
    let corrupted =
      Engine.Exec.corrupt exec ~rng:fault_rng ~fraction:0.1 (fun rng ->
          Core.Silent_n_state.state_of_rank0 (Prng.int rng n) ~n)
    in
    let coordinators_after_fault = Engine.Exec.leader_count exec in
    let recovery = stabilize () in
    recoveries := recovery :: !recoveries;
    Printf.printf
      "burst %d: corrupted %3d sensors (coordinators right after fault: %d) -> recovered in %.0f time units\n"
      burst corrupted coordinators_after_fault recovery
  done;
  let s = Stats.Summary.of_list !recoveries in
  Printf.printf "\nrecovery time over %d bursts: mean %.0f, worst %.0f\n" bursts
    s.Stats.Summary.mean s.Stats.Summary.max;
  let faults, silences =
    List.fold_left
      (fun (f, s) ev ->
        match ev with
        | Engine.Instrument.Fault _ -> (f + 1, s)
        | Engine.Instrument.Silence _ -> (f, s + 1)
        | _ -> (f, s))
      (0, 0) !timeline
  in
  Printf.printf "event stream        : %d fault events, %d silence events\n" faults silences;
  Printf.printf "final coordinator   : agent %s with all ranks 1..%d assigned\n"
    (String.concat ","
       (List.map string_of_int
          (Core.Leader_election.leader_indices protocol (Engine.Exec.snapshot exec))))
    n
