(* Sensor-network recovery: the paper's motivating scenario.

   A mobile sensor network keeps a unique coordinator through repeated
   bursts of transient memory faults that cannot be detected or signalled
   to the agents. Self-stabilization is exactly the guarantee that makes
   this work: whatever the corruption did, the protocol converges back to
   one leader with ranks 1..n.

   The run alternates quiet phases with fault bursts that corrupt 25% of
   the fleet with adversarial states, and reports the recovery time of
   each burst.

     dune exec examples/sensor_recovery.exe *)

let () =
  let n = 48 in
  let bursts = 5 in
  let params = Core.Params.optimal_silent n in
  let protocol = Core.Optimal_silent.protocol ~params ~n () in
  let rng = Prng.create ~seed:7 in
  let fault_rng = Prng.create ~seed:8 in
  let init = Core.Scenarios.optimal_uniform rng ~params ~n in
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  let stabilize () =
    let start = Engine.Sim.parallel_time sim in
    let o =
      Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
        ~max_interactions:
          (Engine.Sim.interactions sim
          + Engine.Runner.default_horizon ~n ~expected_time:(float_of_int (20 * n)))
        ~confirm_interactions:(Engine.Runner.default_confirm ~n)
        sim
    in
    if not o.Engine.Runner.converged then failwith "did not recover within the horizon";
    o.Engine.Runner.convergence_time -. start
  in
  let recovery = stabilize () in
  Printf.printf "initial stabilization from adversarial deployment: %.1f time units\n" recovery;
  let recoveries = ref [] in
  for burst = 1 to bursts do
    (* A burst of transient faults: 25% of the sensors get arbitrary
       memory contents. The sensors are NOT told anything happened. *)
    let corrupted =
      Engine.Sim.corrupt sim ~rng:fault_rng ~fraction:0.25 (fun rng ->
          (Core.Scenarios.optimal_uniform rng ~params ~n).(0))
    in
    let leaders_after_fault =
      List.length (Core.Leader_election.leader_indices protocol (Engine.Sim.snapshot sim))
    in
    let recovery = stabilize () in
    recoveries := recovery :: !recoveries;
    Printf.printf
      "burst %d: corrupted %2d sensors (leaders right after fault: %d) -> recovered in %.1f time units\n"
      burst corrupted leaders_after_fault recovery
  done;
  let s = Stats.Summary.of_list !recoveries in
  Printf.printf "\nrecovery time over %d bursts: mean %.1f, worst %.1f (theory: Θ(n) = Θ(%d))\n"
    bursts s.Stats.Summary.mean s.Stats.Summary.max n;
  Printf.printf "final leader: agent %s with all ranks 1..%d assigned\n"
    (String.concat ","
       (List.map string_of_int
          (Core.Leader_election.leader_indices protocol (Engine.Sim.snapshot sim))))
    n
