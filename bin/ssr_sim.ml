(* ssr_sim: run one self-stabilizing ranking simulation from the command
   line and print a timeline. Examples:

     ssr_sim -p optimal -n 64 -s uniform --seed 7
     ssr_sim -p sublinear -n 16 -H 4 -s name-collision -v
     ssr_sim -p silent -n 32 -s worst-case
     ssr_sim -p silent -n 2048 -s worst-case --engine count
     ssr_sim -p loose -n 32
     ssr_sim -p optimal -n 24 -s duplicate-rank --topology ring
     ssr_sim -p optimal -n 64 --trials 200 --jobs 4
     ssr_sim -p silent -n 512 --trials 50 --engine count
     ssr_sim -p optimal -n 1000000 -s correct --engine count
     ssr_sim -p optimal -n 100000 -s uniform --engine count --topology star *)

let topology_of ~n = function
  | "complete" -> None
  | "ring" -> Some (Engine.Topology.ring ~n)
  | "star" -> Some (Engine.Topology.star ~n)
  | "regular4" -> Some (Engine.Topology.random_regular (Prng.create ~seed:99) ~n ~degree:4)
  | other ->
      Printf.eprintf "unknown topology '%s' (complete | ring | star | regular4)\n" other;
      exit 2

(* The count engine takes a non-complete topology through its
   degree-class lumping (Topology.degree_classes). On the star the
   lumping is exact; on the ring or a random regular graph it is the
   annealed approximation — warn once, loudly, rather than silently
   reporting approximate numbers as exact. *)
let annealed_warned = ref false

let count_classes ~n topology =
  match topology_of ~n topology with
  | None -> None
  | Some t ->
      let classes = Engine.Topology.degree_classes t in
      if (not classes.Engine.Topology.exact) && not !annealed_warned then begin
        annealed_warned := true;
        Printf.eprintf
          "warning: degree-class lumping of '%s' is not exact; the count engine runs the \
           annealed approximation (degree sequence honored, wiring resampled every \
           interaction)\n%!"
          (Engine.Topology.name t)
      end;
      Some classes

(* Build the requested executor. The count engine does not support
   randomized protocols — reject up front with a real message instead of
   an exception trace. A restricted interaction graph reaches the count
   engine as a degree-class lumping and the agent engine as a scheduler
   sampler. When a compiled kernel is given, the same engine runs on
   packed int codes behind the Kernel.exec boundary wrapper. *)
let make_exec (type s) ~engine ~(protocol : s Engine.Protocol.t)
    ~(kernel : s Ir.Kernel.t option) ~(init : s array) ~rng ~topology : s Engine.Exec.t =
  (match (engine : Engine.Exec.kind) with
  | Engine.Exec.Count ->
      if not protocol.Engine.Protocol.deterministic then begin
        Printf.eprintf "--engine count requires a deterministic protocol (got %s)\n"
          protocol.Engine.Protocol.name;
        exit 2
      end
  | Engine.Exec.Agent -> ());
  let n = protocol.Engine.Protocol.n in
  match kernel with
  | Some k -> (
      match (engine : Engine.Exec.kind) with
      | Engine.Exec.Count ->
          Ir.Kernel.exec ?classes:(count_classes ~n topology) ~kind:engine k ~init ~rng
      | Engine.Exec.Agent ->
          let sampler = Option.map Engine.Topology.sampler (topology_of ~n topology) in
          Ir.Kernel.exec ?sampler ~kind:engine k ~init ~rng)
  | None -> (
      match (engine : Engine.Exec.kind) with
      | Engine.Exec.Count ->
          Engine.Exec.make
            ?classes:(count_classes ~n topology)
            ~kind:Engine.Exec.Count ~protocol ~init ~rng ()
      | Engine.Exec.Agent ->
          let sim =
            match topology_of ~n topology with
            | None -> Engine.Sim.make ~protocol ~init ~rng
            | Some t ->
                Engine.Sim.make_with ~sampler:(Engine.Topology.sampler t) ~protocol ~init ~rng
          in
          Engine.Exec.of_sim sim)

let kernel_name kernel = if Option.is_some kernel then "compiled" else "interp"

let pp_kernel_line kernel =
  Option.iter
    (fun k ->
      Printf.printf "kernel              : compiled (%d live states, %s, %.1f ms compile)\n"
        (Ir.Kernel.states k)
        (if Ir.Kernel.exact k then "exact" else "quotient")
        (1000.0 *. k.Ir.Kernel.compile_s))
    kernel

(* Step events are thinned to roughly two samples per unit of parallel
   time; landmark events (correctness transitions, silence, faults) are
   always written. *)
let step_interval ~n = max 1 (n / 2)

let write_manifest ~events_path ~protocol ~engine ~n ~seed ~trials ~jobs ~params ~wall_clock_s =
  let manifest =
    Telemetry.Manifest.make ~run:"ssr_sim" ~protocol
      ~engine:(Engine.Exec.kind_to_string engine) ~n ~seed ~trials ~jobs ~params ~wall_clock_s ()
  in
  Telemetry.Manifest.write ~path:(events_path ^ ".manifest.json") manifest

let run_single (type s) ~engine ~(protocol : s Engine.Protocol.t) ~(kernel : s Ir.Kernel.t option)
    ~(init : s array) ~seed ~verbose ~horizon_scale ~topology ~events ~metrics ~scenario =
  let n = protocol.Engine.Protocol.n in
  let t0 = Unix.gettimeofday () in
  (* Install the metrics registry before the executor is built so the
     timed-phase spans (init drain, advance) land in it; [record_exec]
     publishes the engine counters at the end without per-site scraping. *)
  let reg = if metrics = None then None else Some (Telemetry.Metrics.create ()) in
  Option.iter Telemetry.Metrics.install reg;
  let finish () = if reg <> None then Telemetry.Metrics.uninstall () in
  Fun.protect ~finally:finish @@ fun () ->
  let rng = Prng.create ~seed in
  let exec =
    Telemetry.Span.wrap "init_drain" (fun () ->
        make_exec ~engine ~protocol ~kernel ~init ~rng ~topology)
  in
  let sink = Option.map Telemetry.Sink.file events in
  Option.iter
    (fun sink ->
      let run =
        Telemetry.Events.make_run ~engine ~protocol:protocol.Engine.Protocol.name ~n ~seed ()
      in
      Telemetry.Events.attach ~step_interval:(step_interval ~n) exec ~run sink)
    sink;
  let collector = Engine.Instrument.collector ~interval:(max 1 (n / 2)) () in
  if verbose then begin
    let metric () =
      ( Engine.Exec.leader_count exec,
        Engine.Exec.ranked_agents exec,
        if Engine.Exec.ranking_correct exec then "RANKED" else "" )
    in
    Engine.Exec.on exec (Engine.Instrument.sampled collector metric)
  end;
  let outcome =
    Telemetry.Span.wrap "advance" (fun () ->
        Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
          ~max_interactions:
            (Engine.Runner.default_horizon ~n ~expected_time:(horizon_scale *. float_of_int n))
          ~confirm_interactions:(Engine.Runner.default_confirm ~n)
          exec)
  in
  if verbose then begin
    Printf.printf "time       leaders  ranked  status\n";
    List.iter
      (fun (t, (leaders, ranked, status)) ->
        Printf.printf "%-10.2f %-8d %-7d %s\n" t leaders ranked status)
      (Engine.Instrument.series collector)
  end;
  Printf.printf "protocol            : %s\n" protocol.Engine.Protocol.name;
  Printf.printf "engine              : %s\n" (Engine.Exec.kind_to_string engine);
  pp_kernel_line kernel;
  Printf.printf "population          : %d\n" n;
  Printf.printf "converged           : %b\n" outcome.Engine.Runner.converged;
  Printf.printf "stabilization time  : %.2f (parallel time units)\n"
    outcome.Engine.Runner.convergence_time;
  Printf.printf "interactions        : %d\n" outcome.Engine.Runner.total_interactions;
  (match engine with
  | Engine.Exec.Count ->
      Printf.printf "productive events   : %d\n" (Engine.Exec.events exec)
  | Engine.Exec.Agent -> ());
  Printf.printf "correctness losses  : %d\n" outcome.Engine.Runner.violations;
  (match Engine.Exec.silent exec with
  | Some silent -> Printf.printf "final config silent : %b (exact oracle)\n" silent
  | None ->
      if protocol.Engine.Protocol.deterministic && outcome.Engine.Runner.converged then
        if n <= 4096 then
          (* the fallback scan is O(distinct states²) transition probes —
             fine at experiment sizes, not at the count engine's n = 10⁶ *)
          Printf.printf "final config silent : %b\n"
            (Engine.Silence.configuration_is_silent protocol (Engine.Exec.snapshot exec))
        else Printf.printf "final config silent : unknown (population too large to scan)\n");
  let wall_clock_s = Unix.gettimeofday () -. t0 in
  Option.iter
    (fun sink ->
      Telemetry.Sink.close sink;
      write_manifest
        ~events_path:(Option.get events)
        ~protocol:protocol.Engine.Protocol.name ~engine ~n ~seed ~trials:1 ~jobs:1
        ~params:
          [
            ("scenario", Telemetry.Json.String scenario);
            ("topology", Telemetry.Json.String topology);
            ("kernel", Telemetry.Json.String (kernel_name kernel));
            ("horizon_scale", Telemetry.Json.Float horizon_scale);
          ]
        ~wall_clock_s)
    sink;
  (match (metrics, reg) with
  | Some path, Some reg ->
      Telemetry.Metrics.record_exec exec;
      Telemetry.Metrics.observe reg "trial_wall_s" wall_clock_s;
      Telemetry.Metrics.set reg "converged"
        (if outcome.Engine.Runner.converged then 1.0 else 0.0);
      Telemetry.Metrics.set reg "violations" (float_of_int outcome.Engine.Runner.violations);
      Telemetry.Metrics.write ~path reg
  | _ -> ());
  if outcome.Engine.Runner.converged then 0 else 1

let lookup_scenario ~kind catalogue scenario =
  match List.assoc_opt scenario catalogue with
  | Some gen -> gen
  | None ->
      let names = String.concat ", " (List.map fst catalogue) in
      Printf.eprintf "unknown %s scenario '%s' (available: %s)\n" kind scenario names;
      exit 2

(* Trials run supervised (Fleet.Supervise): a raising trial — a protocol
   bug, a bad scenario, an injected fault — is captured as a per-trial
   failure instead of aborting the batch, so the completed trials'
   statistics and telemetry survive and the failure is accounted in the
   summary (and the exit code). Failures are PRNG-driven like everything
   else, so which trials fail is identical for every --jobs value. *)
let pp_trial_failures errors =
  if errors <> [] then begin
    Printf.printf "trial failures      : %d\n" (List.length errors);
    Format.printf "%a" Fleet.Supervise.pp_failures errors
  end

let supervised_results results =
  let ok = ref [] and errors = ref [] in
  Array.iteri
    (fun i -> function
      | Ok v -> ok := v :: !ok
      | Error f -> errors := (Printf.sprintf "trial %d" i, f) :: !errors)
    results;
  (List.rev !ok, List.rev !errors)

(* Flush per-trial buffer sinks into the events file in trial order
   (identical for every --jobs value), skipping failed trials' partial
   buffers — completed trials' telemetry is kept, half-written runs are
   not. *)
let flush_buffers ~results ~buffers sink =
  Array.iteri
    (fun i buffer ->
      if Result.is_ok results.(i) then
        String.split_on_char '\n' (Telemetry.Sink.contents buffer)
        |> List.iter (fun line -> if line <> "" then Telemetry.Sink.write_line sink line))
    buffers

(* Batch mode (--trials > 1): run independent trials on a domain pool and
   print summary statistics. Each trial's PRNG child is pre-split from the
   root seed before dispatch, so the numbers are identical for every
   --jobs value; the child drives both the scenario generator and the
   simulation. *)
let run_batch (type s) ~engine ~(protocol : s Engine.Protocol.t)
    ~(kernel : s Ir.Kernel.t option) ~(gen : Prng.t -> s array) ~seed ~jobs ~trials
    ~horizon_scale ~topology ~events ~metrics ~scenario =
  let n = protocol.Engine.Protocol.n in
  let t0 = Unix.gettimeofday () in
  let children = Prng.split_many (Prng.create ~seed) trials in
  (* Each trial writes into its own buffer sink; the buffers are flushed
     to the events file in trial order afterwards, so the file content is
     identical for every --jobs value. *)
  let buffers =
    if events = None then [||] else Array.init trials (fun _ -> Telemetry.Sink.buffer ())
  in
  let reg = Telemetry.Metrics.create () in
  if metrics <> None then Telemetry.Metrics.install reg;
  let outcomes, pool_stats =
    Fun.protect
      ~finally:(fun () -> if metrics <> None then Telemetry.Metrics.uninstall ())
      (fun () ->
        Engine.Pool.with_pool ~jobs (fun pool ->
            let outcomes =
              Engine.Pool.init pool trials (fun i ->
                  Fleet.Supervise.run (fun () ->
                      let trial_t0 = Unix.gettimeofday () in
                      let rng = children.(i) in
                      let init = gen rng in
                      let exec =
                        Telemetry.Span.wrap "init_drain" (fun () ->
                            make_exec ~engine ~protocol ~kernel ~init ~rng ~topology)
                      in
                      if events <> None then begin
                        let run =
                          Telemetry.Events.make_run ~engine
                            ~protocol:protocol.Engine.Protocol.name ~n ~seed ~trial:i ()
                        in
                        Telemetry.Events.attach ~step_interval:(step_interval ~n) exec ~run
                          buffers.(i)
                      end;
                      let outcome =
                        Telemetry.Span.wrap "advance" (fun () ->
                            Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
                              ~max_interactions:
                                (Engine.Runner.default_horizon ~n
                                   ~expected_time:(horizon_scale *. float_of_int n))
                              ~confirm_interactions:(Engine.Runner.default_confirm ~n)
                              exec)
                      in
                      if metrics <> None then begin
                        Telemetry.Metrics.record_exec exec;
                        Telemetry.Metrics.observe reg "trial_wall_s"
                          (Unix.gettimeofday () -. trial_t0)
                      end;
                      outcome))
            in
            (outcomes, Engine.Pool.stats pool)))
  in
  let ok, errors = supervised_results outcomes in
  let times =
    List.filter_map
      (fun o ->
        if o.Engine.Runner.converged then Some o.Engine.Runner.convergence_time else None)
      ok
  in
  let failures = trials - List.length times in
  Printf.printf "protocol            : %s\n" protocol.Engine.Protocol.name;
  Printf.printf "engine              : %s\n" (Engine.Exec.kind_to_string engine);
  pp_kernel_line kernel;
  Printf.printf "population          : %d\n" n;
  Printf.printf "trials              : %d (on %d domain%s)\n" trials jobs
    (if jobs = 1 then "" else "s");
  Printf.printf "converged           : %d of %d\n" (List.length times) trials;
  pp_trial_failures errors;
  if times <> [] then begin
    let s = Stats.Summary.of_list times in
    Printf.printf "stabilization time  : mean %.2f  median %.2f  p95 %.2f  max %.2f\n"
      s.Stats.Summary.mean s.Stats.Summary.median s.Stats.Summary.p95 s.Stats.Summary.max
  end;
  let wall_clock_s = Unix.gettimeofday () -. t0 in
  (match events with
  | None -> ()
  | Some path ->
      let sink = Telemetry.Sink.file path in
      flush_buffers ~results:outcomes ~buffers sink;
      Telemetry.Sink.close sink;
      write_manifest ~events_path:path ~protocol:protocol.Engine.Protocol.name ~engine ~n ~seed
        ~trials ~jobs
        ~params:
          [
            ("scenario", Telemetry.Json.String scenario);
            ("topology", Telemetry.Json.String topology);
            ("kernel", Telemetry.Json.String (kernel_name kernel));
            ("horizon_scale", Telemetry.Json.Float horizon_scale);
          ]
        ~wall_clock_s);
  (match metrics with
  | None -> ()
  | Some path ->
      Array.iteri
        (fun slot { Engine.Pool.tasks; busy_s } ->
          Telemetry.Metrics.set reg (Printf.sprintf "pool.domain%d.tasks" slot)
            (float_of_int tasks);
          Telemetry.Metrics.set reg (Printf.sprintf "pool.domain%d.busy_s" slot) busy_s)
        pool_stats;
      Telemetry.Metrics.set reg "converged" (float_of_int (List.length times));
      Telemetry.Metrics.set reg "trials" (float_of_int trials);
      Telemetry.Metrics.write ~path reg);
  if failures = 0 then 0 else 1

(* Chaos mode (--chaos SPEC): soak the executor under a sustained fault
   schedule instead of running to stability, and report availability. *)

let pt ~n i = float_of_int i /. float_of_int n

let pp_soak_report ~n (r : Chaos.Soak.report) =
  Printf.printf "horizon             : %.2f time units (%d interactions)\n" (pt ~n r.Chaos.Soak.horizon)
    r.Chaos.Soak.horizon;
  Printf.printf "availability        : %.4f (%d of %d interactions correct)\n"
    r.Chaos.Soak.availability r.Chaos.Soak.correct_interactions r.Chaos.Soak.total_interactions;
  Printf.printf "schedule firings    : %d (%d agent states overwritten%s)\n" r.Chaos.Soak.firings
    r.Chaos.Soak.faults_applied
    (if r.Chaos.Soak.repins > 0 then Printf.sprintf ", %d re-pins" r.Chaos.Soak.repins else "");
  Printf.printf "fault bursts        : %d (%d absorbed, %d recovered, %d censored)\n"
    r.Chaos.Soak.bursts r.Chaos.Soak.absorbed r.Chaos.Soak.recoveries r.Chaos.Soak.sla.Chaos.Soak.censored;
  Printf.printf "correctness losses  : %d\n" r.Chaos.Soak.violations;
  (match (Chaos.Soak.mean_recovery r, Chaos.Soak.p95_recovery r, Chaos.Soak.max_recovery r) with
  | Some mean, Some p95, Some mx ->
      Printf.printf "recovery time       : mean %.2f  p95 %.2f  max %.2f (time units)\n" mean p95 mx
  | _ -> ());
  let sla = r.Chaos.Soak.sla in
  Printf.printf "SLA                 : budget %.2f time units — %s\n" (pt ~n sla.Chaos.Soak.budget)
    (if sla.Chaos.Soak.met then "MET"
     else
       Printf.sprintf "MISSED (%d over budget, %d censored)" sla.Chaos.Soak.misses
         sla.Chaos.Soak.censored)

let chaos_manifest_params ~scenario ~topology ~kernel ~spec ~(report : Chaos.Soak.report) =
  [
    ("scenario", Telemetry.Json.String scenario);
    ("topology", Telemetry.Json.String topology);
    ("kernel", Telemetry.Json.String kernel);
    ("chaos", Telemetry.Json.String spec);
    ("horizon_interactions", Telemetry.Json.Int report.Chaos.Soak.horizon);
    ("sla_budget_interactions", Telemetry.Json.Int report.Chaos.Soak.sla.Chaos.Soak.budget);
  ]

let run_chaos_single (type s) ~engine ~(protocol : s Engine.Protocol.t)
    ~(kernel : s Ir.Kernel.t option) ~(init : s array) ~(random_state : Prng.t -> s) ~seed
    ~topology ~events ~metrics ~scenario ~spec ~schedule ~adversary ~sla_budget ~horizon =
  let n = protocol.Engine.Protocol.n in
  let t0 = Unix.gettimeofday () in
  let reg = if metrics = None then None else Some (Telemetry.Metrics.create ()) in
  Option.iter Telemetry.Metrics.install reg;
  let finish () = if reg <> None then Telemetry.Metrics.uninstall () in
  Fun.protect ~finally:finish @@ fun () ->
  let rng = Prng.create ~seed in
  let exec =
    Telemetry.Span.wrap "init_drain" (fun () ->
        make_exec ~engine ~protocol ~kernel ~init ~rng ~topology)
  in
  let sink = Option.map Telemetry.Sink.file events in
  Option.iter
    (fun sink ->
      let run =
        Telemetry.Events.make_run ~engine ~protocol:protocol.Engine.Protocol.name ~n ~seed ()
      in
      Telemetry.Events.attach ~step_interval:(step_interval ~n) exec ~run sink)
    sink;
  let report =
    Telemetry.Span.wrap "soak" (fun () ->
        Chaos.Soak.run ?sla_budget ~schedule ~adversary ~random_state ~rng ~horizon exec)
  in
  Printf.printf "protocol            : %s\n" protocol.Engine.Protocol.name;
  Printf.printf "engine              : %s\n" (Engine.Exec.kind_to_string engine);
  pp_kernel_line kernel;
  Printf.printf "population          : %d\n" n;
  Printf.printf "chaos               : %s\n" spec;
  pp_soak_report ~n report;
  let wall_clock_s = Unix.gettimeofday () -. t0 in
  Option.iter
    (fun sink ->
      Telemetry.Sink.close sink;
      write_manifest
        ~events_path:(Option.get events)
        ~protocol:protocol.Engine.Protocol.name ~engine ~n ~seed ~trials:1 ~jobs:1
        ~params:
          (chaos_manifest_params ~scenario ~topology ~kernel:(kernel_name kernel) ~spec ~report)
        ~wall_clock_s)
    sink;
  (match (metrics, reg) with
  | Some path, Some reg ->
      Telemetry.Metrics.record_exec exec;
      Telemetry.Metrics.observe reg "trial_wall_s" wall_clock_s;
      Telemetry.Metrics.set reg "availability" report.Chaos.Soak.availability;
      Telemetry.Metrics.write ~path reg
  | _ -> ());
  (* Chaos mode reports; the SLA verdict is data, not an exit code. *)
  0

let run_chaos_batch (type s) ~engine ~(protocol : s Engine.Protocol.t)
    ~(kernel : s Ir.Kernel.t option) ~(gen : Prng.t -> s array) ~(random_state : Prng.t -> s)
    ~seed ~jobs ~trials ~topology ~events ~metrics ~scenario ~spec ~schedule ~adversary
    ~sla_budget ~horizon =
  let n = protocol.Engine.Protocol.n in
  let t0 = Unix.gettimeofday () in
  let children = Prng.split_many (Prng.create ~seed) trials in
  let buffers =
    if events = None then [||] else Array.init trials (fun _ -> Telemetry.Sink.buffer ())
  in
  let reg = Telemetry.Metrics.create () in
  if metrics <> None then Telemetry.Metrics.install reg;
  let reports, pool_stats =
    Fun.protect
      ~finally:(fun () -> if metrics <> None then Telemetry.Metrics.uninstall ())
      (fun () ->
        Engine.Pool.with_pool ~jobs (fun pool ->
            let reports =
              Engine.Pool.init pool trials (fun i ->
                  Fleet.Supervise.run (fun () ->
                      let trial_t0 = Unix.gettimeofday () in
                      let rng = children.(i) in
                      let init = gen rng in
                      let exec =
                        Telemetry.Span.wrap "init_drain" (fun () ->
                            make_exec ~engine ~protocol ~kernel ~init ~rng ~topology)
                      in
                      if events <> None then begin
                        let run =
                          Telemetry.Events.make_run ~engine
                            ~protocol:protocol.Engine.Protocol.name ~n ~seed ~trial:i ()
                        in
                        Telemetry.Events.attach ~step_interval:(step_interval ~n) exec ~run
                          buffers.(i)
                      end;
                      let report =
                        Telemetry.Span.wrap "soak" (fun () ->
                            Chaos.Soak.run ?sla_budget ~schedule ~adversary ~random_state ~rng
                              ~horizon exec)
                      in
                      if metrics <> None then begin
                        Telemetry.Metrics.record_exec exec;
                        Telemetry.Metrics.observe reg "trial_wall_s"
                          (Unix.gettimeofday () -. trial_t0)
                      end;
                      report))
            in
            (reports, Engine.Pool.stats pool)))
  in
  let rs, errors = supervised_results reports in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rs in
  let avail_mean =
    if rs = [] then 0.0
    else Stats.Summary.(of_list (List.map (fun r -> r.Chaos.Soak.availability) rs)).mean
  in
  let pooled = List.concat_map (fun r -> Array.to_list r.Chaos.Soak.recovery_times) rs in
  let met = List.length (List.filter (fun r -> r.Chaos.Soak.sla.Chaos.Soak.met) rs) in
  let misses = sum (fun r -> r.Chaos.Soak.sla.Chaos.Soak.misses) in
  let censored = sum (fun r -> r.Chaos.Soak.sla.Chaos.Soak.censored) in
  Printf.printf "protocol            : %s\n" protocol.Engine.Protocol.name;
  Printf.printf "engine              : %s\n" (Engine.Exec.kind_to_string engine);
  pp_kernel_line kernel;
  Printf.printf "population          : %d\n" n;
  Printf.printf "chaos               : %s\n" spec;
  Printf.printf "trials              : %d (on %d domain%s)\n" trials jobs
    (if jobs = 1 then "" else "s");
  Printf.printf "horizon             : %.2f time units each (%d interactions)\n" (pt ~n horizon)
    horizon;
  pp_trial_failures errors;
  if rs <> [] then begin
    let avail =
      Stats.Summary.of_list (List.map (fun r -> r.Chaos.Soak.availability) rs)
    in
    Printf.printf "availability        : mean %.4f  min %.4f  max %.4f\n"
      avail.Stats.Summary.mean avail.Stats.Summary.min avail.Stats.Summary.max
  end;
  Printf.printf "schedule firings    : %d (%d agent states overwritten)\n"
    (sum (fun r -> r.Chaos.Soak.firings))
    (sum (fun r -> r.Chaos.Soak.faults_applied));
  Printf.printf "fault bursts        : %d (%d absorbed, %d recovered, %d censored)\n"
    (sum (fun r -> r.Chaos.Soak.bursts))
    (sum (fun r -> r.Chaos.Soak.absorbed))
    (sum (fun r -> r.Chaos.Soak.recoveries))
    censored;
  if pooled <> [] then begin
    let s = Stats.Summary.of_list pooled in
    Printf.printf "recovery time       : mean %.2f  p95 %.2f  max %.2f (pooled, time units)\n"
      s.Stats.Summary.mean s.Stats.Summary.p95 s.Stats.Summary.max
  end;
  (match rs with
  | first :: _ ->
      Printf.printf "SLA                 : budget %.2f time units — %d/%d trials met"
        (pt ~n first.Chaos.Soak.sla.Chaos.Soak.budget) met trials;
      if met < trials then Printf.printf " (%d over budget, %d censored)" misses censored;
      print_newline ()
  | [] -> ());
  let wall_clock_s = Unix.gettimeofday () -. t0 in
  (match events with
  | None -> ()
  | Some path ->
      let sink = Telemetry.Sink.file path in
      flush_buffers ~results:reports ~buffers sink;
      Telemetry.Sink.close sink;
      write_manifest ~events_path:path ~protocol:protocol.Engine.Protocol.name ~engine ~n ~seed
        ~trials ~jobs
        ~params:
          (match rs with
          | first :: _ ->
              chaos_manifest_params ~scenario ~topology ~kernel:(kernel_name kernel) ~spec
                ~report:first
          | [] -> [])
        ~wall_clock_s);
  (match metrics with
  | None -> ()
  | Some path ->
      Array.iteri
        (fun slot { Engine.Pool.tasks; busy_s } ->
          Telemetry.Metrics.set reg (Printf.sprintf "pool.domain%d.tasks" slot)
            (float_of_int tasks);
          Telemetry.Metrics.set reg (Printf.sprintf "pool.domain%d.busy_s" slot) busy_s)
        pool_stats;
      Telemetry.Metrics.set reg "trials" (float_of_int trials);
      Telemetry.Metrics.set reg "availability_mean" avail_mean;
      Telemetry.Metrics.set reg "sla_trials_met" (float_of_int met);
      Telemetry.Metrics.write ~path reg);
  (* Chaos reports are data (SLA misses don't fail the run), but a trial
     that *raised* is a harness failure and must surface in the exit. *)
  if errors = [] then 0 else 1

let run_loose ~n ~seed ~verbose =
  let t_max = 4 * n in
  let protocol = Core.Loose.protocol ~n ~t_max in
  let rng = Prng.create ~seed in
  let sim = Engine.Sim.make ~protocol ~init:(Core.Loose.uniform rng ~n ~t_max) ~rng in
  let horizon = 100 * t_max * n in
  while (not (Engine.Sim.leader_correct sim)) && Engine.Sim.interactions sim < horizon do
    Engine.Sim.step sim
  done;
  Printf.printf "protocol            : %s\n" protocol.Engine.Protocol.name;
  Printf.printf "population          : %d (rules only use t_max=%d)\n" n t_max;
  Printf.printf "unique leader       : %b after %.2f time units\n"
    (Engine.Sim.leader_correct sim) (Engine.Sim.parallel_time sim);
  if verbose then begin
    let start = Engine.Sim.interactions sim in
    while Engine.Sim.leader_correct sim && Engine.Sim.interactions sim - start < 50_000 * n do
      Engine.Sim.step sim
    done;
    if Engine.Sim.leader_correct sim then
      Printf.printf "holding time        : > %.0f time units (budget exhausted)\n"
        (float_of_int (Engine.Sim.interactions sim - start) /. float_of_int n)
    else
      Printf.printf "holding time        : %.0f time units (loose stabilization)\n"
        (float_of_int (Engine.Sim.interactions sim - start) /. float_of_int n)
  end;
  if Engine.Sim.leader_correct sim || verbose then 0 else 1

(* One protocol, ready to run under any mode combination. Packing the
   state type existentially lets a single dispatch function own the
   chaos / batch / kernel branching that used to be duplicated per
   protocol arm. [enumerable] is [None] for protocols the IR compiler
   cannot take (randomized, or descriptor mismatched to the simulated
   parameterization) — [--kernel compiled] is rejected with [reason]. *)
type runnable =
  | Runnable : {
      protocol : 's Engine.Protocol.t;
      enumerable : ('s Engine.Enumerable.t, string) result;
      gen : Prng.t -> 's array;
      random_state : Prng.t -> 's;
      horizon_scale : float;
    }
      -> runnable

let dispatch (Runnable r) ~engine ~compiled ~seed ~scen_rng ~verbose ~jobs ~trials ~topology
    ~events ~metrics ~scenario ~chaos ~sla_budget ~horizon =
  let kernel =
    if not compiled then None
    else
      match r.enumerable with
      | Ok e -> Some (Ir.Kernel.compile e)
      | Error reason ->
          Printf.eprintf "--kernel compiled is not supported for %s: %s\n"
            r.protocol.Engine.Protocol.name reason;
          exit 2
  in
  let batch = trials > 1 in
  match chaos with
  | Some (spec, schedule, adversary) ->
      if batch then
        run_chaos_batch ~engine ~protocol:r.protocol ~kernel ~gen:r.gen
          ~random_state:r.random_state ~seed ~jobs ~trials ~topology ~events ~metrics ~scenario
          ~spec ~schedule ~adversary ~sla_budget ~horizon
      else
        run_chaos_single ~engine ~protocol:r.protocol ~kernel ~init:(r.gen scen_rng)
          ~random_state:r.random_state ~seed ~topology ~events ~metrics ~scenario ~spec ~schedule
          ~adversary ~sla_budget ~horizon
  | None ->
      if batch then
        run_batch ~engine ~protocol:r.protocol ~kernel ~gen:r.gen ~seed ~jobs ~trials
          ~horizon_scale:r.horizon_scale ~topology ~events ~metrics ~scenario
      else
        run_single ~engine ~protocol:r.protocol ~kernel ~init:(r.gen scen_rng) ~seed ~verbose
          ~horizon_scale:r.horizon_scale ~topology ~events ~metrics ~scenario

let main protocol_name n h scenario seed verbose topology engine_name kernel_mode trials jobs
    events metrics chaos sla horizon =
  let jobs = match jobs with Some j -> j | None -> Engine.Pool.default_jobs () in
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  if trials < 1 then begin
    Printf.eprintf "--trials must be >= 1 (got %d)\n" trials;
    exit 2
  end;
  let engine =
    match engine_name with
    | "agent" -> Engine.Exec.Agent
    | "count" -> Engine.Exec.Count
    | other ->
        Printf.eprintf "unknown engine '%s' (agent | count)\n" other;
        exit 2
  in
  let compiled =
    match kernel_mode with
    | "interp" -> false
    | "compiled" -> true
    | other ->
        Printf.eprintf "unknown kernel '%s' (interp | compiled)\n" other;
        exit 2
  in
  let chaos =
    match chaos with
    | None ->
        if sla <> None || horizon <> None then begin
          Printf.eprintf "--sla and --horizon require --chaos\n";
          exit 2
        end;
        None
    | Some spec -> (
        match Chaos.Spec.parse spec with
        | Ok (schedule, adversary) -> Some (spec, schedule, adversary)
        | Error msg ->
            Printf.eprintf "--chaos: %s\n" msg;
            exit 2)
  in
  (* --sla and --horizon are given in parallel time units; the soak runner
     works on the interaction clock. *)
  let to_interactions ~flag = function
    | None -> None
    | Some t when t > 0.0 -> Some (max 1 (int_of_float (Float.ceil (t *. float_of_int n))))
    | Some t ->
        Printf.eprintf "--%s must be > 0 time units (got %g)\n" flag t;
        exit 2
  in
  let sla_budget = to_interactions ~flag:"sla" sla in
  let horizon =
    match to_interactions ~flag:"horizon" horizon with
    | Some i -> i
    | None -> 8 * Engine.Runner.default_confirm ~n
  in
  let scen_rng = Prng.create ~seed:(seed + 1000) in
  let dispatch runnable =
    dispatch runnable ~engine ~compiled ~seed ~scen_rng ~verbose ~jobs ~trials ~topology ~events
      ~metrics ~scenario ~chaos ~sla_budget ~horizon
  in
  match protocol_name with
  | "silent" ->
      dispatch
        (Runnable
           {
             protocol = Core.Silent_n_state.protocol ~n;
             enumerable = Ok (Core.Silent_n_state.enumerable ~n);
             gen = lookup_scenario ~kind:"silent" (Core.Scenarios.silent_catalogue ~n) scenario;
             random_state = (fun rng -> Core.Scenarios.silent_random_state rng ~n);
             horizon_scale = float_of_int n;
           })
  | "optimal" ->
      let params = Core.Params.optimal_silent n in
      dispatch
        (Runnable
           {
             protocol = Core.Optimal_silent.protocol ~params ~n ();
             enumerable = Ok (Core.Optimal_silent.enumerable ~params ~n ());
             gen =
               lookup_scenario ~kind:"optimal"
                 (Core.Scenarios.optimal_catalogue ~params ~n)
                 scenario;
             random_state = (fun rng -> Core.Scenarios.optimal_random_state rng ~params ~n);
             horizon_scale = 40.0;
           })
  | "sublinear" ->
      let params = Core.Params.sublinear ~h n in
      dispatch
        (Runnable
           {
             protocol = Core.Sublinear.protocol ~params ~n ~h ();
             enumerable = Error "the transition is randomized (it draws real coins)";
             gen =
               lookup_scenario ~kind:"sublinear"
                 (Core.Scenarios.sublinear_catalogue ~params ~n)
                 scenario;
             random_state = (fun rng -> Core.Scenarios.sublinear_random_state rng ~params ~n);
             horizon_scale = 40.0;
           })
  | "loose" ->
      if compiled then begin
        Printf.eprintf "--kernel compiled is not supported for the loose protocol\n";
        exit 2
      end;
      if trials > 1 then begin
        Printf.eprintf "--trials is not supported for the loose protocol\n";
        exit 2
      end;
      if engine = Engine.Exec.Count then begin
        Printf.eprintf "--engine count is not supported for the loose protocol\n";
        exit 2
      end;
      if events <> None || metrics <> None then begin
        Printf.eprintf "--events/--metrics are not supported for the loose protocol\n";
        exit 2
      end;
      if chaos <> None then begin
        Printf.eprintf "--chaos is not supported for the loose protocol\n";
        exit 2
      end;
      run_loose ~n ~seed ~verbose
  | other ->
      Printf.eprintf "unknown protocol '%s' (silent | optimal | sublinear | loose)\n" other;
      2

open Cmdliner

let protocol_arg =
  let doc = "Protocol: silent (Silent-n-state-SSR), optimal (Optimal-Silent-SSR), sublinear (Sublinear-Time-SSR) or loose (loosely-stabilizing LE)." in
  Arg.(value & opt string "optimal" & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let n_arg =
  let doc = "Population size." in
  Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc)

let h_arg =
  let doc = "History depth H for the sublinear protocol (0 = direct detection)." in
  Arg.(value & opt int 2 & info [ "H"; "depth" ] ~docv:"H" ~doc)

let scenario_arg =
  let doc = "Initial-configuration scenario (use a bogus name to list the options)." in
  Arg.(value & opt string "uniform" & info [ "s"; "scenario" ] ~docv:"SCENARIO" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Print the convergence timeline (for loose: also measure holding time)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let topology_arg =
  let doc =
    "Interaction graph: complete, ring, star or regular4. The agent engine samples the graph's \
     edges directly; the count engine lumps it by degree class (exact on star, annealed \
     approximation — with a warning — on ring and regular4)."
  in
  Arg.(value & opt string "complete" & info [ "topology" ] ~docv:"GRAPH" ~doc)

let engine_arg =
  let doc =
    "Executor: agent (every interaction simulated) or count (lazy count-based engine for \
     deterministic protocols: exact null-interaction skipping with on-demand pair probing, and \
     an exact silence oracle while the live-state set stays small — reaches populations of \
     10⁶ on every deterministic protocol, e.g. $(b,-p optimal -n 1000000 -s correct))."
  in
  Arg.(value & opt string "agent" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let kernel_arg =
  let doc =
    "Transition kernel: interp (call the protocol's OCaml transition directly) or compiled \
     (compile the protocol through the IR pipeline to packed int codes with a memoized \
     transition table; observables are identical, throughput is higher — see DESIGN.md \
     \"Protocol IR\"). Deterministic protocols with a declared state space only."
  in
  Arg.(value & opt string "interp" & info [ "kernel" ] ~docv:"KERNEL" ~doc)

let trials_arg =
  let doc =
    "Run this many independent trials and print summary statistics instead of a single timeline."
  in
  Arg.(value & opt int 1 & info [ "trials" ] ~docv:"TRIALS" ~doc)

let jobs_arg =
  let doc =
    "Number of domains running trials in parallel (default: $(b,REPRO_JOBS) or the recommended \
     domain count). Results are identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let events_arg =
  let doc =
    "Write the run's instrumentation events to $(docv) as JSONL (schema v1; see DESIGN.md \
     \"Telemetry\"). A run manifest is written next to it as $(docv).manifest.json. With \
     --trials, every trial's events land in the same file, tagged with their trial index, in \
     trial order regardless of --jobs."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a JSON metrics summary (engine counters, per-trial wall times, pool utilization) \
     to $(docv) at the end of the run."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let chaos_arg =
  let doc =
    "Soak the run under a sustained fault schedule instead of running to stability, and report \
     availability and recovery SLAs. $(docv) is a comma-separated spec combining schedule \
     clauses (burst:AT, periodic:EVERY, poisson:RATE — RATE in faults per parallel time unit; \
     compose with +) with exactly one adversary clause (corrupt:F, kill-leader, duplicate-rank, \
     stuck:AGENTS:DURATION). Example: $(b,--chaos poisson:0.1,corrupt:0.05)."
  in
  Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)

let sla_arg =
  let doc =
    "Recovery SLA budget in parallel time units (chaos mode only). A burst that breaks \
     correctness must recover within the budget; default: 4 confirmation windows."
  in
  Arg.(value & opt (some float) None & info [ "sla" ] ~docv:"TIME" ~doc)

let horizon_arg =
  let doc =
    "Soak length in parallel time units (chaos mode only; default: 8 confirmation windows)."
  in
  Arg.(value & opt (some float) None & info [ "horizon" ] ~docv:"TIME" ~doc)

let cmd =
  let doc = "simulate self-stabilizing ranking / leader election population protocols" in
  let info = Cmd.info "ssr_sim" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const main $ protocol_arg $ n_arg $ h_arg $ scenario_arg $ seed_arg $ verbose_arg
      $ topology_arg $ engine_arg $ kernel_arg $ trials_arg $ jobs_arg $ events_arg $ metrics_arg
      $ chaos_arg $ sla_arg $ horizon_arg)

let () = exit (Cmd.eval' cmd)
