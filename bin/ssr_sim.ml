(* ssr_sim: run one self-stabilizing ranking simulation from the command
   line and print a timeline. Examples:

     ssr_sim -p optimal -n 64 -s uniform --seed 7
     ssr_sim -p sublinear -n 16 -H 4 -s name-collision -v
     ssr_sim -p silent -n 32 -s worst-case
     ssr_sim -p silent -n 2048 -s worst-case --count-engine
     ssr_sim -p loose -n 32
     ssr_sim -p optimal -n 24 -s duplicate-rank --topology ring
     ssr_sim -p optimal -n 64 --trials 200 --jobs 4 *)

let topology_of ~n = function
  | "complete" -> None
  | "ring" -> Some (Engine.Topology.ring ~n)
  | "star" -> Some (Engine.Topology.star ~n)
  | "regular4" -> Some (Engine.Topology.random_regular (Prng.create ~seed:99) ~n ~degree:4)
  | other ->
      Printf.eprintf "unknown topology '%s' (complete | ring | star | regular4)\n" other;
      exit 2

let run_generic (type s) ~(protocol : s Engine.Protocol.t) ~(init : s array) ~seed ~verbose
    ~horizon_scale ~topology =
  let n = protocol.Engine.Protocol.n in
  let rng = Prng.create ~seed in
  let sim =
    match topology_of ~n topology with
    | None -> Engine.Sim.make ~protocol ~init ~rng
    | Some t -> Engine.Sim.make_with ~sampler:(Engine.Topology.sampler t) ~protocol ~init ~rng
  in
  let collector = Engine.Trace.collector ~interval:(max 1 (n / 2)) () in
  let metric s =
    ( Engine.Sim.leader_count s,
      Engine.Sim.ranked_agents s,
      if Engine.Sim.ranking_correct s then "RANKED" else "" )
  in
  let on_step s = Engine.Trace.hook collector metric s in
  let outcome =
    Engine.Runner.run_to_stability ~on_step ~task:Engine.Runner.Ranking
      ~max_interactions:
        (Engine.Runner.default_horizon ~n ~expected_time:(horizon_scale *. float_of_int n))
      ~confirm_interactions:(Engine.Runner.default_confirm ~n)
      sim
  in
  if verbose then begin
    Printf.printf "time       leaders  ranked  status\n";
    List.iter
      (fun (t, (leaders, ranked, status)) -> Printf.printf "%-10.2f %-8d %-7d %s\n" t leaders ranked status)
      (Engine.Trace.series collector)
  end;
  Printf.printf "protocol            : %s\n" protocol.Engine.Protocol.name;
  Printf.printf "population          : %d\n" n;
  Printf.printf "converged           : %b\n" outcome.Engine.Runner.converged;
  Printf.printf "stabilization time  : %.2f (parallel time units)\n"
    outcome.Engine.Runner.convergence_time;
  Printf.printf "interactions        : %d\n" outcome.Engine.Runner.total_interactions;
  Printf.printf "correctness losses  : %d\n" outcome.Engine.Runner.violations;
  if protocol.Engine.Protocol.deterministic && outcome.Engine.Runner.converged then
    Printf.printf "final config silent : %b\n"
      (Engine.Silence.configuration_is_silent protocol (Engine.Sim.snapshot sim));
  if outcome.Engine.Runner.converged then 0 else 1

let lookup_scenario ~kind catalogue scenario =
  match List.assoc_opt scenario catalogue with
  | Some gen -> gen
  | None ->
      let names = String.concat ", " (List.map fst catalogue) in
      Printf.eprintf "unknown %s scenario '%s' (available: %s)\n" kind scenario names;
      exit 2

(* Exact run on the count-based engine (silent deterministic protocols). *)
let run_count_engine (type s) ~(protocol : s Engine.Protocol.t) ~(init : s array) ~seed =
  let rng = Prng.create ~seed in
  let cs = Engine.Count_sim.make ~protocol ~init ~rng in
  let o = Engine.Count_sim.run_to_silence cs in
  Printf.printf "protocol            : %s (count-based engine)\n" protocol.Engine.Protocol.name;
  Printf.printf "population          : %d\n" protocol.Engine.Protocol.n;
  Printf.printf "silent              : %b\n" o.Engine.Count_sim.silent;
  Printf.printf "ranking correct     : %b\n" o.Engine.Count_sim.correct;
  Printf.printf "stabilization time  : %.2f (exact; parallel time units)\n"
    o.Engine.Count_sim.stabilization_time;
  Printf.printf "productive events   : %d of %d interactions\n" o.Engine.Count_sim.events
    o.Engine.Count_sim.interactions;
  if o.Engine.Count_sim.silent && o.Engine.Count_sim.correct then 0 else 1

(* Batch mode (--trials > 1): run independent trials on a domain pool and
   print summary statistics. Each trial's PRNG child is pre-split from the
   root seed before dispatch, so the numbers are identical for every
   --jobs value; the child drives both the scenario generator and the
   simulation. *)
let run_batch (type s) ~(protocol : s Engine.Protocol.t) ~(gen : Prng.t -> s array) ~seed ~jobs
    ~trials ~horizon_scale ~topology =
  let n = protocol.Engine.Protocol.n in
  let sampler = Option.map Engine.Topology.sampler (topology_of ~n topology) in
  let children = Prng.split_many (Prng.create ~seed) trials in
  let outcomes =
    Engine.Pool.with_pool ~jobs (fun pool ->
        Engine.Pool.init pool trials (fun i ->
            let rng = children.(i) in
            let init = gen rng in
            let sim =
              match sampler with
              | None -> Engine.Sim.make ~protocol ~init ~rng
              | Some sampler -> Engine.Sim.make_with ~sampler ~protocol ~init ~rng
            in
            Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
              ~max_interactions:
                (Engine.Runner.default_horizon ~n
                   ~expected_time:(horizon_scale *. float_of_int n))
              ~confirm_interactions:(Engine.Runner.default_confirm ~n)
              sim))
  in
  let times =
    Array.to_list outcomes
    |> List.filter_map (fun o ->
           if o.Engine.Runner.converged then Some o.Engine.Runner.convergence_time else None)
  in
  let failures = trials - List.length times in
  Printf.printf "protocol            : %s\n" protocol.Engine.Protocol.name;
  Printf.printf "population          : %d\n" n;
  Printf.printf "trials              : %d (on %d domain%s)\n" trials jobs
    (if jobs = 1 then "" else "s");
  Printf.printf "converged           : %d of %d\n" (List.length times) trials;
  if times <> [] then begin
    let s = Stats.Summary.of_list times in
    Printf.printf "stabilization time  : mean %.2f  median %.2f  p95 %.2f  max %.2f\n"
      s.Stats.Summary.mean s.Stats.Summary.median s.Stats.Summary.p95 s.Stats.Summary.max
  end;
  if failures = 0 then 0 else 1

let run_loose ~n ~seed ~verbose =
  let t_max = 4 * n in
  let protocol = Core.Loose.protocol ~n ~t_max in
  let rng = Prng.create ~seed in
  let sim = Engine.Sim.make ~protocol ~init:(Core.Loose.uniform rng ~n ~t_max) ~rng in
  let horizon = 100 * t_max * n in
  while (not (Engine.Sim.leader_correct sim)) && Engine.Sim.interactions sim < horizon do
    Engine.Sim.step sim
  done;
  Printf.printf "protocol            : %s\n" protocol.Engine.Protocol.name;
  Printf.printf "population          : %d (rules only use t_max=%d)\n" n t_max;
  Printf.printf "unique leader       : %b after %.2f time units\n"
    (Engine.Sim.leader_correct sim) (Engine.Sim.parallel_time sim);
  if verbose then begin
    let start = Engine.Sim.interactions sim in
    while Engine.Sim.leader_correct sim && Engine.Sim.interactions sim - start < 50_000 * n do
      Engine.Sim.step sim
    done;
    if Engine.Sim.leader_correct sim then
      Printf.printf "holding time        : > %.0f time units (budget exhausted)\n"
        (float_of_int (Engine.Sim.interactions sim - start) /. float_of_int n)
    else
      Printf.printf "holding time        : %.0f time units (loose stabilization)\n"
        (float_of_int (Engine.Sim.interactions sim - start) /. float_of_int n)
  end;
  if Engine.Sim.leader_correct sim || verbose then 0 else 1

let main protocol_name n h scenario seed verbose topology count_engine trials jobs =
  let jobs = match jobs with Some j -> j | None -> Engine.Pool.default_jobs () in
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  if trials < 1 then begin
    Printf.eprintf "--trials must be >= 1 (got %d)\n" trials;
    exit 2
  end;
  let batch = trials > 1 in
  if batch && count_engine then begin
    Printf.eprintf "--trials is not supported together with --count-engine\n";
    exit 2
  end;
  let scen_rng = Prng.create ~seed:(seed + 1000) in
  match protocol_name with
  | "silent" ->
      let protocol = Core.Silent_n_state.protocol ~n in
      let gen = lookup_scenario ~kind:"silent" (Core.Scenarios.silent_catalogue ~n) scenario in
      if batch then
        run_batch ~protocol ~gen ~seed ~jobs ~trials ~horizon_scale:(float_of_int n) ~topology
      else if count_engine then run_count_engine ~protocol ~init:(gen scen_rng) ~seed
      else
        run_generic ~protocol ~init:(gen scen_rng) ~seed ~verbose ~horizon_scale:(float_of_int n)
          ~topology
  | "optimal" ->
      let params = Core.Params.optimal_silent n in
      let protocol = Core.Optimal_silent.protocol ~params ~n () in
      let gen =
        lookup_scenario ~kind:"optimal" (Core.Scenarios.optimal_catalogue ~params ~n) scenario
      in
      if batch then run_batch ~protocol ~gen ~seed ~jobs ~trials ~horizon_scale:40.0 ~topology
      else if count_engine then run_count_engine ~protocol ~init:(gen scen_rng) ~seed
      else run_generic ~protocol ~init:(gen scen_rng) ~seed ~verbose ~horizon_scale:40.0 ~topology
  | "sublinear" ->
      let params = Core.Params.sublinear ~h n in
      let protocol = Core.Sublinear.protocol ~params ~n ~h () in
      let gen =
        lookup_scenario ~kind:"sublinear" (Core.Scenarios.sublinear_catalogue ~params ~n) scenario
      in
      if batch then run_batch ~protocol ~gen ~seed ~jobs ~trials ~horizon_scale:40.0 ~topology
      else run_generic ~protocol ~init:(gen scen_rng) ~seed ~verbose ~horizon_scale:40.0 ~topology
  | "loose" ->
      if batch then begin
        Printf.eprintf "--trials is not supported for the loose protocol\n";
        exit 2
      end;
      run_loose ~n ~seed ~verbose
  | other ->
      Printf.eprintf "unknown protocol '%s' (silent | optimal | sublinear | loose)\n" other;
      2

open Cmdliner

let protocol_arg =
  let doc = "Protocol: silent (Silent-n-state-SSR), optimal (Optimal-Silent-SSR), sublinear (Sublinear-Time-SSR) or loose (loosely-stabilizing LE)." in
  Arg.(value & opt string "optimal" & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let n_arg =
  let doc = "Population size." in
  Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc)

let h_arg =
  let doc = "History depth H for the sublinear protocol (0 = direct detection)." in
  Arg.(value & opt int 2 & info [ "H"; "depth" ] ~docv:"H" ~doc)

let scenario_arg =
  let doc = "Initial-configuration scenario (use a bogus name to list the options)." in
  Arg.(value & opt string "uniform" & info [ "s"; "scenario" ] ~docv:"SCENARIO" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Print the convergence timeline (for loose: also measure holding time)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let topology_arg =
  let doc = "Interaction graph: complete, ring, star or regular4." in
  Arg.(value & opt string "complete" & info [ "topology" ] ~docv:"GRAPH" ~doc)

let count_engine_arg =
  let doc = "Use the exact count-based engine (silent protocols; ignores --topology)." in
  Arg.(value & flag & info [ "count-engine" ] ~doc)

let trials_arg =
  let doc =
    "Run this many independent trials and print summary statistics instead of a single timeline."
  in
  Arg.(value & opt int 1 & info [ "trials" ] ~docv:"TRIALS" ~doc)

let jobs_arg =
  let doc =
    "Number of domains running trials in parallel (default: $(b,REPRO_JOBS) or the recommended \
     domain count). Results are identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let cmd =
  let doc = "simulate self-stabilizing ranking / leader election population protocols" in
  let info = Cmd.info "ssr_sim" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const main $ protocol_arg $ n_arg $ h_arg $ scenario_arg $ seed_arg $ verbose_arg
      $ topology_arg $ count_engine_arg $ trials_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
