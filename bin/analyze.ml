(* analyze: static analysis of the protocol catalogue — state-space
   closure, invariant lint, silence classification and small-n exhaustive
   model checking. Examples:

     analyze --list
     analyze --protocol all --n 3 --n 4 --report json
     analyze -p optimal_silent_small -p reset --n 4 --jobs 4
     analyze -p sublinear --n 2 --max-configs 1000000
     analyze --certify --certify-dir certificates *)

let list_entries () =
  List.iter
    (fun (e : Analysis.Registry.entry) -> Printf.printf "%-22s %s\n" e.Analysis.Registry.key e.Analysis.Registry.summary)
    Analysis.Registry.entries;
  0

let resolve_entries protocols =
  let keys = if protocols = [] then [ "all" ] else protocols in
  if List.mem "all" keys then Ok Analysis.Registry.entries
  else
    let missing = List.filter (fun k -> Analysis.Registry.find k = None) keys in
    if missing <> [] then Error missing
    else
      Ok
        (List.filter
           (fun (e : Analysis.Registry.entry) -> List.mem e.Analysis.Registry.key keys)
           Analysis.Registry.entries)

(* --dump-ir: print the fully lowered IR (fields, code space, pass log,
   small-space code maps) for one catalogue entry. The golden files under
   test/golden/ are regenerated from this output. *)
let dump_ir ~key ~n =
  match Analysis.Registry.find key with
  | None ->
      Printf.eprintf "unknown protocol '%s' (available: %s)\n" key
        (String.concat ", " (Analysis.Registry.keys ()));
      exit 2
  | Some entry -> (
      match entry.Analysis.Registry.build ~n with
      | Analysis.Registry.Any e ->
          Format.printf "%a@." Ir.pp (Ir.Passes.pipeline e);
          0)

(* --certify: run the symbolic certifier on every analyzed instance,
   append its verdict as a [certify] stage and write one JSON certificate
   per instance under --certify-dir. A certification or write failure on
   one instance is that instance's failed stage; the rest still run. *)
let certify_reports ~dir ~entries ~ns reports =
  let instances = List.concat_map (fun entry -> List.map (fun n -> (entry, n)) ns) entries in
  (match Sys.file_exists dir with
  | true -> ()
  | false -> ( try Sys.mkdir dir 0o755 with Sys_error _ -> ()));
  List.map2
    (fun (entry, n) (report : Analysis.Report.t) ->
      let { Certify.Driver.stage; certificate } = Certify.Driver.certify_entry ~n ~report entry in
      let stages =
        match certificate with
        | None -> [ stage ]
        | Some cert -> (
            let path =
              Filename.concat dir
                (Printf.sprintf "cert_%s_n%d.json" entry.Analysis.Registry.key n)
            in
            match
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc (Certify.Certificate.to_string cert ^ "\n"))
            with
            | () -> [ stage ]
            | exception Sys_error msg ->
                [
                  stage;
                  Analysis.Report.finish
                    ~findings:[ Printf.sprintf "cannot write %s: %s" path msg ]
                    ~total:1 "certify-io";
                ])
      in
      { report with Analysis.Report.stages = report.Analysis.Report.stages @ stages })
    instances reports

let main protocols ns report_format jobs max_configs list dump certify certify_dir =
  if list then list_entries ()
  else begin
    let jobs = match jobs with Some j -> j | None -> Engine.Pool.default_jobs () in
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
      exit 2
    end;
    let ns = if ns = [] then [ 3; 4 ] else ns in
    (match List.find_opt (fun n -> n < 2) ns with
    | Some n ->
        Printf.eprintf "--n must be >= 2 (got %d)\n" n;
        exit 2
    | None -> ());
    match dump with
    | Some key -> dump_ir ~key ~n:(List.hd ns)
    | None -> (
    match resolve_entries protocols with
    | Error missing ->
        Printf.eprintf "unknown protocol%s: %s (available: %s, all)\n"
          (if List.length missing = 1 then "" else "s")
          (String.concat ", " missing)
          (String.concat ", " (Analysis.Registry.keys ()));
        exit 2
    | Ok entries ->
        let reports =
          Engine.Pool.with_pool ~jobs (fun pool ->
              Analysis.Driver.analyze_all ~pool ~max_configs ~ns entries)
        in
        let reports =
          if certify then certify_reports ~dir:certify_dir ~entries ~ns reports else reports
        in
        (match report_format with
        | "json" -> print_endline (Analysis.Report.list_to_json reports)
        | _ ->
            List.iter (fun r -> Format.printf "%a@.@." Analysis.Report.pp r) reports;
            Format.printf "%a" Analysis.Report.pp_summary reports);
        if Analysis.Report.all_ok reports then 0 else 1)
  end

open Cmdliner

let protocols_arg =
  let doc =
    "Protocol instance to analyze (repeatable; $(b,all) for the whole catalogue — the default). \
     See $(b,--list)."
  in
  Arg.(value & opt_all string [] & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let ns_arg =
  let doc = "Population size (repeatable; default 3 and 4)." in
  Arg.(value & opt_all int [] & info [ "n" ] ~docv:"N" ~doc)

let report_arg =
  let doc = "Output format: text or json." in
  Arg.(value & opt string "text" & info [ "report" ] ~docv:"FORMAT" ~doc)

let jobs_arg =
  let doc =
    "Number of domains for the parallel scans (default: $(b,REPRO_JOBS) or the recommended \
     domain count). Verdicts are identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let max_configs_arg =
  let doc =
    "Exhaustive-analysis budget: silence classification and model checking skip instances with \
     more configurations than this."
  in
  Arg.(
    value
    & opt int Analysis.Driver.default_max_configs
    & info [ "max-configs" ] ~docv:"COUNT" ~doc)

let list_arg =
  let doc = "List the protocol catalogue and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let dump_ir_arg =
  let doc =
    "Print the lowered kernel-compiler IR (fields, packed code space, pass log) for one \
     catalogue entry at the first $(b,--n) and exit. The golden files under test/golden/ are \
     regenerated with this flag."
  in
  Arg.(value & opt (some string) None & info [ "dump-ir" ] ~docv:"NAME" ~doc)

let certify_arg =
  let doc =
    "Run the symbolic certifier (interval+parity abstract interpretation, inductive \
     invariants, lexicographic ranking synthesis) on every analyzed instance and write one \
     schema-versioned JSON certificate per instance under $(b,--certify-dir)."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let certify_dir_arg =
  let doc = "Output directory for $(b,--certify) JSON certificates." in
  Arg.(value & opt string "certificates" & info [ "certify-dir" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "statically analyze the population-protocol catalogue" in
  let info = Cmd.info "analyze" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const main $ protocols_arg $ ns_arg $ report_arg $ jobs_arg $ max_configs_arg $ list_arg
      $ dump_ir_arg $ certify_arg $ certify_dir_arg)

(* cmdliner only recognizes single-character names as short options, but
   the documented interface is "--n 4"; accept both spellings. *)
let argv =
  Array.map
    (fun a ->
      if String.equal a "--n" then "-n"
      else if String.length a > 4 && String.sub a 0 4 = "--n=" then
        "-n" ^ String.sub a 4 (String.length a - 4)
      else a)
    Sys.argv

let () = exit (Cmd.eval' ~argv cmd)
