(* experiments_main: regenerate the data behind EXPERIMENTS.md.

     experiments_main                 run every experiment (quick mode)
     experiments_main --full          full-size sweeps (slow)
     experiments_main -e table1 ...   run selected experiments
     experiments_main --jobs 4        run trials on 4 domains (same output)
     experiments_main --out-dir DIR   also write per-experiment manifests
                                      and metrics (telemetry) into DIR *)

let ensure_dir path =
  match Unix.mkdir path 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "--out-dir %s: %s\n" path (Unix.error_message e);
      exit 2

let main list_only full names seed jobs out out_dir =
  if list_only then begin
    List.iter
      (fun e ->
        Printf.printf "%-14s %s\n" e.Experiments.Report.name e.Experiments.Report.description)
      Experiments.Report.all;
    exit 0
  end;
  let mode = if full then Experiments.Exp_common.Full else Experiments.Exp_common.Quick in
  let jobs = match jobs with Some j -> j | None -> Engine.Pool.default_jobs () in
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  let selected =
    match names with
    | [] -> Experiments.Report.all
    | names ->
        List.map
          (fun n ->
            match Experiments.Report.find n with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment '%s' (available: %s)\n" n
                  (String.concat ", "
                     (List.map (fun e -> e.Experiments.Report.name) Experiments.Report.all));
                exit 2)
          names
  in
  Option.iter ensure_dir out_dir;
  let body =
    String.concat "\n"
      (List.map
         (fun e ->
           let name = e.Experiments.Report.name in
           (* Install ambient registries (metrics + figures) per
              experiment so the trial runner, engines, and chart emitters
              record into them; uninstall before writing so a crash in
              one experiment never leaks into the next. *)
           let reg =
             Option.map
               (fun _ ->
                 let reg = Telemetry.Metrics.create () in
                 Telemetry.Metrics.install reg;
                 reg)
               out_dir
           in
           let figs =
             Option.map
               (fun _ ->
                 let figs = Viz.Figures.create () in
                 Viz.Figures.install figs;
                 figs)
               out_dir
           in
           let t0 = Unix.gettimeofday () in
           let b =
             Fun.protect
               ~finally:(fun () ->
                 if reg <> None then Telemetry.Metrics.uninstall ();
                 if figs <> None then Viz.Figures.uninstall ())
               (fun () -> e.Experiments.Report.run ~mode ~seed ~jobs)
           in
           let wall_clock_s = Unix.gettimeofday () -. t0 in
           Option.iter
             (fun dir ->
               let reg = Option.get reg in
               Telemetry.Metrics.write ~path:(Filename.concat dir (name ^ ".metrics.json")) reg;
               (* Every figure the experiment emitted, plus its per-phase
                  wall-time profile when any spans were recorded. *)
               let write_svg fname chart =
                 let oc = open_out (Filename.concat dir (fname ^ ".svg")) in
                 output_string oc (Viz.Plot.render chart);
                 close_out oc
               in
               List.iter
                 (fun (fname, chart) -> write_svg fname chart)
                 (Viz.Figures.charts (Option.get figs));
               let metrics_json = Telemetry.Metrics.to_json reg in
               let profile = Viz.Charts.phase_profile metrics_json in
               if Viz.Charts.has_spans metrics_json then
                 write_svg (name ^ "-phases") profile;
               let manifest =
                 Telemetry.Manifest.make ~run:name ~seed ~jobs
                   ~params:
                     [
                       ( "mode",
                         Telemetry.Json.String (if full then "full" else "quick") );
                     ]
                   ~wall_clock_s ()
               in
               Telemetry.Manifest.write
                 ~path:(Filename.concat dir (name ^ ".manifest.json"))
                 manifest)
             out_dir;
           Printf.sprintf "%s\n(experiment '%s' took %.1f s wall clock)\n" b name wall_clock_s)
         selected)
  in
  (match out with
  | None -> print_string body
  | Some path ->
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      Printf.printf "wrote %s\n" path);
  0

open Cmdliner

let list_arg =
  let doc = "List the available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let full_arg =
  let doc = "Full-size sweeps (slow); default is quick mode." in
  Arg.(value & flag & info [ "full" ] ~doc)

let names_arg =
  let doc = "Experiment name (repeatable); default: all." in
  Arg.(value & opt_all string [] & info [ "e"; "experiment" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Number of domains running trials in parallel (default: $(b,REPRO_JOBS) or the \
     recommended domain count). Results are identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let out_arg =
  let doc = "Write the report to a file instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let out_dir_arg =
  let doc =
    "Write per-experiment telemetry into $(docv) (created if missing): \
     $(i,NAME).manifest.json (what ran: seed, jobs, wall clock, git revision) and \
     $(i,NAME).metrics.json (engine counters, per-trial wall-time histogram)."
  in
  Arg.(value & opt (some string) None & info [ "out-dir" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "regenerate the paper-reproduction experiment reports" in
  let info = Cmd.info "experiments_main" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const main $ list_arg $ full_arg $ names_arg $ seed_arg $ jobs_arg $ out_arg $ out_dir_arg)

let () = exit (Cmd.eval' cmd)
