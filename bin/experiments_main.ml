(* experiments_main: regenerate the data behind EXPERIMENTS.md.

     experiments_main                 run every experiment (quick mode)
     experiments_main --full          full-size sweeps (slow)
     experiments_main -e table1 ...   run selected experiments
     experiments_main --jobs 4       run trials on 4 domains (same output) *)

let main list_only full names seed jobs out =
  if list_only then begin
    List.iter
      (fun e ->
        Printf.printf "%-14s %s\n" e.Experiments.Report.name e.Experiments.Report.description)
      Experiments.Report.all;
    exit 0
  end;
  let mode = if full then Experiments.Exp_common.Full else Experiments.Exp_common.Quick in
  let jobs = match jobs with Some j -> j | None -> Engine.Pool.default_jobs () in
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  let selected =
    match names with
    | [] -> Experiments.Report.all
    | names ->
        List.map
          (fun n ->
            match Experiments.Report.find n with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment '%s' (available: %s)\n" n
                  (String.concat ", "
                     (List.map (fun e -> e.Experiments.Report.name) Experiments.Report.all));
                exit 2)
          names
  in
  let body =
    String.concat "\n"
      (List.map
         (fun e ->
           let t0 = Unix.gettimeofday () in
           let b = e.Experiments.Report.run ~mode ~seed ~jobs in
           Printf.sprintf "%s\n(experiment '%s' took %.1f s wall clock)\n" b
             e.Experiments.Report.name (Unix.gettimeofday () -. t0))
         selected)
  in
  (match out with
  | None -> print_string body
  | Some path ->
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      Printf.printf "wrote %s\n" path);
  0

open Cmdliner

let list_arg =
  let doc = "List the available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let full_arg =
  let doc = "Full-size sweeps (slow); default is quick mode." in
  Arg.(value & flag & info [ "full" ] ~doc)

let names_arg =
  let doc = "Experiment name (repeatable); default: all." in
  Arg.(value & opt_all string [] & info [ "e"; "experiment" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Number of domains running trials in parallel (default: $(b,REPRO_JOBS) or the \
     recommended domain count). Results are identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let out_arg =
  let doc = "Write the report to a file instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "regenerate the paper-reproduction experiment reports" in
  let info = Cmd.info "experiments_main" ~version:"1.0" ~doc in
  Cmd.v info Term.(const main $ list_arg $ full_arg $ names_arg $ seed_arg $ jobs_arg $ out_arg)

let () = exit (Cmd.eval' cmd)
