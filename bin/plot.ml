(* plot: render telemetry files into the paper's SVG figures.

     plot --chart slope events.jsonl                 log-log scaling fit
     plot --chart recovery-cdf soak.jsonl            burst recovery CDF
     plot --chart availability 0.25=a.jsonl 1=b.jsonl 4=c.jsonl
                                                     availability vs offered load
     plot --chart phases run.metrics.json            per-phase wall-time profile
     plot --chart slope events.jsonl -o fig.svg      write a file instead of stdout
     plot --embed                                    regenerate figures/*.svg from
                                                     the checked-in fixtures

   Output is deterministic in the input bytes — the same files render the
   same SVG on every run and every machine (golden tests hold the byte
   sequences). *)

type kind = Slope | Availability | Recovery_cdf | Phases

let fail fmt = Printf.ksprintf (fun msg -> Printf.eprintf "plot: %s\n" msg; exit 2) fmt

let read_events path =
  match open_in path with
  | exception Sys_error msg -> fail "%s" msg
  | ic -> (
      let result = Telemetry.Timeline.load ic in
      close_in ic;
      match result with
      | Ok events -> events
      | Error msg -> fail "%s: %s" path msg)

let read_json path =
  match open_in_bin path with
  | exception Sys_error msg -> fail "%s" msg
  | ic -> (
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Telemetry.Json.parse s with
      | Ok json -> json
      | Error msg -> fail "%s: %s" path msg)

let run_label (run : Telemetry.Events.run) =
  Printf.sprintf "%s / %s" run.Telemetry.Events.protocol run.Telemetry.Events.engine

(* LOAD=FILE inputs: each file is one soak's events, folded to one mean
   availability sample per (protocol, engine) at that offered load. *)
let availability_series inputs =
  let samples =
    List.concat_map
      (fun input ->
        let load, path =
          match String.index_opt input '=' with
          | Some i -> (
              let l = String.sub input 0 i in
              let path = String.sub input (i + 1) (String.length input - i - 1) in
              match float_of_string_opt l with
              | Some load when load > 0.0 -> (load, path)
              | Some _ | None -> fail "bad load in '%s' (want LOAD=FILE, LOAD > 0)" input)
          | None -> fail "--chart availability takes LOAD=FILE inputs (got '%s')" input
        in
        let summaries = Telemetry.Timeline.fold (read_events path) in
        let by_label =
          List.fold_left
            (fun acc (s : Telemetry.Timeline.summary) ->
              let label = run_label s.Telemetry.Timeline.run in
              let prev = match List.assoc_opt label acc with Some l -> l | None -> [] in
              (label, s :: prev) :: List.remove_assoc label acc)
            [] summaries
        in
        List.rev_map
          (fun (label, group) -> (label, (load, Viz.Charts.mean_availability group)))
          by_label)
      inputs
  in
  (* group points per label, preserving first-appearance series order *)
  List.fold_left
    (fun acc (label, point) ->
      match List.assoc_opt label acc with
      | Some _ -> List.map (fun (l, ps) -> if l = label then (l, ps @ [ point ]) else (l, ps)) acc
      | None -> acc @ [ (label, [ point ]) ])
    [] samples

let build kind title inputs =
  match kind with
  | Slope ->
      let events = List.concat_map read_events inputs in
      Viz.Charts.slope_fit ?title events
  | Recovery_cdf ->
      let events = List.concat_map read_events inputs in
      Viz.Charts.recovery_cdf ?title events
  | Availability -> Viz.Charts.availability ?title (availability_series inputs)
  | Phases -> (
      match inputs with
      | [ path ] -> Viz.Charts.phase_profile ?title (read_json path)
      | _ -> fail "--chart phases takes exactly one metrics JSON file")

let write_out out svg =
  match out with
  | None -> print_string svg
  | Some path ->
      let oc = open_out path in
      output_string oc svg;
      close_out oc

(* --embed: the standard figure set, rendered from the checked-in
   fixtures under test/golden/ into figures/ (both referenced from
   EXPERIMENTS.md; CI re-runs this and diffs, so the committed figures
   never go stale). *)
let embed root =
  let fixture f = Filename.concat (Filename.concat root "test/golden") f in
  let figures = Filename.concat root "figures" in
  (match Unix.mkdir figures 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (e, _, _) -> fail "%s: %s" figures (Unix.error_message e));
  let emit name chart =
    let path = Filename.concat figures name in
    write_out (Some path) (Viz.Plot.render chart);
    Printf.printf "wrote %s\n" path
  in
  emit "table1-slope.svg"
    (Viz.Charts.slope_fit
       ~title:"Convergence time vs population size (fixture sweep)"
       (read_events (fixture "viz_slope.jsonl")));
  emit "chaos-availability.svg"
    (Viz.Charts.availability
       (availability_series
          [
            "0.25=" ^ fixture "viz_avail_025.jsonl";
            "1=" ^ fixture "viz_avail_1.jsonl";
            "4=" ^ fixture "viz_avail_4.jsonl";
          ]));
  emit "recovery-cdf.svg" (Viz.Charts.recovery_cdf (read_events (fixture "viz_soak.jsonl")));
  emit "phase-profile.svg" (Viz.Charts.phase_profile (read_json (fixture "viz_phases.metrics.json")));
  0

let main embed_flag root chart title out inputs =
  if embed_flag then embed root
  else
    match chart with
    | None -> fail "--chart is required (slope, availability, recovery-cdf, phases)"
    | Some kind ->
        if inputs = [] then fail "no input files";
        write_out out (Viz.Plot.render (build kind title inputs));
        0

open Cmdliner

let chart_arg =
  let kinds =
    [
      ("slope", Slope);
      ("availability", Availability);
      ("recovery-cdf", Recovery_cdf);
      ("phases", Phases);
    ]
  in
  let doc =
    "Chart to render: $(b,slope) (log-log convergence scaling from events files), \
     $(b,availability) (availability vs offered load; inputs are LOAD=FILE pairs), \
     $(b,recovery-cdf) (burst recovery CDF from events files), $(b,phases) (per-phase \
     wall-time profile from one metrics JSON)."
  in
  Arg.(value & opt (some (enum kinds)) None & info [ "c"; "chart" ] ~docv:"KIND" ~doc)

let title_arg =
  let doc = "Override the chart title." in
  Arg.(value & opt (some string) None & info [ "title" ] ~docv:"TITLE" ~doc)

let out_arg =
  let doc = "Write the SVG to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let embed_arg =
  let doc =
    "Regenerate the standard figure set: render every figures/*.svg referenced from \
     EXPERIMENTS.md out of the checked-in fixtures under test/golden/."
  in
  Arg.(value & flag & info [ "embed" ] ~doc)

let root_arg =
  let doc = "Repository root for --embed (where test/golden/ and figures/ live)." in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let inputs_arg =
  let doc = "Input files (events JSONL; LOAD=FILE for availability; metrics JSON for phases)." in
  Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)

let cmd =
  let doc = "render telemetry events and metrics files into SVG figures" in
  let info = Cmd.info "plot" ~version:"1.0" ~doc in
  Cmd.v info Term.(const main $ embed_arg $ root_arg $ chart_arg $ title_arg $ out_arg $ inputs_arg)

let () = exit (Cmd.eval' cmd)
