(* detlint: determinism lint over lib/ and bin/.

   The engine's contract is bit-identical results for a given PRNG root
   at any --jobs; the classic ways to break that are direct Stdlib
   Random use (bypassing lib/prng), Hashtbl iteration order feeding
   output, and wall-clock reads on result paths. This tool scans every
   .ml file under lib/ and bin/ for those tokens and fails on any
   occurrence not covered by the allowlist file (detlint.allow at the
   repository root), where every audited exception carries its
   justification. Stale allowlist entries fail too, so the file cannot
   rot.

   Exit codes: 0 clean, 1 findings or stale entries, 2 malformed
   allowlist or usage error. *)

(* Tokens are built by concatenation so this file does not flag itself. *)
let tokens =
  [
    ("Random" ^ ".", "Stdlib Random bypasses lib/prng's deterministic streams");
    ("Hashtbl" ^ ".iter", "Hashtbl iteration order is seed-dependent");
    ("Hashtbl" ^ ".fold", "Hashtbl fold order is seed-dependent");
    ("Unix" ^ ".gettimeofday", "wall-clock read");
    ("Unix" ^ ".time", "wall-clock read");
    ("Sys" ^ ".time", "cpu-clock read");
  ]

(* lib/prng wraps Random behind splittable deterministic streams — the
   one legitimate home for it. *)
let exempt_dirs = [ "lib/prng" ]

let roots = [ "lib"; "bin" ]

let contains ~token line =
  let n = String.length line and k = String.length token in
  let rec go i = i + k <= n && (String.sub line i k = token || go (i + 1)) in
  k > 0 && go 0

let ml_files () =
  let rec walk acc dir =
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then walk acc path
        else if Filename.check_suffix name ".ml" then path :: acc
        else acc)
      acc
      (Sys.readdir dir)
  in
  List.sort compare (List.fold_left walk [] roots)

type finding = { path : string; token : string; line : int }

let scan_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let findings = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           List.iter
             (fun (token, _) ->
               if contains ~token line then
                 findings := { path; token; line = !lineno } :: !findings)
             tokens
         done
       with End_of_file -> ());
      List.rev !findings)

(* detlint.allow lines: "<path> <token> -- <justification>". Blank lines
   and #-comments are skipped. A missing justification is a malformed
   file (exit 2): an unexplained exception defeats the audit. *)
type allow = { a_path : string; a_token : string; justification : string }

let parse_allowlist file =
  if not (Sys.file_exists file) then Ok []
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] and errors = ref [] in
        let lineno = ref 0 in
        (try
           while true do
             let line = input_line ic in
             incr lineno;
             let line = String.trim line in
             if line <> "" && line.[0] <> '#' then begin
               match String.index_opt line ' ' with
               | None -> errors := Printf.sprintf "line %d: expected \"path token -- justification\"" !lineno :: !errors
               | Some sp -> (
                   let a_path = String.sub line 0 sp in
                   let rest = String.trim (String.sub line (sp + 1) (String.length line - sp - 1)) in
                   let sep = " -- " in
                   let rec find_sep i =
                     if i + String.length sep > String.length rest then None
                     else if String.sub rest i (String.length sep) = sep then Some i
                     else find_sep (i + 1)
                   in
                   match find_sep 0 with
                   | None ->
                       errors :=
                         Printf.sprintf "line %d: missing \" -- justification\"" !lineno
                         :: !errors
                   | Some i ->
                       let a_token = String.trim (String.sub rest 0 i) in
                       let justification =
                         String.trim
                           (String.sub rest (i + String.length sep)
                              (String.length rest - i - String.length sep))
                       in
                       if a_token = "" || justification = "" then
                         errors :=
                           Printf.sprintf "line %d: empty token or justification" !lineno
                           :: !errors
                       else entries := { a_path; a_token; justification } :: !entries)
             end
           done
         with End_of_file -> ());
        if !errors <> [] then Error (List.rev !errors) else Ok (List.rev !entries))
  end

let () =
  let allow_file = "detlint.allow" in
  match parse_allowlist allow_file with
  | Error errors ->
      List.iter (fun e -> Printf.eprintf "detlint: %s: %s\n" allow_file e) errors;
      exit 2
  | Ok allows ->
      let exempt path =
        List.exists
          (fun d ->
            let d = d ^ "/" in
            String.length path >= String.length d && String.sub path 0 (String.length d) = d)
          exempt_dirs
      in
      let findings =
        List.concat_map (fun f -> if exempt f then [] else scan_file f) (ml_files ())
      in
      let allowed f =
        List.find_opt
          (fun a -> String.equal a.a_path f.path && String.equal a.a_token f.token)
          allows
      in
      let violations = List.filter (fun f -> allowed f = None) findings in
      let stale =
        List.filter
          (fun a ->
            not
              (List.exists
                 (fun f -> String.equal a.a_path f.path && String.equal a.a_token f.token)
                 findings))
          allows
      in
      List.iter
        (fun f ->
          Printf.printf "%s:%d: %s (%s)\n" f.path f.line f.token
            (List.assoc f.token tokens))
        violations;
      List.iter
        (fun a ->
          Printf.printf "%s: stale allowlist entry: %s %s (no longer matches)\n" allow_file
            a.a_path a.a_token)
        stale;
      if violations = [] && stale = [] then begin
        Printf.printf "detlint: %d file(s) clean (%d audited exception(s))\n"
          (List.length (ml_files ()))
          (List.length allows);
        exit 0
      end
      else exit 1
