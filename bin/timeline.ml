(* timeline: fold a JSONL events file (ssr_sim --events, experiment runs)
   into a per-run recovery summary. Examples:

     ssr_sim -p silent -n 64 -s worst-case --events run.jsonl
     timeline run.jsonl
     timeline - < run.jsonl *)

let main path =
  let ic, close =
    if path = "-" then (stdin, fun () -> ())
    else
      match open_in path with
      | ic -> (ic, fun () -> close_in ic)
      | exception Sys_error msg ->
          Printf.eprintf "timeline: %s\n" msg;
          exit 2
  in
  let result = Telemetry.Timeline.load ic in
  close ();
  match result with
  | Error msg ->
      Printf.eprintf "timeline: %s\n" msg;
      1
  | Ok [] ->
      Printf.eprintf "timeline: no events in %s\n" (if path = "-" then "stdin" else path);
      1
  | Ok events ->
      let summaries = Telemetry.Timeline.fold events in
      List.iteri
        (fun i summary ->
          if i > 0 then print_newline ();
          Format.printf "%a@." Telemetry.Timeline.pp_summary summary)
        summaries;
      Printf.printf "%d run%s, %d events\n" (List.length summaries)
        (if List.length summaries = 1 then "" else "s")
        (List.length events);
      0

open Cmdliner

let path_arg =
  let doc = "JSONL events file produced by ssr_sim --events (schema v1); - reads stdin." in
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc)

let cmd =
  let doc = "summarize a telemetry events file: convergence, violations, fault recovery" in
  let info = Cmd.info "timeline" ~version:"1.0" ~doc in
  Cmd.v info Term.(const main $ path_arg)

let () = exit (Cmd.eval' cmd)
