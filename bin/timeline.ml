(* timeline: fold a JSONL events file (ssr_sim --events, experiment runs)
   into a per-run recovery summary, or serve it live. Examples:

     ssr_sim -p silent -n 64 -s worst-case --events run.jsonl
     timeline run.jsonl
     timeline --sla 48 run.jsonl
     timeline - < run.jsonl
     timeline --serve --port 8080 run.jsonl     live dashboard while
                                                ssr_sim --chaos appends *)

let serve_main port path =
  if path = "-" then begin
    Printf.eprintf "timeline: --serve needs a file path to tail, not stdin\n";
    exit 2
  end;
  let server = Viz.Serve.create ~port ~path () in
  Printf.printf "timeline: serving %s on http://127.0.0.1:%d/ (ctrl-c to stop)\n%!" path
    (Viz.Serve.port server);
  Viz.Serve.run server;
  0

let summarize sla_budget path =
  (match sla_budget with
  | Some b when not (b > 0.0) ->
      Printf.eprintf "timeline: --sla budget must be > 0 (got %g)\n" b;
      exit 2
  | _ -> ());
  let ic, close =
    if path = "-" then (stdin, fun () -> ())
    else
      match open_in path with
      | ic -> (ic, fun () -> close_in ic)
      | exception Sys_error msg ->
          Printf.eprintf "timeline: %s\n" msg;
          exit 2
  in
  let result = Telemetry.Timeline.load ic in
  close ();
  match result with
  | Error msg ->
      Printf.eprintf "timeline: %s\n" msg;
      1
  | Ok [] ->
      Printf.eprintf "timeline: no events in %s\n" (if path = "-" then "stdin" else path);
      1
  | Ok events ->
      let summaries = Telemetry.Timeline.fold events in
      List.iteri
        (fun i summary ->
          if i > 0 then print_newline ();
          Format.printf "%a@." (Telemetry.Timeline.pp_summary ?sla_budget) summary)
        summaries;
      Printf.printf "%d run%s, %d events\n" (List.length summaries)
        (if List.length summaries = 1 then "" else "s")
        (List.length events);
      (match sla_budget with
      | None -> ()
      | Some budget ->
          let misses, censored =
            List.fold_left
              (fun (m, c) s ->
                let v = Telemetry.Timeline.check_sla ~budget s in
                (m + v.Telemetry.Timeline.sla_misses, c + v.Telemetry.Timeline.sla_censored))
              (0, 0) summaries
          in
          if misses = 0 && censored = 0 then
            Printf.printf "SLA (budget %.2f): MET across all runs\n" budget
          else
            Printf.printf "SLA (budget %.2f): MISSED (%d over budget, %d never recovered)\n"
              budget misses censored);
      0

let main serve sla_budget port path = if serve then serve_main port path else summarize sla_budget path

open Cmdliner

let path_arg =
  let doc = "JSONL events file produced by ssr_sim --events (schema v1); - reads stdin." in
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc)

let sla_arg =
  let doc =
    "Recovery budget in parallel time units. Each burst that broke correctness is checked \
     against it: recoveries over budget are SLA misses, bursts never recovered are censored \
     misses, and a per-run and aggregate verdict is printed."
  in
  Arg.(value & opt (some float) None & info [ "sla" ] ~docv:"BUDGET" ~doc)

let serve_arg =
  let doc =
    "Serve a live dashboard over $(i,FILE) instead of printing a summary: a single-threaded \
     HTTP server tails the events file (tolerating a writer mid-line) and streams incremental \
     recovery/availability state to the browser over Server-Sent Events, so a running \
     $(b,ssr_sim --chaos) soak is watchable as it writes."
  in
  Arg.(value & flag & info [ "serve" ] ~doc)

let port_arg =
  let doc = "Port for --serve (0 picks a free port and prints it)." in
  Arg.(value & opt int 8080 & info [ "port" ] ~docv:"PORT" ~doc)

let cmd =
  let doc = "summarize a telemetry events file: convergence, violations, fault recovery" in
  let info = Cmd.info "timeline" ~version:"1.0" ~doc in
  Cmd.v info Term.(const main $ serve_arg $ sla_arg $ port_arg $ path_arg)

let () = exit (Cmd.eval' cmd)
