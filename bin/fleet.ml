(* fleet: supervised soak-fleet orchestrator over a job file and/or a
   local HTTP control socket. Examples:

     fleet jobs.jsonl --out-dir fleet-out --workers 4
     fleet jobs.jsonl --chaos kill-worker:0.3 --chaos-seed 7
     fleet --resume jobs.jsonl            re-queue incomplete jobs after a crash
     fleet --serve --port 8099            idle fleet accepting POST /submit
     fleet jobs.jsonl --serve --port 0    run the file and watch it live

   One line of the job file = one JSON job spec (see Fleet.Job); the
   fleet journals every decision to <out-dir>/fleet.journal.jsonl and
   writes per-job events/manifest files that are bit-identical for a
   fixed spec regardless of --workers, retries, or kill/--resume. *)

let stop_signal = ref None

let install_signal_handlers () =
  let note reason (_ : int) = if !stop_signal = None then stop_signal := Some reason in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (note "sigterm"))
   with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle (note "sigint"))
  with Invalid_argument _ -> ()

(* Flow-controlled job-file feeder: reads only while the admission queue
   has room, so a job file larger than the queue cap trickles in instead
   of shedding its own tail. *)
type feeder = { ic : in_channel; mutable line_no : int; mutable exhausted : bool }

let feed feeder orch =
  match feeder with
  | None -> ()
  | Some f ->
      while (not f.exhausted) && Fleet.Orchestrator.has_capacity orch do
        match input_line f.ic with
        | exception End_of_file ->
            f.exhausted <- true;
            close_in_noerr f.ic
        | line ->
            f.line_no <- f.line_no + 1;
            let line = String.trim line in
            if line <> "" && not (String.length line > 0 && line.[0] = '#') then begin
              match Fleet.Job.of_line line with
              | Error msg ->
                  Printf.eprintf "fleet: %s:%d: %s\n%!"
                    (match f.ic == stdin with true -> "-" | false -> "jobs") f.line_no msg;
                  Fleet.Orchestrator.reject orch
                    ~id:(Printf.sprintf "line-%d" f.line_no)
                    ~reason:msg
              | Ok job -> (
                  (* [has_capacity] gated the read, so a shed here can
                     only be a duplicate id (e.g. re-feeding the job file
                     of a resumed fleet) — report and keep feeding. *)
                  match Fleet.Orchestrator.submit orch job with
                  | `Accepted -> ()
                  | `Shed reason ->
                      Printf.eprintf "fleet: job %s shed: %s\n%!" job.Fleet.Job.id reason)
            end
      done

let submit_body orch body =
  let accepted = ref 0 in
  let shed = ref [] in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" then
           match Fleet.Job.of_line line with
           | Error msg ->
               Fleet.Orchestrator.reject orch ~id:"socket" ~reason:msg;
               shed := ("socket", msg) :: !shed
           | Ok job -> (
               match Fleet.Orchestrator.submit orch job with
               | `Accepted -> incr accepted
               | `Shed reason -> shed := (job.Fleet.Job.id, reason) :: !shed));
  let reply =
    Telemetry.Json.Obj
      [
        ("accepted", Telemetry.Json.Int !accepted);
        ( "shed",
          Telemetry.Json.List
            (List.rev_map
               (fun (id, reason) ->
                 Telemetry.Json.Obj
                   [
                     ("id", Telemetry.Json.String id); ("reason", Telemetry.Json.String reason);
                   ])
               !shed) );
      ]
  in
  (!shed = [], Telemetry.Json.to_string reply)

let main job_file out_dir journal workers queue_cap backoff chaos chaos_seed resume serve port
    metrics =
  if workers < 1 then begin
    Printf.eprintf "fleet: --workers must be >= 1 (got %d)\n" workers;
    exit 2
  end;
  if job_file = None && not serve then begin
    Printf.eprintf "fleet: nothing to do (give a job file, or --serve)\n";
    exit 2
  end;
  let chaos =
    match chaos with
    | None -> Chaos.Fleet_faults.none
    | Some spec -> (
        match Chaos.Fleet_faults.parse spec with
        | Ok t -> t
        | Error msg ->
            Printf.eprintf "fleet: --chaos: %s\n" msg;
            exit 2)
  in
  let cfg =
    {
      (Fleet.Orchestrator.default_config ~out_dir) with
      Fleet.Orchestrator.workers;
      queue_cap;
      backoff_base = backoff;
      chaos;
      chaos_seed;
      journal_path =
        (match journal with
        | Some path -> path
        | None -> Filename.concat out_dir "fleet.journal.jsonl");
    }
  in
  let reg = Telemetry.Metrics.create () in
  if metrics <> None then Telemetry.Metrics.install reg;
  let orch =
    try Fleet.Orchestrator.create ~resume cfg
    with Failure msg | Invalid_argument msg ->
      Printf.eprintf "fleet: %s\n" msg;
      exit 2
  in
  let feeder =
    Option.map
      (fun path ->
        match if path = "-" then Ok stdin else try Ok (open_in path) with Sys_error m -> Error m with
        | Ok ic -> { ic; line_no = 0; exhausted = false }
        | Error msg ->
            Printf.eprintf "fleet: %s\n" msg;
            exit 2)
      job_file
  in
  let server =
    if not serve then None
    else begin
      let source =
        {
          Viz.Serve.page = Viz.Fleet_board.page ~title:(Filename.basename out_dir);
          snapshot =
            (fun () -> Telemetry.Json.to_string (Fleet.Orchestrator.snapshot_json orch));
          refresh = (fun () -> false);
          submit = Some (submit_body orch);
          shutdown = (fun () -> ());
        }
      in
      let s = Viz.Serve.of_source ~port source in
      Printf.printf "fleet: serving http://127.0.0.1:%d/ (POST /submit takes JSONL specs)\n%!"
        (Viz.Serve.port s);
      Some s
    end
  in
  install_signal_handlers ();
  let last_stats = ref None in
  let on_tick orch =
    feed feeder orch;
    match server with
    | None -> ()
    | Some s ->
        Viz.Serve.poll ~timeout:0.0 s;
        let stats = Fleet.Orchestrator.stats orch in
        if !last_stats <> Some stats then begin
          last_stats := Some stats;
          Viz.Serve.notify s
        end
  in
  let more_work () =
    (match feeder with Some f -> not f.exhausted | None -> false) || server <> None
  in
  let reason =
    Fleet.Orchestrator.run ~on_tick ~should_drain:(fun () -> !stop_signal) ~more_work orch
  in
  Option.iter Viz.Serve.close server;
  let s = Fleet.Orchestrator.stats orch in
  Printf.printf "fleet: drained (%s) — %d submitted, %d completed, %d failed, %d shed, %d retries\n"
    reason s.Fleet.Orchestrator.submitted s.Fleet.Orchestrator.completed
    s.Fleet.Orchestrator.failed s.Fleet.Orchestrator.shed s.Fleet.Orchestrator.retries;
  Printf.printf "fleet: journal %s\n" cfg.Fleet.Orchestrator.journal_path;
  (match metrics with
  | None -> ()
  | Some path ->
      Telemetry.Metrics.uninstall ();
      Telemetry.Metrics.write ~path reg);
  if s.Fleet.Orchestrator.failed > 0 then 1 else 0

open Cmdliner

let job_file_arg =
  let doc = "JSONL job file: one JSON job spec per line ('#' comments and blank lines skipped); - reads stdin. Fed under flow control: lines are read only while the admission queue has room." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"JOBS" ~doc)

let out_dir_arg =
  let doc = "Output directory for per-job events/manifest files and the journal (created if missing)." in
  Arg.(value & opt string "fleet-out" & info [ "out-dir" ] ~docv:"DIR" ~doc)

let journal_arg =
  let doc = "Journal path (default: $(b,OUT-DIR)/fleet.journal.jsonl)." in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let workers_arg =
  let doc = "Concurrent jobs (worker domains)." in
  Arg.(value & opt int 2 & info [ "w"; "workers" ] ~docv:"N" ~doc)

let queue_cap_arg =
  let doc = "Admission queue bound; submissions beyond it are shed with an explicit verdict." in
  Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)

let backoff_arg =
  let doc = "Retry backoff base, in scheduler ticks (delay = base*2^(attempt-1) + jitter)." in
  Arg.(value & opt int 4 & info [ "backoff" ] ~docv:"TICKS" ~doc)

let chaos_arg =
  let doc =
    "Fault injection aimed at the fleet itself (not the protocols): comma-separated \
     $(b,kill-worker:P), $(b,stall-job:P), $(b,torn-journal). Decisions are drawn \
     deterministically from --chaos-seed, the job id and the attempt."
  in
  Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)

let chaos_seed_arg =
  let doc = "Seed for fleet chaos decisions." in
  Arg.(value & opt int 0 & info [ "chaos-seed" ] ~docv:"SEED" ~doc)

let resume_arg =
  let doc =
    "Replay the journal before starting: completed/failed jobs stay terminal (their outputs \
     are never rewritten), incomplete jobs are re-queued with their attempt counts, and new \
     journal entries append."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let serve_arg =
  let doc =
    "Serve the live status board and a submission endpoint: GET / (dashboard), GET /data.json, \
     GET /events (SSE), POST /submit (JSONL job specs; 202/409 with per-job verdicts). Keeps \
     an idle fleet alive until a shutdown signal."
  in
  Arg.(value & flag & info [ "serve" ] ~doc)

let port_arg =
  let doc = "Port for --serve (0 picks a free port and prints it)." in
  Arg.(value & opt int 8098 & info [ "port" ] ~docv:"PORT" ~doc)

let metrics_arg =
  let doc = "Write a JSON metrics summary (fleet counters, engine counters) to $(docv) at exit." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "supervised fleet orchestrator for simulation/soak jobs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Multiplexes many trial/soak jobs over a domain pool with bounded-queue backpressure, \
         per-job interaction-clock deadlines, supervised retries with exponential backoff, \
         crash-safe journaling with $(b,--resume), and graceful drain on SIGTERM/SIGINT \
         (in-flight jobs finish; queued jobs stay incomplete in the journal for the next \
         $(b,--resume)). For a fixed job spec the per-job events file is bit-identical \
         whatever the worker count, retry history, or kill/resume cycle.";
    ]
  in
  let info = Cmd.info "fleet" ~version:"1.0" ~doc ~man in
  Cmd.v info
    Term.(
      const main $ job_file_arg $ out_dir_arg $ journal_arg $ workers_arg $ queue_cap_arg
      $ backoff_arg $ chaos_arg $ chaos_seed_arg $ resume_arg $ serve_arg $ port_arg
      $ metrics_arg)

let () = exit (Cmd.eval' cmd)
