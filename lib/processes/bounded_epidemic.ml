type result = { tau : float array; completion : float }

let infinity_level = max_int

(* Core loop; stops once the target's level is <= [stop_level] and the
   completion time has been recorded. *)
let simulate rng ~n ~levels ~stop_level =
  if n < 2 then invalid_arg "Bounded_epidemic: n must be >= 2";
  if levels < 1 then invalid_arg "Bounded_epidemic: levels must be >= 1";
  if stop_level < 1 || stop_level > levels then invalid_arg "Bounded_epidemic: bad stop level";
  let level = Array.make n infinity_level in
  level.(0) <- 0;
  (* Agent n-1 is the designated target (any fixed agent ≠ source works). *)
  let target = n - 1 in
  let tau = Array.make levels nan in
  let finite = ref 1 in
  let completion = ref nan in
  let interactions = ref 0 in
  let time () = float_of_int !interactions /. float_of_int n in
  let record_target () =
    let v = level.(target) in
    for k = max v 1 to levels do
      if Float.is_nan tau.(k - 1) then tau.(k - 1) <- time ()
    done
  in
  let finished () = level.(target) <= stop_level && not (Float.is_nan !completion) in
  while not (finished ()) do
    let i, j = Prng.distinct_pair rng n in
    incr interactions;
    let li = level.(i) and lj = level.(j) in
    (* The rule i, j -> i, i+1 for i < j: the better-informed end upgrades
       the other to one hop further from the source. *)
    if li < lj - 1 then begin
      if lj = infinity_level then incr finite;
      level.(j) <- li + 1;
      if j = target then record_target ()
    end
    else if lj < li - 1 then begin
      if li = infinity_level then incr finite;
      level.(i) <- lj + 1;
      if i = target then record_target ()
    end;
    if !finite = n && Float.is_nan !completion then completion := time ()
  done;
  { tau; completion = !completion }

let run rng ~n ~levels = simulate rng ~n ~levels ~stop_level:1

let tau_sample rng ~n ~k = (simulate rng ~n ~levels:k ~stop_level:k).tau.(k - 1)

let tau_samples rng ~n ~k ~trials = Array.init trials (fun _ -> tau_sample rng ~n ~k)
