type result = { completion_time : float; first_full_time : float; interactions : int }

(* Per-agent knowledge as a Bytes-backed bitset of the n names. *)
let words n = (n + 7) / 8

let make_knowledge n i =
  let b = Bytes.make (words n) '\000' in
  Bytes.set b (i / 8) (Char.chr (1 lsl (i mod 8)));
  b

let merge_into dst src =
  let changed = ref false in
  for w = 0 to Bytes.length dst - 1 do
    let d = Char.code (Bytes.get dst w) and s = Char.code (Bytes.get src w) in
    let m = d lor s in
    if m <> d then begin
      changed := true;
      Bytes.set dst w (Char.chr m)
    end
  done;
  !changed

let popcount_byte =
  let table = Array.init 256 (fun b ->
      let rec count b acc = if b = 0 then acc else count (b lsr 1) (acc + (b land 1)) in
      count b 0)
  in
  fun c -> table.(Char.code c)

let card b =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) b;
  !acc

let run rng ~n =
  if n < 2 then invalid_arg "Roll_call.run: n must be >= 2";
  let knowledge = Array.init n (make_knowledge n) in
  let counts = Array.make n 1 in
  let full = ref 0 in
  let first_full = ref nan in
  let interactions = ref 0 in
  let time () = float_of_int !interactions /. float_of_int n in
  while !full < n do
    let i, j = Prng.distinct_pair rng n in
    incr interactions;
    let update dst src =
      if counts.(dst) < n && merge_into knowledge.(dst) knowledge.(src) then begin
        counts.(dst) <- card knowledge.(dst);
        if counts.(dst) = n then begin
          incr full;
          if Float.is_nan !first_full then first_full := time ()
        end
      end
    in
    (* Exchange both ways; merge j's pre-interaction knowledge into i by
       merging before i changes (dst i uses src j first). *)
    update i j;
    update j i
  done;
  { completion_time = time (); first_full_time = !first_full; interactions = !interactions }

let completion_times rng ~n ~trials = Array.init trials (fun _ -> (run rng ~n).completion_time)

let ratio_to_epidemic rng ~n ~trials =
  let roll = completion_times rng ~n ~trials in
  let epi = Epidemic.completion_times rng ~n ~trials in
  Stats.Summary.mean roll /. Stats.Summary.mean epi
