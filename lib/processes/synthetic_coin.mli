(** Synthetic coins (paper footnotes 5–6).

    The paper's randomized transitions "can be made deterministic by
    standard synthetic coin techniques without changing time or space
    bounds": each agent carries one extra bit that it flips
    {e deterministically} on every interaction. Because the scheduler
    already supplies randomness (which pair meets, and when), the coin bit
    an agent observes in its partner is a nearly fair, nearly independent
    coin — the parity of the partner's interaction count — and can replace
    the transition function's explicit coin flips.

    This module simulates the coin population and measures the quality of
    the harvested bits: the bias |P[1] − ½| and the lag-1 serial
    correlation of consecutively harvested bits, both of which vanish
    within a few parallel-time units of warm-up even from the fully
    correlated all-zeros start. *)

type result = {
  samples : int;
  bias : float;  (** |empirical P(bit = 1) − 0.5| *)
  serial_correlation : float;  (** lag-1 autocorrelation of the bit stream *)
}

val measure : Prng.t -> n:int -> warmup:int -> samples:int -> result
(** [measure rng ~n ~warmup ~samples] starts all coins at 0, runs
    [warmup] interactions, then harvests one bit per interaction for
    [samples] further interactions (the responder's pre-interaction coin,
    as seen by the initiator). *)

val harvest : Prng.t -> n:int -> warmup:int -> count:int -> bool array
(** The harvested bit stream itself, for downstream statistical tests. *)
