(** The bounded epidemic process (Section 1.1).

    The source agent starts at level 0, everyone else at ∞; on an
    interaction, [i, j → i, i+1] whenever [i < j]. An agent at level [k]
    has heard from the source along an interaction path of length at most
    [k]. The paper's key quantities are the hitting times
    [τ_k] — the first (parallel) time some fixed target agent reaches
    level ≤ [k] — with [E[τ_1] = O(n)], [E[τ_2] = O(√n)] and in general
    [E[τ_k] = O(k·n^{1/k})], reaching [O(log n)] at [k = Θ(log n)]. These
    drive Sublinear-Time-SSR's collision-detection latency: a collision is
    noticed through a path of length [H+1], i.e. around time [τ_{H+1}]. *)

type result = {
  tau : float array;
      (** [tau.(k)] = parallel time when the target first had level ≤ k+1
          (index 0 is τ₁); length [levels] *)
  completion : float;  (** parallel time when every agent had finite level *)
}

val run : Prng.t -> n:int -> levels:int -> result
(** Full agent-level simulation with a designated source and target.
    [levels] bounds the τ indices reported; the simulation stops once the
    target reaches level 1 or every level is hit. *)

val tau_sample : Prng.t -> n:int -> k:int -> float
(** One sample of τ_k (the simulation stops as soon as the target reaches
    level ≤ k). *)

val tau_samples : Prng.t -> n:int -> k:int -> trials:int -> float array
(** Independent samples of τ_k. *)
