(** The roll call process (Section 2).

    Every agent starts with a unique piece of information (its name); on
    every interaction both ends learn everything the other knows. The
    process completes when every agent knows every name — an upper bound
    for any parallel information propagation, and the engine behind
    Sublinear-Time-SSR's roster collection. The paper (building on
    Mocquard et al. [48]) shows completion takes only ≈1.5× the two-way
    epidemic time.

    Knowledge is represented as bitsets, so a run costs O(n²/word-size)
    memory words and the simulation handles thousands of agents. *)

type result = {
  completion_time : float;  (** parallel time until everyone knows all names *)
  first_full_time : float;  (** parallel time until some agent knows all *)
  interactions : int;
}

val run : Prng.t -> n:int -> result

val completion_times : Prng.t -> n:int -> trials:int -> float array

val ratio_to_epidemic : Prng.t -> n:int -> trials:int -> float
(** Mean roll-call completion divided by mean epidemic completion over
    [trials] paired runs — the paper's ≈1.5 constant. *)
