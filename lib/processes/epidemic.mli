(** The two-way epidemic process (Section 2, "Probabilistic tools").

    One agent starts {e infected}; whenever an interaction involves at
    least one infected agent, both ends become infected. The completion
    time — all [n] agents infected — is Θ(log n) parallel time and
    concentrates sharply; the paper uses it as the universal clock for
    information propagation (rosters, reset waves, awakening). The one-way
    variant (only the initiator infects the responder) is also provided,
    running exactly twice as slow in expectation per transmission
    opportunity. *)

type result = {
  completion_time : float;  (** parallel time until all agents infected *)
  half_time : float;  (** parallel time until n/2 agents infected *)
  interactions : int;
}

val run : ?one_way:bool -> Prng.t -> n:int -> result
(** Simulate one epidemic on [n] agents from a single random source. *)

val completion_times : ?one_way:bool -> Prng.t -> n:int -> trials:int -> float array
(** Completion parallel times over independent trials. *)

val infection_curve : Prng.t -> n:int -> (float * int) list
(** One trajectory: [(parallel time, infected count)] at each growth
    step. *)
