type result = { samples : int; bias : float; serial_correlation : float }

(* Coins as parities of interaction counts: flipping on every interaction
   means coin_i = (number of interactions agent i took part in) mod 2. *)
let harvest rng ~n ~warmup ~count =
  if n < 2 then invalid_arg "Synthetic_coin.harvest: n must be >= 2";
  if warmup < 0 || count < 0 then invalid_arg "Synthetic_coin.harvest: negative amount";
  let coin = Array.make n false in
  let interact () =
    let i, j = Prng.distinct_pair rng n in
    let observed = coin.(j) in
    coin.(i) <- not coin.(i);
    coin.(j) <- not coin.(j);
    observed
  in
  for _ = 1 to warmup do
    ignore (interact ())
  done;
  Array.init count (fun _ -> interact ())

let measure rng ~n ~warmup ~samples =
  let bits = harvest rng ~n ~warmup ~count:samples in
  let count = Array.length bits in
  if count < 2 then invalid_arg "Synthetic_coin.measure: need at least two samples";
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
  let mean = float_of_int ones /. float_of_int count in
  let bias = Float.abs (mean -. 0.5) in
  (* lag-1 autocorrelation *)
  let num = ref 0.0 and den = ref 0.0 in
  let v b = (if b then 1.0 else 0.0) -. mean in
  for k = 0 to count - 2 do
    num := !num +. (v bits.(k) *. v bits.(k + 1))
  done;
  Array.iter (fun b -> den := !den +. (v b *. v b)) bits;
  let serial_correlation = if !den = 0.0 then 0.0 else !num /. !den in
  { samples = count; bias; serial_correlation }
