let participation_time rng ~n =
  if n < 2 then invalid_arg "Coupon.participation_time: n must be >= 2";
  let seen = Array.make n false in
  let remaining = ref n in
  let interactions = ref 0 in
  while !remaining > 0 do
    let i, j = Prng.distinct_pair rng n in
    incr interactions;
    if not seen.(i) then begin
      seen.(i) <- true;
      decr remaining
    end;
    if not seen.(j) then begin
      seen.(j) <- true;
      decr remaining
    end
  done;
  float_of_int !interactions /. float_of_int n

let participation_times rng ~n ~trials =
  Array.init trials (fun _ -> participation_time rng ~n)

(* The waiting time for the fixed pair {0,1} is geometric with success
   probability 2/(n(n−1)); sample it directly. *)
let meeting_time rng ~n =
  if n < 2 then invalid_arg "Coupon.meeting_time: n must be >= 2";
  let p = 2.0 /. float_of_int (n * (n - 1)) in
  let u = Prng.float rng in
  let interactions = 1 + int_of_float (Float.floor (log1p (-.u) /. log1p (-.p))) in
  float_of_int interactions /. float_of_int n

let meeting_times rng ~n ~trials = Array.init trials (fun _ -> meeting_time rng ~n)

let expected_meeting_time n = float_of_int (n - 1) /. 2.0
