(** Coupon-collector-style processes used in the paper's lower bounds.

    - {e Participation}: the parallel time until every agent has taken part
      in at least one interaction — Θ(log n), the reason any SSLE protocol
      needs Ω(log n) time from the all-leaders configuration (Section 1.1):
      n−1 of the n leaders must each lose at least one interaction.
    - {e Meeting time}: the parallel time until two {e specific} agents
      interact directly — expectation (n−1)/2, the bottleneck behind
      Observation 2.2 (silent protocols need Ω(n)) and behind every
      "direct collision" step of the silent protocols. *)

val participation_time : Prng.t -> n:int -> float
(** One sample of the all-agents-participated parallel time. *)

val participation_times : Prng.t -> n:int -> trials:int -> float array

val meeting_time : Prng.t -> n:int -> float
(** One sample of the direct-meeting parallel time of two fixed agents. *)

val meeting_times : Prng.t -> n:int -> trials:int -> float array

val expected_meeting_time : int -> float
(** Exact expectation: C(n,2)/1 interactions = (n−1)/2 parallel time. *)
