type result = { completion_time : float; half_time : float; interactions : int }

(* Simulation tracks only the infected count k: an interaction increases it
   iff it pairs an infected with a susceptible agent, which happens with
   probability 2k(n−k)/(n(n−1)) (two-way) or k(n−k)/(n(n−1)) (one-way);
   sampling the geometric waiting time per growth step makes a run O(n)
   rather than O(n log n). *)
let run ?(one_way = false) rng ~n =
  if n < 2 then invalid_arg "Epidemic.run: n must be >= 2";
  let pairs = float_of_int (n * (n - 1)) in
  let interactions = ref 0 in
  let half_interactions = ref 0 in
  for k = 1 to n - 1 do
    let kf = float_of_int k in
    let nf = float_of_int n in
    let numer = kf *. (nf -. kf) *. if one_way then 1.0 else 2.0 in
    let p = numer /. pairs in
    (* Geometric sample: number of interactions until the next infection. *)
    let u = Prng.float rng in
    let wait = 1 + int_of_float (Float.floor (log1p (-.u) /. log1p (-.p))) in
    interactions := !interactions + wait;
    if k + 1 = (n + 1) / 2 then half_interactions := !interactions
  done;
  {
    completion_time = float_of_int !interactions /. float_of_int n;
    half_time = float_of_int !half_interactions /. float_of_int n;
    interactions = !interactions;
  }

let completion_times ?one_way rng ~n ~trials =
  Array.init trials (fun _ -> (run ?one_way rng ~n).completion_time)

let infection_curve rng ~n =
  if n < 2 then invalid_arg "Epidemic.infection_curve: n must be >= 2";
  let pairs = float_of_int (n * (n - 1)) in
  let interactions = ref 0 in
  let points = ref [ (0.0, 1) ] in
  for k = 1 to n - 1 do
    let kf = float_of_int k and nf = float_of_int n in
    let p = 2.0 *. kf *. (nf -. kf) /. pairs in
    let u = Prng.float rng in
    let wait = 1 + int_of_float (Float.floor (log1p (-.u) /. log1p (-.p))) in
    interactions := !interactions + wait;
    points := (float_of_int !interactions /. float_of_int n, k + 1) :: !points
  done;
  List.rev !points
