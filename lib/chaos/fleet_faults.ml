exception Killed
exception Stalled

type t = { kill_worker : float; stall_job : float; torn_journal : bool }

let none = { kill_worker = 0.0; stall_job = 0.0; torn_journal = false }
let is_none t = t = none

let probability ~clause s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> Ok p
  | Some _ | None -> Error (Printf.sprintf "%s: probability must be in [0,1] (got %S)" clause s)

let parse spec =
  let clauses = String.split_on_char ',' (String.trim spec) in
  let rec go acc = function
    | [] -> if is_none acc then Error "empty fleet-fault spec" else Ok acc
    | clause :: rest -> (
        match String.split_on_char ':' (String.trim clause) with
        | [ "kill-worker"; p ] -> (
            match probability ~clause:"kill-worker" p with
            | Ok p -> go { acc with kill_worker = p } rest
            | Error _ as e -> e)
        | [ "stall-job"; p ] -> (
            match probability ~clause:"stall-job" p with
            | Ok p -> go { acc with stall_job = p } rest
            | Error _ as e -> e)
        | [ "torn-journal" ] -> go { acc with torn_journal = true } rest
        | _ ->
            Error
              (Printf.sprintf
                 "unknown fleet-fault clause %S (kill-worker:P | stall-job:P | torn-journal)"
                 (String.trim clause)))
  in
  go none clauses

let to_string t =
  let parts = [] in
  let parts = if t.torn_journal then "torn-journal" :: parts else parts in
  let parts =
    if t.stall_job > 0.0 then Printf.sprintf "stall-job:%g" t.stall_job :: parts else parts
  in
  let parts =
    if t.kill_worker > 0.0 then Printf.sprintf "kill-worker:%g" t.kill_worker :: parts
    else parts
  in
  String.concat "," parts

(* FNV-1a over the job id, folded with the fleet chaos seed and the
   attempt index. Deliberately not [Hashtbl.hash]: the decision stream
   must be stable across OCaml versions because CI asserts journal
   contents for a fixed seed. *)
let mix ~seed ~job_id ~attempt =
  let h = ref 0xcbf29ce484222325L in
  let feed byte = h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001b3L in
  String.iter (fun c -> feed (Char.code c)) job_id;
  feed (attempt land 0xff);
  feed ((attempt lsr 8) land 0xff);
  feed (seed land 0xff);
  feed ((seed lsr 8) land 0xff);
  feed ((seed lsr 16) land 0xff);
  Int64.to_int (Int64.logand !h 0x3fffffffffffffffL)

type decision = { kill_at : int option; stall : bool }

let decide t ~seed ~job_id ~attempt ~n =
  let rng = Prng.create ~seed:(mix ~seed ~job_id ~attempt) in
  (* Draw order is fixed (kill first, then stall) so adding a clause to a
     spec never perturbs the other clause's stream. *)
  let kill = t.kill_worker > 0.0 && Prng.bernoulli rng ~p:t.kill_worker in
  (* Strike inside the stability runner's confirmation window lower bound
     (>= 8n interactions for every task), so a drawn kill always fires
     before the attempt can finish. *)
  let kill_at = if kill then Some (1 + Prng.int rng (8 * n)) else None in
  let stall = t.stall_job > 0.0 && Prng.bernoulli rng ~p:t.stall_job in
  { kill_at; stall }

let tear_journal ~path =
  match (Unix.stat path).Unix.st_size with
  | size when size > 2 ->
      (* chop mid-line: half of the final record, newline included *)
      let last_line_len =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let len = in_channel_length ic in
            let chunk = min len 4096 in
            seek_in ic (len - chunk);
            let s = really_input_string ic chunk in
            (* the file ends with '\n'; find the start of the last record *)
            match String.rindex_from_opt s (chunk - 2) '\n' with
            | Some i -> chunk - 1 - i
            | None -> chunk)
      in
      let keep = size - max 1 (last_line_len / 2) in
      Unix.truncate path (max 0 keep)
  | _ | (exception Unix.Unix_error (_, _, _)) -> ()
