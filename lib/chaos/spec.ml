let ( let* ) = Result.bind

let int_arg ~clause s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: '%s' is not an integer" clause s)

let float_arg ~clause s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: '%s' is not a number" clause s)

(* Re-validate constructor preconditions as [Error]s so the CLI can print
   them without catching exceptions. *)
let guard ~clause f = try Ok (f ()) with Invalid_argument _ -> Error clause

let parse_schedule_atom atom =
  match String.split_on_char ':' atom with
  | [ "burst"; at ] ->
      let* at = int_arg ~clause:"burst" at in
      guard ~clause:"burst: AT must be >= 0" (fun () -> Schedule.burst ~at)
  | [ "periodic"; every ] ->
      let* every = int_arg ~clause:"periodic" every in
      guard ~clause:"periodic: EVERY must be >= 1" (fun () -> Schedule.periodic ~every)
  | [ "poisson"; rate ] ->
      let* rate = float_arg ~clause:"poisson" rate in
      guard ~clause:"poisson: RATE must be finite and > 0" (fun () -> Schedule.poisson ~rate)
  | _ -> Error (Printf.sprintf "unknown schedule clause '%s'" atom)

let parse_schedule clause =
  let atoms = String.split_on_char '+' clause in
  let rec fold acc = function
    | [] -> Ok acc
    | atom :: rest ->
        let* s = parse_schedule_atom atom in
        fold (Schedule.compose acc s) rest
  in
  match atoms with
  | [] -> Error "empty schedule clause"
  | first :: rest ->
      let* s = parse_schedule_atom first in
      fold s rest

let parse_adversary clause =
  match String.split_on_char ':' clause with
  | [ "corrupt"; fraction ] ->
      let* fraction = float_arg ~clause:"corrupt" fraction in
      guard ~clause:"corrupt: F must be in [0,1]" (fun () -> Adversary.corrupt ~fraction)
  | [ "kill-leader" ] -> Ok Adversary.kill_leader
  | [ "duplicate-rank" ] -> Ok Adversary.duplicate_rank
  | [ "stuck"; agents; duration ] ->
      let* agents = int_arg ~clause:"stuck" agents in
      let* duration = int_arg ~clause:"stuck" duration in
      guard ~clause:"stuck: AGENTS and DURATION must be >= 1" (fun () ->
          Adversary.stuck ~agents ~duration)
  | _ -> Error (Printf.sprintf "unknown adversary clause '%s'" clause)

let is_schedule_clause clause =
  List.exists
    (fun prefix ->
      String.length clause >= String.length prefix
      && String.sub clause 0 (String.length prefix) = prefix)
    [ "burst:"; "periodic:"; "poisson:" ]

let parse spec =
  let clauses =
    String.split_on_char ',' spec |> List.map String.trim |> List.filter (fun c -> c <> "")
  in
  let rec loop schedule adversary = function
    | [] -> (
        match (schedule, adversary) with
        | None, _ -> Error "spec needs at least one schedule clause (burst/periodic/poisson)"
        | _, None ->
            Error "spec needs an adversary clause (corrupt/kill-leader/duplicate-rank/stuck)"
        | Some s, Some a -> Ok (s, a))
    | clause :: rest ->
        if is_schedule_clause clause then
          let* s = parse_schedule clause in
          let schedule =
            match schedule with None -> Some s | Some prev -> Some (Schedule.compose prev s)
          in
          loop schedule adversary rest
        else
          let* a = parse_adversary clause in
          if adversary <> None then Error "spec has more than one adversary clause"
          else loop schedule (Some a) rest
  in
  if clauses = [] then Error "empty chaos spec" else loop None None clauses

let to_string (schedule, adversary) =
  Schedule.to_string schedule ^ "," ^ Adversary.to_string adversary
