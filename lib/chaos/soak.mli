(** Soak runs: drive an executor under a sustained fault schedule and
    measure steady-state availability.

    [Runner.run_to_stability] measures one recovery; a soak run measures
    what self-stabilization buys under {e continuous} attack, which is the
    regime the Ω(log n) per-recovery lower bound (Sudo & Masuzawa, PODC
    2019) makes interesting: each burst costs at least logarithmic time,
    so there is a fault rate beyond which the system is never correct.
    The runner interleaves {!Schedule} arrivals with [Exec.advance] up to
    a fixed interaction horizon and reports the fraction of the
    interaction clock spent correct, plus per-burst recovery statistics
    and a verdict against a recovery SLA.

    {b Bursts} follow the exact semantics of [Telemetry.Timeline]: a
    maximal group of faults with no intervening re-entry into correctness
    is one burst; a burst {e breaks} if correctness is lost before the
    next re-entry, {e recovers} at that re-entry (recovery time measured
    from the burst's last fault), is {e absorbed} if correctness never
    broke, and is {e censored} if the horizon ends first. Folding the
    run's events file with [bin/timeline] therefore reconstructs the same
    story — the soak runner publishes every action on the executor's
    [Instrument] stream ([Fault] from the injection surface,
    [Correct_entered] / [Correct_lost] from its own observation loop),
    so the telemetry pipeline sees soak runs for free.

    {b Determinism.} The soak draws randomness only from [Prng.split]
    children of [rng] (one for the schedule, one for the adversary), taken
    before the run starts; given a fresh executor and seed the report and
    the event stream are bit-identical — on any [--jobs] value when each
    trial's generator is pre-split, as [Exp_common.run_trials] does.

    {b Metrics.} When an ambient [Telemetry.Metrics] registry is
    installed, every run folds its counters into it
    ([chaos.firings], [chaos.faults_applied], [chaos.repins],
    [chaos.bursts], [chaos.recoveries], [chaos.censored],
    [chaos.violations], [chaos.sla_misses]). *)

type sla = {
  budget : int;  (** recovery budget, interactions *)
  misses : int;  (** recovered bursts over budget *)
  censored : int;  (** broken bursts never recovered — counted as misses *)
  met : bool;  (** no misses and nothing censored *)
}

type report = {
  horizon : int;  (** interaction budget of the run *)
  total_interactions : int;  (** clock actually elapsed (= horizon) *)
  correct_interactions : int;  (** interaction-clock spent correct *)
  availability : float;  (** correct / total *)
  firings : int;  (** schedule arrivals applied *)
  faults_applied : int;  (** agent states overwritten, re-pins included *)
  repins : int;  (** stuck-agent re-injections *)
  bursts : int;  (** fault bursts (Timeline semantics) *)
  absorbed : int;  (** bursts that never broke correctness *)
  recoveries : int;  (** broken bursts that re-entered correctness *)
  recovery_times : float array;
      (** recovery parallel times (entry − last fault), chronological *)
  violations : int;  (** correctness losses *)
  sla : sla;
}

val default_budget : n:int -> int
(** Default recovery budget: [4 · Runner.default_confirm ~n] interactions
    — a few confirmation windows, so a recovery that would also satisfy
    the stability runner comfortably meets the SLA. *)

val run :
  ?sla_budget:int ->
  ?task:Engine.Runner.task ->
  schedule:Schedule.t ->
  adversary:Adversary.t ->
  random_state:(Prng.t -> 'a) ->
  rng:Prng.t ->
  horizon:int ->
  'a Engine.Exec.t ->
  report
(** [run ~schedule ~adversary ~random_state ~rng ~horizon exec] soaks
    [exec] for [horizon] interactions (>= 1). [task] defaults to
    [Ranking]; [sla_budget] (interactions, >= 1) defaults to
    {!default_budget}. Schedule arrivals are interpreted relative to the
    executor's clock at call time. *)

val mean_recovery : report -> float option
val p95_recovery : report -> float option
val max_recovery : report -> float option
(** Summary accessors over [recovery_times]; [None] without recoveries. *)
