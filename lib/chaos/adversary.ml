type t =
  | Corrupt of float
  | Kill_leader
  | Duplicate_rank
  | Stuck of { agents : int; duration : int }

let corrupt ~fraction =
  if not (fraction >= 0.0 && fraction <= 1.0) then
    invalid_arg "Chaos.Adversary.corrupt: fraction outside [0,1]";
  Corrupt fraction

let kill_leader = Kill_leader

let duplicate_rank = Duplicate_rank

let stuck ~agents ~duration =
  if agents < 1 then invalid_arg "Chaos.Adversary.stuck: agents must be >= 1";
  if duration < 1 then invalid_arg "Chaos.Adversary.stuck: duration must be >= 1";
  Stuck { agents; duration }

let to_string = function
  | Corrupt fraction -> Printf.sprintf "corrupt:%g" fraction
  | Kill_leader -> "kill-leader"
  | Duplicate_rank -> "duplicate-rank"
  | Stuck { agents; duration } -> Printf.sprintf "stuck:%d:%d" agents duration

type 'a pin = { agent : int; state : 'a; expires_at : int }

(* Uniform index distinct from [avoid]. *)
let other_than rng ~n ~avoid =
  let k = Prng.int rng (n - 1) in
  if k >= avoid then k + 1 else k

let apply (type a) ~rng ~(random_state : Prng.t -> a) ~now (exec : a Engine.Exec.t) adversary =
  let protocol = Engine.Exec.protocol exec in
  let n = protocol.Engine.Protocol.n in
  match adversary with
  | Corrupt fraction -> (Engine.Exec.corrupt exec ~rng ~fraction random_state, [])
  | Kill_leader ->
      let snapshot = Engine.Exec.snapshot exec in
      let victim = ref None in
      Array.iteri
        (fun i s ->
          if !victim = None && protocol.Engine.Protocol.rank s = Some 1 then victim := Some i)
        snapshot;
      let victim = match !victim with Some i -> i | None -> Prng.int rng n in
      Engine.Exec.inject exec victim (random_state rng);
      (1, [])
  | Duplicate_rank ->
      let snapshot = Engine.Exec.snapshot exec in
      let ranked = ref [] in
      Array.iteri
        (fun i s -> if protocol.Engine.Protocol.rank s <> None then ranked := i :: !ranked)
        snapshot;
      let source =
        match !ranked with
        | [] -> Prng.int rng n
        | ranked -> Prng.pick rng (Array.of_list (List.rev ranked))
      in
      let target = other_than rng ~n ~avoid:source in
      Engine.Exec.inject exec target snapshot.(source);
      (1, [])
  | Stuck { agents; duration } ->
      let agents = min agents n in
      let victims = Prng.permutation rng n in
      let pins = ref [] in
      for k = 0 to agents - 1 do
        let agent = victims.(k) in
        let state = random_state rng in
        Engine.Exec.inject exec agent state;
        pins := { agent; state; expires_at = now + duration } :: !pins
      done;
      (agents, List.rev !pins)
