(** What a fault does when a {!Schedule} arrival fires.

    Every action goes through the executor's public fault surface
    ([Exec.inject] / [Exec.corrupt]), so each one emits
    [Instrument.Fault] and works identically on both engines — no engine
    surgery. The actions:

    - {!corrupt}: overwrite a uniformly chosen fraction of the agents
      with adversarially drawn states ([Exec.corrupt]);
    - {!kill_leader}: re-inject the current rank-1 agent with an
      adversarial state (a targeted attack on the elected leader); when no
      agent currently holds rank 1 a uniformly random agent is hit
      instead — a sustained adversary does not idle;
    - {!duplicate_rank}: copy one ranked agent's state onto another
      agent, manufacturing the rank collision the protocols' error
      detection exists for;
    - {!stuck}: pin [agents] agents to an adversarially drawn state for
      [duration] interactions. Population protocols have no notion of a
      crashed agent, so a stuck agent is modeled {e inside} the model by
      re-injection: whenever the pinned agent's state drifts (it was
      picked by the scheduler), the pin overwrites it again — see
      {!Soak}, which owns the pin lifetime. Each re-injection is a
      [Fault] event. On the count engine agent identity is the multiset
      enumeration slot (see [Count_sim]), so a pin holds a slot rather
      than a trajectory-stable identity; distributions over exchangeable
      agents are unaffected, but cross-engine differential tests should
      prefer the other adversaries. *)

type t =
  | Corrupt of float  (** fraction in [0,1] *)
  | Kill_leader
  | Duplicate_rank
  | Stuck of { agents : int; duration : int }

val corrupt : fraction:float -> t
(** Requires [fraction] in [[0,1]]. *)

val kill_leader : t
val duplicate_rank : t

val stuck : agents:int -> duration:int -> t
(** Requires [agents >= 1] and [duration >= 1]. *)

val to_string : t -> string
(** Spec syntax: ["corrupt:0.05"], ["kill-leader"], ["duplicate-rank"],
    ["stuck:4:2048"]. *)

type 'a pin = { agent : int; state : 'a; expires_at : int }
(** An active stuck-agent pin: re-inject [state] into [agent] whenever it
    drifts, until the interaction clock passes [expires_at]. *)

val apply :
  rng:Prng.t -> random_state:(Prng.t -> 'a) -> now:int -> 'a Engine.Exec.t -> t -> int * 'a pin list
(** [apply ~rng ~random_state ~now exec adversary] performs one strike;
    returns the number of agent states overwritten and the pins created
    ([Stuck] only; empty otherwise). [random_state] draws adversarial
    states — protocol-specific, see [Core.Scenarios.*_random_state].
    [Stuck] clamps [agents] to the population size. *)
