(** Fault injection aimed at the fleet orchestrator itself.

    The chaos engine's {!Adversary} corrupts protocol state {e inside} a
    simulation; this module corrupts the {e systems layer around} the
    simulations — the supervised workers and the journal of
    [lib/fleet] — to verify that the orchestrator's robustness claims
    (supervision, retries, crash-safe resume) hold under attack:

    - [kill-worker:P]: with probability [P] per job attempt, the worker
      raises {!Killed} partway through the run (at a drawn interaction
      inside the stability runner's confirmation window, so a drawn kill
      always fires). The orchestrator must account the failure and retry
      the job without taking down the fleet;
    - [stall-job:P]: with probability [P] per attempt, the worker's
      result is withheld and the attempt reports {!Stalled} — modeling a
      hung worker that blew its deadline;
    - [torn-journal]: when the journal is closed at shutdown, its final
      record is truncated mid-bytes — the torn write a real crash leaves
      — which [--resume]'s replay must tolerate.

    {b Determinism.} Decisions derive from an FNV-1a hash of
    [(seed, job id, attempt)] — never from worker identity, scheduling
    or wall time — so a fleet run under a fixed chaos seed draws the
    same faults at any [--jobs], and CI can assert journal contents. *)

exception Killed
(** Raised inside a sabotaged worker attempt (via an [Exec.on] hook). *)

exception Stalled
(** Raised by a stalled attempt after its (discarded) run. *)

type t = { kill_worker : float; stall_job : float; torn_journal : bool }

val none : t
val is_none : t -> bool

val parse : string -> (t, string) result
(** Comma-separated clauses: [kill-worker:P], [stall-job:P],
    [torn-journal]. Total — returns [Error] with a message on unknown
    clauses or out-of-range probabilities. *)

val to_string : t -> string
(** Round-trip rendering of a non-empty spec. *)

val mix : seed:int -> job_id:string -> attempt:int -> int
(** The FNV-1a fold of [(job_id, attempt, seed)] into a PRNG seed —
    stable across OCaml versions. Also used by the orchestrator to draw
    per-attempt backoff jitter without threading generator state through
    crashes. *)

type decision = { kill_at : int option; stall : bool }

val decide : t -> seed:int -> job_id:string -> attempt:int -> n:int -> decision
(** The faults drawn for one job attempt. [kill_at] is the interaction
    index at which the worker's kill hook fires ([1 .. 8n]). *)

val tear_journal : path:string -> unit
(** Truncates the file's final record mid-bytes (best-effort; no-op on
    errors or near-empty files). *)
