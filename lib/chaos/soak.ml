type sla = { budget : int; misses : int; censored : int; met : bool }

type report = {
  horizon : int;
  total_interactions : int;
  correct_interactions : int;
  availability : float;
  firings : int;
  faults_applied : int;
  repins : int;
  bursts : int;
  absorbed : int;
  recoveries : int;
  recovery_times : float array;
  violations : int;
  sla : sla;
}

let default_budget ~n = 4 * Engine.Runner.default_confirm ~n

(* Open burst: interaction of its last fault + whether correctness has
   been lost since the burst began (Timeline's [broke]). *)
type burst = { mutable last_fault_at : int; mutable broke : bool }

let run (type a) ?sla_budget ?(task = Engine.Runner.Ranking) ~schedule ~adversary
    ~(random_state : Prng.t -> a) ~rng ~horizon (exec : a Engine.Exec.t) =
  if horizon < 1 then invalid_arg "Chaos.Soak.run: horizon must be >= 1";
  let protocol = Engine.Exec.protocol exec in
  let n = protocol.Engine.Protocol.n in
  let budget = match sla_budget with Some b -> b | None -> default_budget ~n in
  if budget < 1 then invalid_arg "Chaos.Soak.run: sla_budget must be >= 1";
  (* Split order is part of the determinism contract (see .mli). *)
  let schedule_rng = Prng.split rng in
  let adversary_rng = Prng.split rng in
  let stream = Schedule.start schedule ~rng:schedule_rng ~n in
  let nf = float_of_int n in
  let t0 = Engine.Exec.interactions exec in
  let horizon_abs = t0 + horizon in
  let clock = ref t0 in
  let correct = ref false in
  let correct_interactions = ref 0 in
  let violations = ref 0 in
  let firings = ref 0 in
  let faults_applied = ref 0 in
  let repins = ref 0 in
  let bursts = ref 0 in
  let absorbed = ref 0 in
  let recoveries = ref 0 in
  let recovery_interactions = ref [] in
  let sla_misses = ref 0 in
  let open_burst : burst option ref = ref None in
  let pins : a Adversary.pin list ref = ref [] in
  let time () = float_of_int !clock /. nf in
  (* Correctness bookkeeping mirrors Runner: transitions are published on
     the executor's event stream, so telemetry subscribers see the same
     landmarks a stability run would produce. *)
  let observe () =
    let now_correct = Engine.Runner.is_correct ~task exec in
    if now_correct && not !correct then begin
      correct := true;
      (match !open_burst with
      | Some b ->
          (if b.broke then begin
             let dt = !clock - b.last_fault_at in
             incr recoveries;
             recovery_interactions := dt :: !recovery_interactions;
             if dt > budget then incr sla_misses
           end
           else incr absorbed);
          open_burst := None
      | None -> ());
      Engine.Exec.emit exec
        (Engine.Instrument.Correct_entered { interactions = !clock; time = time () })
    end
    else if (not now_correct) && !correct then begin
      correct := false;
      incr violations;
      (match !open_burst with Some b -> b.broke <- true | None -> ());
      Engine.Exec.emit exec
        (Engine.Instrument.Correct_lost { interactions = !clock; time = time () })
    end
  in
  let note_fault () =
    match !open_burst with
    | Some b -> b.last_fault_at <- !clock
    | None ->
        incr bursts;
        open_burst := Some { last_fault_at = !clock; broke = false }
  in
  let fire () =
    incr firings;
    let hit, new_pins =
      (* Rare relative to productive steps, so a span here is cheap; the
         per-step [advance] below is far too hot to time. *)
      Telemetry.Span.wrap "inject" (fun () ->
          Adversary.apply ~rng:adversary_rng ~random_state ~now:!clock exec adversary)
    in
    faults_applied := !faults_applied + hit;
    if hit > 0 then note_fault ();
    pins := !pins @ new_pins;
    observe ()
  in
  (* Next pending arrival, shifted to the executor's clock. *)
  let next_arrival () = Option.map (fun a -> t0 + a) (Schedule.peek stream) in
  let fire_due () =
    let rec loop () =
      match next_arrival () with
      | Some a when a <= !clock ->
          ignore (Schedule.pop stream : int option);
          fire ();
          loop ()
      | Some _ | None -> ()
    in
    loop ()
  in
  (* Re-inject every active pin whose agent has drifted. Expired pins are
     dropped first, so a pin holds for exactly [duration] interactions. *)
  let enforce_pins () =
    if !pins <> [] then begin
      pins := List.filter (fun p -> p.Adversary.expires_at > !clock) !pins;
      List.iter
        (fun { Adversary.agent; state; expires_at = _ } ->
          if not (protocol.Engine.Protocol.equal (Engine.Exec.state exec agent) state) then begin
            Engine.Exec.inject exec agent state;
            incr repins;
            incr faults_applied;
            note_fault ()
          end)
        !pins;
      observe ()
    end
  in
  observe ();
  fire_due ();
  while !clock < horizon_abs do
    let until =
      match next_arrival () with Some a when a < horizon_abs -> a | Some _ | None -> horizon_abs
    in
    let before = !clock in
    let was_correct = !correct in
    let (_ : bool) = Engine.Exec.advance exec ~until in
    clock := Engine.Exec.interactions exec;
    (* The state during (before, clock) is the state observed at [before]
       — on the count engine the skipped null interactions change
       nothing, and the productive event lands exactly at [clock] — so
       crediting the whole span with the prior status is exact on both
       engines. *)
    if was_correct then correct_interactions := !correct_interactions + (!clock - before);
    enforce_pins ();
    observe ();
    fire_due ()
  done;
  let censored =
    match !open_burst with
    | Some b when b.broke -> 1
    | Some _ ->
        incr absorbed;
        0
    | None -> 0
  in
  let total = !clock - t0 in
  let recovery_times =
    Array.of_list (List.rev_map (fun dt -> float_of_int dt /. nf) !recovery_interactions)
  in
  let sla = { budget; misses = !sla_misses; censored; met = !sla_misses = 0 && censored = 0 } in
  let report =
    {
      horizon;
      total_interactions = total;
      correct_interactions = !correct_interactions;
      availability = float_of_int !correct_interactions /. float_of_int total;
      firings = !firings;
      faults_applied = !faults_applied;
      repins = !repins;
      bursts = !bursts;
      absorbed = !absorbed;
      recoveries = !recoveries;
      recovery_times;
      violations = !violations;
      sla;
    }
  in
  (match Telemetry.Metrics.ambient () with
  | None -> ()
  | Some reg ->
      let add name v = Telemetry.Metrics.add reg name (float_of_int v) in
      add "chaos.firings" report.firings;
      add "chaos.faults_applied" report.faults_applied;
      add "chaos.repins" report.repins;
      add "chaos.bursts" report.bursts;
      add "chaos.recoveries" report.recoveries;
      add "chaos.censored" report.sla.censored;
      add "chaos.violations" report.violations;
      add "chaos.sla_misses" (report.sla.misses + report.sla.censored));
  report

let mean_recovery r =
  if Array.length r.recovery_times = 0 then None else Some (Stats.Summary.mean r.recovery_times)

let p95_recovery r =
  if Array.length r.recovery_times = 0 then None
  else Some (Stats.Summary.quantile r.recovery_times 0.95)

let max_recovery r =
  if Array.length r.recovery_times = 0 then None
  else Some (Array.fold_left Float.max neg_infinity r.recovery_times)
