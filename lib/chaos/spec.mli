(** Mini-parser for command-line chaos specs ([ssr_sim --chaos SPEC]).

    A spec is a comma-separated list of clauses: one or more {e schedule}
    clauses (composed by superposition) and exactly one {e adversary}
    clause, in any order.

    {v
    poisson:0.1,corrupt:0.05        λ=0.1 faults/time unit, corrupt 5%
    periodic:4096,kill-leader       kill the leader every 4096 interactions
    burst:0,duplicate-rank          one duplicated rank at the start
    burst:100+poisson:0.01,stuck:4:2048
    v}

    Schedule clauses: [burst:AT], [periodic:EVERY], [poisson:RATE]
    (optionally pre-composed with [+]). Adversary clauses: [corrupt:F],
    [kill-leader], [duplicate-rank], [stuck:AGENTS:DURATION]. *)

val parse : string -> (Schedule.t * Adversary.t, string) result
(** Total: returns [Error] with a human-readable message (never raises)
    on syntax errors, out-of-range arguments, a missing or duplicate
    adversary, or a missing schedule. *)

val to_string : Schedule.t * Adversary.t -> string
(** Round-trip rendering: [parse (to_string s)] accepts. *)
