(** Fault-arrival processes.

    A schedule describes {e when} an adversary strikes, as a point process
    on the interaction clock; what each strike does is an {!Adversary}.
    Three primitive arrival processes cover the experiments:

    - {!burst}: a single arrival at a fixed interaction — the classic
      "recover once" experiment ({!Core.Scenarios}, [Exec.corrupt]) as a
      degenerate schedule;
    - {!periodic}: one arrival every [every] interactions — a metronome
      adversary, useful for differential tests because it is
      engine-independent and consumes no randomness;
    - {!poisson}: arrivals with exponential inter-arrival times at rate
      [rate] faults per {e parallel time unit} (so the attack intensity is
      population-independent; the conversion to interactions multiplies
      by [n]) — the memoryless sustained adversary the availability
      experiments sweep.

    Schedules compose by superposition ({!compose}): the arrivals of the
    union. Determinism: a started stream draws randomness only from
    [Prng.split] children of the generator given to {!start}, one per
    primitive in left-to-right order, so arrivals are bit-identical for a
    given seed regardless of what else the caller's generator is used for
    afterwards. *)

type t

val burst : at:int -> t
(** One arrival at interaction [at] (>= 0). *)

val periodic : every:int -> t
(** Arrivals at interactions [every], [2·every], … Requires [every >= 1]. *)

val poisson : rate:float -> t
(** Poisson arrivals at [rate] faults per parallel time unit
    ([rate · n] faults per [n·(n−1)] ordered-pair draws, in expectation).
    Requires [rate > 0]. *)

val compose : t -> t -> t
(** Superposition: arrivals of both operands, merged. *)

val to_string : t -> string
(** Spec syntax: ["burst:100"], ["periodic:2048"], ["poisson:0.1"],
    composition rendered with [+]. *)

(** {2 Started streams} *)

type stream
(** A schedule instantiated with a generator and a population size:
    a mutable cursor over the (possibly infinite) arrival sequence. *)

val start : t -> rng:Prng.t -> n:int -> stream
(** Instantiate. [n] converts parallel-time rates to the interaction
    clock; requires [n >= 1]. Each primitive of the schedule receives its
    own [Prng.split] child of [rng], taken in left-to-right order. *)

val peek : stream -> int option
(** Interaction index of the earliest pending arrival; [None] when the
    schedule is exhausted (only finite schedules exhaust). Arrival indices
    are non-decreasing; distinct primitives may collide. *)

val pop : stream -> int option
(** Consume and return the earliest pending arrival. *)

val arrivals_until : t -> rng:Prng.t -> n:int -> horizon:int -> int list
(** All arrivals at interactions [<= horizon], in order — [start] + [pop]
    packaged for tests and offline inspection. *)
