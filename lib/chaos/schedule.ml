type t =
  | Burst of int
  | Periodic of int
  | Poisson of float
  | Compose of t * t

let burst ~at =
  if at < 0 then invalid_arg "Chaos.Schedule.burst: at must be >= 0";
  Burst at

let periodic ~every =
  if every < 1 then invalid_arg "Chaos.Schedule.periodic: every must be >= 1";
  Periodic every

let poisson ~rate =
  if not (rate > 0.0 && Float.is_finite rate) then
    invalid_arg "Chaos.Schedule.poisson: rate must be finite and > 0";
  Poisson rate

let compose a b = Compose (a, b)

let rec to_string = function
  | Burst at -> Printf.sprintf "burst:%d" at
  | Periodic every -> Printf.sprintf "periodic:%d" every
  | Poisson rate -> Printf.sprintf "poisson:%g" rate
  | Compose (a, b) -> to_string a ^ "+" ^ to_string b

(* A started primitive: the cached earliest pending arrival plus a thunk
   producing the one after it. Arrival sequences are non-decreasing per
   primitive, so a one-element lookahead is a complete cursor. *)
type source = { mutable next : int option; advance : unit -> int option }

type stream = source list

let start sched ~rng ~n =
  if n < 1 then invalid_arg "Chaos.Schedule.start: n must be >= 1";
  let sources = ref [] in
  let rec walk node =
    match node with
    | Compose (a, b) ->
        walk a;
        walk b
    | Burst _ | Periodic _ | Poisson _ ->
        (* Every primitive consumes exactly one split — including the
           deterministic ones — so the seeding of any primitive depends
           only on its left-to-right position, never on its siblings'
           kinds. *)
        let child = Prng.split rng in
        let advance =
          match node with
          | Burst at ->
              let fired = ref false in
              fun () ->
                if !fired then None
                else begin
                  fired := true;
                  Some at
                end
          | Periodic every ->
              let k = ref 0 in
              fun () ->
                incr k;
                Some (!k * every)
          | Poisson rate ->
              (* Exponential inter-arrivals in parallel time, mapped to the
                 interaction clock by ceiling — arrivals are at least one
                 interaction apart from time 0 but may collide with each
                 other, which superposition permits. *)
              let t = ref 0.0 in
              let nf = float_of_int n in
              fun () ->
                let u = Prng.float child in
                t := !t +. (-.log (1.0 -. u) /. rate);
                Some (max 1 (int_of_float (Float.ceil (!t *. nf))))
          | Compose _ -> assert false
        in
        let s = { next = None; advance } in
        s.next <- advance ();
        sources := s :: !sources
  in
  walk sched;
  List.rev !sources

let peek stream =
  List.fold_left
    (fun acc s ->
      match (s.next, acc) with
      | None, _ -> acc
      | Some a, None -> Some a
      | Some a, Some b -> Some (min a b))
    None stream

let pop stream =
  match peek stream with
  | None -> None
  | Some a ->
      let rec consume = function
        | [] -> assert false
        | s :: rest -> if s.next = Some a then s.next <- s.advance () else consume rest
      in
      consume stream;
      Some a

let arrivals_until sched ~rng ~n ~horizon =
  let stream = start sched ~rng ~n in
  let rec loop acc =
    match peek stream with
    | Some a when a <= horizon ->
        ignore (pop stream : int option);
        loop (a :: acc)
    | Some _ | None -> List.rev acc
  in
  loop []
