(** Fleet job specifications.

    One job = one batch of simulation trials (to-stability, or a chaos
    soak when [chaos] is set) under one protocol configuration, executed
    by a single supervised worker task. Jobs arrive as JSONL — one JSON
    object per line in a job file or on the control socket — and are
    validated {e at admission}: a malformed spec is shed with a message,
    it never reaches a worker. Only [id] and [n] are required; every
    other field has the default documented below.

    {b Determinism.} Everything a worker draws derives from [seed] alone
    (per-trial children are pre-split in trial order), never from the
    attempt number or scheduling — so a retried attempt replays the
    identical simulation and the job's events file is bit-identical
    however many attempts, workers or resumes it took. Fleet jobs run on
    the complete interaction graph (the paper's model); restricted
    topologies stay in [ssr_sim]. *)

type engine = Agent | Count
type kernel = Interp | Compiled

type t = {
  id : string;  (** unique in the fleet; 1-64 chars of [A-Za-z0-9_.-] (names the job's output files) *)
  protocol : string;  (** silent | optimal | sublinear *)
  n : int;  (** population size, >= 2 *)
  h : int;  (** sublinear history depth (default 2) *)
  seed : int;  (** PRNG root for the job (default 1) *)
  scenario : string;  (** initial-configuration scenario (default uniform) *)
  engine : engine;  (** default Agent; Count requires a deterministic protocol *)
  kernel : kernel;  (** default Interp *)
  trials : int;  (** independent trials in the job (default 1) *)
  chaos : string option;  (** [Chaos.Spec] — soak instead of run-to-stability *)
  horizon : float option;  (** soak length, parallel time units (chaos only) *)
  sla : float option;  (** recovery SLA budget, time units (chaos only) *)
  deadline : int option;
      (** per-attempt interaction budget; an attempt still unconverged at
          the deadline fails (and retries). On the {e interaction} clock,
          not wall time, so deadline verdicts are deterministic. *)
  retries : int;  (** attempts after the first before the job fails (default 2) *)
  group : string;  (** fair-share scheduling class (default: the protocol) *)
}

val make :
  id:string ->
  protocol:string ->
  n:int ->
  ?h:int ->
  seed:int ->
  ?scenario:string ->
  ?engine:engine ->
  ?kernel:kernel ->
  ?trials:int ->
  ?chaos:string ->
  ?horizon:float ->
  ?sla:float ->
  ?deadline:int ->
  ?retries:int ->
  ?group:string ->
  unit ->
  (t, string) result
(** Builds and validates a spec (same checks as {!of_json}). *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Parses and fully validates one spec: id shape, known protocol,
    engine/kernel compatibility (count or compiled kernel with a
    randomized protocol is rejected here), ranges, and the chaos spec via
    [Chaos.Spec.parse]. *)

val of_line : string -> (t, string) result
(** [of_json] over one JSONL line. *)

val to_json : t -> Telemetry.Json.t
(** Canonical encoding; [of_json (to_json t) = Ok t]. The journal stores
    specs in this form. *)

val engine_to_string : engine -> string
val kernel_to_string : kernel -> string
