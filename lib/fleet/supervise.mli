(** Failure capture shared by the fleet workers and the batch CLIs.

    The paper's protocols recover from arbitrary transient faults; the
    batch layer should recover from arbitrary {e trial} faults. One trial
    (or one fleet job attempt) raising must never abort its siblings:
    wrap the body in {!run}, collect [Error]s, account them in the
    summary, and exit non-zero — the completed work (and its telemetry)
    survives. Both [ssr_sim --trials] and [Fleet.Orchestrator] supervision
    go through this module, so failure accounting stays uniform. *)

type failure = { error : string;  (** [Printexc.to_string] of the exception *)
                 backtrace : string }

val run : (unit -> 'a) -> ('a, failure) result
(** Runs the thunk, trapping any exception (with its backtrace) into
    [Error]. Never raises. *)

val pp_failures : Format.formatter -> (string * failure) list -> unit
(** One indented [label: error] line per failure. *)

val summary : total:int -> (string * failure) list -> string
(** One-line accounting, e.g. ["18 of 20 succeeded, 2 failed (trial 3:
    Failure(\"boom\"); …)"]. *)
