type engine = Agent | Count
type kernel = Interp | Compiled

type t = {
  id : string;
  protocol : string;
  n : int;
  h : int;
  seed : int;
  scenario : string;
  engine : engine;
  kernel : kernel;
  trials : int;
  chaos : string option;
  horizon : float option;
  sla : float option;
  deadline : int option;
  retries : int;
  group : string;
}

let engine_to_string = function Agent -> "agent" | Count -> "count"
let kernel_to_string = function Interp -> "interp" | Compiled -> "compiled"

let id_ok id =
  id <> ""
  && String.length id <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-' || c = '.')
       id

let protocols = [ "silent"; "optimal"; "sublinear" ]

(* All structural validation lives here, at admission time, so a worker
   never has to [exit 2] mid-fleet the way the single-run CLI does. *)
let validate t =
  if not (id_ok t.id) then
    Error
      (Printf.sprintf "job id %S must be 1-64 chars of [A-Za-z0-9_.-] (it names output files)"
         t.id)
  else if not (List.mem t.protocol protocols) then
    Error
      (Printf.sprintf "job %s: unknown protocol %S (silent | optimal | sublinear)" t.id
         t.protocol)
  else if t.n < 2 then Error (Printf.sprintf "job %s: n must be >= 2 (got %d)" t.id t.n)
  else if t.h < 0 then Error (Printf.sprintf "job %s: h must be >= 0 (got %d)" t.id t.h)
  else if t.trials < 1 then
    Error (Printf.sprintf "job %s: trials must be >= 1 (got %d)" t.id t.trials)
  else if t.retries < 0 then
    Error (Printf.sprintf "job %s: retries must be >= 0 (got %d)" t.id t.retries)
  else if t.engine = Count && t.protocol = "sublinear" then
    Error (Printf.sprintf "job %s: the count engine requires a deterministic protocol" t.id)
  else if t.kernel = Compiled && t.protocol = "sublinear" then
    Error (Printf.sprintf "job %s: the sublinear protocol has no compiled kernel" t.id)
  else if (match t.deadline with Some d -> d < 1 | None -> false) then
    Error (Printf.sprintf "job %s: deadline must be >= 1 interaction" t.id)
  else if (match t.horizon with Some x -> x <= 0.0 | None -> false) then
    Error (Printf.sprintf "job %s: horizon must be > 0 time units" t.id)
  else if (match t.sla with Some x -> x <= 0.0 | None -> false) then
    Error (Printf.sprintf "job %s: sla must be > 0 time units" t.id)
  else if (t.horizon <> None || t.sla <> None) && t.chaos = None then
    Error (Printf.sprintf "job %s: horizon/sla require a chaos spec" t.id)
  else
    match t.chaos with
    | None -> Ok t
    | Some spec -> (
        match Chaos.Spec.parse spec with
        | Ok _ -> Ok t
        | Error msg -> Error (Printf.sprintf "job %s: chaos: %s" t.id msg))

let make ~id ~protocol ~n ?(h = 2) ~seed ?(scenario = "uniform") ?(engine = Agent)
    ?(kernel = Interp) ?(trials = 1) ?chaos ?horizon ?sla ?deadline ?(retries = 2) ?group () =
  validate
    {
      id;
      protocol;
      n;
      h;
      seed;
      scenario;
      engine;
      kernel;
      trials;
      chaos;
      horizon;
      sla;
      deadline;
      retries;
      group = (match group with Some g -> g | None -> protocol);
    }

let field name json = Telemetry.Json.member name json

let int_field ?default name json =
  match Option.bind (field name json) Telemetry.Json.to_int with
  | Some v -> Ok v
  | None -> (
      match (field name json, default) with
      | None, Some d -> Ok d
      | _ -> Error (Printf.sprintf "field %S: expected an int" name))

let string_field ?default name json =
  match Option.bind (field name json) Telemetry.Json.to_string_opt with
  | Some v -> Ok v
  | None -> (
      match (field name json, default) with
      | None, Some d -> Ok d
      | _ -> Error (Printf.sprintf "field %S: expected a string" name))

let opt_field name conv json =
  match field name json with
  | None | Some Telemetry.Json.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some v -> Ok (Some v)
      | None -> Error (Printf.sprintf "field %S: wrong type" name))

let ( let* ) = Result.bind

let of_json json =
  match json with
  | Telemetry.Json.Obj _ ->
      let* id = string_field "id" json in
      let* protocol = string_field ~default:"optimal" "protocol" json in
      let* n = int_field "n" json in
      let* h = int_field ~default:2 "h" json in
      let* seed = int_field ~default:1 "seed" json in
      let* scenario = string_field ~default:"uniform" "scenario" json in
      let* engine_s = string_field ~default:"agent" "engine" json in
      let* engine =
        match engine_s with
        | "agent" -> Ok Agent
        | "count" -> Ok Count
        | other -> Error (Printf.sprintf "field \"engine\": %S is not agent | count" other)
      in
      let* kernel_s = string_field ~default:"interp" "kernel" json in
      let* kernel =
        match kernel_s with
        | "interp" -> Ok Interp
        | "compiled" -> Ok Compiled
        | other -> Error (Printf.sprintf "field \"kernel\": %S is not interp | compiled" other)
      in
      let* trials = int_field ~default:1 "trials" json in
      let* chaos = opt_field "chaos" Telemetry.Json.to_string_opt json in
      let* horizon = opt_field "horizon" Telemetry.Json.to_float json in
      let* sla = opt_field "sla" Telemetry.Json.to_float json in
      let* deadline = opt_field "deadline" Telemetry.Json.to_int json in
      let* retries = int_field ~default:2 "retries" json in
      let* group = string_field ~default:protocol "group" json in
      validate
        {
          id;
          protocol;
          n;
          h;
          seed;
          scenario;
          engine;
          kernel;
          trials;
          chaos;
          horizon;
          sla;
          deadline;
          retries;
          group;
        }
  | _ -> Error "job spec must be a JSON object"

let of_line line =
  match Telemetry.Json.parse line with
  | Ok json -> of_json json
  | Error msg -> Error (Printf.sprintf "bad JSON: %s" msg)

let to_json t =
  let opt f = function Some v -> f v | None -> Telemetry.Json.Null in
  Telemetry.Json.Obj
    [
      ("id", Telemetry.Json.String t.id);
      ("protocol", Telemetry.Json.String t.protocol);
      ("n", Telemetry.Json.Int t.n);
      ("h", Telemetry.Json.Int t.h);
      ("seed", Telemetry.Json.Int t.seed);
      ("scenario", Telemetry.Json.String t.scenario);
      ("engine", Telemetry.Json.String (engine_to_string t.engine));
      ("kernel", Telemetry.Json.String (kernel_to_string t.kernel));
      ("trials", Telemetry.Json.Int t.trials);
      ("chaos", opt (fun s -> Telemetry.Json.String s) t.chaos);
      ("horizon", opt (fun x -> Telemetry.Json.Float x) t.horizon);
      ("sla", opt (fun x -> Telemetry.Json.Float x) t.sla);
      ("deadline", opt (fun d -> Telemetry.Json.Int d) t.deadline);
      ("retries", Telemetry.Json.Int t.retries);
      ("group", Telemetry.Json.String t.group);
    ]
