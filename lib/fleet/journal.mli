(** Crash-safe fleet journal: append-only JSONL, replayed on [--resume].

    Every admission decision and job state transition is appended (and
    flushed) {e before} the orchestrator acts on it, write-ahead style.
    The entry grammar (all objects carry ["v":1, "kind":"fleet"]):

    - [spec]   — a job was accepted; carries the full spec ({!Job.to_json})
    - [start]  — attempt [attempt] of job [id] was dispatched
    - [retry]  — the attempt failed; a retry was scheduled after
                 [delay_ticks] scheduler ticks
    - [done]   — the job completed; its events file and manifest are on
                 disk (written strictly before this entry)
    - [fail]   — the job exhausted its retry budget
    - [shed]   — an admission verdict: rejected (queue full, duplicate
                 id, draining, invalid spec)
    - [drain]  — the fleet shut down gracefully

    {b Recovery semantics.} {!replay} tolerates a torn final line (the
    most a crash can lose, since every entry is flushed when written).
    A job with [spec] but no [done]/[fail] is incomplete: resume requeues
    it with its journaled attempt count. Because [done] is written after
    the job's outputs, a crash in between re-runs the job — which
    rewrites both files with byte-identical content (worker determinism),
    so recovery is idempotent: completed-exactly-once {e outputs}, at
    -least-once execution. *)

type entry =
  | Spec of Job.t
  | Start of { id : string; attempt : int }
  | Retry of { id : string; attempt : int; error : string; delay_ticks : int }
  | Done of { id : string; attempt : int; converged : int; trials : int }
  | Fail of { id : string; attempts : int; error : string }
  | Shed of { id : string; reason : string }
  | Drain of { reason : string }

val entry_to_json : entry -> Telemetry.Json.t
val entry_of_json : Telemetry.Json.t -> entry option

type t

val open_ : ?append:bool -> string -> t
(** Opens the journal for writing, truncating unless [append] (resume
    appends: history is evidence). Entries are flushed line-by-line. *)

val append : t -> entry -> unit
val close : t -> unit
val path : t -> string

type done_record = { id : string; attempt : int; converged : int; trials : int }

type replay = {
  specs : Job.t list;  (** accepted jobs, journal order, duplicates possible across resumes *)
  completed : done_record list;  (** jobs with a [done] entry *)
  failed : (string * string) list;  (** ids with a [fail] entry, and the error *)
  attempts : (string * int) list;  (** last started attempt per id, spec order *)
  drained : bool;  (** a [drain] entry is present (clean shutdown) *)
  torn : bool;  (** a torn/unparseable tail was skipped *)
}

val replay : path:string -> (replay, string) result
(** Reads the journal back. [Error] only if the file cannot be read at
    all; torn or garbage tails degrade to [torn = true]. *)
