module J = Telemetry.Json

type entry =
  | Spec of Job.t
  | Start of { id : string; attempt : int }
  | Retry of { id : string; attempt : int; error : string; delay_ticks : int }
  | Done of { id : string; attempt : int; converged : int; trials : int }
  | Fail of { id : string; attempts : int; error : string }
  | Shed of { id : string; reason : string }
  | Drain of { reason : string }

let base typ fields = J.Obj ((("v", J.Int 1) :: ("kind", J.String "fleet") :: ("type", J.String typ) :: fields))

let entry_to_json = function
  | Spec job -> base "spec" [ ("job", Job.to_json job) ]
  | Start { id; attempt } -> base "start" [ ("id", J.String id); ("attempt", J.Int attempt) ]
  | Retry { id; attempt; error; delay_ticks } ->
      base "retry"
        [
          ("id", J.String id);
          ("attempt", J.Int attempt);
          ("error", J.String error);
          ("delay_ticks", J.Int delay_ticks);
        ]
  | Done { id; attempt; converged; trials } ->
      base "done"
        [
          ("id", J.String id);
          ("attempt", J.Int attempt);
          ("converged", J.Int converged);
          ("trials", J.Int trials);
        ]
  | Fail { id; attempts; error } ->
      base "fail" [ ("id", J.String id); ("attempts", J.Int attempts); ("error", J.String error) ]
  | Shed { id; reason } -> base "shed" [ ("id", J.String id); ("reason", J.String reason) ]
  | Drain { reason } -> base "drain" [ ("reason", J.String reason) ]

let ( let* ) = Option.bind

let entry_of_json json =
  let str name = Option.bind (J.member name json) J.to_string_opt in
  let int name = Option.bind (J.member name json) J.to_int in
  match (Option.bind (J.member "kind" json) J.to_string_opt, str "type") with
  | Some "fleet", Some typ -> (
      match typ with
      | "spec" -> (
          match Option.map Job.of_json (J.member "job" json) with
          | Some (Ok job) -> Some (Spec job)
          | _ -> None)
      | "start" ->
          let* id = str "id" in
          let* attempt = int "attempt" in
          Some (Start { id; attempt })
      | "retry" ->
          let* id = str "id" in
          let* attempt = int "attempt" in
          let* error = str "error" in
          let* delay_ticks = int "delay_ticks" in
          Some (Retry { id; attempt; error; delay_ticks })
      | "done" ->
          let* id = str "id" in
          let* attempt = int "attempt" in
          let* converged = int "converged" in
          let* trials = int "trials" in
          Some (Done { id; attempt; converged; trials })
      | "fail" ->
          let* id = str "id" in
          let* attempts = int "attempts" in
          let* error = str "error" in
          Some (Fail { id; attempts; error })
      | "shed" ->
          let* id = str "id" in
          let* reason = str "reason" in
          Some (Shed { id; reason })
      | "drain" ->
          let* reason = str "reason" in
          Some (Drain { reason })
      | _ -> None)
  | _ -> None

type t = { sink : Telemetry.Sink.t; path : string }

(* Autoflush: every entry reaches the OS before [append] returns, so the
   journal never lies by more than the final (possibly torn) line after a
   crash — the durability contract replay is built around. *)
let open_ ?(append = false) path =
  { sink = Telemetry.Sink.file ~append ~autoflush:true path; path }

let append t entry = Telemetry.Sink.write_line t.sink (J.to_string (entry_to_json entry))
let close t = Telemetry.Sink.close t.sink
let path t = t.path

type done_record = { id : string; attempt : int; converged : int; trials : int }

type replay = {
  specs : Job.t list;
  completed : done_record list;
  failed : (string * string) list;
  attempts : (string * int) list;
  drained : bool;
  torn : bool;
}

let replay ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* A crash (or injected torn-journal fault) can leave a final line
         without its newline, or with its JSON chopped mid-bytes. Only
         complete, parseable lines count; the tail is reported, not fatal. *)
      let lines = String.split_on_char '\n' raw in
      let rec complete acc = function
        | [] | [ "" ] -> (List.rev acc, false)
        | [ _torn ] -> (List.rev acc, true)
        | line :: rest -> complete (line :: acc) rest
      in
      let complete_lines, torn = complete [] lines in
      let specs = ref [] and completed = ref [] and failed = ref [] in
      let attempts : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let drained = ref false in
      let torn = ref torn in
      List.iter
        (fun line ->
          match J.parse line with
          | Error _ -> torn := true
          | Ok json -> (
              match entry_of_json json with
              | None -> torn := true
              | Some (Spec job) -> specs := job :: !specs
              | Some (Start { id; attempt }) -> Hashtbl.replace attempts id attempt
              | Some (Retry _) | Some (Shed _) -> ()
              | Some (Done { id; attempt; converged; trials }) ->
                  completed := { id; attempt; converged; trials } :: !completed
              | Some (Fail { id; error; _ }) -> failed := (id, error) :: !failed
              | Some (Drain _) -> drained := true))
        complete_lines;
      let specs = List.rev !specs in
      (* Never iterate the table: order must follow the journal, not
         hash buckets. *)
      let attempts_in_order =
        List.filter_map
          (fun job ->
            match Hashtbl.find_opt attempts job.Job.id with
            | Some a -> Some (job.Job.id, a)
            | None -> None)
          specs
      in
      Ok
        {
          specs;
          completed = List.rev !completed;
          failed = List.rev !failed;
          attempts = attempts_in_order;
          drained = !drained;
          torn = !torn;
        }
