module J = Telemetry.Json

type config = {
  out_dir : string;
  journal_path : string;
  workers : int;
  queue_cap : int;
  backoff_base : int;
  chaos : Chaos.Fleet_faults.t;
  chaos_seed : int;
}

let default_config ~out_dir =
  {
    out_dir;
    journal_path = Filename.concat out_dir "fleet.journal.jsonl";
    workers = 2;
    queue_cap = 64;
    backoff_base = 4;
    chaos = Chaos.Fleet_faults.none;
    chaos_seed = 0;
  }

type status =
  | Queued
  | Running of { attempt : int }
  | Backoff of { attempt : int; until_tick : int }
  | Completed of { attempt : int; converged : int; trials : int }
  | Failed of { attempts : int; error : string }

type entry = { job : Job.t; mutable status : status; mutable attempts : int }

type completion = { id : string; attempt : int; result : (Worker.outcome, Supervise.failure) result }

type counters = {
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable shed : int;
  mutable retries : int;
}

type t = {
  cfg : config;
  pool : Engine.Pool.t;
  admission : Admission.t;
  journal : Journal.t;
  table : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reversed submission order *)
  mutable backoff : (int * string) list;  (* (due tick, id), insertion order *)
  completions : completion list ref;
  completions_mutex : Mutex.t;
  mutable tick : int;
  mutable in_flight : int;
  mutable draining : bool;
  mutable finished : bool;
  c : counters;
}

let ensure_dir path =
  if not (Sys.file_exists path) then
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let status_counts_completed = function Completed _ -> true | _ -> false

let register t entry =
  Hashtbl.replace t.table entry.job.Job.id entry;
  t.order <- entry.job.Job.id :: t.order;
  t.c.submitted <- t.c.submitted + 1

let create ?(resume = false) cfg =
  if cfg.workers < 1 then invalid_arg "Fleet.Orchestrator.create: workers must be >= 1";
  if cfg.backoff_base < 1 then invalid_arg "Fleet.Orchestrator.create: backoff_base must be >= 1";
  ensure_dir cfg.out_dir;
  let prior =
    if resume && Sys.file_exists cfg.journal_path then
      match Journal.replay ~path:cfg.journal_path with
      | Ok r -> Some r
      | Error msg -> failwith (Printf.sprintf "cannot replay journal %s: %s" cfg.journal_path msg)
    else None
  in
  let t =
    {
      cfg;
      (* +1: the orchestrator's own domain runs the event loop, it never
         helps drain, so [workers] concurrent jobs need [workers] worker
         domains (Pool.submit requires jobs >= 2). *)
      pool = Engine.Pool.create ~jobs:(cfg.workers + 1);
      admission = Admission.create ~cap:cfg.queue_cap;
      journal = Journal.open_ ~append:(prior <> None) cfg.journal_path;
      table = Hashtbl.create 64;
      order = [];
      backoff = [];
      completions = ref [];
      completions_mutex = Mutex.create ();
      tick = 0;
      in_flight = 0;
      draining = false;
      finished = false;
      c = { submitted = 0; completed = 0; failed = 0; shed = 0; retries = 0 };
    }
  in
  (match prior with
  | None -> ()
  | Some r ->
      (* Replay in journal order, first spec wins. A completed or failed
         job is terminal: mark it, never re-dispatch — its manifest is
         not rewritten. Anything else was in flight or queued when the
         previous process died: requeue it (bypassing the admission cap —
         it was already admitted once) with its journaled attempt count,
         so the retry budget keeps counting across the crash. *)
      List.iter
        (fun (job : Job.t) ->
          if not (Hashtbl.mem t.table job.Job.id) then begin
            let id = job.Job.id in
            let entry =
              match
                List.find_opt (fun (d : Journal.done_record) -> d.Journal.id = id) r.Journal.completed
              with
              | Some d ->
                  t.c.completed <- t.c.completed + 1;
                  {
                    job;
                    status =
                      Completed
                        { attempt = d.Journal.attempt; converged = d.Journal.converged; trials = d.Journal.trials };
                    attempts = d.Journal.attempt;
                  }
              | None -> (
                  match List.assoc_opt id r.Journal.failed with
                  | Some error ->
                      let attempts =
                        match List.assoc_opt id r.Journal.attempts with Some a -> a | None -> 1
                      in
                      t.c.failed <- t.c.failed + 1;
                      { job; status = Failed { attempts; error }; attempts }
                  | None ->
                      let attempts =
                        match List.assoc_opt id r.Journal.attempts with Some a -> a | None -> 0
                      in
                      Admission.push_force t.admission job;
                      { job; status = Queued; attempts })
            in
            register t entry
          end)
        r.Journal.specs);
  t

let shed_reason t (job : Job.t) =
  if t.draining then Some "draining"
  else if Hashtbl.mem t.table job.Job.id then Some "duplicate id"
  else None

let submit t job =
  match shed_reason t job with
  | Some reason ->
      Journal.append t.journal (Journal.Shed { id = job.Job.id; reason });
      t.c.shed <- t.c.shed + 1;
      `Shed reason
  | None -> (
      match Admission.push t.admission job with
      | Ok () ->
          Journal.append t.journal (Journal.Spec job);
          register t { job; status = Queued; attempts = 0 };
          `Accepted
      | Error reason ->
          Journal.append t.journal (Journal.Shed { id = job.Job.id; reason });
          t.c.shed <- t.c.shed + 1;
          `Shed reason)

let reject t ~id ~reason =
  Journal.append t.journal (Journal.Shed { id; reason });
  t.c.shed <- t.c.shed + 1

let has_capacity t = (not t.draining) && Admission.has_capacity t.admission

let dispatch t entry =
  let job = entry.job in
  let id = job.Job.id in
  let attempt = entry.attempts + 1 in
  entry.attempts <- attempt;
  entry.status <- Running { attempt };
  Journal.append t.journal (Journal.Start { id; attempt });
  t.in_flight <- t.in_flight + 1;
  let decision =
    Chaos.Fleet_faults.decide t.cfg.chaos ~seed:t.cfg.chaos_seed ~job_id:id ~attempt ~n:job.Job.n
  in
  let out_dir = t.cfg.out_dir in
  Engine.Pool.submit t.pool (fun () ->
      let result =
        Supervise.run (fun () ->
            Worker.run ~out_dir ?kill_at:decision.Chaos.Fleet_faults.kill_at
              ~stall:decision.Chaos.Fleet_faults.stall ~attempt job)
      in
      Mutex.lock t.completions_mutex;
      t.completions := { id; attempt; result } :: !(t.completions);
      Mutex.unlock t.completions_mutex)

(* Backoff: base·2^(retry-1) ticks plus jitter in [0, base), the jitter
   drawn from a PRNG seeded by hashing (job seed, id, attempt) — a pure
   function of the job and attempt, so schedules replay identically
   across crashes without persisting generator state. Ticks, not wall
   time: the delay is deterministic under any loop cadence. *)
let backoff_ticks t (job : Job.t) ~attempt =
  let exponent = min (attempt - 1) 16 in
  let base = t.cfg.backoff_base in
  let jitter_rng =
    Prng.create
      ~seed:(Chaos.Fleet_faults.mix ~seed:job.Job.seed ~job_id:job.Job.id ~attempt)
  in
  (base * (1 lsl exponent)) + Prng.int jitter_rng base

let handle_completion t { id; attempt; result } =
  t.in_flight <- t.in_flight - 1;
  let entry = Hashtbl.find t.table id in
  match result with
  | Ok (outcome : Worker.outcome) ->
      entry.status <-
        Completed { attempt; converged = outcome.Worker.converged; trials = outcome.Worker.trials };
      t.c.completed <- t.c.completed + 1;
      Journal.append t.journal
        (Journal.Done
           { id; attempt; converged = outcome.Worker.converged; trials = outcome.Worker.trials })
  | Error (failure : Supervise.failure) ->
      let retries_used = entry.attempts - 1 in
      if retries_used < entry.job.Job.retries then begin
        let delay_ticks = backoff_ticks t entry.job ~attempt in
        entry.status <- Backoff { attempt; until_tick = t.tick + delay_ticks };
        t.backoff <- t.backoff @ [ (t.tick + delay_ticks, id) ];
        t.c.retries <- t.c.retries + 1;
        Journal.append t.journal
          (Journal.Retry { id; attempt; error = failure.Supervise.error; delay_ticks })
      end
      else begin
        entry.status <- Failed { attempts = entry.attempts; error = failure.Supervise.error };
        t.c.failed <- t.c.failed + 1;
        Journal.append t.journal
          (Journal.Fail { id; attempts = entry.attempts; error = failure.Supervise.error })
      end

let drain_completions t =
  Mutex.lock t.completions_mutex;
  let pending = List.rev !(t.completions) in
  t.completions := [];
  Mutex.unlock t.completions_mutex;
  List.iter (handle_completion t) pending;
  pending <> []

let requeue_due t =
  let due, waiting = List.partition (fun (until_tick, _) -> until_tick <= t.tick) t.backoff in
  t.backoff <- waiting;
  List.iter
    (fun (_, id) ->
      let entry = Hashtbl.find t.table id in
      entry.status <- Queued;
      Admission.push_force t.admission entry.job)
    due

let dispatch_ready t =
  if not t.draining then
    let continue = ref true in
    while !continue && t.in_flight < t.cfg.workers do
      match Admission.pop t.admission with
      | Some job -> dispatch t (Hashtbl.find t.table job.Job.id)
      | None -> continue := false
    done

let idle t = Admission.is_empty t.admission && t.backoff = [] && t.in_flight = 0

let step t =
  let progressed = drain_completions t in
  requeue_due t;
  dispatch_ready t;
  t.tick <- t.tick + 1;
  progressed

let drain t = t.draining <- true

type stats = {
  tick : int;
  submitted : int;
  completed : int;
  failed : int;
  shed : int;
  retries : int;
  queue_depth : int;
  in_flight : int;
  draining : bool;
}

let stats (t : t) =
  {
    tick = t.tick;
    submitted = t.c.submitted;
    completed = t.c.completed;
    failed = t.c.failed;
    shed = t.c.shed;
    retries = t.c.retries;
    queue_depth = Admission.depth t.admission + List.length t.backoff;
    in_flight = t.in_flight;
    draining = t.draining;
  }

let status_json = function
  | Queued -> [ ("state", J.String "queued") ]
  | Running { attempt } -> [ ("state", J.String "running"); ("attempt", J.Int attempt) ]
  | Backoff { attempt; until_tick } ->
      [ ("state", J.String "backoff"); ("attempt", J.Int attempt); ("until_tick", J.Int until_tick) ]
  | Completed { attempt; converged; trials } ->
      [
        ("state", J.String "completed");
        ("attempt", J.Int attempt);
        ("converged", J.Int converged);
        ("trials", J.Int trials);
      ]
  | Failed { attempts; error } ->
      [ ("state", J.String "failed"); ("attempts", J.Int attempts); ("error", J.String error) ]

let snapshot_json t =
  let s = stats t in
  let jobs =
    List.rev_map
      (fun id ->
        let entry = Hashtbl.find t.table id in
        J.Obj
          ([
             ("id", J.String id);
             ("group", J.String entry.job.Job.group);
             ("protocol", J.String entry.job.Job.protocol);
             ("n", J.Int entry.job.Job.n);
             ("attempts", J.Int entry.attempts);
           ]
          @ status_json entry.status))
      t.order
  in
  J.Obj
    [
      ("v", J.Int 1);
      ("kind", J.String "fleet_status");
      ("tick", J.Int s.tick);
      ("submitted", J.Int s.submitted);
      ("completed", J.Int s.completed);
      ("failed", J.Int s.failed);
      ("shed", J.Int s.shed);
      ("retries", J.Int s.retries);
      ("queue_depth", J.Int s.queue_depth);
      ("in_flight", J.Int s.in_flight);
      ("draining", J.Bool s.draining);
      ( "groups",
        J.Obj (List.map (fun (g, d) -> (g, J.Int d)) (Admission.groups t.admission)) );
      ("jobs", J.List jobs);
    ]

let record_metrics t =
  match Telemetry.Metrics.ambient () with
  | None -> ()
  | Some reg ->
      let s = stats t in
      Telemetry.Metrics.set reg "fleet.submitted" (float_of_int s.submitted);
      Telemetry.Metrics.set reg "fleet.completed" (float_of_int s.completed);
      Telemetry.Metrics.set reg "fleet.failed" (float_of_int s.failed);
      Telemetry.Metrics.set reg "fleet.shed" (float_of_int s.shed);
      Telemetry.Metrics.set reg "fleet.retries" (float_of_int s.retries);
      Telemetry.Metrics.set reg "fleet.queue_depth" (float_of_int s.queue_depth);
      Telemetry.Metrics.set reg "fleet.in_flight" (float_of_int s.in_flight);
      Telemetry.Metrics.set reg "fleet.ticks" (float_of_int s.tick)

let run ?(tick_s = 0.002) ?(on_tick = fun (_ : t) -> ()) ?(should_drain = fun () -> None)
    ?(more_work = fun () -> false) t =
  if t.finished then invalid_arg "Fleet.Orchestrator.run: already finished";
  let reason = ref "complete" in
  let continue = ref true in
  while !continue do
    let progressed = step t in
    (if not t.draining then
       match should_drain () with
       | Some r ->
           reason := r;
           drain t
       | None -> ());
    on_tick t;
    if
      (t.draining && t.in_flight = 0)
      || ((not t.draining) && idle t && not (more_work ()))
    then continue := false
    else if (not progressed) && tick_s > 0.0 then Unix.sleepf tick_s
  done;
  (* Completions may have landed between the last drain and the loop
     exit; fold them in so the journal's final entries precede [drain]. *)
  ignore (drain_completions t : bool);
  Journal.append t.journal (Journal.Drain { reason = !reason });
  record_metrics t;
  Journal.close t.journal;
  Engine.Pool.shutdown t.pool;
  if t.cfg.chaos.Chaos.Fleet_faults.torn_journal then
    Chaos.Fleet_faults.tear_journal ~path:t.cfg.journal_path;
  t.finished <- true;
  !reason

let all_done t =
  List.for_all
    (fun id ->
      let entry = Hashtbl.find t.table id in
      match entry.status with Completed _ | Failed _ -> true | _ -> false)
    t.order

let completed_count t = t.c.completed
let is_completed t id =
  match Hashtbl.find_opt t.table id with
  | Some e -> status_counts_completed e.status
  | None -> false
