(** The supervised soak-fleet orchestrator.

    A long-lived service multiplexing many {!Job} specs over a domain
    pool, with the robustness properties the rest of this PR tests:

    - {b Backpressure}: admission goes through a bounded fair queue
      ({!Admission}); a full queue sheds with an explicit journaled
      verdict instead of growing without bound.
    - {b Supervision}: each attempt runs under {!Supervise.run} on a
      worker domain — an exception (or an injected
      {!Chaos.Fleet_faults} kill/stall) fails that attempt only, never
      the fleet.
    - {b Retries}: failed attempts retry up to [job.retries] times with
      exponential backoff plus deterministic jitter, measured in
      scheduler {e ticks} (wall-clock-free, so schedules replay).
    - {b Deadlines}: per-attempt budgets live on the interaction clock
      inside the worker ({!Job.deadline}).
    - {b Crash safety}: every transition is journaled ({!Journal})
      before it takes effect; [resume:true] replays the journal,
      requeues incomplete jobs with their attempt counts, and never
      re-runs (or rewrites the manifest of) a completed job.
    - {b Graceful drain}: {!drain} (or [should_drain]) stops admission
      and dispatch, lets in-flight attempts finish, journals a [drain]
      entry and shuts the pool down; queued work is left incomplete in
      the journal for a later [--resume].

    The event loop is single-threaded: workers communicate completions
    back through one mutex-guarded list, and everything else (queue,
    table, journal) is touched only by the loop. *)

type config = {
  out_dir : string;  (** per-job events/manifest files land here *)
  journal_path : string;
  workers : int;  (** concurrent jobs; the pool gets [workers + 1] domains *)
  queue_cap : int;  (** admission bound *)
  backoff_base : int;  (** retry backoff unit, in ticks *)
  chaos : Chaos.Fleet_faults.t;  (** faults aimed at the fleet itself *)
  chaos_seed : int;
}

val default_config : out_dir:string -> config
(** workers 2, queue cap 64, backoff base 4 ticks, no chaos; journal at
    [<out_dir>/fleet.journal.jsonl]. *)

type t

type status =
  | Queued
  | Running of { attempt : int }
  | Backoff of { attempt : int; until_tick : int }
  | Completed of { attempt : int; converged : int; trials : int }
  | Failed of { attempts : int; error : string }

val create : ?resume:bool -> config -> t
(** Creates the pool and opens the journal (truncating, unless [resume]
    — then the existing journal is replayed, terminal jobs are kept
    terminal, incomplete ones requeued, and new entries append).
    Creates [out_dir] if missing. Raises [Failure] if a resume journal
    cannot be read, [Invalid_argument] on a nonsensical config. *)

val submit : t -> Job.t -> [ `Accepted | `Shed of string ]
(** Admission verdict. Shed (with a journaled reason) when the queue is
    full, the id duplicates a known job, or the fleet is draining. *)

val reject : t -> id:string -> reason:string -> unit
(** Journals a shed verdict for a spec that failed validation before it
    could become a {!Job.t} (malformed JSON line, bad field). *)

val has_capacity : t -> bool
(** Flow control for job-file feeding: read the next spec only when
    true, so a huge job file never blows the admission bound. *)

val step : t -> bool
(** One scheduler tick: fold in completions, requeue due backoffs,
    dispatch while under the concurrency limit. Returns whether any
    completion was processed. Exposed for tests; {!run} loops it. *)

val drain : t -> unit
(** Starts a graceful drain (idempotent). *)

val run :
  ?tick_s:float ->
  ?on_tick:(t -> unit) ->
  ?should_drain:(unit -> string option) ->
  ?more_work:(unit -> bool) ->
  t ->
  string
(** Runs the event loop to completion and returns the drain reason
    (["complete"], or whatever [should_drain] gave). [on_tick] runs once
    per tick — the CLI feeds the job file, serves HTTP and polls signal
    flags from it. [more_work] keeps an idle fleet alive (serve mode,
    or a feeder with specs still unread). [tick_s] is the idle sleep
    (default 2 ms; tests pass 0 to spin). Afterwards the journal is
    closed ([drain] entry last) and the pool shut down; with
    [chaos.torn_journal] the journal's final record is then torn to
    exercise resume. [t] cannot be run again. *)

type stats = {
  tick : int;
  submitted : int;
  completed : int;
  failed : int;
  shed : int;
  retries : int;
  queue_depth : int;  (** admission queue + backoff room *)
  in_flight : int;
  draining : bool;
}

val stats : t -> stats

val snapshot_json : t -> Telemetry.Json.t
(** The live status document the dashboard renders: the {!stats}
    fields, per-group queue depths, and a per-job state table in
    submission order. *)

val all_done : t -> bool
(** Every known job is terminal (completed or failed). *)

val completed_count : t -> int
val is_completed : t -> string -> bool
