type t = {
  cap : int;
  mutable groups : (string * Job.t Queue.t) list;  (* insertion order *)
  mutable cursor : int;  (* index into [groups] of the next group to serve *)
  mutable count : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Fleet.Admission.create: cap must be >= 1";
  { cap; groups = []; cursor = 0; count = 0 }

let depth t = t.count
let is_empty t = t.count = 0
let has_capacity t = t.count < t.cap

let group_queue t name =
  match List.assoc_opt name t.groups with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      t.groups <- t.groups @ [ (name, q) ];
      q

let enqueue t job =
  Queue.push job (group_queue t job.Job.group);
  t.count <- t.count + 1

let push t job =
  if has_capacity t then begin
    enqueue t job;
    Ok ()
  end
  else Error (Printf.sprintf "queue full (cap %d)" t.cap)

let push_force t job = enqueue t job

(* Round-robin across groups in insertion order, FIFO within a group: a
   burst of submissions in one group cannot starve the others. The cursor
   survives pops so service keeps rotating rather than restarting at the
   first group every time. *)
let pop t =
  if t.count = 0 then None
  else begin
    let groups = Array.of_list t.groups in
    let k = Array.length groups in
    let rec find i tries =
      if tries = k then None
      else
        let _, q = groups.(i mod k) in
        if Queue.is_empty q then find (i + 1) (tries + 1)
        else begin
          t.cursor <- (i + 1) mod k;
          t.count <- t.count - 1;
          Some (Queue.pop q)
        end
    in
    find (t.cursor mod k) 0
  end

let groups t = List.map (fun (name, q) -> (name, Queue.length q)) t.groups
