(** One supervised job attempt: run the trials, then publish outputs.

    A worker executes every trial of a job sequentially inside one pool
    task, buffering telemetry in memory; only a fully successful attempt
    flushes the events file and writes the manifest (events first,
    manifest second, caller's journal entry third — see
    {!Journal.replay} for why that order makes crash recovery
    idempotent). A failed attempt — protocol exception, blown
    {!Job.deadline}, injected {!Chaos.Fleet_faults.Killed} /
    [Stalled] — leaves {e no} partial outputs behind and surfaces as the
    raised exception, which the orchestrator traps with
    {!Supervise.run}.

    Trial entropy is pre-split from [job.seed] in trial order, so for a
    fixed spec the events file content is a pure function of the spec:
    bit-identical across attempts, worker counts, and kill/resume
    cycles. *)

exception Deadline_exceeded of { interactions : int; deadline : int }

type outcome = {
  job : Job.t;
  attempt : int;
  converged : int;
      (** trials that converged (or, under a chaos spec, met their SLA) *)
  trials : int;
  wall_s : float;
  events_path : string;
  manifest_path : string;
}

val events_path : out_dir:string -> Job.t -> string
(** [<out_dir>/<id>.events.jsonl] *)

val manifest_path : out_dir:string -> Job.t -> string
(** [<out_dir>/<id>.manifest.json] *)

val run : out_dir:string -> ?kill_at:int -> ?stall:bool -> attempt:int -> Job.t -> outcome
(** Executes one attempt. [kill_at] arms a hook raising [Killed] once
    the interaction clock reaches it (and unconditionally before outputs
    are written, so a drawn kill always fails the attempt); [stall] runs
    the attempt but withholds its result, raising [Stalled]. Raises on
    any trial failure — callers wrap with {!Supervise.run}. *)
