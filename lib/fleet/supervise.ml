type failure = { error : string; backtrace : string }

let failure_of_exn exn bt =
  { error = Printexc.to_string exn; backtrace = Printexc.raw_backtrace_to_string bt }

let run f =
  match f () with
  | v -> Ok v
  | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      Error (failure_of_exn exn bt)

let pp_failures ppf failures =
  List.iter
    (fun (label, f) -> Format.fprintf ppf "  %s: %s@." label f.error)
    failures

let summary ~total failures =
  if failures = [] then Printf.sprintf "%d of %d succeeded" total total
  else
    Printf.sprintf "%d of %d succeeded, %d failed (%s)" (total - List.length failures) total
      (List.length failures)
      (String.concat "; "
         (List.map (fun (label, f) -> Printf.sprintf "%s: %s" label f.error) failures))
