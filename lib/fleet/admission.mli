(** Bounded fair admission queue.

    The orchestrator's waiting room. Capacity is a hard bound: {!push}
    refuses (the caller journals a [shed] verdict and tells the submitter)
    rather than growing without limit — explicit backpressure instead of
    an unbounded queue hiding overload. Scheduling is round-robin over
    groups in first-appearance order, FIFO within a group, so one noisy
    group (by default, one protocol) cannot starve the rest.

    Single-threaded on purpose: only the orchestrator's event loop
    touches it. Determinism: pop order is a pure function of the push
    sequence. *)

type t

val create : cap:int -> t
(** [cap >= 1] or [Invalid_argument]. *)

val push : t -> Job.t -> (unit, string) result
(** Enqueues, or [Error "queue full (cap N)"] when at capacity — the
    shed verdict surfaced to submitters. *)

val push_force : t -> Job.t -> unit
(** Enqueues even beyond capacity. Reserved for requeueing work the
    fleet already accepted (retries after backoff, [--resume] replay):
    accepted jobs are never shed by their own retry. *)

val pop : t -> Job.t option
(** Next job under round-robin fairness, or [None] when empty. *)

val has_capacity : t -> bool
(** Whether {!push} would currently accept — the flow-control predicate
    the job-file feeder polls before reading the next spec. *)

val depth : t -> int
val is_empty : t -> bool

val groups : t -> (string * int) list
(** Queued depth per group, in service order (for the status board). *)
