exception Deadline_exceeded of { interactions : int; deadline : int }

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { interactions; deadline } ->
        Some
          (Printf.sprintf "deadline exceeded (%d interactions, budget %d)" interactions deadline)
    | _ -> None)

type outcome = {
  job : Job.t;
  attempt : int;
  converged : int;
  trials : int;
  wall_s : float;
  events_path : string;
  manifest_path : string;
}

(* Mirrors ssr_sim's existential packing: one dispatch loop owns the
   engine / kernel / chaos branching for every protocol. Fleet jobs run
   on the complete interaction graph, so there is no topology arm. *)
type runnable =
  | Runnable : {
      protocol : 's Engine.Protocol.t;
      enumerable : ('s Engine.Enumerable.t, string) result;
      gen : Prng.t -> 's array;
      random_state : Prng.t -> 's;
      horizon_scale : float;
    }
      -> runnable

let lookup_scenario ~job catalogue =
  match List.assoc_opt job.Job.scenario catalogue with
  | Some gen -> gen
  | None ->
      failwith
        (Printf.sprintf "unknown %s scenario %S (available: %s)" job.Job.protocol
           job.Job.scenario
           (String.concat ", " (List.map fst catalogue)))

let runnable_of_job (job : Job.t) =
  let n = job.Job.n in
  match job.Job.protocol with
  | "silent" ->
      Runnable
        {
          protocol = Core.Silent_n_state.protocol ~n;
          enumerable = Ok (Core.Silent_n_state.enumerable ~n);
          gen = lookup_scenario ~job (Core.Scenarios.silent_catalogue ~n);
          random_state = (fun rng -> Core.Scenarios.silent_random_state rng ~n);
          horizon_scale = float_of_int n;
        }
  | "optimal" ->
      let params = Core.Params.optimal_silent n in
      Runnable
        {
          protocol = Core.Optimal_silent.protocol ~params ~n ();
          enumerable = Ok (Core.Optimal_silent.enumerable ~params ~n ());
          gen = lookup_scenario ~job (Core.Scenarios.optimal_catalogue ~params ~n);
          random_state = (fun rng -> Core.Scenarios.optimal_random_state rng ~params ~n);
          horizon_scale = 40.0;
        }
  | "sublinear" ->
      let h = job.Job.h in
      let params = Core.Params.sublinear ~h n in
      Runnable
        {
          protocol = Core.Sublinear.protocol ~params ~n ~h ();
          enumerable = Error "the transition is randomized";
          gen = lookup_scenario ~job (Core.Scenarios.sublinear_catalogue ~params ~n);
          random_state = (fun rng -> Core.Scenarios.sublinear_random_state rng ~params ~n);
          horizon_scale = 40.0;
        }
  | other -> failwith (Printf.sprintf "unknown protocol %S" other)

let exec_kind (job : Job.t) =
  match job.Job.engine with Job.Agent -> Engine.Exec.Agent | Job.Count -> Engine.Exec.Count

let make_exec (type s) ~(job : Job.t) ~(protocol : s Engine.Protocol.t)
    ~(kernel : s Ir.Kernel.t option) ~(init : s array) ~rng : s Engine.Exec.t =
  let kind = exec_kind job in
  match kernel with
  | Some k -> Ir.Kernel.exec ~kind k ~init ~rng
  | None -> (
      match kind with
      | Engine.Exec.Count -> Engine.Exec.make ~kind ~protocol ~init ~rng ()
      | Engine.Exec.Agent -> Engine.Exec.of_sim (Engine.Sim.make ~protocol ~init ~rng))

let step_interval ~n = max 1 (n / 2)
let to_interactions ~n t = max 1 (int_of_float (Float.ceil (t *. float_of_int n)))

let events_path ~out_dir (job : Job.t) = Filename.concat out_dir (job.Job.id ^ ".events.jsonl")

let manifest_path ~out_dir (job : Job.t) =
  Filename.concat out_dir (job.Job.id ^ ".manifest.json")

let run ~out_dir ?kill_at ?(stall = false) ~attempt (job : Job.t) =
  let t0 = Unix.gettimeofday () in
  let (Runnable r) = runnable_of_job job in
  let { Job.n; seed; trials; _ } = job in
  let kernel =
    match (job.Job.kernel, r.enumerable) with
    | Job.Interp, _ -> None
    | Job.Compiled, Ok e -> Some (Ir.Kernel.compile e)
    | Job.Compiled, Error reason ->
        (* Job validation rejects this; a journal edited by hand can
           still reach here, so fail the attempt rather than assert. *)
        failwith (Printf.sprintf "compiled kernel unavailable: %s" reason)
  in
  let chaos =
    Option.map
      (fun spec ->
        match Chaos.Spec.parse spec with
        | Ok (schedule, adversary) -> (schedule, adversary)
        | Error msg -> failwith (Printf.sprintf "chaos: %s" msg))
      job.Job.chaos
  in
  (* The entropy for trial [i] depends only on (job.seed, i): identical on
     every attempt, worker and resume — the heart of the determinism
     contract. The per-attempt chaos/backoff draws live in the
     orchestrator, never here. *)
  let children = Prng.split_many (Prng.create ~seed) trials in
  let buffers = Array.init trials (fun _ -> Telemetry.Sink.buffer ()) in
  let converged = ref 0 in
  for i = 0 to trials - 1 do
    let rng = children.(i) in
    let init = r.gen rng in
    let exec = make_exec ~job ~protocol:r.protocol ~kernel ~init ~rng in
    Option.iter
      (fun at ->
        Engine.Exec.on exec (fun ev ->
            if Engine.Instrument.interactions ev >= at then raise Chaos.Fleet_faults.Killed))
      kill_at;
    let run_meta =
      Telemetry.Events.make_run ~engine:(exec_kind job) ~protocol:r.protocol.Engine.Protocol.name
        ~n ~seed ~trial:i ()
    in
    Telemetry.Events.attach ~step_interval:(step_interval ~n) exec ~run:run_meta buffers.(i);
    (match chaos with
    | Some (schedule, adversary) ->
        let horizon =
          match job.Job.horizon with
          | Some t -> to_interactions ~n t
          | None -> 8 * Engine.Runner.default_confirm ~n
        in
        let sla_budget = Option.map (to_interactions ~n) job.Job.sla in
        let report =
          Chaos.Soak.run ?sla_budget ~schedule ~adversary ~random_state:r.random_state ~rng
            ~horizon exec
        in
        if report.Chaos.Soak.sla.Chaos.Soak.met then incr converged
    | None ->
        let horizon =
          Engine.Runner.default_horizon ~n ~expected_time:(r.horizon_scale *. float_of_int n)
        in
        let max_interactions =
          match job.Job.deadline with Some d -> min d horizon | None -> horizon
        in
        let outcome =
          Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking ~max_interactions
            ~confirm_interactions:(Engine.Runner.default_confirm ~n)
            exec
        in
        (match job.Job.deadline with
        | Some d when not outcome.Engine.Runner.converged ->
            raise
              (Deadline_exceeded
                 { interactions = outcome.Engine.Runner.total_interactions; deadline = d })
        | _ -> ());
        if outcome.Engine.Runner.converged then incr converged);
    Telemetry.Metrics.record_exec exec
  done;
  (* A kill drawn past the last event the trials produced must still
     fail the attempt: the buffers are discarded either way, so raising
     here is observationally the same as the in-run hook firing. *)
  if kill_at <> None then raise Chaos.Fleet_faults.Killed;
  if stall then raise Chaos.Fleet_faults.Stalled;
  (* Outputs are (re)written only on a fully successful attempt, events
     first, manifest second — the orchestrator journals [done] third.
     Every prefix of that order is safe to crash in: a re-run rewrites
     byte-identical events, so the files are exactly-once in content even
     when execution is at-least-once. *)
  let ev_path = events_path ~out_dir job in
  let sink = Telemetry.Sink.file ev_path in
  Array.iter
    (fun buffer ->
      String.split_on_char '\n' (Telemetry.Sink.contents buffer)
      |> List.iter (fun line -> if line <> "" then Telemetry.Sink.write_line sink line))
    buffers;
  Telemetry.Sink.close sink;
  let wall_s = Unix.gettimeofday () -. t0 in
  let mf_path = manifest_path ~out_dir job in
  let manifest =
    Telemetry.Manifest.make
      ~run:("fleet:" ^ job.Job.id)
      ~protocol:job.Job.protocol
      ~engine:(Job.engine_to_string job.Job.engine)
      ~n ~seed ~trials
      ~params:
        ([
           ("scenario", Telemetry.Json.String job.Job.scenario);
           ("kernel", Telemetry.Json.String (Job.kernel_to_string job.Job.kernel));
           ("group", Telemetry.Json.String job.Job.group);
         ]
        @ (match job.Job.chaos with
          | Some spec -> [ ("chaos", Telemetry.Json.String spec) ]
          | None -> [])
        @
        match job.Job.deadline with
        | Some d -> [ ("deadline", Telemetry.Json.Int d) ]
        | None -> [])
      ~wall_clock_s:wall_s ()
  in
  Telemetry.Manifest.write ~path:mf_path manifest;
  {
    job;
    attempt;
    converged = !converged;
    trials;
    wall_s;
    events_path = ev_path;
    manifest_path = mf_path;
  }
