(* xoshiro256** 1.0 (Blackman & Vigna, public domain reference
   implementation), ported to OCaml Int64. State must never be all zero;
   splitmix64 seeding guarantees that.

   A generator can alternatively run in *scripted* mode: every bounded
   primitive draw ([int], [bool], [bits], ...) is then served from a
   prescribed list of choices instead of the xoshiro stream, and the
   (choice, bound) pairs actually drawn are recorded. Static analysis uses
   this to enumerate every synthetic-coin outcome of a randomized
   transition exactly (see [Analysis.Coins]); the unbounded primitives
   ([bits64], [float], [split]) have no finite choice space and raise in
   scripted mode. *)

type script = {
  mutable pending : int list;  (* prescribed upcoming choices, in draw order *)
  mutable trace : (int * int) list;  (* (choice, bound) drawn so far, newest first *)
}

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  script : script option;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: used only to expand a seed into four state words. *)
let splitmix_next state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed64 seed64 =
  let state = ref seed64 in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3; script = None }

let create ~seed = of_seed64 (Int64.of_int seed)

let scripted choices =
  let g = of_seed64 0L in
  { g with script = Some { pending = choices; trace = [] } }

let is_scripted g = g.script <> None

let script_trace g =
  match g.script with
  | None -> invalid_arg "Prng.script_trace: generator is not scripted"
  | Some s -> List.rev s.trace

let script_draw s bound =
  let choice =
    match s.pending with
    | [] -> 0
    | c :: rest ->
        s.pending <- rest;
        if c < 0 || c >= bound then
          invalid_arg
            (Printf.sprintf "Prng: scripted choice %d outside [0, %d)" c bound);
        c
  in
  s.trace <- (choice, bound) :: s.trace;
  choice

let copy g =
  let script =
    match g.script with
    | None -> None
    | Some s -> Some { pending = s.pending; trace = s.trace }
  in
  { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3; script }

let raw_bits64 g =
  let result = Int64.mul (rotl (Int64.mul g.s1 5L) 7) 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let bits64 g =
  match g.script with
  | None -> raw_bits64 g
  | Some _ -> invalid_arg "Prng.bits64: unbounded draw on a scripted generator"

let split g = of_seed64 (bits64 g)

let split_many g k = Array.init k (fun _ -> split g)

(* Uniform int in [0, bound) by rejection on the top 62 bits (non-negative
   OCaml int range). *)
let int g bound =
  assert (bound > 0);
  match g.script with
  | Some s -> script_draw s bound
  | None ->
      let mask = Int64.shift_right_logical Int64.minus_one 2 in
      (* 62 bits *)
      let rec loop () =
        let r = Int64.to_int (Int64.logand (raw_bits64 g) mask) in
        (* r is uniform on [0, 2^62). Reject the tail to avoid modulo bias. *)
        let limit = (max_int / bound) * bound in
        if r < limit then r mod bound else loop ()
      in
      loop ()

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let bool g =
  match g.script with
  | Some s -> script_draw s 2 = 1
  | None -> Int64.compare (Int64.logand (raw_bits64 g) 1L) 0L <> 0

let float g =
  (* 53 random bits into [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  r *. 0x1p-53

let bernoulli g ~p = float g < p

let distinct_pair g n =
  assert (n >= 2);
  let i = int g n in
  let j = int g (n - 1) in
  let j = if j >= i then j + 1 else j in
  (i, j)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

(* Cap on enumerable bit widths in scripted mode: the choice space of a
   [bits] draw is 2^width and the analyzer visits all of it. *)
let max_scripted_width = 20

let bits g ~width =
  assert (width >= 0 && width <= 62);
  if width = 0 then 0
  else
    match g.script with
    | Some s ->
        if width > max_scripted_width then
          invalid_arg "Prng.bits: width too large to enumerate on a scripted generator";
        script_draw s (1 lsl width)
    | None -> Int64.to_int (Int64.shift_right_logical (raw_bits64 g) (64 - width))
