(** Deterministic pseudo-random number generation for simulations.

    The generator is xoshiro256** (Blackman & Vigna), seeded through
    splitmix64 so that small integer seeds yield well-mixed initial states.
    Every simulation in this repository draws randomness exclusively from a
    value of type {!t}, making runs reproducible from a single integer seed
    and allowing independent streams to be derived with {!split}. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]. Distinct
    seeds give (with overwhelming probability) uncorrelated streams. *)

val scripted : int list -> t
(** [scripted choices] is a generator in {e scripted} mode: each bounded
    primitive draw ({!int}, {!bool}, {!bits}, and the derived helpers) is
    answered by the next element of [choices] — which must lie in the
    draw's range, or [Invalid_argument] is raised — and by [0] once
    [choices] is exhausted. Every draw is recorded together with its bound
    (see {!script_trace}), which lets a caller enumerate the complete
    finite choice tree of a randomized function exactly. The unbounded
    primitives ({!bits64}, {!float}, {!bernoulli}, {!split}) raise
    [Invalid_argument] in scripted mode. *)

val is_scripted : t -> bool
(** [true] iff the generator was built by {!scripted}. *)

val script_trace : t -> (int * int) list
(** The [(choice, bound)] pairs drawn so far from a scripted generator, in
    draw order. Raises [Invalid_argument] on a non-scripted generator. *)

val copy : t -> t
(** [copy g] is a generator with identical state that evolves separately. *)

val split : t -> t
(** [split g] draws from [g] to create an independent child generator.
    The child stream is uncorrelated with the remainder of [g]'s stream. *)

val split_many : t -> int -> t array
(** [split_many g k] is [k] independent child generators. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform on [0, bound). Requires [bound > 0]. Unbiased
    (rejection sampling). *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform on [lo, hi] inclusive. Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float
(** Uniform on [0, 1). *)

val bernoulli : t -> p:float -> bool
(** [bernoulli g ~p] is [true] with probability [p]. *)

val distinct_pair : t -> int -> int * int
(** [distinct_pair g n] is an ordered pair [(i, j)] with [i <> j], uniform
    over the [n * (n-1)] ordered pairs of [0..n-1]. Requires [n >= 2]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform random permutation of [0..n-1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val bits : t -> width:int -> int
(** [bits g ~width] is a uniform [width]-bit non-negative integer,
    [0 <= width <= 62]. In scripted mode the width is additionally capped
    at 20 bits (the choice space is enumerated exhaustively). *)
