type 'a codec = { size : int; index : 'a -> int; state : int -> 'a }

let silent_n_state_codec ~n =
  {
    size = n;
    index = (fun (s : Core.Silent_n_state.state) -> (s :> int));
    state = (fun i -> Core.Silent_n_state.state_of_rank0 ~n i);
  }

type 'a analysis = {
  codec : 'a codec;
  n : int;
  configs : int array array;
  config_index : (int array, int) Hashtbl.t;
  absorbing_flags : bool array;
  correct_flags : bool array;
  expected_interactions : float array;  (* 0 on absorbing configurations *)
}

(* All count vectors of length [size] summing to [n]. *)
let enumerate_configs ~size ~n =
  let acc = ref [] in
  let v = Array.make size 0 in
  let rec fill pos remaining =
    if pos = size - 1 then begin
      v.(pos) <- remaining;
      acc := Array.copy v :: !acc
    end
    else
      for c = 0 to remaining do
        v.(pos) <- c;
        fill (pos + 1) (remaining - c)
      done
  in
  if size = 0 then invalid_arg "Chain: empty state space";
  fill 0 n;
  Array.of_list (List.rev !acc)

(* Deterministic transition table over state indices; None = null pair. *)
let transition_table ~(protocol : 'a Engine.Protocol.t) ~codec =
  let rng = Prng.create ~seed:0 in
  Array.init codec.size (fun i ->
      Array.init codec.size (fun j ->
          let si = codec.state i and sj = codec.state j in
          let si', sj' = protocol.Engine.Protocol.transition rng si sj in
          if protocol.Engine.Protocol.equal si si' && protocol.Engine.Protocol.equal sj sj' then
            None
          else Some (codec.index si', codec.index sj')))

let config_is_correct ~(protocol : 'a Engine.Protocol.t) ~codec config =
  let n = protocol.Engine.Protocol.n in
  let rank_counts = Array.make (n + 1) 0 in
  let ok = ref true in
  Array.iteri
    (fun i c ->
      if c > 0 then
        match protocol.Engine.Protocol.rank (codec.state i) with
        | Some r when r >= 1 && r <= n -> rank_counts.(r) <- rank_counts.(r) + c
        | Some _ | None -> ok := false)
    config;
  !ok
  &&
  let rec all r = r > n || (rank_counts.(r) = 1 && all (r + 1)) in
  all 1

let analyze ~protocol ~codec =
  if not protocol.Engine.Protocol.deterministic then
    invalid_arg "Chain.analyze: protocol is randomized";
  let n = protocol.Engine.Protocol.n in
  let table = transition_table ~protocol ~codec in
  let configs = enumerate_configs ~size:codec.size ~n in
  let count = Array.length configs in
  let config_index = Hashtbl.create (2 * count) in
  Array.iteri (fun idx v -> Hashtbl.replace config_index v idx) configs;
  (* Productive outgoing transitions of one configuration, as
     (destination index, weight); total weight of ordered pairs is
     n·(n−1). *)
  let outgoing v =
    let dests = ref [] in
    Array.iteri
      (fun i ci ->
        if ci > 0 then
          Array.iteri
            (fun j cj ->
              let w = if i = j then ci * (ci - 1) else ci * cj in
              if w > 0 then
                match table.(i).(j) with
                | None -> ()
                | Some (i', j') ->
                    let v' = Array.copy v in
                    v'.(i) <- v'.(i) - 1;
                    v'.(j) <- v'.(j) - 1;
                    v'.(i') <- v'.(i') + 1;
                    v'.(j') <- v'.(j') + 1;
                    dests := (Hashtbl.find config_index v', w) :: !dests)
            v)
      v;
    !dests
  in
  let transitions = Array.map outgoing configs in
  let absorbing_flags = Array.map (fun dests -> dests = []) transitions in
  let correct_flags = Array.map (config_is_correct ~protocol ~codec) configs in
  (* Expected interactions to absorption: for transient c,
       x_c = 1 + P(c→c)·x_c + Σ_{c'} P(c→c')·x_{c'}
     with x = 0 on absorbing configurations. Solve (I − Q)·x = 1. *)
  let transient = ref [] in
  Array.iteri (fun idx a -> if not absorbing_flags.(idx) then transient := (idx, a) :: !transient) absorbing_flags;
  let transient = Array.of_list (List.rev_map fst !transient) in
  let row_of = Hashtbl.create (Array.length transient) in
  Array.iteri (fun row idx -> Hashtbl.replace row_of idx row) transient;
  let t_count = Array.length transient in
  let expected_interactions = Array.make count 0.0 in
  if t_count > 0 then begin
    let total_weight = float_of_int (n * (n - 1)) in
    let a = Array.make_matrix t_count t_count 0.0 in
    let b = Array.make t_count 1.0 in
    Array.iteri
      (fun row idx ->
        a.(row).(row) <- 1.0;
        let productive = ref 0 in
        List.iter
          (fun (dest, w) ->
            productive := !productive + w;
            match Hashtbl.find_opt row_of dest with
            | Some col -> a.(row).(col) <- a.(row).(col) -. (float_of_int w /. total_weight)
            | None -> () (* absorbing destination: x = 0 *))
          transitions.(idx);
        (* self-loop from the null interactions *)
        let null = total_weight -. float_of_int !productive in
        (match Hashtbl.find_opt row_of idx with
        | Some col when col = row -> a.(row).(row) <- a.(row).(row) -. (null /. total_weight)
        | Some _ | None -> assert false))
      transient;
    let x =
      try Linear.solve a b
      with Failure _ -> failwith "Chain.analyze: non-absorbing recurrent class"
    in
    Array.iteri (fun row idx -> expected_interactions.(idx) <- x.(row)) transient
  end;
  { codec; n; configs; config_index; absorbing_flags; correct_flags; expected_interactions }

let configurations t = Array.length t.configs

let absorbing t = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.absorbing_flags

let all_absorbing_correct t =
  let ok = ref true in
  Array.iteri (fun idx a -> if a && not t.correct_flags.(idx) then ok := false) t.absorbing_flags;
  !ok

let counts_of_config t config =
  if Array.length config <> t.n then invalid_arg "Chain.expected_time: configuration size differs from n";
  let v = Array.make t.codec.size 0 in
  Array.iter
    (fun s ->
      let i = t.codec.index s in
      v.(i) <- v.(i) + 1)
    config;
  v

let expected_time t config =
  let v = counts_of_config t config in
  match Hashtbl.find_opt t.config_index v with
  | Some idx -> t.expected_interactions.(idx) /. float_of_int t.n
  | None -> invalid_arg "Chain.expected_time: unknown configuration"

let worst_expected_time t =
  let worst = ref 0 in
  Array.iteri
    (fun idx _ ->
      if t.expected_interactions.(idx) > t.expected_interactions.(!worst) then worst := idx)
    t.configs;
  let v = t.configs.(!worst) in
  (* materialize a configuration array from the count vector *)
  let agents = ref [] in
  Array.iteri
    (fun i c ->
      for _ = 1 to c do
        agents := t.codec.state i :: !agents
      done)
    v;
  (t.expected_interactions.(!worst) /. float_of_int t.n, Array.of_list (List.rev !agents))

let mean_expected_time t =
  let acc = Array.fold_left ( +. ) 0.0 t.expected_interactions in
  acc /. float_of_int (Array.length t.configs) /. float_of_int t.n
