(** Dense linear algebra for the exact Markov-chain analysis.

    Only what {!Chain} needs: solving [A·x = b] by Gaussian elimination
    with partial pivoting. Suitable for the few-thousand-unknown systems
    arising from exhaustive configuration spaces at small populations. *)

val solve : float array array -> float array -> float array
(** [solve a b] returns [x] with [a·x = b]. [a] is square, indexed
    [a.(row).(col)], and is consumed (mutated) by the elimination; pass a
    copy to keep it. Raises [Failure] on a (numerically) singular matrix
    and [Invalid_argument] on dimension mismatch. *)

val mat_vec : float array array -> float array -> float array
(** [mat_vec a x] is [a·x] (no mutation); used to verify residuals in
    tests. *)

val max_abs_residual : float array array -> float array -> float array -> float
(** [max_abs_residual a x b] is [max_i |(a·x − b)_i|]. *)
