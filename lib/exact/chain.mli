(** Exact analysis of a population protocol as a finite Markov chain.

    For a deterministic protocol over a small enumerable state space, the
    population's configuration — the multiset of agent states, i.e. a count
    vector — evolves as a finite Markov chain whose transition
    probabilities are fully determined by the uniform-random-pair
    scheduler: from configuration [v], the ordered state pair [(i, j)] is
    drawn with probability [v_i·(v_j − [i=j]) / (n·(n−1))]. This module
    enumerates the entire configuration space, identifies the silent
    (absorbing) configurations, and solves the linear system for the exact
    expected number of interactions to absorption from every configuration.

    Exhaustive enumeration is exponential — C(n+S−1, S−1) configurations
    for [S] states — so this is a {e validation} tool for small [n]
    (Silent-n-state-SSR is tractable up to n ≈ 7): the simulators' measured
    means are checked against these exact values, and self-stabilization
    is {e model-checked}: every absorbing configuration is verified
    correct, and every configuration is verified to reach absorption. *)

type 'a codec = {
  size : int;  (** number of protocol states *)
  index : 'a -> int;  (** injection into [0, size) *)
  state : int -> 'a;
}

val silent_n_state_codec : n:int -> Core.Silent_n_state.state codec
(** Codec for the n-state baseline protocol. *)

type 'a analysis

val analyze : protocol:'a Engine.Protocol.t -> codec:'a codec -> 'a analysis
(** Builds the full chain. Requires [protocol.deterministic]. Raises
    [Failure "Chain.analyze: non-absorbing recurrent class"] if some
    configuration cannot reach a silent configuration (which would
    disprove self-stabilization for that protocol and size). *)

val configurations : 'a analysis -> int
(** Total number of configurations. *)

val absorbing : 'a analysis -> int
(** Number of silent configurations. *)

val all_absorbing_correct : 'a analysis -> bool
(** [true] iff every silent configuration is a correct ranking — the
    safety half of self-stabilization, checked exhaustively. *)

val expected_time : 'a analysis -> 'a array -> float
(** [expected_time a config] is the exact expected {e parallel time} to
    absorption from the given configuration. *)

val worst_expected_time : 'a analysis -> float * 'a array
(** The maximum over all configurations, with a witness configuration. *)

val mean_expected_time : 'a analysis -> float
(** Average over all configurations (uniform over configuration space). *)
