let solve a b =
  let n = Array.length a in
  if n = 0 then invalid_arg "Linear.solve: empty system";
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Linear.solve: non-square matrix") a;
  if Array.length b <> n then invalid_arg "Linear.solve: dimension mismatch";
  let b = Array.copy b in
  (* forward elimination with partial pivoting *)
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if Float.abs a.(!pivot).(col) < 1e-12 then failwith "Linear.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    let inv = 1.0 /. a.(col).(col) in
    for row = col + 1 to n - 1 do
      let factor = a.(row).(col) *. inv in
      if factor <> 0.0 then begin
        a.(row).(col) <- 0.0;
        for k = col + 1 to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (factor *. a.(col).(k))
        done;
        b.(row) <- b.(row) -. (factor *. b.(col))
      end
    done
  done;
  (* back substitution *)
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let acc = ref b.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. a.(row).(row)
  done;
  x

let mat_vec a x =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let max_abs_residual a x b =
  let ax = mat_vec a x in
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) ax;
  !worst
