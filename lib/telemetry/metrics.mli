(** Internal metrics registry: counters, gauges, histograms.

    A registry is a named bag of numbers filled in while a workload runs
    and dumped once at the end as a JSON summary ([--metrics FILE],
    [experiments_main --out-dir], the bench metrics section). It is {e not}
    on any engine hot path: the engines keep their own plain mutable
    counters (see [Engine.Exec.stats]) and the registry is only touched at
    trial/run granularity, where a mutex acquisition is noise. All
    operations are therefore thread-safe — pool domains may observe into
    the same registry concurrently.

    {2 Ambient registry}

    Library code that should stay telemetry-agnostic (the experiment trial
    runner) checks {!ambient} — a process-global optional registry — and
    records only when one is installed. When none is installed the cost is
    one atomic read per {e trial}, i.e. nothing. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** [incr t name] adds 1 to counter [name] (created at 0 on first use). *)

val add : t -> string -> float -> unit
(** Adds to a counter. Counters are monotonic by convention (the dump does
    not enforce it). *)

val set : t -> string -> float -> unit
(** Sets gauge [name]. *)

val observe : t -> string -> float -> unit
(** Appends one observation to histogram [name]. *)

val counter_value : t -> string -> float option
val gauge_value : t -> string -> float option
val observations : t -> string -> float array
(** Observations of histogram [name] in recording order ([[||]] when the
    histogram does not exist). *)

val to_json : t -> Json.t
(** [{"v":1, "counters":{..}, "gauges":{..}, "histograms":{name:
    {"count","min","max","mean","p50","p95","total"}}}] with names sorted,
    so the dump is deterministic. Empty sections are present but empty. *)

val write : path:string -> t -> unit
(** Writes {!to_json} (plus a trailing newline) to [path]. *)

(** {2 Ambient registry} *)

val install : t -> unit
(** Makes [t] the ambient registry (replacing any previous one). *)

val uninstall : unit -> unit

val ambient : unit -> t option

val record_exec : 'a Engine.Exec.t -> unit
(** Publishes [Engine.Exec.stats] of the executor into the ambient
    registry as [engine.<name>] counters (pairs_probed, pairs_cached,
    classes_live, null_skipped, …) — the single scrape point drivers call
    at run end so engine internals land in metrics files and the
    dashboard without per-caller plumbing. No-op without an ambient
    registry; counters {e accumulate} across trials recorded into the
    same registry. *)
