(** Minimal JSON values: just enough for the telemetry layer.

    The container ships no JSON library, and the telemetry formats are
    deliberately small (flat event records, one manifest object, a metrics
    summary), so this module hand-rolls the encoder and a strict parser.
    Encoding is canonical single-line output — exactly what a JSONL sink
    needs — and the parser accepts standard JSON (RFC 8259) so files
    written by this module and by external tools round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** field order is preserved on encode *)

val to_string : t -> string
(** Canonical compact encoding on one line (no newlines anywhere, so a
    value per line is valid JSONL). Floats encode with enough digits to
    round-trip; non-finite floats encode as [null] (JSON has no lexeme
    for them). *)

val parse : string -> (t, string) result
(** Strict parse of one JSON document (surrounding whitespace allowed).
    Numbers without [.], [e] or [E] parse as [Int], others as [Float].
    On failure, returns a message with the byte offset. *)

val equal : t -> t -> bool
(** Structural equality; [Obj] fields compare order-insensitively. *)

(** {2 Accessors} (all total: wrong shape yields [None]) *)

val member : string -> t -> t option
val to_int : t -> int option
(** Accepts [Int] and integral [Float] (a JSON writer may emit [3.0]). *)

val to_float : t -> float option
val to_string_opt : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
