type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Encoding *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.15g" f in
    if float_of_string shorter = f then shorter else s

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_to_string f)
  | String s -> escape_string buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          encode buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  encode buf v;
  Buffer.contents buf

(* Parsing: a plain recursive-descent parser over the input string. *)

exception Parse_error of int * string

type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Parse_error (cur.pos, msg))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur (Printf.sprintf "expected '%c', found '%c'" c c')
  | None -> fail cur (Printf.sprintf "expected '%c', found end of input" c)

let literal cur word value =
  let len = String.length word in
  if cur.pos + len <= String.length cur.src && String.sub cur.src cur.pos len = word then begin
    cur.pos <- cur.pos + len;
    value
  end
  else fail cur (Printf.sprintf "invalid literal (expected %s)" word)

let parse_hex4 cur =
  if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
  let s = String.sub cur.src cur.pos 4 in
  match int_of_string_opt ("0x" ^ s) with
  | Some code ->
      cur.pos <- cur.pos + 4;
      code
  | None -> fail cur "invalid \\u escape"

(* Encode a Unicode code point as UTF-8 (surrogate pairs are combined by
   the caller). *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some '"' -> advance cur; Buffer.add_char buf '"'
        | Some '\\' -> advance cur; Buffer.add_char buf '\\'
        | Some '/' -> advance cur; Buffer.add_char buf '/'
        | Some 'b' -> advance cur; Buffer.add_char buf '\b'
        | Some 'f' -> advance cur; Buffer.add_char buf '\012'
        | Some 'n' -> advance cur; Buffer.add_char buf '\n'
        | Some 'r' -> advance cur; Buffer.add_char buf '\r'
        | Some 't' -> advance cur; Buffer.add_char buf '\t'
        | Some 'u' ->
            advance cur;
            let code = parse_hex4 cur in
            let code =
              if code >= 0xD800 && code <= 0xDBFF
                 && cur.pos + 1 < String.length cur.src
                 && cur.src.[cur.pos] = '\\'
                 && cur.src.[cur.pos + 1] = 'u'
              then begin
                cur.pos <- cur.pos + 2;
                let low = parse_hex4 cur in
                0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
              end
              else code
            in
            add_utf8 buf code
        | Some c -> fail cur (Printf.sprintf "invalid escape '\\%c'" c)
        | None -> fail cur "unterminated escape");
        loop ()
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let consume () =
    let rec go () =
      match peek cur with
      | Some ('0' .. '9' | '-' | '+') -> advance cur; go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance cur;
          go ()
      | _ -> ()
    in
    go ()
  in
  consume ();
  let s = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur (Printf.sprintf "invalid number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* integer out of native range: fall back to float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail cur (Printf.sprintf "invalid number %S" s))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields (kv :: acc)
          | Some '}' ->
              advance cur;
              List.rev (kv :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let cur = { src = s; pos = 0 } in
  match
    let v = parse_value cur in
    skip_ws cur;
    if cur.pos <> String.length s then fail cur "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | String a, String b -> a = b
  | List a, List b -> ( try List.for_all2 equal a b with Invalid_argument _ -> false)
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all
           (fun (k, v) -> match List.assoc_opt k b with Some v' -> equal v v' | None -> false)
           a
  | _ -> false

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List xs -> Some xs | _ -> None
