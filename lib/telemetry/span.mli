(** Timed phases recorded into the ambient {!Metrics} registry.

    A span is a named wall-clock duration — "how long did the init drain
    take", "how long did this advance window run" — observed into the
    ambient registry's histogram [span.<name>]. Spans piggyback on the
    existing metrics pipeline: they appear in [--metrics] dumps under
    [histograms] and feed the per-phase profile panel
    ({!Viz.Charts.phase_profile} and the live dashboard).

    Spans are diagnostics, not results: they read the wall clock, so their
    values vary run to run and must never influence simulation behaviour
    or reported (deterministic) outputs. When no ambient registry is
    installed, {!wrap} costs one atomic read and takes no timestamps, so
    instrumented code paths stay free by default. Spans are recorded at
    phase granularity (a trial, a drain, a soak segment), never inside
    engine hot loops. *)

val prefix : string
(** Histogram name prefix, ["span."]. Everything under it in a metrics
    dump is a phase-duration histogram in seconds. *)

val wrap : string -> (unit -> 'a) -> 'a
(** [wrap name f] runs [f ()] and observes its wall-clock duration (in
    seconds) into the ambient registry as [span.<name>]. The duration is
    recorded even when [f] raises. Without an ambient registry this is
    just [f ()]. *)

val record : string -> float -> unit
(** [record name seconds] observes an externally measured duration into
    [span.<name>] of the ambient registry (no-op without one). *)
