type t = {
  run : string;
  protocol : string option;
  engine : string option;
  n : int option;
  seed : int;
  trials : int;
  jobs : int;
  params : (string * Json.t) list;
  wall_clock_s : float;
  git : string option;
  argv : string list;
}

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some line when line <> "" -> Some line
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let make ~run ?protocol ?engine ?n ~seed ?(trials = 1) ?(jobs = 1) ?(params = []) ~wall_clock_s
    () =
  {
    run;
    protocol;
    engine;
    n;
    seed;
    trials;
    jobs;
    params;
    wall_clock_s;
    git = git_describe ();
    argv = Array.to_list Sys.argv;
  }

let opt f = function Some v -> f v | None -> Json.Null

let to_json t =
  Json.Obj
    [
      ("v", Json.Int 1);
      ("kind", Json.String "manifest");
      ("run", Json.String t.run);
      ("protocol", opt (fun s -> Json.String s) t.protocol);
      ("engine", opt (fun s -> Json.String s) t.engine);
      ("n", opt (fun n -> Json.Int n) t.n);
      ("seed", Json.Int t.seed);
      ("trials", Json.Int t.trials);
      ("jobs", Json.Int t.jobs);
      ("params", Json.Obj t.params);
      ("wall_clock_s", Json.Float t.wall_clock_s);
      ("git", opt (fun s -> Json.String s) t.git);
      ("argv", Json.List (List.map (fun a -> Json.String a) t.argv));
      ("events_schema", Json.Int Events.version);
    ]

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')
