(** Fold an events stream into a per-run recovery summary.

    This is the analysis behind [bin/timeline]: given the decoded events
    of a JSONL file (possibly several interleaved runs — a trial batch),
    it reconstructs, per run, the convergence and recovery story the
    paper's time claims are about: when correctness was first entered,
    how often it was lost, how long each burst of injected faults took to
    recover from, and when the configuration went silent.

    A {e fault burst} is a maximal group of [Fault] events with no
    intervening [Correct_entered]: the repeated-corruption experiments
    inject several faults back to back, and recovery is only meaningful
    once the stream re-enters correctness. A burst that is never followed
    by a [Correct_lost] did not break correctness (the protocol absorbed
    it); one that is, recovers at the next [Correct_entered]. *)

type burst = {
  faults : int;  (** [Fault] events in the burst *)
  agents : int;  (** total agents overwritten *)
  first_at : float;  (** parallel time of the first fault *)
  last_at : float;  (** …and of the last *)
  broke : bool;  (** a [Correct_lost] followed before recovery *)
  recovered_at : float option;
      (** time of the next [Correct_entered]; [None] if the stream ends
          first (only a failure if [broke]) *)
}

type summary = {
  run : Events.run;
  events : int;  (** events seen for this run *)
  steps : int;
  first_correct_at : float option;  (** first [Correct_entered] *)
  last_correct_at : float option;  (** last [Correct_entered] (final convergence) *)
  violations : int;  (** [Correct_lost] count *)
  silent_at : float option;  (** first [Silence] of the final silent stretch *)
  end_time : float;
  end_interactions : int;
  correct_interactions : int;
      (** interactions spent inside a correct stretch, integrated exactly
          from the [Correct_entered]/[Correct_lost] landmarks (which are
          never thinned); the numerator of {!availability} *)
  bursts : burst list;  (** chronological *)
}

val fold : (Events.run * Engine.Instrument.event) list -> summary list
(** Groups by run id (summaries in first-appearance order; events of
    different runs may interleave freely). *)

(** {2 Incremental folding}

    The live dashboard ([timeline --serve]) feeds events as they are
    tailed from a growing file and snapshots summaries between polls.
    {!fold} is [state]/[push]/[snapshot] run to completion. *)

type state

val state : unit -> state
val push : state -> Events.run * Engine.Instrument.event -> unit

val snapshot : state -> summary list
(** Current summaries, in first-appearance order. Non-destructive: more
    events may be pushed afterwards. A fault burst still awaiting its
    [Correct_entered] appears with [recovered_at = None]. *)

val availability : summary -> float
(** Fraction of the stream's interactions spent correct
    ([correct_interactions / end_interactions]). An empty stream counts
    as 0 unless it converged ([last_correct_at] set). *)

val load : in_channel -> ((Events.run * Engine.Instrument.event) list, string) result
(** Reads a JSONL stream to EOF. Empty lines are skipped; the first
    undecodable {e complete} line fails the whole load with its line
    number. A final line with no terminating newline that fails to decode
    is dropped instead: it is a writer caught mid-append (live tailing) or
    a crashed run's torn last write, not a corrupt file. *)

val recovery_time : burst -> float option
(** [recovered_at - last_at], the time-to-correct the recovery tables
    report. *)

(** {2 Recovery SLAs}

    A recovery budget in parallel time units, checked against every burst
    that broke correctness: a recovery slower than the budget is a miss,
    and a broken burst the stream never recovers from (censored) also
    counts against the SLA. Soak runs ([Chaos.Soak], [ssr_sim --chaos])
    apply the same rule on the interaction clock while the run executes;
    this is the offline equivalent over an events file. *)

type sla = {
  sla_budget : float;  (** parallel time units *)
  broke : int;  (** bursts that lost correctness *)
  sla_misses : int;  (** recovered over budget *)
  sla_censored : int;  (** broke but never recovered *)
  sla_met : bool;  (** no misses, nothing censored *)
}

val check_sla : budget:float -> summary -> sla
(** Requires [budget > 0] (raises [Invalid_argument] otherwise). *)

val pp_summary : ?sla_budget:float -> Format.formatter -> summary -> unit
(** Human-readable block, one per run. With [sla_budget], each recovered
    burst is annotated against the budget and an SLA verdict line is
    appended. *)
