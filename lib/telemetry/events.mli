(** Versioned JSONL encoding of the {!Engine.Instrument} event stream.

    Each event encodes as one self-describing JSON object carrying both
    the event payload and the identity of the run that produced it, so a
    file of concatenated runs (e.g. a parallel trial batch) still
    plots/decodes without side tables. Schema v1 (see DESIGN.md
    "Telemetry" for the normative field table):

    {v
    {"v":1,"run":"silent-agent-n64-s1","engine":"agent",
     "protocol":"Silent-n-state-SSR","n":64,"seed":1,
     "type":"step","interactions":128,"time":2.0}
    v}

    [trial] is present only for batch runs; [agents] only on [fault]
    events. Decoding is total: {!of_json} returns [Error] (never raises)
    on unknown versions, types, or missing fields, so external files can
    be validated by round-tripping. *)

val version : int
(** Current schema version (1). *)

type run = {
  id : string;  (** globally unique within a file; see {!run_id} *)
  engine : string;  (** [Engine.Exec.kind_to_string] of the executor *)
  protocol : string;
  n : int;
  seed : int;
  trial : int option;  (** trial index within a batch *)
}

val run_id : engine:string -> protocol:string -> n:int -> seed:int -> ?trial:int -> unit -> string
(** Deterministic human-readable id: ["<protocol>-<engine>-n<n>-s<seed>[-t<trial>]"]
    with the protocol name lowercased. *)

val make_run :
  engine:Engine.Exec.kind -> protocol:string -> n:int -> seed:int -> ?trial:int -> unit -> run
(** Builds a [run] with its {!run_id}. *)

val to_json : run:run -> Engine.Instrument.event -> Json.t

val of_json : Json.t -> (run * Engine.Instrument.event, string) result

val of_line : string -> (run * Engine.Instrument.event, string) result
(** Parse + decode one JSONL line. *)

val attach : ?step_interval:int -> 'a Engine.Exec.t -> run:run -> Sink.t -> unit
(** Subscribes a handler that writes every subsequent event of the
    executor (including [Correct_entered]/[Correct_lost] emitted through
    it by the runner) to the sink as one line. [step_interval] (default 1)
    thins the [Step] stream: only every [step_interval]-th [Step] event is
    written — on the agent engine [Step] fires once per interaction, so an
    unthinned file of a long run is enormous. Landmark events
    ([Correct_entered], [Correct_lost], [Silence], [Fault]) are never
    thinned. Raises [Invalid_argument] if [step_interval < 1]. *)
