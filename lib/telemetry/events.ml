let version = 1

type run = {
  id : string;
  engine : string;
  protocol : string;
  n : int;
  seed : int;
  trial : int option;
}

let run_id ~engine ~protocol ~n ~seed ?trial () =
  let base =
    Printf.sprintf "%s-%s-n%d-s%d" (String.lowercase_ascii protocol) engine n seed
  in
  match trial with None -> base | Some t -> Printf.sprintf "%s-t%d" base t

let make_run ~engine ~protocol ~n ~seed ?trial () =
  let engine = Engine.Exec.kind_to_string engine in
  { id = run_id ~engine ~protocol ~n ~seed ?trial (); engine; protocol; n; seed; trial }

let to_json ~run event =
  let payload =
    match (event : Engine.Instrument.event) with
    | Engine.Instrument.Step { interactions; time }
    | Engine.Instrument.Correct_entered { interactions; time }
    | Engine.Instrument.Correct_lost { interactions; time }
    | Engine.Instrument.Silence { interactions; time } ->
        [ ("interactions", Json.Int interactions); ("time", Json.Float time) ]
    | Engine.Instrument.Fault { agents; interactions; time } ->
        [
          ("interactions", Json.Int interactions);
          ("time", Json.Float time);
          ("agents", Json.Int agents);
        ]
  in
  Json.Obj
    ([
       ("v", Json.Int version);
       ("run", Json.String run.id);
       ("engine", Json.String run.engine);
       ("protocol", Json.String run.protocol);
       ("n", Json.Int run.n);
       ("seed", Json.Int run.seed);
     ]
    @ (match run.trial with Some t -> [ ("trial", Json.Int t) ] | None -> [])
    @ (("type", Json.String (Engine.Instrument.label event)) :: payload))

let field name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let ( let* ) = Result.bind

let of_json json =
  let* v = field "v" Json.to_int json in
  if v <> version then Error (Printf.sprintf "unsupported schema version %d (expected %d)" v version)
  else
    let* id = field "run" Json.to_string_opt json in
    let* engine = field "engine" Json.to_string_opt json in
    let* protocol = field "protocol" Json.to_string_opt json in
    let* n = field "n" Json.to_int json in
    let* seed = field "seed" Json.to_int json in
    let trial = Option.bind (Json.member "trial" json) Json.to_int in
    let run = { id; engine; protocol; n; seed; trial } in
    let* kind = field "type" Json.to_string_opt json in
    let* interactions = field "interactions" Json.to_int json in
    let* time = field "time" Json.to_float json in
    let* event =
      match kind with
      | "step" -> Ok (Engine.Instrument.Step { interactions; time })
      | "correct_entered" -> Ok (Engine.Instrument.Correct_entered { interactions; time })
      | "correct_lost" -> Ok (Engine.Instrument.Correct_lost { interactions; time })
      | "silence" -> Ok (Engine.Instrument.Silence { interactions; time })
      | "fault" ->
          let* agents = field "agents" Json.to_int json in
          Ok (Engine.Instrument.Fault { agents; interactions; time })
      | other -> Error (Printf.sprintf "unknown event type %S" other)
    in
    Ok (run, event)

let of_line line =
  let* json = Json.parse line in
  of_json json

let attach ?(step_interval = 1) exec ~run sink =
  if step_interval < 1 then
    invalid_arg "Telemetry.Events.attach: step_interval must be positive";
  let steps = ref 0 in
  Engine.Exec.on exec (fun event ->
      match event with
      | Engine.Instrument.Step _ ->
          incr steps;
          if !steps mod step_interval = 0 then Sink.write sink (to_json ~run event)
      | Engine.Instrument.Correct_entered _ | Engine.Instrument.Correct_lost _
      | Engine.Instrument.Silence _ | Engine.Instrument.Fault _ ->
          Sink.write sink (to_json ~run event))
