type t = {
  mutex : Mutex.t;
  counters : (string, float ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, float list ref) Hashtbl.t;  (* reversed *)
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add tbl name r;
      r

let add t name by = locked t (fun () -> let r = cell t.counters name in r := !r +. by)

let incr t name = add t name 1.0

let set t name v = locked t (fun () -> let r = cell t.gauges name in r := v)

let observe t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some r -> r := v :: !r
      | None -> Hashtbl.add t.histograms name (ref [ v ]))

let counter_value t name =
  locked t (fun () -> Option.map ( ! ) (Hashtbl.find_opt t.counters name))

let gauge_value t name = locked t (fun () -> Option.map ( ! ) (Hashtbl.find_opt t.gauges name))

let observations t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some r -> Array.of_list (List.rev !r)
      | None -> [||])

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* Counters that hold an integral value dump as JSON integers. *)
let number f = if Float.is_integer f && Float.abs f < 1e15 then Json.Int (int_of_float f) else Json.Float f

let to_json t =
  locked t (fun () ->
      let scalars tbl = List.map (fun (k, r) -> (k, number !r)) (sorted_bindings tbl) in
      let histogram (name, r) =
        let xs = Array.of_list (List.rev !r) in
        let s = Stats.Summary.of_array xs in
        ( name,
          Json.Obj
            [
              ("count", Json.Int s.Stats.Summary.count);
              ("min", Json.Float s.Stats.Summary.min);
              ("max", Json.Float s.Stats.Summary.max);
              ("mean", Json.Float s.Stats.Summary.mean);
              ("p50", Json.Float s.Stats.Summary.median);
              ("p95", Json.Float s.Stats.Summary.p95);
              ("total", Json.Float (Array.fold_left ( +. ) 0.0 xs));
            ] )
      in
      Json.Obj
        [
          ("v", Json.Int 1);
          ("counters", Json.Obj (scalars t.counters));
          ("gauges", Json.Obj (scalars t.gauges));
          ("histograms", Json.Obj (List.map histogram (sorted_bindings t.histograms)));
        ])

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

(* Ambient registry. [Atomic] so pool domains read a consistent value. *)
let installed : t option Atomic.t = Atomic.make None

let install t = Atomic.set installed (Some t)

let uninstall () = Atomic.set installed None

let ambient () = Atomic.get installed

let record_exec exec =
  match ambient () with
  | None -> ()
  | Some t ->
      List.iter (fun (name, v) -> add t ("engine." ^ name) v) (Engine.Exec.stats exec)
