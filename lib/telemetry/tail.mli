(** Incremental reader for a JSONL events file that is still being written.

    [timeline --serve] tails the events file of a running soak: each
    {!poll} picks up the bytes appended since the last one, decodes every
    {e complete} line, and buffers a trailing partial line (a write caught
    mid-[Sink.write_line]) until a later poll completes it. The file may
    not exist yet when the tail is created — polls return [[]] until it
    appears.

    Undecodable complete lines are skipped and counted ({!dropped}), not
    fatal: a live view should survive a corrupt line rather than die
    mid-soak. Offline strict decoding is {!Timeline.load}'s job. *)

type t

val create : path:string -> t
(** No I/O happens until the first {!poll}. *)

val poll : t -> (Events.run * Engine.Instrument.event) list
(** Decoded events from lines completed since the last poll, in file
    order. [[]] when nothing new was appended (or the file does not exist
    yet). *)

val dropped : t -> int
(** Complete lines skipped so far because they failed to decode (blank
    lines are not counted). *)

val close : t -> unit
(** Releases the file descriptor. Later polls reopen the file. *)
