let prefix = "span."

let record name seconds =
  match Metrics.ambient () with
  | None -> ()
  | Some reg -> Metrics.observe reg (prefix ^ name) seconds

let wrap name f =
  match Metrics.ambient () with
  | None -> f ()
  | Some reg ->
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () -> Metrics.observe reg (prefix ^ name) (Unix.gettimeofday () -. t0))
        f
