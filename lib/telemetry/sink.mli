(** JSONL sinks: one JSON document per line.

    A sink is where the telemetry layer appends encoded records — the
    {!Events} stream, primarily. Two backings:

    - {!file}: an append-only file on disk (the [--events FILE] format);
    - {!buffer}: an in-memory buffer, used by tests and by parallel trial
      batches, where each trial writes into its own buffer and the batch
      driver concatenates them in trial order afterwards (writing straight
      to a shared file from pool domains would interleave lines
      nondeterministically).

    Writes are mutex-guarded, so sharing one sink between domains is safe
    (ordering is then scheduler-dependent; prefer per-trial buffers when
    determinism matters). *)

type t

val file : string -> t
(** Opens (truncates) [path] for writing. Raises [Sys_error] like
    [open_out]. *)

val buffer : unit -> t

val write : t -> Json.t -> unit
(** Appends one encoded line. No-op on a closed sink. *)

val write_line : t -> string -> unit
(** Appends a pre-encoded line (must not contain newlines). Used to
    replay buffered lines into a file sink in deterministic order. *)

val lines : t -> int
(** Lines written so far. *)

val contents : t -> string
(** Everything written so far. For a buffer sink this is the accumulated
    JSONL text; for a file sink, raises [Invalid_argument]. *)

val close : t -> unit
(** Flushes and closes a file sink; idempotent. Buffer sinks keep their
    contents readable after close. *)
