(** JSONL sinks: one JSON document per line.

    A sink is where the telemetry layer appends encoded records — the
    {!Events} stream, primarily. Two backings:

    - {!file}: an append-only file on disk (the [--events FILE] format);
    - {!buffer}: an in-memory buffer, used by tests and by parallel trial
      batches, where each trial writes into its own buffer and the batch
      driver concatenates them in trial order afterwards (writing straight
      to a shared file from pool domains would interleave lines
      nondeterministically).

    Writes are mutex-guarded, so sharing one sink between domains is safe
    (ordering is then scheduler-dependent; prefer per-trial buffers when
    determinism matters).

    {2 Durability}

    File sinks go through a buffered [out_channel], so a killed process
    loses whatever the channel had not flushed — possibly ending the file
    mid-line. Downstream readers tolerate exactly that shape ({!Tail},
    [Timeline.load] and the fleet journal replay all drop an undecodable
    torn {e final} line), and three layers keep the torn window small:

    - {!close} always flushes before closing;
    - every open file sink is registered for {!flush_all}, which an
      [at_exit] hook (installed with the first file sink) runs on normal
      termination — including [exit] after an uncaught exception;
    - {!install_crash_flush} optionally extends that to SIGINT/SIGTERM.

    Long-lived appenders whose every line must survive a crash (the fleet
    journal) pass [~autoflush:true] and take the per-line [flush] cost. *)

type t

val file : ?append:bool -> ?autoflush:bool -> string -> t
(** Opens [path] for writing — truncating by default, appending with
    [~append:true] (the fleet journal reopens in append mode on
    [--resume]). With [~autoflush:true] every line is flushed to the OS as
    it is written, so a crash can tear at most the line being written.
    Raises [Sys_error] like [open_out]. *)

val buffer : unit -> t

val write : t -> Json.t -> unit
(** Appends one encoded line. No-op on a closed sink. *)

val write_line : t -> string -> unit
(** Appends a pre-encoded line (must not contain newlines). Used to
    replay buffered lines into a file sink in deterministic order. *)

val lines : t -> int
(** Lines written so far. *)

val contents : t -> string
(** Everything written so far. For a buffer sink this is the accumulated
    JSONL text; for a file sink, raises [Invalid_argument]. *)

val flush : t -> unit
(** Flushes a file sink's channel buffer to the OS. No-op on buffer
    sinks and closed sinks. *)

val flush_all : unit -> unit
(** {!flush} every open file sink in the process (best-effort: I/O errors
    on one sink do not prevent flushing the others). Runs automatically
    [at_exit]; drivers call it at drain/checkpoint boundaries. *)

val install_crash_flush : unit -> unit
(** Best-effort SIGINT/SIGTERM hardening: installs handlers that
    {!flush_all} and then re-deliver the signal with its default
    disposition, so an interrupted run leaves at most a torn final line
    per file. Only installs over a [Signal_default] disposition — a
    process that already owns its signals (e.g. [bin/fleet]'s drain
    handler, which flushes as part of graceful drain) is left alone. *)

val close : t -> unit
(** Flushes and closes a file sink; idempotent. Buffer sinks keep their
    contents readable after close. *)
