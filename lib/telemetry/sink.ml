type backing = File of out_channel | Memory of Buffer.t

type t = {
  backing : backing;
  mutex : Mutex.t;
  mutable written : int;
  mutable closed : bool;
}

let file path =
  { backing = File (open_out path); mutex = Mutex.create (); written = 0; closed = false }

let buffer () =
  { backing = Memory (Buffer.create 4096); mutex = Mutex.create (); written = 0; closed = false }

let write_line t line =
  Mutex.lock t.mutex;
  if not t.closed then begin
    (match t.backing with
    | File oc ->
        output_string oc line;
        output_char oc '\n'
    | Memory buf ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n');
    t.written <- t.written + 1
  end;
  Mutex.unlock t.mutex

let write t json = write_line t (Json.to_string json)

let lines t = t.written

let contents t =
  match t.backing with
  | Memory buf -> Buffer.contents buf
  | File _ -> invalid_arg "Telemetry.Sink.contents: file sink"

let close t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    match t.backing with File oc -> close_out oc | Memory _ -> ()
  end;
  Mutex.unlock t.mutex
