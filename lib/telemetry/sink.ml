type backing = File of { oc : out_channel; autoflush : bool } | Memory of Buffer.t

type t = {
  backing : backing;
  mutex : Mutex.t;
  mutable written : int;
  mutable closed : bool;
}

(* Registry of live file sinks, for the best-effort crash flush: a killed
   run should lose at most the channel buffer's torn final line, not
   whole batches of buffered lines. Guarded by its own mutex — sinks are
   registered/unregistered at open/close granularity only. *)
let live : t list ref = ref []
let live_mutex = Mutex.create ()
let exit_flush_installed = ref false

let flush t =
  Mutex.lock t.mutex;
  if not t.closed then (match t.backing with File { oc; _ } -> flush oc | Memory _ -> ());
  Mutex.unlock t.mutex

let flush_all () =
  Mutex.lock live_mutex;
  let sinks = !live in
  Mutex.unlock live_mutex;
  List.iter (fun t -> try flush t with Sys_error _ -> ()) sinks

let register t =
  Mutex.lock live_mutex;
  live := t :: !live;
  if not !exit_flush_installed then begin
    exit_flush_installed := true;
    at_exit flush_all
  end;
  Mutex.unlock live_mutex

let unregister t =
  Mutex.lock live_mutex;
  live := List.filter (fun s -> s != t) !live;
  Mutex.unlock live_mutex

let install_crash_flush () =
  List.iter
    (fun sg ->
      let handler =
        Sys.Signal_handle
          (fun _ ->
            flush_all ();
            (* restore the default disposition and re-deliver, so the
               process still dies with the conventional signal status *)
            Sys.set_signal sg Sys.Signal_default;
            Unix.kill (Unix.getpid ()) sg)
      in
      match Sys.signal sg handler with
      | Sys.Signal_default -> ()
      | previous ->
          (* some other part of the program owns this signal (e.g. the
             fleet orchestrator's drain handler) — back off *)
          Sys.set_signal sg previous
      | exception (Invalid_argument _ | Sys_error _) -> ())
    [ Sys.sigint; Sys.sigterm ]

let file ?(append = false) ?(autoflush = false) path =
  let oc =
    if append then open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
    else open_out path
  in
  let t =
    {
      backing = File { oc; autoflush };
      mutex = Mutex.create ();
      written = 0;
      closed = false;
    }
  in
  register t;
  t

let buffer () =
  {
    backing = Memory (Buffer.create 4096);
    mutex = Mutex.create ();
    written = 0;
    closed = false;
  }

let write_line t line =
  Mutex.lock t.mutex;
  if not t.closed then begin
    (match t.backing with
    | File { oc; autoflush } ->
        output_string oc line;
        output_char oc '\n';
        if autoflush then Stdlib.flush oc
    | Memory buf ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n');
    t.written <- t.written + 1
  end;
  Mutex.unlock t.mutex

let write t json = write_line t (Json.to_string json)

let lines t = t.written

let contents t =
  match t.backing with
  | Memory buf -> Buffer.contents buf
  | File _ -> invalid_arg "Telemetry.Sink.contents: file sink"

let close t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    match t.backing with
    | File { oc; _ } ->
        (try Stdlib.flush oc with Sys_error _ -> ());
        close_out_noerr oc
    | Memory _ -> ()
  end;
  Mutex.unlock t.mutex;
  match t.backing with File _ -> unregister t | Memory _ -> ()
