(** Run manifests: what was run, with what, for how long.

    An events or metrics file answers "what happened"; the manifest
    answers "what produced it" — enough to re-run the batch bit-for-bit
    (protocol, parameters, seed, trials, engine) and to place it (jobs,
    wall clock, git revision, argv). One manifest is written alongside
    every batch: [ssr_sim --events FILE] writes [FILE.manifest.json],
    [experiments_main --out-dir DIR] writes [DIR/<experiment>.manifest.json]. *)

type t = {
  run : string;  (** what ran: ["ssr_sim"], an experiment name, … *)
  protocol : string option;
  engine : string option;
  n : int option;
  seed : int;
  trials : int;
  jobs : int;
  params : (string * Json.t) list;
      (** free-form extras (scenario, mode, horizon scale, …) *)
  wall_clock_s : float;
  git : string option;  (** [git describe] of the working tree, if available *)
  argv : string list;
}

val git_describe : unit -> string option
(** [git describe --always --dirty] of the current directory, or [None]
    when git or the repository is unavailable. Never raises. *)

val make :
  run:string ->
  ?protocol:string ->
  ?engine:string ->
  ?n:int ->
  seed:int ->
  ?trials:int ->
  ?jobs:int ->
  ?params:(string * Json.t) list ->
  wall_clock_s:float ->
  unit ->
  t
(** Fills [git] via {!git_describe} and [argv] from [Sys.argv]. [trials]
    and [jobs] default to 1. *)

val to_json : t -> Json.t
(** Versioned ([{"v":1,...}]); also records the events-schema version the
    producing binary speaks ([events_schema]). *)

val write : path:string -> t -> unit
