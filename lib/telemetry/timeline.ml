type burst = {
  faults : int;
  agents : int;
  first_at : float;
  last_at : float;
  broke : bool;
  recovered_at : float option;
}

type summary = {
  run : Events.run;
  events : int;
  steps : int;
  first_correct_at : float option;
  last_correct_at : float option;
  violations : int;
  silent_at : float option;
  end_time : float;
  end_interactions : int;
  correct_interactions : int;
  bursts : burst list;
}

type acc = {
  a_run : Events.run;
  mutable a_events : int;
  mutable a_steps : int;
  mutable a_first_correct : float option;
  mutable a_last_correct : float option;
  mutable a_violations : int;
  mutable a_silent : float option;
  mutable a_end_time : float;
  mutable a_end_interactions : int;
  mutable a_correct_since : int option;  (* interaction count at last Correct_entered *)
  mutable a_correct_acc : int;  (* interactions spent correct in closed intervals *)
  mutable a_bursts : burst list;  (* reversed *)
  mutable a_open : burst option;  (* burst awaiting its Correct_entered *)
}

let close_burst acc recovered_at =
  match acc.a_open with
  | None -> ()
  | Some b ->
      acc.a_bursts <- { b with recovered_at } :: acc.a_bursts;
      acc.a_open <- None

let feed acc (event : Engine.Instrument.event) =
  acc.a_events <- acc.a_events + 1;
  acc.a_end_time <- Float.max acc.a_end_time (Engine.Instrument.time event);
  acc.a_end_interactions <- max acc.a_end_interactions (Engine.Instrument.interactions event);
  match event with
  | Engine.Instrument.Step _ -> acc.a_steps <- acc.a_steps + 1
  | Engine.Instrument.Correct_entered { time; interactions; _ } ->
      if acc.a_first_correct = None then acc.a_first_correct <- Some time;
      acc.a_last_correct <- Some time;
      if acc.a_correct_since = None then acc.a_correct_since <- Some interactions;
      close_burst acc (Some time)
  | Engine.Instrument.Correct_lost { interactions; _ } ->
      acc.a_violations <- acc.a_violations + 1;
      (match acc.a_correct_since with
      | Some since ->
          acc.a_correct_acc <- acc.a_correct_acc + (interactions - since);
          acc.a_correct_since <- None
      | None -> ());
      (match acc.a_open with Some b -> acc.a_open <- Some { b with broke = true } | None -> ())
  | Engine.Instrument.Silence { time; _ } -> acc.a_silent <- Some time
  | Engine.Instrument.Fault { agents; time; _ } -> (
      match acc.a_open with
      | Some b ->
          acc.a_open <-
            Some { b with faults = b.faults + 1; agents = b.agents + agents; last_at = time }
      | None ->
          acc.a_open <-
            Some
              {
                faults = 1;
                agents;
                first_at = time;
                last_at = time;
                broke = false;
                recovered_at = None;
              })

(* Non-destructive: an open burst already carries [recovered_at = None],
   so appending it unchanged is exactly [close_burst acc None] without
   losing the ability to keep feeding (live snapshots). *)
let summary_of_acc acc =
  {
    run = acc.a_run;
    events = acc.a_events;
    steps = acc.a_steps;
    first_correct_at = acc.a_first_correct;
    last_correct_at = acc.a_last_correct;
    violations = acc.a_violations;
    silent_at = acc.a_silent;
    end_time = acc.a_end_time;
    end_interactions = acc.a_end_interactions;
    correct_interactions =
      (acc.a_correct_acc
      + match acc.a_correct_since with
        | Some since -> acc.a_end_interactions - since
        | None -> 0);
    bursts =
      List.rev (match acc.a_open with Some b -> b :: acc.a_bursts | None -> acc.a_bursts);
  }

type state = {
  table : (string, acc) Hashtbl.t;
  mutable order : string list;  (* run ids, reversed first-appearance order *)
}

let state () = { table = Hashtbl.create 16; order = [] }

let push st ((run : Events.run), event) =
  let acc =
    match Hashtbl.find_opt st.table run.Events.id with
    | Some acc -> acc
    | None ->
        let acc =
          {
            a_run = run;
            a_events = 0;
            a_steps = 0;
            a_first_correct = None;
            a_last_correct = None;
            a_violations = 0;
            a_silent = None;
            a_end_time = 0.0;
            a_end_interactions = 0;
            a_correct_since = None;
            a_correct_acc = 0;
            a_bursts = [];
            a_open = None;
          }
        in
        Hashtbl.add st.table run.Events.id acc;
        st.order <- run.Events.id :: st.order;
        acc
  in
  feed acc event

let snapshot st =
  List.rev_map (fun id -> summary_of_acc (Hashtbl.find st.table id)) st.order

let fold events =
  let st = state () in
  List.iter (push st) events;
  snapshot st

let availability s =
  if s.end_interactions = 0 then if s.last_correct_at <> None then 1.0 else 0.0
  else float_of_int s.correct_interactions /. float_of_int s.end_interactions

(* Reads the channel to EOF up front so the final line's termination is
   known: a trailing line without '\n' is a live or crashed writer caught
   mid-append, so if it fails to decode it is dropped rather than failing
   the load. Complete undecodable lines still fail with their number. *)
let load ic =
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec read_all () =
    let k = input ic chunk 0 (Bytes.length chunk) in
    if k > 0 then begin
      Buffer.add_subbytes buf chunk 0 k;
      read_all ()
    end
  in
  read_all ();
  let data = Buffer.contents buf in
  let lines = String.split_on_char '\n' data in
  (* After split, every element but the last was '\n'-terminated; the
     last is "" for a terminated file, or the unterminated tail. *)
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | [ last ] ->
        if String.trim last = "" then Ok (List.rev acc)
        else (
          match Events.of_line last with
          | Ok decoded -> Ok (List.rev (decoded :: acc))
          | Error _ -> Ok (List.rev acc) (* truncated final line: tolerate *))
    | line :: rest when String.trim line = "" -> loop (lineno + 1) acc rest
    | line :: rest -> (
        match Events.of_line line with
        | Ok decoded -> loop (lineno + 1) (decoded :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  loop 1 [] lines

let recovery_time b =
  match b.recovered_at with Some t -> Some (t -. b.last_at) | None -> None

type sla = {
  sla_budget : float;
  broke : int;
  sla_misses : int;
  sla_censored : int;
  sla_met : bool;
}

let check_sla ~budget s =
  if not (budget > 0.0) then invalid_arg "Timeline.check_sla: budget must be > 0";
  let broke, misses, censored =
    List.fold_left
      (fun (broke, misses, censored) (b : burst) ->
        if not b.broke then (broke, misses, censored)
        else
          match recovery_time b with
          | Some dt -> (broke + 1, (if dt > budget then misses + 1 else misses), censored)
          | None -> (broke + 1, misses, censored + 1))
      (0, 0, 0) s.bursts
  in
  {
    sla_budget = budget;
    broke;
    sla_misses = misses;
    sla_censored = censored;
    sla_met = misses = 0 && censored = 0;
  }

let pp_opt_time fmt = function
  | Some t -> Format.fprintf fmt "t=%.2f" t
  | None -> Format.pp_print_string fmt "never"

let pp_summary ?sla_budget fmt s =
  let r = s.run in
  Format.fprintf fmt "run %s (%s engine, protocol %s, n=%d, seed=%d%s)@\n" r.Events.id
    r.Events.engine r.Events.protocol r.Events.n r.Events.seed
    (match r.Events.trial with Some t -> Printf.sprintf ", trial %d" t | None -> "");
  Format.fprintf fmt "  events            : %d (%d steps)@\n" s.events s.steps;
  Format.fprintf fmt "  first correct     : %a@\n" pp_opt_time s.first_correct_at;
  if s.last_correct_at <> s.first_correct_at then
    Format.fprintf fmt "  final convergence : %a@\n" pp_opt_time s.last_correct_at;
  Format.fprintf fmt "  correctness losses: %d@\n" s.violations;
  (match s.silent_at with
  | Some t -> Format.fprintf fmt "  silent            : t=%.2f@\n" t
  | None -> ());
  Format.fprintf fmt "  end of stream     : t=%.2f (interaction %d)@\n" s.end_time
    s.end_interactions;
  if s.violations > 0 || s.bursts <> [] then
    Format.fprintf fmt "  availability      : %.3f (fraction of interactions spent correct)@\n"
      (availability s);
  if s.bursts <> [] then begin
    Format.fprintf fmt "  fault bursts      : %d@\n" (List.length s.bursts);
    List.iteri
      (fun i b ->
        Format.fprintf fmt "    burst %d: %d agent%s in %d fault%s @@ t=%.2f" (i + 1) b.agents
          (if b.agents = 1 then "" else "s")
          b.faults
          (if b.faults = 1 then "" else "s")
          b.last_at;
        (if not b.broke then Format.fprintf fmt " — correctness held"
         else
           match recovery_time b with
           | Some dt ->
               Format.fprintf fmt " — re-correct at t=%.2f (recovery %.2f%s)"
                 (Option.get b.recovered_at) dt
                 (match sla_budget with
                 | Some budget when dt > budget -> ", OVER SLA"
                 | Some _ -> ", within SLA"
                 | None -> "")
           | None -> Format.fprintf fmt " — NOT recovered by end of stream");
        Format.pp_print_newline fmt ())
      s.bursts
  end;
  match sla_budget with
  | None -> ()
  | Some budget ->
      let v = check_sla ~budget s in
      if v.broke = 0 then
        Format.fprintf fmt "  SLA (budget %.2f) : MET (no burst broke correctness)@\n" budget
      else if v.sla_met then
        Format.fprintf fmt "  SLA (budget %.2f) : MET (%d recover%s within budget)@\n" budget
          v.broke
          (if v.broke = 1 then "y" else "ies")
      else
        Format.fprintf fmt "  SLA (budget %.2f) : MISSED (%d over budget, %d never recovered)@\n"
          budget v.sla_misses v.sla_censored
