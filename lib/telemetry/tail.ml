type t = {
  path : string;
  chunk : Bytes.t;
  partial : Buffer.t;  (* bytes of the current unterminated final line *)
  mutable fd : Unix.file_descr option;
  mutable dropped : int;
}

let create ~path =
  { path; chunk = Bytes.create 65536; partial = Buffer.create 256; fd = None; dropped = 0 }

let dropped t = t.dropped

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      Unix.close fd

let ensure_open t =
  match t.fd with
  | Some fd -> Some fd
  | None -> (
      match Unix.openfile t.path [ Unix.O_RDONLY ] 0 with
      | fd ->
          t.fd <- Some fd;
          Some fd
      | exception Unix.Unix_error (_, _, _) -> None)

(* Consume complete lines out of [t.partial], leaving the unterminated
   remainder in place. *)
let drain_lines t =
  let data = Buffer.contents t.partial in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last_nl ->
      Buffer.clear t.partial;
      Buffer.add_string t.partial
        (String.sub data (last_nl + 1) (String.length data - last_nl - 1));
      let complete = String.sub data 0 last_nl in
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else
            match Events.of_line line with
            | Ok decoded -> Some decoded
            | Error _ ->
                t.dropped <- t.dropped + 1;
                None)
        (String.split_on_char '\n' complete)

let poll t =
  match ensure_open t with
  | None -> []
  | Some fd ->
      let rec read_all () =
        match Unix.read fd t.chunk 0 (Bytes.length t.chunk) with
        | 0 -> ()
        | k ->
            Buffer.add_subbytes t.partial t.chunk 0 k;
            read_all ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all ()
      in
      read_all ();
      drain_lines t
