(** Protocol parameter presets.

    The paper fixes parameters only up to Θ(·): [R_max = 60·ln n],
    [D_max = Θ(n)] (Optimal-Silent-SSR) or [Θ(log n)] (Sublinear-Time-SSR),
    [E_max = Θ(n)], [T_H = Θ(τ_{H+1})], [S_max = Θ(n²)]. Constants matter
    for finite-size experiments, so two presets are provided:

    - [Paper]: the paper's stated constants where given ([R_max = 60 ln n]),
      generous choices elsewhere. Safe but slow at small [n].
    - [Tuned]: smaller constants with the same asymptotics, calibrated so
      that measured curves show the asymptotic shape at laptop-scale [n].
      This is the default everywhere.

    Counters ([delaytimer], [errorcount], edge timers) tick once per
    interaction {e of the owning agent}; an agent takes part in about [2·t]
    interactions during [t] parallel time, which is why the own-interaction
    budgets below carry a factor ≈2 relative to parallel-time targets. *)

type preset = Paper | Tuned

type optimal_silent = {
  r_max : int;  (** initial resetcount of a triggered agent, Θ(log n) *)
  d_max : int;  (** dormant delay, Θ(n): must cover slow leader election *)
  e_max : int;  (** Unsettled starvation budget, Θ(n): must cover ranking *)
}

val optimal_silent : ?preset:preset -> int -> optimal_silent
(** [optimal_silent n] — parameters for population size [n]. *)

type sublinear = {
  r_max : int;  (** as above *)
  d_max : int;
      (** dormant delay, Θ(log n), at least [name_bits] so a fresh random
          name completes before awakening *)
  t_h : int;  (** history-tree edge timer, Θ(τ_{H+1}) own-interactions *)
  s_max : int;  (** sync values drawn from [1..s_max], [n²] *)
  name_bits : int;  (** 3·⌈log₂ n⌉ (Section 5.1) *)
  h : int;  (** history-tree depth H *)
}

val sublinear : ?preset:preset -> h:int -> int -> sublinear
(** [sublinear ~h n] — parameters for population size [n] and depth [h];
    [h = 0] is the direct-collision (linear-time) variant ([t_h] = 0). *)

val h_log : int -> int
(** [h_log n = ⌈log₂ n⌉], the depth that makes Sublinear-Time-SSR run in
    Θ(log n) time (Table 1 row 3). *)

val ceil_log2 : int -> int
(** [⌈log₂ n⌉] for [n >= 1]. *)

val ceil_ln : int -> int
(** [⌈ln n⌉] for [n >= 1]. *)
