(** Propagate-Reset (Protocol 2), as a reusable component.

    When a protocol detects evidence that the initial configuration was
    illegal (a rank collision, a starved agent, an oversized roster, …), a
    {e triggered} agent enters the [Resetting] role with
    [resetcount = R_max]. The positive resetcount spreads like an epidemic,
    decreasing by one per hop ([max(a−1, b−1, 0)] on every Resetting pair),
    clearing the whole population into the Resetting role. Agents whose
    resetcount reaches 0 become {e dormant} and count a [delaytimer] down
    from [D_max] — a quiet period the outer protocol can exploit (slow
    leader election in Optimal-Silent-SSR, random name generation in
    Sublinear-Time-SSR). A dormant agent {e awakens} — executes the outer
    protocol's [Reset] and resumes computing — when its timer expires or
    when it meets an agent that already computes again, so awakening also
    spreads by epidemic. Crucially, agents retain no memory that a reset
    happened (an adversary could forge such memory), yet the delay ensures
    no agent awakens twice during one reset wave, WHP.

    The component is polymorphic in the {e payload} carried through the
    Resetting role ([leader ∈ {L,F}] for Optimal-Silent-SSR, the partial
    [name] for Sublinear-Time-SSR) and in the computing state. The whole
    reset completes in O(log n) + O(D_max) parallel time. *)

type 'p resetting = {
  resetcount : int;  (** 0 = dormant, positive = propagating, [R_max] = just triggered *)
  delaytimer : int;  (** meaningful while dormant *)
  payload : 'p;
}

type ('c, 'p) role = Computing of 'c | Resetting of 'p resetting

type ('c, 'p) spec = {
  r_max : int;
  d_max : int;
  recruit_payload : Prng.t -> 'p;
      (** payload given to a computing agent pulled into the reset *)
  propagating_tick : Prng.t -> 'p -> 'p;
      (** applied each interaction to an agent ending with positive
          resetcount (Sublinear-Time-SSR clears the name here) *)
  dormant_tick : Prng.t -> 'p -> 'p;
      (** applied each interaction to an agent ending dormant
          (Sublinear-Time-SSR appends a random name bit here) *)
  resetting_pair : Prng.t -> 'p -> 'p -> 'p * 'p;
      (** pairwise payload interaction when both agents are Resetting
          (Optimal-Silent-SSR runs [L,L → L,F] here) *)
  awaken : Prng.t -> 'p -> 'c;  (** the outer protocol's [Reset] *)
}

val trigger : spec:('c, 'p) spec -> 'p -> ('c, 'p) role
(** A freshly triggered Resetting state with [resetcount = R_max]. *)

val is_resetting : ('c, 'p) role -> bool
val is_propagating : ('c, 'p) role -> bool
(** [is_propagating] holds for Resetting states with positive resetcount. *)

val step :
  spec:('c, 'p) spec -> Prng.t -> ('c, 'p) role -> ('c, 'p) role -> ('c, 'p) role * ('c, 'p) role
(** One interaction under Propagate-Reset. Callers must ensure at least one
    side is [Resetting]; a [Computing]/[Computing] pair is returned
    unchanged (the outer protocol owns that case). *)

val equal_role : ('c -> 'c -> bool) -> ('p -> 'p -> bool) -> ('c, 'p) role -> ('c, 'p) role -> bool

val pp_role :
  (Format.formatter -> 'c -> unit) ->
  (Format.formatter -> 'p -> unit) ->
  Format.formatter ->
  ('c, 'p) role ->
  unit
