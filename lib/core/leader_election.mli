(** From ranking to leader election.

    Any protocol solving self-stabilizing ranking also solves
    self-stabilizing leader election by declaring the agent ranked 1 the
    leader (Section 2); protocols built by this repository already observe
    [is_leader] that way. This module adds the paper's footnote 7: the
    leader {e bit} may hop between agents whenever a transition swaps the
    rank-1 state to the other agent; [immobilize] rewrites such transitions
    [(x, y) → (w, z)] with [x] a leader and [z] a leader into
    [(x, y) → (z, w)], so that once a unique leader exists, the same agent
    stays the leader forever — an equivalent protocol on the complete
    interaction graph. *)

val immobilize : 'a Engine.Protocol.t -> 'a Engine.Protocol.t
(** [immobilize p] swaps transition outputs whenever the leader bit would
    otherwise migrate from one agent of the pair to the other. *)

val leader_indices : 'a Engine.Protocol.t -> 'a array -> int list
(** Agents currently observing as leader. *)
