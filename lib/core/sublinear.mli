(** Sublinear-Time-SSR (Protocols 5–8, Section 5).

    The paper's fast self-stabilizing ranking protocol. Each agent holds a
    random name of [3·⌈log₂ n⌉] bits, collects every name it hears of in a
    [roster] propagated by epidemic, and — once the roster holds exactly
    [n] names — takes as rank its own name's lexicographic position in it.
    Two error conditions trigger a {!Reset} (with a Θ(log n) dormant delay
    during which fresh random names are drawn bit by bit):

    - a merged roster exceeding [n] names proves a {e ghost name};
    - Detect-Name-Collision (Protocol 7) establishes a {e name collision}
      through the {!History_tree} mechanism: agents exchange depth-[H]
      trees of recent interactions tagged with shared random sync values,
      and an agent confronted with a fresh history path ending at its own
      name must exhibit a matching sync along the reversed path
      (Check-Path-Consistency, Protocol 8) — an impostor fails WHP. Two
      agents directly meeting with equal names is the [H = 0] special case
      of the same check.

    Parameterized by the tree depth [H]: expected stabilization time
    Θ(H·n^{1/(H+1)}) for constant [H], and Θ(log n) — asymptotically
    optimal — for [H = Θ(log n)], at the price of a state space that is
    exponential (rosters) to quasi-exponential (trees): Table 1, rows 3–4.
    Non-silent: stabilized agents keep exchanging sync values forever, as
    Observation 2.2 forces for any sublinear-time protocol. *)

type collecting = {
  name : Name.t;
  rank : int;  (** write-only output; meaningful once the roster is full *)
  roster : Roster.t;
  tree : History_tree.t;
}

type state = (collecting, Name.t) Reset.role
(** The Resetting payload is the (partial) name being regenerated. *)

val protocol : ?params:Params.sublinear -> n:int -> h:int -> unit -> state Engine.Protocol.t
(** [protocol ~n ~h ()] builds the protocol for exactly [n] agents with
    history depth [h]; [params] defaults to [Params.sublinear ~n ~h]. *)

val collecting : collecting -> state
val resetting : name:Name.t -> resetcount:int -> delaytimer:int -> state

val fresh : Prng.t -> params:Params.sublinear -> state
(** A post-reset agent: a fresh complete random name, singleton roster,
    empty tree, rank 1. *)

val detect_name_collision :
  params:Params.sublinear -> collecting -> collecting -> bool
(** The read-only part of Protocol 7 (lines 1–4 plus the direct name
    check): [true] iff the pair's histories reveal a name collision. *)

val analysis_params : n:int -> Params.sublinear
(** Reduced parameters for exhaustive static analysis: [H = 0] (collisions
    detected by direct meetings only — no history trees), names of
    [max 1 ⌈log₂ n⌉] bits, [R_max = 2], and a dormant delay just long
    enough to regenerate a complete name. The transition logic exercised
    is exactly Protocols 5–6; only the WHP constants are given up. *)

val normalize : params:Params.sublinear -> state -> state
(** Canonical state representative: rebuilds the roster from its sorted
    elements (semantically equal rosters then become structurally equal,
    which polymorphic hashing requires) and applies the frozen-delaytimer
    quotient of propagating Resetting agents (see
    {!Optimal_silent.normalize}). *)

val invariants : params:Params.sublinear -> n:int -> state Engine.Enumerable.invariant list
(** Named single-state invariants preserved by every transition: name and
    payload lengths at most [name_bits], roster cardinal at most [n] and
    containing the owner's name, rank in [1..n], reset counters in range,
    and history-tree wellformedness (depth ≤ [H], sync in [1..S_max],
    timers in [0..T_H], sibling names distinct). Parameter-generic — also
    used by the trace-level QCheck properties at [H > 0]. *)

val enumerable : ?params:Params.sublinear -> n:int -> unit -> state Engine.Enumerable.t
(** Static-analysis descriptor; [params] defaults to
    [analysis_params ~n] and must have [h = 0] (trees make the space
    quasi-exponential — Table 1 rows 3–4 — so only the tree-free instance
    is finitely enumerable). Declared states: all Computing states with
    names of length [0..name_bits] (partial names arise from premature
    awakenings), rosters of at most [n] names containing the owner's, and
    every Resetting shape; expectation {e stabilizing} (the protocol is
    non-silent, Observation 2.2). *)

val analysis_state_count : params:Params.sublinear -> n:int -> int
(** Closed-form size of {!enumerable}'s declared space (binomial sums),
    cross-checked by the analyzer against the enumeration. *)

val log2_states : params:Params.sublinear -> n:int -> float
(** Base-2 logarithm of the state-space size (the paper's
    exp(O(n^H)·log n) — far too large to hold in an [int]); see
    {!State_space} for the derivation. *)

val equal : state -> state -> bool
val pp : Format.formatter -> state -> unit
