(** The classic {e initialized} (non-self-stabilizing) leader election.

    One bit per agent and the single transition [ℓ,ℓ → ℓ,f]: from the
    intended all-leaders initial configuration the leaders pairwise
    annihilate down to one in Θ(n) time. The paper's introduction uses this
    protocol to motivate self-stabilization: started from the all-followers
    configuration it is stuck forever with zero leaders, because it can
    only destroy leaders, never create them. The experiments demonstrate
    both behaviours, and the all-leaders configuration also exhibits the
    Ω(log n) lower bound for any SSLE protocol (Section 1.1: a coupon
    collector argument over the n−1 leaders that must lose an
    interaction). *)

type state = Leader | Follower

val protocol : n:int -> state Engine.Protocol.t
(** Observations: [is_leader] is the bit; [rank] is [Some 1] for a leader
    and [None] otherwise (the protocol does not rank — the paper notes it
    has too few states for ranking to even be definable). *)

val all_leaders : n:int -> state array
val all_followers : n:int -> state array

val enumerable : n:int -> state Engine.Enumerable.t
(** Static-analysis descriptor. The admissible region is restricted to
    configurations with at least one leader: the protocol is initialized,
    and from the (inadmissible) all-followers configuration it provably
    never recovers — the analyzer demonstrates the restriction is needed,
    mirroring the paper's motivation for self-stabilization. *)
