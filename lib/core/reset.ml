type 'p resetting = { resetcount : int; delaytimer : int; payload : 'p }

type ('c, 'p) role = Computing of 'c | Resetting of 'p resetting

type ('c, 'p) spec = {
  r_max : int;
  d_max : int;
  recruit_payload : Prng.t -> 'p;
  propagating_tick : Prng.t -> 'p -> 'p;
  dormant_tick : Prng.t -> 'p -> 'p;
  resetting_pair : Prng.t -> 'p -> 'p -> 'p * 'p;
  awaken : Prng.t -> 'p -> 'c;
}

let trigger ~spec payload =
  Resetting { resetcount = spec.r_max; delaytimer = spec.d_max; payload }

let is_propagating = function Resetting r -> r.resetcount > 0 | Computing _ -> false

let is_resetting = function Resetting _ -> true | Computing _ -> false

(* One side of the interaction, processed through lines 1–12 of Protocol 2.
   [partner_propagating], [partner_was_computing] refer to the partner's
   state at the start of the interaction. *)
let step_side ~spec rng role ~partner_propagating ~partner_was_computing ~joint_count =
  (* Lines 1–3: recruitment of a computing agent by a propagating one. *)
  let role =
    match role with
    | Computing _ when partner_propagating ->
        Resetting { resetcount = 0; delaytimer = spec.d_max; payload = spec.recruit_payload rng }
    | Computing _ | Resetting _ -> role
  in
  match role with
  | Computing _ -> role
  | Resetting r -> begin
      (* Lines 4–5: when both ends are Resetting, both resetcounts move to
         max(a−1, b−1, 0), precomputed by the caller as [joint_count]. *)
      let old_count = r.resetcount in
      let r =
        match joint_count with
        | Some c -> { r with resetcount = c }
        | None -> r
      in
      if r.resetcount > 0 then
        Resetting { r with payload = spec.propagating_tick rng r.payload }
      else begin
        (* Lines 6–12: dormant bookkeeping and possible awakening. *)
        let delaytimer =
          if old_count > 0 then spec.d_max (* just became dormant *)
          else max (r.delaytimer - 1) 0
        in
        if delaytimer = 0 || partner_was_computing then Computing (spec.awaken rng r.payload)
        else Resetting { r with delaytimer; payload = spec.dormant_tick rng r.payload }
      end
    end

let step ~spec rng ra rb =
  match (ra, rb) with
  | Computing _, Computing _ -> (ra, rb)
  | _ -> begin
      let a_propagating = is_propagating ra and b_propagating = is_propagating rb in
      let a_was_computing = not (is_resetting ra) and b_was_computing = not (is_resetting rb) in
      (* Both ends Resetting after recruitment ⇔ each end is Resetting or
         has a propagating partner. *)
      let both_resetting =
        (is_resetting ra || b_propagating) && (is_resetting rb || a_propagating)
      in
      let joint_count =
        if not both_resetting then None
        else begin
          let count = function
            | Resetting r -> r.resetcount
            | Computing _ -> 0 (* just recruited: resetcount 0 *)
          in
          Some (max (max (count ra - 1) (count rb - 1)) 0)
        end
      in
      let ra' =
        step_side ~spec rng ra ~partner_propagating:b_propagating
          ~partner_was_computing:b_was_computing ~joint_count
      in
      let rb' =
        step_side ~spec rng rb ~partner_propagating:a_propagating
          ~partner_was_computing:a_was_computing ~joint_count
      in
      (* Pairwise payload interaction (e.g. L,L → L,F) when both ends are
         still Resetting after any awakening, matching Protocol 3's order. *)
      match (ra', rb') with
      | Resetting x, Resetting y ->
          let px, py = spec.resetting_pair rng x.payload y.payload in
          (Resetting { x with payload = px }, Resetting { y with payload = py })
      | _ -> (ra', rb')
    end

let equal_role eq_c eq_p x y =
  match (x, y) with
  | Computing a, Computing b -> eq_c a b
  | Resetting a, Resetting b ->
      a.resetcount = b.resetcount && a.delaytimer = b.delaytimer && eq_p a.payload b.payload
  | Computing _, Resetting _ | Resetting _, Computing _ -> false

let pp_role pp_c pp_p fmt = function
  | Computing c -> Format.fprintf fmt "Computing(%a)" pp_c c
  | Resetting r ->
      Format.fprintf fmt "Resetting(count=%d, delay=%d, %a)" r.resetcount r.delaytimer pp_p
        r.payload
