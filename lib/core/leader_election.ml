let immobilize (p : 'a Engine.Protocol.t) : 'a Engine.Protocol.t =
  let transition rng a b =
    let a', b' = p.Engine.Protocol.transition rng a b in
    let leader = p.Engine.Protocol.is_leader in
    let migrated_to_b = leader a && (not (leader b)) && leader b' && not (leader a') in
    let migrated_to_a = leader b && (not (leader a)) && leader a' && not (leader b') in
    if migrated_to_b || migrated_to_a then (b', a') else (a', b')
  in
  { p with Engine.Protocol.name = p.Engine.Protocol.name ^ "+immobilized"; transition }

let leader_indices (p : 'a Engine.Protocol.t) population =
  let acc = ref [] in
  Array.iteri (fun i s -> if p.Engine.Protocol.is_leader s then acc := i :: !acc) population;
  List.rev !acc
