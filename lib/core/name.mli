(** Agent names for Sublinear-Time-SSR (Section 5.1).

    A name is a bitstring of length at most [3·⌈log₂ n⌉]. Fresh names are
    drawn uniformly at random bit-by-bit during the dormant phase of a reset
    (Protocol 5, lines 14–15), so intermediate names are proper prefixes;
    the empty name [ε] is the cleared state while a reset propagates.

    Names are ordered lexicographically as bitstrings; completed names all
    have the same length, where lexicographic order coincides with the
    numeric order of the bit pattern. Agents' ranks are their names'
    lexicographic positions in the collected roster. *)

type t
(** Immutable bitstring of length 0..62. *)

val empty : t
(** The cleared name [ε]. *)

val length : t -> int

val is_empty : t -> bool

val append_bit : t -> bool -> t
(** [append_bit s b] extends [s] by one bit. Raises [Invalid_argument] past
    62 bits. *)

val is_complete : width:int -> t -> bool
(** [is_complete ~width s] is [length s >= width]. *)

val random : Prng.t -> width:int -> t
(** A uniform random complete name of [width] bits. *)

val of_int : bits:int -> len:int -> t
(** [of_int ~bits ~len] builds the name whose [len]-bit big-endian pattern
    is [bits]. Requires [0 <= bits < 2^len]. *)

val to_int : t -> int
(** The bit pattern as an integer (caller should know the length). *)

val compare : t -> t -> int
(** Lexicographic bitstring order; a proper prefix sorts first. *)

val equal : t -> t -> bool

val bit : t -> int -> bool
(** [bit s i] is the [i]-th bit, [0] = most significant/first. *)

val to_string : t -> string
(** Bits as ['0']/['1'] characters; [ε] for the empty name. *)

val pp : Format.formatter -> t -> unit
