type state = Leader | Follower

let protocol ~n : state Engine.Protocol.t =
  if n < 2 then invalid_arg "Baseline.protocol: n must be >= 2";
  let transition _rng a b =
    match (a, b) with
    | Leader, Leader -> (Leader, Follower)
    | Leader, Follower | Follower, Leader | Follower, Follower -> (a, b)
  in
  let rank = function Leader -> Some 1 | Follower -> None in
  {
    Engine.Protocol.name = "Initialized-LE";
    n;
    transition;
    deterministic = true;
    equal = ( = );
    pp =
      (fun fmt s ->
        Format.pp_print_string fmt (match s with Leader -> "L" | Follower -> "F"));
    rank;
    is_leader = (fun s -> s = Leader);
  }

let all_leaders ~n = Array.make n Leader

let all_followers ~n = Array.make n Follower

let enumerable ~n : state Engine.Enumerable.t =
  let protocol = protocol ~n in
  Engine.Enumerable.make ~protocol ~states:[ Leader; Follower ]
    ~invariants:
      [
        {
          Engine.Enumerable.iname = "leader-iff-rank1";
          holds = (fun s -> (s = Leader) = (protocol.Engine.Protocol.rank s = Some 1));
        };
      ]
      (* The protocol is initialized-only: it can destroy leaders but never
         create one, so self-stabilization is checked over its legal region
         (>= 1 leader). The all-followers configuration outside it is the
         paper's introductory counterexample. *)
    ~admissible:(fun config -> Array.exists (fun s -> s = Leader) config)
    ~correct:(Engine.Enumerable.unique_leader protocol)
    ~expectation:Engine.Enumerable.Silent_stabilizing ~declared_count:2
    ~note:"admissible region restricted to configurations with >= 1 leader"
    ~fields:
      [
        {
          Engine.Enumerable.fname = "role";
          frange = 2;
          fget = (function Leader -> 0 | Follower -> 1);
        };
      ]
    ()
