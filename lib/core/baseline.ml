type state = Leader | Follower

let protocol ~n : state Engine.Protocol.t =
  if n < 2 then invalid_arg "Baseline.protocol: n must be >= 2";
  let transition _rng a b =
    match (a, b) with
    | Leader, Leader -> (Leader, Follower)
    | Leader, Follower | Follower, Leader | Follower, Follower -> (a, b)
  in
  let rank = function Leader -> Some 1 | Follower -> None in
  {
    Engine.Protocol.name = "Initialized-LE";
    n;
    transition;
    deterministic = true;
    equal = ( = );
    pp =
      (fun fmt s ->
        Format.pp_print_string fmt (match s with Leader -> "L" | Follower -> "F"));
    rank;
    is_leader = (fun s -> s = Leader);
  }

let all_leaders ~n = Array.make n Leader

let all_followers ~n = Array.make n Follower
