type state = int

let state_of_rank0 ~n r =
  if r < 0 || r >= n then invalid_arg "Silent_n_state.state_of_rank0: rank out of range";
  r

let protocol ~n : state Engine.Protocol.t =
  if n < 2 then invalid_arg "Silent_n_state.protocol: n must be >= 2";
  let transition _rng a b = if a = b then (a, (b + 1) mod n) else (a, b) in
  let rank s = Some (s + 1) in
  {
    Engine.Protocol.name = "Silent-n-state-SSR";
    n;
    transition;
    deterministic = true;
    equal = Int.equal;
    pp = Format.pp_print_int;
    rank;
    is_leader = Engine.Protocol.leader_from_rank rank;
  }

let states ~n = n

let enumerable ~n : state Engine.Enumerable.t =
  let protocol = protocol ~n in
  Engine.Enumerable.make ~protocol
    ~states:(List.init n Fun.id)
    ~invariants:
      [ { Engine.Enumerable.iname = "rank0-in-0..n-1"; holds = (fun s -> s >= 0 && s < n) } ]
    ~expectation:Engine.Enumerable.Silent_stabilizing ~declared_count:(states ~n)
    ~fields:[ { Engine.Enumerable.fname = "rank0"; frange = n; fget = Fun.id } ]
    ()
