module Set = Stdlib.Set.Make (Name)

type t = Set.t

let empty = Set.empty

let singleton = Set.singleton

let of_list = Set.of_list

let mem = Set.mem

let add = Set.add

let union = Set.union

let cardinal = Set.cardinal

let rank_of name roster =
  if not (Set.mem name roster) then None
  else begin
    (* 1 + number of strictly smaller names. *)
    let smaller, _, _ = Set.split name roster in
    Some (Set.cardinal smaller + 1)
  end

let elements = Set.elements

let equal = Set.equal

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Name.pp)
    (elements t)
