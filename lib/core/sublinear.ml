type collecting = {
  name : Name.t;
  rank : int;
  roster : Roster.t;
  tree : History_tree.t;
}

type state = (collecting, Name.t) Reset.role

let collecting c = Reset.Computing c

let resetting ~name ~resetcount ~delaytimer =
  Reset.Resetting { Reset.resetcount; delaytimer; payload = name }

let equal_collecting x y =
  Name.equal x.name y.name && x.rank = y.rank
  && Roster.equal x.roster y.roster
  && x.tree = y.tree

let equal = Reset.equal_role equal_collecting Name.equal

let pp_collecting fmt c =
  Format.fprintf fmt "Collecting(name=%a, rank=%d, |roster|=%d, tree=%d nodes)" Name.pp c.name
    c.rank (Roster.cardinal c.roster)
    (History_tree.node_count c.tree)

let pp = Reset.pp_role pp_collecting Name.pp

let spec ~(params : Params.sublinear) : (collecting, Name.t) Reset.spec =
  {
    Reset.r_max = params.Params.r_max;
    d_max = params.Params.d_max;
    (* Names are cleared while the reset propagates (Protocol 5, l. 12-13)
       and regenerated bit by bit during dormancy (l. 14-15). *)
    recruit_payload = (fun _rng -> Name.empty);
    propagating_tick = (fun _rng _name -> Name.empty);
    dormant_tick =
      (fun rng name ->
        if Name.length name < params.Params.name_bits then Name.append_bit name (Prng.bool rng)
        else name);
    resetting_pair = (fun _rng na nb -> (na, nb));
    (* Protocol 6: resume collecting with a singleton roster. *)
    awaken =
      (fun _rng name ->
        { name; rank = 1; roster = Roster.singleton name; tree = History_tree.empty });
  }

let fresh rng ~params =
  let name = Name.random rng ~width:params.Params.name_bits in
  collecting { name; rank = 1; roster = Roster.singleton name; tree = History_tree.empty }

let detect_name_collision ~(params : Params.sublinear) ca cb =
  (* Two agents meeting with equal names is itself a collision (the H = 0
     rule); deeper histories catch collisions indirectly. *)
  Name.equal ca.name cb.name
  ||
  (params.Params.h > 0
  &&
  let confront i j =
    let paths = History_tree.fresh_paths_to ~name:j.name i.tree in
    List.exists
      (fun path -> not (History_tree.consistent ~tree:j.tree ~origin:i.name ~path))
      paths
  in
  confront ca cb || confront cb ca)

let protocol ?params ~n ~h () : state Engine.Protocol.t =
  if n < 2 then invalid_arg "Sublinear.protocol: n must be >= 2";
  let params = match params with Some p -> p | None -> Params.sublinear ~h n in
  if params.Params.h <> h then invalid_arg "Sublinear.protocol: params.h differs from h";
  let spec = spec ~params in
  let trigger () = Reset.trigger ~spec Name.empty in
  let update_trees rng ca cb =
    if h = 0 then (ca, cb)
    else begin
      (* Protocol 7, lines 5-14: one shared sync value, symmetric merge of
         the partner's pre-interaction tree, then age every edge. *)
      let sync = 1 + Prng.int rng params.Params.s_max in
      let timer = params.Params.t_h in
      let tree_a =
        History_tree.merge ~h ~own:ca.name ~partner:cb.name ~partner_tree:cb.tree ~sync ~timer
          ca.tree
      in
      let tree_b =
        History_tree.merge ~h ~own:cb.name ~partner:ca.name ~partner_tree:ca.tree ~sync ~timer
          cb.tree
      in
      ( { ca with tree = History_tree.decrement_timers tree_a },
        { cb with tree = History_tree.decrement_timers tree_b } )
    end
  in
  let transition rng a b =
    match (a, b) with
    | Reset.Resetting _, _ | _, Reset.Resetting _ -> Reset.step ~spec rng a b
    | Reset.Computing ca, Reset.Computing cb -> begin
        (* Own names always count as heard-of: this closes the adversarial
           hole of a roster planted without its owner's name (see
           DESIGN.md) and matches Reset's roster = {name} invariant. *)
        let union =
          Roster.add ca.name (Roster.add cb.name (Roster.union ca.roster cb.roster))
        in
        if detect_name_collision ~params ca cb || Roster.cardinal union > n then
          (trigger (), trigger ())
        else begin
          let rank_of c =
            if Roster.cardinal union = n then
              match Roster.rank_of c.name union with Some r -> r | None -> c.rank
            else c.rank
          in
          let ca = { ca with roster = union; rank = rank_of ca } in
          let cb = { cb with roster = union; rank = rank_of cb } in
          let ca, cb = update_trees rng ca cb in
          (Reset.Computing ca, Reset.Computing cb)
        end
      end
  in
  let rank = function
    | Reset.Computing c -> Some c.rank
    | Reset.Resetting _ -> None
  in
  {
    Engine.Protocol.name = Printf.sprintf "Sublinear-Time-SSR(H=%d)" h;
    n;
    transition;
    (* With H = 0 no sync values are ever drawn and no name bits are
       regenerated outside resets... names ARE regenerated with random
       bits during dormancy, so the protocol is randomized for every H. *)
    deterministic = false;
    equal;
    pp;
    rank;
    is_leader = Engine.Protocol.leader_from_rank rank;
  }

let log2_states ~(params : Params.sublinear) ~n =
  (* Dominant terms of log2 |S|: rosters contribute ≈ n·name_bits bits,
     trees ≈ (number of node slots ≈ n^H) · (bits per node). The paper
     states exp(O(n^H)·log n); this estimate reproduces that shape. *)
  let nf = float_of_int n in
  let nb = float_of_int params.Params.name_bits in
  let bits_per_node =
    nb
    +. (log (float_of_int params.Params.s_max) /. log 2.0)
    +. (log (float_of_int (params.Params.t_h + 1)) /. log 2.0)
  in
  let tree_slots = if params.Params.h = 0 then 0.0 else nf ** float_of_int params.Params.h in
  (nf *. nb) +. nb +. (log nf /. log 2.0) +. (tree_slots *. bits_per_node)
