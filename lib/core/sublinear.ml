type collecting = {
  name : Name.t;
  rank : int;
  roster : Roster.t;
  tree : History_tree.t;
}

type state = (collecting, Name.t) Reset.role

let collecting c = Reset.Computing c

let resetting ~name ~resetcount ~delaytimer =
  Reset.Resetting { Reset.resetcount; delaytimer; payload = name }

let equal_collecting x y =
  Name.equal x.name y.name && x.rank = y.rank
  && Roster.equal x.roster y.roster
  && x.tree = y.tree

let equal = Reset.equal_role equal_collecting Name.equal

let pp_collecting fmt c =
  Format.fprintf fmt "Collecting(name=%a, rank=%d, |roster|=%d, tree=%d nodes)" Name.pp c.name
    c.rank (Roster.cardinal c.roster)
    (History_tree.node_count c.tree)

let pp = Reset.pp_role pp_collecting Name.pp

let spec ~(params : Params.sublinear) : (collecting, Name.t) Reset.spec =
  {
    Reset.r_max = params.Params.r_max;
    d_max = params.Params.d_max;
    (* Names are cleared while the reset propagates (Protocol 5, l. 12-13)
       and regenerated bit by bit during dormancy (l. 14-15). *)
    recruit_payload = (fun _rng -> Name.empty);
    propagating_tick = (fun _rng _name -> Name.empty);
    dormant_tick =
      (fun rng name ->
        if Name.length name < params.Params.name_bits then Name.append_bit name (Prng.bool rng)
        else name);
    resetting_pair = (fun _rng na nb -> (na, nb));
    (* Protocol 6: resume collecting with a singleton roster. *)
    awaken =
      (fun _rng name ->
        { name; rank = 1; roster = Roster.singleton name; tree = History_tree.empty });
  }

let fresh rng ~params =
  let name = Name.random rng ~width:params.Params.name_bits in
  collecting { name; rank = 1; roster = Roster.singleton name; tree = History_tree.empty }

let detect_name_collision ~(params : Params.sublinear) ca cb =
  (* Two agents meeting with equal names is itself a collision (the H = 0
     rule); deeper histories catch collisions indirectly. *)
  Name.equal ca.name cb.name
  ||
  (params.Params.h > 0
  &&
  let confront i j =
    let paths = History_tree.fresh_paths_to ~name:j.name i.tree in
    List.exists
      (fun path -> not (History_tree.consistent ~tree:j.tree ~origin:i.name ~path))
      paths
  in
  confront ca cb || confront cb ca)

let protocol ?params ~n ~h () : state Engine.Protocol.t =
  if n < 2 then invalid_arg "Sublinear.protocol: n must be >= 2";
  let params = match params with Some p -> p | None -> Params.sublinear ~h n in
  if params.Params.h <> h then invalid_arg "Sublinear.protocol: params.h differs from h";
  let spec = spec ~params in
  let trigger () = Reset.trigger ~spec Name.empty in
  let update_trees rng ca cb =
    if h = 0 then (ca, cb)
    else begin
      (* Protocol 7, lines 5-14: one shared sync value, symmetric merge of
         the partner's pre-interaction tree, then age every edge. *)
      let sync = 1 + Prng.int rng params.Params.s_max in
      let timer = params.Params.t_h in
      let tree_a =
        History_tree.merge ~h ~own:ca.name ~partner:cb.name ~partner_tree:cb.tree ~sync ~timer
          ca.tree
      in
      let tree_b =
        History_tree.merge ~h ~own:cb.name ~partner:ca.name ~partner_tree:ca.tree ~sync ~timer
          cb.tree
      in
      ( { ca with tree = History_tree.decrement_timers tree_a },
        { cb with tree = History_tree.decrement_timers tree_b } )
    end
  in
  let transition rng a b =
    match (a, b) with
    | Reset.Resetting _, _ | _, Reset.Resetting _ -> Reset.step ~spec rng a b
    | Reset.Computing ca, Reset.Computing cb -> begin
        (* Own names always count as heard-of: this closes the adversarial
           hole of a roster planted without its owner's name (see
           DESIGN.md) and matches Reset's roster = {name} invariant. *)
        let union =
          Roster.add ca.name (Roster.add cb.name (Roster.union ca.roster cb.roster))
        in
        if detect_name_collision ~params ca cb || Roster.cardinal union > n then
          (trigger (), trigger ())
        else begin
          let rank_of c =
            if Roster.cardinal union = n then
              match Roster.rank_of c.name union with Some r -> r | None -> c.rank
            else c.rank
          in
          let ca = { ca with roster = union; rank = rank_of ca } in
          let cb = { cb with roster = union; rank = rank_of cb } in
          let ca, cb = update_trees rng ca cb in
          (Reset.Computing ca, Reset.Computing cb)
        end
      end
  in
  let rank = function
    | Reset.Computing c -> Some c.rank
    | Reset.Resetting _ -> None
  in
  {
    Engine.Protocol.name = Printf.sprintf "Sublinear-Time-SSR(H=%d)" h;
    n;
    transition;
    (* With H = 0 no sync values are ever drawn and no name bits are
       regenerated outside resets... names ARE regenerated with random
       bits during dormancy, so the protocol is randomized for every H. *)
    deterministic = false;
    equal;
    pp;
    rank;
    is_leader = Engine.Protocol.leader_from_rank rank;
  }

(* --- Static analysis ------------------------------------------------- *)

(* The real state space is exponential (rosters) to quasi-exponential
   (history trees) — Table 1 rows 3–4 — so exhaustive analysis runs the
   protocol at reduced parameters: H = 0 (no trees; collisions detected by
   direct meetings only), names just wide enough to rank n agents, and a
   dormant delay just long enough to regenerate a full name. The protocol
   logic exercised is exactly Protocols 5–6; the analyzer's closure and
   model-check verdicts quantify over every configuration of this reduced
   space. *)
let analysis_params ~n =
  if n < 2 then invalid_arg "Sublinear.analysis_params: n must be >= 2";
  let name_bits = max 1 (Params.ceil_log2 n) in
  { Params.r_max = 2; d_max = name_bits + 1; t_h = 0; s_max = n * n; name_bits; h = 0 }

let all_names ~name_bits =
  List.concat_map
    (fun len -> List.init (1 lsl len) (fun bits -> Name.of_int ~bits ~len))
    (List.init (name_bits + 1) Fun.id)

let rec subsets_up_to k xs =
  if k <= 0 then [ [] ]
  else
    match xs with
    | [] -> [ [] ]
    | x :: rest ->
        subsets_up_to k rest @ List.map (fun s -> x :: s) (subsets_up_to (k - 1) rest)

(* Canonical state representative: rebuild the roster from its sorted
   elements so that semantically equal rosters are structurally equal
   (AVL shape depends on insertion order), and apply the same frozen-
   delaytimer quotient as Optimal_silent (a propagating agent never reads
   its timer before overwriting it on turning dormant). *)
let normalize ~(params : Params.sublinear) = function
  | Reset.Computing c -> Reset.Computing { c with roster = Roster.of_list (Roster.elements c.roster) }
  | Reset.Resetting r when r.Reset.resetcount > 0 ->
      Reset.Resetting { r with Reset.delaytimer = params.Params.d_max }
  | Reset.Resetting _ as s -> s

let rec tree_wellformed ~(params : Params.sublinear) ~depth tree =
  tree = []
  || depth <= params.Params.h
     && List.for_all
       (fun (node : History_tree.node) ->
         Name.length node.History_tree.name <= params.Params.name_bits
         && node.History_tree.sync >= 1
         && node.History_tree.sync <= params.Params.s_max
         && node.History_tree.timer >= 0
         && node.History_tree.timer <= params.Params.t_h
         && tree_wellformed ~params ~depth:(depth + 1) node.History_tree.children)
       tree
  && (* sibling names are distinct (simple labelling) *)
  let names = List.map (fun (nd : History_tree.node) -> nd.History_tree.name) tree in
  List.length (List.sort_uniq Name.compare names) = List.length names

let invariants ~(params : Params.sublinear) ~n : state Engine.Enumerable.invariant list =
  let on_collecting f = function Reset.Computing c -> f c | Reset.Resetting _ -> true in
  let on_resetting f = function Reset.Resetting r -> f r | Reset.Computing _ -> true in
  [
    {
      Engine.Enumerable.iname = "name-length<=name_bits";
      holds =
        (function
        | Reset.Computing c -> Name.length c.name <= params.Params.name_bits
        | Reset.Resetting r -> Name.length r.Reset.payload <= params.Params.name_bits);
    };
    {
      Engine.Enumerable.iname = "roster-cardinal<=n";
      holds = on_collecting (fun c -> Roster.cardinal c.roster <= n);
    };
    {
      Engine.Enumerable.iname = "roster-contains-own-name";
      holds = on_collecting (fun c -> Roster.mem c.name c.roster);
    };
    {
      Engine.Enumerable.iname = "rank-in-1..n";
      holds = on_collecting (fun c -> c.rank >= 1 && c.rank <= n);
    };
    {
      Engine.Enumerable.iname = "resetcount<=R_max";
      holds =
        on_resetting (fun r ->
            r.Reset.resetcount >= 0 && r.Reset.resetcount <= params.Params.r_max);
    };
    {
      Engine.Enumerable.iname = "delaytimer<=D_max";
      holds =
        on_resetting (fun r ->
            r.Reset.delaytimer >= 0 && r.Reset.delaytimer <= params.Params.d_max);
    };
    {
      Engine.Enumerable.iname = "history-tree-wellformed";
      holds = on_collecting (fun c -> tree_wellformed ~params ~depth:1 c.tree);
    };
  ]

let rec choose m k =
  if k < 0 || k > m then 0 else if k = 0 || k = m then 1 else choose (m - 1) (k - 1) + choose (m - 1) k

let analysis_state_count ~(params : Params.sublinear) ~n =
  let m = (1 lsl (params.Params.name_bits + 1)) - 1 in
  (* subsets of the other m-1 names joined with the owner's, size <= n *)
  let rosters = List.fold_left (fun acc k -> acc + choose (m - 1) k) 0 (List.init n Fun.id) in
  (m * n * rosters) + (m * (params.Params.r_max + params.Params.d_max + 1))

let enumerable ?params ~n () : state Engine.Enumerable.t =
  let params = match params with Some p -> p | None -> analysis_params ~n in
  if params.Params.h <> 0 then
    invalid_arg
      "Sublinear.enumerable: only H = 0 is finitely enumerable (trees make the space \
       quasi-exponential); trace-level invariant lint covers H > 0";
  let protocol = protocol ~params ~n ~h:0 () in
  let name_bits = params.Params.name_bits in
  let names = all_names ~name_bits in
  let computing =
    List.concat_map
      (fun name ->
        let others = List.filter (fun m -> not (Name.equal m name)) names in
        List.concat_map
          (fun subset ->
            let roster = Roster.of_list (name :: subset) in
            List.init n (fun r ->
                collecting { name; rank = r + 1; roster; tree = History_tree.empty }))
          (subsets_up_to (n - 1) others))
      names
  in
  let resettings =
    List.concat_map
      (fun name ->
        List.init params.Params.r_max (fun c ->
            resetting ~name ~resetcount:(c + 1) ~delaytimer:params.Params.d_max)
        @ List.init (params.Params.d_max + 1) (fun delaytimer ->
              resetting ~name ~resetcount:0 ~delaytimer))
      names
  in
  Engine.Enumerable.make ~protocol ~states:(computing @ resettings)
    ~normalize:(normalize ~params) ~invariants:(invariants ~params ~n)
    ~expectation:Engine.Enumerable.Stabilizing ~max_draws:4
    ~declared_count:(analysis_state_count ~params ~n)
    ~note:
      "reduced analysis parameters (H = 0, minimal name width); the full space is \
       exponential (Table 1 rows 3-4)"
    ()

let log2_states ~(params : Params.sublinear) ~n =
  (* Dominant terms of log2 |S|: rosters contribute ≈ n·name_bits bits,
     trees ≈ (number of node slots ≈ n^H) · (bits per node). The paper
     states exp(O(n^H)·log n); this estimate reproduces that shape. *)
  let nf = float_of_int n in
  let nb = float_of_int params.Params.name_bits in
  let bits_per_node =
    nb
    +. (log (float_of_int params.Params.s_max) /. log 2.0)
    +. (log (float_of_int (params.Params.t_h + 1)) /. log 2.0)
  in
  let tree_slots = if params.Params.h = 0 then 0.0 else nf ** float_of_int params.Params.h in
  (nf *. nb) +. nb +. (log nf /. log 2.0) +. (tree_slots *. bits_per_node)
