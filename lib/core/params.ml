type preset = Paper | Tuned

type optimal_silent = { r_max : int; d_max : int; e_max : int }

let ceil_log2 n =
  if n < 1 then invalid_arg "Params.ceil_log2: n must be >= 1";
  let rec loop p k = if p >= n then k else loop (p * 2) (k + 1) in
  loop 1 0

let ceil_ln n =
  if n < 1 then invalid_arg "Params.ceil_ln: n must be >= 1";
  int_of_float (Float.ceil (log (float_of_int n)))

let h_log n = max 1 (ceil_log2 n)

let check_n n = if n < 2 then invalid_arg "Params: population size must be >= 2"

let optimal_silent ?(preset = Tuned) n =
  check_n n;
  match preset with
  | Paper -> { r_max = max 2 (60 * ceil_ln n); d_max = 8 * n; e_max = 20 * n }
  | Tuned -> { r_max = max 6 (4 * ceil_ln n); d_max = 6 * n; e_max = 12 * n }

type sublinear = { r_max : int; d_max : int; t_h : int; s_max : int; name_bits : int; h : int }

(* T_H tracks the bounded-epidemic time τ_{H+1} = Θ((H+1)·n^{1/(H+1)})
   (Θ(log n) once H = Ω(log n)), doubled into own-interaction units. *)
let t_h_value ~c_poly ~c_log ~n ~h =
  if h = 0 then 0
  else if h >= ceil_log2 n then max 4 (c_log * ceil_ln n)
  else begin
    let nf = float_of_int n in
    let hf = float_of_int h in
    max 4 (int_of_float (Float.ceil (c_poly *. (hf +. 1.0) *. (nf ** (1.0 /. (hf +. 1.0))))))
  end

let sublinear ?(preset = Tuned) ~h n =
  check_n n;
  if h < 0 then invalid_arg "Params.sublinear: H must be >= 0";
  let name_bits = 3 * ceil_log2 n in
  let r_max, d_max, t_h =
    match preset with
    | Paper ->
        ( max 2 (60 * ceil_ln n),
          name_bits + (8 * ceil_ln n),
          t_h_value ~c_poly:8.0 ~c_log:16 ~n ~h )
    | Tuned ->
        ( max 6 (4 * ceil_ln n),
          name_bits + (4 * ceil_ln n),
          t_h_value ~c_poly:6.0 ~c_log:10 ~n ~h )
  in
  { r_max; d_max; t_h; s_max = n * n; name_bits; h }
