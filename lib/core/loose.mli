(** Loosely-stabilizing leader election (the paper's Section 1 "Problem
    variants"; protocol in the style of Sudo et al. [56]).

    Self-stabilizing leader election requires agents to know the exact
    population size (Theorem 2.1). Relaxing self-stabilization to
    {e loose} stabilization — a unique leader must emerge from any
    configuration and then persist only for a {e long} time, not forever —
    removes that requirement: agents need only an upper bound [N >= n].

    The protocol is timeout-based. Every agent carries a countdown timer;
    leaders pump it back up to [T_max], the larger timer value spreads (one
    tick poorer) on every interaction, so a living leader keeps the whole
    population's timers high via epidemic. An agent whose timer reaches 0
    concludes no leader exists and becomes one; surplus leaders annihilate
    pairwise ([L,L → L,F]).

    Convergence takes O(T_max) parallel time from any configuration; the
    holding time of the elected leader grows rapidly with [T_max] (the
    exponential-slack trade-off the paper cites), which the loose_le
    experiment measures. Contrast both directions with the SSLE protocols:
    those hold forever but hardcode [n]. *)

type state = { leader : bool; timer : int }

val protocol : n:int -> t_max:int -> state Engine.Protocol.t
(** [protocol ~n ~t_max] builds the protocol. [n] is only the simulated
    population size — the transition rules depend solely on [t_max], which
    callers derive from an upper bound [N >= n] (e.g. [t_max = c·N·ln N]);
    the same transition function works for every population up to [N],
    which is exactly what Theorem 2.1 forbids for true SSLE.
    Observations: [is_leader] is the leader bit; [rank] is [Some 1] for
    leaders and [None] otherwise (the protocol does not rank). *)

val default_t_max : upper_bound:int -> int
(** [8·N·⌈ln N⌉] — enough slack for days-long holding at laptop scales. *)

val enumerable : n:int -> t_max:int -> state Engine.Enumerable.t
(** Static-analysis descriptor over the [2·(t_max+1)] declared states.
    The expectation is {e loose} stabilization: every bottom SCC of the
    configuration graph contains a unique-leader configuration — and for
    [n >= 3] the analyzer also certifies the protocol is non-silent (no
    silent configuration exists at all), separating it from the paper's
    silent protocols (Observation 2.2). *)

val all_followers : n:int -> t_max:int -> state array
(** The configuration that defeats initialized leader election: no leader,
    all timers maxed. Loose stabilization recovers from it. *)

val uniform : Prng.t -> n:int -> t_max:int -> state array
(** Uniformly random leader bits and timers. *)
