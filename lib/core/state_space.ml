type row = { protocol : string; exact : int option; log2 : float }

let log2f x = log x /. log 2.0

let silent_n_state ~n =
  { protocol = "Silent-n-state-SSR"; exact = Some n; log2 = log2f (float_of_int n) }

let optimal_silent ?preset n =
  let params = Params.optimal_silent ?preset n in
  let count = Optimal_silent.states ~params ~n in
  { protocol = "Optimal-Silent-SSR"; exact = Some count; log2 = log2f (float_of_int count) }

let sublinear ?preset ~h n =
  let params = Params.sublinear ?preset ~h n in
  {
    protocol = Printf.sprintf "Sublinear-Time-SSR(H=%d)" h;
    exact = None;
    log2 = Sublinear.log2_states ~params ~n;
  }

let table1_rows ~n =
  [
    silent_n_state ~n;
    optimal_silent n;
    sublinear ~h:(Params.h_log n) n;
    sublinear ~h:1 n;
  ]

let count_distinct_visited ~equal ~snapshots =
  let distinct = ref [] in
  let see s = if not (List.exists (equal s) !distinct) then distinct := s :: !distinct in
  List.iter (fun snap -> Array.iter see snap) snapshots;
  List.length !distinct
