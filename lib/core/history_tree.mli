(** Interaction-history trees for Detect-Name-Collision (Protocols 7–8).

    Each Collecting agent of Sublinear-Time-SSR stores a tree of depth at
    most [H]. The root is the agent itself (implicit; a tree value is the
    forest of depth-1 subtrees). Every node is labelled with a name; every
    edge carries a [sync] value — a shared random number generated when the
    corresponding pair of agents last interacted — and a freshness [timer]
    that ticks down once per interaction of the owning agent. A root-to-node
    path records a chain of recent interactions: the path
    [me --3--> b --5--> c] means "when I last met [b] we drew sync 3, and
    [b] then told me that when it had last met [c] they drew sync 5".

    Name collisions are detected by confronting such a path ending at a
    name with the agent actually carrying that name: the honest carrier
    always holds a matching sync somewhere along the reversed path
    (Figure 2), while an impostor with the same name misses all of them
    with probability [1 - O(1/S_max)] per edge.

    All values are immutable; operations return new trees. *)

type node = {
  name : Name.t;  (** label of the child node *)
  sync : int;  (** sync value on the edge from the parent *)
  timer : int;  (** freshness countdown; 0 = outdated (kept but ignored) *)
  children : node list;
}

type t = node list
(** Depth-1 subtrees of the implicit root, in no particular order. The
    protocol maintains the invariant that sibling names are distinct. *)

val empty : t

val depth : t -> int
(** Number of edges on the longest root-to-leaf path; [0] for {!empty}. *)

val node_count : t -> int

val decrement_timers : t -> t
(** Tick every edge timer down (floored at 0) — Protocol 7, lines 13–14. *)

val truncate : depth:int -> t -> t
(** Keep only nodes within [depth] edges of the root; [depth <= 0] gives
    {!empty}. *)

val remove_named : name:Name.t -> t -> t
(** Remove every subtree whose root node is labelled [name] — Protocol 7,
    lines 11–12 (keeping the tree simply labelled). *)

val find_child : name:Name.t -> t -> node option
(** The depth-1 subtree labelled [name], if any. *)

val merge :
  h:int -> own:Name.t -> partner:Name.t -> partner_tree:t -> sync:int -> timer:int -> t -> t
(** [merge ~h ~own ~partner ~partner_tree ~sync ~timer tree] performs the
    tree update of Protocol 7, lines 7–12: replaces the depth-1 subtree
    labelled [partner] with a fresh copy of [partner_tree] truncated to
    depth [h-1], hangs it on an edge carrying [sync] and [timer], and
    removes any node labelled [own]. [h <= 0] leaves the tree empty (the
    direct-detection variant stores no history). *)

val fresh_paths_to : name:Name.t -> t -> (Name.t * int) list list
(** All root-to-node paths whose edges all have [timer > 0] and whose final
    node is labelled [name]; each path is the list of [(node name, edge
    sync)] pairs from depth 1 to the final node — Protocol 7, line 2. *)

val consistent : tree:t -> origin:Name.t -> path:(Name.t * int) list -> bool
(** Check-Path-Consistency (Protocol 8). [tree] belongs to the agent [j]
    being confronted; [path] is a path from agent [origin]'s tree whose
    final node carries [j]'s name. [j] walks its own tree along the
    reversed path (ending at [origin]) as deep as it exists; the check
    passes iff some edge along that walk carries the same sync as the
    corresponding edge of [path]. Timers on [j]'s side are ignored, per the
    protocol. Returns [false] ("Inconsistent") when no edge matches —
    including when the walk cannot even start. *)

val consistent_at : tree:t -> origin:Name.t -> path:(Name.t * int) list -> int option
(** Like {!consistent} but returns the 1-based position (counting outward
    from the confronted agent) of the first matching edge, or [None] when
    inconsistent — used to reproduce Figure 2's captions ("returns True
    after checking the first/second edge"). *)

val simply_labelled : own:Name.t -> t -> bool
(** [true] iff no root-to-node path repeats a name and [own] appears
    nowhere — the invariant the protocol maintains for its own tree. *)

val sibling_names_distinct : t -> bool

val pp : Format.formatter -> t -> unit
(** Multi-line rendering in the style of Figure 2: one node per line,
    children indented, edges annotated with sync (and timer). *)
