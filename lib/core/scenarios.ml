(* Silent-n-state-SSR *)

let silent_random_state rng ~n = Silent_n_state.state_of_rank0 ~n (Prng.int rng n)

let silent_uniform rng ~n = Array.init n (fun _ -> silent_random_state rng ~n)

let silent_all_zero ~n = Array.make n (Silent_n_state.state_of_rank0 ~n 0)

let silent_correct ~n = Array.init n (fun i -> Silent_n_state.state_of_rank0 ~n i)

let silent_worst_case ~n =
  if n < 3 then invalid_arg "Scenarios.silent_worst_case: need n >= 3";
  (* Two agents at rank 0, one at each rank 1..n-2, rank n-1 empty. *)
  Array.init n (fun i ->
      Silent_n_state.state_of_rank0 ~n (if i = n - 1 then 0 else i mod (n - 1)))

(* Optimal-Silent-SSR *)

(* Children count of rank r in the completed full binary tree on n nodes. *)
let tree_children ~n r = (if 2 * r <= n then 1 else 0) + if (2 * r) + 1 <= n then 1 else 0

let optimal_correct ~n =
  Array.init n (fun i -> Optimal_silent.settled ~rank:(i + 1) ~children:(tree_children ~n (i + 1)))

let optimal_duplicate_rank rng ~n =
  let config = optimal_correct ~n in
  (* Copy one agent's rank onto another: one duplicate, one hole. *)
  let victim, source = Prng.distinct_pair rng n in
  config.(victim) <- Optimal_silent.settled ~rank:(source + 1) ~children:(tree_children ~n (source + 1));
  config

let optimal_all_rank1 ~n = Array.init n (fun _ -> Optimal_silent.settled ~rank:1 ~children:0)

let optimal_starved ~n = Array.init n (fun _ -> Optimal_silent.unsettled ~errorcount:0)

let optimal_all_dormant_followers ~(params : Params.optimal_silent) ~n =
  Array.init n (fun _ ->
      Optimal_silent.resetting ~leader:false ~resetcount:0 ~delaytimer:params.Params.d_max)

let optimal_random_state rng ~(params : Params.optimal_silent) ~n =
  match Prng.int rng 4 with
  | 0 -> Optimal_silent.settled ~rank:(1 + Prng.int rng n) ~children:(Prng.int rng 3)
  | 1 -> Optimal_silent.unsettled ~errorcount:(Prng.int rng (params.Params.e_max + 1))
  | 2 ->
      Optimal_silent.resetting ~leader:(Prng.bool rng)
        ~resetcount:(1 + Prng.int rng params.Params.r_max)
        ~delaytimer:(Prng.int rng (params.Params.d_max + 1))
  | _ ->
      Optimal_silent.resetting ~leader:(Prng.bool rng) ~resetcount:0
        ~delaytimer:(Prng.int rng (params.Params.d_max + 1))

let optimal_uniform rng ~params ~n = Array.init n (fun _ -> optimal_random_state rng ~params ~n)

let optimal_mid_reset rng ~(params : Params.optimal_silent) ~n =
  Array.init n (fun _ ->
      if Prng.bool rng then
        Optimal_silent.resetting ~leader:(Prng.bool rng)
          ~resetcount:(Prng.int rng (params.Params.r_max + 1))
          ~delaytimer:(Prng.int rng (params.Params.d_max + 1))
      else optimal_random_state rng ~params ~n)

(* Sublinear-Time-SSR *)

let distinct_names rng ~(params : Params.sublinear) count =
  let width = params.Params.name_bits in
  let rec draw acc k =
    if k = 0 then acc
    else begin
      let name = Name.random rng ~width in
      if List.exists (Name.equal name) acc then draw acc k else draw (name :: acc) (k - 1)
    end
  in
  Array.of_list (draw [] count)

let collecting_of ~names ~roster i =
  let name = names.(i) in
  let rank = match Roster.rank_of name roster with Some r -> r | None -> 1 in
  Sublinear.collecting { Sublinear.name; rank; roster; tree = History_tree.empty }

let sublinear_fresh rng ~params ~n = Array.init n (fun _ -> Sublinear.fresh rng ~params)

let sublinear_correct rng ~params ~n =
  let names = distinct_names rng ~params n in
  let roster = Roster.of_list (Array.to_list names) in
  Array.init n (collecting_of ~names ~roster)

let sublinear_name_collision rng ~params ~n =
  let names = distinct_names rng ~params (n - 1) in
  let roster = Roster.of_list (Array.to_list names) in
  (* Agent n-1 duplicates agent 0's name; every roster holds the n-1
     distinct names, so only Detect-Name-Collision can expose the clash. *)
  let names = Array.append names [| names.(0) |] in
  Array.init n (collecting_of ~names ~roster)

let sublinear_ghost rng ~params ~n =
  let names = distinct_names rng ~params (n + 1) in
  let ghost = names.(n) in
  Array.init n (fun i ->
      let roster = Roster.of_list [ names.(i); ghost ] in
      collecting_of ~names ~roster i)

let random_tree rng ~(params : Params.sublinear) ~name_pool ~own =
  let pick_name () = Prng.pick rng name_pool in
  let rec build depth =
    if depth = 0 then []
    else begin
      let branches = Prng.int rng 3 in
      let rec grow acc k =
        if k = 0 then acc
        else begin
          let name = pick_name () in
          if Name.equal name own || List.exists (fun nd -> Name.equal nd.History_tree.name name) acc
          then grow acc (k - 1)
          else begin
            let node =
              {
                History_tree.name;
                sync = 1 + Prng.int rng params.Params.s_max;
                timer = Prng.int rng (params.Params.t_h + 1);
                children = build (depth - 1);
              }
            in
            grow (node :: acc) (k - 1)
          end
        end
      in
      grow [] branches
    end
  in
  build params.Params.h

let sublinear_forged_trees rng ~params ~n =
  let names = distinct_names rng ~params (n + 2) in
  let name_pool = names in
  let roster = Roster.of_list (Array.to_list (Array.sub names 0 n)) in
  Array.init n (fun i ->
      let own = names.(i) in
      let tree = random_tree rng ~params ~name_pool ~own in
      let rank = match Roster.rank_of own roster with Some r -> r | None -> 1 in
      Sublinear.collecting { Sublinear.name = own; rank; roster; tree })

let sublinear_mid_reset rng ~(params : Params.sublinear) ~n =
  Array.init n (fun _ ->
      match Prng.int rng 3 with
      | 0 ->
          Sublinear.resetting ~name:Name.empty
            ~resetcount:(1 + Prng.int rng params.Params.r_max)
            ~delaytimer:(Prng.int rng (params.Params.d_max + 1))
      | 1 ->
          let partial_bits = Prng.int rng (params.Params.name_bits + 1) in
          let name = Name.random rng ~width:partial_bits in
          Sublinear.resetting ~name ~resetcount:0
            ~delaytimer:(1 + Prng.int rng params.Params.d_max)
      | _ -> Sublinear.fresh rng ~params)

let sublinear_random_state_from_pool rng ~(params : Params.sublinear) ~n ~pool =
  if Prng.int rng 4 = 0 then begin
    let partial_bits = Prng.int rng (params.Params.name_bits + 1) in
    Sublinear.resetting
      ~name:(Name.random rng ~width:partial_bits)
      ~resetcount:(Prng.int rng (params.Params.r_max + 1))
      ~delaytimer:(Prng.int rng (params.Params.d_max + 1))
  end
  else begin
    let own = Prng.pick rng pool in
    let roster_size = 1 + Prng.int rng n in
    let roster = Roster.of_list (own :: List.init roster_size (fun _ -> Prng.pick rng pool)) in
    let tree = random_tree rng ~params ~name_pool:pool ~own in
    Sublinear.collecting { Sublinear.name = own; rank = 1 + Prng.int rng n; roster; tree }
  end

let sublinear_random_state rng ~(params : Params.sublinear) ~n =
  (* A fresh independent pool per draw: a corruption adversary plants
     names the honest agents have (with high probability) never seen. *)
  let pool = Array.init (max 2 n) (fun _ -> Name.random rng ~width:params.Params.name_bits) in
  sublinear_random_state_from_pool rng ~params ~n ~pool

let sublinear_uniform rng ~(params : Params.sublinear) ~n =
  let pool = distinct_names rng ~params (2 * n) in
  Array.init n (fun _ -> sublinear_random_state_from_pool rng ~params ~n ~pool)

(* Catalogues *)

let silent_catalogue ~n =
  [
    ("uniform", fun rng -> silent_uniform rng ~n);
    ("all-zero", fun _ -> silent_all_zero ~n);
    ("correct", fun _ -> silent_correct ~n);
    ("worst-case", fun _ -> silent_worst_case ~n);
  ]

let optimal_catalogue ~params ~n =
  [
    ("uniform", fun rng -> optimal_uniform rng ~params ~n);
    ("correct", fun _ -> optimal_correct ~n);
    ("duplicate-rank", fun rng -> optimal_duplicate_rank rng ~n);
    ("all-rank1", fun _ -> optimal_all_rank1 ~n);
    ("starved", fun _ -> optimal_starved ~n);
    ("dormant-followers", fun _ -> optimal_all_dormant_followers ~params ~n);
    ("mid-reset", fun rng -> optimal_mid_reset rng ~params ~n);
  ]

let sublinear_catalogue ~params ~n =
  [
    ("fresh", fun rng -> sublinear_fresh rng ~params ~n);
    ("correct", fun rng -> sublinear_correct rng ~params ~n);
    ("name-collision", fun rng -> sublinear_name_collision rng ~params ~n);
    ("ghost", fun rng -> sublinear_ghost rng ~params ~n);
    ("forged-trees", fun rng -> sublinear_forged_trees rng ~params ~n);
    ("mid-reset", fun rng -> sublinear_mid_reset rng ~params ~n);
    ("uniform", fun rng -> sublinear_uniform rng ~params ~n);
  ]
