type state = (unit, unit) Reset.role

let default_r_max = 3
let default_d_max = 4

let spec ~r_max ~d_max : (unit, unit) Reset.spec =
  {
    Reset.r_max;
    d_max;
    recruit_payload = (fun _rng -> ());
    propagating_tick = (fun _rng () -> ());
    dormant_tick = (fun _rng () -> ());
    resetting_pair = (fun _rng () () -> ((), ()));
    awaken = (fun _rng () -> ());
  }

let computing : state = Reset.Computing ()

let resetting ~resetcount ~delaytimer : state =
  Reset.Resetting { Reset.resetcount; delaytimer; payload = () }

let equal = Reset.equal_role (fun () () -> true) (fun () () -> true)

let pp = Reset.pp_role (fun fmt () -> Format.pp_print_string fmt "idle") (fun fmt () -> Format.pp_print_string fmt "_")

let protocol ?(r_max = default_r_max) ?(d_max = default_d_max) ~n () : state Engine.Protocol.t =
  if n < 2 then invalid_arg "Reset_probe.protocol: n must be >= 2";
  if r_max < 1 || d_max < 1 then invalid_arg "Reset_probe.protocol: r_max and d_max must be >= 1";
  let spec = spec ~r_max ~d_max in
  {
    Engine.Protocol.name = Printf.sprintf "Reset-Probe(R_max=%d, D_max=%d)" r_max d_max;
    n;
    transition = (fun rng a b -> Reset.step ~spec rng a b);
    deterministic = true;
    equal;
    pp;
    rank = (fun _ -> None);
    is_leader = (fun _ -> false);
  }

let normalize ~d_max = function
  | Reset.Resetting r when r.Reset.resetcount > 0 ->
      Reset.Resetting { r with Reset.delaytimer = d_max }
  | (Reset.Resetting _ | Reset.Computing _) as s -> s

let states ~r_max ~d_max = r_max + d_max + 2

let enumerable ?(r_max = default_r_max) ?(d_max = default_d_max) ~n () :
    state Engine.Enumerable.t =
  let protocol = protocol ~r_max ~d_max ~n () in
  let declared_count = states ~r_max ~d_max in
  let states =
    computing
    :: (List.init r_max (fun c -> resetting ~resetcount:(c + 1) ~delaytimer:d_max)
       @ List.init (d_max + 1) (fun delaytimer -> resetting ~resetcount:0 ~delaytimer))
  in
  let invariants =
    [
      {
        Engine.Enumerable.iname = "resetcount<=R_max";
        holds =
          (function
          | Reset.Resetting r -> r.Reset.resetcount >= 0 && r.Reset.resetcount <= r_max
          | Reset.Computing () -> true);
      };
      {
        Engine.Enumerable.iname = "delaytimer<=D_max";
        holds =
          (function
          | Reset.Resetting r -> r.Reset.delaytimer >= 0 && r.Reset.delaytimer <= d_max
          | Reset.Computing () -> true);
      };
    ]
  in
  (* Lemma 3.1 made checkable: from any configuration the reset wave dies
     out — resetcounts are non-increasing and any meeting of a maximal
     propagating agent strictly decreases them, dormant timers strictly
     decrease — so the unique bottom SCC under every configuration is the
     silent all-Computing one. *)
  Engine.Enumerable.make ~protocol ~states ~normalize:(normalize ~d_max) ~invariants
    ~correct:(fun config -> Array.for_all (fun s -> not (Reset.is_resetting s)) config)
    ~expectation:Engine.Enumerable.Silent_stabilizing ~declared_count
    ~fields:
      [
        {
          Engine.Enumerable.fname = "kind";
          frange = 2;
          fget = (function Reset.Computing () -> 0 | Reset.Resetting _ -> 1);
        };
        {
          Engine.Enumerable.fname = "resetcount";
          frange = r_max + 1;
          fget = (function Reset.Computing () -> 0 | Reset.Resetting r -> r.Reset.resetcount);
        };
        {
          Engine.Enumerable.fname = "delaytimer";
          frange = d_max + 1;
          fget = (function Reset.Computing () -> 0 | Reset.Resetting r -> r.Reset.delaytimer);
        };
      ]
    ()
