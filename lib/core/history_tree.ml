type node = { name : Name.t; sync : int; timer : int; children : node list }

type t = node list

let empty = []

let rec depth_node nd = 1 + depth nd.children

and depth t = List.fold_left (fun acc nd -> max acc (depth_node nd)) 0 t

let rec node_count t = List.fold_left (fun acc nd -> acc + 1 + node_count nd.children) 0 t

let rec decrement_timers t =
  List.map (fun nd -> { nd with timer = max (nd.timer - 1) 0; children = decrement_timers nd.children }) t

let rec truncate ~depth t =
  if depth <= 0 then []
  else List.map (fun nd -> { nd with children = truncate ~depth:(depth - 1) nd.children }) t

let rec remove_named ~name t =
  List.filter_map
    (fun nd ->
      if Name.equal nd.name name then None
      else Some { nd with children = remove_named ~name nd.children })
    t

let find_child ~name t = List.find_opt (fun nd -> Name.equal nd.name name) t

let merge ~h ~own ~partner ~partner_tree ~sync ~timer tree =
  if h <= 0 then []
  else begin
    let others = List.filter (fun nd -> not (Name.equal nd.name partner)) tree in
    let copied = remove_named ~name:own (truncate ~depth:(h - 1) partner_tree) in
    let child = { name = partner; sync; timer; children = copied } in
    remove_named ~name:own (child :: others)
  end

let fresh_paths_to ~name t =
  let rec walk prefix acc t =
    List.fold_left
      (fun acc nd ->
        if nd.timer <= 0 then acc
        else begin
          let prefix' = (nd.name, nd.sync) :: prefix in
          let acc = if Name.equal nd.name name then List.rev prefix' :: acc else acc in
          walk prefix' acc nd.children
        end)
      acc t
  in
  walk [] [] t

(* The reversed expectation: walking out of the confronted agent, the k-th
   step goes to the (p-k)-th node of [path] (finally to [origin]) and the
   matching sync is the one on [path]'s (p-k+1)-th edge. *)
let reversed_expectation ~origin ~path =
  (* path = [(n_1,s_1); ...; (n_p,s_p)] with n_p the confronted agent; the
     confronted agent walks back toward [origin], so the expected steps are
     [(n_{p-1},s_p); (n_{p-2},s_{p-1}); ...; (n_1,s_2); (origin,s_1)]. *)
  let rev_names_without_last =
    match List.rev_map fst path with [] -> [] | _last :: rest -> rest
  in
  let targets = rev_names_without_last @ [ origin ] in
  let rev_syncs = List.rev_map snd path in
  List.combine targets rev_syncs

let consistent_at ~tree ~origin ~path =
  match path with
  | [] -> None
  | _ -> begin
      let expectation = reversed_expectation ~origin ~path in
      let rec walk pos t = function
        | [] -> None
        | (name, sync) :: rest -> begin
            match find_child ~name t with
            | None -> None
            | Some nd -> if nd.sync = sync then Some pos else walk (pos + 1) nd.children rest
          end
      in
      walk 1 tree expectation
    end

let consistent ~tree ~origin ~path = consistent_at ~tree ~origin ~path <> None

let simply_labelled ~own t =
  let rec walk seen t =
    List.for_all
      (fun nd ->
        (not (List.exists (Name.equal nd.name) seen))
        && (not (Name.equal nd.name own))
        && walk (nd.name :: seen) nd.children)
      t
  in
  walk [] t

let rec sibling_names_distinct t =
  let rec unique = function
    | [] -> true
    | nd :: rest -> (not (List.exists (fun o -> Name.equal o.name nd.name) rest)) && unique rest
  in
  unique t && List.for_all (fun nd -> sibling_names_distinct nd.children) t

let pp fmt t =
  let rec pp_node indent nd =
    Format.fprintf fmt "%s--%d--> %a [t=%d]@\n" indent nd.sync Name.pp nd.name nd.timer;
    List.iter (pp_node (indent ^ "  ")) nd.children
  in
  if t = [] then Format.fprintf fmt "(empty)@\n" else List.iter (pp_node "") t
