type computing =
  | Settled of { rank : int; children : int }
  | Unsettled of { errorcount : int }

type state = (computing, bool) Reset.role

let settled ~rank ~children = Reset.Computing (Settled { rank; children })

let unsettled ~errorcount = Reset.Computing (Unsettled { errorcount })

let resetting ~leader ~resetcount ~delaytimer =
  Reset.Resetting { Reset.resetcount; delaytimer; payload = leader }

let equal_computing x y =
  match (x, y) with
  | Settled a, Settled b -> a.rank = b.rank && a.children = b.children
  | Unsettled a, Unsettled b -> a.errorcount = b.errorcount
  | Settled _, Unsettled _ | Unsettled _, Settled _ -> false

let equal = Reset.equal_role equal_computing Bool.equal

let pp_computing fmt = function
  | Settled s -> Format.fprintf fmt "Settled(rank=%d, children=%d)" s.rank s.children
  | Unsettled u -> Format.fprintf fmt "Unsettled(errorcount=%d)" u.errorcount

let pp = Reset.pp_role pp_computing (fun fmt l -> Format.pp_print_string fmt (if l then "L" else "F"))

let spec ~(params : Params.optimal_silent) : (computing, bool) Reset.spec =
  {
    Reset.r_max = params.Params.r_max;
    d_max = params.Params.d_max;
    (* Every agent enters the Resetting role as a leader candidate. *)
    recruit_payload = (fun _rng -> true);
    propagating_tick = (fun _rng leader -> leader);
    dormant_tick = (fun _rng leader -> leader);
    (* Slow leader election L,L -> L,F during the reset (Protocol 3, l. 3-4). *)
    resetting_pair = (fun _rng la lb -> if la && lb then (true, false) else (la, lb));
    (* Protocol 4: the leader settles at the tree root, followers wait. *)
    awaken =
      (fun _rng leader ->
        if leader then Settled { rank = 1; children = 0 }
        else Unsettled { errorcount = params.Params.e_max });
  }

let protocol ?params ~n () : state Engine.Protocol.t =
  if n < 2 then invalid_arg "Optimal_silent.protocol: n must be >= 2";
  let params = match params with Some p -> p | None -> Params.optimal_silent n in
  let spec = spec ~params in
  let trigger () = Reset.trigger ~spec true in
  (* Recruitment (Protocol 3, lines 9-13): a Settled agent with a free slot
     hands the next binary-tree rank (2r, then 2r+1, when <= n) to an
     Unsettled partner. *)
  let recruit i j =
    match (i, j) with
    | Settled s, Unsettled _ when s.children < 2 && (2 * s.rank) + s.children <= n ->
        Some
          ( Settled { s with children = s.children + 1 },
            Settled { rank = (2 * s.rank) + s.children; children = 0 } )
    | (Settled _ | Unsettled _), (Settled _ | Unsettled _) -> None
  in
  (* Starvation countdown (lines 14-20); returns the updated state and
     whether the alarm fired. *)
  let countdown = function
    | Unsettled u ->
        let errorcount = max (u.errorcount - 1) 0 in
        (Unsettled { errorcount }, errorcount = 0)
    | Settled _ as s -> (s, false)
  in
  let transition rng a b =
    match (a, b) with
    | Reset.Resetting _, _ | _, Reset.Resetting _ -> Reset.step ~spec rng a b
    | Reset.Computing ca, Reset.Computing cb -> begin
        match (ca, cb) with
        | Settled sa, Settled sb when sa.rank = sb.rank ->
            (* Rank collision (lines 5-8): both trigger a global reset. *)
            (trigger (), trigger ())
        | _ -> begin
            let ca, cb =
              match recruit ca cb with
              | Some (ca, cb) -> (ca, cb)
              | None -> ( match recruit cb ca with
                  | Some (cb, ca) -> (ca, cb)
                  | None -> (ca, cb) )
            in
            let ca, alarm_a = countdown ca in
            let cb, alarm_b = countdown cb in
            if alarm_a || alarm_b then (trigger (), trigger ())
            else (Reset.Computing ca, Reset.Computing cb)
          end
      end
  in
  let rank = function
    | Reset.Computing (Settled s) -> Some s.rank
    | Reset.Computing (Unsettled _) | Reset.Resetting _ -> None
  in
  {
    Engine.Protocol.name = "Optimal-Silent-SSR";
    n;
    transition;
    deterministic = true;
    equal;
    pp;
    rank;
    is_leader = Engine.Protocol.leader_from_rank rank;
  }

let states ~(params : Params.optimal_silent) ~n =
  (3 * n) + (params.Params.e_max + 1) + (2 * (params.Params.r_max + params.Params.d_max + 1))

(* A propagating agent (resetcount > 0) never reads its delaytimer: the
   timer is frozen while the wave propagates and overwritten with D_max the
   moment the agent turns dormant (Protocol 2, line 7). States differing
   only in that frozen timer are therefore bisimilar, and the Table 1 count
   2·(R_max + D_max + 1) counts the equivalence classes. [normalize] maps
   onto the canonical representative (propagating => delaytimer = D_max). *)
let normalize ~(params : Params.optimal_silent) = function
  | Reset.Resetting r when r.Reset.resetcount > 0 ->
      Reset.Resetting { r with Reset.delaytimer = params.Params.d_max }
  | (Reset.Resetting _ | Reset.Computing _) as s -> s

let enumerable ?params ~n () : state Engine.Enumerable.t =
  let params = match params with Some p -> p | None -> Params.optimal_silent n in
  let protocol = protocol ~params ~n () in
  let r_max = params.Params.r_max
  and d_max = params.Params.d_max
  and e_max = params.Params.e_max in
  let settleds =
    List.concat_map
      (fun rank -> List.init 3 (fun children -> settled ~rank:(rank + 1) ~children))
      (List.init n Fun.id)
  in
  let unsettleds = List.init (e_max + 1) (fun errorcount -> unsettled ~errorcount) in
  let resettings =
    List.concat_map
      (fun leader ->
        List.init r_max (fun c -> resetting ~leader ~resetcount:(c + 1) ~delaytimer:d_max)
        @ List.init (d_max + 1) (fun delaytimer -> resetting ~leader ~resetcount:0 ~delaytimer))
      [ false; true ]
  in
  let invariants =
    [
      {
        Engine.Enumerable.iname = "settled-rank-in-1..n";
        holds =
          (function
          | Reset.Computing (Settled s) -> s.rank >= 1 && s.rank <= n
          | Reset.Computing (Unsettled _) | Reset.Resetting _ -> true);
      };
      {
        Engine.Enumerable.iname = "children-in-0..2";
        holds =
          (function
          | Reset.Computing (Settled s) -> s.children >= 0 && s.children <= 2
          | Reset.Computing (Unsettled _) | Reset.Resetting _ -> true);
      };
      {
        Engine.Enumerable.iname = "errorcount<=E_max";
        holds =
          (function
          | Reset.Computing (Unsettled u) -> u.errorcount >= 0 && u.errorcount <= e_max
          | Reset.Computing (Settled _) | Reset.Resetting _ -> true);
      };
      {
        Engine.Enumerable.iname = "resetcount<=R_max";
        holds =
          (function
          | Reset.Resetting r -> r.Reset.resetcount >= 0 && r.Reset.resetcount <= r_max
          | Reset.Computing _ -> true);
      };
      {
        Engine.Enumerable.iname = "delaytimer<=D_max";
        holds =
          (function
          | Reset.Resetting r -> r.Reset.delaytimer >= 0 && r.Reset.delaytimer <= d_max
          | Reset.Computing _ -> true);
      };
    ]
  in
  (* Field decomposition for the kernel compiler: the kind discriminant
     plus each record component, with inapplicable components reading 0.
     The packed product space is much larger than the declared space (all
     cross-kind counter combinations are junk); dead-code elimination
     prunes it back down to the declared states. *)
  let fields =
    [
      {
        Engine.Enumerable.fname = "kind";
        frange = 3;
        fget =
          (function
          | Reset.Computing (Settled _) -> 0
          | Reset.Computing (Unsettled _) -> 1
          | Reset.Resetting _ -> 2);
      };
      {
        Engine.Enumerable.fname = "rank";
        frange = n + 1;
        fget = (function Reset.Computing (Settled s) -> s.rank | _ -> 0);
      };
      {
        Engine.Enumerable.fname = "children";
        frange = 3;
        fget = (function Reset.Computing (Settled s) -> s.children | _ -> 0);
      };
      {
        Engine.Enumerable.fname = "errorcount";
        frange = e_max + 1;
        fget = (function Reset.Computing (Unsettled u) -> u.errorcount | _ -> 0);
      };
      {
        Engine.Enumerable.fname = "resetcount";
        frange = r_max + 1;
        fget = (function Reset.Resetting r -> r.Reset.resetcount | _ -> 0);
      };
      {
        Engine.Enumerable.fname = "delaytimer";
        frange = d_max + 1;
        fget = (function Reset.Resetting r -> r.Reset.delaytimer | _ -> 0);
      };
      {
        Engine.Enumerable.fname = "leader";
        frange = 2;
        fget = (function Reset.Resetting r -> Bool.to_int r.Reset.payload | _ -> 0);
      };
    ]
  in
  Engine.Enumerable.make ~protocol
    ~states:(settleds @ unsettleds @ resettings)
    ~normalize:(normalize ~params) ~invariants
    ~expectation:Engine.Enumerable.Silent_stabilizing ~declared_count:(states ~params ~n) ~fields
    ()
