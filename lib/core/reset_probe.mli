(** Propagate-Reset probe (Protocol 2, Section 3, in isolation).

    A minimal protocol whose {e only} behaviour is the paper's reset
    overlay: the Computing payload and the Resetting payload are both
    [unit], Computing pairs do nothing, and [awaken] returns to idle. The
    static analyzer then verifies the reset mechanism's own guarantee
    (Lemma 3.1) independently of any client protocol: from {e every}
    configuration — including adversarial mixes of propagating and
    dormant agents with arbitrary counters — the wave dies out and the
    population reaches the silent all-Computing configuration.

    The argument the model check certifies exhaustively at small [n]:
    resetcounts never increase (a meeting sets both ends to
    [max(a−1, b−1, 0)]), any meeting involving a maximal-count
    propagating agent strictly decreases that maximum, and dormant
    delaytimers strictly decrease until awakening — so no bottom SCC of
    the configuration graph contains a Resetting agent. *)

type state = (unit, unit) Reset.role

val default_r_max : int
val default_d_max : int

val protocol : ?r_max:int -> ?d_max:int -> n:int -> unit -> state Engine.Protocol.t
(** Probe defaults [R_max = 3], [D_max = 4] — small enough for
    exhaustive model checking, large enough to exercise re-infection of
    dormant agents and early awakening. Deterministic; no agent is ever
    a leader and no rank is assigned ([correct] is reset completion). *)

val computing : state
val resetting : resetcount:int -> delaytimer:int -> state

val states : r_max:int -> d_max:int -> int
(** [R_max + D_max + 2] up to the frozen-delaytimer quotient. *)

val normalize : d_max:int -> state -> state
(** The frozen-delaytimer quotient (see {!Optimal_silent.normalize}). *)

val equal : state -> state -> bool
val pp : Format.formatter -> state -> unit

val enumerable : ?r_max:int -> ?d_max:int -> n:int -> unit -> state Engine.Enumerable.t
(** Static-analysis descriptor; expectation silent-stabilizing with
    [correct] = "no Resetting agent remains". *)
