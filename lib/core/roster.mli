(** Rosters: sets of names collected by epidemic (Protocol 5).

    Each Collecting agent holds the set of every name it has heard of.
    Rosters merge by union on interaction; when a merged roster reaches
    exactly [n] names the agents set their ranks to their own name's
    position in it, and a merged roster exceeding [n] names proves a
    {e ghost name} exists (pigeonhole), triggering a reset. *)

type t

val empty : t

val singleton : Name.t -> t

val of_list : Name.t list -> t

val mem : Name.t -> t -> bool

val add : Name.t -> t -> t

val union : t -> t -> t

val cardinal : t -> int

val rank_of : Name.t -> t -> int option
(** [rank_of name roster] is the 1-based lexicographic position of [name]
    in [roster], or [None] when absent. *)

val elements : t -> Name.t list
(** In ascending lexicographic order. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
