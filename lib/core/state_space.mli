(** The "states" column of Table 1.

    State-space sizes of the three protocols, both as closed-form counts
    (exact for the two linear-state protocols, a dominant-term estimate in
    log₂ for Sublinear-Time-SSR whose state space is quasi-exponential) and
    as empirically counted distinct states visited during a run — a lower
    bound witnessing that the protocols really use Θ(n) states, as
    Theorem 2.1 requires. *)

type row = {
  protocol : string;
  exact : int option;  (** exact state count when it fits an [int] *)
  log2 : float;  (** log₂ of the state count (exact or estimated) *)
}

val silent_n_state : n:int -> row

val optimal_silent : ?preset:Params.preset -> int -> row
(** [optimal_silent n]. *)

val sublinear : ?preset:Params.preset -> h:int -> int -> row
(** [sublinear ~h n]. *)

val table1_rows : n:int -> row list
(** The four rows of Table 1 for a given [n] (Sublinear-Time-SSR appears
    with [H = ⌈log₂ n⌉] and with [H = 1]). *)

val count_distinct_visited :
  equal:('a -> 'a -> bool) -> snapshots:'a array list -> int
(** Number of pairwise-distinct states across the given configuration
    snapshots (quadratic; intended for small populations). *)
