(** Optimal-Silent-SSR (Protocols 3–4, Section 4).

    The paper's linear-time, linear-state, silent self-stabilizing ranking
    protocol — time- and space-optimal in the class of silent protocols
    (Observation 2.2). Agents are [Settled] (they hold a rank and recruit up
    to two children), [Unsettled] (waiting for a rank, counting an
    [errorcount] down as a starvation alarm) or [Resetting] (inside a
    {!Reset} wave, carrying a leader bit).

    Errors trigger a global reset: a rank collision between two Settled
    agents, or an Unsettled agent starving for [E_max] of its interactions.
    During the Θ(n)-long dormant phase of the reset the agents run the slow
    leader election [L,L → L,F]; on awakening the surviving leader settles
    with rank 1 and everyone else becomes Unsettled. Ranks then propagate
    down a full binary tree: the agent ranked [r] hands out ranks [2r] and
    [2r+1] (when ≤ n) to the first Unsettled agents it meets (Figure 1).

    Θ(n) expected stabilization time, Θ(n log n) WHP, O(n) states
    (Table 1, row 2). The protocol is deterministic, so the generic
    {!Engine.Silence} check applies to its stable configurations. *)

type computing =
  | Settled of { rank : int; children : int }
  | Unsettled of { errorcount : int }

type state = (computing, bool) Reset.role
(** The Resetting payload is the leader bit ([true] = L). *)

val protocol : ?params:Params.optimal_silent -> n:int -> unit -> state Engine.Protocol.t
(** [protocol ~n ()] builds the protocol for exactly [n] agents; [params]
    defaults to [Params.optimal_silent ~n] (tuned preset). *)

val settled : rank:int -> children:int -> state
val unsettled : errorcount:int -> state
val resetting : leader:bool -> resetcount:int -> delaytimer:int -> state

val states : params:Params.optimal_silent -> n:int -> int
(** Exact size of the state space: [3n] Settled + [E_max+1] Unsettled +
    [2·(R_max + D_max + 1)] Resetting — O(n) (Table 1). *)

val equal : state -> state -> bool
val pp : Format.formatter -> state -> unit

val normalize : params:Params.optimal_silent -> state -> state
(** Canonical representative of a state's bisimulation class: a
    propagating Resetting agent ([resetcount > 0]) never reads its
    (frozen) delaytimer before overwriting it with [D_max] on turning
    dormant, so the timer is normalized to [D_max]. Identity on all other
    states. Table 1's [2·(R_max + D_max + 1)] Resetting states count these
    classes. *)

val enumerable : ?params:Params.optimal_silent -> n:int -> unit -> state Engine.Enumerable.t
(** Static-analysis descriptor: the declared states (exactly
    [states ~params ~n] of them, cross-checked against Table 1 row 2 by
    the analyzer), range invariants for every counter, and the
    silent-stabilization expectation. Model checking wants reduced
    [params] (e.g. [{r_max = 2; d_max = 3; e_max = 3}]): exactness does
    not need the paper's WHP constants, and the configuration space is
    exponential in the state count. *)
