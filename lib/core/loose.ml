type state = { leader : bool; timer : int }

let default_t_max ~upper_bound =
  if upper_bound < 2 then invalid_arg "Loose.default_t_max: upper bound must be >= 2";
  8 * upper_bound * Params.ceil_ln upper_bound

let protocol ~n ~t_max : state Engine.Protocol.t =
  if n < 2 then invalid_arg "Loose.protocol: n must be >= 2";
  if t_max < 1 then invalid_arg "Loose.protocol: t_max must be >= 1";
  let transition _rng a b =
    (* the larger timer propagates, one tick poorer *)
    let shared = max (max a.timer b.timer - 1) 0 in
    let settle s =
      if s.leader then { s with timer = t_max }
      else if shared = 0 then { leader = true; timer = t_max } (* timeout: no leader heard *)
      else { s with timer = shared }
    in
    let a' = settle a in
    let b' = settle b in
    (* surplus leaders annihilate pairwise *)
    if a'.leader && b'.leader then (a', { b' with leader = false }) else (a', b')
  in
  let rank s = if s.leader then Some 1 else None in
  {
    Engine.Protocol.name = Printf.sprintf "Loose-LE(T_max=%d)" t_max;
    n;
    transition;
    deterministic = true;
    equal = ( = );
    pp = (fun fmt s -> Format.fprintf fmt "%s(timer=%d)" (if s.leader then "L" else "F") s.timer);
    rank;
    is_leader = (fun s -> s.leader);
  }

let enumerable ~n ~t_max : state Engine.Enumerable.t =
  let protocol = protocol ~n ~t_max in
  let states =
    List.concat_map
      (fun leader -> List.init (t_max + 1) (fun timer -> { leader; timer }))
      [ false; true ]
  in
  Engine.Enumerable.make ~protocol ~states
    ~invariants:
      [
        {
          Engine.Enumerable.iname = "timer-in-0..T_max";
          holds = (fun s -> s.timer >= 0 && s.timer <= t_max);
        };
      ]
    ~correct:(Engine.Enumerable.unique_leader protocol)
      (* Loose stabilization only: a follower whose timer expires while a
         leader lives creates a second leader, so no one-leader region is
         forward-closed. The checkable guarantee is that every bottom SCC
         contains unique-leader configurations (correctness recurs w.p. 1;
         the holding-time experiments measure how long it persists). *)
    ~expectation:Engine.Enumerable.Loosely_stabilizing
    ~declared_count:(2 * (t_max + 1))
    ~fields:
      [
        { Engine.Enumerable.fname = "leader"; frange = 2; fget = (fun s -> Bool.to_int s.leader) };
        { Engine.Enumerable.fname = "timer"; frange = t_max + 1; fget = (fun s -> s.timer) };
      ]
    ()

let all_followers ~n ~t_max = Array.make n { leader = false; timer = t_max }

let uniform rng ~n ~t_max =
  Array.init n (fun _ -> { leader = Prng.bool rng; timer = Prng.int rng (t_max + 1) })
