(** Adversarial initial configurations.

    Self-stabilization quantifies over {e every} configuration, so the
    experiments and tests start the protocols from a battery of scenarios:
    clean states, already-correct states (stability must hold), and
    adversarially corrupted states targeting each protocol's weak points —
    duplicated ranks, starved counters, half-finished resets, planted ghost
    names, forged history trees. Every generator is deterministic given the
    {!Prng.t}. *)

(** {1 Silent-n-state-SSR} *)

val silent_uniform : Prng.t -> n:int -> Silent_n_state.state array
(** Every agent at an independently uniform rank. *)

val silent_all_zero : n:int -> Silent_n_state.state array

val silent_correct : n:int -> Silent_n_state.state array
(** The (unique up to agent identity) silent correct configuration. *)

val silent_worst_case : n:int -> Silent_n_state.state array
(** The Ω(n²) barrier configuration of Section 2: two agents at rank 0,
    one at each rank 1..n−2, none at rank n−1. Requires [n >= 3]. *)

(** {1 Optimal-Silent-SSR} *)

val optimal_uniform :
  Prng.t -> params:Params.optimal_silent -> n:int -> Optimal_silent.state array
(** Independent uniform role and fields (the all-out adversary). *)

val optimal_correct : n:int -> Optimal_silent.state array
(** Settled agents ranked 1..n with binary-tree-consistent children
    counts — the silent stable configuration. *)

val optimal_duplicate_rank : Prng.t -> n:int -> Optimal_silent.state array
(** Correct except that one rank is duplicated and another is missing. *)

val optimal_all_rank1 : n:int -> Optimal_silent.state array
(** Every agent Settled with rank 1 — maximal rank collision. *)

val optimal_starved : n:int -> Optimal_silent.state array
(** Every agent Unsettled with [errorcount = 0]: the starvation alarm
    fires on the very first interactions. *)

val optimal_all_dormant_followers : params:Params.optimal_silent -> n:int -> Optimal_silent.state array
(** Every agent dormant with [leader = F]: the reset wave must complete
    and leaderless awakening must trigger a second, proper reset. *)

val optimal_mid_reset : Prng.t -> params:Params.optimal_silent -> n:int -> Optimal_silent.state array
(** Random mixture of propagating/dormant/computing agents. *)

(** {1 Sublinear-Time-SSR} *)

val sublinear_fresh : Prng.t -> params:Params.sublinear -> n:int -> Sublinear.state array
(** Clean random restart: distinct behaviour only WHP — names are drawn
    independently, so collisions occur with probability O(1/n). *)

val sublinear_correct : Prng.t -> params:Params.sublinear -> n:int -> Sublinear.state array
(** Distinct names, full rosters, consistent ranks, empty trees: a correct
    configuration the protocol must never destroy. *)

val sublinear_name_collision : Prng.t -> params:Params.sublinear -> n:int -> Sublinear.state array
(** Distinct names except two agents sharing one; rosters full of the n−1
    distinct names — undetectable by roster size, only by
    Detect-Name-Collision. *)

val sublinear_ghost : Prng.t -> params:Params.sublinear -> n:int -> Sublinear.state array
(** Distinct names, but every roster contains an extra ghost name that
    belongs to no agent. *)

val sublinear_forged_trees : Prng.t -> params:Params.sublinear -> n:int -> Sublinear.state array
(** Distinct names with random forged history trees and sync values:
    the adversary tries to provoke false collision alarms forever. *)

val sublinear_mid_reset : Prng.t -> params:Params.sublinear -> n:int -> Sublinear.state array
(** Random mixture of propagating, dormant (with partial names) and
    collecting agents. *)

val sublinear_uniform : Prng.t -> params:Params.sublinear -> n:int -> Sublinear.state array
(** Independent uniform roles, names, rosters and shallow random trees. *)

(** {1 Single-state adversarial generators}

    One adversarially drawn state, for fault injectors that overwrite
    individual agents mid-run ([Engine.Exec.corrupt], the chaos-engine
    adversaries). Each is the per-agent draw of the corresponding
    [*_uniform] scenario. *)

val silent_random_state : Prng.t -> n:int -> Silent_n_state.state

val optimal_random_state :
  Prng.t -> params:Params.optimal_silent -> n:int -> Optimal_silent.state

val sublinear_random_state : Prng.t -> params:Params.sublinear -> n:int -> Sublinear.state
(** Draws its name material from a fresh pool, so planted roster entries
    are ghosts of the current population WHP. *)

(** {1 Named catalogues (for sweeps over all scenarios)} *)

val optimal_catalogue :
  params:Params.optimal_silent ->
  n:int ->
  (string * (Prng.t -> Optimal_silent.state array)) list

val sublinear_catalogue :
  params:Params.sublinear ->
  n:int ->
  (string * (Prng.t -> Sublinear.state array)) list

val silent_catalogue : n:int -> (string * (Prng.t -> Silent_n_state.state array)) list
