type t = { bits : int; len : int }

let max_len = 62

let empty = { bits = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let append_bit t b =
  if t.len >= max_len then invalid_arg "Name.append_bit: name too long";
  { bits = (t.bits lsl 1) lor (if b then 1 else 0); len = t.len + 1 }

let is_complete ~width t = t.len >= width

let random rng ~width =
  if width < 0 || width > max_len then invalid_arg "Name.random: bad width";
  { bits = Prng.bits rng ~width; len = width }

let of_int ~bits ~len =
  if len < 0 || len > max_len then invalid_arg "Name.of_int: bad length";
  if bits < 0 || (len < max_len && bits lsr len <> 0) then invalid_arg "Name.of_int: bits out of range";
  { bits; len }

let to_int t = t.bits

let compare a b =
  let m = min a.len b.len in
  (* Equal-length prefixes compare lexicographically as integers. *)
  let pa = a.bits lsr (a.len - m) in
  let pb = b.bits lsr (b.len - m) in
  if pa <> pb then Stdlib.compare pa pb else Stdlib.compare a.len b.len

let equal a b = a.len = b.len && a.bits = b.bits

let bit t i =
  if i < 0 || i >= t.len then invalid_arg "Name.bit: index out of range";
  (t.bits lsr (t.len - 1 - i)) land 1 = 1

let to_string t =
  if t.len = 0 then "\xCE\xB5" (* ε *)
  else String.init t.len (fun i -> if bit t i then '1' else '0')

let pp fmt t = Format.pp_print_string fmt (to_string t)
