(** Silent-n-state-SSR (Protocol 1; Cai, Izumi & Wada [22]).

    The baseline self-stabilizing ranking protocol: each agent holds
    [rank ∈ {0, …, n−1}]; when two agents with equal ranks meet, the
    responder advances to [(rank + 1) mod n]. It uses exactly [n] states —
    optimal by Theorem 2.1 — is silent, and stabilizes in Θ(n²) parallel
    time both in expectation and WHP (Table 1, row 1). The Ω(n²) worst case
    starts with two agents at rank 0, one at each of ranks 1..n−2 and none
    at rank n−1: the gap must be pushed up through n−1 consecutive
    bottleneck meetings of same-ranked pairs (Section 2).

    Exposed ranks are shifted to the paper's output convention [1..n]. *)

type state = private int
(** The internal 0-based rank. *)

val state_of_rank0 : n:int -> int -> state
(** [state_of_rank0 ~n r] injects a 0-based rank; requires
    [0 <= r < n]. *)

val protocol : n:int -> state Engine.Protocol.t
(** The protocol for exactly [n] agents (strongly nonuniform). The observed
    rank of internal state [r] is [r + 1]; the leader is rank 1. *)

val states : n:int -> int
(** Size of the state space: exactly [n]. *)

val enumerable : n:int -> state Engine.Enumerable.t
(** Static-analysis descriptor: the [n] declared states (Table 1, row 1),
    the rank-range invariant, and the silent-stabilization expectation. *)
