type form =
  | Noninc_count of Expr.cond
  | Noninc_max of { key : string; guard : Expr.cond }
  | Unique of { key : string; guard : Expr.cond }

type decl = { pname : string; form : form }

type verdict = Holds | Refuted of string | Inapplicable of string

type result = { decl : decl; verdict : verdict; checked_outcomes : int }

let pp_form fmt = function
  | Noninc_count c -> Format.fprintf fmt "noninc-count(%a)" Expr.pp_cond c
  | Noninc_max { key; guard } ->
      Format.fprintf fmt "noninc-max(%s when %a)" key Expr.pp_cond guard
  | Unique { key; guard } -> Format.fprintf fmt "unique(%s when %a)" key Expr.pp_cond guard

let pp_pair ir fmt (ci, cj) =
  let p = ir.Ir.enumerable.Engine.Enumerable.protocol in
  Format.fprintf fmt "(%a, %a)" p.Engine.Protocol.pp (Ir.decode ir ci) p.Engine.Protocol.pp
    (Ir.decode ir cj)

(* One inductiveness obligation: inputs (vi, vj) step to outputs (vo, vp)
   in a single coin outcome; return [Some msg] on violation. *)
let violation ~form ~sat ~guarded_key vi vj vo vp =
  match form with
  | Noninc_count _ ->
      let count a b = Bool.to_int (sat a) + Bool.to_int (sat b) in
      if count vo vp > count vi vj then
        Some (Printf.sprintf "count %d -> %d" (count vi vj) (count vo vp))
      else None
  | Noninc_max _ ->
      let keys a b = List.filter_map guarded_key [ a; b ] in
      let maxi = function [] -> None | l -> Some (List.fold_left max min_int l) in
      let m_in = maxi (keys vi vj) and m_out = maxi (keys vo vp) in
      (match (m_in, m_out) with
      | _, None -> None
      | None, Some x -> Some (Printf.sprintf "max -inf -> %d" x)
      | Some a, Some b -> if b > a then Some (Printf.sprintf "max %d -> %d" a b) else None)
  | Unique _ -> (
      match List.filter_map guarded_key [ vi; vj ] with
      | [ a; b ] when a = b -> None (* inputs already collide: vacuous *)
      | kin ->
          let kout = List.filter_map guarded_key [ vo; vp ] in
          let dup = match kout with [ a; b ] -> a = b | _ -> false in
          let fresh = List.exists (fun x -> not (List.mem x kin)) kout in
          if dup || fresh then
            Some
              (Printf.sprintf "guarded keys {%s} -> {%s}"
                 (String.concat "," (List.map string_of_int kin))
                 (String.concat "," (List.map string_of_int kout)))
          else None)

let check ir (trans : Trans.t) decl =
  let fields = Ir.field_names ir in
  match
    match decl.form with
    | Noninc_count c -> `Sat (Expr.compile ~fields c)
    | Noninc_max { key; guard } | Unique { key; guard } ->
        let g = Expr.compile ~fields guard and i = Expr.field_index ~fields key in
        `Guarded (fun v -> if g v then Some v.(i) else None)
  with
  | exception Expr.Unknown_field name ->
      {
        decl;
        verdict =
          Inapplicable
            (Printf.sprintf "field %S not in the IR (%s)" name
               (match ir.Ir.synthesized with
               | Some reason -> "synthesized: " ^ reason
               | None -> String.concat ", " fields));
        checked_outcomes = 0;
      }
  | compiled ->
      let sat, guarded_key =
        match compiled with
        | `Sat f -> (f, fun _ -> None)
        | `Guarded g -> ((fun _ -> false), g)
      in
      let size = trans.Trans.size in
      let vecs = Array.init size (fun c -> Ir.field_vec ir c) in
      let checked = ref 0 in
      let refutation = ref None in
      Array.iter
        (fun e ->
          if !refutation = None then
            List.iter
              (fun (oi, oj) ->
                incr checked;
                if !refutation = None then
                  match
                    violation ~form:decl.form ~sat ~guarded_key vecs.(e.Trans.ci)
                      vecs.(e.Trans.cj) vecs.(oi) vecs.(oj)
                  with
                  | Some msg ->
                      refutation :=
                        Some
                          (Format.asprintf "%a -> %a: %s" (pp_pair ir) (e.Trans.ci, e.Trans.cj)
                             (pp_pair ir) (oi, oj) msg)
                  | None -> ())
              e.Trans.outs)
        trans.Trans.edges;
      let verdict =
        match !refutation with None -> Holds | Some msg -> Refuted msg
      in
      { decl; verdict; checked_outcomes = !checked }

let catalogue ~key =
  match key with
  | "silent_n_state" ->
      [ { pname = "rank-uniqueness"; form = Unique { key = "rank0"; guard = Expr.True } } ]
  | "baseline" ->
      [
        {
          pname = "leader-count-nonincreasing";
          form = Noninc_count (Expr.Eq (Expr.Field "role", Expr.Const 0));
        };
      ]
  | "reset" | "reset_production" ->
      [
        {
          pname = "max-resetcount-nonincreasing";
          form =
            Noninc_max
              { key = "resetcount"; guard = Expr.Eq (Expr.Field "kind", Expr.Const 1) };
        };
      ]
  | _ -> []

let form_to_json f =
  let open Telemetry.Json in
  match f with
  | Noninc_count c -> List [ String "noninc-count"; Expr.cond_to_json c ]
  | Noninc_max { key; guard } ->
      List [ String "noninc-max"; String key; Expr.cond_to_json guard ]
  | Unique { key; guard } -> List [ String "unique"; String key; Expr.cond_to_json guard ]

let form_of_json j =
  let open Telemetry.Json in
  let ( let* ) = Result.bind in
  match j with
  | List [ String "noninc-count"; c ] ->
      let* c = Expr.cond_of_json c in
      Ok (Noninc_count c)
  | List [ String "noninc-max"; String key; g ] ->
      let* guard = Expr.cond_of_json g in
      Ok (Noninc_max { key; guard })
  | List [ String "unique"; String key; g ] ->
      let* guard = Expr.cond_of_json g in
      Ok (Unique { key; guard })
  | _ -> Error "props: unknown form"

let equal_form (a : form) (b : form) = a = b
