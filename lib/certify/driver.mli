(** Certification driver: IR lowering, symbolic passes, cross-validation
    against the concrete analyzer, verdict.

    Mirrors {!Analysis.Driver}'s no-fail-fast contract: every exception
    — descriptor build, IR lowering, any symbolic pass — becomes a
    failed [certify] stage on that one instance, never a crashed run, so
    one broken instance cannot mask the others' results. *)

type outcome = {
  stage : Analysis.Report.stage;
      (** appended to the instance's report; [Fail] only when the
          certificate verdict is [Failed] (or certification crashed) *)
  certificate : Certificate.t option;  (** [None] when certification crashed *)
}

val certify_enumerable :
  key:string -> report:Analysis.Report.t -> 'a Engine.Enumerable.t -> outcome
(** Certify one instance against its concrete report (the cross-checks
    read the report's stage verdicts). *)

val certify_entry : n:int -> report:Analysis.Report.t -> Analysis.Registry.entry -> outcome
(** Rebuild the entry's descriptor at [n] and certify; build failures
    become a failed stage. *)
