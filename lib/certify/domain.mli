(** Interval × parity abstract domain over a single packed field.

    The certifier abstracts every field of the IR by the product of the
    classic interval lattice and the three-point parity lattice: an
    element either is [Bot] (no value seen) or constrains a value [v] to
    [lo <= v <= hi] with [v mod 2] matching [parity]. The product is
    cheap, exact on the hulls the certifier needs (declared range,
    output range, eventual-core range), and the parity component catches
    off-by-one packing bugs intervals alone cannot (a field stepping by
    2 that claims a dense range). *)

type parity = Even | Odd | Either

type t = Bot | Range of { lo : int; hi : int; parity : parity }

val bot : t
val is_bot : t -> bool

val of_int : int -> t
(** The singleton abstraction of one concrete value. *)

val interval : lo:int -> hi:int -> t
(** The full interval [lo..hi] (parity [Either] unless [lo = hi]);
    [Bot] when [lo > hi]. *)

val join : t -> t -> t
val mem : int -> t -> bool

val leq : t -> t -> bool
(** Lattice order: [leq a b] iff every concretization of [a] is one of
    [b]. *)

val equal : t -> t -> bool

val to_json : t -> Telemetry.Json.t
(** [Bot] encodes as [null]; a range as
    [{"lo": int, "hi": int, "parity": "even"|"odd"|"either"}]. *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Strict inverse of {!to_json}. *)

val pp : Format.formatter -> t -> unit
