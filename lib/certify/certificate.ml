let schema = "ssr.certificate/v1"

type field_cert = {
  fname : string;
  declared : Domain.t;
  outputs : Domain.t;
  eventual : Domain.t;
}

type prop_verdict = Holds | Refuted | Inapplicable

type prop_cert = {
  pname : string;
  form : Props.form;
  verdict : prop_verdict;
  detail : string option;
  outcomes : int;
}

type ranking_cert =
  | Found of Ranking.atom list
  | Not_found of string
  | Skipped of string

type cross_verdict = Agree | Conflict | Na

type cross = { cname : string; cverdict : cross_verdict; cdetail : string }

type verdict = Certified | Partial | Failed

type t = {
  key : string;
  protocol : string;
  n : int;
  expectation : string;
  states : int;
  synthesized : string option;
  exact : bool option;
  static_pairs : int;
  dynamic_pairs : int;
  escape_count : int;
  fields : field_cert list;
  range_sound : bool;
  transient_states : int;
  core_states : int;
  narrowing_rounds : int;
  eventually_silent : bool;
  props : prop_cert list;
  ranking : ranking_cert;
  cross_checks : cross list;
  verdict : verdict;
}

let string_of_verdict = function
  | Certified -> "certified"
  | Partial -> "partial"
  | Failed -> "failed"

let verdict_of_string = function
  | "certified" -> Ok Certified
  | "partial" -> Ok Partial
  | "failed" -> Ok Failed
  | other -> Error (Printf.sprintf "certificate: unknown verdict %S" other)

let string_of_prop_verdict = function
  | Holds -> "holds"
  | Refuted -> "refuted"
  | Inapplicable -> "inapplicable"

let prop_verdict_of_string = function
  | "holds" -> Ok Holds
  | "refuted" -> Ok Refuted
  | "inapplicable" -> Ok Inapplicable
  | other -> Error (Printf.sprintf "certificate: unknown prop verdict %S" other)

let string_of_cross_verdict = function Agree -> "agree" | Conflict -> "conflict" | Na -> "n/a"

let cross_verdict_of_string = function
  | "agree" -> Ok Agree
  | "conflict" -> Ok Conflict
  | "n/a" -> Ok Na
  | other -> Error (Printf.sprintf "certificate: unknown cross verdict %S" other)

let equal (a : t) (b : t) = a = b

open Telemetry.Json

let opt_string = function None -> Null | Some s -> String s
let opt_bool = function None -> Null | Some b -> Bool b

let field_to_json f =
  Obj
    [
      ("name", String f.fname);
      ("declared", Domain.to_json f.declared);
      ("outputs", Domain.to_json f.outputs);
      ("eventual", Domain.to_json f.eventual);
    ]

let prop_to_json p =
  Obj
    [
      ("name", String p.pname);
      ("form", Props.form_to_json p.form);
      ("verdict", String (string_of_prop_verdict p.verdict));
      ("detail", opt_string p.detail);
      ("outcomes", Int p.outcomes);
    ]

let ranking_to_json = function
  | Found atoms -> Obj [ ("status", String "found"); ("atoms", Ranking.atoms_to_json atoms) ]
  | Not_found reason -> Obj [ ("status", String "not-found"); ("reason", String reason) ]
  | Skipped reason -> Obj [ ("status", String "skipped"); ("reason", String reason) ]

let cross_to_json c =
  Obj
    [
      ("check", String c.cname);
      ("verdict", String (string_of_cross_verdict c.cverdict));
      ("detail", String c.cdetail);
    ]

let to_json t =
  Obj
    [
      ("schema", String schema);
      ("key", String t.key);
      ("protocol", String t.protocol);
      ("n", Int t.n);
      ("expectation", String t.expectation);
      ("states", Int t.states);
      ("synthesized", opt_string t.synthesized);
      ("exact", opt_bool t.exact);
      ("static_pairs", Int t.static_pairs);
      ("dynamic_pairs", Int t.dynamic_pairs);
      ("escapes", Int t.escape_count);
      ("fields", List (List.map field_to_json t.fields));
      ("range_sound", Bool t.range_sound);
      ("transient_states", Int t.transient_states);
      ("eventual_core", Int t.core_states);
      ("narrowing_rounds", Int t.narrowing_rounds);
      ("eventually_silent", Bool t.eventually_silent);
      ("props", List (List.map prop_to_json t.props));
      ("ranking", ranking_to_json t.ranking);
      ("cross_checks", List (List.map cross_to_json t.cross_checks));
      ("verdict", String (string_of_verdict t.verdict));
    ]

let to_string t = to_string (to_json t)

let ( let* ) = Result.bind

let req name conv j =
  match Option.bind (member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "certificate: missing or ill-typed field %S" name)

let req_raw name j =
  match member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "certificate: missing field %S" name)

let opt_string_of name j =
  match member name j with
  | Some Null | None -> Ok None
  | Some (String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "certificate: field %S must be a string or null" name)

let opt_bool_of name j =
  match member name j with
  | Some Null | None -> Ok None
  | Some (Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "certificate: field %S must be a bool or null" name)

let list_of name conv j =
  let* l = req name to_list j in
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* v = conv x in
      Ok (v :: acc))
    (Ok []) l
  |> Result.map List.rev

let field_of_json j =
  let* fname = req "name" to_string_opt j in
  let* declared = Result.bind (req_raw "declared" j) Domain.of_json in
  let* outputs = Result.bind (req_raw "outputs" j) Domain.of_json in
  let* eventual = Result.bind (req_raw "eventual" j) Domain.of_json in
  Ok { fname; declared; outputs; eventual }

let prop_of_json j =
  let* pname = req "name" to_string_opt j in
  let* form = Result.bind (req_raw "form" j) Props.form_of_json in
  let* verdict = Result.bind (req "verdict" to_string_opt j) prop_verdict_of_string in
  let* detail = opt_string_of "detail" j in
  let* outcomes = req "outcomes" to_int j in
  Ok { pname; form; verdict; detail; outcomes }

let ranking_of_json j =
  let* status = req "status" to_string_opt j in
  match status with
  | "found" -> Result.bind (req_raw "atoms" j) Ranking.atoms_of_json |> Result.map (fun a -> Found a)
  | "not-found" ->
      req "reason" to_string_opt j |> Result.map (fun r : ranking_cert -> Not_found r)
  | "skipped" -> req "reason" to_string_opt j |> Result.map (fun r -> Skipped r)
  | other -> Error (Printf.sprintf "certificate: unknown ranking status %S" other)

let cross_of_json j =
  let* cname = req "check" to_string_opt j in
  let* cverdict = Result.bind (req "verdict" to_string_opt j) cross_verdict_of_string in
  let* cdetail = req "detail" to_string_opt j in
  Ok { cname; cverdict; cdetail }

let of_json j =
  let* s = req "schema" to_string_opt j in
  if not (String.equal s schema) then
    Error (Printf.sprintf "certificate: schema %S, expected %S" s schema)
  else
    let* key = req "key" to_string_opt j in
    let* protocol = req "protocol" to_string_opt j in
    let* n = req "n" to_int j in
    let* expectation = req "expectation" to_string_opt j in
    let* states = req "states" to_int j in
    let* synthesized = opt_string_of "synthesized" j in
    let* exact = opt_bool_of "exact" j in
    let* static_pairs = req "static_pairs" to_int j in
    let* dynamic_pairs = req "dynamic_pairs" to_int j in
    let* escape_count = req "escapes" to_int j in
    let* fields = list_of "fields" field_of_json j in
    let* range_sound = req "range_sound" to_bool j in
    let* transient_states = req "transient_states" to_int j in
    let* core_states = req "eventual_core" to_int j in
    let* narrowing_rounds = req "narrowing_rounds" to_int j in
    let* eventually_silent = req "eventually_silent" to_bool j in
    let* props = list_of "props" prop_of_json j in
    let* ranking = Result.bind (req_raw "ranking" j) ranking_of_json in
    let* cross_checks = list_of "cross_checks" cross_of_json j in
    let* verdict = Result.bind (req "verdict" to_string_opt j) verdict_of_string in
    Ok
      {
        key;
        protocol;
        n;
        expectation;
        states;
        synthesized;
        exact;
        static_pairs;
        dynamic_pairs;
        escape_count;
        fields;
        range_sound;
        transient_states;
        core_states;
        narrowing_rounds;
        eventually_silent;
        props;
        ranking;
        cross_checks;
        verdict;
      }

let of_string s = Result.bind (parse s) of_json
