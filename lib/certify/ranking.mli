(** Lexicographic ranking functions certified in the Dershowitz–Manna
    multiset order — convergence proofs valid for every population size.

    A candidate assigns each state the tuple of its field values read in
    a chosen order, each with a polarity (ascending: smaller value is
    smaller measure; descending: reversed), compared lexicographically.
    A configuration's measure is the multiset of its states' tuples. A
    pair interaction replaces (at most) two elements of that multiset;
    it is a strict Dershowitz–Manna decrease when something is removed
    and every added tuple is strictly below some removed one. If {e
    every} productive coin outcome of every ordered pair decreases, no
    infinite productive run exists for {e any} [n] under {e any}
    scheduler — the protocol is silent from every configuration. This
    is the certificate that covers counter-carrying instances whose
    configuration graphs the concrete model checker cannot enumerate. *)

type atom = { field : string; descending : bool }

type status =
  | Found of atom list
  | Not_found of string  (** witness from the declared-order candidate *)
  | Skipped of string

type t = { status : status; candidates : int; productive_pairs : int }

val synthesize : 'a Ir.t -> Trans.t -> t
(** Searches field orders × polarities (all permutations for up to 5
    fields, declared and reversed orders beyond that; declared order,
    all ascending first) and returns the first candidate that strictly
    decreases every productive outcome. Skipped unless the declared
    expectation is silent-stabilizing, and when escapes make the
    transition relation unsound. *)

val validate : 'a Ir.t -> Trans.t -> atom list -> (unit, string) result
(** Re-check a (possibly parsed-back) ranking against the relation —
    the certificate consumer's side of the proof. *)

val atoms_to_json : atom list -> Telemetry.Json.t
val atoms_of_json : Telemetry.Json.t -> (atom list, string) result
