type exp = Field of string | Const of int

type cond =
  | True
  | Eq of exp * exp
  | Le of exp * exp
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

exception Unknown_field of string

let field_index ~fields name =
  let rec find i = function
    | [] -> raise (Unknown_field name)
    | f :: rest -> if String.equal f name then i else find (i + 1) rest
  in
  find 0 fields

let compile_exp ~fields = function
  | Const k -> fun _vec -> k
  | Field name ->
      let i = field_index ~fields name in
      fun vec -> vec.(i)

let rec compile ~fields = function
  | True -> fun _vec -> true
  | Eq (a, b) ->
      let ea = compile_exp ~fields a and eb = compile_exp ~fields b in
      fun vec -> ea vec = eb vec
  | Le (a, b) ->
      let ea = compile_exp ~fields a and eb = compile_exp ~fields b in
      fun vec -> ea vec <= eb vec
  | Not c ->
      let e = compile ~fields c in
      fun vec -> not (e vec)
  | And (a, b) ->
      let ea = compile ~fields a and eb = compile ~fields b in
      fun vec -> ea vec && eb vec
  | Or (a, b) ->
      let ea = compile ~fields a and eb = compile ~fields b in
      fun vec -> ea vec || eb vec

let exp_to_json e =
  let open Telemetry.Json in
  match e with
  | Field name -> List [ String "field"; String name ]
  | Const k -> List [ String "const"; Int k ]

let rec cond_to_json c =
  let open Telemetry.Json in
  match c with
  | True -> List [ String "true" ]
  | Eq (a, b) -> List [ String "eq"; exp_to_json a; exp_to_json b ]
  | Le (a, b) -> List [ String "le"; exp_to_json a; exp_to_json b ]
  | Not c -> List [ String "not"; cond_to_json c ]
  | And (a, b) -> List [ String "and"; cond_to_json a; cond_to_json b ]
  | Or (a, b) -> List [ String "or"; cond_to_json a; cond_to_json b ]

let exp_of_json j =
  let open Telemetry.Json in
  match j with
  | List [ String "field"; String name ] -> Ok (Field name)
  | List [ String "const"; k ] -> (
      match to_int k with
      | Some k -> Ok (Const k)
      | None -> Error "expr: const needs an int")
  | _ -> Error "expr: expected [\"field\", name] or [\"const\", int]"

let rec cond_of_json j =
  let open Telemetry.Json in
  let ( let* ) = Result.bind in
  match j with
  | List [ String "true" ] -> Ok True
  | List [ String "eq"; a; b ] ->
      let* a = exp_of_json a in
      let* b = exp_of_json b in
      Ok (Eq (a, b))
  | List [ String "le"; a; b ] ->
      let* a = exp_of_json a in
      let* b = exp_of_json b in
      Ok (Le (a, b))
  | List [ String "not"; c ] ->
      let* c = cond_of_json c in
      Ok (Not c)
  | List [ String "and"; a; b ] ->
      let* a = cond_of_json a in
      let* b = cond_of_json b in
      Ok (And (a, b))
  | List [ String "or"; a; b ] ->
      let* a = cond_of_json a in
      let* b = cond_of_json b in
      Ok (Or (a, b))
  | _ -> Error "expr: unknown condition form"

let equal_cond (a : cond) (b : cond) = a = b

let pp_exp fmt = function
  | Field name -> Format.pp_print_string fmt name
  | Const k -> Format.pp_print_int fmt k

let rec pp_cond fmt = function
  | True -> Format.pp_print_string fmt "true"
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp_exp a pp_exp b
  | Le (a, b) -> Format.fprintf fmt "%a <= %a" pp_exp a pp_exp b
  | Not c -> Format.fprintf fmt "not (%a)" pp_cond c
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp_cond a pp_cond b
