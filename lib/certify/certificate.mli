(** Machine-checkable certificates, schema-versioned like Telemetry.

    One JSON document per catalogue instance, carrying every fact the
    symbolic certifier established — field hulls, range soundness, the
    eventual core, inductive invariants, the ranking function — plus the
    cross-checks against the concrete analyzer and the overall verdict:

    - [Certified]: range-sound, no invariant refuted, and convergence
      proven symbolically (ranking found and/or eventually silent);
    - [Partial]: all emitted facts are sound but no convergence claim is
      made (the expectation is not silent, or the proof search failed);
    - [Failed]: a range violation, a refuted declared invariant, or a
      conflict with the concrete analyzer.

    [of_json] is a strict parser for [to_json]'s output, so consumers
    can re-validate certificates without this library's internals. *)

val schema : string
(** ["ssr.certificate/v1"]. *)

type field_cert = {
  fname : string;
  declared : Domain.t;
  outputs : Domain.t;
  eventual : Domain.t;
}

type prop_verdict = Holds | Refuted | Inapplicable

type prop_cert = {
  pname : string;
  form : Props.form;
  verdict : prop_verdict;
  detail : string option;
  outcomes : int;
}

type ranking_cert =
  | Found of Ranking.atom list
  | Not_found of string
  | Skipped of string

type cross_verdict = Agree | Conflict | Na

type cross = { cname : string; cverdict : cross_verdict; cdetail : string }

type verdict = Certified | Partial | Failed

type t = {
  key : string;
  protocol : string;
  n : int;
  expectation : string;
  states : int;
  synthesized : string option;
  exact : bool option;
  static_pairs : int;
  dynamic_pairs : int;
  escape_count : int;
  fields : field_cert list;
  range_sound : bool;
  transient_states : int;
  core_states : int;
  narrowing_rounds : int;
  eventually_silent : bool;
  props : prop_cert list;
  ranking : ranking_cert;
  cross_checks : cross list;
  verdict : verdict;
}

val to_json : t -> Telemetry.Json.t
val to_string : t -> string
(** Canonical single-line encoding of {!to_json}. *)

val of_json : Telemetry.Json.t -> (t, string) result
val of_string : string -> (t, string) result
val equal : t -> t -> bool
val string_of_verdict : verdict -> string
