(** Interval + parity abstract interpretation over the symbolic
    transition relation.

    Three hulls per field, each valid for {e every} population size [n]
    sharing the state space (pairwise transitions are n-independent):

    - [declared]: the field's declared range [0..frange-1];
    - [outputs]: the hull of the field over every transition output —
      [outputs <= declared] plus an empty escape list is {e range
      soundness}: no interaction ever pushes a field out of range;
    - [eventual]: the hull over the {e eventual core}, the greatest set
      [O] of codes with [outputs(O x O) = O], computed by narrowing from
      the full code set. Under the uniform scheduler every agent
      interacts infinitely often almost surely, so every state outside
      [outputs(S x S)] is transient and, inductively, every agent is
      eventually inside the core with probability 1.

    [eventually_silent] holds when no pair inside the core is productive
    — then the protocol is almost surely eventually silent from every
    configuration at every [n], a claim the concrete model checker can
    only spot-check at enumerable sizes. *)

type field_hull = {
  fname : string;
  declared : Domain.t;
  outputs : Domain.t;
  eventual : Domain.t;
}

type t = {
  fields : field_hull list;
  range_sound : bool;  (** no escapes and every output hull within declared *)
  transient_states : int;  (** codes never produced by any interaction *)
  core_states : int;
  rounds : int;  (** narrowing iterations to reach the fixpoint *)
  core_productive_pairs : int;  (** productive pairs with both ends in the core *)
  eventually_silent : bool;  (** [core_productive_pairs = 0] *)
}

val run : 'a Ir.t -> Trans.t -> t
