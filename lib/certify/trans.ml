type edge = {
  ci : int;
  cj : int;
  outs : (int * int) list;
  dynamic : bool;
}

type t = {
  size : int;
  edges : edge array;
  escapes : string list;
  escape_count : int;
  static_pairs : int;
  dynamic_pairs : int;
  productive_pairs : int;
}

let productive_out edge (oi, oj) =
  not ((oi = edge.ci && oj = edge.cj) || (oi = edge.cj && oj = edge.ci))

let productive edge = List.exists (productive_out edge) edge.outs

let of_ir ir =
  let size = Ir.size ir in
  let e = ir.Ir.enumerable in
  let p = e.Engine.Enumerable.protocol in
  let max_draws = e.Engine.Enumerable.max_draws in
  let escapes = ref [] and escape_count = ref 0 in
  let record_escape msg =
    incr escape_count;
    if !escape_count <= Analysis.Report.max_findings then escapes := msg :: !escapes
  in
  let statics = ref 0 and dynamics = ref 0 and productives = ref 0 in
  (* Exact synthetic-coin enumeration for pairs the memo table does not
     cover; [dynamic] iff some outcome actually drew. *)
  let enumerated ci cj =
    let a = Ir.decode ir ci and b = Ir.decode ir cj in
    match
      Analysis.Coins.enumerate ~max_draws (fun rng -> p.Engine.Protocol.transition rng a b)
    with
    | exception exn ->
        record_escape
          (Format.asprintf "pair (%a, %a): enumeration failed: %s" p.Engine.Protocol.pp a
             p.Engine.Protocol.pp b (Printexc.to_string exn));
        ([], true)
    | outcomes ->
        let outs =
          List.filter_map
            (fun { Analysis.Coins.value = a', b'; _ } ->
              match (Ir.encode_opt ir a', Ir.encode_opt ir b') with
              | Some oi, Some oj -> Some (oi, oj)
              | _ ->
                  record_escape
                    (Format.asprintf
                       "pair (%a, %a) -> (%a, %a): output escapes the declared space"
                       p.Engine.Protocol.pp a p.Engine.Protocol.pp b p.Engine.Protocol.pp a'
                       p.Engine.Protocol.pp b');
                  None)
            outcomes
        in
        let drew =
          List.exists (fun o -> o.Analysis.Coins.trace <> []) outcomes
        in
        (outs, drew)
  in
  let edges =
    Array.init (size * size) (fun cell ->
        let ci = cell / size and cj = cell mod size in
        let outs, dynamic =
          match Ir.table_lookup ir ci cj with
          | Some out -> ([ out ], false)
          | None -> enumerated ci cj
        in
        let edge = { ci; cj; outs; dynamic } in
        if edge.dynamic then incr dynamics else incr statics;
        if productive edge then incr productives;
        edge)
  in
  {
    size;
    edges;
    escapes = List.rev !escapes;
    escape_count = !escape_count;
    static_pairs = !statics;
    dynamic_pairs = !dynamics;
    productive_pairs = !productives;
  }
