type parity = Even | Odd | Either

type t = Bot | Range of { lo : int; hi : int; parity : parity }

let bot = Bot
let is_bot = function Bot -> true | Range _ -> false

let parity_of_int v = if v land 1 = 0 then Even else Odd

let of_int v = Range { lo = v; hi = v; parity = parity_of_int v }

let interval ~lo ~hi =
  if lo > hi then Bot
  else if lo = hi then of_int lo
  else Range { lo; hi; parity = Either }

let join_parity a b =
  match (a, b) with
  | Even, Even -> Even
  | Odd, Odd -> Odd
  | Even, Odd | Odd, Even | Either, _ | _, Either -> Either

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Range a, Range b ->
      Range { lo = min a.lo b.lo; hi = max a.hi b.hi; parity = join_parity a.parity b.parity }

let mem v = function
  | Bot -> false
  | Range { lo; hi; parity } -> (
      v >= lo && v <= hi
      && match parity with Either -> true | Even | Odd -> parity_of_int v = parity)

let parity_leq a b =
  match (a, b) with Even, Even | Odd, Odd | _, Either -> true | _, (Even | Odd) -> false

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | Range _, Bot -> false
  | Range a, Range b -> a.lo >= b.lo && a.hi <= b.hi && parity_leq a.parity b.parity

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Range a, Range b -> a.lo = b.lo && a.hi = b.hi && a.parity = b.parity
  | Bot, Range _ | Range _, Bot -> false

let string_of_parity = function Even -> "even" | Odd -> "odd" | Either -> "either"

let to_json = function
  | Bot -> Telemetry.Json.Null
  | Range { lo; hi; parity } ->
      Telemetry.Json.Obj
        [
          ("lo", Telemetry.Json.Int lo);
          ("hi", Telemetry.Json.Int hi);
          ("parity", Telemetry.Json.String (string_of_parity parity));
        ]

let of_json j =
  let open Telemetry.Json in
  match j with
  | Null -> Ok Bot
  | Obj _ -> (
      match
        ( Option.bind (member "lo" j) to_int,
          Option.bind (member "hi" j) to_int,
          Option.bind (member "parity" j) to_string_opt )
      with
      | Some lo, Some hi, Some p -> (
          match p with
          | "even" -> Ok (Range { lo; hi; parity = Even })
          | "odd" -> Ok (Range { lo; hi; parity = Odd })
          | "either" -> Ok (Range { lo; hi; parity = Either })
          | other -> Error (Printf.sprintf "domain: unknown parity %S" other))
      | _ -> Error "domain: range object needs int lo, int hi, string parity")
  | _ -> Error "domain: expected null or object"

let pp fmt = function
  | Bot -> Format.pp_print_string fmt "bot"
  | Range { lo; hi; parity } ->
      Format.fprintf fmt "[%d..%d]%s" lo hi
        (match parity with Even -> " even" | Odd -> " odd" | Either -> "")
