type outcome = {
  stage : Analysis.Report.stage;
  certificate : Certificate.t option;
}

let find_stage (report : Analysis.Report.t) name =
  List.find_opt (fun s -> String.equal s.Analysis.Report.stage name) report.Analysis.Report.stages

let stage_metric report stage_name metric =
  Option.bind (find_stage report stage_name) (fun s ->
      List.assoc_opt metric s.Analysis.Report.metrics)

(* Cross-validation against the concrete analyzer: both sides decide
   overlapping facts by entirely different means, so any disagreement is
   a bug in one of them and fails the certificate. The concrete model
   check can refute what the symbolic pass cannot prove — asymmetries
   where only one side reaches a verdict are [Na], not conflicts. *)
let cross_checks ~report ~(e : _ Engine.Enumerable.t) ~(trans : Trans.t) ~states
    ~convergence_claim =
  let open Certificate in
  let state_count =
    match stage_metric report "state-count" "states" with
    | Some s when int_of_string_opt s = Some states ->
        { cname = "state-count"; cverdict = Agree; cdetail = Printf.sprintf "%d states" states }
    | Some s ->
        {
          cname = "state-count";
          cverdict = Conflict;
          cdetail = Printf.sprintf "concrete %s states, symbolic %d" s states;
        }
    | None -> { cname = "state-count"; cverdict = Na; cdetail = "no concrete state count" }
  in
  let closure =
    match find_stage report "closure" with
    | Some { Analysis.Report.status = Analysis.Report.Pass; _ } when trans.Trans.escape_count = 0
      ->
        { cname = "closure"; cverdict = Agree; cdetail = "both sides: no escapes" }
    | Some { Analysis.Report.status = Analysis.Report.Fail; _ }
      when trans.Trans.escape_count > 0 ->
        { cname = "closure"; cverdict = Agree; cdetail = "both sides report escapes" }
    | Some { Analysis.Report.status = Analysis.Report.Skip; _ } | None ->
        { cname = "closure"; cverdict = Na; cdetail = "no concrete closure verdict" }
    | Some { Analysis.Report.status; _ } ->
        {
          cname = "closure";
          cverdict = Conflict;
          cdetail =
            Printf.sprintf "concrete closure %s, symbolic escapes %d"
              (Analysis.Report.string_of_status status)
              trans.Trans.escape_count;
        }
  in
  let determinism =
    let declared = e.Engine.Enumerable.protocol.Engine.Protocol.deterministic in
    let observed = trans.Trans.dynamic_pairs = 0 in
    if declared = observed then
      {
        cname = "determinism";
        cverdict = Agree;
        cdetail =
          Printf.sprintf "declared %B, %d dynamic pairs" declared trans.Trans.dynamic_pairs;
      }
    else
      {
        cname = "determinism";
        cverdict = Conflict;
        cdetail =
          Printf.sprintf "declared deterministic=%B but %d dynamic pairs" declared
            trans.Trans.dynamic_pairs;
      }
  in
  let model_check =
    match find_stage report "model-check" with
    | Some { Analysis.Report.status = Analysis.Report.Pass; _ } ->
        if convergence_claim then
          { cname = "model-check"; cverdict = Agree; cdetail = "both sides prove stabilization" }
        else
          {
            cname = "model-check";
            cverdict = Na;
            cdetail = "concrete proof at this n; symbolic proof incomplete";
          }
    | Some { Analysis.Report.status = Analysis.Report.Fail; _ } ->
        if convergence_claim then
          {
            cname = "model-check";
            cverdict = Conflict;
            cdetail = "symbolic convergence claim vs concrete refutation";
          }
        else
          {
            cname = "model-check";
            cverdict = Na;
            cdetail = "concrete refutation; no symbolic claim to contradict";
          }
    | Some { Analysis.Report.status = Analysis.Report.Skip; _ } | None ->
        {
          cname = "model-check";
          cverdict = Na;
          cdetail = "concrete check skipped (over budget): symbolic certificate is the only coverage";
        }
  in
  [ state_count; closure; determinism; model_check ]

let certify_enumerable ~key ~report (e : _ Engine.Enumerable.t) =
  match
    (try
       let ir = Ir.Passes.pipeline e in
       let trans = Trans.of_ir ir in
       let abs = Absint.run ir trans in
       let props = List.map (Props.check ir trans) (Props.catalogue ~key) in
       let ranking = Ranking.synthesize ir trans in
       Ok (ir, trans, abs, props, ranking)
     with exn -> Error exn)
  with
  | Error exn ->
      {
        stage =
          Analysis.Report.finish
            ~findings:[ "certification crashed: " ^ Printexc.to_string exn ]
            ~total:1 "certify";
        certificate = None;
      }
  | Ok (ir, trans, abs, props, ranking) ->
      let p = e.Engine.Enumerable.protocol in
      let states = Ir.size ir in
      let ranking_cert =
        match ranking.Ranking.status with
        | Ranking.Found atoms -> Certificate.Found atoms
        | Ranking.Not_found reason -> Certificate.Not_found reason
        | Ranking.Skipped reason -> Certificate.Skipped reason
      in
      let ranking_found = match ranking_cert with Certificate.Found _ -> true | _ -> false in
      let convergence_claim =
        abs.Absint.range_sound && (ranking_found || abs.Absint.eventually_silent)
      in
      let crosses = cross_checks ~report ~e ~trans ~states ~convergence_claim in
      let prop_certs =
        List.map
          (fun (r : Props.result) ->
            let verdict, detail =
              match r.Props.verdict with
              | Props.Holds -> (Certificate.Holds, None)
              | Props.Refuted msg -> (Certificate.Refuted, Some msg)
              | Props.Inapplicable msg -> (Certificate.Inapplicable, Some msg)
            in
            {
              Certificate.pname = r.Props.decl.Props.pname;
              form = r.Props.decl.Props.form;
              verdict;
              detail;
              outcomes = r.Props.checked_outcomes;
            })
          props
      in
      let refuted =
        List.filter
          (fun (p : Certificate.prop_cert) -> p.Certificate.verdict = Certificate.Refuted)
          prop_certs
      in
      let conflicts =
        List.filter (fun c -> c.Certificate.cverdict = Certificate.Conflict) crosses
      in
      let verdict =
        if (not abs.Absint.range_sound) || refuted <> [] || conflicts <> [] then
          Certificate.Failed
        else if convergence_claim then Certificate.Certified
        else Certificate.Partial
      in
      let cert =
        {
          Certificate.key;
          protocol = p.Engine.Protocol.name;
          n = p.Engine.Protocol.n;
          expectation =
            Format.asprintf "%a" Engine.Enumerable.pp_expectation
              e.Engine.Enumerable.expectation;
          states;
          synthesized = ir.Ir.synthesized;
          exact = ir.Ir.exact;
          static_pairs = trans.Trans.static_pairs;
          dynamic_pairs = trans.Trans.dynamic_pairs;
          escape_count = trans.Trans.escape_count;
          fields =
            List.map
              (fun (h : Absint.field_hull) ->
                {
                  Certificate.fname = h.Absint.fname;
                  declared = h.Absint.declared;
                  outputs = h.Absint.outputs;
                  eventual = h.Absint.eventual;
                })
              abs.Absint.fields;
          range_sound = abs.Absint.range_sound;
          transient_states = abs.Absint.transient_states;
          core_states = abs.Absint.core_states;
          narrowing_rounds = abs.Absint.rounds;
          eventually_silent = abs.Absint.eventually_silent;
          props = prop_certs;
          ranking = ranking_cert;
          cross_checks = crosses;
          verdict;
        }
      in
      let findings =
        trans.Trans.escapes
        @ List.filter_map
            (fun (p : Certificate.prop_cert) ->
              match (p.Certificate.verdict, p.Certificate.detail) with
              | Certificate.Refuted, Some d ->
                  Some (Printf.sprintf "prop %s refuted: %s" p.Certificate.pname d)
              | Certificate.Refuted, None ->
                  Some (Printf.sprintf "prop %s refuted" p.Certificate.pname)
              | (Certificate.Holds | Certificate.Inapplicable), _ -> None)
            prop_certs
        @ List.map
            (fun (c : Certificate.cross) ->
              Printf.sprintf "cross-check %s: %s" c.Certificate.cname c.Certificate.cdetail)
            conflicts
      in
      let total =
        trans.Trans.escape_count + List.length refuted + List.length conflicts
      in
      let metrics =
        [
          ("verdict", Certificate.string_of_verdict verdict);
          ("core", Printf.sprintf "%d/%d" abs.Absint.core_states states);
          ("transient", string_of_int abs.Absint.transient_states);
          ( "ranking",
            match ranking_cert with
            | Certificate.Found atoms ->
                "found:"
                ^ String.concat ","
                    (List.map
                       (fun (a : Ranking.atom) ->
                         a.Ranking.field ^ if a.Ranking.descending then "-" else "+")
                       atoms)
            | Certificate.Not_found _ -> "not-found"
            | Certificate.Skipped _ -> "skipped" );
          ( "props",
            Printf.sprintf "%d/%d hold"
              (List.length
                 (List.filter
                    (fun (p : Certificate.prop_cert) ->
                      p.Certificate.verdict = Certificate.Holds)
                    prop_certs))
              (List.length prop_certs) );
        ]
      in
      let stage =
        Analysis.Report.finish ~metrics
          ~findings:
            (if List.length findings > Analysis.Report.max_findings then
               List.filteri (fun i _ -> i < Analysis.Report.max_findings) findings
             else findings)
          ~total "certify"
      in
      { stage; certificate = Some cert }

let certify_entry ~n ~report (entry : Analysis.Registry.entry) =
  match (try Ok (entry.Analysis.Registry.build ~n) with exn -> Error exn) with
  | Ok (Analysis.Registry.Any e) ->
      certify_enumerable ~key:entry.Analysis.Registry.key ~report e
  | Error exn ->
      {
        stage =
          Analysis.Report.finish
            ~findings:[ "descriptor build failed: " ^ Printexc.to_string exn ]
            ~total:1 "certify";
        certificate = None;
      }
