type atom = { field : string; descending : bool }

type status =
  | Found of atom list
  | Not_found of string
  | Skipped of string

type t = { status : status; candidates : int; productive_pairs : int }

(* Strict lexicographic order on field tuples under the candidate's
   (index, polarity) list. *)
let lex_less resolved va vb =
  let rec go = function
    | [] -> false
    | (i, descending) :: rest ->
        let a = va.(i) and b = vb.(i) in
        if a = b then go rest else if descending then a > b else a < b
  in
  go resolved

(* One obligation: does outcome (oi, oj) of edge (ci, cj) strictly
   Dershowitz–Manna-decrease the configuration multiset? The multisets
   differ in at most two elements; cancel common ones, then every added
   tuple needs a strictly greater removed one. *)
let dm_decreases resolved vecs ci cj oi oj =
  let removed, added =
    if oi = ci then ([ cj ], [ oj ])
    else if oi = cj then ([ ci ], [ oj ])
    else if oj = ci then ([ cj ], [ oi ])
    else if oj = cj then ([ ci ], [ oi ])
    else ([ ci; cj ], [ oi; oj ])
  in
  List.for_all
    (fun a -> List.exists (fun r -> lex_less resolved vecs.(a) vecs.(r)) removed)
    added

let check_candidate resolved vecs (trans : Trans.t) =
  let failure = ref None in
  (try
     Array.iter
       (fun e ->
         List.iter
           (fun (oi, oj) ->
             if Trans.productive_out e (oi, oj)
                && not (dm_decreases resolved vecs e.Trans.ci e.Trans.cj oi oj)
             then begin
               failure := Some (e.Trans.ci, e.Trans.cj, oi, oj);
               raise Exit
             end)
           e.Trans.outs)
       trans.Trans.edges
   with Exit -> ());
  !failure

let resolve ~fields atoms =
  List.map (fun a -> (Expr.field_index ~fields a.field, a.descending)) atoms

let pp_failure ir fmt (ci, cj, oi, oj) =
  let p = ir.Ir.enumerable.Engine.Enumerable.protocol in
  let st = Ir.decode ir in
  Format.fprintf fmt "(%a, %a) -> (%a, %a)" p.Engine.Protocol.pp (st ci) p.Engine.Protocol.pp
    (st cj) p.Engine.Protocol.pp (st oi) p.Engine.Protocol.pp (st oj)

let validate ir trans atoms =
  let fields = Ir.field_names ir in
  match resolve ~fields atoms with
  | exception Expr.Unknown_field name ->
      Error (Printf.sprintf "ranking field %S not in the IR" name)
  | resolved -> (
      let vecs = Array.init trans.Trans.size (fun c -> Ir.field_vec ir c) in
      match check_candidate resolved vecs trans with
      | None -> Ok ()
      | Some failure ->
          Error
            (Format.asprintf "productive outcome does not decrease: %a" (pp_failure ir)
               failure))

(* All permutations of [l], the identity permutation first, in a stable
   deterministic order. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun (i, x) ->
          let rest = List.filteri (fun j _ -> j <> i) l in
          List.map (fun p -> x :: p) (permutations rest))
        (List.mapi (fun i x -> (i, x)) l)

let candidates fields =
  let k = List.length fields in
  let orders =
    if k <= 5 then permutations fields
    else [ fields; List.rev fields ]
  in
  (* Polarity mask bit f flips field f of the order; mask 0 (all
     ascending) first so the reported witness and the found candidate
     are stable. *)
  List.concat_map
    (fun order ->
      List.init (1 lsl k) (fun mask ->
          List.mapi (fun f field -> { field; descending = mask land (1 lsl f) <> 0 }) order))
    orders

let synthesize ir (trans : Trans.t) =
  let e = ir.Ir.enumerable in
  let productive_pairs = trans.Trans.productive_pairs in
  if e.Engine.Enumerable.expectation <> Engine.Enumerable.Silent_stabilizing then
    {
      status =
        Skipped
          (Format.asprintf "expectation %a is not silent-stabilizing"
             Engine.Enumerable.pp_expectation e.Engine.Enumerable.expectation);
      candidates = 0;
      productive_pairs;
    }
  else if trans.Trans.escape_count > 0 then
    {
      status = Skipped "transition relation has escapes; ranking would be unsound";
      candidates = 0;
      productive_pairs;
    }
  else begin
    let fields = Ir.field_names ir in
    let vecs = Array.init trans.Trans.size (fun c -> Ir.field_vec ir c) in
    let tried = ref 0 in
    let first_witness = ref None in
    let rec search = function
      | [] -> None
      | atoms :: rest -> (
          incr tried;
          let resolved = resolve ~fields atoms in
          match check_candidate resolved vecs trans with
          | None -> Some atoms
          | Some failure ->
              if !first_witness = None then first_witness := Some failure;
              search rest)
    in
    let status =
      match search (candidates fields) with
      | Some atoms -> Found atoms
      | None ->
          Not_found
            (match !first_witness with
            | Some failure ->
                Format.asprintf
                  "no candidate decreases every productive outcome; declared order fails on %a"
                  (pp_failure ir) failure
            | None -> "no candidate fields")
    in
    { status; candidates = !tried; productive_pairs }
  end

let atoms_to_json atoms =
  Telemetry.Json.List
    (List.map
       (fun a ->
         Telemetry.Json.Obj
           [
             ("field", Telemetry.Json.String a.field);
             ("descending", Telemetry.Json.Bool a.descending);
           ])
       atoms)

let atoms_of_json j =
  let open Telemetry.Json in
  match j with
  | List l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest -> (
            match
              ( Option.bind (member "field" a) to_string_opt,
                Option.bind (member "descending" a) to_bool )
            with
            | Some field, Some descending -> go ({ field; descending } :: acc) rest
            | _ -> Error "ranking: atom needs string field, bool descending")
      in
      go [] l
  | _ -> Error "ranking: expected a list of atoms"
