(** Declared closure invariants, checked as pairwise-inductive over the
    symbolic transition relation.

    A property that is inductive over every ordered pair interaction —
    every coin outcome included — holds globally for every population
    size [n] and every reachable configuration once established, which
    is exactly the shape of the paper's closure lemmas (leader counts,
    rank uniqueness). The check is sound but incomplete: a true global
    invariant maintained only through multi-agent counting arguments
    (e.g. Optimal-Silent rank uniqueness, which relies on the tree
    structure) is not pairwise-inductive and will be {e refuted} here;
    the catalogue only declares properties that are. *)

type form =
  | Noninc_count of Expr.cond
      (** the number of pair members satisfying the condition never
          increases across any interaction *)
  | Noninc_max of { key : string; guard : Expr.cond }
      (** the maximum of [key] over pair members satisfying [guard]
          never increases (no guarded member = [-infinity]) *)
  | Unique of { key : string; guard : Expr.cond }
      (** no interaction manufactures a duplicate of a guarded [key]:
          when the two inputs do not already collide, the guarded output
          keys form a sub-multiset of the guarded input keys *)

type decl = { pname : string; form : form }

type verdict = Holds | Refuted of string | Inapplicable of string

type result = { decl : decl; verdict : verdict; checked_outcomes : int }

val check : 'a Ir.t -> Trans.t -> decl -> result

val catalogue : key:string -> decl list
(** The declared invariants per registry key (empty for protocols whose
    closure facts are not pairwise-inductive). *)

val form_to_json : form -> Telemetry.Json.t
val form_of_json : Telemetry.Json.t -> (form, string) Stdlib.result
val equal_form : form -> form -> bool
val pp_form : Format.formatter -> form -> unit
