type field_hull = {
  fname : string;
  declared : Domain.t;
  outputs : Domain.t;
  eventual : Domain.t;
}

type t = {
  fields : field_hull list;
  range_sound : bool;
  transient_states : int;
  core_states : int;
  rounds : int;
  core_productive_pairs : int;
  eventually_silent : bool;
}

let hull_of_codes vecs k codes =
  Array.init k (fun f ->
      List.fold_left (fun acc c -> Domain.join acc (Domain.of_int vecs.(c).(f))) Domain.bot codes)

let run ir (trans : Trans.t) =
  let size = trans.Trans.size in
  let fields = ir.Ir.fields in
  let k = List.length fields in
  let vecs = Array.init size (fun c -> Ir.field_vec ir c) in
  (* Output hull per field, over every outcome of every pair. *)
  let out_hull = Array.make k Domain.bot in
  let mark_out c =
    let v = vecs.(c) in
    for f = 0 to k - 1 do
      out_hull.(f) <- Domain.join out_hull.(f) (Domain.of_int v.(f))
    done
  in
  Array.iter
    (fun e -> List.iter (fun (oi, oj) -> mark_out oi; mark_out oj) e.Trans.outs)
    trans.Trans.edges;
  (* Narrowing to the eventual core: O_0 = all codes, O_{k+1} = the codes
     produced by pairs drawn from O_k (null pairs reproduce their inputs,
     so the sequence is decreasing). Live edges are compacted as the core
     shrinks, keeping each round proportional to |O_k|². *)
  let in_core = Array.make size true in
  let live = Array.copy trans.Trans.edges in
  let live_n = ref (Array.length live) in
  let transient_states = ref 0 in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    incr rounds;
    let produced = Array.make size false in
    let i = ref 0 in
    while !i < !live_n do
      let e = live.(!i) in
      if in_core.(e.Trans.ci) && in_core.(e.Trans.cj) then begin
        List.iter
          (fun (oi, oj) ->
            produced.(oi) <- true;
            produced.(oj) <- true)
          e.Trans.outs;
        incr i
      end
      else begin
        decr live_n;
        live.(!i) <- live.(!live_n)
      end
    done;
    changed := false;
    for c = 0 to size - 1 do
      if in_core.(c) && not produced.(c) then begin
        in_core.(c) <- false;
        changed := true
      end
    done;
    if !rounds = 1 then
      transient_states := size - Array.fold_left (fun acc p -> if p then acc + 1 else acc) 0 produced
  done;
  let core = ref [] in
  for c = size - 1 downto 0 do
    if in_core.(c) then core := c :: !core
  done;
  let core_productive_pairs = ref 0 in
  Array.iter
    (fun e ->
      if in_core.(e.Trans.ci) && in_core.(e.Trans.cj) && Trans.productive e then
        incr core_productive_pairs)
    trans.Trans.edges;
  let eventual = hull_of_codes vecs k !core in
  let range_sound = ref (trans.Trans.escape_count = 0) in
  let field_hulls =
    List.mapi
      (fun f (fd : Ir.field) ->
        let declared = Domain.interval ~lo:0 ~hi:(fd.Ir.frange - 1) in
        let outputs = out_hull.(f) in
        if not (Domain.leq outputs declared) then range_sound := false;
        { fname = fd.Ir.fname; declared; outputs; eventual = eventual.(f) })
      fields
  in
  {
    fields = field_hulls;
    range_sound = !range_sound;
    transient_states = !transient_states;
    core_states = List.length !core;
    rounds = !rounds;
    core_productive_pairs = !core_productive_pairs;
    eventually_silent = !core_productive_pairs = 0;
  }
