(** Field expressions and conditions over IR field vectors.

    The little language the declared closure invariants ({!Props}) are
    written in: an expression reads one field of a state's packed field
    vector or is a constant, a condition combines comparisons with
    boolean connectives. Conditions compile — field names resolved to
    vector indices once, against {!Ir.field_names} — into closures over
    [int array] field vectors, and serialize to JSON so certificates
    carry the exact predicate that was checked. *)

type exp = Field of string | Const of int

type cond =
  | True
  | Eq of exp * exp
  | Le of exp * exp
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

exception Unknown_field of string
(** Raised by compilation when a [Field] name is not among the IR's
    fields (e.g. a catalogue invariant applied to a synthesized IR). *)

val compile : fields:string list -> cond -> int array -> bool
(** [compile ~fields c] resolves every [Field] name to its index in
    [fields] (raising {!Unknown_field} eagerly) and returns the
    evaluator over field vectors of that arity. *)

val field_index : fields:string list -> string -> int
(** Index of a field name, raising {!Unknown_field}. *)

val cond_to_json : cond -> Telemetry.Json.t
(** S-expression-style arrays: [["eq", ["field", "kind"], ["const", 1]]]. *)

val cond_of_json : Telemetry.Json.t -> (cond, string) result
val equal_cond : cond -> cond -> bool
val pp_cond : Format.formatter -> cond -> unit
