(** The symbolic transition relation: every ordered code pair of a
    packed IR with the complete set of its output code pairs.

    Static pairs come straight from the memoized table ({!Ir.table_lookup});
    dynamic pairs (and every pair when memoization was skipped over
    budget) are enumerated exactly through the synthetic-coin tree
    ({!Analysis.Coins.enumerate}) on the decoded states. Outputs that
    leave the declared space — closure violations — are recorded as
    escape findings rather than raised, so the certifier can report them
    per instance. *)

type edge = {
  ci : int;
  cj : int;
  outs : (int * int) list;  (** output code pairs, one per coin outcome *)
  dynamic : bool;  (** the transition drew randomness on this pair *)
}

type t = {
  size : int;
  edges : edge array;  (** row-major: edge [(ci, cj)] at [ci * size + cj] *)
  escapes : string list;  (** first {!Analysis.Report.max_findings} diagnostics *)
  escape_count : int;
  static_pairs : int;
  dynamic_pairs : int;
  productive_pairs : int;  (** pairs with an outcome that changes the multiset *)
}

val productive_out : edge -> int * int -> bool
(** Does this outcome change the {e unordered} pair? Outputs equal to the
    inputs as a multiset (including the swap) leave the configuration
    unchanged. *)

val productive : edge -> bool

val of_ir : 'a Ir.t -> t
(** Requires a packed, dead-code-eliminated IR (memoization optional).
    Never raises on closure violations — see [escapes]. *)
