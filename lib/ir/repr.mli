(** Protocol intermediate representation.

    An ['a Repr.t] (surfaced as [Ir.t]) describes a protocol's finite
    state space as a vector of bounded integer {e fields} together with
    its transition relation, derived from an {!Engine.Enumerable}
    descriptor. It is the unit of work of the pass pipeline ({!Passes}):

    - {b pack} assigns every declared state a single int code by
      mixed-radix packing of its field values;
    - {b dead-code elimination} removes the junk codes of the packed
      product space (field combinations no declared — hence, by the
      closure analysis, no reachable — state occupies), renumbering the
      survivors densely, reusing {!Analysis.Statespace} as the ground
      truth for liveness;
    - {b memoize} tabulates the transition over all code pairs for small
      state spaces.

    The record is deliberately {e transparent}: passes are plain functions
    that pattern-match and rebuild it, and tests can assert on any
    intermediate stage. Mutating the arrays voids the warranty. *)

type field = { fname : string; frange : int }
(** A field declaration as the IR sees it: values in [0, frange). *)

type lookup = Dense of int array | Sparse of (int, int) Hashtbl.t
(** Code -> declared-state-index map. [Sparse] after packing (the product
    space may be astronomically larger than the declared space); [Dense]
    after dead-code elimination (codes are exactly [0..size-1]). *)

type table = { out_i : int array; out_j : int array }
(** Memoized transition: cell [ci * m + cj] holds the output codes, or
    [-1] in [out_i] when the pair is dynamic (draws randomness) and must
    fall back to the interpreted transition. *)

exception Escape of string
(** A state outside the declared space crossed the kernel boundary. *)

type 'a t = {
  enumerable : 'a Engine.Enumerable.t;
  space : 'a Analysis.Statespace.t;  (** interned declared state space *)
  fields : field list;
  getters : ('a -> int) list;  (** one per field, same order *)
  synthesized : string option;
      (** [Some reason] when the declared fields were unusable (or absent)
          and a single declared-state-index field was synthesized *)
  packed_codes : int;  (** product of field ranges *)
  code_of_index : int array option;  (** set by the pack pass *)
  index_of_code : lookup option;  (** set by pack, densified by DSE *)
  table : table option;  (** set by the memoize pass *)
  static_pairs : int;
  dynamic_pairs : int;
  exact : bool option;
      (** Known after memoization. [Some true] iff every static transition
          output is [protocol.equal] to its declared representative — then
          decode/encode is the identity on every trajectory and a compiled
          run is bit-identical to the interpreted one on either engine.
          [Some false]: outputs are normalized on encode (the kernel runs
          the bisimulation quotient): observables agree, same-seed raw
          state sequences need not. *)
  log : string list;  (** pass provenance, newest first *)
}

val of_enumerable : 'a Engine.Enumerable.t -> 'a t
(** Derive the IR. Declared fields are validated — every range positive,
    the product representable, every declared state in range, the field
    vector injective over the declared space — and replaced by a synthetic
    state-index field (with the reason logged and recorded in
    [synthesized]) if anything fails, so derivation itself never raises
    for a descriptor {!Analysis.Statespace} accepts. *)

val size : 'a t -> int
(** Number of declared states (= live codes after DSE). *)

val name : 'a t -> string

val encode_opt : 'a t -> 'a -> int option
(** Code of a state ([Engine.Enumerable] normalization applied), [None]
    when outside the declared space. Requires a packed IR. *)

val encode : 'a t -> 'a -> int
(** Like {!encode_opt} but raises {!Escape} with a diagnostic. *)

val decode : 'a t -> int -> 'a
(** Declared state of a live code. *)

val logged : 'a t -> string -> 'a t
(** Append a provenance line. *)

val pack_code : 'a t -> 'a -> int
(** Mixed-radix code of a state's field vector (no liveness check). *)

val field_names : 'a t -> string list
(** Field names in packing order (a single synthetic ["state-index"] when
    [synthesized] is set). *)

val field_vec : 'a t -> int -> int array
(** Field values of a live code, in packing order. Requires a packed IR. *)

val table_lookup : 'a t -> int -> int -> (int * int) option
(** Memoized output codes of the ordered pair [(ci, cj)], [None] when the
    pair is dynamic (draws randomness) or the IR is not memoized. Raises
    [Invalid_argument] on out-of-range codes. *)

val iter_static : 'a t -> (int -> int -> int -> int -> unit) -> unit
(** [iter_static t f] calls [f ci cj oi oj] for every static (coin-free)
    cell of the memoized table, in row-major code order. No-op when the IR
    is not memoized. *)

val pp : Format.formatter -> 'a t -> unit
(** Stable, reviewable dump: fields, code-space counts, transition-pair
    classification, pass log, and (for spaces of at most 64 states) the
    full code -> state map. The golden tests pin this output. *)
