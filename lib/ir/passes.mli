(** The optimizing pass pipeline over {!Repr.t}.

    Passes are applied in order — [pack], [eliminate_dead], [memoize] —
    and each records a provenance line in the IR's log. [pipeline] is the
    standard composition used by {!Kernel.compile}. *)

val pack : 'a Repr.t -> 'a Repr.t
(** Materialize the mixed-radix packing: a code for every declared state
    and a sparse inverse over the (possibly huge) product space. Raises
    [Invalid_argument] if already packed. *)

val eliminate_dead : 'a Repr.t -> 'a Repr.t
(** Dead-code elimination: drop the product-space codes no declared state
    occupies — by the closure analysis no reachable state can occupy them
    either — and renumber the survivors densely [0..size-1], preserving
    ascending code order. Requires a packed, not yet eliminated IR. *)

val default_max_cells : int
(** Default memoization budget, [2{^22}] table cells. *)

val memoize : ?max_cells:int -> 'a Repr.t -> 'a Repr.t
(** Tabulate the transition over all [size²] ordered code pairs when that
    fits [max_cells] (otherwise log the skip and return the IR unchanged).
    Each pair is probed once under a {!Prng.scripted} stream: pairs that
    complete without drawing are {e static} and tabulated; pairs that draw
    (or raise, as randomized transitions do under an empty script) are
    {e dynamic} and left to the interpreter at run time. Also decides the
    {!Repr.t.exact} flag. Requires a dead-code-eliminated IR; raises
    {!Repr.Escape} if a static output leaves the declared space. *)

val pipeline : ?max_cells:int -> 'a Engine.Enumerable.t -> 'a Repr.t
(** [of_enumerable |> pack |> eliminate_dead |> memoize]. *)
