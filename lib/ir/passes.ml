let pack (ir : 'a Repr.t) =
  match ir.Repr.code_of_index with
  | Some _ -> invalid_arg "Passes.pack: IR already packed"
  | None ->
      let s = Repr.size ir in
      let code_of_index = Array.make s 0 in
      let sparse = Hashtbl.create (2 * s) in
      for i = 0 to s - 1 do
        let code = Repr.pack_code ir (Analysis.Statespace.state ir.Repr.space i) in
        code_of_index.(i) <- code;
        Hashtbl.replace sparse code i
      done;
      Repr.logged
        {
          ir with
          Repr.code_of_index = Some code_of_index;
          index_of_code = Some (Repr.Sparse sparse);
        }
        (Printf.sprintf "pack: %d field(s) -> %d of %d product codes live"
           (List.length ir.Repr.fields) s ir.Repr.packed_codes)

let eliminate_dead (ir : 'a Repr.t) =
  match (ir.Repr.code_of_index, ir.Repr.index_of_code) with
  | None, _ | _, None -> invalid_arg "Passes.eliminate_dead: IR not packed yet"
  | _, Some (Repr.Dense _) -> invalid_arg "Passes.eliminate_dead: already eliminated"
  | Some old_codes, Some (Repr.Sparse _) ->
      let s = Array.length old_codes in
      (* Renumber live codes densely, preserving ascending packed order. *)
      let sorted = Array.copy old_codes in
      Array.sort compare sorted;
      let rank code =
        let lo = ref 0 and hi = ref (s - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if sorted.(mid) < code then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      let code_of_index = Array.map rank old_codes in
      let dense = Array.make s 0 in
      Array.iteri (fun i code -> dense.(code) <- i) code_of_index;
      let dead = ir.Repr.packed_codes - s in
      Repr.logged
        {
          ir with
          Repr.code_of_index = Some code_of_index;
          index_of_code = Some (Repr.Dense dense);
        }
        (Printf.sprintf "dead-code: eliminated %d of %d codes (live %d)" dead
           ir.Repr.packed_codes s)

let default_max_cells = 1 lsl 22

(* One probe per ordered pair: run the transition under an empty scripted
   stream. A transition that completes without drawing is static — by the
   Prng.scripted contract its control flow depends only on its inputs, so
   the recorded outputs are the outputs. A transition that draws (which
   under an empty script raises before any randomness is consumed) is
   dynamic and must be interpreted at run time with the real rng. *)
let probe transition a b =
  match
    let rng = Prng.scripted [] in
    let out = transition rng a b in
    (out, Prng.script_trace rng)
  with
  | out, [] -> `Static out
  | _, _ :: _ -> `Dynamic
  | exception _ -> `Dynamic

let memoize ?(max_cells = default_max_cells) (ir : 'a Repr.t) =
  match ir.Repr.index_of_code with
  | None | Some (Repr.Sparse _) ->
      invalid_arg "Passes.memoize: IR not dead-code-eliminated yet"
  | Some (Repr.Dense _) ->
      let m = Repr.size ir in
      if m > max_cells / m then
        Repr.logged ir
          (Printf.sprintf "memoize: skipped, %d^2 cells exceed budget %d" m max_cells)
      else begin
        let p = ir.Repr.enumerable.Engine.Enumerable.protocol in
        let out_i = Array.make (m * m) (-1) in
        let out_j = Array.make (m * m) (-1) in
        let static = ref 0 and dynamic = ref 0 in
        let exact = ref true in
        for ci = 0 to m - 1 do
          let a = Repr.decode ir ci in
          for cj = 0 to m - 1 do
            let b = Repr.decode ir cj in
            match probe p.Engine.Protocol.transition a b with
            | `Dynamic -> incr dynamic
            | `Static (a', b') ->
                let ci' = Repr.encode ir a' and cj' = Repr.encode ir b' in
                incr static;
                exact :=
                  !exact
                  && p.Engine.Protocol.equal a' (Repr.decode ir ci')
                  && p.Engine.Protocol.equal b' (Repr.decode ir cj');
                out_i.((ci * m) + cj) <- ci';
                out_j.((ci * m) + cj) <- cj'
          done
        done;
        Repr.logged
          {
            ir with
            Repr.table = Some { Repr.out_i; out_j };
            static_pairs = !static;
            dynamic_pairs = !dynamic;
            exact = Some !exact;
          }
          (Printf.sprintf "memoize: %d pairs (%d static, %d dynamic), %s" (m * m) !static
             !dynamic
             (if !exact then "exact" else "quotient"))
      end

let pipeline ?max_cells e =
  Repr.of_enumerable e |> pack |> eliminate_dead |> memoize ?max_cells
