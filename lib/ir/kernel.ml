type 'a t = {
  ir : 'a Repr.t;
  source : 'a Engine.Protocol.t;
  compiled : int Engine.Protocol.t;
  compile_s : float;
  memo_hits : int ref;
  dynamic_steps : int ref;
}

let states k = Repr.size k.ir
let encode k st = Repr.encode k.ir st
let decode k code = Repr.decode k.ir code
let step k rng ci cj = k.compiled.Engine.Protocol.transition rng ci cj
let exact k = k.ir.Repr.exact = Some true

let of_ir_timed ~t0 (ir : 'a Repr.t) =
  (match ir.Repr.index_of_code with
  | Some (Repr.Dense _) -> ()
  | Some (Repr.Sparse _) | None ->
      invalid_arg "Kernel.of_ir: IR must be dead-code eliminated first");
  let source = ir.Repr.enumerable.Engine.Enumerable.protocol in
  let m = Repr.size ir in
  (* Precompute per-code observations so the compiled protocol's monitor
     reads are array lookups, not decode + source observation. *)
  let rank_tbl = Array.init m (fun c -> source.Engine.Protocol.rank (Repr.decode ir c)) in
  let leader_tbl =
    Array.init m (fun c -> source.Engine.Protocol.is_leader (Repr.decode ir c))
  in
  let memo_hits = ref 0 and dynamic_steps = ref 0 in
  let dynamic rng ci cj =
    incr dynamic_steps;
    let a', b' = source.Engine.Protocol.transition rng (Repr.decode ir ci) (Repr.decode ir cj) in
    (Repr.encode ir a', Repr.encode ir b')
  in
  let transition =
    match ir.Repr.table with
    | None -> dynamic
    | Some { Repr.out_i; out_j } ->
        fun rng ci cj ->
          let cell = (ci * m) + cj in
          let i' = Array.unsafe_get out_i cell in
          if i' >= 0 then begin
            incr memo_hits;
            (i', Array.unsafe_get out_j cell)
          end
          else dynamic rng ci cj
  in
  let compiled =
    {
      Engine.Protocol.name = source.Engine.Protocol.name;
      n = source.Engine.Protocol.n;
      transition;
      deterministic = source.Engine.Protocol.deterministic;
      equal = Int.equal;
      pp = (fun fmt c -> source.Engine.Protocol.pp fmt (Repr.decode ir c));
      rank = (fun c -> rank_tbl.(c));
      is_leader = (fun c -> leader_tbl.(c));
    }
  in
  { ir; source; compiled; compile_s = Unix.gettimeofday () -. t0; memo_hits; dynamic_steps }

let of_ir ir = of_ir_timed ~t0:(Unix.gettimeofday ()) ir

let compile ?max_cells e =
  let t0 = Unix.gettimeofday () in
  of_ir_timed ~t0 (Passes.pipeline ?max_cells e)

let stats k =
  let ir = k.ir in
  let m = Repr.size ir in
  [
    ("kernel.states", float_of_int m);
    ("kernel.packed_codes", float_of_int ir.Repr.packed_codes);
    ("kernel.dead_codes", float_of_int (ir.Repr.packed_codes - m));
    ("kernel.table_cells", match ir.Repr.table with Some _ -> float_of_int (m * m) | None -> 0.);
    ("kernel.static_pairs", float_of_int ir.Repr.static_pairs);
    ("kernel.dynamic_pairs", float_of_int ir.Repr.dynamic_pairs);
    ("kernel.compile_s", k.compile_s);
    ("kernel.memo_hits", float_of_int !(k.memo_hits));
    ("kernel.dynamic_steps", float_of_int !(k.dynamic_steps));
    ("kernel.exact", if exact k then 1. else 0.);
  ]

let exec (type s) ?sampler ?classes ~kind (k : s t) ~(init : s array) ~rng : s Engine.Exec.t =
  let icodes = Array.map (encode k) init in
  let inner : int Engine.Exec.t =
    match (kind, sampler) with
    | Engine.Exec.Agent, Some sampler ->
        Engine.Exec.of_sim (Engine.Sim.make_with ~sampler ~protocol:k.compiled ~init:icodes ~rng)
    | Engine.Exec.Agent, None ->
        Engine.Exec.of_sim (Engine.Sim.make ~protocol:k.compiled ~init:icodes ~rng)
    | Engine.Exec.Count, None ->
        Engine.Exec.of_count_sim
          (Engine.Count_sim.make ?classes ~protocol:k.compiled ~init:icodes ~rng ())
    | Engine.Exec.Count, Some _ ->
        invalid_arg "Kernel.exec: the count engine has no scheduler hook"
  in
  let module Inner = (val inner) in
  (module struct
    type state = s

    let protocol = k.source
    let advance = Inner.advance
    let interactions = Inner.interactions
    let events = Inner.events
    let parallel_time = Inner.parallel_time
    let ranking_correct = Inner.ranking_correct
    let leader_correct = Inner.leader_correct
    let leader_count = Inner.leader_count
    let ranked_agents = Inner.ranked_agents
    let silent = Inner.silent
    let state i = decode k (Inner.state i)
    let snapshot () = Array.map (decode k) (Inner.snapshot ())
    let inject i st = Inner.inject i (encode k st)
    let corrupt ~rng ~fraction gen = Inner.corrupt ~rng ~fraction (fun g -> encode k (gen g))
    let on = Inner.on
    let emit = Inner.emit
    let stats () = Inner.stats () @ stats k
  end)
