type field = { fname : string; frange : int }
type lookup = Dense of int array | Sparse of (int, int) Hashtbl.t
type table = { out_i : int array; out_j : int array }

exception Escape of string

type 'a t = {
  enumerable : 'a Engine.Enumerable.t;
  space : 'a Analysis.Statespace.t;
  fields : field list;
  getters : ('a -> int) list;
  synthesized : string option;
  packed_codes : int;
  code_of_index : int array option;
  index_of_code : lookup option;
  table : table option;
  static_pairs : int;
  dynamic_pairs : int;
  exact : bool option;
  log : string list;
}

let size t = Analysis.Statespace.size t.space
let name t = t.enumerable.Engine.Enumerable.protocol.Engine.Protocol.name
let logged t msg = { t with log = msg :: t.log }

let pack_with fields getters st =
  List.fold_left2 (fun acc f get -> (acc * f.frange) + get st) 0 fields getters

let pack_code t st = pack_with t.fields t.getters st

(* Validate the declared fields against the interned space; [Error reason]
   triggers the synthetic-index fallback. *)
let check_fields (e : _ Engine.Enumerable.t) space fields getters =
  let s = Analysis.Statespace.size space in
  let product =
    List.fold_left
      (fun acc f ->
        match acc with
        | Error _ -> acc
        | Ok p ->
            if f.frange <= 0 then
              Error (Printf.sprintf "field %s has non-positive range %d" f.fname f.frange)
            else if p > max_int / f.frange then Error "field-range product overflows"
            else Ok (p * f.frange))
      (Ok 1) fields
  in
  match product with
  | Error _ as err -> err
  | Ok product ->
      let seen = Hashtbl.create (2 * s) in
      let rec states i =
        if i >= s then Ok product
        else
          let st = Analysis.Statespace.state space i in
          let bad =
            List.find_opt
              (fun (f, get) ->
                let v = get st in
                v < 0 || v >= f.frange)
              (List.combine fields getters)
          in
          match bad with
          | Some (f, get) ->
              Error
                (Format.asprintf "field %s reads %d outside 0..%d on state %a" f.fname
                   (get st) (f.frange - 1) e.Engine.Enumerable.protocol.Engine.Protocol.pp st)
          | None -> (
              let code = pack_with fields getters st in
              match Hashtbl.find_opt seen code with
              | Some prev ->
                  Error
                    (Format.asprintf "fields not injective: states %a and %a share code %d"
                       e.Engine.Enumerable.protocol.Engine.Protocol.pp
                       (Analysis.Statespace.state space prev)
                       e.Engine.Enumerable.protocol.Engine.Protocol.pp st code)
              | None ->
                  Hashtbl.add seen code i;
                  states (i + 1))
      in
      states 0

let of_enumerable (e : _ Engine.Enumerable.t) =
  let space = Analysis.Statespace.of_enumerable e in
  let s = Analysis.Statespace.size space in
  if s = 0 then invalid_arg "Ir.of_enumerable: empty declared state space";
  let declared =
    List.map
      (fun f -> ({ fname = f.Engine.Enumerable.fname; frange = f.Engine.Enumerable.frange }, f.Engine.Enumerable.fget))
      e.Engine.Enumerable.fields
  in
  let synthetic reason =
    let fields = [ { fname = "state-index"; frange = s } ] in
    let getters =
      [
        (fun st ->
          match Analysis.Statespace.index space st with Some i -> i | None -> -1);
      ]
    in
    (fields, getters, Some reason, s)
  in
  let fields, getters, synthesized, packed_codes =
    match declared with
    | [] -> synthetic "no fields declared"
    | _ -> (
        let fields = List.map fst declared and getters = List.map snd declared in
        match check_fields e space fields getters with
        | Ok product -> (fields, getters, None, product)
        | Error reason -> synthetic reason)
  in
  let derive_note =
    match synthesized with
    | None ->
        Printf.sprintf "derive: %d states, %d declared field(s), packed product %d" s
          (List.length fields) packed_codes
    | Some reason -> Printf.sprintf "derive: %d states, synthetic index field (%s)" s reason
  in
  {
    enumerable = e;
    space;
    fields;
    getters;
    synthesized;
    packed_codes;
    code_of_index = None;
    index_of_code = None;
    table = None;
    static_pairs = 0;
    dynamic_pairs = 0;
    exact = None;
    log = [ derive_note ];
  }

let encode_opt t st =
  match t.code_of_index with
  | None -> invalid_arg "Ir.encode: IR not packed yet"
  | Some codes -> (
      match Analysis.Statespace.index t.space st with
      | Some i -> Some codes.(i)
      | None -> None)

let encode t st =
  match encode_opt t st with
  | Some c -> c
  | None ->
      raise
        (Escape
           (Format.asprintf "%s: state %a escapes the declared space" (name t)
              t.enumerable.Engine.Enumerable.protocol.Engine.Protocol.pp st))

let decode t code =
  match t.index_of_code with
  | None -> invalid_arg "Ir.decode: IR not packed yet"
  | Some (Dense arr) ->
      if code < 0 || code >= Array.length arr then invalid_arg "Ir.decode: code out of range"
      else Analysis.Statespace.state t.space arr.(code)
  | Some (Sparse tbl) -> (
      match Hashtbl.find_opt tbl code with
      | Some i -> Analysis.Statespace.state t.space i
      | None -> invalid_arg "Ir.decode: dead code")

let field_names t = List.map (fun f -> f.fname) t.fields

let field_vec t code =
  let st = decode t code in
  Array.of_list (List.map (fun get -> get st) t.getters)

let table_lookup t ci cj =
  match t.table with
  | None -> None
  | Some { out_i; out_j } ->
      let m = size t in
      if ci < 0 || ci >= m || cj < 0 || cj >= m then
        invalid_arg "Ir.table_lookup: code out of range";
      let cell = (ci * m) + cj in
      let oi = out_i.(cell) in
      if oi < 0 then None else Some (oi, out_j.(cell))

let iter_static t f =
  match t.table with
  | None -> ()
  | Some { out_i; out_j } ->
      let m = size t in
      for ci = 0 to m - 1 do
        for cj = 0 to m - 1 do
          let cell = (ci * m) + cj in
          let oi = out_i.(cell) in
          if oi >= 0 then f ci cj oi out_j.(cell)
        done
      done

let pp fmt t =
  let p = t.enumerable.Engine.Enumerable.protocol in
  let s = size t in
  let lines = ref [] in
  let add format = Printf.ksprintf (fun line -> lines := line :: !lines) format in
  add "ir {";
  add "  protocol   : %s (n = %d)" p.Engine.Protocol.name p.Engine.Protocol.n;
  add "  states     : %d declared" s;
  add "  expectation: %s"
    (Format.asprintf "%a" Engine.Enumerable.pp_expectation
       t.enumerable.Engine.Enumerable.expectation);
  (match t.synthesized with
  | None -> add "  fields     : %d declared" (List.length t.fields)
  | Some reason -> add "  fields     : synthetic (%s)" reason);
  List.iter (fun f -> add "    %s in 0..%d" f.fname (f.frange - 1)) t.fields;
  (match t.index_of_code with
  | None -> add "  code space : packed %d (not materialized)" t.packed_codes
  | Some (Sparse _) -> add "  code space : packed %d, live %d (sparse)" t.packed_codes s
  | Some (Dense _) ->
      add "  code space : packed %d, live %d, dead %d" t.packed_codes s (t.packed_codes - s));
  (match t.table with
  | None -> add "  transition : not memoized"
  | Some _ ->
      add "  transition : %d static / %d dynamic pairs; %s" t.static_pairs t.dynamic_pairs
        (match t.exact with
        | Some true -> "exact (bitwise vs interpreter)"
        | Some false -> "quotient (outputs normalized on encode)"
        | None -> "unknown"));
  add "  passes     :";
  List.iter (fun line -> add "    %s" line) (List.rev t.log);
  (match t.index_of_code with
  | Some (Dense _) when s <= 64 ->
      add "  codes      :";
      for c = 0 to s - 1 do
        add "    %2d = %s" c (Format.asprintf "%a" p.Engine.Protocol.pp (decode t c))
      done
  | Some _ | None -> ());
  add "}";
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
    (List.rev !lines)
