(** Protocol IR and optimizing kernel compiler — public facade.

    [Ir.t] (= {!Repr.t}) is the protocol intermediate representation,
    [Ir.Passes] the pass pipeline, [Ir.Kernel] the compiled result. See
    each submodule's interface for the contracts. *)

include Repr
module Passes = Passes
module Kernel = Kernel
