(** Compiled protocol kernel.

    The end of the {!Passes} pipeline: a protocol running over packed int
    codes ([int -> int -> int * int] steps), with the pack/unpack
    witnesses needed to move states across the kernel boundary and the
    counters the executor surfaces as [kernel.*] stats.

    The compiled transition serves memoized {e static} pairs from the
    table with two array reads and no allocation; {e dynamic} pairs (and
    everything, when memoization was skipped) decode, run the source
    transition with the {e real} rng — so randomness consumption is
    identical to the interpreter's — and re-encode. Observations
    ([rank], [is_leader]) are precomputed per-code arrays, so the
    compiled protocol satisfies {!Engine.Protocol.validate} exactly when
    the source does. *)

type 'a t = {
  ir : 'a Repr.t;
  source : 'a Engine.Protocol.t;
  compiled : int Engine.Protocol.t;
      (** same [name]/[n]/[deterministic] as the source; [equal] is
          [Int.equal]; [pp] decodes *)
  compile_s : float;  (** wall-clock pipeline time, seconds *)
  memo_hits : int ref;
      (** steps served from the memo table. Plain (non-atomic) counters:
          an atomic RMW on the memoized fast path costs more than the
          table lookup it instruments. When one kernel is shared across
          domains ([--trials]) concurrent increments may lose updates —
          the counters are best-effort diagnostics, never semantics. *)
  dynamic_steps : int ref;  (** steps interpreted at run time (same caveat) *)
}

val compile : ?max_cells:int -> 'a Engine.Enumerable.t -> 'a t
(** Run the full {!Passes.pipeline} and build the kernel.
    [max_cells] bounds the memo table (see {!Passes.memoize}). *)

val of_ir : 'a Repr.t -> 'a t
(** Build a kernel from an already-lowered IR (must be dead-code
    eliminated; memoization optional). [compile_s] covers only the
    witness construction. *)

val encode : 'a t -> 'a -> int
(** Raises {!Repr.Escape} outside the declared space. *)

val decode : 'a t -> int -> 'a
val states : 'a t -> int

val step : 'a t -> Prng.t -> int -> int -> int * int
(** One compiled transition (the [compiled.transition]). *)

val exact : 'a t -> bool
(** [true] iff memoization proved the kernel {e exact}: every static
    output is its own declared representative, so compiled trajectories
    are bit-identical to interpreted ones under the same seed. [false]
    means quotient semantics (or that memoization was skipped and
    exactness is unknown): observables still agree, raw state sequences
    may differ by normalization. *)

val stats : 'a t -> (string * float) list
(** The [kernel.*] counters: [kernel.states], [kernel.packed_codes],
    [kernel.dead_codes], [kernel.table_cells], [kernel.static_pairs],
    [kernel.dynamic_pairs], [kernel.compile_s], [kernel.memo_hits],
    [kernel.dynamic_steps], [kernel.exact] (1/0). *)

val exec :
  ?sampler:(Prng.t -> int * int) ->
  ?classes:Engine.Topology.classes ->
  kind:Engine.Exec.kind ->
  'a t ->
  init:'a array ->
  rng:Prng.t ->
  'a Engine.Exec.t
(** Run the kernel on either engine behind the standard executor surface:
    the inner engine works on int codes, the wrapper encodes/decodes at
    the boundary ([state], [snapshot], [inject], [corrupt]) so callers
    see source states, and [stats] appends {!stats} to the engine's own.
    [sampler] customizes the agent scheduler ([Invalid_argument] with the
    count engine, which has no scheduler hook); [classes] is the count
    engine's degree-class lumping (see {!Engine.Count_sim.make}; ignored
    by the agent engine). Raises {!Repr.Escape} if [init] contains
    undeclared states. *)
