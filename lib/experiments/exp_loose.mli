(** Experiment LS: loose stabilization (the paper's "Problem variants").

    The timeout-based loosely-stabilizing protocol ({!Core.Loose}) needs
    only an upper bound N ≥ n, so — unlike every SSLE protocol, by
    Theorem 2.1 — one transition table serves several population sizes.
    The experiment demonstrates the trade the paper describes:

    - {e convergence}: a unique leader emerges from the all-followers
      configuration (fatal to initialized leader election) and from random
      configurations, in O(T_max) time, with the same [t_max] reused
      across different [n];
    - {e holding time}: the leader is only held for a finite time — a
      false timeout eventually mints a second leader — and the measured
      holding time blows up rapidly as [T_max] grows (the
      polynomial-vs-exponential slack trade-off cited from [56, 41]). *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
