(** Experiment EP: the probabilistic toolbox (Sections 1.1 and 2).

    Three measurements backing the paper's analysis machinery:
    - two-way epidemic completion ≈ ln n + Θ(1) parallel time;
    - bounded epidemic hitting times E[τ_k] = O(k·n^{1/k}) — the curve
      behind Sublinear-Time-SSR's detection latency (τ_{H+1});
    - roll call completion ≈ 1.5× the epidemic time. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
