(** Experiment TP: why the complete graph is the relevant (hardest) case.

    The paper's protocols assume the complete interaction graph; related
    work needs bespoke protocols for rings and other sparse topologies.
    This experiment runs the complete-graph machinery on other graphs:

    - the epidemic process completes in Θ(log n) on the complete graph and
      on random regular graphs, but needs Θ(n²)-ish time on the ring
      (information travels one hop per direct meeting) — the propagation
      primitive behind every fast bound degrades;
    - Optimal-Silent-SSR, whose rank-collision detection relies on the two
      colliding agents meeting directly, stops working when they are not
      adjacent: started with a planted duplicate placed on non-adjacent
      ring agents, the error is never detected and the run never recovers,
      while the complete graph always recovers. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
