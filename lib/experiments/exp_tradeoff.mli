(** Experiment T1.4: the time/space tradeoff of Sublinear-Time-SSR.

    Sweeping the history depth H at fixed n shows stabilization time
    falling as Θ(H·n^{1/(H+1)}) while the state estimate explodes; sweeping
    n at fixed H recovers the per-H scaling exponents 1/(H+1) of Table 1's
    last row. H = 0 is the direct-detection linear-time variant. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
