(** Registry of all experiments and the EXPERIMENTS.md generator. *)

type experiment = {
  name : string;
  description : string;
  run : mode:Exp_common.mode -> seed:int -> jobs:int -> string;
      (** [jobs] is the domain-pool width for the experiment's Monte Carlo
          batches; results are identical for every value (see
          {!Exp_common.run_trials}). *)
}

val all : experiment list
(** Every experiment, in the order of DESIGN.md's experiment index. *)

val find : string -> experiment option

val run_all : mode:Exp_common.mode -> seed:int -> jobs:int -> string
(** Concatenated reports of every experiment. *)
