(** Registry of all experiments and the EXPERIMENTS.md generator. *)

type experiment = {
  name : string;
  description : string;
  run : mode:Exp_common.mode -> seed:int -> string;
}

val all : experiment list
(** Every experiment, in the order of DESIGN.md's experiment index. *)

val find : string -> experiment option

val run_all : mode:Exp_common.mode -> seed:int -> string
(** Concatenated reports of every experiment. *)
