(** Experiment T1: reproduce Table 1 of the paper.

    For each protocol row, sweeps the population size over adversarial
    initial configurations, measures stabilization parallel time
    (expectation = mean, WHP = p95 over trials), fits the scaling exponent,
    verifies silence of the final configurations for the silent protocols,
    and reports the state-space column.

    Paper shapes this experiment must reproduce:
    - Silent-n-state-SSR: time ∝ n² (log-log slope ≈ 2), n states, silent;
    - Optimal-Silent-SSR: time ∝ n (slope ≈ 1), O(n) states, silent;
    - Sublinear-Time-SSR, H = ⌈log₂ n⌉: time ∝ log n (log-log slope ≪ 1),
      quasi-exponential states, not silent;
    - Sublinear-Time-SSR, fixed H: time ∝ n^{1/(H+1)} (slope ≈ 1/(H+1)). *)

val name : string
val description : string

val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
(** Rendered report: one measurement table per protocol row, the states
    table, and the scaling fits with their paper-predicted exponents. *)
