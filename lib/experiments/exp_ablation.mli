(** Experiment AB: ablation of the protocols' Θ-constants.

    The paper fixes parameters only asymptotically; this experiment sweeps
    the constants to show why the defaults of {!Core.Params} sit where they
    do, measuring stabilization time and the number of global reset waves
    per run:

    - [D_max = c·n] (Optimal-Silent-SSR): the dormant window must cover the
      slow leader election; small [c] leaves several leaders alive, so
      rank collisions force extra reset epochs (the paper's "constant
      probability the slow leader election fails" trade-off made visible);
    - [E_max = c·n]: the starvation alarm must outlast the ranking phase;
      small [c] fires false alarms that restart an otherwise healthy run;
    - [R_max = c·ln n]: the reset wave must outlive the epidemic depth;
      too-small [c] lets waves die out half-propagated, and recovery then
      needs several waves;
    - [T_H] (Sublinear-Time-SSR): short timers expire history before it
      reaches the impostor and detection degrades toward direct meetings;
      the sweep shows detection latency against the timer budget.

    Also compares the [Paper] and [Tuned] presets head to head. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
