let name = "table1"

let description = "Table 1: time and space of the three self-stabilizing ranking protocols"

let buffer_add_table buf title table =
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n"

let sweep ~buf ~title ~expected_exponent ~ns ~measure_one =
  let table = Stats.Table.create ~header:Exp_common.time_header in
  let points =
    List.map
      (fun n ->
        let m = measure_one n in
        Stats.Table.add_row table (Exp_common.time_row m);
        (n, m))
      ns
  in
  buffer_add_table buf title table;
  (match expected_exponent with
  | Some expo ->
      let fit = Exp_common.scaling_fit points in
      Buffer.add_string buf
        (Printf.sprintf "log-log fit: slope=%.3f (paper predicts %.3f), r2=%.4f\n\n"
           fit.Stats.Regression.slope expo fit.Stats.Regression.r2)
  | None ->
      let fit = Exp_common.semilog_fit points in
      Buffer.add_string buf
        (Printf.sprintf
           "time vs ln n fit: slope=%.3f per ln n, r2=%.4f (paper predicts Θ(log n))\n\n"
           fit.Stats.Regression.slope fit.Stats.Regression.r2));
  points

(* Aggregated (n, mean, ±95%) points for the scaling figure; sizes where
   every trial failed contribute no point. *)
let fit_points points =
  List.filter_map
    (fun (n, m) ->
      let times = m.Exp_common.times in
      if Array.length times = 0 then None
      else
        Some
          ( float_of_int n,
            Exp_common.mean_time m,
            if Array.length times < 2 then 0.0 else Stats.Summary.ci95_halfwidth times ))
    points

let silence_cells points =
  List.map
    (fun (_, m) ->
      Printf.sprintf "%d/%d silent" m.Exp_common.silent_ok m.Exp_common.silent_checked)
    points

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "== Experiment T1: Table 1 ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:30 in
  (* Row 1: Silent-n-state-SSR, Θ(n²), from uniform adversarial ranks. *)
  let ns1 = match mode with Exp_common.Quick -> [ 8; 16; 32; 64 ] | Exp_common.Full -> [ 8; 16; 32; 64; 128 ] in
  let row1 =
    sweep ~buf
      ~title:"Silent-n-state-SSR (uniform adversarial ranks, count engine) — paper: Θ(n²), silent"
      ~expected_exponent:(Some 2.0) ~ns:ns1 ~measure_one:(fun n ->
        let protocol = Core.Silent_n_state.protocol ~n in
        Exp_common.measure ~label:"silent-n-state" ~protocol
          ~init:(fun rng -> Core.Scenarios.silent_uniform rng ~n)
          ~task:Engine.Runner.Ranking
          ~expected_time:(float_of_int (n * n) /. 2.0)
          ~engine:Engine.Exec.Count ~jobs ~trials ~seed ())
  in
  Buffer.add_string buf
    (Printf.sprintf "silence of final configurations: %s\n\n"
       (String.concat ", " (silence_cells row1)));
  (* Row 2: Optimal-Silent-SSR, Θ(n), from uniform adversarial states —
     on the count engine, like row 1. The lazy kernel only probes cell
     pairs that actually become live, so Optimal-Silent's counter-carrying
     states no longer explode the closure the way the old eager probe
     fixpoint did (which is why this row used to be pinned to the agent
     engine). The sweep stops at n = 256: uniform adversarial starts make
     nearly every cell pair productive, so per-event adjacency walks grow
     with the live-cell count and a 30-trial n = 512 point alone costs
     ~2 CPU-hours — the engine's large-n payoff is the sparse regime
     (correct-start recovery, chaos soaks, the n = 10^6 scale-smoke run),
     not dense mid-n sweeps. *)
  let ns2 =
    match mode with Exp_common.Quick -> [ 16; 32; 64; 128 ] | Exp_common.Full -> [ 16; 32; 64; 128; 256 ]
  in
  let row2 =
    sweep ~buf
      ~title:"Optimal-Silent-SSR (uniform adversarial states, count engine) — paper: Θ(n), silent"
      ~expected_exponent:(Some 1.0) ~ns:ns2 ~measure_one:(fun n ->
        let params = Core.Params.optimal_silent n in
        let protocol = Core.Optimal_silent.protocol ~params ~n () in
        Exp_common.measure ~label:"optimal-silent" ~protocol
          ~init:(fun rng -> Core.Scenarios.optimal_uniform rng ~params ~n)
          ~task:Engine.Runner.Ranking
          ~expected_time:(float_of_int (20 * n))
          ~engine:Engine.Exec.Count ~jobs ~trials ~seed:(seed + 1) ())
  in
  Buffer.add_string buf
    (Printf.sprintf "silence of final configurations: %s\n\n"
       (String.concat ", " (silence_cells row2)));
  (* Row 3: Sublinear-Time-SSR with H = ⌈log₂ n⌉, Θ(log n), from the
     hardest scenario (hidden name collision). Population sizes stay small:
     the state space is quasi-exponential and the history trees genuinely
     reach ~n^H nodes (see DESIGN.md). *)
  let ns3 = match mode with Exp_common.Quick -> [ 4; 8; 12 ] | Exp_common.Full -> [ 4; 6; 8; 12; 16 ] in
  let row3 =
    sweep ~buf
      ~title:
        "Sublinear-Time-SSR, H=⌈log₂ n⌉ (hidden name collision) — paper: Θ(log n), not silent"
      ~expected_exponent:None ~ns:ns3 ~measure_one:(fun n ->
        let h = Core.Params.h_log n in
        let params = Core.Params.sublinear ~h n in
        let protocol = Core.Sublinear.protocol ~params ~n ~h () in
        Exp_common.measure ~label:"sublinear-log" ~protocol
          ~init:(fun rng -> Core.Scenarios.sublinear_name_collision rng ~params ~n)
          ~task:Engine.Runner.Ranking
          ~expected_time:(float_of_int (params.Core.Params.d_max + (4 * params.Core.Params.t_h) + 50))
          ~jobs ~trials ~seed:(seed + 2) ())
  in
  (* Row 4: Sublinear-Time-SSR with fixed H = 1: Θ(n^{1/2}). *)
  let ns4 = match mode with Exp_common.Quick -> [ 8; 16; 32 ] | Exp_common.Full -> [ 8; 16; 32; 64; 128 ] in
  let row4 =
    sweep ~buf
      ~title:"Sublinear-Time-SSR, H=1 (hidden name collision) — paper: Θ(H·n^{1/(H+1)}) = Θ(√n)"
      ~expected_exponent:(Some 0.5) ~ns:ns4 ~measure_one:(fun n ->
        let h = 1 in
        let params = Core.Params.sublinear ~h n in
        let protocol = Core.Sublinear.protocol ~params ~n ~h () in
        Exp_common.measure ~label:"sublinear-h1" ~protocol
          ~init:(fun rng -> Core.Scenarios.sublinear_name_collision rng ~params ~n)
          ~task:Engine.Runner.Ranking
          ~expected_time:(float_of_int (params.Core.Params.d_max + (4 * params.Core.Params.t_h) + 50))
          ~jobs ~trials ~seed:(seed + 3) ())
  in
  (* The Table-1 scaling figure: all four sweeps on one log-log chart
     with their regression overlays (a no-op unless experiments_main
     --out-dir installed a figure registry). *)
  Viz.Figures.emit "table1-slope"
    (Viz.Charts.slope_points ~title:"Table 1: convergence time vs population size"
       [
         ("silent-n-state", fit_points row1);
         ("optimal-silent", fit_points row2);
         ("sublinear-log", fit_points row3);
         ("sublinear-h1", fit_points row4);
       ]);
  (* States column. *)
  let table = Stats.Table.create ~header:[ "protocol"; "n"; "states"; "log2(states)" ] in
  List.iter
    (fun n ->
      List.iter
        (fun row ->
          Stats.Table.add_row table
            [
              row.Core.State_space.protocol;
              string_of_int n;
              (match row.Core.State_space.exact with Some c -> string_of_int c | None -> "≈2^(log2 col)");
              Stats.Table.cell_float row.Core.State_space.log2;
            ])
        (Core.State_space.table1_rows ~n))
    [ 16; 64; 256 ];
  buffer_add_table buf "States column (exact counts / log2 estimates)" table;
  (* Measured distinct states actually visited: an empirical lower bound
     witnessing that the linear-state protocols really use Θ(n) states
     (Theorem 2.1 forces >= n). Snapshots are taken throughout a run from
     an adversarial start. *)
  let measure_visited (type s) ~(protocol : s Engine.Protocol.t) ~init ~steps ~snapshots_every =
    let rng = Prng.create ~seed:(seed + 9) in
    let sim = Engine.Sim.make ~protocol ~init ~rng in
    let snapshots = ref [ Engine.Sim.snapshot sim ] in
    for _ = 1 to steps / snapshots_every do
      Engine.Sim.run sim snapshots_every;
      snapshots := Engine.Sim.snapshot sim :: !snapshots
    done;
    Core.State_space.count_distinct_visited ~equal:protocol.Engine.Protocol.equal
      ~snapshots:!snapshots
  in
  let table = Stats.Table.create ~header:[ "protocol"; "n"; "distinct states visited"; "theoretical" ] in
  let n = 16 in
  let rng = Prng.create ~seed:(seed + 8) in
  let visited_silent =
    measure_visited ~protocol:(Core.Silent_n_state.protocol ~n)
      ~init:(Core.Scenarios.silent_uniform rng ~n) ~steps:(40 * n * n) ~snapshots_every:(2 * n)
  in
  Stats.Table.add_row table
    [ "Silent-n-state-SSR"; string_of_int n; string_of_int visited_silent; string_of_int n ];
  let params = Core.Params.optimal_silent n in
  let visited_optimal =
    measure_visited
      ~protocol:(Core.Optimal_silent.protocol ~params ~n ())
      ~init:(Core.Scenarios.optimal_uniform rng ~params ~n)
      ~steps:(200 * n) ~snapshots_every:n
  in
  Stats.Table.add_row table
    [
      "Optimal-Silent-SSR";
      string_of_int n;
      string_of_int visited_optimal;
      string_of_int (Core.Optimal_silent.states ~params ~n);
    ];
  buffer_add_table buf
    "Distinct states visited in one adversarial run (empirical lower bound; Theorem 2.1 requires ≥ n)"
    table;
  Buffer.contents buf
