(** Experiment SN: the adversary catalogue, protocol by protocol.

    Self-stabilization quantifies over all configurations; this experiment
    sweeps every named adversarial scenario of {!Core.Scenarios} for each
    protocol at a fixed population size and reports stabilization time,
    failures and correctness violations (runs that looked correct and were
    then broken again — e.g. forged history trees provoking a justified
    reset after ranks already matched). One table per protocol: the per-
    adversary fingerprint of each algorithm. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
