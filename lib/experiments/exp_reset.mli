(** Experiment RS: Propagate-Reset completes in O(log n) (Section 3).

    Runs the {!Core.Reset} component in isolation (trivial computing
    states, Θ(log n) delay) from a configuration with a single triggered
    agent, and from fully-adversarial Resetting states, measuring the
    parallel time until the whole population computes again and the number
    of times each agent executed [Reset] (exactly once per wave, WHP).
    The fit of completion time against ln n checks the Θ(log n) claim. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
