let name = "exact"

let description = "Exhaustive Markov-chain validation of Silent-n-state-SSR at small n"

(* Both engines run through the same measurement policy; only the executor
   kind differs. On [Count] the exact-silence oracle reports stabilization
   with no confirmation window (for Silent-n-state-SSR correctness and
   silence coincide, so the entry point equals the silence time). *)
let simulate ~engine ~protocol ~init ~jobs ~trials ~seed =
  let n = protocol.Engine.Protocol.n in
  let times =
    Exp_common.run_trials ~jobs ~trials ~seed (fun rng ->
        let exec = Engine.Exec.make ~kind:engine ~protocol ~init ~rng () in
        let o =
          Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
            ~max_interactions:(1000 * n * n)
            ~confirm_interactions:(Engine.Runner.default_confirm ~n)
            exec
        in
        o.Engine.Runner.convergence_time)
  in
  Stats.Summary.mean times

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment EX: exhaustive small-n validation ==\n\n";
  let ns = match mode with Exp_common.Quick -> [ 3; 4; 5 ] | Exp_common.Full -> [ 3; 4; 5; 6; 7 ] in
  let trials = Exp_common.trials_of_mode mode ~base:3000 in
  let table =
    Stats.Table.create
      ~header:
        [
          "n"; "configs"; "absorbing"; "absorbing correct"; "worst exact"; "count-engine mean";
          "array-engine mean"; "rel err";
        ]
  in
  List.iter
    (fun n ->
      let protocol = Core.Silent_n_state.protocol ~n in
      let codec = Exact.Chain.silent_n_state_codec ~n in
      let a = Exact.Chain.analyze ~protocol ~codec in
      let exact, witness = Exact.Chain.worst_expected_time a in
      let count_mean =
        simulate ~engine:Engine.Exec.Count ~protocol ~init:witness ~jobs ~trials ~seed
      in
      let array_mean =
        simulate ~engine:Engine.Exec.Agent ~protocol ~init:witness ~jobs
          ~trials:(trials / 10) ~seed:(seed + 1)
      in
      Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int (Exact.Chain.configurations a);
          string_of_int (Exact.Chain.absorbing a);
          string_of_bool (Exact.Chain.all_absorbing_correct a);
          Stats.Table.cell_float ~decimals:3 exact;
          Stats.Table.cell_float ~decimals:3 count_mean;
          Stats.Table.cell_float ~decimals:3 array_mean;
          Stats.Table.cell_float ~decimals:4 (Float.abs (count_mean -. exact) /. exact);
        ])
    ns;
  Buffer.add_string buf
    "Worst-configuration stabilization: exact (solved chain) vs simulated means\n";
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf
    "\n\n(absorbing = 1 and 'absorbing correct' = true model-check self-stabilization:\n\
     the unique silent configuration is the correct ranking, from every start)\n";
  Buffer.contents buf
