let name = "scale"

let description = "Table 1 row 1 at scale: exact Θ(n²) stabilization via the count-based engine"

(* Same measurement policy as every other experiment ([Exp_common.measure]
   driving [Engine.Runner]), just on the count-based executor: the
   exact-silence oracle reports stabilization with no confirmation window,
   so populations of several thousands stay cheap. *)
let measure ~scenario ~make_init ~ns ~jobs ~trials ~seed buf =
  let table =
    Stats.Table.create
      ~header:[ "n"; "trials"; "mean time"; "±95%"; "p95"; "events mean"; "theory (n-1)²/2"; "mean/theory" ]
  in
  let points =
    List.map
      (fun n ->
        let protocol = Core.Silent_n_state.protocol ~n in
        let theory = Stats.Theory.quadratic_barrier_time n in
        let m =
          Exp_common.measure ~label:"silent-n-state-scale" ~protocol
            ~init:(fun rng -> make_init rng ~n)
            ~task:Engine.Runner.Ranking ~expected_time:theory
            ~engine:Engine.Exec.Count ~jobs ~trials ~seed ()
        in
        if m.Exp_common.failures > 0 || m.Exp_common.silent_ok < m.Exp_common.silent_checked
        then failwith "count engine failed to reach the silent correct configuration";
        let t = Stats.Summary.of_array m.Exp_common.times in
        let e =
          Stats.Summary.of_array (Array.map float_of_int m.Exp_common.events)
        in
        Stats.Table.add_row table
          [
            string_of_int n;
            string_of_int trials;
            Stats.Table.cell_float t.Stats.Summary.mean;
            Stats.Table.cell_float (1.96 *. t.Stats.Summary.stddev /. sqrt (float_of_int trials));
            Stats.Table.cell_float t.Stats.Summary.p95;
            Stats.Table.cell_float e.Stats.Summary.mean;
            Stats.Table.cell_float theory;
            Stats.Table.cell_float (t.Stats.Summary.mean /. theory);
          ];
        (n, t.Stats.Summary.mean))
      ns
  in
  let fit = Stats.Regression.log_log (List.map (fun (n, m) -> (float_of_int n, m)) points) in
  Buffer.add_string buf (scenario ^ "\n");
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf
    (Printf.sprintf "\nlog-log fit: slope=%.3f (paper predicts 2.000), r2=%.4f\n\n"
       fit.Stats.Regression.slope fit.Stats.Regression.r2)

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment SC: Silent-n-state-SSR at scale (exact, count engine) ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:30 in
  let ns =
    match mode with
    | Exp_common.Quick -> [ 64; 256; 1024 ]
    | Exp_common.Full -> [ 64; 128; 256; 512; 1024; 2048; 4096 ]
  in
  measure ~scenario:"Worst case (barrier configuration; exactly n-1 productive events)"
    ~make_init:(fun _rng ~n -> Core.Scenarios.silent_worst_case ~n)
    ~ns ~jobs ~trials ~seed buf;
  let ns_uniform =
    match mode with Exp_common.Quick -> [ 64; 256 ] | Exp_common.Full -> [ 64; 128; 256; 512; 1024 ]
  in
  measure ~scenario:"Uniform adversarial ranks"
    ~make_init:(fun rng ~n -> Core.Scenarios.silent_uniform rng ~n)
    ~ns:ns_uniform ~jobs ~trials ~seed:(seed + 1) buf;
  Buffer.contents buf
