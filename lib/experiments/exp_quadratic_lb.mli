(** Experiment Q: the Ω(n²) worst case of Silent-n-state-SSR (Section 2).

    From the barrier configuration — two agents at rank 0, one at each of
    ranks 1..n−2, rank n−1 vacant — stabilization requires n−1 consecutive
    bottleneck events, each a direct meeting of the two same-ranked agents
    at expected Θ(n) time, for ≈ (n−1)²/2 parallel time total. The
    experiment measures stabilization from this configuration against the
    analytic curve and checks the log-log slope ≈ 2. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
