let name = "figures"

let description = "Figures 1 & 2: rank-tree assignment and history-tree construction"

(* Figure 1: the full binary tree of ranks 1..n; ranks <= settled are
   Settled, the rest are slots awaiting recruitment. *)
let figure1_tree ~n ~settled =
  let buf = Buffer.create 1024 in
  let rec render indent r =
    if r <= n then begin
      Buffer.add_string buf
        (Printf.sprintf "%s%2d %s\n" indent r (if r <= settled then "[settled]" else "(unsettled slot)"));
      render (indent ^ "   ") (2 * r);
      render (indent ^ "   ") ((2 * r) + 1)
    end
  in
  render "" 1;
  Buffer.contents buf

(* Figure 2: names a, b, c, d; H = 3; generous timers (the figure has no
   timers — they are a technicality for adversarial starts). *)
let figure2_script () =
  let buf = Buffer.create 4096 in
  let width = 6 in
  let names = [| 0b000001; 0b000010; 0b000011; 0b000100 |] in
  let nm i = Core.Name.of_int ~bits:names.(i) ~len:width in
  let labels = [| "a"; "b"; "c"; "d" |] in
  let label_of n =
    let rec find i = if Core.Name.equal (nm i) n then labels.(i) else find (i + 1) in
    find 0
  in
  let h = 3 and timer = 100 in
  let trees = Array.make 4 Core.History_tree.empty in
  let interact i j sync =
    let ti = trees.(i) and tj = trees.(j) in
    trees.(i) <-
      Core.History_tree.merge ~h ~own:(nm i) ~partner:(nm j) ~partner_tree:tj ~sync ~timer ti;
    trees.(j) <-
      Core.History_tree.merge ~h ~own:(nm j) ~partner:(nm i) ~partner_tree:ti ~sync ~timer tj;
    Buffer.add_string buf (Printf.sprintf "%s-%s interact; sync %d:\n" labels.(i) labels.(j) sync)
  in
  let print_trees () =
    Array.iteri
      (fun i tree ->
        Buffer.add_string buf (Printf.sprintf "  %s's tree:\n" labels.(i));
        let rec render indent nodes =
          List.iter
            (fun nd ->
              Buffer.add_string buf
                (Printf.sprintf "%s--%d--> %s\n" indent nd.Core.History_tree.sync
                   (label_of nd.Core.History_tree.name));
              render (indent ^ "      ") nd.Core.History_tree.children)
            nodes
        in
        if tree = [] then Buffer.add_string buf "    (singleton)\n" else render "    " tree)
      trees
  in
  let check_d_vs_a () =
    (* d confronts a with its paths ending at a (the caption's check). *)
    let paths = Core.History_tree.fresh_paths_to ~name:(nm 0) trees.(3) in
    List.iter
      (fun path ->
        let rendered =
          String.concat " -> "
            (List.map (fun (n, s) -> Printf.sprintf "%d:%s" s (label_of n)) path)
        in
        match Core.History_tree.consistent_at ~tree:trees.(0) ~origin:(nm 3) ~path with
        | Some pos ->
            Buffer.add_string buf
              (Printf.sprintf "  d's path [d -> %s]: True after checking edge %d\n" rendered pos)
        | None ->
            Buffer.add_string buf
              (Printf.sprintf "  d's path [d -> %s]: Inconsistent (collision!)\n" rendered))
      paths
  in
  Buffer.add_string buf "--- Figure 2, left execution: a-b(1), b-c(2), c-d(3) ---\n";
  interact 0 1 1;
  interact 1 2 2;
  interact 2 3 3;
  print_trees ();
  Buffer.add_string buf "Check when a and d would interact:\n";
  check_d_vs_a ();
  (* Right execution. *)
  Array.fill trees 0 4 Core.History_tree.empty;
  Buffer.add_string buf "\n--- Figure 2, right execution: a-b(1), b-c(2), a-b(7), c-d(3) ---\n";
  interact 0 1 1;
  interact 1 2 2;
  interact 0 1 7;
  interact 2 3 3;
  print_trees ();
  Buffer.add_string buf "Check when a and d would interact:\n";
  check_d_vs_a ();
  Buffer.contents buf

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "== Experiment F1: Figure 1 ==\n\n";
  Buffer.add_string buf "Rank tree at n=12 with 8 settled agents (paper's Figure 1 state):\n";
  Buffer.add_string buf (figure1_tree ~n:12 ~settled:8);
  Buffer.add_string buf
    "\nRemaining ranks 9..12 are assigned when unsettled agents meet the settled\n\
     agents with free slots (ranks 4, 5 and 6 in the 1-based convention of\n\
     Protocol 3; the paper's figure counts ranks from 0, hence its '3, 4 or 5').\n\n";
  (* Ranking phase alone is Θ(n). *)
  let trials = Exp_common.trials_of_mode mode ~base:30 in
  let ns = match mode with Exp_common.Quick -> [ 16; 32; 64 ] | Exp_common.Full -> [ 16; 32; 64; 128; 256 ] in
  let table = Stats.Table.create ~header:Exp_common.time_header in
  let points =
    List.map
      (fun n ->
        let params = Core.Params.optimal_silent n in
        let protocol = Core.Optimal_silent.protocol ~params ~n () in
        let m =
          Exp_common.measure ~label:"ranking-phase" ~protocol
            ~init:(fun _ ->
              Array.init n (fun i ->
                  if i = 0 then Core.Optimal_silent.settled ~rank:1 ~children:0
                  else Core.Optimal_silent.unsettled ~errorcount:params.Core.Params.e_max))
            ~task:Engine.Runner.Ranking
            ~expected_time:(float_of_int (10 * n))
            ~jobs ~trials ~seed ()
        in
        Stats.Table.add_row table (Exp_common.time_row m);
        (n, m))
      ns
  in
  Buffer.add_string buf "Leader-driven ranking phase (1 settled root, n-1 unsettled)\n";
  Buffer.add_string buf (Stats.Table.render table);
  let fit = Exp_common.scaling_fit points in
  Buffer.add_string buf
    (Printf.sprintf "\nlog-log fit: slope=%.3f (paper predicts 1.0: Θ(n)), r2=%.4f\n\n"
       fit.Stats.Regression.slope fit.Stats.Regression.r2);
  Buffer.add_string buf "== Experiment F2: Figure 2 ==\n\n";
  Buffer.add_string buf (figure2_script ());
  Buffer.contents buf
