(** Experiment TH2.1: strong nonuniformity is necessary (Theorem 2.1).

    Any SSLE protocol must hardcode the exact population size: if the
    transitions compiled for n₁ are run inside a larger population n₂ > n₁
    that currently has a unique leader, sufficiently many interactions
    produce a second leader, so no single-leader configuration can be
    stable. Demonstrated on Silent-n-state-SSR(n₁): n₂ agents whose ranks
    are within {0..n₁−1} with exactly one at rank 0 (= leader). Duplicated
    ranks collide, increments wrap around mod n₁, and extra leaders appear
    and reappear forever; the experiment measures the time to the first
    excess leader and the long-run fraction of time spent with exactly one
    leader (which stays bounded away from 1). *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
