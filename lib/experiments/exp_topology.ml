let name = "topology"

let description = "Complete vs ring/star/regular interaction graphs: why complete is the paper's case"

(* One-bit infection as a protocol, to run the epidemic on any topology.
   The leader observation doubles as the infected-counter. *)
let infection_protocol ~n : bool Engine.Protocol.t =
  {
    Engine.Protocol.name = "infection";
    n;
    transition = (fun _ a b -> (a || b, a || b));
    deterministic = true;
    equal = Bool.equal;
    pp = Format.pp_print_bool;
    rank = (fun _ -> None);
    is_leader = Fun.id;
  }

let epidemic_time ~topology ~rng =
  let n = Engine.Topology.size topology in
  let protocol = infection_protocol ~n in
  let init = Array.init n (fun i -> i = 0) in
  let sim =
    Engine.Sim.make_with ~sampler:(Engine.Topology.sampler topology) ~protocol ~init ~rng
  in
  while Engine.Sim.leader_count sim < n do
    Engine.Sim.step sim
  done;
  Engine.Sim.parallel_time sim

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment TP: interaction-graph topologies ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:20 in
  let ns = match mode with Exp_common.Quick -> [ 32 ] | Exp_common.Full -> [ 32; 64; 128 ] in
  let table = Stats.Table.create ~header:[ "n"; "topology"; "mean epidemic time"; "p95" ] in
  List.iter
    (fun n ->
      (* The graph itself is wired from a dedicated generator so that trial
         streams stay a pure function of (seed, trial index). *)
      let topologies =
        [
          Engine.Topology.complete ~n;
          Engine.Topology.random_regular (Prng.create ~seed:(seed + n)) ~n ~degree:4;
          Engine.Topology.star ~n;
          Engine.Topology.ring ~n;
        ]
      in
      List.iteri
        (fun t_idx topology ->
          let times =
            Exp_common.run_trials ~jobs ~trials ~seed:(seed + (17 * n) + t_idx) (fun rng ->
                epidemic_time ~topology ~rng)
          in
          let s = Stats.Summary.of_array times in
          Stats.Table.add_row table
            [
              string_of_int n;
              Engine.Topology.name topology;
              Stats.Table.cell_float s.Stats.Summary.mean;
              Stats.Table.cell_float s.Stats.Summary.p95;
            ])
        topologies)
    ns;
  Buffer.add_string buf "Epidemic completion per topology (complete & regular: Θ(log n); ring: Θ(n))\n";
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n";
  (* Recovery of Optimal-Silent-SSR from a planted duplicate, per topology:
     the duplicate sits on agents at ring-distance n/2, so on the ring the
     collision is never observed. *)
  let n = match mode with Exp_common.Quick -> 24 | Exp_common.Full -> 48 in
  let params = Core.Params.optimal_silent n in
  let protocol = Core.Optimal_silent.protocol ~params ~n () in
  let table2 =
    Stats.Table.create
      ~header:[ "topology"; "trials"; "recovered"; "mean recovery time (recovered runs)" ]
  in
  List.iteri
    (fun t_idx topology ->
      let outcomes =
        Exp_common.run_trials ~jobs ~trials ~seed:(seed + 1 + t_idx) (fun rng ->
            let init = Core.Scenarios.optimal_correct ~n in
            (* duplicate agent (n/2)'s rank onto agent 0: maximally distant
               on the ring *)
            init.(0) <- init.(n / 2);
            let sim =
              Engine.Sim.make_with ~sampler:(Engine.Topology.sampler topology) ~protocol ~init
                ~rng
            in
            let o =
              Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
                ~max_interactions:(2000 * n)
                ~confirm_interactions:(Engine.Runner.default_confirm ~n)
                (Engine.Exec.of_sim sim)
            in
            if o.Engine.Runner.converged then Some o.Engine.Runner.convergence_time else None)
      in
      let times = Array.to_list outcomes |> List.filter_map Fun.id in
      let recovered = List.length times in
      Stats.Table.add_row table2
        [
          Engine.Topology.name topology;
          string_of_int trials;
          Printf.sprintf "%d/%d" recovered trials;
          (if times = [] then "-"
           else Stats.Table.cell_float (Stats.Summary.of_list times).Stats.Summary.mean);
        ])
    [
      Engine.Topology.complete ~n;
      Engine.Topology.random_regular (Prng.create ~seed:(seed + 5)) ~n ~degree:4;
      Engine.Topology.ring ~n;
    ];
  Buffer.add_string buf
    (Printf.sprintf
       "Optimal-Silent-SSR with a planted duplicate at graph distance n/2 (n=%d)\n" n);
  Buffer.add_string buf (Stats.Table.render table2);
  Buffer.add_string buf
    "\n\n(whenever the two same-ranked agents are not adjacent — always on the ring,\n\
     almost surely on a sparse regular graph — they never interact, the collision\n\
     is never detected and the run stays incorrect forever: the paper's protocols\n\
     assume the complete graph, the hardest but also the honest case)\n";
  Buffer.contents buf
