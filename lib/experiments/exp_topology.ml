let name = "topology"

let description = "Complete vs ring/star/regular interaction graphs: why complete is the paper's case"

(* One-bit infection as a protocol, to run the epidemic on any topology.
   The leader observation doubles as the infected-counter. *)
let infection_protocol ~n : bool Engine.Protocol.t =
  {
    Engine.Protocol.name = "infection";
    n;
    transition = (fun _ a b -> (a || b, a || b));
    deterministic = true;
    equal = Bool.equal;
    pp = Format.pp_print_bool;
    (* infected agents observe rank 1 so the leader <=> rank 1 convention
       (Protocol.validate, enforced by the count engine) holds *)
    rank = (fun b -> if b then Some 1 else None);
    is_leader = Fun.id;
  }

let epidemic_time ~topology ~rng =
  let n = Engine.Topology.size topology in
  let protocol = infection_protocol ~n in
  let init = Array.init n (fun i -> i = 0) in
  let sim =
    Engine.Sim.make_with ~sampler:(Engine.Topology.sampler topology) ~protocol ~init ~rng
  in
  while Engine.Sim.leader_count sim < n do
    Engine.Sim.step sim
  done;
  Engine.Sim.parallel_time sim

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment TP: interaction-graph topologies ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:20 in
  let ns = match mode with Exp_common.Quick -> [ 32 ] | Exp_common.Full -> [ 32; 64; 128 ] in
  let table = Stats.Table.create ~header:[ "n"; "topology"; "mean epidemic time"; "p95" ] in
  List.iter
    (fun n ->
      (* The graph itself is wired from a dedicated generator so that trial
         streams stay a pure function of (seed, trial index). *)
      let topologies =
        [
          Engine.Topology.complete ~n;
          Engine.Topology.random_regular (Prng.create ~seed:(seed + n)) ~n ~degree:4;
          Engine.Topology.star ~n;
          Engine.Topology.ring ~n;
        ]
      in
      List.iteri
        (fun t_idx topology ->
          let times =
            Exp_common.run_trials ~jobs ~trials ~seed:(seed + (17 * n) + t_idx) (fun rng ->
                epidemic_time ~topology ~rng)
          in
          let s = Stats.Summary.of_array times in
          Stats.Table.add_row table
            [
              string_of_int n;
              Engine.Topology.name topology;
              Stats.Table.cell_float s.Stats.Summary.mean;
              Stats.Table.cell_float s.Stats.Summary.p95;
            ])
        topologies)
    ns;
  Buffer.add_string buf "Epidemic completion per topology (complete & regular: Θ(log n); ring: Θ(n))\n";
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n";
  (* Recovery of Optimal-Silent-SSR from a planted duplicate, per topology:
     the duplicate sits on agents at ring-distance n/2, so on the ring the
     collision is never observed. *)
  let n = match mode with Exp_common.Quick -> 24 | Exp_common.Full -> 48 in
  let params = Core.Params.optimal_silent n in
  let protocol = Core.Optimal_silent.protocol ~params ~n () in
  let table2 =
    Stats.Table.create
      ~header:[ "topology"; "trials"; "recovered"; "mean recovery time (recovered runs)" ]
  in
  List.iteri
    (fun t_idx topology ->
      let outcomes =
        Exp_common.run_trials ~jobs ~trials ~seed:(seed + 1 + t_idx) (fun rng ->
            let init = Core.Scenarios.optimal_correct ~n in
            (* duplicate agent (n/2)'s rank onto agent 0: maximally distant
               on the ring *)
            init.(0) <- init.(n / 2);
            let sim =
              Engine.Sim.make_with ~sampler:(Engine.Topology.sampler topology) ~protocol ~init
                ~rng
            in
            let o =
              Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
                ~max_interactions:(2000 * n)
                ~confirm_interactions:(Engine.Runner.default_confirm ~n)
                (Engine.Exec.of_sim sim)
            in
            if o.Engine.Runner.converged then Some o.Engine.Runner.convergence_time else None)
      in
      let times = Array.to_list outcomes |> List.filter_map Fun.id in
      let recovered = List.length times in
      Stats.Table.add_row table2
        [
          Engine.Topology.name topology;
          string_of_int trials;
          Printf.sprintf "%d/%d" recovered trials;
          (if times = [] then "-"
           else Stats.Table.cell_float (Stats.Summary.of_list times).Stats.Summary.mean);
        ])
    [
      Engine.Topology.complete ~n;
      Engine.Topology.random_regular (Prng.create ~seed:(seed + 5)) ~n ~degree:4;
      Engine.Topology.ring ~n;
    ];
  Buffer.add_string buf
    (Printf.sprintf
       "Optimal-Silent-SSR with a planted duplicate at graph distance n/2 (n=%d)\n" n);
  Buffer.add_string buf (Stats.Table.render table2);
  Buffer.add_string buf
    "\n\n(whenever the two same-ranked agents are not adjacent — always on the ring,\n\
     almost surely on a sparse regular graph — they never interact, the collision\n\
     is never detected and the run stays incorrect forever: the paper's protocols\n\
     assume the complete graph, the hardest but also the honest case)\n\n";
  (* Large-n epidemics on the lazy count engine: degree-class lumping
     collapses the population to per-(state, class) counts, so the same
     epidemic runs at n = 10⁵ — two orders of magnitude past the agent
     rows above. The [exact] column is load-bearing: the star lumps
     exactly (the leaf/hub class pair is complete bipartite), so its row
     is the true law of the fixed graph; the ring and the random regular
     graph lump to a single class that is not exact, so their rows are
     the annealed (rewired-every-interaction) approximation — which is
     why the annealed ring completes in Θ(log n) while the real ring
     above needs Θ(n). *)
  let n_big = 100_000 in
  let big_trials = match mode with Exp_common.Quick -> 3 | Exp_common.Full -> 8 in
  let table3 =
    Stats.Table.create
      ~header:[ "topology"; "n"; "classes"; "exact"; "mean epidemic time"; "p95" ]
  in
  List.iteri
    (fun t_idx (tname, classes) ->
      let times =
        Exp_common.run_trials ~jobs ~trials:big_trials ~seed:(seed + 31 + t_idx) (fun rng ->
            let protocol = infection_protocol ~n:n_big in
            (* seed the infection at agent n-1 — on the star a leaf, not
               the hub, so the two-hop structure is exercised *)
            let init = Array.init n_big (fun i -> i = n_big - 1) in
            let cs = Engine.Count_sim.make ~classes ~protocol ~init ~rng () in
            while Engine.Count_sim.leader_count cs < n_big do
              Engine.Count_sim.step_event cs
            done;
            Engine.Count_sim.parallel_time cs)
      in
      let s = Stats.Summary.of_array times in
      Stats.Table.add_row table3
        [
          tname;
          string_of_int n_big;
          string_of_int classes.Engine.Topology.nc;
          (if classes.Engine.Topology.exact then "yes" else "no (annealed)");
          Stats.Table.cell_float s.Stats.Summary.mean;
          Stats.Table.cell_float s.Stats.Summary.p95;
        ])
    [
      ("complete", Engine.Topology.complete_classes ~n:n_big);
      ("star", Engine.Topology.degree_classes (Engine.Topology.star ~n:n_big));
      ( "random-4-regular",
        Engine.Topology.degree_classes
          (Engine.Topology.random_regular (Prng.create ~seed:(seed + 7)) ~n:n_big ~degree:4) );
      ("ring", Engine.Topology.degree_classes (Engine.Topology.ring ~n:n_big));
    ];
  Buffer.add_string buf
    (Printf.sprintf "Epidemic at n = %d on the lumped count engine\n" n_big);
  Buffer.add_string buf (Stats.Table.render table3);
  Buffer.add_string buf
    "\n\n(exact = yes: the lumped run is the fixed graph's true law. exact = no: the\n\
     annealed approximation — degree sequence honored, wiring resampled every\n\
     interaction — so the ring's Θ(n) diameter bottleneck vanishes; compare its\n\
     small-n agent-engine rows above. The count engine prints the same warning\n\
     when ssr_sim is pointed at a non-exact topology.)\n";
  Buffer.contents buf
