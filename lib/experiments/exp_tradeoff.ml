let name = "tradeoff"

let description = "Table 1 row 4 / Section 5.2: Sublinear-Time-SSR time/space tradeoff in H"

(* Parallel time until the hidden name collision is first detected (some
   agent enters the Resetting role) — the Θ(H·n^{1/(H+1)}) component of
   Section 5.2, isolated from the Θ(log n) reset/rebuild overhead. *)
let detection_latency ~protocol ~init ~rng ~horizon =
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  let n = Engine.Sim.n sim in
  let detected () =
    let rec check i =
      i < n
      &&
      match Engine.Sim.state sim i with
      | Core.Reset.Resetting _ -> true
      | Core.Reset.Computing _ -> check (i + 1)
    in
    check 0
  in
  while (not (detected ())) && Engine.Sim.interactions sim < horizon do
    Engine.Sim.step sim
  done;
  if detected () then Some (Engine.Sim.parallel_time sim) else None

let measure_detection ~n ~h ~jobs ~trials ~seed =
  let params = Core.Params.sublinear ~h n in
  let protocol = Core.Sublinear.protocol ~params ~n ~h () in
  let outcomes =
    Exp_common.run_trials ~jobs ~trials ~seed (fun rng ->
        let init = Core.Scenarios.sublinear_name_collision rng ~params ~n in
        detection_latency ~protocol ~init ~rng ~horizon:(400 * n * n))
  in
  let times = Array.to_list outcomes |> List.filter_map Fun.id in
  let missed = trials - List.length times in
  (Stats.Summary.of_list times, missed)

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment T1.4: time/space tradeoff in H ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:30 in
  (* H sweep at fixed n: detection latency falls, state estimate explodes. *)
  let n_fixed = match mode with Exp_common.Quick -> 32 | Exp_common.Full -> 64 in
  let hs = [ 0; 1; 2; 3 ] in
  let table =
    Stats.Table.create
      ~header:[ "H"; "T_H"; "mean detect"; "p95"; "missed"; "theory H·n^(1/(H+1))"; "log2(states)" ]
  in
  List.iter
    (fun h ->
      let params = Core.Params.sublinear ~h n_fixed in
      let s, missed = measure_detection ~n:n_fixed ~h ~jobs ~trials ~seed in
      let theory =
        float_of_int (max h 1) *. (float_of_int n_fixed ** (1.0 /. float_of_int (h + 1)))
      in
      Stats.Table.add_row table
        [
          string_of_int h;
          string_of_int params.Core.Params.t_h;
          Stats.Table.cell_float s.Stats.Summary.mean;
          Stats.Table.cell_float s.Stats.Summary.p95;
          string_of_int missed;
          Stats.Table.cell_float theory;
          Stats.Table.cell_float (Core.Sublinear.log2_states ~params ~n:n_fixed);
        ])
    hs;
  Buffer.add_string buf (Printf.sprintf "Detection latency vs H at n=%d\n" n_fixed);
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n";
  (* n sweep at fixed H: log-log slope ≈ 1/(H+1). *)
  List.iter
    (fun h ->
      let ns =
        match (mode, h) with
        | Exp_common.Quick, _ -> [ 8; 16; 32 ]
        | Exp_common.Full, 0 -> [ 8; 16; 32; 64; 128 ]
        | Exp_common.Full, 1 -> [ 8; 16; 32; 64; 128 ]
        | Exp_common.Full, _ -> [ 8; 16; 32; 64 ]
      in
      let table = Stats.Table.create ~header:[ "n"; "mean detect"; "p95"; "missed" ] in
      let points =
        List.map
          (fun n ->
            let s, missed = measure_detection ~n ~h ~jobs ~trials ~seed:(seed + h) in
            Stats.Table.add_row table
              [
                string_of_int n;
                Stats.Table.cell_float s.Stats.Summary.mean;
                Stats.Table.cell_float s.Stats.Summary.p95;
                string_of_int missed;
              ];
            (float_of_int n, s.Stats.Summary.mean))
          ns
      in
      let fit = Stats.Regression.log_log points in
      Buffer.add_string buf (Printf.sprintf "Detection latency vs n at H=%d\n" h);
      Buffer.add_string buf (Stats.Table.render table);
      Buffer.add_string buf
        (Printf.sprintf "\nlog-log slope=%.3f (paper predicts ≈ %.3f = 1/(H+1)), r2=%.4f\n\n"
           fit.Stats.Regression.slope
           (1.0 /. float_of_int (h + 1))
           fit.Stats.Regression.r2))
    [ 0; 1; 2 ];
  Buffer.contents buf
