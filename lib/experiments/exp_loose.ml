let name = "loose"

let description = "Loosely-stabilizing leader election: convergence with only an upper bound, finite holding time"

let converge_from ~protocol ~init ~rng ~horizon =
  let sim = Engine.Sim.make ~protocol ~init ~rng in
  while (not (Engine.Sim.leader_correct sim)) && Engine.Sim.interactions sim < horizon do
    Engine.Sim.step sim
  done;
  (sim, Engine.Sim.leader_correct sim, Engine.Sim.parallel_time sim)

(* Holding time: from a converged single-leader configuration, parallel
   time until the leader count leaves 1. Capped. *)
let holding_time sim ~cap =
  let start = Engine.Sim.interactions sim in
  let n = Engine.Sim.n sim in
  while Engine.Sim.leader_correct sim && Engine.Sim.interactions sim - start < cap do
    Engine.Sim.step sim
  done;
  let held = Engine.Sim.interactions sim - start in
  (float_of_int held /. float_of_int n, held >= cap)

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment LS: loose stabilization ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:15 in
  (* One transition table (fixed t_max from the upper bound N) reused for
     several population sizes n <= N. *)
  let upper_bound = 64 in
  let t_max = 4 * upper_bound in
  let table =
    Stats.Table.create ~header:[ "n (N=64 fixed)"; "scenario"; "trials"; "mean convergence"; "p95"; "fail" ]
  in
  List.iter
    (fun n ->
      let protocol = Core.Loose.protocol ~n ~t_max in
      List.iter
        (fun (scenario, make_init) ->
          let outcomes =
            Exp_common.run_trials ~jobs ~trials ~seed (fun rng ->
                let _, ok, time =
                  converge_from ~protocol ~init:(make_init rng) ~rng ~horizon:(100 * t_max * n)
                in
                if ok then Some time else None)
          in
          let times = Array.to_list outcomes |> List.filter_map Fun.id in
          let failures = trials - List.length times in
          let row =
            if times = [] then
              [ string_of_int n; scenario; string_of_int trials; "-"; "-"; string_of_int failures ]
            else begin
              let s = Stats.Summary.of_list times in
              [
                string_of_int n;
                scenario;
                string_of_int trials;
                Stats.Table.cell_float s.Stats.Summary.mean;
                Stats.Table.cell_float s.Stats.Summary.p95;
                string_of_int failures;
              ]
            end
          in
          Stats.Table.add_row table row)
        [
          ("all-followers", fun _ -> Core.Loose.all_followers ~n ~t_max);
          ("uniform", fun rng -> Core.Loose.uniform rng ~n ~t_max);
        ])
    (match mode with Exp_common.Quick -> [ 16; 64 ] | Exp_common.Full -> [ 16; 32; 64 ]);
  Buffer.add_string buf
    "Convergence with one transition table (t_max from N=64) across population sizes\n";
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n";
  (* Holding time vs T_max. *)
  let n = 32 in
  let cap_time = match mode with Exp_common.Quick -> 20_000 | Exp_common.Full -> 200_000 in
  let cap = cap_time * n in
  let table2 =
    Stats.Table.create
      ~header:[ "T_max"; "trials"; "mean holding time"; "min"; "hit cap"; Printf.sprintf "(cap %d)" cap_time ]
  in
  List.iter
    (fun factor ->
      let t_max = factor * Core.Params.ceil_ln n in
      let protocol = Core.Loose.protocol ~n ~t_max in
      let outcomes =
        Exp_common.run_trials ~jobs ~trials ~seed:(seed + 1) (fun rng ->
            let sim, ok, _ =
              converge_from ~protocol ~init:(Core.Loose.uniform rng ~n ~t_max) ~rng
                ~horizon:(100 * t_max * n)
            in
            if ok then Some (holding_time sim ~cap) else None)
      in
      let held = Array.to_list outcomes |> List.filter_map Fun.id in
      let capped = List.length (List.filter snd held) in
      let s = Stats.Summary.of_list (List.map fst held) in
      Stats.Table.add_row table2
        [
          Printf.sprintf "%d·ln n (%d)" factor t_max;
          string_of_int trials;
          Stats.Table.cell_float s.Stats.Summary.mean;
          Stats.Table.cell_float s.Stats.Summary.min;
          string_of_int capped;
          "";
        ])
    [ 2; 3; 4; 6; 10 ];
  Buffer.add_string buf (Printf.sprintf "Holding time vs T_max at n=%d\n" n);
  Buffer.add_string buf (Stats.Table.render table2);
  Buffer.add_string buf
    "\n\n(holding time explodes with T_max: loose stabilization trades the exact-n\n\
     requirement of SSLE for a finite — but tunable — holding horizon)\n";
  Buffer.contents buf
