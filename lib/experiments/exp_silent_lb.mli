(** Experiment O2.2: the Ω(n) lower bound for silent protocols.

    Observation 2.2: take a silent correct configuration, duplicate the
    leader's state onto another agent; the only applicable transition is a
    direct meeting of the two copies, a geometric event of mean C(n,2)
    interactions ≈ (n−1)/2 parallel time, with the heavy tail
    P[time ≥ α·n·ln n] ≥ ½·n^{−3α}.

    Measured here on both silent protocols (duplicated rank planted into
    the stable configuration) plus the analytic tail, which is compared
    against exact geometric meeting-time samples. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
