type experiment = {
  name : string;
  description : string;
  run : mode:Exp_common.mode -> seed:int -> jobs:int -> string;
}

let all =
  [
    { name = Exp_table1.name; description = Exp_table1.description; run = Exp_table1.run };
    {
      name = Exp_tradeoff.name;
      description = Exp_tradeoff.description;
      run = Exp_tradeoff.run;
    };
    { name = Exp_figures.name; description = Exp_figures.description; run = Exp_figures.run };
    {
      name = Exp_silent_lb.name;
      description = Exp_silent_lb.description;
      run = Exp_silent_lb.run;
    };
    {
      name = Exp_quadratic_lb.name;
      description = Exp_quadratic_lb.description;
      run = Exp_quadratic_lb.run;
    };
    {
      name = Exp_nonuniform.name;
      description = Exp_nonuniform.description;
      run = Exp_nonuniform.run;
    };
    { name = Exp_reset.name; description = Exp_reset.description; run = Exp_reset.run };
    { name = Exp_scale.name; description = Exp_scale.description; run = Exp_scale.run };
    { name = Exp_exact.name; description = Exp_exact.description; run = Exp_exact.run };
    {
      name = Exp_ablation.name;
      description = Exp_ablation.description;
      run = Exp_ablation.run;
    };
    { name = Exp_loose.name; description = Exp_loose.description; run = Exp_loose.run };
    {
      name = Exp_topology.name;
      description = Exp_topology.description;
      run = Exp_topology.run;
    };
    {
      name = Exp_scenarios.name;
      description = Exp_scenarios.description;
      run = Exp_scenarios.run;
    };
    {
      name = Exp_epidemic.name;
      description = Exp_epidemic.description;
      run = Exp_epidemic.run;
    };
    { name = Exp_chaos.name; description = Exp_chaos.description; run = Exp_chaos.run };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let run_all ~mode ~seed ~jobs =
  String.concat "\n"
    (List.map
       (fun e ->
         let t0 = Sys.time () in
         let body = e.run ~mode ~seed ~jobs in
         Printf.sprintf "%s\n(experiment '%s' took %.1f s of CPU time)\n" body e.name
           (Sys.time () -. t0))
       all)
