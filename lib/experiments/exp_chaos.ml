let name = "chaos"

let description =
  "Steady-state availability under sustained Poisson faults, per protocol tier and engine"

(* The sweep is parameterized by offered load k = rate · t_rec: the
   expected number of fault arrivals per recovery time. The Ω(log n)
   per-recovery lower bound makes k the natural control variable — for
   k ≪ 1 the system is almost always correct, and as k approaches and
   passes 1 recoveries stop completing before the next strike and
   availability collapses, whatever the tier's absolute speed. *)
let loads = [ 0.25; 1.0; 4.0 ]

let header =
  [ "protocol"; "engine"; "n"; "load"; "rate"; "trials"; "avail"; "rec mean"; "rec p95"; "cens"; "SLA" ]

let row ~tier ~engine ~n ~load ~rate ~trials reports =
  let avail =
    List.fold_left (fun acc r -> acc +. r.Chaos.Soak.availability) 0.0 reports
    /. float_of_int (List.length reports)
  in
  let pooled = List.concat_map (fun r -> Array.to_list r.Chaos.Soak.recovery_times) reports in
  let censored =
    List.fold_left (fun acc r -> acc + r.Chaos.Soak.sla.Chaos.Soak.censored) 0 reports
  in
  let met = List.length (List.filter (fun r -> r.Chaos.Soak.sla.Chaos.Soak.met) reports) in
  let rec_mean, rec_p95 =
    if pooled = [] then ("-", "-")
    else begin
      let s = Stats.Summary.of_list pooled in
      (Stats.Table.cell_float s.Stats.Summary.mean, Stats.Table.cell_float s.Stats.Summary.p95)
    end
  in
  [
    tier;
    Engine.Exec.kind_to_string engine;
    string_of_int n;
    Printf.sprintf "%.2f" load;
    Printf.sprintf "%.2g" rate;
    string_of_int trials;
    Printf.sprintf "%.3f" avail;
    rec_mean;
    rec_p95;
    string_of_int censored;
    Printf.sprintf "%d/%d met" met trials;
  ]

(* One tier/engine combo swept over the offered loads. Soaks start from
   the correct configuration: the subject is steady-state availability,
   not initial convergence (Exp_table1 measures that). [t_rec] is the
   tier's expected recovery scale in parallel time units; the horizon is
   20 recovery times and the SLA budget 2, so a healthy recovery meets
   the SLA with slack and a merged burst misses it. *)
let sweep (type s) table ~tier ~engine ~(protocol : s Engine.Protocol.t)
    ~(init : Prng.t -> s array) ~(random_state : Prng.t -> s) ~t_rec ~jobs ~trials ~seed =
  let n = protocol.Engine.Protocol.n in
  let nf = float_of_int n in
  let horizon = max 1 (int_of_float (20.0 *. t_rec *. nf)) in
  let sla_budget = max 1 (int_of_float (2.0 *. t_rec *. nf)) in
  let avail_points = ref [] in
  let recovered = ref [] in
  let censored = ref 0 in
  List.iter
    (fun load ->
      let rate = load /. t_rec in
      let reports =
        Exp_common.run_trials ~jobs ~trials ~seed (fun rng ->
            let exec = Engine.Exec.make ~kind:engine ~protocol ~init:(init rng) ~rng () in
            Chaos.Soak.run ~sla_budget
              ~schedule:(Chaos.Schedule.poisson ~rate)
              ~adversary:(Chaos.Adversary.corrupt ~fraction:0.05)
              ~random_state ~rng ~horizon exec)
      in
      let rl = Array.to_list reports in
      let avail =
        List.fold_left (fun acc r -> acc +. r.Chaos.Soak.availability) 0.0 rl
        /. float_of_int (List.length rl)
      in
      avail_points := (load, avail) :: !avail_points;
      List.iter
        (fun r ->
          recovered := List.rev_append (Array.to_list r.Chaos.Soak.recovery_times) !recovered;
          censored := !censored + r.Chaos.Soak.sla.Chaos.Soak.censored)
        rl;
      Stats.Table.add_row table (row ~tier ~engine ~n ~load ~rate ~trials rl))
    loads;
  ( Printf.sprintf "%s / %s" tier (Engine.Exec.kind_to_string engine),
    List.rev !avail_points,
    List.rev !recovered,
    !censored )

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment CH: availability under sustained faults ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:12 in
  let table = Stats.Table.create ~header in
  let combos = ref [] in
  let record c = combos := c :: !combos in
  (* Silent-n-state-SSR: Θ(n²) recovery, both engines at the same n so the
     rows are distributionally comparable. *)
  let n_silent = match mode with Exp_common.Quick -> 24 | Exp_common.Full -> 32 in
  let silent_protocol = Core.Silent_n_state.protocol ~n:n_silent in
  let silent_t_rec = float_of_int (n_silent * n_silent) /. 2.0 in
  List.iter
    (fun engine ->
      record
        (sweep table ~tier:"silent" ~engine ~protocol:silent_protocol
           ~init:(fun _ -> Core.Scenarios.silent_correct ~n:n_silent)
           ~random_state:(fun rng -> Core.Scenarios.silent_random_state rng ~n:n_silent)
           ~t_rec:silent_t_rec ~jobs ~trials ~seed))
    [ Engine.Exec.Agent; Engine.Exec.Count ];
  (* Optimal-Silent-SSR: Θ(n) recovery, both engines. Randomly corrupted
     counter states (resetcount × delaytimer) used to blow the old eager
     probe fixpoint's closure up quadratically, which forced this tier
     onto the agent engine; the lazy kernel only probes cell pairs that
     become live, so the count cell is back. *)
  let n_opt = match mode with Exp_common.Quick -> 24 | Exp_common.Full -> 48 in
  let opt_params = Core.Params.optimal_silent n_opt in
  let opt_protocol = Core.Optimal_silent.protocol ~params:opt_params ~n:n_opt () in
  let opt_t_rec = float_of_int (8 * n_opt) in
  List.iter
    (fun engine ->
      record
        (sweep table ~tier:"optimal" ~engine ~protocol:opt_protocol
           ~init:(fun _ -> Core.Scenarios.optimal_correct ~n:n_opt)
           ~random_state:(fun rng ->
             Core.Scenarios.optimal_random_state rng ~params:opt_params ~n:n_opt)
           ~t_rec:opt_t_rec ~jobs ~trials ~seed:(seed + 1)))
    [ Engine.Exec.Agent; Engine.Exec.Count ];
  (* Sublinear-Time-SSR is randomized, so the count engine is unsupported
     by design (see Count_sim); agent engine only. *)
  let n_sub = match mode with Exp_common.Quick -> 12 | Exp_common.Full -> 16 in
  let h = 1 in
  let sub_params = Core.Params.sublinear ~h n_sub in
  let sub_protocol = Core.Sublinear.protocol ~params:sub_params ~n:n_sub ~h () in
  let sub_t_rec =
    float_of_int
      (sub_params.Core.Params.d_max + (8 * sub_params.Core.Params.t_h) + (8 * n_sub))
  in
  record
    (sweep table ~tier:"sublinear" ~engine:Engine.Exec.Agent ~protocol:sub_protocol
       ~init:(fun rng -> Core.Scenarios.sublinear_correct rng ~params:sub_params ~n:n_sub)
       ~random_state:(fun rng ->
         Core.Scenarios.sublinear_random_state rng ~params:sub_params ~n:n_sub)
       ~t_rec:sub_t_rec ~jobs ~trials ~seed:(seed + 2));
  (* The availability-vs-load and recovery-CDF figures, one series per
     tier × engine (no-ops without an installed figure registry). *)
  let combos = List.rev !combos in
  Viz.Figures.emit "chaos-availability"
    (Viz.Charts.availability
       (List.map (fun (label, points, _, _) -> (label, points)) combos));
  Viz.Figures.emit "recovery-cdf"
    (Viz.Charts.recovery_samples
       (List.map (fun (label, _, times, censored) -> (label, times, censored)) combos));
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf
    "\n\
     (load = expected faults per recovery time (rate · t_rec); each soak starts correct,\n\
     runs 20 recovery times, corrupts 5% of agents per strike, SLA budget 2 recovery\n\
     times. One tier×engine combo is absent by design: sublinear×count, because the\n\
     count engine requires a deterministic protocol and Sublinear-Time-SSR is\n\
     randomized.)\n";
  Buffer.contents buf
