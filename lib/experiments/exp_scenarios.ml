let name = "scenarios"

let description = "Per-adversary fingerprint: every scenario of the catalogue, per protocol"

let scenario_header = [ "scenario"; "trials"; "mean"; "p95"; "max"; "fail"; "viol" ]

let row_of_measurement scenario (m : Exp_common.measurement) trials =
  if Array.length m.Exp_common.times = 0 then
    [ scenario; string_of_int trials; "-"; "-"; "-"; string_of_int m.Exp_common.failures;
      string_of_int m.Exp_common.violations ]
  else begin
    let s = Exp_common.summary m in
    [
      scenario;
      string_of_int s.Stats.Summary.count;
      Stats.Table.cell_float s.Stats.Summary.mean;
      Stats.Table.cell_float s.Stats.Summary.p95;
      Stats.Table.cell_float s.Stats.Summary.max;
      string_of_int m.Exp_common.failures;
      string_of_int m.Exp_common.violations;
    ]
  end

let sweep buf ~title ~protocol ~catalogue ~expected_time ~jobs ~trials ~seed =
  let table = Stats.Table.create ~header:scenario_header in
  List.iter
    (fun (scenario, gen) ->
      let m =
        Exp_common.measure ~label:scenario ~protocol ~init:gen ~task:Engine.Runner.Ranking
          ~expected_time ~jobs ~trials ~seed ()
      in
      Stats.Table.add_row table (row_of_measurement scenario m trials))
    catalogue;
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n"

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "== Experiment SN: adversary catalogue ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:20 in
  let n_silent = match mode with Exp_common.Quick -> 16 | Exp_common.Full -> 32 in
  sweep buf
    ~title:(Printf.sprintf "Silent-n-state-SSR, n=%d" n_silent)
    ~protocol:(Core.Silent_n_state.protocol ~n:n_silent)
    ~catalogue:(Core.Scenarios.silent_catalogue ~n:n_silent)
    ~expected_time:(float_of_int (n_silent * n_silent))
    ~jobs ~trials ~seed;
  let n_opt = match mode with Exp_common.Quick -> 16 | Exp_common.Full -> 48 in
  let params = Core.Params.optimal_silent n_opt in
  sweep buf
    ~title:(Printf.sprintf "Optimal-Silent-SSR, n=%d" n_opt)
    ~protocol:(Core.Optimal_silent.protocol ~params ~n:n_opt ())
    ~catalogue:(Core.Scenarios.optimal_catalogue ~params ~n:n_opt)
    ~expected_time:(float_of_int (30 * n_opt))
    ~jobs ~trials ~seed:(seed + 1);
  List.iter
    (fun h ->
      let n_sub = match mode with Exp_common.Quick -> 8 | Exp_common.Full -> 16 in
      let params = Core.Params.sublinear ~h n_sub in
      sweep buf
        ~title:(Printf.sprintf "Sublinear-Time-SSR, n=%d, H=%d" n_sub h)
        ~protocol:(Core.Sublinear.protocol ~params ~n:n_sub ~h ())
        ~catalogue:(Core.Scenarios.sublinear_catalogue ~params ~n:n_sub)
        ~expected_time:
          (float_of_int (params.Core.Params.d_max + (8 * params.Core.Params.t_h) + (8 * n_sub)))
        ~jobs ~trials ~seed:(seed + 2 + h))
    (match mode with Exp_common.Quick -> [ 1 ] | Exp_common.Full -> [ 0; 1; 2 ]);
  Buffer.add_string buf
    "(viol counts runs that re-entered incorrectness after first looking correct:\n\
     planted ranks or forged trees can make the monitor see a transiently\n\
     'correct' configuration that the protocol then justifiedly tears down)\n";
  Buffer.contents buf
