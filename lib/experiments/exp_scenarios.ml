let name = "scenarios"

let description = "Per-adversary fingerprint: every scenario of the catalogue, per protocol"

let scenario_header = [ "scenario"; "trials"; "mean"; "p95"; "max"; "fail"; "viol" ]

let row_of_measurement scenario (m : Exp_common.measurement) trials =
  if Array.length m.Exp_common.times = 0 then
    [ scenario; string_of_int trials; "-"; "-"; "-"; string_of_int m.Exp_common.failures;
      string_of_int m.Exp_common.violations ]
  else begin
    let s = Exp_common.summary m in
    [
      scenario;
      string_of_int s.Stats.Summary.count;
      Stats.Table.cell_float s.Stats.Summary.mean;
      Stats.Table.cell_float s.Stats.Summary.p95;
      Stats.Table.cell_float s.Stats.Summary.max;
      string_of_int m.Exp_common.failures;
      string_of_int m.Exp_common.violations;
    ]
  end

let sweep ?(engine = Engine.Exec.Agent) buf ~title ~protocol ~catalogue ~expected_time ~jobs
    ~trials ~seed =
  let table = Stats.Table.create ~header:scenario_header in
  List.iter
    (fun (scenario, gen) ->
      let m =
        Exp_common.measure ~label:scenario ~protocol ~init:gen ~task:Engine.Runner.Ranking
          ~expected_time ~engine ~jobs ~trials ~seed ()
      in
      Stats.Table.add_row table (row_of_measurement scenario m trials))
    catalogue;
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n"

(* Transient-fault recovery at populations only the count engine reaches:
   start from the correct silent ranking, corrupt a fraction of the agents,
   and measure re-stabilization. Exercises the count engine's fault
   injection and the runner's exact-silence shortcut end to end. *)
let recovery_at_scale buf ~n ~fraction ~jobs ~trials ~seed =
  let protocol = Core.Silent_n_state.protocol ~n in
  let table =
    Stats.Table.create
      ~header:[ "n"; "corrupted"; "trials"; "mean recovery"; "p95"; "fail"; "events mean" ]
  in
  let samples =
    Exp_common.run_trials ~jobs ~trials ~seed (fun rng ->
        let exec =
          Engine.Exec.make ~kind:Engine.Exec.Count ~protocol
            ~init:(Core.Scenarios.silent_correct ~n) ~rng ()
        in
        let corrupted =
          Engine.Exec.corrupt exec ~rng ~fraction (fun rng ->
              Core.Silent_n_state.state_of_rank0 (Prng.int rng n) ~n)
        in
        let o =
          Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
            ~max_interactions:
              (Engine.Runner.default_horizon ~n
                 ~expected_time:(float_of_int (n * n) /. 2.0))
            ~confirm_interactions:(Engine.Runner.default_confirm ~n)
            exec
        in
        (corrupted, o, Engine.Exec.events exec))
  in
  let corrupted = match samples.(0) with c, _, _ -> c in
  let times =
    Array.to_list samples
    |> List.filter_map (fun (_, o, _) ->
           if o.Engine.Runner.converged then Some o.Engine.Runner.convergence_time else None)
  in
  let failures = trials - List.length times in
  let events_mean =
    Array.fold_left (fun acc (_, _, e) -> acc +. float_of_int e) 0.0 samples
    /. float_of_int trials
  in
  let s = Stats.Summary.of_list times in
  Stats.Table.add_row table
    [
      string_of_int n;
      string_of_int corrupted;
      string_of_int trials;
      Stats.Table.cell_float s.Stats.Summary.mean;
      Stats.Table.cell_float s.Stats.Summary.p95;
      string_of_int failures;
      Stats.Table.cell_float events_mean;
    ];
  Buffer.add_string buf
    (Printf.sprintf
       "Recovery from a %.0f%% corruption burst (count engine, exact stabilization)\n"
       (fraction *. 100.0));
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n"

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "== Experiment SN: adversary catalogue ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:20 in
  let n_silent = match mode with Exp_common.Quick -> 16 | Exp_common.Full -> 32 in
  sweep buf
    ~title:(Printf.sprintf "Silent-n-state-SSR, n=%d" n_silent)
    ~protocol:(Core.Silent_n_state.protocol ~n:n_silent)
    ~catalogue:(Core.Scenarios.silent_catalogue ~n:n_silent)
    ~expected_time:(float_of_int (n_silent * n_silent))
    ~jobs ~trials ~seed;
  (* The same catalogue at a population the agent engine cannot sweep:
     the count engine's silence oracle keeps each trial at Θ(events). *)
  let n_scale = match mode with Exp_common.Quick -> 256 | Exp_common.Full -> 2048 in
  sweep ~engine:Engine.Exec.Count buf
    ~title:(Printf.sprintf "Silent-n-state-SSR at scale (count engine), n=%d" n_scale)
    ~protocol:(Core.Silent_n_state.protocol ~n:n_scale)
    ~catalogue:(Core.Scenarios.silent_catalogue ~n:n_scale)
    ~expected_time:(float_of_int (n_scale * n_scale))
    ~jobs ~trials ~seed:(seed + 10);
  recovery_at_scale buf ~n:n_scale ~fraction:0.1 ~jobs ~trials ~seed:(seed + 11);
  let n_opt = match mode with Exp_common.Quick -> 16 | Exp_common.Full -> 48 in
  let params = Core.Params.optimal_silent n_opt in
  sweep buf
    ~title:(Printf.sprintf "Optimal-Silent-SSR, n=%d" n_opt)
    ~protocol:(Core.Optimal_silent.protocol ~params ~n:n_opt ())
    ~catalogue:(Core.Scenarios.optimal_catalogue ~params ~n:n_opt)
    ~expected_time:(float_of_int (30 * n_opt))
    ~jobs ~trials ~seed:(seed + 1);
  List.iter
    (fun h ->
      let n_sub = match mode with Exp_common.Quick -> 8 | Exp_common.Full -> 16 in
      let params = Core.Params.sublinear ~h n_sub in
      sweep buf
        ~title:(Printf.sprintf "Sublinear-Time-SSR, n=%d, H=%d" n_sub h)
        ~protocol:(Core.Sublinear.protocol ~params ~n:n_sub ~h ())
        ~catalogue:(Core.Scenarios.sublinear_catalogue ~params ~n:n_sub)
        ~expected_time:
          (float_of_int (params.Core.Params.d_max + (8 * params.Core.Params.t_h) + (8 * n_sub)))
        ~jobs ~trials ~seed:(seed + 2 + h))
    (match mode with Exp_common.Quick -> [ 1 ] | Exp_common.Full -> [ 0; 1; 2 ]);
  Buffer.add_string buf
    "(viol counts runs that re-entered incorrectness after first looking correct:\n\
     planted ranks or forged trees can make the monitor see a transiently\n\
     'correct' configuration that the protocol then justifiedly tears down)\n";
  Buffer.contents buf
