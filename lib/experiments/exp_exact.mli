(** Experiment EX: exhaustive validation at small populations.

    For Silent-n-state-SSR at n ≤ 7 the entire configuration space fits in
    memory, so the Markov chain of the protocol under the uniform scheduler
    is solved {e exactly} ({!Exact.Chain}): every configuration provably
    reaches absorption, every absorbing configuration is verified to be a
    correct ranking (self-stabilization, model-checked), and the exact
    expected stabilization times calibrate both simulation engines — the
    measured means must match the solved values within sampling error. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
