(** Experiments F1 and F2: the paper's two figures.

    - Figure 1: the binary-tree rank assignment of Optimal-Silent-SSR at
      n = 12 with 8 settled agents — rendered exactly, plus a measurement
      that the leader-driven ranking phase alone (one Settled root, n−1
      Unsettled) completes in Θ(n) parallel time.
    - Figure 2: the two example executions building history trees in four
      agents, with the caption's consistency checks: after the plain
      a-b, b-c, c-d history, agent [d]'s path checks out against [a] at
      the {e first} edge; after the variant with a second a-b interaction
      (sync 7), it checks out at the {e second} edge. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string

val figure1_tree : n:int -> settled:int -> string
(** ASCII rendering of the rank tree with settled/unsettled marking
    (Figure 1 uses [n = 12], [settled = 8]). *)

val figure2_script : unit -> string
(** The four-agent scripted executions with tree printouts and the two
    consistency checks. *)
