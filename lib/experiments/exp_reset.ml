let name = "reset"

let description = "Section 3: Propagate-Reset completes in O(log n) parallel time"

(* A protocol that is nothing but Propagate-Reset: computing agents do
   nothing; the payload is unit; awakening bumps a per-run counter so we
   can verify every agent resets exactly once per wave. *)
let reset_only_protocol ~n ~r_max ~d_max ~awake_counter : (unit, unit) Core.Reset.role Engine.Protocol.t =
  let spec =
    {
      Core.Reset.r_max;
      d_max;
      recruit_payload = (fun _ -> ());
      propagating_tick = (fun _ () -> ());
      dormant_tick = (fun _ () -> ());
      resetting_pair = (fun _ () () -> ((), ()));
      awaken =
        (fun _ () ->
          incr awake_counter;
          ());
    }
  in
  let transition rng a b =
    match (a, b) with
    | Core.Reset.Computing (), Core.Reset.Computing () -> (a, b)
    | _ -> Core.Reset.step ~spec rng a b
  in
  {
    Engine.Protocol.name = "Propagate-Reset-only";
    n;
    transition;
    deterministic = true;
    equal = ( = );
    pp =
      (fun fmt s ->
        Core.Reset.pp_role
          (fun f () -> Format.pp_print_string f "·")
          (fun f () -> Format.pp_print_string f "·")
          fmt s);
    rank = (fun _ -> None);
    is_leader = (fun _ -> false);
  }

let all_computing sim =
  let n = Engine.Sim.n sim in
  let rec check i =
    i >= n
    ||
    match Engine.Sim.state sim i with
    | Core.Reset.Computing () -> check (i + 1)
    | Core.Reset.Resetting _ -> false
  in
  check 0

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment RS: Propagate-Reset ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:30 in
  let ns =
    match mode with
    | Exp_common.Quick -> [ 16; 64; 256 ]
    | Exp_common.Full -> [ 16; 32; 64; 128; 256; 512; 1024 ]
  in
  let scenario_table scenario_name make_init =
    let table =
      Stats.Table.create
        ~header:[ "n"; "trials"; "mean time"; "p95"; "resets/agent mean"; "resets/agent max" ]
    in
    let points =
      List.map
        (fun n ->
          let r_max = max 6 (4 * Core.Params.ceil_ln n) in
          let d_max = 8 * Core.Params.ceil_ln n in
          (* The awake counter lives inside the trial: each parallel trial
             wraps its own protocol record around its own counter. *)
          let samples =
            Exp_common.run_trials ~jobs ~trials ~seed (fun rng ->
                let awake_counter = ref 0 in
                let protocol = reset_only_protocol ~n ~r_max ~d_max ~awake_counter in
                let init = make_init rng ~n ~r_max ~d_max in
                let sim = Engine.Sim.make ~protocol ~init ~rng in
                let horizon = 200 * n * max 1 (Core.Params.ceil_ln n) in
                while (not (all_computing sim)) && Engine.Sim.interactions sim < horizon do
                  Engine.Sim.step sim
                done;
                (Engine.Sim.parallel_time sim, float_of_int !awake_counter /. float_of_int n))
          in
          let t = Stats.Summary.of_array (Array.map fst samples) in
          let r = Stats.Summary.of_array (Array.map snd samples) in
          Stats.Table.add_row table
            [
              string_of_int n;
              string_of_int trials;
              Stats.Table.cell_float t.Stats.Summary.mean;
              Stats.Table.cell_float t.Stats.Summary.p95;
              Stats.Table.cell_float r.Stats.Summary.mean;
              Stats.Table.cell_float r.Stats.Summary.max;
            ];
          (n, t.Stats.Summary.mean))
        ns
    in
    Buffer.add_string buf (scenario_name ^ "\n");
    Buffer.add_string buf (Stats.Table.render table);
    let fit =
      Stats.Regression.semilog_x (List.map (fun (n, t) -> (float_of_int n, t)) points)
    in
    Buffer.add_string buf
      (Printf.sprintf "\ntime vs ln n: slope=%.3f, r2=%.4f (paper: Θ(log n))\n\n"
         fit.Stats.Regression.slope fit.Stats.Regression.r2)
  in
  scenario_table "Single triggered agent among computing agents" (fun _rng ~n ~r_max ~d_max ->
      Array.init n (fun i ->
          if i = 0 then
            Core.Reset.Resetting { Core.Reset.resetcount = r_max; delaytimer = d_max; payload = () }
          else Core.Reset.Computing ()));
  scenario_table "Adversarial: every agent in a random Resetting state" (fun rng ~n ~r_max ~d_max ->
      Array.init n (fun _ ->
          Core.Reset.Resetting
            {
              Core.Reset.resetcount = Prng.int rng (r_max + 1);
              delaytimer = Prng.int rng (d_max + 1);
              payload = ();
            }));
  Buffer.contents buf
