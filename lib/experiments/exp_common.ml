type mode = Quick | Full

type measurement = {
  label : string;
  n : int;
  times : float array;
  events : int array;
  failures : int;
  violations : int;
  silent_checked : int;
  silent_ok : int;
}

(* All Monte Carlo batches go through this runner. Trial [i] draws
   exclusively from child generator [i], which is pre-split from the root
   before anything is dispatched to the pool — see the seeding discipline
   in [Engine.Pool]'s documentation — so the returned array depends only
   on [seed] and [trials], never on [jobs]. When an ambient metrics
   registry is installed (experiments_main --out-dir), each trial's wall
   time is observed into it; otherwise the cost is one atomic read per
   trial. *)
let run_trials ?jobs ?pool ~trials ~seed body =
  let children = Prng.split_many (Prng.create ~seed) trials in
  let trial i =
    match Telemetry.Metrics.ambient () with
    | None -> body children.(i)
    | Some reg ->
        let t0 = Unix.gettimeofday () in
        let result = body children.(i) in
        Telemetry.Metrics.observe reg "trial_wall_s" (Unix.gettimeofday () -. t0);
        result
  in
  match pool with
  | Some pool -> Engine.Pool.init pool trials trial
  | None ->
      let jobs = match jobs with Some j -> j | None -> Engine.Pool.default_jobs () in
      Engine.Pool.with_pool ~jobs (fun pool -> Engine.Pool.init pool trials trial)

(* Per-trial record folded (in trial order) into a [measurement]. *)
type trial = {
  time : float option;  (* convergence time, when the trial converged *)
  trial_events : int;  (* state-changing interactions executed *)
  trial_violations : int;
  silent : bool option;  (* silence of the final config, when checked *)
}

let measure ~label ~protocol ~init ~task ~expected_time ?(engine = Engine.Exec.Agent)
    ?check_silence ?jobs ?pool ~trials ~seed () =
  let n = protocol.Engine.Protocol.n in
  let check_silence =
    match check_silence with Some b -> b | None -> protocol.Engine.Protocol.deterministic
  in
  let outcomes =
    run_trials ?jobs ?pool ~trials ~seed (fun rng ->
        let config = init rng in
        let exec =
          Telemetry.Span.wrap "init_drain" (fun () ->
              Engine.Exec.make ~kind:engine ~protocol ~init:config ~rng ())
        in
        let outcome =
          Telemetry.Span.wrap "advance" (fun () ->
              Engine.Runner.run_to_stability ~task
                ~max_interactions:(Engine.Runner.default_horizon ~n ~expected_time)
                ~confirm_interactions:(Engine.Runner.default_confirm ~n)
                exec)
        in
        let silent =
          if outcome.Engine.Runner.converged && check_silence then
            (* the count engine answers through its exact oracle; the agent
               engine needs the O(d²) configuration scan *)
            match Engine.Exec.silent exec with
            | Some b -> Some b
            | None ->
                Some
                  (Engine.Silence.configuration_is_silent protocol (Engine.Exec.snapshot exec))
          else None
        in
        Telemetry.Metrics.record_exec exec;
        {
          time =
            (if outcome.Engine.Runner.converged then
               Some outcome.Engine.Runner.convergence_time
             else None);
          trial_events = Engine.Exec.events exec;
          trial_violations = outcome.Engine.Runner.violations;
          silent;
        })
  in
  let times = ref [] in
  let events = ref [] in
  let failures = ref 0 in
  let violations = ref 0 in
  let silent_checked = ref 0 in
  let silent_ok = ref 0 in
  Array.iter
    (fun t ->
      violations := !violations + t.trial_violations;
      (match t.time with
      | Some time ->
          times := time :: !times;
          events := t.trial_events :: !events
      | None -> incr failures);
      match t.silent with
      | Some ok ->
          incr silent_checked;
          if ok then incr silent_ok
      | None -> ())
    outcomes;
  {
    label;
    n;
    times = Array.of_list (List.rev !times);
    events = Array.of_list (List.rev !events);
    failures = !failures;
    violations = !violations;
    silent_checked = !silent_checked;
    silent_ok = !silent_ok;
  }

let summary m = Stats.Summary.of_array m.times

let mean_time m = Stats.Summary.mean m.times

let scaling_fit points =
  Stats.Regression.log_log
    (List.map (fun (n, m) -> (float_of_int n, mean_time m)) points)

let semilog_fit points =
  Stats.Regression.semilog_x
    (List.map (fun (n, m) -> (float_of_int n, mean_time m)) points)

let time_header = [ "n"; "trials"; "mean"; "±95%"; "median"; "p95"; "max"; "fail"; "viol" ]

let time_row m =
  if Array.length m.times = 0 then
    [ string_of_int m.n; "0"; "-"; "-"; "-"; "-"; "-"; string_of_int m.failures;
      string_of_int m.violations ]
  else begin
    let s = summary m in
    [
      string_of_int m.n;
      string_of_int s.Stats.Summary.count;
      Stats.Table.cell_float s.Stats.Summary.mean;
      Stats.Table.cell_float (Stats.Summary.ci95_halfwidth m.times);
      Stats.Table.cell_float s.Stats.Summary.median;
      Stats.Table.cell_float s.Stats.Summary.p95;
      Stats.Table.cell_float s.Stats.Summary.max;
      string_of_int m.failures;
      string_of_int m.violations;
    ]
  end

let trials_of_mode mode ~base = match mode with Full -> base | Quick -> max 5 (base / 3)
