type mode = Quick | Full

type measurement = {
  label : string;
  n : int;
  times : float array;
  failures : int;
  violations : int;
  silent_checked : int;
  silent_ok : int;
}

let measure ~label ~protocol ~init ~task ~expected_time ?check_silence ~trials ~seed () =
  let n = protocol.Engine.Protocol.n in
  let check_silence =
    match check_silence with Some b -> b | None -> protocol.Engine.Protocol.deterministic
  in
  let root = Prng.create ~seed in
  let times = ref [] in
  let failures = ref 0 in
  let violations = ref 0 in
  let silent_checked = ref 0 in
  let silent_ok = ref 0 in
  for _ = 1 to trials do
    let rng = Prng.split root in
    let config = init rng in
    let sim = Engine.Sim.make ~protocol ~init:config ~rng in
    let outcome =
      Engine.Runner.run_to_stability ~task
        ~max_interactions:(Engine.Runner.default_horizon ~n ~expected_time)
        ~confirm_interactions:(Engine.Runner.default_confirm ~n)
        sim
    in
    violations := !violations + outcome.Engine.Runner.violations;
    if outcome.Engine.Runner.converged then begin
      times := outcome.Engine.Runner.convergence_time :: !times;
      if check_silence then begin
        incr silent_checked;
        if Engine.Silence.configuration_is_silent protocol (Engine.Sim.snapshot sim) then
          incr silent_ok
      end
    end
    else incr failures
  done;
  {
    label;
    n;
    times = Array.of_list (List.rev !times);
    failures = !failures;
    violations = !violations;
    silent_checked = !silent_checked;
    silent_ok = !silent_ok;
  }

let summary m = Stats.Summary.of_array m.times

let mean_time m = Stats.Summary.mean m.times

let scaling_fit points =
  Stats.Regression.log_log
    (List.map (fun (n, m) -> (float_of_int n, mean_time m)) points)

let semilog_fit points =
  Stats.Regression.semilog_x
    (List.map (fun (n, m) -> (float_of_int n, mean_time m)) points)

let time_header = [ "n"; "trials"; "mean"; "±95%"; "median"; "p95"; "max"; "fail"; "viol" ]

let time_row m =
  if Array.length m.times = 0 then
    [ string_of_int m.n; "0"; "-"; "-"; "-"; "-"; "-"; string_of_int m.failures;
      string_of_int m.violations ]
  else begin
    let s = summary m in
    [
      string_of_int m.n;
      string_of_int s.Stats.Summary.count;
      Stats.Table.cell_float s.Stats.Summary.mean;
      Stats.Table.cell_float (Stats.Summary.ci95_halfwidth m.times);
      Stats.Table.cell_float s.Stats.Summary.median;
      Stats.Table.cell_float s.Stats.Summary.p95;
      Stats.Table.cell_float s.Stats.Summary.max;
      string_of_int m.failures;
      string_of_int m.violations;
    ]
  end

let trials_of_mode mode ~base = match mode with Full -> base | Quick -> max 5 (base / 3)
