(** Experiment SC: Table 1 row 1 at scale, with exact stabilization times.

    The count-based engine ({!Engine.Count_sim}) skips null interactions in
    bulk and observes silence exactly, so Silent-n-state-SSR's Θ(n²)
    stabilization can be measured up to populations of several thousands —
    far beyond the per-interaction engine — and compared against the
    analytic worst-case curve (n−1)²/2. The worst case performs exactly
    n−1 productive interactions (the duplicate token climbs the barrier one
    bottleneck meeting at a time), which the engine also verifies. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
