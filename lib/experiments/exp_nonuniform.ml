let name = "nonuniform"

let description = "Theorem 2.1: size-n1 transitions inside a size-n2 population break stability"

(* Silent-n-state transitions compiled for n1, but installed in a protocol
   record driving n2 agents: exactly what a uniform protocol would do. *)
let mismatched_protocol ~n1 ~n2 : Core.Silent_n_state.state Engine.Protocol.t =
  let p1 = Core.Silent_n_state.protocol ~n:n1 in
  { p1 with Engine.Protocol.n = n2; name = Printf.sprintf "Silent-%d-state in n=%d" n1 n2 }

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment TH2.1: strong nonuniformity ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:30 in
  let pairs =
    match mode with
    | Exp_common.Quick -> [ (8, 12); (16, 24); (32, 48) ]
    | Exp_common.Full -> [ (8, 12); (16, 24); (32, 48); (64, 96); (64, 128) ]
  in
  let table =
    Stats.Table.create
      ~header:
        [ "n1"; "n2"; "trials"; "mean time to 2nd leader"; "p95"; "frac time 1 leader (long run)" ]
  in
  List.iter
    (fun (n1, n2) ->
      let protocol = mismatched_protocol ~n1 ~n2 in
      let samples =
        Exp_common.run_trials ~jobs ~trials ~seed (fun rng ->
            (* n2 agents, ranks within 0..n1-1, exactly one at rank 0: a
               single-leader configuration that would be stable at size n1.
               The surplus agents duplicate ranks in the top half, so the
               mod-n1 wrap-around that mints the second leader is reached
               within the measurement window even for larger n1. *)
            let lo = n1 / 2 in
            let init =
              Array.init n2 (fun i ->
                  Core.Silent_n_state.state_of_rank0 ~n:n1
                    (if i = 0 then 0 else lo + ((i - 1) mod (n1 - lo))))
            in
            let sim = Engine.Sim.make ~protocol ~init ~rng in
            let horizon = 200 * n2 in
            while Engine.Sim.leader_count sim < 2 && Engine.Sim.interactions sim < horizon do
              Engine.Sim.step sim
            done;
            let to_second = Engine.Sim.parallel_time sim in
            (* Long-run single-leader occupancy over a further window. *)
            let window = 100 * n2 in
            let good = ref 0 in
            for _ = 1 to window do
              Engine.Sim.step sim;
              if Engine.Sim.leader_correct sim then incr good
            done;
            (to_second, float_of_int !good /. float_of_int window))
      in
      let t = Stats.Summary.of_array (Array.map fst samples) in
      let f = Stats.Summary.of_array (Array.map snd samples) in
      Stats.Table.add_row table
        [
          string_of_int n1;
          string_of_int n2;
          string_of_int trials;
          Stats.Table.cell_float t.Stats.Summary.mean;
          Stats.Table.cell_float t.Stats.Summary.p95;
          Stats.Table.cell_float f.Stats.Summary.mean;
        ])
    pairs;
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf
    "\n\n(a second leader always appears, and the single-leader fraction stays < 1:\n\
     the size-n1 protocol cannot stabilize at size n2, exactly as Theorem 2.1 forces)\n";
  Buffer.contents buf
