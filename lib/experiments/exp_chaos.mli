(** Experiment CH: steady-state availability under sustained faults.

    The paper's time bounds are per-recovery; this experiment measures
    what they buy under {e continuous} attack. Each protocol tier is
    soaked from its correct configuration under a Poisson fault schedule
    ({!Chaos.Soak}), sweeping the offered load — expected fault arrivals
    per recovery time — through below, at, and above 1. The Ω(log n)
    per-recovery lower bound predicts the shape: below load 1 the system
    is almost always correct, above it recoveries no longer complete
    between strikes and availability collapses. One table over all three
    tiers on both engines (sublinear is randomized, hence agent engine
    only), reporting availability, pooled recovery mean/p95, censored
    bursts and the SLA verdict. *)

val name : string
val description : string
val run : mode:Exp_common.mode -> seed:int -> jobs:int -> string
