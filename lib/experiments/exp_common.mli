(** Shared machinery for the paper-reproduction experiments.

    Each experiment module ([Exp_table1], [Exp_silent_lb], …) measures one
    table, figure or claim of the paper and renders paper-shaped text
    tables. This module provides the trial runner (seeded, parallel over a
    domain pool, with convergence confirmation and optional silence
    checking) and the sweep helpers. *)

type mode = Quick | Full
(** [Quick] keeps every experiment under roughly a minute (used by the
    default bench run); [Full] uses larger populations and more trials
    (used to regenerate EXPERIMENTS.md). *)

type measurement = {
  label : string;
  n : int;
  times : float array;  (** convergence parallel times of converged trials *)
  events : int array;
      (** state-changing interactions of converged trials, aligned with
          [times]; on the agent engine every interaction counts (nulls are
          not detected there) *)
  failures : int;  (** trials that missed the interaction horizon *)
  violations : int;  (** total correctness losses after first entry *)
  silent_checked : int;  (** converged trials whose final config was checked *)
  silent_ok : int;  (** …of which were silent *)
}

val run_trials :
  ?jobs:int -> ?pool:Engine.Pool.t -> trials:int -> seed:int -> (Prng.t -> 'a) -> 'a array
(** [run_trials ~jobs ~trials ~seed body] runs [body] once per trial on a
    domain pool of [jobs] workers (default {!Engine.Pool.default_jobs}; an
    existing [pool] can be supplied instead) and returns the results in
    trial order. Child generators are pre-split from [seed] {e before}
    dispatch — one per trial index — so the result array is bit-for-bit
    identical for every [jobs] value. [body] must draw randomness only
    from its argument.

    When an ambient metrics registry is installed
    ([Telemetry.Metrics.install], as [experiments_main --out-dir] does),
    every trial observes its wall time into the ["trial_wall_s"] histogram;
    with none installed the overhead is one atomic read per trial. *)

val measure :
  label:string ->
  protocol:'a Engine.Protocol.t ->
  init:(Prng.t -> 'a array) ->
  task:Engine.Runner.task ->
  expected_time:float ->
  ?engine:Engine.Exec.kind ->
  ?check_silence:bool ->
  ?jobs:int ->
  ?pool:Engine.Pool.t ->
  trials:int ->
  seed:int ->
  unit ->
  measurement
(** Runs [trials] independent simulations (child generators split from
    [seed], one per trial, executed via {!run_trials}), each until
    stability or until the horizon
    [Engine.Runner.default_horizon ~n ~expected_time]. [engine] picks the
    executor (default [Agent]; [Count] requires a deterministic protocol
    and exploits the exact-silence oracle, reaching populations the agent
    engine cannot). When [check_silence] (default: the protocol's
    [deterministic] flag) the final configuration of each converged trial
    is tested for silence — exactly via the oracle on the count engine, by
    configuration scan on the agent engine. The measurement is identical
    for every [jobs] value (but differs between engines: they follow
    different random trajectories, equal only in distribution). With an
    ambient metrics registry installed, each trial additionally folds its
    engine counters ([Engine.Exec.stats], prefixed ["engine."]) into the
    registry. *)

val summary : measurement -> Stats.Summary.t
(** Summary of the convergence times; raises if no trial converged. *)

val mean_time : measurement -> float

val scaling_fit : (int * measurement) list -> Stats.Regression.fit
(** Log-log fit of mean convergence time against [n]. *)

val semilog_fit : (int * measurement) list -> Stats.Regression.fit
(** Fit of mean time against [ln n] (for Θ(log n) claims). *)

val time_row : measurement -> string list
(** Table cells: n, trials, mean, ±95% CI, median, p95, max, failures,
    violations (correctness losses after first entry, summed over
    trials — convergence ≠ stabilization shows up here). *)

val time_header : string list

val trials_of_mode : mode -> base:int -> int
(** [Full] keeps [base] trials, [Quick] divides by 3 (min 5). *)
