let name = "silent_lb"

let description = "Observation 2.2: silent SSLE protocols need Ω(n) time"

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment O2.2: silent lower bound ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:30 in
  let ns = match mode with Exp_common.Quick -> [ 16; 32; 64 ] | Exp_common.Full -> [ 16; 32; 64; 128; 256 ] in
  (* Convergence from a silent configuration with a planted duplicate, for
     both silent protocols. The lower bound says mean >= ~n/3. *)
  let table =
    Stats.Table.create
      ~header:([ "protocol" ] @ Exp_common.time_header @ [ "LB n/3"; "mean/(n/3)" ])
  in
  List.iter
    (fun n ->
      let lb = float_of_int n /. 3.0 in
      let add_row label m =
        Stats.Table.add_row table
          ([ label ] @ Exp_common.time_row m
          @ [ Stats.Table.cell_float lb; Stats.Table.cell_float (Exp_common.mean_time m /. lb) ])
      in
      let m1 =
        let protocol = Core.Silent_n_state.protocol ~n in
        Exp_common.measure ~label:"planted" ~protocol
          ~init:(fun rng ->
            let config = Core.Scenarios.silent_correct ~n in
            (* Duplicate a random agent's rank onto another agent. *)
            let victim, source = Prng.distinct_pair rng n in
            config.(victim) <- config.(source);
            config)
          ~task:Engine.Runner.Ranking
          ~expected_time:(Stats.Theory.quadratic_barrier_time n)
          ~jobs ~trials ~seed ()
      in
      add_row "Silent-n-state-SSR" m1;
      let m2 =
        let params = Core.Params.optimal_silent n in
        let protocol = Core.Optimal_silent.protocol ~params ~n () in
        Exp_common.measure ~label:"planted" ~protocol
          ~init:(fun rng -> Core.Scenarios.optimal_duplicate_rank rng ~n)
          ~task:Engine.Runner.Ranking
          ~expected_time:(float_of_int (20 * n))
          ~jobs ~trials ~seed:(seed + 1) ()
      in
      add_row "Optimal-Silent-SSR" m2)
    ns;
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n";
  (* Tail bound: P[meeting time >= alpha n ln n] vs the bound (1/2)n^{-3alpha}.
     The meeting time of the planted pair is exactly geometric, so we sample
     it directly with many trials. *)
  let n = match mode with Exp_common.Quick -> 32 | Exp_common.Full -> 64 in
  let tail_trials = match mode with Exp_common.Quick -> 20_000 | Exp_common.Full -> 100_000 in
  let rng = Prng.create ~seed:(seed + 2) in
  let samples = Processes.Coupon.meeting_times rng ~n ~trials:tail_trials in
  let hist = Stats.Histogram.of_samples ~lo:0.0 ~hi:(4.0 *. float_of_int n) ~bins:16 samples in
  let table2 =
    Stats.Table.create ~header:[ "alpha"; "threshold (αn ln n)"; "empirical P[≥]"; "bound ½n^(-3α)" ]
  in
  List.iter
    (fun alpha ->
      let threshold = alpha *. float_of_int n *. log (float_of_int n) in
      Stats.Table.add_row table2
        [
          Stats.Table.cell_float ~decimals:2 alpha;
          Stats.Table.cell_float threshold;
          Stats.Table.cell_float ~decimals:5 (Stats.Histogram.fraction_at_least hist threshold);
          Stats.Table.cell_float ~decimals:5 (Stats.Theory.silent_lb_tail ~n ~alpha);
        ])
    [ 0.1; 0.2; 0.33; 0.5 ];
  Buffer.add_string buf
    (Printf.sprintf "Tail of the planted-pair meeting time, n=%d, %d samples\n" n tail_trials);
  Buffer.add_string buf (Stats.Table.render table2);
  Buffer.add_string buf
    "\n(the empirical tail must dominate the bound: Observation 2.2 is a lower bound)\n\n";
  Buffer.add_string buf
    (Printf.sprintf "Distribution of the planted-pair meeting time (n=%d; geometric: the\nmemoryless heavy tail that makes silent protocols slow)\n" n);
  Buffer.add_string buf (Stats.Histogram.render ~width:40 hist);
  Buffer.contents buf
