let name = "epidemic"

let description = "Sections 1.1 & 2: epidemic, bounded epidemic (τ_k), roll call"

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment EP: probabilistic tools ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:60 in
  (* Two-way epidemic vs ln n. *)
  let ns =
    match mode with
    | Exp_common.Quick -> [ 64; 256; 1024 ]
    | Exp_common.Full -> [ 64; 256; 1024; 4096; 16384 ]
  in
  let table = Stats.Table.create ~header:[ "n"; "mean time"; "p95"; "theory (≈ 2 ln n)" ] in
  List.iter
    (fun n ->
      let samples =
        Exp_common.run_trials ~jobs ~trials ~seed:(seed + n) (fun rng ->
            (Processes.Epidemic.run rng ~n).Processes.Epidemic.completion_time)
      in
      let s = Stats.Summary.of_array samples in
      Stats.Table.add_row table
        [
          string_of_int n;
          Stats.Table.cell_float s.Stats.Summary.mean;
          Stats.Table.cell_float s.Stats.Summary.p95;
          Stats.Table.cell_float (2.0 *. log (float_of_int n));
        ])
    ns;
  Buffer.add_string buf "Two-way epidemic completion (parallel time)\n";
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n";
  (* Bounded epidemic: E[tau_k] against the paper's k·n^{1/k} shape. *)
  let n = match mode with Exp_common.Quick -> 256 | Exp_common.Full -> 1024 in
  let tau_trials = Exp_common.trials_of_mode mode ~base:30 in
  let ks = [ 1; 2; 3; 4; 6; 8; Core.Params.ceil_log2 n ] in
  let table2 =
    Stats.Table.create ~header:[ "k"; "mean τ_k"; "p95"; "k·n^(1/k)"; "mean/(k·n^(1/k))" ]
  in
  List.iter
    (fun k ->
      let samples =
        Exp_common.run_trials ~jobs ~trials:tau_trials ~seed:(seed + (100 * k)) (fun rng ->
            Processes.Bounded_epidemic.tau_sample rng ~n ~k)
      in
      let s = Stats.Summary.of_array samples in
      let bound = Stats.Theory.bounded_epidemic_bound ~n ~k in
      Stats.Table.add_row table2
        [
          string_of_int k;
          Stats.Table.cell_float s.Stats.Summary.mean;
          Stats.Table.cell_float s.Stats.Summary.p95;
          Stats.Table.cell_float bound;
          Stats.Table.cell_float (s.Stats.Summary.mean /. bound);
        ])
    (List.sort_uniq compare ks);
  Buffer.add_string buf (Printf.sprintf "Bounded epidemic hitting times, n=%d\n" n);
  Buffer.add_string buf (Stats.Table.render table2);
  Buffer.add_string buf
    "\n(the ratio column must stay O(1): E[τ_k] = O(k·n^{1/k}), Section 1.1)\n\n";
  (* Roll call: ≈1.5× the epidemic. *)
  let ns3 = match mode with Exp_common.Quick -> [ 64; 256 ] | Exp_common.Full -> [ 64; 256; 1024 ] in
  let table3 =
    Stats.Table.create ~header:[ "n"; "roll call mean"; "epidemic mean"; "ratio (paper ≈1.5)" ]
  in
  List.iter
    (fun n ->
      let pairs =
        Exp_common.run_trials ~jobs ~trials ~seed:(seed + (3 * n) + 1) (fun rng ->
            let roll = (Processes.Roll_call.run rng ~n).Processes.Roll_call.completion_time in
            let epi = (Processes.Epidemic.run rng ~n).Processes.Epidemic.completion_time in
            (roll, epi))
      in
      let mr = Stats.Summary.mean (Array.map fst pairs)
      and me = Stats.Summary.mean (Array.map snd pairs) in
      Stats.Table.add_row table3
        [
          string_of_int n;
          Stats.Table.cell_float mr;
          Stats.Table.cell_float me;
          Stats.Table.cell_float (mr /. me);
        ])
    ns3;
  Buffer.add_string buf "Roll call vs epidemic\n";
  Buffer.add_string buf (Stats.Table.render table3);
  Buffer.add_string buf "\n\n";
  (* Synthetic coins (footnotes 5-6). Two views: (a) the bias of the single
     bit harvested right after a given warm-up, across restarts from the
     fully correlated all-zero start — it decays from 1/2 (the first coin
     observed is always 0) to ~0 within O(n) interactions; (b) the long-run
     stream quality (bias and lag-1 correlation). *)
  let n = 64 in
  let restarts = match mode with Exp_common.Quick -> 4_000 | Exp_common.Full -> 20_000 in
  let table4 = Stats.Table.create ~header:[ "warmup (interactions)"; "restarts"; "bias of next bit" ] in
  List.iter
    (fun warmup ->
      let bits =
        Exp_common.run_trials ~jobs ~trials:restarts ~seed:(seed + warmup + 7) (fun rng ->
            (Processes.Synthetic_coin.harvest rng ~n ~warmup ~count:1).(0))
      in
      let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
      Stats.Table.add_row table4
        [
          string_of_int warmup;
          string_of_int restarts;
          Stats.Table.cell_float ~decimals:4
            (Float.abs ((float_of_int ones /. float_of_int restarts) -. 0.5));
        ])
    [ 0; 8; 32; n; 4 * n ];
  Buffer.add_string buf
    (Printf.sprintf "Synthetic coins at n=%d (paper footnotes 5-6), from all-zero coins\n" n);
  Buffer.add_string buf (Stats.Table.render table4);
  Buffer.add_string buf "\n";
  let samples = match mode with Exp_common.Quick -> 20_000 | Exp_common.Full -> 100_000 in
  let r =
    Processes.Synthetic_coin.measure (Prng.create ~seed:(seed + 11)) ~n ~warmup:(4 * n) ~samples
  in
  Buffer.add_string buf
    (Printf.sprintf "Warmed-up stream of %d bits: bias %.4f, lag-1 correlation %.4f\n"
       r.Processes.Synthetic_coin.samples r.Processes.Synthetic_coin.bias
       r.Processes.Synthetic_coin.serial_correlation);
  Buffer.contents buf
