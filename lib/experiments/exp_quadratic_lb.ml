let name = "quadratic_lb"

let description = "Section 2: Ω(n²) barrier configuration of Silent-n-state-SSR"

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Experiment Q: Silent-n-state-SSR worst case ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:30 in
  let ns = match mode with Exp_common.Quick -> [ 8; 16; 32; 64 ] | Exp_common.Full -> [ 8; 16; 32; 64; 128 ] in
  let table =
    Stats.Table.create ~header:(Exp_common.time_header @ [ "theory (n-1)^2/2"; "mean/theory" ])
  in
  let points =
    List.map
      (fun n ->
        let protocol = Core.Silent_n_state.protocol ~n in
        let m =
          Exp_common.measure ~label:"worst" ~protocol
            ~init:(fun _ -> Core.Scenarios.silent_worst_case ~n)
            ~task:Engine.Runner.Ranking
            ~expected_time:(Stats.Theory.quadratic_barrier_time n)
            ~jobs ~trials ~seed ()
        in
        let theory = Stats.Theory.quadratic_barrier_time n in
        Stats.Table.add_row table
          (Exp_common.time_row m
          @ [
              Stats.Table.cell_float theory;
              Stats.Table.cell_float (Exp_common.mean_time m /. theory);
            ]);
        (n, m))
      ns
  in
  Buffer.add_string buf (Stats.Table.render table);
  let fit = Exp_common.scaling_fit points in
  Buffer.add_string buf
    (Printf.sprintf "\n\nlog-log fit: slope=%.3f (paper predicts 2.0), r2=%.4f\n"
       fit.Stats.Regression.slope fit.Stats.Regression.r2);
  Buffer.contents buf
