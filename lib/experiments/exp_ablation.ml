let name = "ablation"

let description = "Parameter-constant ablations for Optimal-Silent-SSR and Sublinear-Time-SSR"

(* Wrap the protocol to count fresh trigger interactions: a Computing agent
   entering the Resetting role at full resetcount starts (or joins the
   start of) a global reset wave. *)
let with_trigger_counter ~(params : Core.Params.optimal_silent) protocol counter =
  let is_computing = function Core.Reset.Computing _ -> true | Core.Reset.Resetting _ -> false in
  let fresh_trigger = function
    | Core.Reset.Resetting r -> r.Core.Reset.resetcount = params.Core.Params.r_max
    | Core.Reset.Computing _ -> false
  in
  let transition rng a b =
    let a', b' = protocol.Engine.Protocol.transition rng a b in
    if (is_computing a && fresh_trigger a') || (is_computing b && fresh_trigger b') then
      incr counter;
    (a', b')
  in
  { protocol with Engine.Protocol.transition }

let measure_optimal ~n ~params ~jobs ~trials ~seed =
  (* Each trial wraps its own counter around a fresh protocol record, so
     trials stay independent under parallel execution. *)
  let outcomes =
    Exp_common.run_trials ~jobs ~trials ~seed (fun rng ->
        let counter = ref 0 in
        let protocol =
          with_trigger_counter ~params (Core.Optimal_silent.protocol ~params ~n ()) counter
        in
        let init = Core.Scenarios.optimal_uniform rng ~params ~n in
        let sim = Engine.Sim.make ~protocol ~init ~rng in
        let o =
          Engine.Runner.run_to_stability ~task:Engine.Runner.Ranking
            ~max_interactions:
              (Engine.Runner.default_horizon ~n ~expected_time:(float_of_int (40 * n)))
            ~confirm_interactions:(Engine.Runner.default_confirm ~n)
            (Engine.Exec.of_sim sim)
        in
        if o.Engine.Runner.converged then
          Some (o.Engine.Runner.convergence_time, float_of_int !counter)
        else None)
  in
  let converged = Array.to_list outcomes |> List.filter_map Fun.id in
  let times = List.map fst converged in
  let triggers = List.map snd converged in
  let failures = trials - List.length converged in
  (times, triggers, failures)

let sweep_table buf ~title ~header rows =
  Buffer.add_string buf (title ^ "\n");
  let table = Stats.Table.create ~header in
  List.iter (Stats.Table.add_row table) rows;
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.add_string buf "\n\n"

let optimal_row label (times, triggers, failures) trials =
  if times = [] then [ label; string_of_int trials; "-"; "-"; "-"; string_of_int failures ]
  else begin
    let t = Stats.Summary.of_list times in
    let g = Stats.Summary.of_list triggers in
    [
      label;
      string_of_int trials;
      Stats.Table.cell_float t.Stats.Summary.mean;
      Stats.Table.cell_float t.Stats.Summary.p95;
      Stats.Table.cell_float g.Stats.Summary.mean;
      string_of_int failures;
    ]
  end

let optimal_header = [ "value"; "trials"; "mean time"; "p95"; "trigger interactions"; "fail" ]

(* Detection latency of a hidden name collision (same notion as the
   tradeoff experiment). *)
let detection_latency ~n ~params ~jobs ~trials ~seed =
  let protocol = Core.Sublinear.protocol ~params ~n ~h:params.Core.Params.h () in
  let times =
    Exp_common.run_trials ~jobs ~trials ~seed (fun rng ->
        let init = Core.Scenarios.sublinear_name_collision rng ~params ~n in
        let sim = Engine.Sim.make ~protocol ~init ~rng in
        let detected () =
          let rec check i =
            i < n
            &&
            match Engine.Sim.state sim i with
            | Core.Reset.Resetting _ -> true
            | Core.Reset.Computing _ -> check (i + 1)
          in
          check 0
        in
        while (not (detected ())) && Engine.Sim.interactions sim < 400 * n * n do
          Engine.Sim.step sim
        done;
        Engine.Sim.parallel_time sim)
  in
  Stats.Summary.of_array times

let run ~mode ~seed ~jobs =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "== Experiment AB: parameter ablations ==\n\n";
  let trials = Exp_common.trials_of_mode mode ~base:20 in
  let n = match mode with Exp_common.Quick -> 32 | Exp_common.Full -> 64 in
  let base = Core.Params.optimal_silent n in
  (* D_max = c·n *)
  let rows =
    List.map
      (fun c ->
        let params = { base with Core.Params.d_max = c * n } in
        optimal_row (Printf.sprintf "D_max = %d·n" c) (measure_optimal ~n ~params ~jobs ~trials ~seed) trials)
      [ 1; 2; 4; 6; 10 ]
  in
  sweep_table buf
    ~title:
      (Printf.sprintf
         "D_max sweep at n=%d (short dormancy leaves several leaders alive -> extra reset waves)" n)
    ~header:optimal_header rows;
  (* E_max = c·n *)
  let rows =
    List.map
      (fun c ->
        let params = { base with Core.Params.e_max = c * n } in
        optimal_row (Printf.sprintf "E_max = %d·n" c) (measure_optimal ~n ~params ~jobs ~trials ~seed:(seed + 1)) trials)
      [ 2; 4; 8; 12; 20 ]
  in
  sweep_table buf
    ~title:
      (Printf.sprintf
         "E_max sweep at n=%d (short starvation budget fires false alarms during ranking)" n)
    ~header:optimal_header rows;
  (* R_max *)
  let rows =
    List.map
      (fun (label, r) ->
        let params = { base with Core.Params.r_max = r } in
        optimal_row label (measure_optimal ~n ~params ~jobs ~trials ~seed:(seed + 2)) trials)
      [
        ("R_max = 2", 2);
        ("R_max = 3", 3);
        ("R_max = 6", 6);
        (Printf.sprintf "R_max = 4·ln n (%d)" (4 * Core.Params.ceil_ln n), 4 * Core.Params.ceil_ln n);
        (Printf.sprintf "R_max = 60·ln n (%d)" (60 * Core.Params.ceil_ln n), 60 * Core.Params.ceil_ln n);
      ]
  in
  sweep_table buf
    ~title:
      (Printf.sprintf "R_max sweep at n=%d (the reset wave must outlive the epidemic depth)" n)
    ~header:optimal_header rows;
  (* Preset comparison *)
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (label, preset) ->
            let params = Core.Params.optimal_silent ~preset n in
            optimal_row
              (Printf.sprintf "n=%d %s" n label)
              (measure_optimal ~n ~params ~jobs ~trials ~seed:(seed + 3))
              trials)
          [ ("Tuned", Core.Params.Tuned); ("Paper", Core.Params.Paper) ])
      (match mode with Exp_common.Quick -> [ 32 ] | Exp_common.Full -> [ 32; 128 ])
  in
  sweep_table buf ~title:"Preset comparison (paper constants vs tuned constants, same asymptotics)"
    ~header:optimal_header rows;
  (* T_H sweep for Sublinear-Time-SSR *)
  let h = 1 in
  let base_sub = Core.Params.sublinear ~h n in
  let rows =
    List.map
      (fun t_h ->
        let params = { base_sub with Core.Params.t_h } in
        let s = detection_latency ~n ~params ~jobs ~trials ~seed:(seed + 4) in
        [
          Printf.sprintf "T_H = %d%s" t_h (if t_h = base_sub.Core.Params.t_h then " (default)" else "");
          string_of_int trials;
          Stats.Table.cell_float s.Stats.Summary.mean;
          Stats.Table.cell_float s.Stats.Summary.p95;
        ])
      (List.sort_uniq compare [ 4; 8; 16; 32; base_sub.Core.Params.t_h; 2 * base_sub.Core.Params.t_h ])
  in
  sweep_table buf
    ~title:
      (Printf.sprintf
         "T_H sweep for Sublinear-Time-SSR (H=%d, n=%d): hidden-collision detection latency" h n)
    ~header:[ "value"; "trials"; "mean detect"; "p95" ] rows;
  Buffer.contents buf
