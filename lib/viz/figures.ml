type t = { mutex : Mutex.t; mutable charts : (string * Plot.chart) list (* reversed *) }

let create () = { mutex = Mutex.create (); charts = [] }

let installed : t option Atomic.t = Atomic.make None

let install t = Atomic.set installed (Some t)

let uninstall () = Atomic.set installed None

let ambient () = Atomic.get installed

let emit name chart =
  match ambient () with
  | None -> ()
  | Some t ->
      Mutex.lock t.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.mutex)
        (fun () ->
          if List.mem_assoc name t.charts then
            t.charts <- List.map (fun (n, c) -> if n = name then (n, chart) else (n, c)) t.charts
          else t.charts <- (name, chart) :: t.charts)

let charts t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> List.rev t.charts)
