module J = Telemetry.Json
module T = Telemetry.Timeline

let opt_float = function Some t -> J.Float t | None -> J.Null

let burst_json (b : T.burst) =
  J.Obj
    [
      ("faults", J.Int b.T.faults);
      ("agents", J.Int b.T.agents);
      ("first_at", J.Float b.T.first_at);
      ("last_at", J.Float b.T.last_at);
      ("broke", J.Bool b.T.broke);
      ("recovered_at", opt_float b.T.recovered_at);
      ("recovery", opt_float (T.recovery_time b));
    ]

let run_json (s : T.summary) =
  let r = s.T.run in
  J.Obj
    [
      ("id", J.String r.Telemetry.Events.id);
      ("protocol", J.String r.Telemetry.Events.protocol);
      ("engine", J.String r.Telemetry.Events.engine);
      ("n", J.Int r.Telemetry.Events.n);
      ("seed", J.Int r.Telemetry.Events.seed);
      ("trial", (match r.Telemetry.Events.trial with Some t -> J.Int t | None -> J.Null));
      ("events", J.Int s.T.events);
      ("steps", J.Int s.T.steps);
      ("first_correct_at", opt_float s.T.first_correct_at);
      ("last_correct_at", opt_float s.T.last_correct_at);
      ("violations", J.Int s.T.violations);
      ("silent_at", opt_float s.T.silent_at);
      ("end_time", J.Float s.T.end_time);
      ("end_interactions", J.Int s.T.end_interactions);
      ("availability", J.Float (T.availability s));
      ("bursts", J.List (List.map burst_json s.T.bursts));
    ]

let snapshot_json ?(dropped = 0) ~path summaries =
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 summaries in
  let bursts = List.concat_map (fun s -> s.T.bursts) summaries in
  let broke = List.filter (fun (b : T.burst) -> b.T.broke) bursts in
  let recovery_times =
    List.sort compare (List.filter_map T.recovery_time broke)
  in
  let censored = List.length (List.filter (fun b -> b.T.recovered_at = None) broke) in
  let end_time = List.fold_left (fun acc s -> Float.max acc s.T.end_time) 0.0 summaries in
  J.Obj
    [
      ("v", J.Int 1);
      ("path", J.String path);
      ("dropped", J.Int dropped);
      ( "aggregate",
        J.Obj
          [
            ("runs", J.Int (List.length summaries));
            ("events", J.Int (sum (fun s -> s.T.events)));
            ("steps", J.Int (sum (fun s -> s.T.steps)));
            ("violations", J.Int (sum (fun s -> s.T.violations)));
            ("availability", J.Float (Charts.mean_availability summaries));
            ("end_time", J.Float end_time);
            ("bursts", J.Int (List.length bursts));
            ("broke", J.Int (List.length broke));
            ("recovered", J.Int (List.length recovery_times));
            ("censored", J.Int censored);
          ] );
      ("runs", J.List (List.map run_json summaries));
      ("recovery_times", J.List (List.map (fun t -> J.Float t) recovery_times));
    ]

(* The page is fully self-contained: inline CSS (palette custom
   properties, dark mode via prefers-color-scheme with a data-theme
   override) and inline JS (EventSource client + two hand-rolled SVG
   strips). No external assets, no clock reads — the x axes below are
   stream time. *)
let page ~path =
  let html_path = Svg.escape path in
  Printf.sprintf
    {html|<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8"/>
<meta name="viewport" content="width=device-width, initial-scale=1"/>
<title>soak dashboard — %s</title>
<style>
.viz-root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --ring: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page: #0d0d0d; --surface-1: #1a1a19;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --baseline: #383835; --ring: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
}
* { box-sizing: border-box; }
body { margin: 0; }
.viz-root {
  min-height: 100vh; background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  padding: 20px; font-size: 14px;
}
header h1 { font-size: 18px; margin: 0 0 2px; }
header .sub { color: var(--text-secondary); font-size: 12px; margin-bottom: 16px; }
header code { font-family: ui-monospace, monospace; font-size: 11px; }
#status { font-weight: 600; }
#theme { float: right; background: var(--surface-1); color: var(--text-secondary);
  border: 1px solid var(--ring); border-radius: 6px; cursor: pointer; padding: 2px 8px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 16px; }
.tile { background: var(--surface-1); border: 1px solid var(--ring); border-radius: 8px;
  padding: 10px 14px; min-width: 108px; }
.tile .v { font-size: 22px; }
.tile .l { color: var(--muted); font-size: 11px; margin-top: 2px; }
.charts { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 16px; }
figure { background: var(--surface-1); border: 1px solid var(--ring); border-radius: 8px;
  margin: 0; padding: 10px 12px 6px; }
figcaption { color: var(--text-secondary); font-size: 12px; margin-bottom: 4px; }
svg text { fill: var(--muted); font-size: 10px; font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; font-size: 12px; width: 100%%; }
th, td { text-align: right; padding: 5px 10px; font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; font-family: ui-monospace, monospace; }
th { color: var(--muted); font-weight: 500; border-bottom: 1px solid var(--grid); }
tr + tr td { border-top: 1px solid var(--grid); }
</style>
</head>
<body>
<div class="viz-root">
<header>
  <button id="theme" title="toggle light/dark">◐</button>
  <h1>Live soak dashboard</h1>
  <div class="sub">tailing <code>%s</code> · <span id="status">connecting…</span>
    <span id="dropped"></span></div>
</header>
<section class="tiles">
  <div class="tile"><div class="v" id="t-runs">–</div><div class="l">runs</div></div>
  <div class="tile"><div class="v" id="t-events">–</div><div class="l">events</div></div>
  <div class="tile"><div class="v" id="t-avail">–</div><div class="l">availability</div></div>
  <div class="tile"><div class="v" id="t-viol">–</div><div class="l">correctness losses</div></div>
  <div class="tile"><div class="v" id="t-bursts">–</div><div class="l">bursts (recovered/broke)</div></div>
  <div class="tile"><div class="v" id="t-time">–</div><div class="l">stream time</div></div>
</section>
<section class="charts">
  <figure><figcaption>mean availability over stream time</figcaption>
    <svg id="avail" width="460" height="150" viewBox="0 0 460 150"></svg></figure>
  <figure><figcaption>recovery-time CDF (pooled bursts)</figcaption>
    <svg id="cdf" width="460" height="150" viewBox="0 0 460 150"></svg></figure>
</section>
<table>
  <thead><tr><th>run</th><th>n</th><th>engine</th><th>events</th><th>losses</th>
    <th>availability</th><th>bursts</th><th>last t</th></tr></thead>
  <tbody id="runs"></tbody>
</table>
</div>
<script>
"use strict";
const $ = id => document.getElementById(id);
const fmt = (x, d) => x == null ? "–" : (+x).toFixed(d == null ? 2 : d);
const hist = [];   // [stream end_time, mean availability] per snapshot

$("theme").addEventListener("click", () => {
  const r = document.documentElement;
  const dark = r.dataset.theme === "dark" ||
    (r.dataset.theme !== "light" && matchMedia("(prefers-color-scheme: dark)").matches);
  r.dataset.theme = dark ? "light" : "dark";
});

function axisFrame(svg, w, h, pad) {
  return `<line x1="${pad}" y1="${h - pad}" x2="${w - 6}" y2="${h - pad}"
    stroke="var(--baseline)"/><line x1="${pad}" y1="8" x2="${pad}" y2="${h - pad}"
    stroke="var(--baseline)"/>`;
}

// Availability strip: y in [0,1], x = stream time of each snapshot.
function drawAvail() {
  const svg = $("avail"), w = 460, h = 150, pad = 30;
  if (hist.length === 0) { svg.innerHTML = ""; return; }
  const x1 = hist[hist.length - 1][0] || 1;
  const X = t => pad + (w - 6 - pad) * (x1 ? t / x1 : 0);
  const Y = a => 8 + (h - pad - 8) * (1 - a);
  const pts = hist.map(p => `${X(p[0]).toFixed(1)},${Y(p[1]).toFixed(1)}`).join(" ");
  svg.innerHTML = axisFrame(svg, w, h, pad) +
    `<line x1="${pad}" y1="${Y(1)}" x2="${w - 6}" y2="${Y(1)}" stroke="var(--grid)"/>` +
    `<text x="${pad - 6}" y="${Y(1) + 3}" text-anchor="end">1</text>` +
    `<text x="${pad - 6}" y="${Y(0) + 3}" text-anchor="end">0</text>` +
    `<text x="${w - 6}" y="${h - pad + 12}" text-anchor="end">t=${fmt(x1, 1)}</text>` +
    `<polyline points="${pts}" fill="none" stroke="var(--series-1)" stroke-width="2"
      stroke-linejoin="round"/>`;
}

// Pooled recovery-time CDF (times arrive sorted).
function drawCdf(times) {
  const svg = $("cdf"), w = 460, h = 150, pad = 30;
  if (!times || times.length === 0) {
    svg.innerHTML = `<text x="${w / 2}" y="${h / 2}" text-anchor="middle">no recoveries yet</text>`;
    return;
  }
  const x1 = times[times.length - 1] || 1;
  const X = t => pad + (w - 6 - pad) * (t / x1);
  const Y = f => 8 + (h - pad - 8) * (1 - f);
  let d = `M${X(times[0]).toFixed(1)} ${Y(1 / times.length).toFixed(1)}`;
  times.forEach((t, i) => {
    d += `H${X(t).toFixed(1)} V${Y((i + 1) / times.length).toFixed(1)}`;
  });
  svg.innerHTML = axisFrame(svg, w, h, pad) +
    `<text x="${pad - 6}" y="${Y(1) + 3}" text-anchor="end">1</text>` +
    `<text x="${pad - 6}" y="${Y(0) + 3}" text-anchor="end">0</text>` +
    `<text x="${w - 6}" y="${h - pad + 12}" text-anchor="end">${fmt(x1, 1)}</text>` +
    `<path d="${d}" fill="none" stroke="var(--series-2)" stroke-width="2"/>`;
}

function draw(s) {
  const a = s.aggregate;
  $("t-runs").textContent = a.runs;
  $("t-events").textContent = a.events;
  $("t-avail").textContent = fmt(a.availability, 3);
  $("t-viol").textContent = a.violations;
  $("t-bursts").textContent = `${a.recovered}/${a.broke}`;
  $("t-time").textContent = fmt(a.end_time, 1);
  $("dropped").textContent = s.dropped ? `· ${s.dropped} undecodable lines skipped` : "";
  hist.push([a.end_time, a.availability]);
  drawAvail();
  drawCdf(s.recovery_times);
  $("runs").innerHTML = s.runs.map(r =>
    `<tr><td>${r.id}</td><td>${r.n}</td><td>${r.engine}</td><td>${r.events}</td>` +
    `<td>${r.violations}</td><td>${fmt(r.availability, 3)}</td>` +
    `<td>${r.bursts.length}</td><td>${fmt(r.end_time, 1)}</td></tr>`).join("");
}

const es = new EventSource("/events");
es.onopen = () => { $("status").textContent = "live"; };
es.onerror = () => { $("status").textContent = "disconnected — retrying"; };
es.onmessage = e => { draw(JSON.parse(e.data)); $("status").textContent = "live"; };
</script>
</body>
</html>
|html}
    html_path html_path
