(** The live soak dashboard: snapshot JSON and the self-contained page.

    [timeline --serve] (see {!Serve}) streams {!snapshot_json} values
    over Server-Sent Events into {!page}, a single HTML document with
    inline CSS and JS and no external assets — openable from a file://
    or any bare HTTP server, watchable while [ssr_sim --chaos] is still
    writing the events file. The page renders stat tiles, an
    availability-over-time strip, a pooled recovery-time CDF, and a
    per-run table, and follows the repo chart conventions (fixed
    palette, light/dark via [prefers-color-scheme] plus a manual
    toggle). All timestamps shown come from the event stream, not any
    clock. *)

val snapshot_json :
  ?dropped:int -> path:string -> Telemetry.Timeline.summary list -> Telemetry.Json.t
(** The wire format of one dashboard update (also served at
    [/data.json]): [{"v":1, "path", "dropped", "aggregate":{…},
    "runs":[…], "recovery_times":[…]}] with per-run convergence,
    violation, availability, and burst fields mirroring
    {!Telemetry.Timeline.summary}. [dropped] is the tailer's skipped
    undecodable line count. *)

val page : path:string -> string
(** The dashboard HTML for the events file at [path] (displayed, and
    embedded as the SSE endpoint's origin-relative URLs — the page
    itself always connects to [/events]). *)
