(** Live fleet status board.

    The HTML page served at [/] by [fleet --serve]: tiles for queue
    depth, in-flight, completed, failed, retries and shed counts, the
    per-group queue depths, and a per-job state table — all rendered
    client-side from the orchestrator's [fleet_status] SSE frames
    ([Fleet.Orchestrator.snapshot_json]; the server side is a
    {!Serve.source}, wired up in [bin/fleet]). Self-contained like
    {!Dashboard.page}: inline CSS and JS, no external assets, no clock
    reads. *)

val page : title:string -> string
(** [title] is shown in the header and the document title (escaped). *)
