(* Insertion-order group-by: series order (and so palette slots) depends
   only on the order runs first appear in the stream, never on hash
   layout. *)
let group_by key items =
  let table = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt table k with
      | Some r -> r := item :: !r
      | None ->
          let r = ref [ item ] in
          Hashtbl.add table k r;
          order := k :: !order)
    items;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find table k))) !order

let run_label (run : Telemetry.Events.run) =
  Printf.sprintf "%s / %s" run.Telemetry.Events.protocol run.Telemetry.Events.engine

let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let ci95 xs = if Array.length xs < 2 then 0.0 else Stats.Summary.ci95_halfwidth xs

let slope_points ?(title = "Convergence time vs population size") series_points =
  let notes = ref [] in
  let series =
    List.concat
      (List.mapi
         (fun i (label, points) ->
           let points = List.sort compare points in
           let data = Plot.series ~label ~color:i (Plot.Errorbar (Array.of_list points)) in
           let distinct_ns = List.length points in
           if distinct_ns < 2 then [ data ]
           else begin
             let fit =
               Stats.Regression.log_log (List.map (fun (n, m, _) -> (n, m)) points)
             in
             notes :=
               Printf.sprintf "%s: slope %.2f (r²=%.3f)" label fit.Stats.Regression.slope
                 fit.Stats.Regression.r2
               :: !notes;
             let eval n = Float.exp fit.Stats.Regression.intercept *. (n ** fit.Stats.Regression.slope) in
             let n_lo = (fun (n, _, _) -> n) (List.hd points) in
             let n_hi = (fun (n, _, _) -> n) (List.nth points (distinct_ns - 1)) in
             let overlay =
               Plot.series ~color:i ~dash:true
                 (Plot.Line [| (n_lo, eval n_lo); (n_hi, eval n_hi) |])
             in
             [ data; overlay ]
           end)
         series_points)
  in
  Plot.chart ~title ~x_kind:Scale.Log ~y_kind:Scale.Log ~x_label:"population size n"
    ~y_label:"convergence time (parallel time units)" ~notes:(List.rev !notes) series

let slope_fit ?title events =
  let summaries = Telemetry.Timeline.fold events in
  let converged =
    List.filter_map
      (fun (s : Telemetry.Timeline.summary) ->
        match s.Telemetry.Timeline.last_correct_at with
        | Some t when t > 0.0 ->
            Some (run_label s.Telemetry.Timeline.run, s.Telemetry.Timeline.run.Telemetry.Events.n, t)
        | Some _ | None -> None)
      summaries
  in
  let groups = group_by (fun (label, _, _) -> label) converged in
  let series_points =
    List.map
      (fun (label, samples) ->
        let by_n = group_by (fun (_, n, _) -> n) samples in
        ( label,
          List.map
            (fun (n, samples) ->
              let times = Array.of_list (List.map (fun (_, _, t) -> t) samples) in
              (float_of_int n, mean times, ci95 times))
            by_n ))
      groups
  in
  slope_points ?title series_points

let availability ?(title = "Availability under sustained faults")
    ?(x_label = "offered load k = rate × t_rec") series_points =
  let series =
    List.mapi
      (fun i (label, points) ->
        Plot.series ~label ~color:i
          (Plot.Line_points (Array.of_list (List.sort compare points))))
      series_points
  in
  Plot.chart ~title ~x_kind:Scale.Log ~y_domain:(0.0, 1.05) ~x_label ~y_label:"availability"
    series

let mean_availability summaries =
  match summaries with
  | [] -> 0.0
  | _ ->
      List.fold_left (fun acc s -> acc +. Telemetry.Timeline.availability s) 0.0 summaries
      /. float_of_int (List.length summaries)

let recovery_samples ?(title = "Recovery time distribution") series_samples =
  let notes = ref [] in
  let series =
    List.filter_map
      (fun (label, times, censored) ->
        let times = List.sort compare times in
        let k = List.length times in
        if k = 0 then begin
          notes := Printf.sprintf "%s: no recoveries (%d censored)" label censored :: !notes;
          None
        end
        else begin
          let kf = float_of_int k in
          let median = List.nth times (k / 2) in
          notes :=
            Printf.sprintf "%s: %d recoveries, median %.1f%s" label k median
              (if censored > 0 then Printf.sprintf " (%d censored)" censored else "")
            :: !notes;
          let points =
            Array.of_list (List.mapi (fun i t -> (t, float_of_int (i + 1) /. kf)) times)
          in
          Some (Plot.series ~label (Plot.Step points))
        end)
      series_samples
  in
  Plot.chart ~title ~y_domain:(0.0, 1.05) ~x_label:"recovery time (parallel time units)"
    ~y_label:"fraction recovered ≤ t" ~notes:(List.rev !notes) series

let recovery_cdf ?title events =
  let summaries = Telemetry.Timeline.fold events in
  let samples =
    List.concat_map
      (fun (s : Telemetry.Timeline.summary) ->
        List.filter_map
          (fun (b : Telemetry.Timeline.burst) ->
            if not b.Telemetry.Timeline.broke then None
            else
              match Telemetry.Timeline.recovery_time b with
              | Some dt -> Some (run_label s.Telemetry.Timeline.run, `Recovered dt)
              | None -> Some (run_label s.Telemetry.Timeline.run, `Censored))
          s.Telemetry.Timeline.bursts)
      summaries
  in
  let groups = group_by fst samples in
  let series_samples =
    List.map
      (fun (label, samples) ->
        ( label,
          List.filter_map
            (fun (_, r) -> match r with `Recovered dt -> Some dt | `Censored -> None)
            samples,
          List.length (List.filter (fun (_, r) -> r = `Censored) samples) ))
      groups
  in
  recovery_samples ?title series_samples

let span_histograms metrics_json =
  let histograms =
    match Telemetry.Json.member "histograms" metrics_json with
    | Some (Telemetry.Json.Obj fields) -> fields
    | Some _ | None -> []
  in
  let prefix = Telemetry.Span.prefix in
  let plen = String.length prefix in
  List.filter
    (fun (name, _) -> String.length name > plen && String.sub name 0 plen = prefix)
    histograms

let has_spans metrics_json = span_histograms metrics_json <> []

let phase_profile ?(title = "Per-phase wall-time profile") metrics_json =
  let prefix = Telemetry.Span.prefix in
  let plen = String.length prefix in
  let spans =
    List.filter_map
      (fun (name, h) ->
        if String.length name > plen && String.sub name 0 plen = prefix then
          let field key = Option.bind (Telemetry.Json.member key h) Telemetry.Json.to_float in
          match (field "total", field "count", field "mean") with
          | Some total, Some count, Some mean ->
              Some (String.sub name plen (String.length name - plen), total, count, mean)
          | _ -> None
        else None)
      (span_histograms metrics_json)
  in
  let categories = Array.of_list (List.map (fun (name, _, _, _) -> name) spans) in
  let bars =
    Array.of_list
      (List.mapi (fun i (_, total, _, _) -> (float_of_int i -. 0.4, float_of_int i +. 0.4, total)) spans)
  in
  let notes =
    List.map
      (fun (name, _, count, mean) ->
        Printf.sprintf "%s: %.0f × %.3g s" name count mean)
      spans
  in
  Plot.chart ~title ~x_categories:categories ~y_label:"total wall time (s)" ~notes
    [ Plot.series (Plot.Bars bars) ]
