(** Ambient figure registry: experiments emit named charts as they run.

    The mirror of {!Telemetry.Metrics}'s ambient registry for figures:
    [experiments_main --out-dir] installs one, the experiment bodies
    {!emit} charts at the point where the data exists (next to the text
    table they already print), and the driver writes each chart to
    [<name>.svg] beside the manifests. Library code stays
    rendering-agnostic — without an installed registry {!emit} is an
    atomic read and a dropped value. Thread-safe for the same reason
    {!Telemetry.Metrics} is: emission happens at experiment granularity,
    where a mutex is noise. *)

type t

val create : unit -> t

val emit : string -> Plot.chart -> unit
(** [emit name chart] records the chart under [name] (a filename stem,
    e.g. ["table1-slope-silent"]) in the ambient registry, replacing any
    previous chart with the same name. No-op without one. *)

val charts : t -> (string * Plot.chart) list
(** Charts in first-emission order. *)

val install : t -> unit
val uninstall : unit -> unit
val ambient : unit -> t option
