type kind = Linear | Log

type t = { kind : kind; dlo : float; dhi : float; rlo : float; rhi : float }

let finite x = Float.is_finite x

let repair_linear (lo, hi) =
  if not (finite lo && finite hi) then (0.0, 1.0)
  else if lo < hi then (lo, hi)
  else if lo > hi then (hi, lo)
  else (lo -. 1.0, hi +. 1.0)

let repair_log (lo, hi) =
  if not (finite lo && finite hi) || hi <= 0.0 then (0.1, 10.0)
  else
    let lo = if lo <= 0.0 then hi /. 1000.0 else Float.min lo hi in
    if lo < hi then (lo, hi) else (lo /. 10.0, hi *. 10.0)

let make kind ~domain ~range:(rlo, rhi) =
  let dlo, dhi =
    match kind with Linear -> repair_linear domain | Log -> repair_log domain
  in
  { kind; dlo; dhi; rlo; rhi }

let kind t = t.kind

let domain t = (t.dlo, t.dhi)

let apply t x =
  let frac =
    match t.kind with
    | Linear -> (x -. t.dlo) /. (t.dhi -. t.dlo)
    | Log ->
        let x = if x <= 0.0 then t.dlo else x in
        Float.log10 (x /. t.dlo) /. Float.log10 (t.dhi /. t.dlo)
  in
  t.rlo +. (frac *. (t.rhi -. t.rlo))

(* Smallest 1/2/5·10^k step >= raw. *)
let nice_step raw =
  let mag = 10.0 ** Float.floor (Float.log10 raw) in
  let m = raw /. mag in
  if m <= 1.0 then mag else if m <= 2.0 then 2.0 *. mag else if m <= 5.0 then 5.0 *. mag else 10.0 *. mag

let linear_ticks ~target t =
  let span = t.dhi -. t.dlo in
  let step = nice_step (span /. float_of_int (max 1 target)) in
  let first = Float.ceil ((t.dlo -. (1e-9 *. span)) /. step) in
  let rec loop i acc =
    let v = (first +. float_of_int i) *. step in
    if v > t.dhi +. (1e-9 *. span) then List.rev acc
    else loop (i + 1) ((if Float.abs v < 1e-12 *. span then 0.0 else v) :: acc)
  in
  match loop 0 [] with [] | [ _ ] -> [ t.dlo; t.dhi ] | ticks -> ticks

let log_ticks ~target t =
  let e_lo = int_of_float (Float.ceil (Float.log10 t.dlo -. 1e-9)) in
  let e_hi = int_of_float (Float.floor (Float.log10 t.dhi +. 1e-9)) in
  let decades = List.init (max 0 (e_hi - e_lo + 1)) (fun i -> 10.0 ** float_of_int (e_lo + i)) in
  if List.length decades >= 2 then decades
  else begin
    (* fewer than two decades fit: pad with 2· and 5· mantissas *)
    let lo_e = int_of_float (Float.floor (Float.log10 t.dlo +. 1e-9)) in
    let candidates =
      List.concat_map
        (fun e ->
          let d = 10.0 ** float_of_int e in
          [ d; 2.0 *. d; 5.0 *. d ])
        (List.init (e_hi - lo_e + 2) (fun i -> lo_e + i))
    in
    let inside =
      List.filter (fun v -> v >= t.dlo *. (1.0 -. 1e-9) && v <= t.dhi *. (1.0 +. 1e-9)) candidates
    in
    match inside with
    | [] | [ _ ] ->
        (* sub-decade domain (e.g. n from 8 to 16): nice linear ticks
           read far better than raw endpoint values *)
        linear_ticks ~target t
    | ticks -> ticks
  end

let ticks ?(target = 5) t =
  match t.kind with Linear -> linear_ticks ~target t | Log -> log_ticks ~target t

(* Short float for labels: up to three significant decimals, trailing
   zeros stripped. Only called for |v| in [1e-4, 1e6) or for mantissas. *)
let short v =
  if Float.is_integer v && Float.abs v < 1e9 then string_of_int (int_of_float v)
  else begin
    let s = Printf.sprintf "%.4f" v in
    let last = ref (String.length s - 1) in
    while s.[!last] = '0' do
      decr last
    done;
    if s.[!last] = '.' then decr last;
    String.sub s 0 (!last + 1)
  end

let rec tick_label v =
  if v < 0.0 then "-" ^ tick_label (-.v)
  else if v = 0.0 then "0"
  else if v >= 1e6 || v < 1e-4 then begin
    let e = int_of_float (Float.floor (Float.log10 v +. 1e-9)) in
    let m = v /. (10.0 ** float_of_int e) in
    let ms = short m in
    if ms = "1" then Printf.sprintf "1e%d" e else Printf.sprintf "%se%d" ms e
  end
  else short v
