type mark =
  | Line of (float * float) array
  | Points of (float * float) array
  | Line_points of (float * float) array
  | Errorbar of (float * float * float) array
  | Step of (float * float) array
  | Bars of (float * float * float) array

type series = { label : string option; color : int option; dash : bool; mark : mark }

let series ?label ?color ?(dash = false) mark = { label; color; dash; mark }

type chart = {
  title : string;
  x_label : string;
  y_label : string;
  x_kind : Scale.kind;
  y_kind : Scale.kind;
  x_domain : (float * float) option;
  y_domain : (float * float) option;
  x_categories : string array;
  notes : string list;
  width : int;
  height : int;
  series : series list;
}

let chart ?(x_label = "") ?(y_label = "") ?(x_kind = Scale.Linear) ?(y_kind = Scale.Linear)
    ?x_domain ?y_domain ?(x_categories = [||]) ?(notes = []) ?(width = 640) ?(height = 400)
    ~title series =
  {
    title;
    x_label;
    y_label;
    x_kind;
    y_kind;
    x_domain;
    y_domain;
    x_categories;
    notes;
    width;
    height;
    series;
  }

(* Categorical palette and chart chrome (light mode — standalone SVG
   files render on the light surface). Slots are assigned in fixed order,
   never cycled into generated hues. *)
let palette =
  [| "#2a78d6"; "#eb6834"; "#1baf7a"; "#eda100"; "#e87ba4"; "#008300"; "#4a3aa7"; "#e34948" |]

let slot i = palette.(((i mod Array.length palette) + Array.length palette) mod Array.length palette)

let ink = "#0b0b0b"
let secondary = "#52514e"
let muted = "#898781"
let gridline = "#e1e0d9"
let baseline = "#c3c2b7"
let surface = "#fcfcfb"

(* Data extent in axis space. On a log axis non-positive values are
   excluded (they clamp to the edge at draw time). *)
type extent = { mutable lo : float option; mutable hi : float option }

let see kind ext v =
  if Float.is_finite v && not (kind = Scale.Log && v <= 0.0) then begin
    (match ext.lo with Some lo when lo <= v -> () | _ -> ext.lo <- Some v);
    match ext.hi with Some hi when hi >= v -> () | _ -> ext.hi <- Some v
  end

let extents c =
  let ex = { lo = None; hi = None } and ey = { lo = None; hi = None } in
  let sx = see c.x_kind ex and sy = see c.y_kind ey in
  List.iter
    (fun s ->
      match s.mark with
      | Line pts | Points pts | Line_points pts | Step pts ->
          Array.iter
            (fun (x, y) ->
              sx x;
              sy y)
            pts
      | Errorbar pts ->
          Array.iter
            (fun (x, y, e) ->
              sx x;
              sy y;
              sy (y -. e);
              sy (y +. e))
            pts
      | Bars bars ->
          Array.iter
            (fun (x0, x1, y) ->
              sx x0;
              sx x1;
              sy y;
              sy 0.0)
            bars)
    c.series;
  (ex, ey)

(* Pad a data extent so marks clear the frame. A zero linear edge stays
   pinned (baselines matter more than breathing room). *)
let pad kind (lo, hi) =
  match kind with
  | Scale.Linear ->
      let d = hi -. lo in
      if d <= 0.0 then (lo, hi)
      else
        let p = 0.04 *. d in
        ((if lo = 0.0 then 0.0 else lo -. p), hi +. p)
  | Scale.Log ->
      if lo > 0.0 && hi > lo then begin
        let f = (hi /. lo) ** 0.04 in
        (lo /. f, hi *. f)
      end
      else (lo, hi)

let resolve_domain kind override (ext : extent) =
  match override with
  | Some d -> d
  | None -> (
      match (ext.lo, ext.hi) with
      | Some lo, Some hi -> pad kind (lo, hi)
      | _ -> ( match kind with Scale.Linear -> (0.0, 1.0) | Scale.Log -> (0.1, 10.0)))

let f = Svg.fmt

let line_attrs color dash =
  [
    ("fill", "none");
    ("stroke", color);
    ("stroke-width", "2");
    ("stroke-linejoin", "round");
    ("stroke-linecap", "round");
  ]
  @ if dash then [ ("stroke-dasharray", "5 4") ] else []

let path_of points =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i (x, y) ->
      Buffer.add_string buf (if i = 0 then "M" else "L");
      Buffer.add_string buf (f x);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (f y))
    points;
  Buffer.contents buf

let step_path_of points =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i (x, y) ->
      if i = 0 then Buffer.add_string buf (Printf.sprintf "M%s %s" (f x) (f y))
      else Buffer.add_string buf (Printf.sprintf "H%s V%s" (f x) (f y)))
    points;
  Buffer.contents buf

let dot (x, y) color =
  Svg.el "circle"
    [
      ("cx", f x); ("cy", f y); ("r", "2.75"); ("fill", color); ("stroke", surface);
      ("stroke-width", "1");
    ]
    []

let render_mark ~xs ~ys color dash mark =
  let px (x, y) = (Scale.apply xs x, Scale.apply ys y) in
  match mark with
  | Line pts when Array.length pts = 0 -> []
  | Points pts when Array.length pts = 0 -> []
  | Line_points pts when Array.length pts = 0 -> []
  | Errorbar pts when Array.length pts = 0 -> []
  | Step pts when Array.length pts = 0 -> []
  | Bars bars when Array.length bars = 0 -> []
  | Line pts -> [ Svg.el "path" (("d", path_of (Array.map px pts)) :: line_attrs color dash) [] ]
  | Step pts ->
      [ Svg.el "path" (("d", step_path_of (Array.map px pts)) :: line_attrs color dash) [] ]
  | Points pts -> Array.to_list (Array.map (fun p -> dot (px p) color) pts)
  | Line_points pts ->
      Svg.el "path" (("d", path_of (Array.map px pts)) :: line_attrs color dash) []
      :: Array.to_list (Array.map (fun p -> dot (px p) color) pts)
  | Errorbar pts ->
      let whisker (x, y, e) =
        let cx = Scale.apply xs x in
        let y0 = Scale.apply ys (y -. e) and y1 = Scale.apply ys (y +. e) in
        let seg x0 y0 x1 y1 =
          Svg.el "line"
            [
              ("x1", f x0); ("y1", f y0); ("x2", f x1); ("y2", f y1); ("stroke", color);
              ("stroke-width", "1.25");
            ]
            []
        in
        [ seg cx y0 cx y1; seg (cx -. 3.0) y0 (cx +. 3.0) y0; seg (cx -. 3.0) y1 (cx +. 3.0) y1 ]
      in
      let centers = Array.map (fun (x, y, _) -> (x, y)) pts in
      List.concat_map whisker (Array.to_list pts)
      @ (Svg.el "path" (("d", path_of (Array.map px centers)) :: line_attrs color dash) []
         :: Array.to_list (Array.map (fun p -> dot (px p) color) centers))
  | Bars bars ->
      let y_base = Scale.apply ys 0.0 in
      Array.to_list
        (Array.map
           (fun (x0, x1, y) ->
             let rx0 = Scale.apply xs x0 and rx1 = Scale.apply xs x1 in
             let ry = Scale.apply ys y in
             let top = Float.min ry y_base and bot = Float.max ry y_base in
             Svg.el "rect"
               [
                 ("x", f (rx0 +. 1.0));
                 ("y", f top);
                 ("width", f (Float.max 1.0 (rx1 -. rx0 -. 2.0)));
                 ("height", f (Float.max 0.5 (bot -. top)));
                 ("rx", "2");
                 ("fill", color);
               ]
               [])
           bars)

(* Legend text advance: deterministic width estimate for the 11px UI
   sans (no font metrics available — overestimate slightly). *)
let text_advance s = 6.2 *. float_of_int (String.length s)

let render c =
  let labeled = List.filter (fun s -> s.label <> None) c.series in
  let legend = List.length labeled >= 2 in
  let ml = 60 and mr = 16 and mb = 44 in
  let mt = 30 + if legend then 20 else 0 in
  let pw = c.width - ml - mr and ph = c.height - mt - mb in
  let ex, ey = extents c in
  let no_data = ex.lo = None && c.series <> [] || c.series = [] in
  let x_domain =
    if Array.length c.x_categories > 0 then (-0.5, float_of_int (Array.length c.x_categories) -. 0.5)
    else resolve_domain c.x_kind c.x_domain ex
  in
  let y_domain = resolve_domain c.y_kind c.y_domain ey in
  let xs = Scale.make c.x_kind ~domain:x_domain ~range:(float_of_int ml, float_of_int (ml + pw)) in
  let ys = Scale.make c.y_kind ~domain:y_domain ~range:(float_of_int (mt + ph), float_of_int mt) in
  let x_ticks =
    if Array.length c.x_categories > 0 then
      List.init (Array.length c.x_categories) (fun i -> (float_of_int i, c.x_categories.(i)))
    else List.map (fun v -> (v, Scale.tick_label v)) (Scale.ticks xs)
  in
  let y_ticks = List.map (fun v -> (v, Scale.tick_label v)) (Scale.ticks ys) in
  let nodes = ref [] in
  let push n = nodes := n :: !nodes in
  (* surface *)
  push
    (Svg.el "rect"
       [
         ("width", string_of_int c.width); ("height", string_of_int c.height); ("fill", surface);
       ]
       []);
  (* title *)
  if c.title <> "" then
    push
      (Svg.text_el "text"
         [
           ("x", string_of_int ml); ("y", "19"); ("font-size", "13"); ("font-weight", "600");
           ("fill", ink);
         ]
         c.title);
  (* legend: one row under the title; swatch + label per labeled series *)
  if legend then begin
    let lx = ref (float_of_int ml) in
    List.iteri
      (fun i s ->
        match s.label with
        | None -> ()
        | Some label ->
            let color = slot (match s.color with Some k -> k | None -> i) in
            push
              (Svg.el "rect"
                 [
                   ("x", f !lx); ("y", "30"); ("width", "10"); ("height", "10"); ("rx", "2");
                   ("fill", color);
                 ]
                 []);
            push
              (Svg.text_el "text"
                 [ ("x", f (!lx +. 14.0)); ("y", "39"); ("font-size", "11"); ("fill", secondary) ]
                 label);
            lx := !lx +. 14.0 +. text_advance label +. 16.0)
      c.series
  end;
  (* horizontal hairline grid at y ticks *)
  List.iter
    (fun (v, _) ->
      let y = Scale.apply ys v in
      push
        (Svg.el "line"
           [
             ("x1", string_of_int ml); ("y1", f y); ("x2", string_of_int (ml + pw)); ("y2", f y);
             ("stroke", gridline); ("stroke-width", "1");
           ]
           []))
    y_ticks;
  (* axis baselines *)
  push
    (Svg.el "line"
       [
         ("x1", string_of_int ml); ("y1", f (float_of_int (mt + ph)));
         ("x2", string_of_int (ml + pw)); ("y2", f (float_of_int (mt + ph)));
         ("stroke", baseline); ("stroke-width", "1");
       ]
       []);
  push
    (Svg.el "line"
       [
         ("x1", string_of_int ml); ("y1", f (float_of_int mt)); ("x2", string_of_int ml);
         ("y2", f (float_of_int (mt + ph))); ("stroke", baseline); ("stroke-width", "1");
       ]
       []);
  (* ticks + labels *)
  List.iter
    (fun (v, label) ->
      let x = Scale.apply xs v in
      push
        (Svg.el "line"
           [
             ("x1", f x); ("y1", f (float_of_int (mt + ph))); ("x2", f x);
             ("y2", f (float_of_int (mt + ph) +. 4.0)); ("stroke", baseline);
             ("stroke-width", "1");
           ]
           []);
      push
        (Svg.text_el "text"
           [
             ("x", f x); ("y", f (float_of_int (mt + ph) +. 16.0)); ("font-size", "10");
             ("fill", muted); ("text-anchor", "middle");
           ]
           label))
    x_ticks;
  List.iter
    (fun (v, label) ->
      let y = Scale.apply ys v in
      push
        (Svg.text_el "text"
           [
             ("x", f (float_of_int ml -. 8.0)); ("y", f (y +. 3.5)); ("font-size", "10");
             ("fill", muted); ("text-anchor", "end");
           ]
           label))
    y_ticks;
  (* axis labels *)
  if c.x_label <> "" then
    push
      (Svg.text_el "text"
         [
           ("x", f (float_of_int ml +. (float_of_int pw /. 2.0)));
           ("y", f (float_of_int c.height -. 8.0)); ("font-size", "11"); ("fill", secondary);
           ("text-anchor", "middle");
         ]
         c.x_label);
  if c.y_label <> "" then begin
    let cy = float_of_int mt +. (float_of_int ph /. 2.0) in
    push
      (Svg.text_el "text"
         [
           ("x", "14"); ("y", f cy); ("font-size", "11"); ("fill", secondary);
           ("text-anchor", "middle");
           ("transform", Printf.sprintf "rotate(-90 14 %s)" (f cy));
         ]
         c.y_label)
  end;
  (* data marks, clipped to the plot area *)
  push
    (Svg.el "defs" []
       [
         Svg.el "clipPath"
           [ ("id", "plot") ]
           [
             Svg.el "rect"
               [
                 ("x", string_of_int (ml - 4)); ("y", string_of_int (mt - 4));
                 ("width", string_of_int (pw + 8)); ("height", string_of_int (ph + 8));
               ]
               [];
           ];
       ]);
  let marks =
    List.concat
      (List.mapi
         (fun i s ->
           let color = slot (match s.color with Some k -> k | None -> i) in
           render_mark ~xs ~ys color s.dash s.mark)
         c.series)
  in
  if marks <> [] then push (Svg.el "g" [ ("clip-path", "url(#plot)") ] marks);
  if no_data then
    push
      (Svg.text_el "text"
         [
           ("x", f (float_of_int ml +. (float_of_int pw /. 2.0)));
           ("y", f (float_of_int mt +. (float_of_int ph /. 2.0))); ("font-size", "11");
           ("fill", muted); ("text-anchor", "middle");
         ]
         "no data");
  (* notes, top left inside the plot *)
  List.iteri
    (fun i note ->
      push
        (Svg.text_el "text"
           [
             ("x", f (float_of_int ml +. 8.0));
             ("y", f (float_of_int mt +. 15.0 +. (13.0 *. float_of_int i)));
             ("font-size", "10"); ("fill", secondary);
           ]
           note))
    c.notes;
  Svg.to_string ~width:c.width ~height:c.height (List.rev !nodes)
