(** Data-to-pixel scales and tick generation.

    Linear and base-10 logarithmic scales with the degenerate inputs the
    telemetry data actually produces handled explicitly (and golden- and
    unit-tested): an empty extent, a single point, and log domains that
    touch zero. All arithmetic is plain float; tick positions and labels
    are deterministic functions of the domain. *)

type kind = Linear | Log

type t

val make : kind -> domain:float * float -> range:float * float -> t
(** Degenerate domains are repaired rather than rejected: an empty or
    single-point linear domain is widened by ±1 around its value; a log
    domain with [hi <= 0] falls back to [0.1, 10]; a log domain with
    [lo <= 0] (a zero in the data) is clamped to [hi / 1000] so the rest
    of the series still plots; a single-point log domain widens a decade
    each way. Non-finite endpoints fall back to [0, 1] / [0.1, 10]. *)

val kind : t -> kind

val domain : t -> float * float
(** The repaired domain actually in use. *)

val apply : t -> float -> float
(** Maps a data value into the range. On a log scale, values [<= 0] clamp
    to the low domain edge (they sit on the axis rather than at -∞). *)

val ticks : ?target:int -> t -> float list
(** Ascending tick positions within the domain. Linear scales use the
    1-2-5 ladder aiming for [target] (default 5) ticks; log scales use
    powers of ten, padding with the 2· and 5· mantissas when fewer than
    two decades fit. Always at least two ticks. *)

val tick_label : float -> string
(** Short human label: ["0"], ["250"], ["0.25"], and ["1e6"] /
    ["2.5e-4"]-style scientific form for magnitudes outside
    [[1e-4, 1e6)]. Deterministic (no [%g] locale/exponent quirks). *)
